#ifndef BZK_BENCH_BENCHUTIL_H_
#define BZK_BENCH_BENCHUTIL_H_

/**
 * @file
 * Shared helpers for the table-regeneration benchmarks. Every bench
 * binary prints the corresponding paper table with the same rows and
 * columns, so EXPERIMENTS.md can be checked against `./bench_*` output
 * directly. Every bench additionally accepts `--json <path>` and dumps
 * its key metrics as machine-readable JSON (schema below), which the
 * perf-smoke CI job feeds to tools/check_bench.py.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "exec/ExecContext.h"
#include "obs/Metrics.h"
#include "util/Log.h"
#include "util/Stats.h"

namespace bzk::bench {

/**
 * Consume an optional `--threads <n>` flag and install it as the
 * process-wide host-thread default (exec::setDefaultThreads), so every
 * ExecContext the bench creates — directly or deep inside the provers —
 * resolves to it. Returns the resolved count (with no flag: BZK_THREADS
 * or hardware concurrency). Call once at the top of main().
 */
inline size_t
applyThreadsFlag(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--threads")
            exec::setDefaultThreads(
                std::strtoull(argv[i + 1], nullptr, 10));
    return exec::resolveThreads(0);
}

/**
 * Machine-readable sidecar for one bench binary. Construct it from
 * argv (it consumes `--json <path>`; with no flag it stays disabled
 * and costs nothing), add one row of named numeric metrics per table
 * row, and it writes
 *
 *   {"bench": <name>,
 *    "rows": [{"label": <label>, "metrics": {<metric>: <value>, ...}}],
 *    "meta": {"device": <device>, "git_sha": <sha>, ...}}
 *
 * on destruction (or an explicit write()). The git sha is taken from
 * the BZK_GIT_SHA environment variable (CI exports GITHUB_SHA there);
 * "unknown" otherwise.
 */
class JsonBench
{
  public:
    JsonBench(std::string name, int argc, char **argv)
        : name_(std::move(name))
    {
        for (int i = 1; i + 1 < argc; ++i)
            if (std::string(argv[i]) == "--json")
                path_ = argv[i + 1];
        const char *sha = std::getenv("BZK_GIT_SHA");
        meta("git_sha", sha && *sha ? sha : "unknown");
    }

    JsonBench(const JsonBench &) = delete;
    JsonBench &operator=(const JsonBench &) = delete;

    ~JsonBench() { write(); }

    /** True when `--json <path>` was passed. */
    bool enabled() const { return !path_.empty(); }

    /** Set (or overwrite) one meta entry, e.g. ("device", "GH200"). */
    void meta(const std::string &key, const std::string &value)
    {
        for (auto &kv : meta_)
            if (kv.first == key) {
                kv.second = value;
                return;
            }
        meta_.emplace_back(key, value);
    }

    /** Append one row of metrics under @p label. */
    void addRow(const std::string &label,
                std::vector<std::pair<std::string, double>> metrics)
    {
        rows_.push_back({label, std::move(metrics)});
    }

    /** Write the JSON file now (no-op when disabled or already done). */
    void write()
    {
        if (path_.empty() || written_)
            return;
        written_ = true;
        std::ofstream out(path_);
        if (!out) {
            warn("JsonBench: cannot open '%s' for writing",
                 path_.c_str());
            return;
        }
        out << "{\"bench\":\"" << escape(name_) << "\",\"rows\":[";
        for (size_t r = 0; r < rows_.size(); ++r) {
            out << (r ? "," : "") << "{\"label\":\""
                << escape(rows_[r].label) << "\",\"metrics\":{";
            const auto &ms = rows_[r].metrics;
            for (size_t m = 0; m < ms.size(); ++m)
                out << (m ? "," : "") << "\"" << escape(ms[m].first)
                    << "\":" << obs::formatMetricValue(ms[m].second);
            out << "}}";
        }
        out << "],\"meta\":{";
        for (size_t m = 0; m < meta_.size(); ++m)
            out << (m ? "," : "") << "\"" << escape(meta_[m].first)
                << "\":\"" << escape(meta_[m].second) << "\"";
        out << "}}\n";
        std::printf("wrote %s\n", path_.c_str());
    }

  private:
    struct Row
    {
        std::string label;
        std::vector<std::pair<std::string, double>> metrics;
    };

    static std::string escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    }

    std::string name_;
    std::string path_;
    std::vector<Row> rows_;
    std::vector<std::pair<std::string, std::string>> meta_;
    bool written_ = false;
};

/** Print a table with a title and optional footnote. */
inline void
printTable(const std::string &title, const TablePrinter &table,
           const std::string &footnote = "")
{
    std::printf("\n== %s ==\n%s", title.c_str(), table.render().c_str());
    if (!footnote.empty())
        std::printf("%s\n", footnote.c_str());
    std::fflush(stdout);
}

/** Format a throughput like the paper (items/ms, 4 significant digits). */
inline std::string
fmtThroughput(double per_ms)
{
    if (per_ms < 0.01)
        return formatSig(per_ms * 1e3, 4) + "e-3";
    return formatSig(per_ms, 4);
}

/** Format a speedup column ("123.4x"). */
inline std::string
fmtSpeedup(double x)
{
    return formatSig(x, 4) + "x";
}

/** Format milliseconds. */
inline std::string
fmtMs(double ms)
{
    return formatSig(ms, 4);
}

/** "2^18" style size labels. */
inline std::string
fmtPow2(unsigned log2)
{
    return "2^" + std::to_string(log2);
}

} // namespace bzk::bench

#endif // BZK_BENCH_BENCHUTIL_H_
