#ifndef BZK_BENCH_BENCHUTIL_H_
#define BZK_BENCH_BENCHUTIL_H_

/**
 * @file
 * Shared helpers for the table-regeneration benchmarks. Every bench
 * binary prints the corresponding paper table with the same rows and
 * columns, so EXPERIMENTS.md can be checked against `./bench_*` output
 * directly.
 */

#include <cstdio>
#include <string>

#include "util/Stats.h"

namespace bzk::bench {

/** Print a table with a title and optional footnote. */
inline void
printTable(const std::string &title, const TablePrinter &table,
           const std::string &footnote = "")
{
    std::printf("\n== %s ==\n%s", title.c_str(), table.render().c_str());
    if (!footnote.empty())
        std::printf("%s\n", footnote.c_str());
    std::fflush(stdout);
}

/** Format a throughput like the paper (items/ms, 4 significant digits). */
inline std::string
fmtThroughput(double per_ms)
{
    if (per_ms < 0.01)
        return formatSig(per_ms * 1e3, 4) + "e-3";
    return formatSig(per_ms, 4);
}

/** Format a speedup column ("123.4x"). */
inline std::string
fmtSpeedup(double x)
{
    return formatSig(x, 4) + "x";
}

/** Format milliseconds. */
inline std::string
fmtMs(double ms)
{
    return formatSig(ms, 4);
}

/** "2^18" style size labels. */
inline std::string
fmtPow2(unsigned log2)
{
    return "2^" + std::to_string(log2);
}

} // namespace bzk::bench

#endif // BZK_BENCH_BENCHUTIL_H_
