/**
 * @file
 * Table 7: amortized per-proof generation time (ms) for circuits with
 * S multiplication gates, S = 2^18 .. 2^22, GH200 spec.
 *
 * Left half: old-protocol systems — Libsnark-style CPU (real NTT/MSM
 * measured and extrapolated) and Bellperson-style GPU (simulated).
 * Right half: same-modules systems — Orion&Arkworks-style CPU (real,
 * measured at a capped size and scaled) and our pipelined system.
 */

#include "baseline/OldProtocol.h"
#include "bench/BenchUtil.h"
#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"
#include "util/Rng.h"

using namespace bzk;
using namespace bzk::bench;

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    Rng rng(0xdead07);
    JsonBench json("bench_system", argc, argv);
    json.meta("device", dev.spec().name);

    TablePrinter old_table({"S", "Libsnark MSM", "Libsnark NTT",
                            "Libsnark Proof", "Bellperson MSM",
                            "Bellperson NTT", "Bellperson Proof"});
    TablePrinter new_table({"S", "O&A Merkle", "O&A Sumcheck",
                            "O&A Encoder", "O&A Proof", "Ours Merkle",
                            "Ours Sumcheck", "Ours Encoder", "Ours Proof",
                            "vs Bell.", "vs O&A"});

    for (unsigned logs = 18; logs <= 22; ++logs) {
        LibsnarkLikeCpu libsnark(/*measure_cap_log=*/14);
        auto lib = libsnark.run(1, logs, rng);

        BellpersonLikeGpu bell(dev);
        auto bp = bell.run(2, logs, rng);

        old_table.addRow({fmtPow2(logs), fmtMs(lib.msm_ms),
                          fmtMs(lib.ntt_ms), fmtMs(lib.proof_ms),
                          fmtMs(bp.msm_ms), fmtMs(bp.ntt_ms),
                          fmtMs(bp.proof_ms)});

        SystemOptions opt;
        SameModulesCpuBaseline cpu(opt, /*measure_cap_vars=*/14);
        auto oa = cpu.run(1, logs, rng);

        opt.functional = 0;
        PipelinedZkpSystem ours(dev, opt);
        auto result = ours.run(128, logs, rng);
        double ours_proof = 1.0 / result.stats.throughput_per_ms;
        double oa_proof =
            oa.encoder_ms + oa.merkle_ms + oa.sumcheck_ms;

        new_table.addRow(
            {fmtPow2(logs), fmtMs(oa.merkle_ms), fmtMs(oa.sumcheck_ms),
             fmtMs(oa.encoder_ms), fmtMs(oa_proof),
             fmtMs(result.merkle_ms), fmtMs(result.sumcheck_ms),
             fmtMs(result.encoder_ms), fmtMs(ours_proof),
             fmtSpeedup(bp.proof_ms / ours_proof),
             fmtSpeedup(oa_proof / ours_proof)});

        // The ours_*/bell_* metrics come from the deterministic
        // simulator and are what bench/baselines pins; the oa_*/lib_*
        // metrics are real host measurements and vary by machine.
        json.addRow(
            fmtPow2(logs),
            {{"ours_proof_ms", ours_proof},
             {"ours_throughput_per_s",
              result.stats.throughput_per_ms * 1e3},
             {"ours_encoder_ms", result.encoder_ms},
             {"ours_merkle_ms", result.merkle_ms},
             {"ours_sumcheck_ms", result.sumcheck_ms},
             {"ours_utilization", result.stats.utilization},
             {"bell_proof_ms", bp.proof_ms},
             {"oa_proof_ms", oa_proof},
             {"lib_proof_ms", lib.proof_ms}});
    }

    printTable("Table 7a: old-protocol baselines, amortized ms per proof "
               "(GH200 spec)",
               old_table,
               "Libsnark columns: real NTT/Pippenger measured on this "
               "host at capped sizes, extrapolated by op count.");
    printTable("Table 7b: same-modules systems, amortized ms per proof "
               "(GH200 spec)",
               new_table,
               "O&A = Orion&Arkworks-style CPU baseline (real prover "
               "measured at 2^14 rows, scaled linearly). Note our "
               "functional protocol is leaner than Orion's full GKR "
               "pipeline, so absolute 'Ours' times sit below the paper's; "
               "see EXPERIMENTS.md.");
    return 0;
}
