/**
 * @file
 * Extension experiment: batch GKR proving — the protocol-family
 * integration the paper's modular design targets (Libra/Virgo/zkCNN
 * are GKR-based). Pipelined layer kernels vs the intuitive
 * one-kernel-per-proof execution across circuit depths on the GH200
 * spec, plus a real host-side GKR proof of a CNN inference.
 */

#include "bench/BenchUtil.h"
#include "gkr/Gkr.h"
#include "gkr/GpuGkr.h"
#include "gpusim/Device.h"
#include "util/Timer.h"
#include "zkml/LayeredCnnCompiler.h"

using namespace bzk;
using namespace bzk::bench;

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    JsonBench json("bench_gkr", argc, argv);
    json.meta("device", dev.spec().name);

    TablePrinter table({"Depth x Width", "Intuitive p/ms", "Ours p/ms",
                        "Speedup", "Util (intuitive)", "Util (ours)"});
    for (size_t depth : {4u, 8u, 16u, 32u}) {
        Rng shape_rng(7);
        auto c = randomLayeredCircuit<Fr>(10, depth, 1 << 10, shape_rng);
        GpuGkrOptions opt;
        opt.functional = 0;
        Rng r1(1), r2(1);
        auto base = IntuitiveGkrGpu(dev, opt).run(c, 32, r1);
        auto pipe = PipelinedGkrGpu(dev, opt).run(c, 256, r2);
        table.addRow({std::to_string(depth) + " x 2^10",
                      fmtThroughput(base.throughput_per_ms),
                      fmtThroughput(pipe.throughput_per_ms),
                      fmtSpeedup(pipe.throughput_per_ms /
                                 base.throughput_per_ms),
                      formatSig(base.utilization * 100, 3) + "%",
                      formatSig(pipe.utilization * 100, 3) + "%"});
        json.addRow("depth-" + std::to_string(depth),
                    {{"ours_throughput_per_ms", pipe.throughput_per_ms},
                     {"intuitive_throughput_per_ms",
                      base.throughput_per_ms}});
    }
    printTable("Extension: batch GKR proving (GH200 spec)", table,
               "Deeper circuits mean more pipeline stages and a larger "
               "win, mirroring the paper's per-module results.");

    // Real host-side GKR proof of a CNN inference (the zkCNN path).
    Rng rng(9);
    CnnModel model(CnnConfig::tiny(), rng);
    auto compiled = compileCnnLayered<Fr>(model);
    Tensor image(1, 8, 8);
    for (auto &p : image.data)
        p = static_cast<int64_t>(rng.nextBounded(8));
    auto inputs = layeredCnnInputs<Fr>(model, image);
    Gkr<Fr> gkr(compiled.circuit);
    Transcript pt("bench-gkr");
    Timer timer;
    auto proof = gkr.prove(inputs, pt);
    double prove_ms = timer.milliseconds();
    Transcript vt("bench-gkr");
    timer.reset();
    bool ok = gkr.verify(proof, inputs, vt);
    std::printf("\nfunctional check: GKR proof of a %zu-gate CNN "
                "inference: prove %.1f ms, verify %.1f ms, %zu bytes, "
                "%s\n",
                compiled.circuit.numGates(), prove_ms,
                timer.milliseconds(), proof.sizeBytes(),
                ok ? "ACCEPT" : "REJECT");
    return ok ? 0 : 1;
}
