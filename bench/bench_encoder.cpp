/**
 * @file
 * Table 5: throughput of linear-time encoder modules (codes/ms) for
 * messages of N 256-bit field elements, N = 2^18 .. 2^22, GH200 spec.
 *
 * Columns: Orion-style CPU encoder (real, measured at 2^18 and scaled
 * linearly — the encoder is O(N)), our non-pipelined GPU encoder
 * ("Ours-np", simulated) and the pipelined one (simulated).
 */

#include "bench/BenchUtil.h"
#include "encoder/GpuEncoder.h"
#include "gpusim/Device.h"
#include "util/Rng.h"

using namespace bzk;
using namespace bzk::bench;

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    Rng rng(0xdead03);
    JsonBench json("bench_encoder", argc, argv);
    json.meta("device", dev.spec().name);

    // One real CPU measurement at 2^18; the Spielman encoder is O(N),
    // so larger rows scale linearly (footnoted).
    const unsigned cpu_base_log = 18;
    CpuEncoderBaseline cpu(/*sample_codes=*/1);
    auto cpu_base = cpu.run(1, size_t{1} << cpu_base_log, rng);

    TablePrinter table({"Size", "Orion(CPU) c/ms", "Ours-np(GPU) c/ms",
                        "Ours(GPU) c/ms", "vs CPU", "vs np"});

    for (unsigned logn = 22; logn >= 18; --logn) {
        size_t k = size_t{1} << logn;
        double cpu_per_ms =
            cpu_base.throughput_per_ms /
            static_cast<double>(size_t{1} << (logn - cpu_base_log));

        GpuEncoderOptions opt;
        opt.functional = 0;
        auto np = NonPipelinedEncoderGpu(dev, opt).run(32, k, rng);
        auto ours = PipelinedEncoderGpu(dev, opt).run(128, k, rng);

        table.addRow({fmtPow2(logn), fmtThroughput(cpu_per_ms),
                      fmtThroughput(np.throughput_per_ms),
                      fmtThroughput(ours.throughput_per_ms),
                      fmtSpeedup(ours.throughput_per_ms / cpu_per_ms),
                      fmtSpeedup(ours.throughput_per_ms /
                                 np.throughput_per_ms)});
        json.addRow(fmtPow2(logn),
                    {{"ours_throughput_per_ms", ours.throughput_per_ms},
                     {"np_throughput_per_ms", np.throughput_per_ms},
                     {"cpu_throughput_per_ms", cpu_per_ms}});
    }

    printTable("Table 5: throughput of linear-time encoder modules "
               "(GH200 spec)",
               table,
               "CPU column measured at 2^18 on this host and scaled "
               "linearly (the encoder is O(N)); GPU columns simulated.");
    return 0;
}
