/**
 * @file
 * Robustness bench: throughput of the pipelined batch system as a
 * function of injected fault rate. Not a paper table — it quantifies
 * the cost of the graceful-degradation paths this repo adds on top of
 * the paper's happy-path design: lane failures re-allocate the static
 * 35:12:113 split onto survivors, transfer stalls stretch the streamed
 * input, and corrupted staged Merkle layers force task retries.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/BenchUtil.h"
#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"
#include "gpusim/FaultInjector.h"

using namespace bzk;
using namespace bzk::bench;

namespace {

constexpr unsigned kLogGates = 18;
constexpr size_t kBatch = 256;

SystemRunResult
runWithPlan(const gpusim::FaultPlan &plan, uint64_t seed)
{
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    gpusim::FaultInjector injector(plan, seed);
    if (!plan.empty())
        dev.setFaultInjector(&injector);
    SystemOptions opt;
    opt.functional = 0;
    opt.seed = seed;
    Rng rng(seed);
    return PipelinedZkpSystem(dev, opt).run(kBatch, kLogGates, rng);
}

/** A plan failing `fraction` of the lanes over the whole run. */
gpusim::FaultPlan
laneFailurePlan(double fraction, size_t horizon)
{
    if (fraction <= 0.0)
        return {};
    gpusim::FaultPlan plan;
    plan.events.push_back({gpusim::FaultKind::LaneFailure, 0, horizon,
                           fraction});
    return plan;
}

/** A plan stalling every transfer by `multiplier`. */
gpusim::FaultPlan
stallPlan(double multiplier, size_t horizon)
{
    if (multiplier <= 1.0)
        return {};
    gpusim::FaultPlan plan;
    plan.events.push_back({gpusim::FaultKind::TransferStall, 0, horizon,
                           multiplier});
    return plan;
}

/** A plan corrupting every `period`-th admitted task's staged layer. */
gpusim::FaultPlan
corruptionPlan(size_t period, size_t horizon)
{
    gpusim::FaultPlan plan;
    if (period == 0)
        return plan;
    for (size_t c = 0; c < horizon; c += period)
        plan.events.push_back(
            {gpusim::FaultKind::MerkleCorruption, c, c + 1, 1.0});
    return plan;
}

} // namespace

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    const uint64_t seed = 2024;
    JsonBench json("bench_chaos", argc, argv);
    json.meta("device", "GH200");
    size_t horizon =
        kBatch + systemWorkModel(kLogGates, seed).totalStages();
    auto healthy = runWithPlan({}, seed);
    double base = healthy.stats.throughput_per_ms;
    json.addRow("healthy", {{"throughput_per_ms", base}});

    TablePrinter lanes({"failed lanes", "proofs/ms", "vs healthy",
                        "degraded cycles", "mean cycle (ms)"});
    for (double f : {0.0, 0.05, 0.10, 0.20, 0.40}) {
        auto r = runWithPlan(laneFailurePlan(f, horizon), seed);
        lanes.addRow({formatSig(f * 100.0, 3) + "%",
                      fmtThroughput(r.stats.throughput_per_ms),
                      fmtSpeedup(r.stats.throughput_per_ms / base),
                      std::to_string(r.degraded_cycles),
                      fmtMs(r.stats.total_ms /
                            static_cast<double>(kBatch))});
        json.addRow("lane-failure-" + formatSig(f * 100.0, 3) + "pct",
                    {{"throughput_per_ms", r.stats.throughput_per_ms},
                     {"degraded_cycles",
                      static_cast<double>(r.degraded_cycles)}});
    }
    printTable("Throughput vs failed-lane fraction (GH200, 2^18, "
               "batch 256)",
               lanes,
               "Work relocates onto surviving lanes; throughput "
               "degrades ~proportionally, never collapses.");

    TablePrinter stalls({"transfer stall", "proofs/ms", "vs healthy",
                         "stalled transfers"});
    for (double m : {1.0, 1.5, 2.0, 4.0, 8.0}) {
        gpusim::Device dev(gpusim::DeviceSpec::gh200());
        gpusim::FaultInjector injector(stallPlan(m, horizon), seed);
        if (m > 1.0)
            dev.setFaultInjector(&injector);
        SystemOptions opt;
        opt.functional = 0;
        opt.seed = seed;
        Rng rng(seed);
        auto r = PipelinedZkpSystem(dev, opt).run(kBatch, kLogGates, rng);
        stalls.addRow({fmtSpeedup(m),
                       fmtThroughput(r.stats.throughput_per_ms),
                       fmtSpeedup(r.stats.throughput_per_ms / base),
                       std::to_string(
                           injector.stats().stalled_transfers)});
        json.addRow("stall-" + formatSig(m, 3) + "x",
                    {{"throughput_per_ms", r.stats.throughput_per_ms},
                     {"stalled_transfers",
                      static_cast<double>(
                          injector.stats().stalled_transfers)}});
    }
    printTable("Throughput vs transfer stall (GH200, 2^18, batch 256)",
               stalls,
               "Mild stalls hide behind multi-stream overlap; heavy "
               "stalls make the PCIe link the cycle bottleneck.");

    TablePrinter corrupt({"corruption period", "proofs/ms", "vs healthy",
                          "detected", "retried"});
    for (size_t period : {size_t{0}, size_t{64}, size_t{16}, size_t{4}}) {
        auto r = runWithPlan(corruptionPlan(period, horizon), seed);
        corrupt.addRow({period == 0 ? "never"
                                    : "1/" + std::to_string(period),
                        fmtThroughput(r.stats.throughput_per_ms),
                        fmtSpeedup(r.stats.throughput_per_ms / base),
                        std::to_string(r.corrupt_detected),
                        std::to_string(r.retried_tasks)});
        json.addRow("corruption-" +
                        (period == 0 ? std::string("never")
                                     : "1of" + std::to_string(period)),
                    {{"throughput_per_ms", r.stats.throughput_per_ms},
                     {"corrupt_detected",
                      static_cast<double>(r.corrupt_detected)},
                     {"retried_tasks",
                      static_cast<double>(r.retried_tasks)}});
    }
    printTable("Throughput vs staged-layer corruption rate", corrupt,
               "Every corruption is caught by the Merkle root re-check "
               "and costs one retry cycle.");
    return 0;
}
