/**
 * @file
 * Table 10: amortized device memory required per in-flight proof,
 * Bellperson-style baseline vs our pipelined system, S = 2^18 .. 2^22.
 */

#include "baseline/OldProtocol.h"
#include "bench/BenchUtil.h"
#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"
#include "util/Rng.h"

using namespace bzk;
using namespace bzk::bench;

namespace {

std::string
fmtGb(uint64_t bytes)
{
    return formatSig(static_cast<double>(bytes) / (1ULL << 30), 3) + "GB";
}

} // namespace

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    Rng rng(0xdead10);
    JsonBench json("bench_memory", argc, argv);
    json.meta("device", dev.spec().name);

    TablePrinter table({"S", "Bellperson", "Ours", "Reduction"});

    for (unsigned logs = 18; logs <= 22; ++logs) {
        BellpersonLikeGpu bell(dev);
        auto bp = bell.run(1, logs, rng);

        SystemOptions opt;
        opt.functional = 0;
        PipelinedZkpSystem ours(dev, opt);
        auto result = ours.run(32, logs, rng);

        table.addRow({fmtPow2(logs),
                      fmtGb(bp.stats.peak_device_bytes),
                      fmtGb(result.stats.peak_device_bytes),
                      fmtSpeedup(static_cast<double>(
                                     bp.stats.peak_device_bytes) /
                                 result.stats.peak_device_bytes)});
        json.addRow(fmtPow2(logs),
                    {{"ours_peak_bytes",
                      static_cast<double>(
                          result.stats.peak_device_bytes)},
                     {"bell_peak_bytes",
                      static_cast<double>(bp.stats.peak_device_bytes)}});
    }

    printTable("Table 10: amortized device memory per in-flight proof",
               table,
               "Our pipeline keeps one task per stage resident (dynamic "
               "loading); memory is independent of batch size.");
    return 0;
}
