/**
 * @file
 * Service soak: the epoll proof server under thousands of concurrent
 * loopback connections, driven by the epoll load generator. Three load
 * shapes — a wide soak (1200 connections), a mixed tenant skew (half
 * the connections piled onto one tenant), and a backpressure shape
 * (in-flight window + queue far smaller than the offered load, so
 * Retry/Shed resubmission carries the run). Every shape hard-fails the
 * bench if a single task id is lost or duplicated, a connection drops,
 * or a proof fails its digest check: the soak gate is exact
 * accounting, not a throughput eyeball.
 *
 * The prover is the DigestExecutor stand-in, so the numbers measure
 * the network layer (framing, epoll loops, admission) rather than
 * proving; bench_system owns the prover-side numbers.
 */

#include <cstdio>

#include "bench/BenchUtil.h"
#include "net/Executor.h"
#include "net/LoadGen.h"
#include "net/Server.h"
#include "util/Log.h"
#include "util/Stats.h"

using namespace bzk;
using namespace bzk::bench;

namespace {

struct Shape
{
    const char *label;
    net::ServerOptions server;
    net::LoadGenOptions load;
};

net::LoadGenReport
runShape(const Shape &shape, net::ServerStats &stats_out)
{
    net::DigestExecutor executor(2000);
    net::ProofServer server(shape.server, executor);
    if (!server.start())
        fatal("bench_net: cannot bind a loopback listener");
    net::LoadGenOptions load = shape.load;
    load.port = server.port();
    net::LoadGenReport report = net::runLoadGen(load);
    server.stop();
    stats_out = server.stats();

    if (!report.clean() || report.dropped > 0)
        fatal("bench_net: '%s' was not clean — %llu lost, %llu "
              "duplicated, %llu bad proofs, %llu dropped, %zu failed "
              "connections",
              shape.label,
              static_cast<unsigned long long>(report.lost),
              static_cast<unsigned long long>(report.duplicated),
              static_cast<unsigned long long>(report.bad_proofs),
              static_cast<unsigned long long>(report.dropped),
              report.connections_failed);
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    size_t fd_limit = net::raiseFdLimit();
    if (fd_limit < 4096)
        warn("bench_net: fd limit %zu is low for a 1200-connection "
             "soak",
             fd_limit);

    JsonBench json("bench_net", argc, argv);
    json.meta("device", "loopback");
    json.meta("executor", "digest");

    std::vector<Shape> shapes;
    {
        // The headline soak: more than a thousand concurrent
        // connections, several tenants, no artificial limits.
        Shape soak;
        soak.label = "soak 1200 conns";
        soak.server.max_connections = 2048;
        soak.server.workers = 4;
        soak.load.connections = 1200;
        soak.load.tasks_per_conn = 6;
        soak.load.pipeline = 4;
        soak.load.tenants = 8;
        shapes.push_back(soak);
    }
    {
        // Mixed tenant skew: half the fleet identifies as tenant 0,
        // the rest spread over seven more tenants.
        Shape skew;
        skew.label = "tenant skew 50%";
        skew.server.max_connections = 1024;
        skew.server.workers = 4;
        skew.load.connections = 400;
        skew.load.tasks_per_conn = 6;
        skew.load.pipeline = 4;
        skew.load.tenants = 8;
        skew.load.hot_fraction = 0.5;
        shapes.push_back(skew);
    }
    {
        // Backpressure: window + queue far below the offered load, so
        // completion depends on Shed resubmission doing its job.
        Shape pressure;
        pressure.label = "backpressure window 16";
        pressure.server.max_connections = 1024;
        pressure.server.workers = 2;
        pressure.server.window = 16;
        pressure.server.queue_capacity = 256;
        pressure.load.connections = 300;
        pressure.load.tasks_per_conn = 4;
        pressure.load.pipeline = 4;
        pressure.load.max_retries = 500;
        shapes.push_back(pressure);
    }

    TablePrinter table({"shape", "conns", "proofs", "throughput (/s)",
                        "p50 ms", "p99 ms", "retries", "sheds"});
    for (const Shape &shape : shapes) {
        net::ServerStats stats;
        net::LoadGenReport report = runShape(shape, stats);
        table.addRow({shape.label,
                      std::to_string(report.connections_opened),
                      std::to_string(report.results_ok),
                      formatSig(report.throughput_per_s, 4),
                      formatSig(report.p50_ms, 3),
                      formatSig(report.p99_ms, 3),
                      std::to_string(report.retries),
                      std::to_string(report.sheds)});
        json.addRow(shape.label,
                    {{"connections",
                      static_cast<double>(report.connections_opened)},
                     {"throughput_per_s", report.throughput_per_s},
                     {"p50_ms", report.p50_ms},
                     {"p99_ms", report.p99_ms}});
    }

    printTable(
        "Service soak: epoll server under concurrent loopback load",
        table,
        "Every shape completed with zero lost, duplicated, or dropped "
        "task ids and every proof digest-verified; throughput and p99 "
        "measure accept-to-result over the wire.");
    return 0;
}
