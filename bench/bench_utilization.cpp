/**
 * @file
 * Figure 9: GPU core utilization over time for the three ZKP modules on
 * the RTX 3090Ti spec, pipelined vs non-pipelined — rendered as ASCII
 * utilization strips. Also prints the Figure 4 per-strategy busy/idle
 * summary for batch Merkle generation.
 */

#include <cstdio>
#include <functional>
#include <string>

#include "bench/BenchUtil.h"
#include "encoder/GpuEncoder.h"
#include "gpusim/Device.h"
#include "merkle/GpuMerkle.h"
#include "sumcheck/GpuSumcheck.h"
#include "util/Rng.h"

using namespace bzk;
using namespace bzk::bench;

namespace {

/** Render a utilization trace as one text strip. */
void
printTrace(const std::string &label, gpusim::Device &dev)
{
    const char *levels = " .:-=+*#%@";
    double t_end = dev.now();
    auto trace = dev.utilizationTrace(t_end / 60.0, t_end);
    std::string strip;
    for (const auto &sample : trace) {
        int idx = static_cast<int>(sample.utilization * 9.0 + 0.5);
        idx = std::max(0, std::min(9, idx));
        strip.push_back(levels[idx]);
    }
    double mean = 0;
    for (const auto &s : trace)
        mean += s.utilization;
    mean /= trace.empty() ? 1 : trace.size();
    std::printf("%-24s |%s| mean %4.1f%%\n", label.c_str(), strip.c_str(),
                mean * 100.0);
}

} // namespace

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    Rng rng(0xdead12);
    JsonBench json("bench_utilization", argc, argv);
    json.meta("device", "3090Ti");
    std::printf("== Figure 9: GPU core utilization over time "
                "(RTX 3090Ti spec) ==\n");
    std::printf("each strip: utilization from run start to finish "
                "(' '=0%% .. '@'=100%%)\n\n");

    {
        gpusim::Device dev(gpusim::DeviceSpec::rtx3090ti());
        GpuMerkleOptions opt;
        opt.functional = 0;
        IntuitiveMerkleGpu(dev, opt).run(24, 1 << 16, rng);
        printTrace("Merkle / Simon", dev);
        PipelinedMerkleGpu(dev, opt).run(128, 1 << 16, rng);
        printTrace("Merkle / Ours", dev);
    }
    {
        gpusim::Device dev(gpusim::DeviceSpec::rtx3090ti());
        GpuSumcheckOptions opt;
        opt.functional = 0;
        opt.stream_io = false; // isolate compute utilization
        IntuitiveSumcheckGpu(dev, opt).run(24, 16, rng);
        printTrace("Sumcheck / Icicle", dev);
        PipelinedSumcheckGpu(dev, opt).run(128, 16, rng);
        printTrace("Sumcheck / Ours", dev);
    }
    {
        gpusim::Device dev(gpusim::DeviceSpec::rtx3090ti());
        GpuEncoderOptions opt;
        opt.functional = 0;
        NonPipelinedEncoderGpu(dev, opt).run(24, 1 << 16, rng);
        printTrace("Encoder / Ours-np", dev);
        PipelinedEncoderGpu(dev, opt).run(128, 1 << 16, rng);
        printTrace("Encoder / Ours", dev);
    }

    // Figure 4 summary: busy lane-share per strategy for batch Merkle.
    std::printf("\n== Figure 4: thread workload, intuitive vs pipelined "
                "(batch Merkle) ==\n");
    TablePrinter table({"Strategy", "Mean utilization", "Throughput "
                        "(trees/ms)"});
    gpusim::Device dev(gpusim::DeviceSpec::rtx3090ti());
    GpuMerkleOptions opt;
    opt.functional = 0;
    auto a = IntuitiveMerkleGpu(dev, opt).run(64, 1 << 14, rng);
    table.addRow({"one kernel per tree (4a)",
                  formatSig(a.utilization * 100, 3) + "%",
                  fmtThroughput(a.throughput_per_ms)});
    auto b = PipelinedMerkleGpu(dev, opt).run(256, 1 << 14, rng);
    table.addRow({"one kernel per layer (4b)",
                  formatSig(b.utilization * 100, 3) + "%",
                  fmtThroughput(b.throughput_per_ms)});
    std::printf("%s", table.render().c_str());

    json.addRow("merkle-batch",
                {{"intuitive_utilization", a.utilization},
                 {"pipelined_utilization", b.utilization},
                 {"intuitive_throughput_per_ms", a.throughput_per_ms},
                 {"pipelined_throughput_per_ms", b.throughput_per_ms}});
    return 0;
}
