/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out:
 *
 *   A1. halving (cost-proportional) lane allocation across layer
 *       kernels vs an equal split (Sec. 4's allocation method);
 *   A2. bucket-sorted warp assignment in the encoder vs natural row
 *       order (Sec. 3.3);
 *   A3. multi-stream transfer/compute overlap vs serialized transfers
 *       (Sec. 4 / Table 9's mechanism);
 *   A4. dynamic loading vs staging the whole batch's inputs up front
 *       (Sec. 3.1 / Table 10's mechanism).
 */

#include "bench/BenchUtil.h"
#include "core/PipelinedSystem.h"
#include "encoder/GpuEncoder.h"
#include "gpusim/Device.h"
#include "merkle/GpuMerkle.h"
#include "util/Rng.h"

using namespace bzk;
using namespace bzk::bench;

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    Rng rng(0xab1a);
    JsonBench json("bench_ablation", argc, argv);
    json.meta("device", dev.spec().name);

    // A1: lane allocation in the pipelined Merkle module.
    {
        TablePrinter table({"Allocation", "Throughput (trees/ms)",
                            "Utilization"});
        GpuMerkleOptions opt;
        opt.functional = 0;
        auto prop = PipelinedMerkleGpu(dev, opt).run(128, 1 << 20, rng);
        opt.equal_lane_split = true;
        auto equal = PipelinedMerkleGpu(dev, opt).run(128, 1 << 20, rng);
        table.addRow({"halving (paper, Sec. 4)",
                      fmtThroughput(prop.throughput_per_ms),
                      formatSig(prop.utilization * 100, 3) + "%"});
        table.addRow({"equal split (ablation)",
                      fmtThroughput(equal.throughput_per_ms),
                      formatSig(equal.utilization * 100, 3) + "%"});
        printTable("A1: lane allocation across Merkle layer kernels "
                   "(N = 2^20)",
                   table,
                   "Equal splits starve the leaf layer; the halving rule "
                   "keeps every stage's cycle time equal.");
        json.addRow("A1-lane-allocation",
                    {{"halving_throughput_per_ms",
                      prop.throughput_per_ms},
                     {"equal_throughput_per_ms",
                      equal.throughput_per_ms}});
    }

    // A2: bucket sorting in the pipelined encoder.
    {
        TablePrinter table({"Warp assignment", "Throughput (codes/ms)"});
        GpuEncoderOptions opt;
        opt.functional = 0;
        auto sorted = PipelinedEncoderGpu(dev, opt).run(128, 1 << 20, rng);
        opt.sort_rows = false;
        auto unsorted =
            PipelinedEncoderGpu(dev, opt).run(128, 1 << 20, rng);
        table.addRow({"bucket-sorted rows (paper, Sec. 3.3)",
                      fmtThroughput(sorted.throughput_per_ms)});
        table.addRow({"natural row order (ablation)",
                      fmtThroughput(unsorted.throughput_per_ms)});
        printTable("A2: warp load balancing in the encoder (N = 2^20)",
                   table,
                   "Gain = " +
                       fmtSpeedup(sorted.throughput_per_ms /
                                  unsorted.throughput_per_ms) +
                       " from grouping rows of similar length per warp.");
        json.addRow("A2-warp-sorting",
                    {{"sorted_throughput_per_ms",
                      sorted.throughput_per_ms},
                     {"unsorted_throughput_per_ms",
                      unsorted.throughput_per_ms}});
    }

    // A3: transfer/compute overlap in the full system.
    {
        TablePrinter table({"Transfers", "Proofs/s", "ms/proof"});
        Rng r2(0xab1b);
        SystemOptions opt;
        opt.functional = 0;
        auto overlap = PipelinedZkpSystem(dev, opt).run(256, 20, r2);
        opt.overlap_transfers = false;
        auto serial = PipelinedZkpSystem(dev, opt).run(256, 20, r2);
        table.addRow({"multi-stream overlap (paper)",
                      formatSig(overlap.stats.throughput_per_ms * 1e3, 4),
                      fmtMs(1.0 / overlap.stats.throughput_per_ms)});
        table.addRow({"serialized (ablation)",
                      formatSig(serial.stats.throughput_per_ms * 1e3, 4),
                      fmtMs(1.0 / serial.stats.throughput_per_ms)});
        printTable("A3: multi-stream overlap in the full system "
                   "(S = 2^20)",
                   table, "");
        json.addRow("A3-overlap",
                    {{"overlap_throughput_per_ms",
                      overlap.stats.throughput_per_ms},
                     {"serial_throughput_per_ms",
                      serial.stats.throughput_per_ms}});
    }

    // A4: dynamic loading vs batch preloading.
    {
        TablePrinter table({"Loading", "Device memory (GB), batch=64"});
        Rng r2(0xab1c);
        SystemOptions opt;
        opt.functional = 0;
        auto dynamic = PipelinedZkpSystem(dev, opt).run(64, 20, r2);
        opt.dynamic_loading = false;
        auto preload = PipelinedZkpSystem(dev, opt).run(64, 20, r2);
        auto gb = [](uint64_t b) {
            return formatSig(static_cast<double>(b) / (1ULL << 30), 3);
        };
        table.addRow({"dynamic loading (paper)",
                      gb(dynamic.stats.peak_device_bytes)});
        table.addRow({"preload whole batch (ablation)",
                      gb(preload.stats.peak_device_bytes)});
        printTable("A4: dynamic loading vs preloading (S = 2^20)", table,
                   "Preloading scales with the batch; dynamic loading "
                   "stays constant (Table 10's mechanism).");
        json.addRow("A4-dynamic-loading",
                    {{"dynamic_peak_bytes",
                      static_cast<double>(
                          dynamic.stats.peak_device_bytes)},
                     {"preload_peak_bytes",
                      static_cast<double>(
                          preload.stats.peak_device_bytes)}});
    }
    return 0;
}
