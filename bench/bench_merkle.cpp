/**
 * @file
 * Table 3: throughput of Merkle-tree modules (trees/ms) for N 512-bit
 * blocks, N = 2^18 .. 2^22, on the GH200 spec.
 *
 * Columns: Orion-style CPU baseline (real, measured on this host),
 * Simon-style intuitive GPU baseline (simulated), our pipelined module
 * (simulated), and the two speedup columns the paper reports.
 */

#include "bench/BenchUtil.h"
#include "gpusim/Device.h"
#include "merkle/GpuMerkle.h"
#include "util/Rng.h"

using namespace bzk;
using namespace bzk::bench;

int
main(int argc, char **argv)
{
    size_t threads = applyThreadsFlag(argc, argv);
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    Rng rng(0xdead01);
    JsonBench json("bench_merkle", argc, argv);
    json.meta("device", dev.spec().name);
    json.meta("threads", std::to_string(threads));

    TablePrinter table({"Size", "Orion(CPU) t/ms", "Simon(GPU) t/ms",
                        "Ours(GPU) t/ms", "vs CPU", "vs GPU"});

    for (unsigned logn = 22; logn >= 18; --logn) {
        size_t n_blocks = size_t{1} << logn;

        CpuMerkleBaseline cpu(/*sample_trees=*/1);
        auto cpu_stats = cpu.run(16, n_blocks, rng);

        GpuMerkleOptions opt;
        opt.functional = 0; // functional equality is covered in tests
        auto simon = IntuitiveMerkleGpu(dev, opt).run(32, n_blocks, rng);
        size_t batch = 128;
        auto ours = PipelinedMerkleGpu(dev, opt).run(batch, n_blocks, rng);

        table.addRow({fmtPow2(logn),
                      fmtThroughput(cpu_stats.throughput_per_ms),
                      fmtThroughput(simon.throughput_per_ms),
                      fmtThroughput(ours.throughput_per_ms),
                      fmtSpeedup(ours.throughput_per_ms /
                                 cpu_stats.throughput_per_ms),
                      fmtSpeedup(ours.throughput_per_ms /
                                 simon.throughput_per_ms)});
        json.addRow(fmtPow2(logn),
                    {{"ours_throughput_per_ms", ours.throughput_per_ms},
                     {"simon_throughput_per_ms",
                      simon.throughput_per_ms},
                     {"cpu_throughput_per_ms",
                      cpu_stats.throughput_per_ms}});
    }

    printTable("Table 3: throughput of Merkle tree modules (GH200 spec)",
               table,
               "CPU column measured on this host (" +
                   std::to_string(threads) +
                   " thread(s), --threads / BZK_THREADS); GPU "
                   "columns from the calibrated simulator.");
    return 0;
}
