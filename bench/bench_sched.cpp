/**
 * @file
 * Scheduler extension: uniform vs heterogeneous (mixed-size) batches
 * through the pipeline scheduler on one GH200. The paper evaluates
 * uniform batches only; this table shows what the first-class scheduler
 * layer adds — mixed batches complete in one pipeline pass, paced by
 * the costliest in-flight shape, and priorities reorder admission
 * without disturbing the pipeline. All numbers are simulated
 * (machine-independent), so the perf-smoke gate compares them exactly.
 */

#include <vector>

#include "bench/BenchUtil.h"
#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"
#include "sched/ProofTask.h"

using namespace bzk;
using namespace bzk::bench;

namespace {

struct RowResult
{
    SystemRunResult run;
    double mean_turnaround_ms = 0.0;
    double mean_wait_cycles = 0.0;
};

RowResult
runTasks(std::vector<sched::ProofTask> tasks)
{
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    SystemOptions opt;
    opt.functional = 0;
    PipelinedZkpSystem system(dev, opt);
    RowResult r;
    r.run = system.runTasks(std::move(tasks));
    for (const auto &ts : r.run.task_stats) {
        r.mean_turnaround_ms += ts.complete_ms;
        r.mean_wait_cycles += static_cast<double>(ts.queue_wait_cycles);
    }
    double n = static_cast<double>(r.run.task_stats.size());
    r.mean_turnaround_ms /= n;
    r.mean_wait_cycles /= n;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    const unsigned small_vars = 16, large_vars = 20;
    const size_t batch = 64;
    const uint64_t seed = 2024;
    JsonBench json("bench_sched", argc, argv);
    json.meta("device", "GH200");

    std::vector<sched::ProofTask> uniform_small, uniform_large, mixed,
        mixed_prio;
    for (size_t i = 0; i < batch; ++i) {
        uniform_small.push_back(makeProofTask(small_vars, seed, i));
        uniform_large.push_back(makeProofTask(large_vars, seed, i));
        unsigned n = (i % 2) ? large_vars : small_vars;
        mixed.push_back(makeProofTask(n, seed, i));
        // Same mix, but the small tasks jump the queue.
        mixed_prio.push_back(
            makeProofTask(n, seed, i, n == small_vars ? 1 : 0));
    }

    struct Case
    {
        const char *label;
        std::vector<sched::ProofTask> tasks;
    };
    std::vector<Case> cases;
    cases.push_back({"uniform 2^16", std::move(uniform_small)});
    cases.push_back({"uniform 2^20", std::move(uniform_large)});
    cases.push_back({"mixed 2^16+2^20", std::move(mixed)});
    cases.push_back({"mixed, small first", std::move(mixed_prio)});

    TablePrinter table({"workload", "throughput (/ms)", "makespan",
                        "mean turnaround", "mean wait (cyc)",
                        "utilization"});
    for (auto &c : cases) {
        auto r = runTasks(std::move(c.tasks));
        table.addRow({c.label,
                      fmtThroughput(r.run.stats.throughput_per_ms),
                      fmtMs(r.run.stats.total_ms) + "ms",
                      fmtMs(r.mean_turnaround_ms) + "ms",
                      formatSig(r.mean_wait_cycles, 4),
                      formatSig(r.run.stats.utilization, 3)});
        json.addRow(c.label,
                    {{"throughput_per_ms",
                      r.run.stats.throughput_per_ms},
                     {"makespan_ms", r.run.stats.total_ms},
                     {"mean_turnaround_ms", r.mean_turnaround_ms},
                     {"mean_wait_cycles", r.mean_wait_cycles},
                     {"utilization", r.run.stats.utilization}});
    }

    printTable(
        "Scheduler: uniform vs mixed-size batches (GH200, 64 tasks)",
        table,
        "Mixed batches run in one pipeline pass paced by the costliest "
        "in-flight shape; admitting the small tasks first keeps early "
        "cycles cheap, cutting mean turnaround and the makespan.");
    return 0;
}
