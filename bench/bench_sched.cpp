/**
 * @file
 * Scheduler extension: uniform vs heterogeneous (mixed-size) batches
 * through the pipeline scheduler on one GH200. The paper evaluates
 * uniform batches only; this table shows what the first-class scheduler
 * layer adds — mixed batches complete in one pipeline pass, paced by
 * the costliest in-flight shape, and priorities reorder admission
 * without disturbing the pipeline. All numbers are simulated
 * (machine-independent), so the perf-smoke gate compares them exactly.
 */

#include <vector>

#include "bench/BenchUtil.h"
#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"
#include "sched/PipelineScheduler.h"
#include "sched/ProofTask.h"

using namespace bzk;
using namespace bzk::bench;

namespace {

struct RowResult
{
    SystemRunResult run;
    double mean_turnaround_ms = 0.0;
    double mean_wait_cycles = 0.0;
};

RowResult
runTasks(std::vector<sched::ProofTask> tasks,
         sched::LanePolicy policy = sched::LanePolicy::Proportional)
{
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    SystemOptions opt;
    opt.functional = 0;
    opt.lane_policy = policy;
    PipelinedZkpSystem system(dev, opt);
    RowResult r;
    r.run = system.runTasks(std::move(tasks));
    for (const auto &ts : r.run.task_stats) {
        r.mean_turnaround_ms += ts.complete_ms;
        r.mean_wait_cycles += static_cast<double>(ts.queue_wait_cycles);
    }
    double n = static_cast<double>(r.run.task_stats.size());
    r.mean_turnaround_ms /= n;
    r.mean_wait_cycles /= n;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    const unsigned small_vars = 16, large_vars = 20;
    const size_t batch = 64;
    const uint64_t seed = 2024;
    JsonBench json("bench_sched", argc, argv);
    json.meta("device", "GH200");

    std::vector<sched::ProofTask> uniform_small, uniform_large, mixed,
        mixed_prio;
    for (size_t i = 0; i < batch; ++i) {
        uniform_small.push_back(makeProofTask(small_vars, seed, i));
        uniform_large.push_back(makeProofTask(large_vars, seed, i));
        unsigned n = (i % 2) ? large_vars : small_vars;
        mixed.push_back(makeProofTask(n, seed, i));
        // Same mix, but the small tasks jump the queue.
        mixed_prio.push_back(
            makeProofTask(n, seed, i, n == small_vars ? 1 : 0));
    }

    // Heterogeneous-protocol batch: half table-commit, half
    // high-degree-gate at the same size. The sum-check-heavy gate
    // protocol shifts the amortized cost mix, so the measured-cost
    // lane policy re-derives a split the paper's fixed 35:12:113
    // ratio cannot represent.
    std::vector<sched::ProofTask> proto_mix_prop, proto_mix_ratio,
        proto_mix_measured;
    for (size_t i = 0; i < batch; ++i) {
        sched::ProtocolKind kind =
            (i % 2) ? sched::ProtocolKind::HighDegreeGate
                    : sched::ProtocolKind::TableCommit;
        proto_mix_prop.push_back(
            makeProofTask(kind, small_vars, seed, i));
        proto_mix_ratio.push_back(
            makeProofTask(kind, small_vars, seed, i));
        proto_mix_measured.push_back(
            makeProofTask(kind, small_vars, seed, i));
    }

    struct Case
    {
        const char *label;
        std::vector<sched::ProofTask> tasks;
        sched::LanePolicy policy = sched::LanePolicy::Proportional;
    };
    std::vector<Case> cases;
    cases.push_back({"uniform 2^16", std::move(uniform_small)});
    cases.push_back({"uniform 2^20", std::move(uniform_large)});
    cases.push_back({"mixed 2^16+2^20", std::move(mixed)});
    cases.push_back({"mixed, small first", std::move(mixed_prio)});
    cases.push_back({"proto mix, proportional",
                     std::move(proto_mix_prop),
                     sched::LanePolicy::Proportional});
    cases.push_back({"proto mix, fixed-ratio",
                     std::move(proto_mix_ratio),
                     sched::LanePolicy::FixedRatio});
    cases.push_back({"proto mix, measured-cost",
                     std::move(proto_mix_measured),
                     sched::LanePolicy::MeasuredCost});

    TablePrinter table({"workload", "throughput (/ms)", "makespan",
                        "mean turnaround", "mean wait (cyc)",
                        "utilization"});
    for (auto &c : cases) {
        auto r = runTasks(std::move(c.tasks), c.policy);
        table.addRow({c.label,
                      fmtThroughput(r.run.stats.throughput_per_ms),
                      fmtMs(r.run.stats.total_ms) + "ms",
                      fmtMs(r.mean_turnaround_ms) + "ms",
                      formatSig(r.mean_wait_cycles, 4),
                      formatSig(r.run.stats.utilization, 3)});
        json.addRow(c.label,
                    {{"throughput_per_ms",
                      r.run.stats.throughput_per_ms},
                     {"makespan_ms", r.run.stats.total_ms},
                     {"mean_turnaround_ms", r.mean_turnaround_ms},
                     {"mean_wait_cycles", r.mean_wait_cycles},
                     {"utilization", r.run.stats.utilization}});
    }

    printTable(
        "Scheduler: uniform vs mixed-size batches (GH200, 64 tasks)",
        table,
        "Mixed batches run in one pipeline pass paced by the costliest "
        "in-flight shape; admitting the small tasks first keeps early "
        "cycles cheap, cutting mean turnaround and the makespan. The "
        "proto-mix rows run the same half-and-half protocol batch "
        "under each lane policy: measured-cost re-derives the split "
        "from amortized per-stage costs and outpaces the paper's "
        "fixed 35:12:113 ratio.");
    return 0;
}
