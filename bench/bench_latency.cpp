/**
 * @file
 * Table 6: per-item latency of the ZKP modules at N = 2^18 and 2^20 —
 * the throughput/latency trade-off: the pipelined modules are *slower*
 * per item than the intuitive baselines (speedup < 1).
 */

#include "bench/BenchUtil.h"
#include "encoder/GpuEncoder.h"
#include "gpusim/Device.h"
#include "merkle/GpuMerkle.h"
#include "sumcheck/GpuSumcheck.h"
#include "util/Rng.h"

using namespace bzk;
using namespace bzk::bench;

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    Rng rng(0xdead06);
    JsonBench json("bench_latency", argc, argv);
    json.meta("device", dev.spec().name);

    TablePrinter table({"Size", "Module", "Scheme", "Latency (ms)",
                        "Speedup"});

    for (unsigned logn : {18u, 20u}) {
        size_t n = size_t{1} << logn;
        size_t batch = 64;

        GpuMerkleOptions mopt;
        mopt.functional = 0;
        auto simon = IntuitiveMerkleGpu(dev, mopt).run(8, n, rng);
        auto m_ours = PipelinedMerkleGpu(dev, mopt).run(batch, n, rng);
        table.addRow({fmtPow2(logn), "Merkle", "Simon",
                      fmtMs(simon.first_latency_ms), ""});
        table.addRow({"", "", "Ours", fmtMs(m_ours.first_latency_ms),
                      fmtSpeedup(simon.first_latency_ms /
                                 m_ours.first_latency_ms)});

        GpuSumcheckOptions sopt;
        sopt.functional = 0;
        auto icicle = IntuitiveSumcheckGpu(dev, sopt).run(8, logn, rng);
        auto s_ours = PipelinedSumcheckGpu(dev, sopt).run(batch, logn, rng);
        table.addRow({"", "Sumcheck", "Icicle",
                      fmtMs(icicle.first_latency_ms), ""});
        table.addRow({"", "", "Ours", fmtMs(s_ours.first_latency_ms),
                      fmtSpeedup(icicle.first_latency_ms /
                                 s_ours.first_latency_ms)});

        GpuEncoderOptions eopt;
        eopt.functional = 0;
        auto np = NonPipelinedEncoderGpu(dev, eopt).run(8, n, rng);
        auto e_ours = PipelinedEncoderGpu(dev, eopt).run(batch, n, rng);
        table.addRow({"", "Encoder", "Ours-np",
                      fmtMs(np.first_latency_ms), ""});
        table.addRow({"", "", "Ours", fmtMs(e_ours.first_latency_ms),
                      fmtSpeedup(np.first_latency_ms /
                                 e_ours.first_latency_ms)});

        json.addRow(fmtPow2(logn),
                    {{"merkle_ours_ms", m_ours.first_latency_ms},
                     {"merkle_simon_ms", simon.first_latency_ms},
                     {"sumcheck_ours_ms", s_ours.first_latency_ms},
                     {"sumcheck_icicle_ms", icicle.first_latency_ms},
                     {"encoder_ours_ms", e_ours.first_latency_ms},
                     {"encoder_np_ms", np.first_latency_ms}});
    }

    printTable("Table 6: latency of ZKP modules (GH200 spec)", table,
               "Speedup < 1 reproduces the paper's trade-off: pipelining "
               "buys throughput at the cost of per-item latency.");
    return 0;
}
