/**
 * @file
 * Google-benchmark microbenchmarks of the cryptographic primitives the
 * modules are built from. These are the real host-side costs behind the
 * measured CPU baseline columns in Tables 3-5 and 7.
 *
 * Before the google-benchmark suite runs, scalar-vs-SIMD sweeps of
 * the packed Goldilocks kernels and the wide BN254 Fr kernels (plus
 * the 2^14-point MSM acceptance sweep) are measured and printed; with
 * `--json <path>` they are dumped in the JsonBench schema that
 * tools/check_bench.py gates in the perf-smoke CI job (the checked-in
 * baseline pins the packed-vs-scalar mul speedups and the vectorized
 * MSM speedup).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/BenchUtil.h"
#include "core/TensorPcs.h"
#include "curve/Msm.h"
#include "exec/ExecContext.h"
#include "encoder/SpielmanCode.h"
#include "ff/FieldBackend.h"
#include "ff/Fields.h"
#include "ff/Ntt.h"
#include "gkr/Gkr.h"
#include "hash/Sha256.h"
#include "merkle/MerkleTree.h"
#include "poly/Multilinear.h"
#include "sumcheck/Sumcheck.h"
#include "util/Timer.h"

namespace bzk {
namespace {

void
BM_Sha256Compress(benchmark::State &state)
{
    uint8_t block[64] = {1, 2, 3};
    for (auto _ : state) {
        auto d = Sha256::compressBlock(std::span<const uint8_t, 64>(block));
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_Sha256Compress);

void
BM_Sha256Compress4(benchmark::State &state)
{
    uint8_t blocks[4 * 64] = {1, 2, 3};
    Digest out[4];
    for (auto _ : state) {
        Sha256::compressBlocks4(blocks, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_Sha256Compress4);

void
BM_Sha256Compress8(benchmark::State &state)
{
    uint8_t blocks[8 * 64] = {1, 2, 3};
    Digest out[8];
    for (auto _ : state) {
        Sha256::compressBlocks8(blocks, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Sha256Compress8);

/**
 * One Merkle layer via hashPair (per-node schedule setup + digest
 * staging copies) vs. hashPairs (in-place multi-way compression) —
 * the hot-loop hoisting this layer's build path now uses.
 */
void
BM_MerkleLayerHashPair(benchmark::State &state)
{
    size_t pairs = static_cast<size_t>(state.range(0));
    std::vector<Digest> below(2 * pairs);
    std::vector<Digest> above(pairs);
    for (size_t i = 0; i < below.size(); ++i)
        below[i].bytes[0] = static_cast<uint8_t>(i);
    for (auto _ : state) {
        for (size_t i = 0; i < pairs; ++i)
            above[i] = Sha256::hashPair(below[2 * i], below[2 * i + 1]);
        benchmark::DoNotOptimize(above.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(pairs));
}
BENCHMARK(BM_MerkleLayerHashPair)->Range(1 << 8, 1 << 12);

void
BM_MerkleLayerHashPairs(benchmark::State &state)
{
    size_t pairs = static_cast<size_t>(state.range(0));
    std::vector<Digest> below(2 * pairs);
    std::vector<Digest> above(pairs);
    for (size_t i = 0; i < below.size(); ++i)
        below[i].bytes[0] = static_cast<uint8_t>(i);
    for (auto _ : state) {
        Sha256::hashPairs(below.data(), pairs, above.data());
        benchmark::DoNotOptimize(above.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(pairs));
}
BENCHMARK(BM_MerkleLayerHashPairs)->Range(1 << 8, 1 << 12);

void
BM_Sha256Digest1K(benchmark::State &state)
{
    std::vector<uint8_t> data(1024, 0xab);
    for (auto _ : state) {
        auto d = Sha256::digest(data);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_Sha256Digest1K);

void
BM_FrMul(benchmark::State &state)
{
    Rng rng(1);
    Fr a = Fr::random(rng);
    Fr b = Fr::random(rng);
    for (auto _ : state) {
        a = a * b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_FrMul);

void
BM_FrAdd(benchmark::State &state)
{
    Rng rng(2);
    Fr a = Fr::random(rng);
    Fr b = Fr::random(rng);
    for (auto _ : state) {
        a = a + b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_FrAdd);

void
BM_FrInverse(benchmark::State &state)
{
    Rng rng(3);
    Fr a = Fr::random(rng);
    for (auto _ : state) {
        a = a.inverse() + Fr::one();
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_FrInverse);

void
BM_FrMulLanes(benchmark::State &state)
{
    Rng rng(15);
    size_t n = static_cast<size_t>(state.range(0));
    std::vector<Fr> a(n), b(n), out(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = Fr::random(rng);
        b[i] = Fr::random(rng);
    }
    for (auto _ : state) {
        ff::mulLanes(a.data(), b.data(), out.data(), n);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
    state.SetLabel(ff::wideBackendName(ff::activeWideBackend()));
}
BENCHMARK(BM_FrMulLanes)->Range(1 << 10, 1 << 14);

void
BM_FrBatchInverse(benchmark::State &state)
{
    Rng rng(16);
    size_t n = static_cast<size_t>(state.range(0));
    std::vector<Fr> x(n);
    for (auto &v : x)
        v = Fr::random(rng);
    std::vector<Fr> scratch(n);
    for (auto _ : state) {
        std::copy(x.begin(), x.end(), scratch.begin());
        ff::batchInverse(scratch.data(), n);
        benchmark::DoNotOptimize(scratch.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
    state.SetLabel(ff::wideBackendName(ff::activeWideBackend()));
}
BENCHMARK(BM_FrBatchInverse)->Range(1 << 10, 1 << 12);

void
BM_GoldilocksMul(benchmark::State &state)
{
    Rng rng(4);
    Gl64 a = Gl64::random(rng);
    Gl64 b = Gl64::random(rng);
    for (auto _ : state) {
        a = a * b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_GoldilocksMul);

void
BM_GlMulLanes(benchmark::State &state)
{
    Rng rng(11);
    size_t n = static_cast<size_t>(state.range(0));
    std::vector<Gl64> a(n), b(n), out(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = Gl64::random(rng);
        b[i] = Gl64::random(rng);
    }
    for (auto _ : state) {
        ff::mulLanes(a.data(), b.data(), out.data(), n);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
    state.SetLabel(ff::backendName(ff::activeBackend()));
}
BENCHMARK(BM_GlMulLanes)->Range(1 << 10, 1 << 14);

void
BM_GlFoldLanes(benchmark::State &state)
{
    Rng rng(12);
    size_t n = static_cast<size_t>(state.range(0));
    std::vector<Gl64> lo(n), hi(n);
    for (size_t i = 0; i < n; ++i) {
        lo[i] = Gl64::random(rng);
        hi[i] = Gl64::random(rng);
    }
    Gl64 r = Gl64::random(rng);
    for (auto _ : state) {
        ff::foldLanes(lo.data(), hi.data(), r, n);
        benchmark::DoNotOptimize(lo.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
    state.SetLabel(ff::backendName(ff::activeBackend()));
}
BENCHMARK(BM_GlFoldLanes)->Range(1 << 10, 1 << 14);

void
BM_GlDotLanes(benchmark::State &state)
{
    Rng rng(13);
    size_t n = static_cast<size_t>(state.range(0));
    std::vector<Gl64> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = Gl64::random(rng);
        b[i] = Gl64::random(rng);
    }
    for (auto _ : state) {
        Gl64 d = ff::dotLanes(a.data(), b.data(), n);
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
    state.SetLabel(ff::backendName(ff::activeBackend()));
}
BENCHMARK(BM_GlDotLanes)->Range(1 << 10, 1 << 14);

void
BM_GlBatchInverse(benchmark::State &state)
{
    Rng rng(14);
    size_t n = static_cast<size_t>(state.range(0));
    std::vector<Gl64> x(n);
    for (auto &v : x)
        v = Gl64::random(rng);
    std::vector<Gl64> scratch(n);
    for (auto _ : state) {
        std::copy(x.begin(), x.end(), scratch.begin());
        ff::batchInverse(scratch.data(), n);
        benchmark::DoNotOptimize(scratch.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_GlBatchInverse)->Range(1 << 10, 1 << 12);

void
BM_Ntt(benchmark::State &state)
{
    Rng rng(5);
    size_t n = static_cast<size_t>(state.range(0));
    std::vector<Fr> data(n);
    for (auto &x : data)
        x = Fr::random(rng);
    for (auto _ : state) {
        ntt(data);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Ntt)->Range(1 << 8, 1 << 12)->Complexity();

void
BM_MsmPippenger(benchmark::State &state)
{
    Rng rng(6);
    size_t n = static_cast<size_t>(state.range(0));
    auto points = randomPoints(n, rng);
    std::vector<Fr> scalars(n);
    for (auto &s : scalars)
        s = Fr::random(rng);
    for (auto _ : state) {
        auto r = msmPippenger(points, scalars);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MsmPippenger)->Range(1 << 6, 1 << 10);

void
BM_MerkleBuild(benchmark::State &state)
{
    size_t blocks = static_cast<size_t>(state.range(0));
    std::vector<uint8_t> data(blocks * 64, 0x5a);
    for (auto _ : state) {
        auto t = MerkleTree::build(data);
        benchmark::DoNotOptimize(t.root());
    }
}
BENCHMARK(BM_MerkleBuild)->Range(1 << 8, 1 << 12);

void
BM_SumcheckProve(benchmark::State &state)
{
    Rng rng(7);
    unsigned n = static_cast<unsigned>(state.range(0));
    auto poly = Multilinear<Fr>::random(n, rng);
    std::vector<Fr> challenges(n);
    for (auto &c : challenges)
        c = Fr::random(rng);
    for (auto _ : state) {
        auto proof = proveSumcheck(poly, challenges);
        benchmark::DoNotOptimize(proof.rounds.data());
    }
}
BENCHMARK(BM_SumcheckProve)->DenseRange(8, 14, 3);

void
BM_SpielmanEncode(benchmark::State &state)
{
    Rng rng(8);
    size_t k = static_cast<size_t>(state.range(0));
    SpielmanCode<Fr> code(k, 99);
    std::vector<Fr> msg(k);
    for (auto &m : msg)
        m = Fr::random(rng);
    for (auto _ : state) {
        auto cw = code.encode(msg);
        benchmark::DoNotOptimize(cw.data());
    }
}
BENCHMARK(BM_SpielmanEncode)->Range(1 << 8, 1 << 12);

void
BM_PcsCommit(benchmark::State &state)
{
    Rng rng(9);
    unsigned n = static_cast<unsigned>(state.range(0));
    TensorPcs<Fr> pcs(n, 42);
    std::vector<Fr> poly(size_t{1} << n);
    for (auto &p : poly)
        p = Fr::random(rng);
    for (auto _ : state) {
        auto st = pcs.commit(poly);
        benchmark::DoNotOptimize(st.commitment.root);
    }
}
BENCHMARK(BM_PcsCommit)->DenseRange(10, 14, 2);

void
BM_GkrProveLayer(benchmark::State &state)
{
    Rng rng(10);
    unsigned width_vars = static_cast<unsigned>(state.range(0));
    auto c = randomLayeredCircuit<Fr>(width_vars, 2,
                                      size_t{1} << width_vars, rng);
    std::vector<Fr> inputs(size_t{1} << width_vars);
    for (auto &x : inputs)
        x = Fr::random(rng);
    Gkr<Fr> gkr(c);
    for (auto _ : state) {
        Transcript t("bench");
        auto proof = gkr.prove(inputs, t);
        benchmark::DoNotOptimize(proof.layers.data());
    }
}
BENCHMARK(BM_GkrProveLayer)->DenseRange(6, 10, 2);

/**
 * Median wall ms of @p fn over five runs (first run doubles as
 * warmup and is measured like the rest; the median is robust to it).
 */
template <typename Fn>
double
medianMs(Fn &&fn)
{
    double t[5];
    for (double &ms : t) {
        Timer timer;
        fn();
        ms = timer.milliseconds();
    }
    std::sort(t, t + 5);
    return t[2];
}

/**
 * Scalar-vs-SIMD sweep of the packed Goldilocks kernels. Each kernel
 * runs the identical call sites under the forced scalar backend and
 * the host's best backend; outputs are cross-checked (they must be
 * bit-identical) and throughput goes to the table and the JSON dump.
 */
void
runFieldSweep(bench::JsonBench &json)
{
    using bzk::ff::Backend;
    constexpr size_t kN = size_t{1} << 14;
    constexpr size_t kIters = 64;
    constexpr size_t kInvN = size_t{1} << 12;

    Rng rng(0xf1e1d);
    std::vector<Gl64> a(kN), b(kN), out(kN), scratch(kN);
    for (size_t i = 0; i < kN; ++i) {
        a[i] = Gl64::random(rng);
        b[i] = Gl64::random(rng);
    }
    Gl64 r = Gl64::random(rng);

    Backend best = ff::detectBackend();
    json.meta("field_backend", ff::backendName(best));
    json.meta("field_lanes",
              std::to_string(ff::backendLanes(best)));

    struct Kernel
    {
        const char *label;
        void (*run)(std::vector<Gl64> &, std::vector<Gl64> &,
                    std::vector<Gl64> &, const Gl64 &);
    };
    const Kernel kernels[] = {
        {"field_add",
         [](std::vector<Gl64> &x, std::vector<Gl64> &y,
            std::vector<Gl64> &o, const Gl64 &) {
             for (size_t it = 0; it < kIters; ++it)
                 ff::addLanes(x.data(), y.data(), o.data(), x.size());
         }},
        {"field_mul",
         [](std::vector<Gl64> &x, std::vector<Gl64> &y,
            std::vector<Gl64> &o, const Gl64 &) {
             for (size_t it = 0; it < kIters; ++it)
                 ff::mulLanes(x.data(), y.data(), o.data(), x.size());
         }},
        {"field_fold",
         [](std::vector<Gl64> &x, std::vector<Gl64> &y,
            std::vector<Gl64> &o, const Gl64 &rr) {
             for (size_t it = 0; it < kIters; ++it) {
                 std::copy(x.begin(), x.end(), o.begin());
                 ff::foldLanes(o.data(), y.data(), rr, x.size());
             }
         }},
        {"field_dot",
         [](std::vector<Gl64> &x, std::vector<Gl64> &y,
            std::vector<Gl64> &o, const Gl64 &) {
             for (size_t it = 0; it < kIters; ++it)
                 o[0] = ff::dotLanes(x.data(), y.data(), x.size());
         }},
    };

    TablePrinter table({"Kernel", "scalar Melem/s",
                        std::string(ff::backendName(best)) + " Melem/s",
                        "speedup"});
    double total_elems = static_cast<double>(kN) * kIters;
    for (const Kernel &k : kernels) {
        ff::forceBackend(Backend::kScalar);
        double scalar_ms = medianMs([&] { k.run(a, b, out, r); });
        std::vector<Gl64> scalar_out = out;
        ff::forceBackend(best);
        double simd_ms = medianMs([&] { k.run(a, b, out, r); });
        if (out != scalar_out)
            fatal("bench_micro: %s diverged between backends", k.label);
        double scalar_tp = total_elems / scalar_ms / 1e3;
        double simd_tp = total_elems / simd_ms / 1e3;
        double speedup = scalar_ms / simd_ms;
        table.addRow({k.label, formatSig(scalar_tp, 4),
                      formatSig(simd_tp, 4), bench::fmtSpeedup(speedup)});
        json.addRow(k.label, {{"scalar_elems_per_ms", scalar_tp * 1e3},
                              {"simd_elems_per_ms", simd_tp * 1e3},
                              {"simd_speedup", speedup}});
    }
    ff::clearForcedBackend();

    // Batch inversion vs. per-element Fermat inversions (the win is
    // algorithmic — one inversion plus 3n muls — not lane packing).
    std::vector<Gl64> inv_in(a.begin(), a.begin() + kInvN);
    double fermat_ms = medianMs([&] {
        std::copy(inv_in.begin(), inv_in.end(), scratch.begin());
        for (size_t i = 0; i < kInvN; ++i)
            scratch[i] = scratch[i].inverse();
    });
    std::vector<Gl64> fermat_out(scratch.begin(),
                                 scratch.begin() + kInvN);
    double batch_ms = medianMs([&] {
        std::copy(inv_in.begin(), inv_in.end(), scratch.begin());
        ff::batchInverse(scratch.data(), kInvN);
    });
    if (!std::equal(fermat_out.begin(), fermat_out.end(),
                    scratch.begin()))
        fatal("bench_micro: batchInverse diverged from Fermat");
    double batch_tp = kInvN / batch_ms;
    table.addRow({"field_batch_inverse", formatSig(kInvN / fermat_ms / 1e3, 4),
                  formatSig(batch_tp / 1e3, 4),
                  bench::fmtSpeedup(fermat_ms / batch_ms)});
    json.addRow("field_batch_inverse",
                {{"elems_per_ms", batch_tp},
                 {"speedup_vs_fermat", fermat_ms / batch_ms}});

    bench::printTable(
        "Packed Goldilocks field kernels (scalar vs " +
            std::string(ff::backendName(best)) + ")",
        table,
        "Single-threaded; outputs verified bit-identical across "
        "backends. batch_inverse compares against per-element Fermat "
        "inversion on the same backend.");
}

/**
 * Scalar-vs-packed sweep of the wide 4x64-limb Montgomery kernels on
 * BN254 Fr, plus the 2^14-point MSM acceptance sweep: the vectorized
 * batch-affine bucket pass must beat the scalar Jacobian bucket loop
 * and produce a bit-identical point. Outputs under the forced scalar
 * table and the host's best wide backend are cross-checked
 * element-by-element before any throughput is reported.
 */
void
runWideFieldSweep(bench::JsonBench &json)
{
    using bzk::ff::Backend;
    constexpr size_t kN = size_t{1} << 14;
    constexpr size_t kIters = 16;
    constexpr size_t kInvN = size_t{1} << 12;

    Rng rng(0xb254);
    std::vector<Fr> a(kN), b(kN), out(kN), scratch(kN);
    for (size_t i = 0; i < kN; ++i) {
        a[i] = Fr::random(rng);
        b[i] = Fr::random(rng);
    }

    Backend best = ff::detectBackend();
    const char *wide_name =
        ff::wideBackendName(ff::activeWideBackend());
    json.meta("wide_backend", wide_name);
    json.meta("wide_lanes", std::to_string(ff::wideBackendLanes(
                                ff::activeWideBackend())));
    json.meta("wide_ifma",
              ff::wideIfmaAvailable() ? "available" : "absent");

    TablePrinter table({"Kernel", "scalar Melem/s",
                        std::string(wide_name) + " Melem/s",
                        "speedup"});
    double total_elems = static_cast<double>(kN) * kIters;

    struct Kernel
    {
        const char *label;
        void (*run)(std::vector<Fr> &, std::vector<Fr> &,
                    std::vector<Fr> &);
    };
    const Kernel kernels[] = {
        {"wide_field_mul",
         [](std::vector<Fr> &x, std::vector<Fr> &y,
            std::vector<Fr> &o) {
             for (size_t it = 0; it < kIters; ++it)
                 ff::mulLanes(x.data(), y.data(), o.data(), x.size());
         }},
        {"wide_field_add",
         [](std::vector<Fr> &x, std::vector<Fr> &y,
            std::vector<Fr> &o) {
             for (size_t it = 0; it < kIters; ++it)
                 ff::addLanes(x.data(), y.data(), o.data(), x.size());
         }},
        {"wide_field_dot",
         [](std::vector<Fr> &x, std::vector<Fr> &y,
            std::vector<Fr> &o) {
             for (size_t it = 0; it < kIters; ++it)
                 o[0] = ff::dotLanes(x.data(), y.data(), x.size());
         }},
    };
    for (const Kernel &k : kernels) {
        ff::forceBackend(Backend::kScalar);
        double scalar_ms = medianMs([&] { k.run(a, b, out); });
        std::vector<Fr> scalar_out = out;
        ff::forceBackend(best);
        double wide_ms = medianMs([&] { k.run(a, b, out); });
        if (out != scalar_out)
            fatal("bench_micro: %s diverged between wide backends",
                  k.label);
        double scalar_tp = total_elems / scalar_ms / 1e3;
        double wide_tp = total_elems / wide_ms / 1e3;
        double speedup = scalar_ms / wide_ms;
        table.addRow({k.label, formatSig(scalar_tp, 4),
                      formatSig(wide_tp, 4),
                      bench::fmtSpeedup(speedup)});
        json.addRow(k.label,
                    {{"scalar_elems_per_ms", scalar_tp * 1e3},
                     {"wide_elems_per_ms", wide_tp * 1e3},
                     {"wide_simd_speedup", speedup}});
    }
    ff::clearForcedBackend();

    // Batch inversion: one Fermat inversion plus 3n packed muls vs.
    // n independent Fermat inversions. This is the same shared
    // denominator the MSM batch-affine pass amortizes.
    std::vector<Fr> inv_in(a.begin(), a.begin() + kInvN);
    double fermat_ms = medianMs([&] {
        std::copy(inv_in.begin(), inv_in.end(), scratch.begin());
        for (size_t i = 0; i < kInvN; ++i)
            scratch[i] = scratch[i].inverse();
    });
    std::vector<Fr> fermat_out(scratch.begin(),
                               scratch.begin() + kInvN);
    double batch_ms = medianMs([&] {
        std::copy(inv_in.begin(), inv_in.end(), scratch.begin());
        ff::batchInverse(scratch.data(), kInvN);
    });
    if (!std::equal(fermat_out.begin(), fermat_out.end(),
                    scratch.begin()))
        fatal("bench_micro: Fr batchInverse diverged from Fermat");
    table.addRow({"fr_batch_inverse",
                  formatSig(kInvN / fermat_ms / 1e3, 4),
                  formatSig(kInvN / batch_ms / 1e3, 4),
                  bench::fmtSpeedup(fermat_ms / batch_ms)});
    json.addRow("fr_batch_inverse",
                {{"elems_per_ms", kInvN / batch_ms},
                 {"speedup_vs_fermat", fermat_ms / batch_ms}});

    // MSM acceptance sweep: 2^14 points, scalar Jacobian bucket loop
    // vs. vectorized batch-affine accumulation, bit-identical affine
    // serialization required.
    constexpr size_t kMsmN = size_t{1} << 14;
    auto points = randomPoints(kMsmN, rng);
    std::vector<Fr> scalars(kMsmN);
    for (auto &s : scalars)
        s = Fr::random(rng);
    G1Point jac_result, vec_result;
    double jac_ms =
        medianMs([&] { jac_result = msmPippengerJacobian(points, scalars); });
    double vec_ms =
        medianMs([&] { vec_result = msmPippenger(points, scalars); });
    G1Affine jac_aff = jac_result.toAffine();
    G1Affine vec_aff = vec_result.toAffine();
    if (jac_aff.infinity != vec_aff.infinity ||
        (!jac_aff.infinity &&
         (jac_aff.x.toHexString() != vec_aff.x.toHexString() ||
          jac_aff.y.toHexString() != vec_aff.y.toHexString())))
        fatal("bench_micro: vectorized MSM diverged from Jacobian");
    table.addRow({"msm_pippenger_2e14",
                  formatSig(kMsmN / jac_ms / 1e3, 4),
                  formatSig(kMsmN / vec_ms / 1e3, 4),
                  bench::fmtSpeedup(jac_ms / vec_ms)});
    json.addRow("msm_pippenger_2e14",
                {{"jacobian_ms", jac_ms},
                 {"vector_ms", vec_ms},
                 {"vector_speedup", jac_ms / vec_ms}});

    bench::printTable(
        "Wide BN254 Fr kernels and MSM (scalar vs " +
            std::string(wide_name) + ")",
        table,
        "Single-threaded; outputs verified bit-identical across "
        "backends. fr_batch_inverse compares one shared inversion "
        "against per-element Fermat; msm_pippenger_2e14 compares the "
        "batch-affine bucket pass against the scalar Jacobian loop "
        "(columns are Mpoint/s for that row).");
}

} // namespace
} // namespace bzk

// Custom main: `--json <path>` feeds the JsonBench dump of the field
// sweep (the perf-smoke CI gate), `--threads <n>` installs the
// process-wide host-thread default, and everything else passes through
// to google-benchmark.
int
main(int argc, char **argv)
{
    bzk::bench::JsonBench json("bench_micro", argc, argv);
    bzk::runFieldSweep(json);
    bzk::runWideFieldSweep(json);
    json.write();

    std::vector<std::string> opts;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            ++i;
            continue;
        }
        if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
            bzk::exec::setDefaultThreads(
                std::strtoull(argv[i + 1], nullptr, 10));
            ++i;
            continue;
        }
        opts.push_back(argv[i]);
    }
    std::vector<char *> cargs;
    for (auto &s : opts)
        cargs.push_back(s.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
