/**
 * @file
 * Google-benchmark microbenchmarks of the cryptographic primitives the
 * modules are built from. These are the real host-side costs behind the
 * measured CPU baseline columns in Tables 3-5 and 7.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/TensorPcs.h"
#include "curve/Msm.h"
#include "exec/ExecContext.h"
#include "encoder/SpielmanCode.h"
#include "ff/Fields.h"
#include "ff/Ntt.h"
#include "gkr/Gkr.h"
#include "hash/Sha256.h"
#include "merkle/MerkleTree.h"
#include "poly/Multilinear.h"
#include "sumcheck/Sumcheck.h"

namespace bzk {
namespace {

void
BM_Sha256Compress(benchmark::State &state)
{
    uint8_t block[64] = {1, 2, 3};
    for (auto _ : state) {
        auto d = Sha256::compressBlock(std::span<const uint8_t, 64>(block));
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_Sha256Compress);

void
BM_Sha256Compress4(benchmark::State &state)
{
    uint8_t blocks[4 * 64] = {1, 2, 3};
    Digest out[4];
    for (auto _ : state) {
        Sha256::compressBlocks4(blocks, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_Sha256Compress4);

void
BM_Sha256Compress8(benchmark::State &state)
{
    uint8_t blocks[8 * 64] = {1, 2, 3};
    Digest out[8];
    for (auto _ : state) {
        Sha256::compressBlocks8(blocks, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Sha256Compress8);

/**
 * One Merkle layer via hashPair (per-node schedule setup + digest
 * staging copies) vs. hashPairs (in-place multi-way compression) —
 * the hot-loop hoisting this layer's build path now uses.
 */
void
BM_MerkleLayerHashPair(benchmark::State &state)
{
    size_t pairs = static_cast<size_t>(state.range(0));
    std::vector<Digest> below(2 * pairs);
    std::vector<Digest> above(pairs);
    for (size_t i = 0; i < below.size(); ++i)
        below[i].bytes[0] = static_cast<uint8_t>(i);
    for (auto _ : state) {
        for (size_t i = 0; i < pairs; ++i)
            above[i] = Sha256::hashPair(below[2 * i], below[2 * i + 1]);
        benchmark::DoNotOptimize(above.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(pairs));
}
BENCHMARK(BM_MerkleLayerHashPair)->Range(1 << 8, 1 << 12);

void
BM_MerkleLayerHashPairs(benchmark::State &state)
{
    size_t pairs = static_cast<size_t>(state.range(0));
    std::vector<Digest> below(2 * pairs);
    std::vector<Digest> above(pairs);
    for (size_t i = 0; i < below.size(); ++i)
        below[i].bytes[0] = static_cast<uint8_t>(i);
    for (auto _ : state) {
        Sha256::hashPairs(below.data(), pairs, above.data());
        benchmark::DoNotOptimize(above.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(pairs));
}
BENCHMARK(BM_MerkleLayerHashPairs)->Range(1 << 8, 1 << 12);

void
BM_Sha256Digest1K(benchmark::State &state)
{
    std::vector<uint8_t> data(1024, 0xab);
    for (auto _ : state) {
        auto d = Sha256::digest(data);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_Sha256Digest1K);

void
BM_FrMul(benchmark::State &state)
{
    Rng rng(1);
    Fr a = Fr::random(rng);
    Fr b = Fr::random(rng);
    for (auto _ : state) {
        a = a * b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_FrMul);

void
BM_FrAdd(benchmark::State &state)
{
    Rng rng(2);
    Fr a = Fr::random(rng);
    Fr b = Fr::random(rng);
    for (auto _ : state) {
        a = a + b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_FrAdd);

void
BM_FrInverse(benchmark::State &state)
{
    Rng rng(3);
    Fr a = Fr::random(rng);
    for (auto _ : state) {
        a = a.inverse() + Fr::one();
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_FrInverse);

void
BM_GoldilocksMul(benchmark::State &state)
{
    Rng rng(4);
    Gl64 a = Gl64::random(rng);
    Gl64 b = Gl64::random(rng);
    for (auto _ : state) {
        a = a * b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_GoldilocksMul);

void
BM_Ntt(benchmark::State &state)
{
    Rng rng(5);
    size_t n = static_cast<size_t>(state.range(0));
    std::vector<Fr> data(n);
    for (auto &x : data)
        x = Fr::random(rng);
    for (auto _ : state) {
        ntt(data);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Ntt)->Range(1 << 8, 1 << 12)->Complexity();

void
BM_MsmPippenger(benchmark::State &state)
{
    Rng rng(6);
    size_t n = static_cast<size_t>(state.range(0));
    auto points = randomPoints(n, rng);
    std::vector<Fr> scalars(n);
    for (auto &s : scalars)
        s = Fr::random(rng);
    for (auto _ : state) {
        auto r = msmPippenger(points, scalars);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MsmPippenger)->Range(1 << 6, 1 << 10);

void
BM_MerkleBuild(benchmark::State &state)
{
    size_t blocks = static_cast<size_t>(state.range(0));
    std::vector<uint8_t> data(blocks * 64, 0x5a);
    for (auto _ : state) {
        auto t = MerkleTree::build(data);
        benchmark::DoNotOptimize(t.root());
    }
}
BENCHMARK(BM_MerkleBuild)->Range(1 << 8, 1 << 12);

void
BM_SumcheckProve(benchmark::State &state)
{
    Rng rng(7);
    unsigned n = static_cast<unsigned>(state.range(0));
    auto poly = Multilinear<Fr>::random(n, rng);
    std::vector<Fr> challenges(n);
    for (auto &c : challenges)
        c = Fr::random(rng);
    for (auto _ : state) {
        auto proof = proveSumcheck(poly, challenges);
        benchmark::DoNotOptimize(proof.rounds.data());
    }
}
BENCHMARK(BM_SumcheckProve)->DenseRange(8, 14, 3);

void
BM_SpielmanEncode(benchmark::State &state)
{
    Rng rng(8);
    size_t k = static_cast<size_t>(state.range(0));
    SpielmanCode<Fr> code(k, 99);
    std::vector<Fr> msg(k);
    for (auto &m : msg)
        m = Fr::random(rng);
    for (auto _ : state) {
        auto cw = code.encode(msg);
        benchmark::DoNotOptimize(cw.data());
    }
}
BENCHMARK(BM_SpielmanEncode)->Range(1 << 8, 1 << 12);

void
BM_PcsCommit(benchmark::State &state)
{
    Rng rng(9);
    unsigned n = static_cast<unsigned>(state.range(0));
    TensorPcs<Fr> pcs(n, 42);
    std::vector<Fr> poly(size_t{1} << n);
    for (auto &p : poly)
        p = Fr::random(rng);
    for (auto _ : state) {
        auto st = pcs.commit(poly);
        benchmark::DoNotOptimize(st.commitment.root);
    }
}
BENCHMARK(BM_PcsCommit)->DenseRange(10, 14, 2);

void
BM_GkrProveLayer(benchmark::State &state)
{
    Rng rng(10);
    unsigned width_vars = static_cast<unsigned>(state.range(0));
    auto c = randomLayeredCircuit<Fr>(width_vars, 2,
                                      size_t{1} << width_vars, rng);
    std::vector<Fr> inputs(size_t{1} << width_vars);
    for (auto &x : inputs)
        x = Fr::random(rng);
    Gkr<Fr> gkr(c);
    for (auto _ : state) {
        Transcript t("bench");
        auto proof = gkr.prove(inputs, t);
        benchmark::DoNotOptimize(proof.layers.data());
    }
}
BENCHMARK(BM_GkrProveLayer)->DenseRange(6, 10, 2);

} // namespace
} // namespace bzk

// Custom main so `--json <path>` works like the table benches: it is
// translated into google-benchmark's JSON reporter flags before
// Initialize() consumes argv. `--threads <n>` is consumed the same way
// and installed as the process-wide host-thread default.
int
main(int argc, char **argv)
{
    std::vector<std::string> opts;
    std::string out_flag, fmt_flag;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            out_flag = "--benchmark_out=" + std::string(argv[i + 1]);
            fmt_flag = "--benchmark_out_format=json";
            ++i;
            continue;
        }
        if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
            bzk::exec::setDefaultThreads(
                std::strtoull(argv[i + 1], nullptr, 10));
            ++i;
            continue;
        }
        opts.push_back(argv[i]);
    }
    if (!out_flag.empty()) {
        opts.push_back(out_flag);
        opts.push_back(fmt_flag);
    }
    std::vector<char *> cargs;
    for (auto &s : opts)
        cargs.push_back(s.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
