/**
 * @file
 * Table 11: the verifiable machine-learning application — VGG-16 on
 * CIFAR-10-sized inputs. Our pipelined system (GH200 spec) against a
 * CPU prover at the same circuit scale, plus the paper-reported
 * zkCNN/ZKML/ZENO figures for context.
 */

#include "bench/BenchUtil.h"
#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"
#include "util/Rng.h"
#include "zkml/MlService.h"

using namespace bzk;
using namespace bzk::bench;

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    Rng rng(0xdead11);
    JsonBench json("bench_zkml", argc, argv);
    json.meta("device", dev.spec().name);

    VerifiableMlService service(dev, rng);
    std::printf("model commitment: %s\n",
                service.modelCommitment().toHex().c_str());
    std::printf("circuit: 2^%u constraint rows (%zu MACs -> %zu proof "
                "gates)\n",
                service.circuitVars(), service.model().macCount(),
                service.model().proofGateCount());

    auto batch = service.serveBatch(64, rng);
    double ms_per_proof = 1.0 / batch.proving.stats.throughput_per_ms;
    double throughput_s = batch.proving.stats.throughput_per_ms * 1e3;
    double latency_s = batch.proving.stats.first_latency_ms / 1e3;

    // CPU prover at the same circuit scale (the zkCNN/ZKML/ZENO
    // stand-in: all three are CPU-based).
    SystemOptions opt;
    SameModulesCpuBaseline cpu(opt, /*measure_cap_vars=*/14);
    auto cpu_result = cpu.run(1, service.circuitVars(), rng);
    double cpu_latency_s = cpu_result.stats.first_latency_ms / 1e3;

    TablePrinter table(
        {"Scheme", "Throughput (proofs/s)", "Latency (s)", "Source"});
    table.addRow({"zkCNN (paper-reported)", "0.0113", "88.3",
                  "quoted from Table 11"});
    table.addRow({"ZKML (paper-reported)", "0.0017", "637",
                  "quoted from Table 11"});
    table.addRow({"ZENO (paper-reported)", "0.0208", "48.0",
                  "quoted from Table 11"});
    table.addRow({"CPU same-modules (ours, measured)",
                  formatSig(1.0 / cpu_latency_s, 3),
                  formatSig(cpu_latency_s, 4), "this host, extrapolated"});
    table.addRow({"Ours (GH200 spec)", formatSig(throughput_s, 4),
                  formatSig(latency_s, 4), "simulated"});

    json.addRow("vgg16",
                {{"ours_throughput_per_s", throughput_s},
                 {"ours_latency_s", latency_s},
                 {"ours_ms_per_proof", ms_per_proof},
                 {"cpu_latency_s", cpu_latency_s}});

    printTable("Table 11: verifiable ML (VGG-16, 32x32x3 inputs)", table,
               "Sub-second amortized proof generation: " +
                   formatSig(ms_per_proof, 4) +
                   " ms/proof in steady state. Model accuracy is not "
                   "reproducible without training data (see DESIGN.md).");
    return 0;
}
