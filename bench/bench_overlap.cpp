/**
 * @file
 * Table 9: amortized CPU-GPU communication time and GPU computation
 * time in each pipeline cycle at S = 2^20, and the overlapped overall
 * cycle time, across GPUs.
 */

#include "bench/BenchUtil.h"
#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"
#include "util/Rng.h"

using namespace bzk;
using namespace bzk::bench;

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    Rng rng(0xdead09);
    const unsigned logs = 20;
    JsonBench json("bench_overlap", argc, argv);
    json.meta("device", "all-presets");

    TablePrinter table({"GPU", "Link", "Comm. size", "Comm. time",
                        "Comp. time", "Overall (overlap)"});

    for (const auto &spec :
         {gpusim::DeviceSpec::v100(), gpusim::DeviceSpec::a100(),
          gpusim::DeviceSpec::rtx3090ti(), gpusim::DeviceSpec::h100(),
          gpusim::DeviceSpec::gh200()}) {
        gpusim::Device dev(spec);
        SystemOptions opt;
        opt.functional = 0;
        PipelinedZkpSystem system(dev, opt);
        size_t batch = 256;
        auto result = system.run(batch, logs, rng);

        double overall_cycle =
            result.stats.total_ms / static_cast<double>(batch);
        char size_buf[32];
        std::snprintf(size_buf, sizeof(size_buf), "%.0fMB",
                      static_cast<double>(result.h2d_bytes_per_cycle) /
                          (1 << 20));

        table.addRow({spec.name, spec.link_name, size_buf,
                      fmtMs(result.comm_ms_per_cycle) + "ms",
                      fmtMs(result.comp_ms_per_cycle) + "ms",
                      fmtMs(overall_cycle) + "ms"});

        // check_bench.py verifies overall ~ max(comm, comp) from these
        // three keys: a ratio inversion means overlap stopped hiding
        // transfers behind compute.
        json.addRow(spec.name,
                    {{"comm_ms", result.comm_ms_per_cycle},
                     {"comp_ms", result.comp_ms_per_cycle},
                     {"overall_ms", overall_cycle},
                     {"h2d_mb_per_cycle",
                      static_cast<double>(result.h2d_bytes_per_cycle) /
                          (1 << 20)}});
    }

    printTable("Table 9: per-cycle communication vs computation at "
               "S = 2^20",
               table,
               "Overall ~ max(comm, comp): the multi-stream pipeline "
               "hides transfers behind compute, as the paper reports.");
    return 0;
}
