/**
 * @file
 * Table 4: throughput of sum-check modules (proofs/ms) for n-variable
 * multilinear polynomials, n = 18 .. 22, on the GH200 spec.
 *
 * Columns: Arkworks-style CPU prover (real, measured), Icicle-style
 * intuitive GPU baseline (simulated), our pipelined module (simulated).
 */

#include "bench/BenchUtil.h"
#include "gpusim/Device.h"
#include "sumcheck/GpuSumcheck.h"
#include "util/Rng.h"

using namespace bzk;
using namespace bzk::bench;

int
main(int argc, char **argv)
{
    size_t threads = applyThreadsFlag(argc, argv);
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    Rng rng(0xdead02);
    JsonBench json("bench_sumcheck", argc, argv);
    json.meta("device", dev.spec().name);
    json.meta("threads", std::to_string(threads));

    TablePrinter table({"Size", "Arkworks(CPU) p/ms", "Icicle(GPU) p/ms",
                        "Ours(GPU) p/ms", "vs CPU", "vs GPU"});

    for (unsigned n = 22; n >= 18; --n) {
        CpuSumcheckBaseline cpu(/*sample_proofs=*/1);
        auto cpu_stats = cpu.run(16, n, rng);

        GpuSumcheckOptions opt;
        opt.functional = 0;
        auto icicle = IntuitiveSumcheckGpu(dev, opt).run(32, n, rng);
        auto ours = PipelinedSumcheckGpu(dev, opt).run(128, n, rng);

        table.addRow({fmtPow2(n),
                      fmtThroughput(cpu_stats.throughput_per_ms),
                      fmtThroughput(icicle.throughput_per_ms),
                      fmtThroughput(ours.throughput_per_ms),
                      fmtSpeedup(ours.throughput_per_ms /
                                 cpu_stats.throughput_per_ms),
                      fmtSpeedup(ours.throughput_per_ms /
                                 icicle.throughput_per_ms)});
        json.addRow(fmtPow2(n),
                    {{"ours_throughput_per_ms", ours.throughput_per_ms},
                     {"icicle_throughput_per_ms",
                      icicle.throughput_per_ms},
                     {"cpu_throughput_per_ms",
                      cpu_stats.throughput_per_ms}});
    }

    printTable("Table 4: throughput of sum-check modules (GH200 spec)",
               table,
               "CPU column measured on this host (" +
                   std::to_string(threads) +
                   " thread(s), like arkworks with rayon); both GPU "
                   "drivers stream tables from host memory as the "
                   "paper's module does.");
    return 0;
}
