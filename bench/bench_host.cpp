/**
 * @file
 * Host-parallel thread sweep: throughput of the three real host
 * modules (Merkle build, sum-check prover, Spielman encoder) at 1, 2,
 * and 4 threads on this machine's ExecContext pool. This is the bench
 * behind the PR's "2x module throughput at 4 threads" acceptance
 * criterion; the checked-in baseline pins the speedup columns (which
 * transfer across machines) rather than absolute throughput.
 *
 * Results are bit-identical across thread counts by construction
 * (fixed-shape reductions); the roots/transcripts are cross-checked
 * here as a belt-and-braces guard on top of the unit tests.
 */

#include <algorithm>

#include "bench/BenchUtil.h"
#include "encoder/SpielmanCode.h"
#include "exec/ExecContext.h"
#include "ff/FieldBackend.h"
#include "ff/Fields.h"
#include "hash/Transcript.h"
#include "merkle/MerkleTree.h"
#include "poly/Multilinear.h"
#include "sumcheck/Sumcheck.h"
#include "util/Rng.h"
#include "util/Timer.h"

using namespace bzk;
using namespace bzk::bench;

namespace {

constexpr size_t kMerkleBlocks = size_t{1} << 14;
constexpr unsigned kSumcheckVars = 16;
constexpr size_t kEncoderK = size_t{1} << 13;
constexpr size_t kEncoderReps = 8;

/** Median-of-3 wall time of @p fn, ms. */
template <typename Fn>
double
timeMs(Fn &&fn)
{
    double best[3];
    for (double &t : best) {
        Timer timer;
        fn();
        t = timer.milliseconds();
    }
    std::sort(best, best + 3);
    return best[1];
}

struct ModuleResult
{
    double ms = 0.0;
    double efficiency = 1.0;
};

ModuleResult
runMerkle(const std::vector<uint8_t> &data, size_t threads,
          Digest *root_out)
{
    exec::ExecConfig cfg;
    cfg.threads = threads;
    exec::ExecContext exec(cfg);
    ModuleResult res;
    res.ms = timeMs([&] {
        MerkleTree tree = MerkleTree::build(data, &exec);
        *root_out = tree.root();
    });
    res.efficiency = exec.parallelEfficiency();
    return res;
}

ModuleResult
runSumcheck(const Multilinear<Fr> &poly, size_t threads, Fr *pin_out)
{
    exec::ExecConfig cfg;
    cfg.threads = threads;
    exec::ExecContext exec(cfg);
    ModuleResult res;
    res.ms = timeMs([&] {
        Transcript transcript("bench_host.sumcheck");
        auto proof = proveSumcheckFs(poly, transcript, &exec);
        *pin_out = proof.proof.rounds.back().back();
    });
    res.efficiency = exec.parallelEfficiency();
    return res;
}

ModuleResult
runEncoder(const SpielmanCode<Fr> &code, const std::vector<Fr> &msg,
           size_t threads, Fr *pin_out)
{
    exec::ExecConfig cfg;
    cfg.threads = threads;
    exec::ExecContext exec(cfg);
    ModuleResult res;
    res.ms = timeMs([&] {
        for (size_t rep = 0; rep < kEncoderReps; ++rep) {
            auto cw = code.encode(msg, &exec);
            *pin_out = cw.back();
        }
    });
    res.efficiency = exec.parallelEfficiency();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t max_threads = applyThreadsFlag(argc, argv);
    JsonBench json("bench_host", argc, argv);
    json.meta("max_threads", std::to_string(max_threads));

    Rng rng(0xb057);
    std::vector<uint8_t> merkle_data(kMerkleBlocks * 64);
    for (auto &b : merkle_data)
        b = static_cast<uint8_t>(rng.next());
    auto poly = Multilinear<Fr>::random(kSumcheckVars, rng);
    SpielmanCode<Fr> code(kEncoderK, 0xbeef);
    std::vector<Fr> msg(kEncoderK);
    for (auto &m : msg)
        m = Fr::random(rng);

    const size_t sweep[] = {1, 2, 4};
    TablePrinter table({"Module", "1t ms", "2t ms", "4t ms", "2t speedup",
                        "4t speedup", "4t efficiency"});

    struct Sweep
    {
        const char *name;
        double ms[3];
        double eff[3];
    };
    Sweep merkle{"merkle", {}, {}};
    Sweep sumcheck{"sumcheck", {}, {}};
    Sweep encoder{"encoder", {}, {}};

    Digest root_ref{}, root{};
    Fr sc_ref{}, sc{};
    Fr enc_ref{}, enc{};
    for (size_t i = 0; i < 3; ++i) {
        auto mr = runMerkle(merkle_data, sweep[i], i == 0 ? &root_ref
                                                          : &root);
        auto sr = runSumcheck(poly, sweep[i], i == 0 ? &sc_ref : &sc);
        auto er = runEncoder(code, msg, sweep[i],
                             i == 0 ? &enc_ref : &enc);
        merkle.ms[i] = mr.ms;
        merkle.eff[i] = mr.efficiency;
        sumcheck.ms[i] = sr.ms;
        sumcheck.eff[i] = sr.efficiency;
        encoder.ms[i] = er.ms;
        encoder.eff[i] = er.efficiency;
        if (i > 0 && (root != root_ref || sc != sc_ref || enc != enc_ref))
            fatal("bench_host: results diverged at %zu threads",
                  sweep[i]);
    }

    for (const Sweep *s : {&merkle, &sumcheck, &encoder}) {
        double s2 = s->ms[0] / s->ms[1];
        double s4 = s->ms[0] / s->ms[2];
        table.addRow({s->name, fmtMs(s->ms[0]), fmtMs(s->ms[1]),
                      fmtMs(s->ms[2]), fmtSpeedup(s2), fmtSpeedup(s4),
                      formatSig(s->eff[2], 3)});
        json.addRow(s->name, {{"ms_1t", s->ms[0]},
                              {"ms_2t", s->ms[1]},
                              {"ms_4t", s->ms[2]},
                              {"speedup_2t", s2},
                              {"speedup_4t", s4},
                              {"efficiency_4t", s->eff[2]}});
    }

    printTable(
        "Host-parallel module throughput (thread sweep)", table,
        "Real host modules on this machine; speedups depend on core "
        "count (single-core hosts show ~1.0x). Results are verified "
        "bit-identical across the sweep.");

    // Module-level field-backend sweep: the Goldilocks sum-check
    // prover under the forced scalar backend vs. the host's best one.
    // Informational (not gated): the kernel-level gate lives in
    // bench_micro's baseline.
    ff::Backend best = ff::detectBackend();
    json.meta("field_backend", ff::backendName(best));
    auto gl_poly = Multilinear<Gl64>::random(kSumcheckVars, rng);
    Gl64 gl_ref{}, gl_pin{};
    auto run_gl = [&](Gl64 *pin) {
        return timeMs([&] {
            Transcript transcript("bench_host.gl_sumcheck");
            auto proof = proveSumcheckFs(gl_poly, transcript);
            *pin = proof.proof.rounds.back().back();
        });
    };
    ff::forceBackend(ff::Backend::kScalar);
    double gl_scalar_ms = run_gl(&gl_ref);
    ff::forceBackend(best);
    double gl_simd_ms = run_gl(&gl_pin);
    ff::clearForcedBackend();
    if (gl_pin != gl_ref)
        fatal("bench_host: Goldilocks sum-check diverged across "
              "field backends");
    json.addRow("gl_sumcheck_backend",
                {{"ms_scalar", gl_scalar_ms},
                 {"ms_simd", gl_simd_ms},
                 {"simd_speedup", gl_scalar_ms / gl_simd_ms}});
    TablePrinter fb_table(
        {"Module", "scalar ms",
         std::string(ff::backendName(best)) + " ms", "speedup"});
    fb_table.addRow({"gl_sumcheck", fmtMs(gl_scalar_ms),
                     fmtMs(gl_simd_ms),
                     fmtSpeedup(gl_scalar_ms / gl_simd_ms)});
    printTable(
        "Goldilocks sum-check by field backend (1 thread)", fb_table,
        "Transcripts verified identical across backends; see "
        "bench_micro for the kernel-level sweep CI gates on.");
    return 0;
}
