/**
 * @file
 * Table 8: throughput (proofs/second) and latency (seconds) of the ZKP
 * systems across GPUs (V100, A100, 3090Ti, H100) at S = 2^20.
 */

#include "baseline/OldProtocol.h"
#include "bench/BenchUtil.h"
#include "core/MultiGpu.h"
#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"
#include "util/Rng.h"

using namespace bzk;
using namespace bzk::bench;

int
main(int argc, char **argv)
{
    applyThreadsFlag(argc, argv);
    Rng rng(0xdead08);
    const unsigned logs = 20;
    JsonBench json("bench_gpus", argc, argv);
    json.meta("device", "all-presets");

    TablePrinter table({"GPU", "Scheme", "Latency (s)", "Lat. speedup",
                        "Proofs/s", "Thr. speedup"});

    for (const auto &spec :
         {gpusim::DeviceSpec::v100(), gpusim::DeviceSpec::a100(),
          gpusim::DeviceSpec::rtx3090ti(), gpusim::DeviceSpec::h100()}) {
        gpusim::Device dev(spec);

        BellpersonLikeGpu bell(dev);
        auto bp = bell.run(2, logs, rng);
        double bp_latency_s = bp.stats.first_latency_ms / 1e3;
        double bp_throughput_s = bp.stats.throughput_per_ms * 1e3;

        SystemOptions opt;
        opt.functional = 0;
        PipelinedZkpSystem ours(dev, opt);
        auto result = ours.run(256, logs, rng);
        double our_latency_s = result.stats.first_latency_ms / 1e3;
        double our_throughput_s = result.stats.throughput_per_ms * 1e3;

        table.addRow({spec.name, "Bellperson", fmtMs(bp_latency_s), "",
                      formatSig(bp_throughput_s, 4), ""});
        table.addRow({"", "Ours", fmtMs(our_latency_s),
                      fmtSpeedup(bp_latency_s / our_latency_s),
                      formatSig(our_throughput_s, 4),
                      fmtSpeedup(our_throughput_s / bp_throughput_s)});
        json.addRow(spec.name,
                    {{"ours_throughput_per_s", our_throughput_s},
                     {"ours_latency_s", our_latency_s},
                     {"bell_throughput_per_s", bp_throughput_s},
                     {"bell_latency_s", bp_latency_s}});
    }

    printTable("Table 8: ZKP systems across GPUs at S = 2^20", table,
               "Both systems simulated on each card's spec; our system "
               "wins latency through the newer protocol and throughput "
               "through the pipeline, as in the paper.");

    // Extension: fleet scaling (independent proofs, one pipeline per
    // card, one host link per card).
    TablePrinter fleet_table({"H100 cards", "Proofs/s", "Scaling"});
    double base = 0.0;
    for (size_t cards : {1u, 2u, 4u, 8u}) {
        SystemOptions opt;
        opt.functional = 0;
        std::vector<gpusim::DeviceSpec> specs(
            cards, gpusim::DeviceSpec::h100());
        MultiGpuZkpSystem fleet(specs, opt);
        Rng frng(0xf1ee7);
        auto result = fleet.run(128 * cards, logs, frng);
        double per_s = result.total_throughput_per_ms * 1e3;
        if (cards == 1)
            base = per_s;
        fleet_table.addRow({std::to_string(cards), formatSig(per_s, 4),
                            fmtSpeedup(per_s / base)});
        json.addRow("fleet-" + std::to_string(cards) + "xH100",
                    {{"fleet_throughput_per_s", per_s},
                     {"fleet_scaling", per_s / base}});
    }
    printTable("Extension: multi-GPU fleet scaling at S = 2^20",
               fleet_table, "");
    return 0;
}
