#include "baseline/OldProtocol.h"

#include <algorithm>
#include <cmath>

#include "curve/Msm.h"
#include "ff/Fields.h"
#include "ff/Ntt.h"
#include "gpusim/Calibration.h"
#include "util/Timer.h"

namespace bzk {

using gpusim::BatchStats;
using gpusim::KernelDesc;
using gpusim::StreamId;

namespace {

/** Pippenger window heuristic shared by cost model and real code. */
unsigned
windowBits(size_t n)
{
    unsigned c = std::max(
        2u, static_cast<unsigned>(
                std::log2(static_cast<double>(n) + 1.0) / 1.3));
    return std::min(c, 16u);
}

/** Bucket-accumulation point additions in one full Groth16 proof. */
double
msmPointAdds(size_t s)
{
    unsigned c = windowBits(s);
    double windows = std::ceil(254.0 / c);
    // 3 G1 MSMs + one G2 MSM at ~2x G1 cost.
    return 5.0 * windows *
           (static_cast<double>(s) + 2.0 * std::pow(2.0, c));
}

/** Butterfly count across the 7 size-2S (i)NTTs. */
double
nttButterflies(size_t s)
{
    double n = 2.0 * static_cast<double>(s);
    return 7.0 * (n / 2.0) * std::log2(n);
}

/** Lane-cycles for one Jacobian point addition (~16 field muls). */
double
pointAddCycles()
{
    return 16.0 * gpusim::kFieldMulCycles + 8.0 * gpusim::kFieldAddCycles;
}

/** Lane-cycles for one NTT butterfly. */
double
butterflyCycles()
{
    return gpusim::kFieldMulCycles + 2.0 * gpusim::kFieldAddCycles +
           3.0 * gpusim::kGlobalAccessCycles;
}

} // namespace

OldProtocolResult
LibsnarkLikeCpu::run(size_t batch, unsigned log_gates, Rng &rng)
{
    size_t s = size_t{1} << log_gates;
    unsigned nm = std::min(log_gates, cap_log_);
    size_t sm = size_t{1} << nm;

    // Witness assignment (synthesis stand-in): field ops per gate.
    Timer synth_timer;
    std::vector<Fr> witness(sm);
    Fr acc = Fr::fromUint(3);
    for (auto &w : witness) {
        acc = acc * acc + Fr::one();
        w = acc;
    }
    double synth_ms = synth_timer.milliseconds() *
                      static_cast<double>(s) / static_cast<double>(sm);

    // Real NTTs at the capped size, extrapolated by butterfly count.
    std::vector<Fr> poly(2 * sm);
    for (auto &p : poly)
        p = Fr::random(rng);
    Timer ntt_timer;
    ntt(poly);
    intt(poly);
    // two_ntts_ms covers 2 transforms of n = 2*sm, i.e.
    // 2 * (n/2) * log n = 2*sm*log(2sm) butterflies.
    double two_ntts_ms = ntt_timer.milliseconds();
    double per_butterfly = two_ntts_ms / (2.0 * sm * std::log2(2.0 * sm));
    double ntt_ms = per_butterfly * nttButterflies(s);

    // Real Pippenger at a capped size, extrapolated by point-add count.
    size_t msm_n = std::min<size_t>(sm, size_t{1} << 12);
    auto points = randomPoints(msm_n, rng);
    std::vector<Fr> scalars(msm_n);
    for (auto &x : scalars)
        x = Fr::random(rng);
    Timer msm_timer;
    G1Point r = msmPippenger(points, scalars);
    (void)r;
    double msm_sample_ms = msm_timer.milliseconds();
    double sample_adds = msmPointAdds(msm_n) / 5.0; // one G1 MSM
    double per_add = msm_sample_ms / sample_adds;
    double msm_ms = per_add * msmPointAdds(s);

    OldProtocolResult out;
    out.synthesis_ms = synth_ms;
    out.ntt_ms = ntt_ms;
    out.msm_ms = msm_ms;
    out.proof_ms = synth_ms + ntt_ms + msm_ms;
    out.stats.batch = batch;
    out.stats.total_ms = out.proof_ms * static_cast<double>(batch);
    out.stats.first_latency_ms = out.proof_ms;
    out.stats.item_latency_ms = out.proof_ms;
    out.stats.throughput_per_ms = 1.0 / out.proof_ms;
    return out;
}

OldProtocolResult
BellpersonLikeGpu::run(size_t batch, unsigned log_gates, Rng &rng)
{
    (void)rng;
    size_t s = size_t{1} << log_gates;
    dev_.resetTimeline();
    dev_.resetMemoryPeak();

    // Bellperson stages its full parameter set per running proof.
    int64_t params = dev_.alloc(static_cast<uint64_t>(
        gpusim::kBellpersonBytesPerGate * static_cast<double>(s) +
        gpusim::kBellpersonFixedBytes));

    double cores = dev_.spec().cuda_cores;
    double synth_ms = gpusim::kSynthesisNsPerGate *
                      static_cast<double>(s) * 1e-6;

    StreamId stream = dev_.createStream();
    StreamId copy = dev_.createStream();
    double first_end = 0.0;
    for (size_t p = 0; p < batch; ++p) {
        // Witness upload for this proof (synthesis is host-side time,
        // modeled as a serial gap: the kernel depends on the copy which
        // is itself issued after synthesis; we fold synthesis into the
        // kernel profile as an idle-lane segment).
        dev_.copyH2D(copy, s * Fr::kNumBytes);

        KernelDesc k;
        k.name = "bellperson_proof";
        k.lanes = cores;
        // Host synthesis: device idle.
        k.profile.push_back(
            {synth_ms * dev_.spec().cyclesPerMs(), 0.0});
        // 7 (i)NTTs: stage kernels, decaying-free shape is roughly flat
        // but pays grid syncs per stage.
        double ntt_stages = 7.0 * std::log2(2.0 * s);
        double ntt_cycles = nttButterflies(s) * butterflyCycles() *
                            gpusim::kBellpersonEfficiency / cores;
        k.profile.push_back(
            {ntt_cycles + ntt_stages * gpusim::kGridSyncCycles, cores});
        // MSMs: bucket accumulation at full width, then bucket
        // reduction with collapsing parallelism (Figure 4a shape).
        double msm_cycles = msmPointAdds(s) * pointAddCycles() *
                            gpusim::kBellpersonEfficiency / cores;
        k.profile.push_back({msm_cycles * 0.85, cores});
        k.profile.push_back({msm_cycles * 0.15, cores * 0.25});
        k.mem_bytes = static_cast<uint64_t>(s) * 128;
        gpusim::OpId op = dev_.launchKernel(stream, k);
        if (p == 0)
            first_end = dev_.opEnd(op);
        dev_.copyD2H(copy, 192 + 96 + 96, op); // the Groth16 proof
    }

    OldProtocolResult out;
    out.synthesis_ms = synth_ms;
    double per_ms = cores * dev_.spec().cyclesPerMs();
    out.ntt_ms = nttButterflies(s) * butterflyCycles() *
                 gpusim::kBellpersonEfficiency / per_ms;
    out.msm_ms = msmPointAdds(s) * pointAddCycles() *
                 gpusim::kBellpersonEfficiency / per_ms;
    out.proof_ms = out.synthesis_ms + out.ntt_ms + out.msm_ms;
    out.stats.batch = batch;
    out.stats.total_ms = dev_.now();
    out.stats.first_latency_ms = first_end;
    out.stats.item_latency_ms = first_end;
    out.stats.throughput_per_ms = batch / out.stats.total_ms;
    out.stats.peak_device_bytes = dev_.peakMemory();
    out.stats.busy_lane_ms = dev_.busyLaneMs();
    out.stats.utilization =
        out.stats.busy_lane_ms / (out.stats.total_ms * cores);

    dev_.free(params);
    return out;
}

} // namespace bzk
