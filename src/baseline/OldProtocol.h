#ifndef BZK_BASELINE_OLDPROTOCOL_H_
#define BZK_BASELINE_OLDPROTOCOL_H_

/**
 * @file
 * The "first category" baseline provers of the paper's Figure 1:
 * Groth16-shaped pipelines dominated by NTT and MSM, standing in for
 * Libsnark (CPU) and Bellperson (GPU) in Tables 7, 8 and 10.
 *
 * Work shape per proof for a circuit with S = 2^log_gates gates:
 *  - constraint synthesis / witness assignment on the host;
 *  - 7 radix-2 (i)NTTs of size 2S over Fr (the quotient polynomial);
 *  - 3 G1 MSMs of size S plus one G2-weight MSM (~2x a G1 MSM).
 *
 * The CPU prover measures our real NTT and Pippenger implementations at
 * a capped size and extrapolates by operation count (documented). The
 * GPU prover charges the simulated device with the intuitive
 * one-proof-at-a-time kernels Bellperson uses; its host-side synthesis
 * cost is the documented calibration constant that reproduces
 * Bellperson's published latency profile.
 */

#include <cstddef>

#include "gpusim/BatchStats.h"
#include "gpusim/Device.h"
#include "util/Rng.h"

namespace bzk {

/** Timing breakdown of one old-protocol proof (Table 7 left half). */
struct OldProtocolResult
{
    gpusim::BatchStats stats;
    /** Amortized per-proof times, ms. */
    double synthesis_ms = 0.0;
    double ntt_ms = 0.0;
    double msm_ms = 0.0;
    double proof_ms = 0.0;
};

/** Libsnark-style CPU Groth16 prover (measured + extrapolated). */
class LibsnarkLikeCpu
{
  public:
    /**
     * @param measure_cap_log largest log-size actually measured; larger
     *        requests extrapolate by operation count.
     */
    explicit LibsnarkLikeCpu(unsigned measure_cap_log = 14)
        : cap_log_(measure_cap_log)
    {
    }

    /** Prove @p batch circuits of 2^log_gates gates each. */
    OldProtocolResult run(size_t batch, unsigned log_gates, Rng &rng);

  private:
    unsigned cap_log_;
};

/** Bellperson-style GPU Groth16 prover on the simulated device. */
class BellpersonLikeGpu
{
  public:
    explicit BellpersonLikeGpu(gpusim::Device &dev) : dev_(dev) {}

    /** @copydoc LibsnarkLikeCpu::run */
    OldProtocolResult run(size_t batch, unsigned log_gates, Rng &rng);

  private:
    gpusim::Device &dev_;
};

} // namespace bzk

#endif // BZK_BASELINE_OLDPROTOCOL_H_
