#ifndef BZK_SUMCHECK_HIGHDEGREEGATE_H_
#define BZK_SUMCHECK_HIGHDEGREEGATE_H_

/**
 * @file
 * High-degree custom-gate sum-check (HyperPlonk-style).
 *
 * Where the legacy constraint sum-check proves the multiplicative gate
 * identity  sum_x eq(tau,x) * (a(x)b(x) - c(x)) = 0  with cubic round
 * polynomials, this module proves the degree-5 custom gate
 *
 *   sum_x eq(tau,x) * (a(x)^4 * b(x) - c(x)) = 0
 *
 * whose round polynomials have degree 6 and are transmitted as their
 * evaluations at t = 0..6. The higher per-round arithmetic (each
 * evaluation point costs four extra multiplications for a_t^4) shifts
 * the module cost mix toward the sum-check stage — exactly the
 * workload shape zkSpeed/zkPHIRE report for HyperPlonk, and the stress
 * case for the scheduler's measured-cost lane policy.
 *
 * Round sums run under the same fixed-shape chunked reduction as the
 * legacy prover, so proofs are bit-identical for any thread count.
 */

#include <array>
#include <cstddef>
#include <vector>

#include "exec/ExecContext.h"
#include "hash/Transcript.h"
#include "sumcheck/Sumcheck.h"
#include "util/Log.h"

namespace bzk {

/** Evaluations per high-degree round polynomial (degree 6). */
constexpr size_t kHighDegreeGateEvals = 7;

/** x^4 via two squarings. */
template <typename F>
inline F
pow4(const F &x)
{
    F sq = x * x;
    return sq * sq;
}

/**
 * Prove sum_x eq(x) * (a(x)^4 * b(x) - c(x)) == 0 non-interactively.
 * All four tables must have the same power-of-two size; they are folded
 * in place round by round. Challenges come from @p transcript (labels
 * "hdg.g" / "hdg.r"), which must already have absorbed the statement.
 * @p point_out accumulates the round challenges.
 */
template <typename F>
ProductSumcheckProof<F>
proveHighDegreeGateFs(std::vector<F> &eq, std::vector<F> &a,
                      std::vector<F> &b, std::vector<F> &c,
                      Transcript &transcript,
                      std::vector<F> *point_out = nullptr,
                      const exec::ExecContext *exec = nullptr)
{
    size_t size = eq.size();
    if (size == 0 || (size & (size - 1)) != 0)
        panic("proveHighDegreeGateFs: table size %zu not a power of two",
              size);
    if (a.size() != size || b.size() != size || c.size() != size)
        panic("proveHighDegreeGateFs: mismatched table sizes");
    unsigned n_vars = 0;
    while ((size_t{1} << n_vars) < size)
        ++n_vars;

    if (exec)
        exec->setRegion("sumcheck");
    ProductSumcheckProof<F> proof;
    proof.rounds.reserve(n_vars);
    using Sums = std::array<F, kHighDegreeGateEvals>;
    const Sums zero{F::zero(), F::zero(), F::zero(), F::zero(),
                    F::zero(), F::zero(), F::zero()};
    for (unsigned round = 0; round < n_vars; ++round) {
        size_t half = a.size() / 2;
        auto chunk_sums = [&](size_t begin, size_t end) {
            Sums s = zero;
            for (size_t x = begin; x < end; ++x) {
                // Each factor restricted to the round variable is
                // affine: lo + t*(hi - lo). t = 0 and t = 1 are the
                // half-table values themselves.
                F d_eq = eq[x + half] - eq[x];
                F d_a = a[x + half] - a[x];
                F d_b = b[x + half] - b[x];
                F d_c = c[x + half] - c[x];
                s[0] += eq[x] * (pow4(a[x]) * b[x] - c[x]);
                s[1] += eq[x + half] *
                        (pow4(a[x + half]) * b[x + half] - c[x + half]);
                for (size_t t = 2; t < kHighDegreeGateEvals; ++t) {
                    F t_f = F::fromUint(t);
                    F eq_t = eq[x] + t_f * d_eq;
                    F a_t = a[x] + t_f * d_a;
                    F b_t = b[x] + t_f * d_b;
                    F c_t = c[x] + t_f * d_c;
                    s[t] += eq_t * (pow4(a_t) * b_t - c_t);
                }
            }
            return s;
        };
        Sums sums = exec::reduceChunked<Sums>(
            exec, half, zero, chunk_sums,
            [](const Sums &l, const Sums &r) {
                Sums out;
                for (size_t t = 0; t < kHighDegreeGateEvals; ++t)
                    out[t] = l[t] + r[t];
                return out;
            });
        std::vector<F> g(sums.begin(), sums.end());
        for (const F &gi : g)
            transcript.absorbField("hdg.g", gi);
        F r = transcript.template challengeField<F>("hdg.r");
        auto fold = [&](size_t begin, size_t end) {
            for (size_t x = begin; x < end; ++x) {
                eq[x] = eq[x] + r * (eq[x + half] - eq[x]);
                a[x] = a[x] + r * (a[x + half] - a[x]);
                b[x] = b[x] + r * (b[x + half] - b[x]);
                c[x] = c[x] + r * (c[x + half] - c[x]);
            }
        };
        if (exec)
            exec->parallelFor(half, fold);
        else
            fold(0, half);
        eq.resize(half);
        a.resize(half);
        b.resize(half);
        c.resize(half);
        if (point_out)
            point_out->push_back(r);
        proof.rounds.push_back(std::move(g));
    }
    return proof;
}

/**
 * Verifier side of proveHighDegreeGateFs. Every round must carry
 * exactly kHighDegreeGateEvals evaluations; the returned verdict's
 * final_claim must equal eq(tau, point) * (va^4 * vb - vc), checked by
 * the caller against its table oracles.
 */
template <typename F>
SumcheckVerdict<F>
verifyHighDegreeGateFs(const F &claimed_sum,
                       const ProductSumcheckProof<F> &proof,
                       Transcript &transcript)
{
    SumcheckVerdict<F> verdict;
    F claim = claimed_sum;
    for (const auto &g : proof.rounds) {
        if (g.size() != kHighDegreeGateEvals)
            return verdict;
        if (g[0] + g[1] != claim)
            return verdict;
        for (const F &gi : g)
            transcript.absorbField("hdg.g", gi);
        F r = transcript.template challengeField<F>("hdg.r");
        std::vector<F> xs(kHighDegreeGateEvals);
        for (size_t t = 0; t < kHighDegreeGateEvals; ++t)
            xs[t] = F::fromUint(t);
        claim = lagrangeEval(xs, g, r);
        verdict.point.push_back(r);
    }
    verdict.ok = true;
    verdict.final_claim = claim;
    return verdict;
}

} // namespace bzk

#endif // BZK_SUMCHECK_HIGHDEGREEGATE_H_
