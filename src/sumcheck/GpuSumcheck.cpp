#include "sumcheck/GpuSumcheck.h"

#include <algorithm>
#include <cmath>

#include "exec/ExecContext.h"
#include "gpusim/Calibration.h"
#include "util/Timer.h"

namespace bzk {

using gpusim::BatchStats;
using gpusim::KernelDesc;
using gpusim::OpId;
using gpusim::StreamId;

namespace {

/**
 * Lane-cycles per table pair in one round: the fold
 * A[b] += r * (A[b+half] - A[b]) costs one field multiplication plus a
 * few additions, and the two running sums cost two more additions
 * (Sec. 3.2: "only several basic addition and multiplication").
 */
double
pairCycles()
{
    return gpusim::kFieldMulCycles + 6.0 * gpusim::kFieldAddCycles;
}

/** Pairs processed in round i (0-based) of an n-variable sum-check. */
size_t
roundPairs(unsigned n, unsigned i)
{
    return size_t{1} << (n - 1 - i);
}

/** Build @p count real proofs, deriving challenges via Fiat-Shamir. */
void
buildFunctionalProofs(size_t count, unsigned n, Rng &rng,
                      std::vector<SumcheckProof<Fr>> *proofs)
{
    exec::ExecContext exec;
    for (size_t i = 0; i < count; ++i) {
        auto poly = Multilinear<Fr>::random(n, rng);
        Transcript transcript("batchzk.sumcheck.module");
        transcript.absorbField("sum", poly.sumOverHypercube());
        auto fs = proveSumcheckFs(poly, transcript, &exec);
        if (proofs)
            proofs->push_back(std::move(fs.proof));
    }
}

} // namespace

IntuitiveSumcheckGpu::IntuitiveSumcheckGpu(gpusim::Device &dev,
                                           GpuSumcheckOptions opt)
    : dev_(dev), opt_(opt)
{
}

BatchStats
IntuitiveSumcheckGpu::run(size_t batch, unsigned n, Rng &rng,
                          std::vector<SumcheckProof<Fr>> *proofs)
{
    buildFunctionalProofs(std::min<size_t>(batch, opt_.functional), n, rng,
                          proofs);

    dev_.resetTimeline();
    dev_.resetMemoryPeak();

    double cores = opt_.lane_budget > 0
                       ? std::min<double>(opt_.lane_budget,
                                          dev_.spec().cuda_cores)
                       : dev_.spec().cuda_cores;
    size_t table_bytes = (size_t{1} << n) * Fr::kNumBytes;

    // The intuitive scheme stages every proof's table up front.
    int64_t tables_mem = dev_.alloc(batch * table_bytes);

    StreamId stream = dev_.createStream();

    // Icicle-style penalties: generic big-int field ops that round-trip
    // global memory, and a host-synchronized relaunch per round.
    double sync_cycles = gpusim::kHostSyncMs * dev_.spec().cyclesPerMs();
    double first_end = 0.0;
    for (size_t p = 0; p < batch; ++p) {
        // Input transfer on the same stream: the intuitive
        // implementation does not overlap copies with compute.
        if (opt_.stream_io)
            dev_.copyH2D(stream, table_bytes);
        KernelDesc k;
        k.name = "sumcheck_proof";
        double lanes = std::min<double>(
            cores, static_cast<double>(roundPairs(n, 0)));
        k.lanes = lanes;
        uint64_t traffic = 0;
        for (unsigned i = 0; i < n; ++i) {
            double pairs = static_cast<double>(roundPairs(n, i));
            double waves = std::ceil(pairs / lanes);
            k.profile.push_back(
                {waves * pairCycles() * gpusim::kIcicleFieldFactor +
                     sync_cycles,
                 std::min(pairs, lanes)});
            traffic += static_cast<uint64_t>(pairs) * 96;
        }
        k.mem_bytes = traffic;
        OpId op = dev_.launchKernel(stream, k);
        if (opt_.stream_io)
            dev_.copyD2H(stream, n * 2 * Fr::kNumBytes, op);
        if (p == 0)
            first_end = dev_.opEnd(op);
    }

    BatchStats stats;
    stats.batch = batch;
    stats.total_ms = dev_.now();
    stats.first_latency_ms = first_end;
    stats.item_latency_ms = first_end;
    stats.throughput_per_ms = batch / stats.total_ms;
    stats.peak_device_bytes = dev_.peakMemory();
    stats.busy_lane_ms = dev_.busyLaneMs();
    stats.utilization =
        stats.busy_lane_ms / (stats.total_ms * dev_.spec().cuda_cores);

    dev_.free(tables_mem);
    return stats;
}

PipelinedSumcheckGpu::PipelinedSumcheckGpu(gpusim::Device &dev,
                                           GpuSumcheckOptions opt)
    : dev_(dev), opt_(opt)
{
}

BatchStats
PipelinedSumcheckGpu::run(size_t batch, unsigned n, Rng &rng,
                          std::vector<SumcheckProof<Fr>> *proofs)
{
    buildFunctionalProofs(std::min<size_t>(batch, opt_.functional), n, rng,
                          proofs);

    dev_.resetTimeline();
    dev_.resetMemoryPeak();

    double lanes_total = opt_.lane_budget > 0
                             ? std::min<double>(opt_.lane_budget,
                                                dev_.spec().cuda_cores)
                             : dev_.spec().cuda_cores;
    size_t table_bytes = (size_t{1} << n) * Fr::kNumBytes;

    // Round i's stage gets lanes proportional to its pair count, so all
    // stages complete a cycle's quota in the same number of waves.
    double total_pairs = static_cast<double>((size_t{1} << n) - 1);
    std::vector<double> stage_lanes(n);
    for (unsigned i = 0; i < n; ++i) {
        stage_lanes[i] = std::max(
            1.0, lanes_total * static_cast<double>(roundPairs(n, i)) /
                     total_pairs);
    }
    double cycle_cycles = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        double waves = std::ceil(roundPairs(n, i) / stage_lanes[i]);
        cycle_cycles = std::max(cycle_cycles, waves * pairCycles());
    }

    // Figure 5: two recyclable buffers, alternating read/write roles
    // every cycle; each holds every stage's live table.
    int64_t pingpong_mem = dev_.alloc(2 * 2 * table_bytes);

    StreamId compute = dev_.createStream();
    StreamId h2d = dev_.createStream();
    StreamId d2h = dev_.createStream();

    size_t cycles = batch + n - 1;
    double first_end = 0.0;
    OpId prev_load = gpusim::kNoOp;
    for (size_t c = 0; c < cycles; ++c) {
        OpId load = gpusim::kNoOp;
        if (opt_.stream_io && c < batch)
            load = dev_.copyH2D(h2d, table_bytes);

        double active = 0.0;
        double pairs_this_cycle = 0.0;
        for (unsigned i = 0; i < n; ++i) {
            if (c >= i && c - i < batch) {
                active += stage_lanes[i];
                pairs_this_cycle += static_cast<double>(roundPairs(n, i));
            }
        }
        KernelDesc k;
        k.name = "sumcheck_pipe_cycle";
        k.lanes = lanes_total;
        k.profile.push_back({cycle_cycles, active});
        k.mem_bytes = static_cast<uint64_t>(pairs_this_cycle * 96.0);
        OpId op = dev_.launchKernel(compute, k, prev_load);
        prev_load = load;

        if (opt_.stream_io && c + 1 >= static_cast<size_t>(n))
            dev_.copyD2H(d2h, n * 2 * Fr::kNumBytes, op);
        if (c == static_cast<size_t>(n) - 1)
            first_end = dev_.opEnd(op);
    }

    BatchStats stats;
    stats.batch = batch;
    stats.total_ms = dev_.now();
    stats.first_latency_ms = first_end;
    stats.item_latency_ms =
        static_cast<double>(n) * cycle_cycles / dev_.spec().cyclesPerMs();
    stats.throughput_per_ms = batch / stats.total_ms;
    stats.peak_device_bytes = dev_.peakMemory();
    stats.busy_lane_ms = dev_.busyLaneMs();
    stats.utilization =
        stats.busy_lane_ms / (stats.total_ms * dev_.spec().cuda_cores);

    dev_.free(pingpong_mem);
    return stats;
}

BatchStats
CpuSumcheckBaseline::run(size_t batch, unsigned n, Rng &rng,
                         std::vector<SumcheckProof<Fr>> *proofs)
{
    size_t samples = std::max<size_t>(1, std::min(sample_proofs_, batch));
    std::vector<Multilinear<Fr>> polys;
    polys.reserve(samples);
    for (size_t i = 0; i < samples; ++i)
        polys.push_back(Multilinear<Fr>::random(n, rng));

    // Multi-core host baseline, like the Arkworks prover the paper
    // measures; thread count from --threads / BZK_THREADS.
    exec::ExecContext exec;
    Timer timer;
    for (size_t i = 0; i < samples; ++i) {
        Transcript transcript("batchzk.sumcheck.module");
        transcript.absorbField("sum", polys[i].sumOverHypercube());
        auto fs = proveSumcheckFs(polys[i], transcript, &exec);
        if (proofs)
            proofs->push_back(std::move(fs.proof));
    }
    double per_proof = timer.milliseconds() / static_cast<double>(samples);

    BatchStats stats;
    stats.batch = batch;
    stats.total_ms = per_proof * static_cast<double>(batch);
    stats.first_latency_ms = per_proof;
    stats.item_latency_ms = per_proof;
    stats.throughput_per_ms = 1.0 / per_proof;
    return stats;
}

} // namespace bzk
