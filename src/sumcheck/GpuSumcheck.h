#ifndef BZK_SUMCHECK_GPUSUMCHECK_H_
#define BZK_SUMCHECK_GPUSUMCHECK_H_

/**
 * @file
 * Batch sum-check provers for the simulated GPU (Section 3.2).
 *
 * Table 4's three columns:
 *  - CpuSumcheckBaseline   : Arkworks-style host prover, measured.
 *  - IntuitiveSumcheckGpu  : Icicle-style, one kernel per proof; rounds
 *                            serialize inside the kernel and lanes idle
 *                            as the table halves.
 *  - PipelinedSumcheckGpu  : one kernel per round; proofs stream through
 *                            rounds, with the two recyclable ping-pong
 *                            buffers of Figure 5 and tree-reduction sums.
 */

#include <cstddef>
#include <vector>

#include "ff/Fields.h"
#include "gpusim/BatchStats.h"
#include "gpusim/Device.h"
#include "sumcheck/Sumcheck.h"
#include "util/Rng.h"

namespace bzk {

/** Options shared by the GPU sum-check drivers. */
struct GpuSumcheckOptions
{
    /** Lanes this module may use; 0 = whole device. */
    double lane_budget = 0.0;
    /**
     * Stream each proof's table from host memory per cycle. Defaults to
     * true: the paper's sum-check module always loads its input tables
     * from the host (Sec. 4), so the module benches include it.
     */
    bool stream_io = true;
    /** Number of proofs to generate functionally. */
    size_t functional = 1;
};

/** Icicle-style one-kernel-per-proof driver (Table 4 baseline). */
class IntuitiveSumcheckGpu
{
  public:
    IntuitiveSumcheckGpu(gpusim::Device &dev, GpuSumcheckOptions opt = {});

    /**
     * Generate @p batch sum-check proofs for n-variable multilinear
     * polynomials (table size 2^n).
     * @param proofs receives the functionally-generated proofs.
     */
    gpusim::BatchStats run(size_t batch, unsigned n, Rng &rng,
                           std::vector<SumcheckProof<Fr>> *proofs = nullptr);

  private:
    gpusim::Device &dev_;
    GpuSumcheckOptions opt_;
};

/** The paper's pipelined round-per-kernel driver. */
class PipelinedSumcheckGpu
{
  public:
    PipelinedSumcheckGpu(gpusim::Device &dev, GpuSumcheckOptions opt = {});

    /** @copydoc IntuitiveSumcheckGpu::run */
    gpusim::BatchStats run(size_t batch, unsigned n, Rng &rng,
                           std::vector<SumcheckProof<Fr>> *proofs = nullptr);

  private:
    gpusim::Device &dev_;
    GpuSumcheckOptions opt_;
};

/** Host (Arkworks-style) baseline, measured in wall-clock time. */
class CpuSumcheckBaseline
{
  public:
    explicit CpuSumcheckBaseline(size_t sample_proofs = 1)
        : sample_proofs_(sample_proofs)
    {
    }

    /** @copydoc IntuitiveSumcheckGpu::run */
    gpusim::BatchStats run(size_t batch, unsigned n, Rng &rng,
                           std::vector<SumcheckProof<Fr>> *proofs = nullptr);

  private:
    size_t sample_proofs_;
};

} // namespace bzk

#endif // BZK_SUMCHECK_GPUSUMCHECK_H_
