#ifndef BZK_SUMCHECK_SUMCHECK_H_
#define BZK_SUMCHECK_SUMCHECK_H_

/**
 * @file
 * The sum-check protocol (paper Sec. 2.3, Algorithm 1).
 *
 * proveSumcheck() is a line-for-line implementation of Algorithm 1 for a
 * multilinear polynomial: round i emits the two half-table sums
 * (pi_i1, pi_i2) and folds the table with the round challenge.
 *
 * ProductSumcheck generalizes to sums of products of up to a few
 * multilinear factors (degree-d round polynomials), which the SNARK core
 * needs for its constraint check (eq * Az * Bz style terms).
 *
 * Fiat-Shamir wrappers derive challenges from a Transcript so prover and
 * verifier stay non-interactive and in sync.
 */

#include <algorithm>
#include <array>
#include <cstddef>
#include <vector>

#include "exec/ExecContext.h"
#include "ff/FieldBackend.h"
#include "hash/Transcript.h"
#include "poly/Multilinear.h"
#include "util/Log.h"

namespace bzk {

/** Proof of Algorithm 1: one (pi_i1, pi_i2) pair per round. */
template <typename F>
struct SumcheckProof
{
    std::vector<std::array<F, 2>> rounds;
};

/** Verifier outcome of a sum-check run. */
template <typename F>
struct SumcheckVerdict
{
    bool ok = false;
    /** The claim remaining after all rounds: must equal p(point). */
    F final_claim{};
    /** The random point accumulated over the rounds. */
    std::vector<F> point;
};

/**
 * Algorithm 1: generate a sum-check proof for multilinear @p poly under
 * the given @p challenges (r_1 ... r_n).
 */
template <typename F>
SumcheckProof<F>
proveSumcheck(const Multilinear<F> &poly, const std::vector<F> &challenges)
{
    unsigned n = poly.numVars();
    if (challenges.size() != n)
        panic("proveSumcheck: %zu challenges for %u vars",
              challenges.size(), n);

    SumcheckProof<F> proof;
    proof.rounds.reserve(n);
    std::vector<F> table = poly.evals();
    for (unsigned i = 0; i < n; ++i) {
        size_t half = table.size() / 2;
        F pi1 = ff::sumLanes(table.data(), half);
        F pi2 = ff::sumLanes(table.data() + half, half);
        ff::foldLanes(table.data(), table.data() + half, challenges[i],
                      half);
        table.resize(half);
        proof.rounds.push_back({pi1, pi2});
    }
    return proof;
}

/**
 * Verify a sum-check proof against claimed sum @p claimed_sum.
 * The caller must still check verdict.final_claim == p(verdict.point)
 * using an oracle for p (direct evaluation in tests, the polynomial
 * commitment in the SNARK).
 */
template <typename F>
SumcheckVerdict<F>
verifySumcheck(const F &claimed_sum, const SumcheckProof<F> &proof,
               const std::vector<F> &challenges)
{
    SumcheckVerdict<F> verdict;
    if (challenges.size() != proof.rounds.size())
        return verdict;
    F claim = claimed_sum;
    for (size_t i = 0; i < proof.rounds.size(); ++i) {
        const F &pi1 = proof.rounds[i][0];
        const F &pi2 = proof.rounds[i][1];
        if (pi1 + pi2 != claim)
            return verdict;
        const F &r = challenges[i];
        claim = pi1 + r * (pi2 - pi1);
        verdict.point.push_back(r);
    }
    verdict.ok = true;
    verdict.final_claim = claim;
    return verdict;
}

/** Fiat-Shamir sum-check output: the proof plus derived challenges. */
template <typename F>
struct FsSumcheck
{
    SumcheckProof<F> proof;
    std::vector<F> challenges;
};

/**
 * Non-interactive Algorithm 1: challenges come from @p transcript, which
 * must already have absorbed the statement (commitment, claimed sum).
 * With a non-null @p exec each round's half-table sums run in parallel
 * chunks under a fixed-shape tree reduction and the fold splits across
 * host threads; proof bytes are bit-identical for any thread count.
 */
template <typename F>
FsSumcheck<F>
proveSumcheckFs(const Multilinear<F> &poly, Transcript &transcript,
                const exec::ExecContext *exec = nullptr)
{
    unsigned n = poly.numVars();
    FsSumcheck<F> out;
    out.proof.rounds.reserve(n);
    std::vector<F> table = poly.evals();
    if (exec)
        exec->setRegion("sumcheck");
    using Pair = std::array<F, 2>;
    for (unsigned i = 0; i < n; ++i) {
        size_t half = table.size() / 2;
        // Packed kernels keep proof bytes unchanged: a lane kernel only
        // reorders an exactly associative field sum, and the chunk
        // shape of the tree reduction is untouched.
        Pair sums = exec::reduceChunked<Pair>(
            exec, half, Pair{F::zero(), F::zero()},
            [&table, half](size_t begin, size_t end) {
                return Pair{
                    ff::sumLanes(table.data() + begin, end - begin),
                    ff::sumLanes(table.data() + half + begin,
                                 end - begin)};
            },
            [](const Pair &x, const Pair &y) {
                return Pair{x[0] + y[0], x[1] + y[1]};
            });
        transcript.absorbField("sc.pi1", sums[0]);
        transcript.absorbField("sc.pi2", sums[1]);
        F r = transcript.template challengeField<F>("sc.r");
        auto fold = [&table, half, &r](size_t begin, size_t end) {
            ff::foldLanes(table.data() + begin,
                          table.data() + half + begin, r, end - begin);
        };
        if (exec)
            exec->parallelFor(half, fold);
        else
            fold(0, half);
        table.resize(half);
        out.proof.rounds.push_back({sums[0], sums[1]});
        out.challenges.push_back(r);
    }
    return out;
}

/**
 * Verifier side of proveSumcheckFs: replays the transcript to derive the
 * same challenges, then runs the algebraic checks.
 */
template <typename F>
SumcheckVerdict<F>
verifySumcheckFs(const F &claimed_sum, const SumcheckProof<F> &proof,
                 Transcript &transcript)
{
    std::vector<F> challenges;
    challenges.reserve(proof.rounds.size());
    for (const auto &round : proof.rounds) {
        transcript.absorbField("sc.pi1", round[0]);
        transcript.absorbField("sc.pi2", round[1]);
        challenges.push_back(transcript.template challengeField<F>("sc.r"));
    }
    return verifySumcheck(claimed_sum, proof, challenges);
}

/**
 * Proof for a sum of products of multilinear factors. Round i carries
 * the round polynomial g_i evaluated at 0, 1, ..., d where d is the
 * number of factors.
 */
template <typename F>
struct ProductSumcheckProof
{
    std::vector<std::vector<F>> rounds;
};

/**
 * Prove sum_{x in {0,1}^n} prod_j factors[j](x) == (implicit claim).
 * Challenges come from @p transcript. On return @p factors have been
 * fully folded; factors[j].evals()[0] is factor j's value at the final
 * point, which the caller typically needs for the outer protocol.
 */
template <typename F>
ProductSumcheckProof<F>
proveProductSumcheckFs(std::vector<Multilinear<F>> &factors,
                       Transcript &transcript,
                       std::vector<F> *point_out = nullptr,
                       const exec::ExecContext *exec = nullptr)
{
    if (factors.empty())
        panic("proveProductSumcheckFs: no factors");
    unsigned n = factors[0].numVars();
    for (const auto &f : factors)
        if (f.numVars() != n)
            panic("proveProductSumcheckFs: mismatched factor sizes");
    size_t degree = factors.size();

    if (exec)
        exec->setRegion("sumcheck");
    ProductSumcheckProof<F> proof;
    proof.rounds.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        size_t half = factors[0].evals().size() / 2;
        // g(t) for t = 0 .. degree: evaluate each factor at
        // (1-t)*lo + t*hi and accumulate the product. Fixed-shape
        // chunk reduction keeps the sums thread-count independent.
        // Per chunk the factor interpolation is itself a fold
        // (lo + t*(hi - lo)), so the whole evaluation runs on the
        // packed kernels over chunk-sized scratch; the final sum per t
        // is exact-field associative and reorders freely.
        std::vector<F> identity(degree + 1, F::zero());
        std::vector<F> g = exec::reduceChunked<std::vector<F>>(
            exec, half, identity,
            [&factors, &identity, half, degree](size_t begin, size_t end) {
                size_t m = end - begin;
                std::vector<F> acc = identity;
                std::vector<F> term(m), at_t(m);
                for (size_t t = 0; t <= degree; ++t) {
                    F t_f = F::fromUint(t);
                    for (size_t j = 0; j < factors.size(); ++j) {
                        const F *lo = factors[j].evals().data() + begin;
                        const F *hi = lo + half;
                        if (j == 0) {
                            std::copy(lo, lo + m, term.begin());
                            ff::foldLanes(term.data(), hi, t_f, m);
                            continue;
                        }
                        std::copy(lo, lo + m, at_t.begin());
                        ff::foldLanes(at_t.data(), hi, t_f, m);
                        ff::mulLanes(term.data(), at_t.data(),
                                     term.data(), m);
                    }
                    acc[t] += ff::sumLanes(term.data(), m);
                }
                return acc;
            },
            [degree](const std::vector<F> &x, const std::vector<F> &y) {
                std::vector<F> sum(degree + 1);
                for (size_t t = 0; t <= degree; ++t)
                    sum[t] = x[t] + y[t];
                return sum;
            });
        for (size_t t = 0; t <= degree; ++t)
            transcript.absorbField("psc.g", g[t]);
        F r = transcript.template challengeField<F>("psc.r");
        for (auto &f : factors) {
            auto &tab = f.evals();
            auto fold = [&tab, half, &r](size_t begin, size_t end) {
                ff::foldLanes(tab.data() + begin,
                              tab.data() + half + begin, r,
                              end - begin);
            };
            if (exec)
                exec->parallelFor(half, fold);
            else
                fold(0, half);
            tab.resize(half);
            // Rewrap keeps the invariant table-size == power of two.
            f = Multilinear<F>(std::move(tab));
        }
        if (point_out)
            point_out->push_back(r);
        proof.rounds.push_back(std::move(g));
    }
    return proof;
}

/**
 * Verify a product sum-check. Returns the verdict whose final_claim must
 * equal prod_j factors[j](point) — checked by the caller with whatever
 * oracle it has for the factors.
 */
template <typename F>
SumcheckVerdict<F>
verifyProductSumcheckFs(const F &claimed_sum,
                        const ProductSumcheckProof<F> &proof,
                        Transcript &transcript)
{
    SumcheckVerdict<F> verdict;
    F claim = claimed_sum;
    for (const auto &g : proof.rounds) {
        if (g.size() < 2)
            return verdict;
        if (g[0] + g[1] != claim)
            return verdict;
        for (const F &gi : g)
            transcript.absorbField("psc.g", gi);
        F r = transcript.template challengeField<F>("psc.r");
        // Interpolate the degree-d round polynomial through 0..d at r.
        std::vector<F> xs(g.size());
        for (size_t t = 0; t < g.size(); ++t)
            xs[t] = F::fromUint(t);
        claim = lagrangeEval(xs, g, r);
        verdict.point.push_back(r);
    }
    verdict.ok = true;
    verdict.final_claim = claim;
    return verdict;
}

} // namespace bzk

#endif // BZK_SUMCHECK_SUMCHECK_H_
