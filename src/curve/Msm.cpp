#include "curve/Msm.h"

#include <algorithm>
#include <cmath>

#include "util/Log.h"

namespace bzk {

G1Point
msmNaive(std::span<const G1Affine> points, std::span<const Fr> scalars)
{
    if (points.size() != scalars.size())
        panic("msmNaive: %zu points vs %zu scalars", points.size(),
              scalars.size());
    G1Point acc;
    for (size_t i = 0; i < points.size(); ++i)
        acc = acc.add(G1Point::fromAffine(points[i]).mul(scalars[i]));
    return acc;
}

G1Point
msmPippenger(std::span<const G1Affine> points, std::span<const Fr> scalars,
             unsigned window_bits)
{
    if (points.size() != scalars.size())
        panic("msmPippenger: %zu points vs %zu scalars", points.size(),
              scalars.size());
    if (points.empty())
        return G1Point();
    if (window_bits == 0) {
        // Classic heuristic: c ~ ln(n).
        window_bits = std::max(
            2u, static_cast<unsigned>(std::log2(
                    static_cast<double>(points.size()) + 1.0) /
                    1.3));
        window_bits = std::min(window_bits, 16u);
    }

    // Standard-form scalars for windowed digit extraction.
    std::vector<U256> es(scalars.size());
    for (size_t i = 0; i < scalars.size(); ++i)
        es[i] = scalars[i].toU256();

    const unsigned total_bits = 254;
    const unsigned windows =
        (total_bits + window_bits - 1) / window_bits;
    const size_t n_buckets = (size_t{1} << window_bits) - 1;

    G1Point result;
    for (int w = static_cast<int>(windows) - 1; w >= 0; --w) {
        for (unsigned s = 0; s < window_bits; ++s)
            result = result.dbl();

        std::vector<G1Point> buckets(n_buckets);
        unsigned shift = static_cast<unsigned>(w) * window_bits;
        for (size_t i = 0; i < points.size(); ++i) {
            uint64_t digit = 0;
            for (unsigned b = 0; b < window_bits; ++b) {
                unsigned bit = shift + b;
                if (bit < 256)
                    digit |= static_cast<uint64_t>(es[i].bit(bit)) << b;
            }
            if (digit != 0)
                buckets[digit - 1] = buckets[digit - 1].addMixed(points[i]);
        }

        // Suffix-sum trick: sum_j j * bucket_j with 2*n_buckets adds.
        G1Point running;
        G1Point window_sum;
        for (size_t j = n_buckets; j-- > 0;) {
            running = running.add(buckets[j]);
            window_sum = window_sum.add(running);
        }
        result = result.add(window_sum);
    }
    return result;
}

std::vector<G1Affine>
randomPoints(size_t n, Rng &rng)
{
    std::vector<G1Affine> out;
    out.reserve(n);
    // Derive points by walking multiples of the generator with random
    // strides — cheap and guarantees on-curve points.
    G1Point cur = G1Point::random(rng);
    G1Point stride = G1Point::random(rng);
    for (size_t i = 0; i < n; ++i) {
        out.push_back(cur.toAffine());
        cur = cur.add(stride);
    }
    return out;
}

} // namespace bzk
