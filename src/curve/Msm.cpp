#include "curve/Msm.h"

#include <algorithm>
#include <string>

#include "ff/FieldBackend.h"
#include "util/Log.h"

namespace bzk {

MsmSizeMismatch::MsmSizeMismatch(const char *where, size_t points_,
                                 size_t scalars_)
    : std::invalid_argument(std::string(where) + ": " +
                            std::to_string(points_) + " points vs " +
                            std::to_string(scalars_) + " scalars"),
      points(points_), scalars(scalars_)
{
}

unsigned
msmWindowBits(size_t n)
{
    // Tuned on the bench_micro MSM sweep (EXPERIMENTS.md): wider
    // windows than the old log2(n)/1.3 heuristic pay off once the
    // batch-affine pass amortizes bucket work across one inversion.
    unsigned lg = 0;
    while ((size_t{1} << (lg + 1)) <= n && lg < 40)
        ++lg;
    if (lg <= 3)
        return 2;
    if (lg <= 5)
        return 4;
    if (lg <= 9)
        return 6;
    if (lg <= 12)
        return 8;
    if (lg <= 15)
        return 10;
    if (lg <= 18)
        return 12;
    if (lg <= 21)
        return 13;
    return 16;
}

namespace {

constexpr unsigned kScalarBits = 254;

/**
 * All window digits for all scalars, extracted once up front
 * (digits[w * n + i] is scalar i's digit in window w). Digit values
 * fit 16 bits because window widths are capped at 16.
 */
std::vector<uint32_t>
decomposeScalars(std::span<const Fr> scalars, unsigned window_bits,
                 unsigned windows)
{
    const size_t n = scalars.size();
    const uint64_t mask = (uint64_t{1} << window_bits) - 1;
    std::vector<uint32_t> digits(static_cast<size_t>(windows) * n);
    for (size_t i = 0; i < n; ++i) {
        U256 e = scalars[i].toU256();
        for (unsigned w = 0; w < windows; ++w) {
            unsigned shift = w * window_bits;
            size_t limb = shift / 64;
            unsigned off = shift % 64;
            uint64_t v = e.limb[limb] >> off;
            if (off != 0 && limb + 1 < 4)
                v |= e.limb[limb + 1] << (64 - off);
            digits[static_cast<size_t>(w) * n + i] =
                static_cast<uint32_t>(v & mask);
        }
    }
    return digits;
}

/** How each pair in a batch-affine round produces its output. */
enum class PairAction : uint8_t {
    kVector = 0, // chord or tangent: R from the shared-slope algebra
    kCopyP,      // Q is infinity
    kCopyQ,      // P is infinity
    kInfinity,   // P == -Q
};

/**
 * Scratch for the batch-affine adder, reused across rounds so the
 * per-pass cost is the field work, not allocation.
 */
struct BatchAddScratch
{
    std::vector<Fq> px, py, qx, qy, den, num, lam, t;
    std::vector<PairAction> action;

    void
    resize(size_t m)
    {
        px.resize(m);
        py.resize(m);
        qx.resize(m);
        qy.resize(m);
        den.resize(m);
        num.resize(m);
        lam.resize(m);
        t.resize(m);
        action.resize(m);
    }
};

/**
 * r[k] = p[k] + q[k] for m affine pairs staged in @p s (px/py/qx/qy
 * and action filled by the caller), writing results to @p out.
 *
 * One ff::batchInverse shares the modular inversion across every
 * pair's slope denominator; the remaining slope algebra runs through
 * the packed Fq lane kernels, which is where the wide Montgomery
 * backend earns its keep. Special pairs (infinity operands, P == -Q)
 * carry a zero denominator — batchInverse's documented skip-zero
 * semantics leave them inert — and are patched from `action` after
 * the vector pass.
 */
void
batchAffineAdd(BatchAddScratch &s, size_t m, G1Affine *out)
{
    // Chord slope by default: den = qx - px, num = qy - py.
    ff::subLanes(s.qx.data(), s.px.data(), s.den.data(), m);
    ff::subLanes(s.qy.data(), s.py.data(), s.num.data(), m);
    for (size_t k = 0; k < m; ++k) {
        if (s.action[k] != PairAction::kVector) {
            s.den[k] = Fq::zero();
            continue;
        }
        if (!s.den[k].isZero())
            continue;
        if (s.num[k].isZero()) {
            // P == Q: tangent slope 3x^2 / 2y (y != 0 on this curve;
            // y^2 = x^3 + 3 has no 2-torsion).
            Fq x2 = s.px[k].square();
            s.num[k] = x2 + x2 + x2;
            s.den[k] = s.py[k].dbl();
        } else {
            // P == -Q.
            s.action[k] = PairAction::kInfinity;
        }
    }

    ff::batchInverse(s.den.data(), m);
    ff::mulLanes(s.num.data(), s.den.data(), s.lam.data(), m);
    // rx = lam^2 - px - qx (reusing den for lam^2 and then rx).
    ff::mulLanes(s.lam.data(), s.lam.data(), s.den.data(), m);
    ff::subLanes(s.den.data(), s.px.data(), s.den.data(), m);
    ff::subLanes(s.den.data(), s.qx.data(), s.den.data(), m);
    // ry = lam * (px - rx) - py (t holds the intermediate).
    ff::subLanes(s.px.data(), s.den.data(), s.t.data(), m);
    ff::mulLanes(s.lam.data(), s.t.data(), s.t.data(), m);
    ff::subLanes(s.t.data(), s.py.data(), s.t.data(), m);

    for (size_t k = 0; k < m; ++k) {
        switch (s.action[k]) {
          case PairAction::kVector:
            out[k].x = s.den[k];
            out[k].y = s.t[k];
            out[k].infinity = false;
            break;
          case PairAction::kCopyP:
            out[k].x = s.px[k];
            out[k].y = s.py[k];
            out[k].infinity = false;
            break;
          case PairAction::kCopyQ:
            out[k].x = s.qx[k];
            out[k].y = s.qy[k];
            out[k].infinity = false;
            break;
          case PairAction::kInfinity:
            out[k] = G1Affine{};
            break;
        }
    }
}

/** Stage one pair into slot @p k of the scratch. */
void
stagePair(BatchAddScratch &s, size_t k, const G1Affine &p,
          const G1Affine &q)
{
    if (p.infinity && q.infinity) {
        s.action[k] = PairAction::kInfinity;
        return;
    }
    if (q.infinity) {
        s.action[k] = PairAction::kCopyP;
        s.px[k] = p.x;
        s.py[k] = p.y;
        return;
    }
    if (p.infinity) {
        s.action[k] = PairAction::kCopyQ;
        s.qx[k] = q.x;
        s.qy[k] = q.y;
        return;
    }
    s.action[k] = PairAction::kVector;
    s.px[k] = p.x;
    s.py[k] = p.y;
    s.qx[k] = q.x;
    s.qy[k] = q.y;
}

G1Point
msmPippengerImpl(std::span<const G1Affine> points,
                 std::span<const Fr> scalars, unsigned window_bits,
                 bool batch_affine)
{
    if (points.empty())
        return G1Point();
    if (window_bits == 0)
        window_bits = msmWindowBits(points.size());
    window_bits = std::min(window_bits, 16u);

    const size_t n = points.size();
    const unsigned windows =
        (kScalarBits + window_bits - 1) / window_bits;
    const size_t n_buckets = (size_t{1} << window_bits) - 1;
    std::vector<uint32_t> digits =
        decomposeScalars(scalars, window_bits, windows);

    // Per-window reusable bucket storage.
    std::vector<uint32_t> count(n_buckets + 1);
    std::vector<uint32_t> offset(n_buckets + 1);
    std::vector<uint32_t> len(n_buckets);
    std::vector<G1Affine> entries;
    std::vector<G1Affine> results;
    BatchAddScratch scratch;
    std::vector<G1Point> jac_buckets;

    G1Point result;
    for (int w = static_cast<int>(windows) - 1; w >= 0; --w) {
        for (unsigned s = 0; s < window_bits; ++s)
            result = result.dbl();
        const uint32_t *wdigits = digits.data() +
                                  static_cast<size_t>(w) * n;

        if (!batch_affine) {
            // Reference path: Jacobian accumulation per bucket.
            jac_buckets.assign(n_buckets, G1Point());
            for (size_t i = 0; i < n; ++i) {
                uint32_t d = wdigits[i];
                if (d != 0)
                    jac_buckets[d - 1] =
                        jac_buckets[d - 1].addMixed(points[i]);
            }
            G1Point running;
            G1Point window_sum;
            for (size_t j = n_buckets; j-- > 0;) {
                running = running.add(jac_buckets[j]);
                window_sum = window_sum.add(running);
            }
            result = result.add(window_sum);
            continue;
        }

        // Counting sort of the window's points by bucket, so each
        // bucket's members sit in one contiguous segment of `entries`.
        std::fill(count.begin(), count.end(), 0);
        for (size_t i = 0; i < n; ++i)
            ++count[wdigits[i]];
        offset[0] = 0; // bucket digit d occupies offset[d-1]..
        uint32_t acc = 0;
        for (size_t d = 1; d <= n_buckets; ++d) {
            offset[d - 1] = acc;
            acc += count[d];
            len[d - 1] = count[d];
        }
        offset[n_buckets] = acc;
        entries.resize(acc);
        {
            std::vector<uint32_t> cursor(offset.begin(),
                                         offset.end() - 1);
            for (size_t i = 0; i < n; ++i) {
                uint32_t d = wdigits[i];
                if (d != 0)
                    entries[cursor[d - 1]++] = points[i];
            }
        }

        // Pairwise tree reduction: every pass halves each bucket's
        // segment, pairing members across *all* buckets into one
        // batch-affine round so the shared inversion amortizes over
        // the whole window.
        bool more = true;
        while (more) {
            more = false;
            size_t m = 0;
            for (size_t b = 0; b < n_buckets; ++b)
                m += len[b] / 2;
            if (m == 0)
                break;
            scratch.resize(m);
            results.resize(m);
            size_t k = 0;
            for (size_t b = 0; b < n_buckets; ++b) {
                uint32_t off = offset[b];
                for (uint32_t p = 0; p + 1 < len[b]; p += 2)
                    stagePair(scratch, k++, entries[off + p],
                              entries[off + p + 1]);
            }
            batchAffineAdd(scratch, m, results.data());
            k = 0;
            for (size_t b = 0; b < n_buckets; ++b) {
                uint32_t off = offset[b];
                uint32_t pairs = len[b] / 2;
                for (uint32_t p = 0; p < pairs; ++p)
                    entries[off + p] = results[k++];
                if (len[b] & 1)
                    entries[off + pairs] = entries[off + len[b] - 1];
                len[b] = pairs + (len[b] & 1);
                if (len[b] > 1)
                    more = true;
            }
        }

        // Suffix-sum over the (now single-member) buckets.
        G1Point running;
        G1Point window_sum;
        for (size_t j = n_buckets; j-- > 0;) {
            if (len[j] != 0)
                running = running.addMixed(entries[offset[j]]);
            window_sum = window_sum.add(running);
        }
        result = result.add(window_sum);
    }
    return result;
}

} // namespace

G1Point
msmNaive(std::span<const G1Affine> points, std::span<const Fr> scalars)
{
    if (points.size() != scalars.size())
        throw MsmSizeMismatch("msmNaive", points.size(),
                              scalars.size());
    G1Point acc;
    for (size_t i = 0; i < points.size(); ++i)
        acc = acc.add(G1Point::fromAffine(points[i]).mul(scalars[i]));
    return acc;
}

G1Point
msmPippenger(std::span<const G1Affine> points,
             std::span<const Fr> scalars, unsigned window_bits)
{
    if (points.size() != scalars.size())
        throw MsmSizeMismatch("msmPippenger", points.size(),
                              scalars.size());
    return msmPippengerImpl(points, scalars, window_bits,
                            /*batch_affine=*/true);
}

G1Point
msmPippengerJacobian(std::span<const G1Affine> points,
                     std::span<const Fr> scalars, unsigned window_bits)
{
    if (points.size() != scalars.size())
        throw MsmSizeMismatch("msmPippengerJacobian", points.size(),
                              scalars.size());
    return msmPippengerImpl(points, scalars, window_bits,
                            /*batch_affine=*/false);
}

std::vector<G1Affine>
randomPoints(size_t n, Rng &rng)
{
    // Derive points by walking multiples of the generator with random
    // strides — cheap and guarantees on-curve points. Normalization
    // runs through one shared batch inversion instead of n.
    std::vector<G1Point> jac;
    jac.reserve(n);
    G1Point cur = G1Point::random(rng);
    G1Point stride = G1Point::random(rng);
    for (size_t i = 0; i < n; ++i) {
        jac.push_back(cur);
        cur = cur.add(stride);
    }
    return G1Point::batchToAffine(jac);
}

} // namespace bzk
