#include "curve/Bn254.h"

#include "ff/FieldBackend.h"

namespace bzk {

G1Point
G1Point::fromAffine(const G1Affine &p)
{
    if (p.infinity)
        return G1Point();
    return G1Point(p.x, p.y, Fq::one());
}

G1Point
G1Point::generator()
{
    return G1Point(Fq::fromUint(1), Fq::fromUint(2), Fq::one());
}

G1Point
G1Point::random(Rng &rng)
{
    return generator().mul(Fr::random(rng));
}

G1Point
G1Point::dbl() const
{
    if (isInfinity())
        return *this;
    // dbl-2009-l (a = 0).
    Fq a = x_.square();
    Fq b = y_.square();
    Fq c = b.square();
    Fq d = ((x_ + b).square() - a - c).dbl();
    Fq e = a + a + a;
    Fq f = e.square();
    Fq x3 = f - d.dbl();
    Fq y3 = e * (d - x3) - c.dbl().dbl().dbl();
    Fq z3 = (y_ * z_).dbl();
    return G1Point(x3, y3, z3);
}

G1Point
G1Point::add(const G1Point &other) const
{
    if (isInfinity())
        return other;
    if (other.isInfinity())
        return *this;
    // add-2007-bl.
    Fq z1z1 = z_.square();
    Fq z2z2 = other.z_.square();
    Fq u1 = x_ * z2z2;
    Fq u2 = other.x_ * z1z1;
    Fq s1 = y_ * other.z_ * z2z2;
    Fq s2 = other.y_ * z_ * z1z1;
    if (u1 == u2) {
        if (s1 == s2)
            return dbl();
        return G1Point(); // P + (-P)
    }
    Fq h = u2 - u1;
    Fq i = h.dbl().square();
    Fq j = h * i;
    Fq r = (s2 - s1).dbl();
    Fq v = u1 * i;
    Fq x3 = r.square() - j - v.dbl();
    Fq y3 = r * (v - x3) - (s1 * j).dbl();
    Fq z3 = ((z_ + other.z_).square() - z1z1 - z2z2) * h;
    return G1Point(x3, y3, z3);
}

G1Point
G1Point::addMixed(const G1Affine &other) const
{
    if (other.infinity)
        return *this;
    if (isInfinity())
        return fromAffine(other);
    // madd-2007-bl (Z2 = 1).
    Fq z1z1 = z_.square();
    Fq u2 = other.x * z1z1;
    Fq s2 = other.y * z_ * z1z1;
    if (x_ == u2) {
        if (y_ == s2)
            return dbl();
        return G1Point();
    }
    Fq h = u2 - x_;
    Fq hh = h.square();
    Fq i = hh.dbl().dbl();
    Fq j = h * i;
    Fq r = (s2 - y_).dbl();
    Fq v = x_ * i;
    Fq x3 = r.square() - j - v.dbl();
    Fq y3 = r * (v - x3) - (y_ * j).dbl();
    Fq z3 = (z_ + h).square() - z1z1 - hh;
    return G1Point(x3, y3, z3);
}

G1Point
G1Point::neg() const
{
    if (isInfinity())
        return *this;
    return G1Point(x_, -y_, z_);
}

G1Point
G1Point::mul(const Fr &scalar) const
{
    U256 e = scalar.toU256();
    G1Point acc;
    unsigned bits = e.bitLength();
    for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
        acc = acc.dbl();
        if (e.bit(static_cast<unsigned>(i)))
            acc = acc.add(*this);
    }
    return acc;
}

G1Affine
G1Point::toAffine() const
{
    G1Affine out;
    if (isInfinity())
        return out;
    Fq z_inv = z_.inverse();
    Fq z_inv2 = z_inv.square();
    out.x = x_ * z_inv2;
    out.y = y_ * z_inv2 * z_inv;
    out.infinity = false;
    return out;
}

std::vector<G1Affine>
G1Point::batchToAffine(std::span<const G1Point> points)
{
    const size_t n = points.size();
    std::vector<G1Affine> out(n);
    std::vector<Fq> z_inv(n);
    for (size_t i = 0; i < n; ++i)
        z_inv[i] = points[i].z_; // zero for infinity: skipped below
    ff::batchInverse(z_inv.data(), n);
    for (size_t i = 0; i < n; ++i) {
        if (z_inv[i].isZero())
            continue; // stays affine infinity
        Fq zi2 = z_inv[i].square();
        out[i].x = points[i].x_ * zi2;
        out[i].y = points[i].y_ * zi2 * z_inv[i];
        out[i].infinity = false;
    }
    return out;
}

bool
G1Point::isOnCurve() const
{
    if (isInfinity())
        return true;
    G1Affine p = toAffine();
    return p.y.square() == p.x.square() * p.x + Fq::fromUint(3);
}

bool
G1Point::operator==(const G1Point &other) const
{
    if (isInfinity() || other.isInfinity())
        return isInfinity() == other.isInfinity();
    // Cross-multiply to compare without inversions.
    Fq z1z1 = z_.square();
    Fq z2z2 = other.z_.square();
    if (x_ * z2z2 != other.x_ * z1z1)
        return false;
    return y_ * other.z_ * z2z2 == other.y_ * z_ * z1z1;
}

} // namespace bzk
