#ifndef BZK_CURVE_MSM_H_
#define BZK_CURVE_MSM_H_

/**
 * @file
 * Multi-scalar multiplication over BN254 G1 — the dominant cost of the
 * Groth16-family provers the paper compares against (Table 7's MSM
 * column).
 *
 * The default msmPippenger accumulates each window's buckets with
 * batch-affine additions: bucket members are paired up and added as
 * affine points, with the per-pair slope denominators inverted in one
 * shared Montgomery batch inversion (ff::batchInverse) and the slope
 * algebra running through the packed wide-field Fq kernels. All paths
 * return the same group element (curve addition is exact), pinned by
 * test_msm against msmNaive down to serialized affine bytes.
 */

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "curve/Bn254.h"

namespace bzk {

/**
 * Thrown by the MSM entry points when the point and scalar spans
 * disagree in length (catching it beats the span-indexing UB that a
 * mismatched zip loop would hit).
 */
struct MsmSizeMismatch : std::invalid_argument
{
    MsmSizeMismatch(const char *where, size_t points, size_t scalars);

    size_t points;
    size_t scalars;
};

/**
 * Bucket window width (bits) used for an n-point Pippenger run when
 * the caller passes window_bits = 0. A log2(n)-based table tuned from
 * the bench_micro MSM sweep (EXPERIMENTS.md) instead of the old
 * log2(n)/1.3 heuristic.
 */
unsigned msmWindowBits(size_t n);

/** Naive sum of scalar multiplications — reference for testing. */
G1Point msmNaive(std::span<const G1Affine> points,
                 std::span<const Fr> scalars);

/**
 * Pippenger bucket MSM with the vectorized batch-affine bucket
 * accumulation.
 * @param window_bits bucket window width; 0 picks msmWindowBits(n).
 * @throws MsmSizeMismatch when the spans disagree in length.
 */
G1Point msmPippenger(std::span<const G1Affine> points,
                     std::span<const Fr> scalars,
                     unsigned window_bits = 0);

/**
 * Pippenger with the scalar Jacobian bucket loop (one addMixed per
 * point per window). Reference and bench baseline for the vectorized
 * pass; same group element out.
 */
G1Point msmPippengerJacobian(std::span<const G1Affine> points,
                             std::span<const Fr> scalars,
                             unsigned window_bits = 0);

/** Generate @p n pseudo-random affine points (and their generator). */
std::vector<G1Affine> randomPoints(size_t n, Rng &rng);

} // namespace bzk

#endif // BZK_CURVE_MSM_H_
