#ifndef BZK_CURVE_MSM_H_
#define BZK_CURVE_MSM_H_

/**
 * @file
 * Multi-scalar multiplication over BN254 G1 — the dominant cost of the
 * Groth16-family provers the paper compares against (Table 7's MSM
 * column).
 */

#include <span>
#include <vector>

#include "curve/Bn254.h"

namespace bzk {

/** Naive sum of scalar multiplications — reference for testing. */
G1Point msmNaive(std::span<const G1Affine> points,
                 std::span<const Fr> scalars);

/**
 * Pippenger bucket MSM.
 * @param window_bits bucket window width; 0 picks a size-derived value.
 */
G1Point msmPippenger(std::span<const G1Affine> points,
                     std::span<const Fr> scalars,
                     unsigned window_bits = 0);

/** Generate @p n pseudo-random affine points (and their generator). */
std::vector<G1Affine> randomPoints(size_t n, Rng &rng);

} // namespace bzk

#endif // BZK_CURVE_MSM_H_
