#ifndef BZK_CURVE_BN254_H_
#define BZK_CURVE_BN254_H_

/**
 * @file
 * BN254 (alt_bn128) G1 arithmetic.
 *
 * This is a *baseline substrate*: the Groth16-style provers that
 * Libsnark/Bellperson implement spend their time in multi-scalar
 * multiplications over this group. BatchZK's protocols avoid it
 * entirely; we build it to reproduce the paper's Table 7/8 comparisons.
 *
 * Curve: y^2 = x^3 + 3 over Fq, group order = Fr's modulus.
 * Points use Jacobian coordinates (X, Y, Z) with infinity at Z = 0.
 */

#include <span>
#include <vector>

#include "ff/Fields.h"
#include "util/Rng.h"

namespace bzk {

/** Affine G1 point; infinity flagged explicitly. */
struct G1Affine
{
    Fq x;
    Fq y;
    bool infinity = true;

    bool
    operator==(const G1Affine &o) const
    {
        if (infinity || o.infinity)
            return infinity == o.infinity;
        return x == o.x && y == o.y;
    }
};

/** Jacobian G1 point. */
class G1Point
{
  public:
    /** The point at infinity. */
    constexpr G1Point() = default;

    /** Lift an affine point. */
    static G1Point fromAffine(const G1Affine &p);

    /** The standard generator (1, 2). */
    static G1Point generator();

    /** generator * scalar for a uniformly random scalar. */
    static G1Point random(Rng &rng);

    /** True iff this is the point at infinity. */
    bool isInfinity() const { return z_.isZero(); }

    /** Group double. */
    G1Point dbl() const;

    /** Group add (handles doubling and infinity cases). */
    G1Point add(const G1Point &other) const;

    /** Mixed add with an affine point (faster inner loop for MSM). */
    G1Point addMixed(const G1Affine &other) const;

    /** Negation. */
    G1Point neg() const;

    /** Double-and-add scalar multiplication by a field scalar. */
    G1Point mul(const Fr &scalar) const;

    /** Normalize to affine (one field inversion). */
    G1Affine toAffine() const;

    /**
     * Normalize a batch with one shared inversion (Montgomery trick
     * via ff::batchInverse); infinities map to affine infinity.
     * Identical results to per-point toAffine().
     */
    static std::vector<G1Affine>
    batchToAffine(std::span<const G1Point> points);

    /** Affine curve-equation check (true for infinity). */
    bool isOnCurve() const;

    /** Equality as group elements (cross-multiplied, no inversion). */
    bool operator==(const G1Point &other) const;

  private:
    G1Point(const Fq &x, const Fq &y, const Fq &z) : x_(x), y_(y), z_(z) {}

    Fq x_ = Fq::zero();
    Fq y_ = Fq::one();
    Fq z_ = Fq::zero();
};

} // namespace bzk

#endif // BZK_CURVE_BN254_H_
