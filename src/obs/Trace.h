#ifndef BZK_OBS_TRACE_H_
#define BZK_OBS_TRACE_H_

/**
 * @file
 * Per-cycle trace recording for the pipelined proof service.
 *
 * A TraceRecorder collects spans (named intervals on named tracks) and
 * instants (zero-duration markers) and exports them in the Chrome
 * trace-event JSON format, loadable in chrome://tracing or Perfetto.
 * Producers are the simulated Device (kernel and copy-engine ops) and
 * the systems above it (per-cycle encoder / Merkle / sum-check module
 * spans, fault and retry events).
 *
 * The recorder is a pure observer behind a null-object default: every
 * instrumentation site checks a pointer that defaults to nullptr, so a
 * run with no recorder attached is bit-identical to one predating this
 * header (pinned by test_obs).
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bzk::obs {

/** One named interval on a track. */
struct TraceSpan
{
    /** Track (Chrome "thread") the span renders on, e.g. "lane:merkle". */
    std::string track;
    /** Display name, e.g. "merkle[c12]". */
    std::string name;
    /** Category for filtering: encoder, merkle, sumcheck, h2d, ... */
    std::string category;
    double start_ms = 0.0;
    double end_ms = 0.0;
    /** Pipeline cycle the span belongs to; -1 when not cycle-scoped. */
    int64_t cycle = -1;
};

/** One zero-duration marker (fault, retry, admission, ...). */
struct TraceInstant
{
    std::string track;
    std::string name;
    std::string category;
    double t_ms = 0.0;
    int64_t cycle = -1;
};

/** Collects spans/instants and renders Chrome trace-event JSON. */
class TraceRecorder
{
  public:
    /** Record a completed span; @p end_ms must be >= @p start_ms. */
    void span(const std::string &track, const std::string &name,
              const std::string &category, double start_ms, double end_ms,
              int64_t cycle = -1);

    /** Record an instantaneous event. */
    void instant(const std::string &track, const std::string &name,
                 const std::string &category, double t_ms,
                 int64_t cycle = -1);

    const std::vector<TraceSpan> &spans() const { return spans_; }

    const std::vector<TraceInstant> &instants() const
    {
        return instants_;
    }

    /** Spans recorded whose category equals @p category. */
    size_t spanCount(const std::string &category) const;

    /**
     * Deepest stack of simultaneously open spans on @p track (1 for
     * disjoint spans, 0 for an unknown track). Nested module spans and
     * pipeline overlap both show up here.
     */
    size_t maxNestingDepth(const std::string &track) const;

    /**
     * Chrome trace-event JSON: a metadata thread_name record per track
     * (tracks are numbered in first-appearance order), then one
     * complete ("ph":"X") event per span and one instant ("ph":"i")
     * event per marker, timestamps in microseconds.
     */
    std::string chromeTraceJson() const;

    /** Drop everything recorded so far. */
    void clear();

  private:
    /** Stable track -> tid mapping in first-appearance order. */
    size_t trackId(const std::string &track);

    std::vector<TraceSpan> spans_;
    std::vector<TraceInstant> instants_;
    std::vector<std::string> track_order_;
};

} // namespace bzk::obs

#endif // BZK_OBS_TRACE_H_
