#include "obs/Trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/Log.h"

namespace bzk::obs {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

size_t
TraceRecorder::trackId(const std::string &track)
{
    auto it = std::find(track_order_.begin(), track_order_.end(), track);
    if (it != track_order_.end())
        return static_cast<size_t>(it - track_order_.begin());
    track_order_.push_back(track);
    return track_order_.size() - 1;
}

void
TraceRecorder::span(const std::string &track, const std::string &name,
                    const std::string &category, double start_ms,
                    double end_ms, int64_t cycle)
{
    if (end_ms < start_ms) {
        warn("TraceRecorder: span '%s' ends (%g) before it starts (%g); "
             "dropping it",
             name.c_str(), end_ms, start_ms);
        return;
    }
    trackId(track);
    spans_.push_back({track, name, category, start_ms, end_ms, cycle});
}

void
TraceRecorder::instant(const std::string &track, const std::string &name,
                       const std::string &category, double t_ms,
                       int64_t cycle)
{
    trackId(track);
    instants_.push_back({track, name, category, t_ms, cycle});
}

size_t
TraceRecorder::spanCount(const std::string &category) const
{
    size_t n = 0;
    for (const auto &s : spans_)
        n += s.category == category;
    return n;
}

size_t
TraceRecorder::maxNestingDepth(const std::string &track) const
{
    // Sweep the span boundaries; ends sort before same-time starts so
    // back-to-back spans do not count as overlapping.
    std::vector<std::pair<double, int>> events;
    for (const auto &s : spans_) {
        if (s.track != track)
            continue;
        events.push_back({s.start_ms, +1});
        events.push_back({s.end_ms, -1});
    }
    std::sort(events.begin(), events.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first < b.first;
                  return a.second < b.second;
              });
    size_t depth = 0, max_depth = 0;
    for (const auto &[t, d] : events) {
        (void)t;
        if (d > 0)
            max_depth = std::max(max_depth, ++depth);
        else
            --depth;
    }
    return max_depth;
}

std::string
TraceRecorder::chromeTraceJson() const
{
    std::ostringstream os;
    os << "[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
    };
    for (size_t tid = 0; tid < track_order_.size(); ++tid) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << tid << ",\"args\":{\"name\":\""
           << jsonEscape(track_order_[tid]) << "\"}}";
    }
    auto tid_of = [this](const std::string &track) {
        return std::find(track_order_.begin(), track_order_.end(),
                         track) -
               track_order_.begin();
    };
    char buf[64];
    for (const auto &s : spans_) {
        sep();
        os << "{\"name\":\"" << jsonEscape(s.name) << "\",\"cat\":\""
           << jsonEscape(s.category) << "\",\"ph\":\"X\",\"ts\":";
        std::snprintf(buf, sizeof(buf), "%.3f", s.start_ms * 1e3);
        os << buf << ",\"dur\":";
        std::snprintf(buf, sizeof(buf), "%.3f",
                      (s.end_ms - s.start_ms) * 1e3);
        os << buf << ",\"pid\":0,\"tid\":" << tid_of(s.track)
           << ",\"args\":{\"cycle\":" << s.cycle << "}}";
    }
    for (const auto &i : instants_) {
        sep();
        os << "{\"name\":\"" << jsonEscape(i.name) << "\",\"cat\":\""
           << jsonEscape(i.category)
           << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
        std::snprintf(buf, sizeof(buf), "%.3f", i.t_ms * 1e3);
        os << buf << ",\"pid\":0,\"tid\":" << tid_of(i.track)
           << ",\"args\":{\"cycle\":" << i.cycle << "}}";
    }
    os << "]";
    return os.str();
}

void
TraceRecorder::clear()
{
    spans_.clear();
    instants_.clear();
    track_order_.clear();
}

} // namespace bzk::obs
