#include "obs/Metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/Log.h"

namespace bzk::obs {

namespace {

/** Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. */
bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    for (size_t i = 0; i < name.size(); ++i) {
        char c = name[i];
        bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
        bool digit = c >= '0' && c <= '9';
        if (!(alpha || (digit && i > 0)))
            return false;
    }
    return true;
}

void
checkName(const std::string &name)
{
    if (!validMetricName(name))
        warn("MetricsRegistry: '%s' is not a valid Prometheus metric "
             "name; exporters may reject it",
             name.c_str());
}

/** Minimal JSON string escaping (names here are plain identifiers). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
formatMetricValue(double value)
{
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

void
Counter::add(double delta)
{
    if (delta < 0.0) {
        warn("Counter: ignoring negative delta %g (counters are "
             "monotonic)",
             delta);
        return;
    }
    value_ += delta;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds))
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
        std::adjacent_find(bounds_.begin(), bounds_.end()) !=
            bounds_.end())
        fatal("Histogram: bucket bounds must be strictly increasing");
    counts_.assign(bounds_.size() + 1, 0);
}

void
Histogram::observe(double value)
{
    size_t i = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    ++counts_[i];
    ++count_;
    sum_ += value;
}

uint64_t
Histogram::bucketCount(size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram: bucket %zu out of range (%zu buckets)", i,
              counts_.size());
    return counts_[i];
}

uint64_t
Histogram::cumulativeCount(size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram: bucket %zu out of range (%zu buckets)", i,
              counts_.size());
    uint64_t total = 0;
    for (size_t b = 0; b <= i; ++b)
        total += counts_[b];
    return total;
}

Counter &
MetricsRegistry::counter(const std::string &name, const std::string &help)
{
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        checkName(name);
        it = counters_.emplace(name, NamedCounter{}).first;
        it->second.help = help;
    }
    return it->second.instrument;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help)
{
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        checkName(name);
        it = gauges_.emplace(name, NamedGauge{}).first;
        it->second.help = help;
    }
    return it->second.instrument;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> upper_bounds,
                           const std::string &help)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        checkName(name);
        it = histograms_
                 .emplace(name, NamedHistogram(std::move(upper_bounds)))
                 .first;
        it->second.help = help;
    }
    return it->second.instrument;
}

bool
MetricsRegistry::has(const std::string &name) const
{
    return counters_.count(name) > 0 || gauges_.count(name) > 0 ||
           histograms_.count(name) > 0;
}

size_t
MetricsRegistry::size() const
{
    return counters_.size() + gauges_.size() + histograms_.size();
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        os << (first ? "" : ",") << "\"" << jsonEscape(name)
           << "\":" << formatMetricValue(c.instrument.value());
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, g] : gauges_) {
        os << (first ? "" : ",") << "\"" << jsonEscape(name)
           << "\":" << formatMetricValue(g.instrument.value());
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        const Histogram &hist = h.instrument;
        os << (first ? "" : ",") << "\"" << jsonEscape(name)
           << "\":{\"buckets\":[";
        for (size_t b = 0; b <= hist.bounds().size(); ++b) {
            os << (b ? "," : "") << "{\"le\":";
            if (b < hist.bounds().size())
                os << formatMetricValue(hist.bounds()[b]);
            else
                os << "\"+Inf\"";
            os << ",\"count\":" << hist.bucketCount(b) << "}";
        }
        os << "],\"sum\":" << formatMetricValue(hist.sum())
           << ",\"count\":" << hist.count() << "}";
        first = false;
    }
    os << "}}";
    return os.str();
}

std::string
MetricsRegistry::toPrometheus() const
{
    std::ostringstream os;
    auto header = [&os](const std::string &name, const std::string &help,
                        const char *type) {
        if (!help.empty())
            os << "# HELP " << name << " " << help << "\n";
        os << "# TYPE " << name << " " << type << "\n";
    };
    for (const auto &[name, c] : counters_) {
        header(name, c.help, "counter");
        os << name << " " << formatMetricValue(c.instrument.value())
           << "\n";
    }
    for (const auto &[name, g] : gauges_) {
        header(name, g.help, "gauge");
        os << name << " " << formatMetricValue(g.instrument.value())
           << "\n";
    }
    for (const auto &[name, h] : histograms_) {
        const Histogram &hist = h.instrument;
        header(name, h.help, "histogram");
        for (size_t b = 0; b <= hist.bounds().size(); ++b) {
            os << name << "_bucket{le=\"";
            if (b < hist.bounds().size())
                os << formatMetricValue(hist.bounds()[b]);
            else
                os << "+Inf";
            os << "\"} " << hist.cumulativeCount(b) << "\n";
        }
        os << name << "_sum " << formatMetricValue(hist.sum()) << "\n";
        os << name << "_count " << hist.count() << "\n";
    }
    return os.str();
}

} // namespace bzk::obs
