#ifndef BZK_OBS_METRICS_H_
#define BZK_OBS_METRICS_H_

/**
 * @file
 * Metrics registry for the proof service: counters, gauges and
 * fixed-bucket histograms, exportable as JSON and as Prometheus text
 * exposition format.
 *
 * The registry is the pull-side half of the observability layer (the
 * push side is obs::TraceRecorder): systems update named instruments
 * while they run, and an operator scrapes the whole registry at any
 * point. Instruments are created on first use and live as long as the
 * registry; returned references stay valid because instruments are
 * stored behind stable heap nodes (std::map).
 *
 * Everything here is plain bookkeeping — no clocks, no threads, no
 * global state — so a run that updates a registry is exactly as
 * deterministic as one that does not.
 */

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bzk::obs {

/** Monotonically increasing sum (Prometheus `counter`). */
class Counter
{
  public:
    /** Add @p delta (negative deltas are ignored with a warning). */
    void add(double delta = 1.0);

    /** Current total. */
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Last-write-wins instantaneous value (Prometheus `gauge`). */
class Gauge
{
  public:
    void set(double value) { value_ = value; }

    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Fixed-bucket histogram (Prometheus `histogram`). Bucket upper bounds
 * are set at creation and never change; an implicit +Inf bucket catches
 * everything above the last bound. A sample lands in the first bucket
 * whose upper bound is >= the sample (Prometheus `le` semantics).
 */
class Histogram
{
  public:
    /** @param upper_bounds strictly increasing finite bucket bounds. */
    explicit Histogram(std::vector<double> upper_bounds);

    /** Fold one sample into the histogram. */
    void observe(double value);

    /** Finite bucket upper bounds (excludes the implicit +Inf). */
    const std::vector<double> &bounds() const { return bounds_; }

    /**
     * Non-cumulative count of samples in bucket @p i, where
     * i == bounds().size() addresses the +Inf bucket.
     */
    uint64_t bucketCount(size_t i) const;

    /** Cumulative count of samples <= bounds()[i] (Prometheus `le`). */
    uint64_t cumulativeCount(size_t i) const;

    /** Total number of samples observed. */
    uint64_t count() const { return count_; }

    /** Sum of all observed samples. */
    double sum() const { return sum_; }

  private:
    std::vector<double> bounds_;
    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * Named instrument store. Lookup creates the instrument on first use;
 * later lookups with the same name return the same instrument (a
 * histogram's buckets are fixed by the first call). Export order is the
 * lexicographic name order, so exports are golden-testable.
 */
class MetricsRegistry
{
  public:
    /** Find or create a counter. @p help is kept from the first call. */
    Counter &counter(const std::string &name, const std::string &help = "");

    /** Find or create a gauge. */
    Gauge &gauge(const std::string &name, const std::string &help = "");

    /** Find or create a histogram with the given finite bucket bounds. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upper_bounds,
                         const std::string &help = "");

    /** True when an instrument of any kind with @p name exists. */
    bool has(const std::string &name) const;

    /** Number of registered instruments across all kinds. */
    size_t size() const;

    /**
     * JSON export:
     * {"counters":{name:value,...},"gauges":{...},
     *  "histograms":{name:{"buckets":[{"le":b,"count":n},...],
     *                      "sum":s,"count":c},...}}
     * Histogram bucket counts are non-cumulative; the final bucket's
     * "le" is the string "+Inf".
     */
    std::string toJson() const;

    /**
     * Prometheus text exposition format (one HELP/TYPE header per
     * instrument; histogram buckets are cumulative with an +Inf bucket,
     * plus _sum and _count series).
     */
    std::string toPrometheus() const;

  private:
    struct Described
    {
        std::string help;
    };

    struct NamedCounter : Described
    {
        Counter instrument;
    };

    struct NamedGauge : Described
    {
        Gauge instrument;
    };

    struct NamedHistogram : Described
    {
        Histogram instrument;

        explicit NamedHistogram(std::vector<double> bounds)
            : instrument(std::move(bounds))
        {
        }
    };

    std::map<std::string, NamedCounter> counters_;
    std::map<std::string, NamedGauge> gauges_;
    std::map<std::string, NamedHistogram> histograms_;
};

/**
 * Render @p value the way the exporters do: integers without a decimal
 * point, everything else with up to 12 significant digits. Exposed so
 * golden tests and external emitters agree with the registry.
 */
std::string formatMetricValue(double value);

} // namespace bzk::obs

#endif // BZK_OBS_METRICS_H_
