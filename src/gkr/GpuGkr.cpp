#include "gkr/GpuGkr.h"

#include <algorithm>
#include <cmath>

#include "gpusim/Calibration.h"

namespace bzk {

using gpusim::BatchStats;
using gpusim::KernelDesc;
using gpusim::OpId;
using gpusim::StreamId;

namespace {

/** Build @p count real proofs over random inputs. */
void
buildFunctional(const LayeredCircuit<Fr> &circuit, size_t count, Rng &rng,
                std::vector<GkrProof<Fr>> *proofs)
{
    if (count == 0)
        return;
    Gkr<Fr> gkr(circuit);
    for (size_t i = 0; i < count; ++i) {
        std::vector<Fr> inputs(size_t{1} << circuit.layerVars(0));
        for (auto &x : inputs)
            x = Fr::random(rng);
        Transcript transcript("batchzk.gkr.batch");
        auto proof = gkr.prove(inputs, transcript);
        if (proofs)
            proofs->push_back(std::move(proof));
    }
}

} // namespace

std::vector<GkrLayerCost>
gkrLayerCosts(const LayeredCircuit<Fr> &circuit)
{
    std::vector<GkrLayerCost> costs;
    for (size_t l = 1; l <= circuit.depth(); ++l) {
        size_t gates = circuit.layerGates(l).size();
        size_t width = size_t{1} << circuit.layerVars(l - 1);
        GkrLayerCost cost;
        // Libra prover: two bookkeeping scatters over the gates
        // (~2 muls each) plus 2k sum-check rounds whose fold/eval work
        // telescopes to ~2 * width * (6 mul + adds) per phase.
        double scatter = 4.0 * static_cast<double>(gates) *
                         gpusim::kFieldMulCycles;
        double rounds = 4.0 * static_cast<double>(width) *
                        (6.0 * gpusim::kFieldMulCycles +
                         8.0 * gpusim::kFieldAddCycles);
        cost.cycles = scatter + rounds;
        cost.mem_bytes =
            static_cast<uint64_t>(gates) * 12 + width * 3 * 32;
        costs.push_back(cost);
    }
    return costs;
}

IntuitiveGkrGpu::IntuitiveGkrGpu(gpusim::Device &dev, GpuGkrOptions opt)
    : dev_(dev), opt_(opt)
{
}

BatchStats
IntuitiveGkrGpu::run(const LayeredCircuit<Fr> &circuit, size_t batch,
                     Rng &rng, std::vector<GkrProof<Fr>> *proofs)
{
    buildFunctional(circuit, std::min(batch, opt_.functional), rng,
                    proofs);

    dev_.resetTimeline();
    dev_.resetMemoryPeak();
    double cores = opt_.lane_budget > 0
                       ? std::min<double>(opt_.lane_budget,
                                          dev_.spec().cuda_cores)
                       : dev_.spec().cuda_cores;
    auto costs = gkrLayerCosts(circuit);
    size_t input_bytes =
        (size_t{1} << circuit.layerVars(0)) * Fr::kNumBytes;

    // The whole batch's witnesses staged up front.
    int64_t mem = dev_.alloc(batch * input_bytes * 4);

    StreamId stream = dev_.createStream();
    double sync = gpusim::kHostSyncMs * dev_.spec().cyclesPerMs();
    double first_end = 0.0;
    for (size_t p = 0; p < batch; ++p) {
        if (opt_.stream_io)
            dev_.copyH2D(stream, input_bytes);
        KernelDesc k;
        k.name = "gkr_proof";
        k.lanes = cores;
        uint64_t traffic = 0;
        for (size_t l = costs.size(); l-- > 0;) {
            // Every sum-check round is a host-synchronized relaunch,
            // and the layer's work parallelizes over at most its width.
            double n_rounds =
                2.0 * circuit.layerVars(l); // layer l+1 reads layer l
            double lanes_used =
                std::min(cores, static_cast<double>(
                                    size_t{1} << circuit.layerVars(l)));
            k.profile.push_back(
                {costs[l].cycles / lanes_used + n_rounds * sync,
                 lanes_used});
            traffic += costs[l].mem_bytes;
        }
        k.mem_bytes = traffic;
        OpId op = dev_.launchKernel(stream, k);
        if (opt_.stream_io)
            dev_.copyD2H(stream, 64 * 1024, op);
        if (p == 0)
            first_end = dev_.opEnd(op);
    }

    BatchStats stats;
    stats.batch = batch;
    stats.total_ms = dev_.now();
    stats.first_latency_ms = first_end;
    stats.item_latency_ms = first_end;
    stats.throughput_per_ms = batch / stats.total_ms;
    stats.peak_device_bytes = dev_.peakMemory();
    stats.busy_lane_ms = dev_.busyLaneMs();
    stats.utilization =
        stats.busy_lane_ms / (stats.total_ms * dev_.spec().cuda_cores);
    dev_.free(mem);
    return stats;
}

PipelinedGkrGpu::PipelinedGkrGpu(gpusim::Device &dev, GpuGkrOptions opt)
    : dev_(dev), opt_(opt)
{
}

BatchStats
PipelinedGkrGpu::run(const LayeredCircuit<Fr> &circuit, size_t batch,
                     Rng &rng, std::vector<GkrProof<Fr>> *proofs)
{
    buildFunctional(circuit, std::min(batch, opt_.functional), rng,
                    proofs);

    dev_.resetTimeline();
    dev_.resetMemoryPeak();
    double lanes_total = opt_.lane_budget > 0
                             ? std::min<double>(opt_.lane_budget,
                                                dev_.spec().cuda_cores)
                             : dev_.spec().cuda_cores;
    auto costs = gkrLayerCosts(circuit);
    size_t n_stages = costs.size();
    size_t input_bytes =
        (size_t{1} << circuit.layerVars(0)) * Fr::kNumBytes;

    double total_cost = 0.0;
    for (const auto &c : costs)
        total_cost += c.cycles;
    std::vector<double> stage_lanes(n_stages);
    for (size_t i = 0; i < n_stages; ++i)
        stage_lanes[i] =
            std::max(1.0, lanes_total * costs[i].cycles / total_cost);
    double cycle_cycles = 0.0;
    for (size_t i = 0; i < n_stages; ++i)
        cycle_cycles =
            std::max(cycle_cycles, costs[i].cycles / stage_lanes[i]);

    // One in-flight proof's tables per stage (dynamic loading).
    uint64_t resident = 0;
    for (const auto &c : costs)
        resident += c.mem_bytes;
    int64_t mem = dev_.alloc(2 * resident);

    StreamId compute = dev_.createStream();
    StreamId h2d = dev_.createStream();
    StreamId d2h = dev_.createStream();
    size_t cycles = batch + n_stages - 1;
    double first_end = 0.0;
    OpId prev_load = gpusim::kNoOp;
    for (size_t c = 0; c < cycles; ++c) {
        OpId load = gpusim::kNoOp;
        if (opt_.stream_io && c < batch)
            load = dev_.copyH2D(h2d, input_bytes);
        double active = 0.0;
        uint64_t traffic = 0;
        for (size_t i = 0; i < n_stages; ++i) {
            if (c >= i && c - i < batch) {
                active += stage_lanes[i];
                traffic += costs[i].mem_bytes;
            }
        }
        KernelDesc k;
        k.name = "gkr_pipe_cycle";
        k.lanes = lanes_total;
        k.profile.push_back({cycle_cycles, active});
        k.mem_bytes = traffic;
        OpId op = dev_.launchKernel(compute, k, prev_load);
        prev_load = load;
        if (opt_.stream_io && c + 1 >= n_stages)
            dev_.copyD2H(d2h, 64 * 1024, op);
        if (c == n_stages - 1)
            first_end = dev_.opEnd(op);
    }

    BatchStats stats;
    stats.batch = batch;
    stats.total_ms = dev_.now();
    stats.first_latency_ms = first_end;
    stats.item_latency_ms = static_cast<double>(n_stages) * cycle_cycles /
                            dev_.spec().cyclesPerMs();
    stats.throughput_per_ms = batch / stats.total_ms;
    stats.peak_device_bytes = dev_.peakMemory();
    stats.busy_lane_ms = dev_.busyLaneMs();
    stats.utilization =
        stats.busy_lane_ms / (stats.total_ms * dev_.spec().cuda_cores);
    dev_.free(mem);
    return stats;
}

} // namespace bzk
