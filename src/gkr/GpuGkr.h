#ifndef BZK_GKR_GPUGKR_H_
#define BZK_GKR_GPUGKR_H_

/**
 * @file
 * Batch GKR proving on the simulated GPU — the "wider range of ZKP
 * protocols" integration the paper's modular design targets: a GKR
 * proof is a chain of sum-checks, so the pipelined sum-check module's
 * execution style applies layer-for-layer.
 *
 *  - PipelinedGkrGpu: one kernel group per circuit layer; proofs stream
 *    through the layers so every stage stays busy (lane split
 *    proportional to layer cost).
 *  - IntuitiveGkrGpu: one kernel per proof; the 2k sum-check rounds of
 *    every layer serialize with a host sync each, and proofs run one
 *    at a time.
 *
 * Functional proofs come from the real Gkr prover on the host.
 */

#include <vector>

#include "ff/Fields.h"
#include "gkr/Gkr.h"
#include "gkr/LayeredCircuit.h"
#include "gpusim/BatchStats.h"
#include "gpusim/Device.h"
#include "util/Rng.h"

namespace bzk {

/** Options shared by the GPU GKR drivers. */
struct GpuGkrOptions
{
    /** Lanes this protocol may use; 0 = whole device. */
    double lane_budget = 0.0;
    /** Stream each proof's inputs from host memory. */
    bool stream_io = true;
    /** Number of proofs generated functionally. */
    size_t functional = 1;
};

/** Per-layer cost summary of a GKR proof (lane-cycles). */
struct GkrLayerCost
{
    double cycles = 0.0;
    uint64_t mem_bytes = 0;
};

/** Derive per-layer prover costs from a circuit's shape. */
std::vector<GkrLayerCost> gkrLayerCosts(const LayeredCircuit<Fr> &circuit);

/** One-kernel-per-proof baseline. */
class IntuitiveGkrGpu
{
  public:
    IntuitiveGkrGpu(gpusim::Device &dev, GpuGkrOptions opt = {});

    /** Prove @p batch instances of @p circuit (random inputs). */
    gpusim::BatchStats run(const LayeredCircuit<Fr> &circuit,
                           size_t batch, Rng &rng,
                           std::vector<GkrProof<Fr>> *proofs = nullptr);

  private:
    gpusim::Device &dev_;
    GpuGkrOptions opt_;
};

/** Layer-pipelined batch prover. */
class PipelinedGkrGpu
{
  public:
    PipelinedGkrGpu(gpusim::Device &dev, GpuGkrOptions opt = {});

    /** @copydoc IntuitiveGkrGpu::run */
    gpusim::BatchStats run(const LayeredCircuit<Fr> &circuit,
                           size_t batch, Rng &rng,
                           std::vector<GkrProof<Fr>> *proofs = nullptr);

  private:
    gpusim::Device &dev_;
    GpuGkrOptions opt_;
};

} // namespace bzk

#endif // BZK_GKR_GPUGKR_H_
