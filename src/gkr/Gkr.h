#ifndef BZK_GKR_GKR_H_
#define BZK_GKR_GKR_H_

/**
 * @file
 * The GKR interactive proof for layered circuits, made non-interactive
 * with the Fiat-Shamir transcript — the protocol family (Libra, Virgo,
 * Virgo++, zkCNN, Orion) whose inner loop is exactly the sum-check
 * module this library accelerates.
 *
 * For each layer l (output down to inputs) the prover runs a
 * 2*k-round sum-check of
 *
 *   V_l(g) = sum_{x,y} [ add~_l(g,x,y) (V_{l-1}(x) + V_{l-1}(y))
 *                      + mul~_l(g,x,y)  V_{l-1}(x) * V_{l-1}(y) ],
 *
 * using the Libra-style linear-time prover: phase one sums over x with
 * scatter-built bookkeeping tables A1/A2/A3, phase two over y with
 * B1/B2, each O(gates + layer width) per layer. The two resulting
 * claims V_{l-1}(rx), V_{l-1}(ry) are merged with random alpha, beta
 * into the next layer's combined claim. The verifier evaluates the
 * wiring predicates add~/mul~ itself from the gate list (O(gates))
 * and, at the bottom, the input layer's multilinear extension directly
 * from the public inputs.
 *
 * Inputs and outputs are public here (verifiable outsourcing, the
 * zkCNN setting); a zero-knowledge variant would commit V_0 with the
 * tensor PCS instead of evaluating it in the clear.
 */

#include <vector>

#include "gkr/LayeredCircuit.h"
#include "hash/Transcript.h"
#include "poly/Multilinear.h"
#include "util/Log.h"

namespace bzk {

/** Per-layer piece of a GKR proof. */
template <typename F>
struct GkrLayerProof
{
    /** 2*k_{l-1} sum-check rounds, 3 evaluations (degree 2) each. */
    std::vector<std::vector<F>> rounds;
    /** Claimed V_{l-1}(rx). */
    F vx{};
    /** Claimed V_{l-1}(ry). */
    F vy{};
};

/** A complete GKR proof. */
template <typename F>
struct GkrProof
{
    /** Claimed (padded) output-layer values. */
    std::vector<F> outputs;
    /** Layer proofs, output layer first. */
    std::vector<GkrLayerProof<F>> layers;

    /** Rough wire size in bytes. */
    size_t
    sizeBytes() const
    {
        size_t bytes = outputs.size() * F::kNumBytes;
        for (const auto &layer : layers) {
            bytes += 2 * F::kNumBytes;
            for (const auto &g : layer.rounds)
                bytes += g.size() * F::kNumBytes;
        }
        return bytes;
    }
};

/** Prover/verifier pair for one layered circuit. */
template <typename F>
class Gkr
{
  public:
    explicit Gkr(const LayeredCircuit<F> &circuit) : circuit_(circuit) {}

    /** Prove the circuit's outputs on @p inputs. */
    GkrProof<F>
    prove(const std::vector<F> &inputs, Transcript &transcript) const
    {
        auto values = circuit_.evaluate(inputs);
        size_t depth = circuit_.depth();

        GkrProof<F> proof;
        proof.outputs = values[depth];
        for (const F &o : proof.outputs)
            transcript.absorbField("gkr.out", o);

        // Initial claim: V_L~(g) for transcript-drawn g.
        std::vector<F> u = drawPoint(transcript, circuit_.layerVars(depth));
        std::vector<F> v = u;
        F alpha = F::one();
        F beta = F::zero();

        for (size_t l = depth; l >= 1; --l) {
            GkrLayerProof<F> layer;
            const auto &gates = circuit_.layerGates(l);
            const auto &below = values[l - 1];
            unsigned k = circuit_.layerVars(l - 1);
            size_t width = size_t{1} << k;

            // Combined eq over the layer's own index space.
            auto eq_u = eqTable(u);
            auto eq_v = eqTable(v);
            std::vector<F> eqz(eq_u.size());
            for (size_t z = 0; z < eqz.size(); ++z)
                eqz[z] = alpha * eq_u[z] + beta * eq_v[z];

            // Phase 1 bookkeeping (scatter over gates by in0):
            //   h1(x) = V(x) * (A1 + A2)(x) + A3(x)
            std::vector<F> a12(width, F::zero());
            std::vector<F> a3(width, F::zero());
            for (size_t g = 0; g < gates.size(); ++g) {
                const LayeredGate &gate = gates[g];
                if (gate.kind == LayeredGate::Kind::Mul) {
                    a12[gate.in0] += eqz[g] * below[gate.in1];
                } else {
                    a12[gate.in0] += eqz[g];
                    a3[gate.in0] += eqz[g] * below[gate.in1];
                }
            }
            std::vector<F> vx_table = below;
            std::vector<F> rx =
                sumcheckHalf(vx_table, a12, &a3, k, transcript,
                             layer.rounds);
            layer.vx = vx_table[0];

            // Phase 2 bookkeeping (scatter by in1, rx fixed):
            //   h2(y) = V(y) * (B1*vx + B2)(y) + (B2*vx)(y)
            auto eq_rx = eqTable(rx);
            std::vector<F> c(width, F::zero());
            std::vector<F> d(width, F::zero());
            for (size_t g = 0; g < gates.size(); ++g) {
                const LayeredGate &gate = gates[g];
                F coeff = eqz[g] * eq_rx[gate.in0];
                if (gate.kind == LayeredGate::Kind::Mul) {
                    c[gate.in1] += coeff * layer.vx;
                } else {
                    c[gate.in1] += coeff;
                    d[gate.in1] += coeff * layer.vx;
                }
            }
            std::vector<F> vy_table = below;
            std::vector<F> ry =
                sumcheckHalf(vy_table, c, &d, k, transcript,
                             layer.rounds);
            layer.vy = vy_table[0];

            transcript.absorbField("gkr.vx", layer.vx);
            transcript.absorbField("gkr.vy", layer.vy);
            proof.layers.push_back(std::move(layer));

            if (l > 1) {
                alpha = transcript.template challengeField<F>("gkr.alpha");
                beta = transcript.template challengeField<F>("gkr.beta");
                u = std::move(rx);
                v = std::move(ry);
            }
        }
        return proof;
    }

    /**
     * Verify that @p proof.outputs are the circuit's outputs on
     * @p inputs.
     */
    bool
    verify(const GkrProof<F> &proof, const std::vector<F> &inputs,
           Transcript &transcript) const
    {
        size_t depth = circuit_.depth();
        if (proof.layers.size() != depth)
            return false;
        size_t out_width = size_t{1} << circuit_.layerVars(depth);
        if (proof.outputs.size() != out_width)
            return false;
        for (const F &o : proof.outputs)
            transcript.absorbField("gkr.out", o);

        std::vector<F> u =
            drawPoint(transcript, circuit_.layerVars(depth));
        std::vector<F> v = u;
        F alpha = F::one();
        F beta = F::zero();
        F claim = Multilinear<F>(proof.outputs).evaluate(u);

        std::vector<F> last_rx, last_ry;
        F claim_x = F::zero();
        F claim_y = F::zero();
        for (size_t l = depth; l >= 1; --l) {
            const GkrLayerProof<F> &layer = proof.layers[depth - l];
            unsigned k = circuit_.layerVars(l - 1);
            if (layer.rounds.size() != 2 * static_cast<size_t>(k))
                return false;

            // Walk the 2k rounds, starting from the combined claim.
            F cur = (l == depth) ? claim
                                 : alpha * claim_x + beta * claim_y;
            std::vector<F> rx, ry;
            for (size_t i = 0; i < layer.rounds.size(); ++i) {
                const auto &g = layer.rounds[i];
                if (g.size() != 3)
                    return false;
                if (g[0] + g[1] != cur)
                    return false;
                for (const F &gi : g)
                    transcript.absorbField("gkr.h", gi);
                F r = transcript.template challengeField<F>("gkr.r");
                std::vector<F> xs{F::fromUint(0), F::fromUint(1),
                                  F::fromUint(2)};
                cur = lagrangeEval(xs, g, r);
                if (i < k)
                    rx.push_back(r);
                else
                    ry.push_back(r);
            }

            // Final wiring check: verifier evaluates the predicates.
            const auto &gates = circuit_.layerGates(l);
            auto eq_u = eqTable(u);
            auto eq_v = eqTable(v);
            auto eq_rx = eqTable(rx);
            auto eq_ry = eqTable(ry);
            F add_c = F::zero();
            F mul_c = F::zero();
            for (size_t g = 0; g < gates.size(); ++g) {
                const LayeredGate &gate = gates[g];
                F zc = alpha * eq_u[g] + beta * eq_v[g];
                F coeff = zc * eq_rx[gate.in0] * eq_ry[gate.in1];
                if (gate.kind == LayeredGate::Kind::Mul)
                    mul_c += coeff;
                else
                    add_c += coeff;
            }
            F expect = add_c * (layer.vx + layer.vy) +
                       mul_c * layer.vx * layer.vy;
            if (expect != cur)
                return false;

            transcript.absorbField("gkr.vx", layer.vx);
            transcript.absorbField("gkr.vy", layer.vy);
            claim_x = layer.vx;
            claim_y = layer.vy;
            last_rx = rx;
            last_ry = ry;

            if (l > 1) {
                alpha = transcript.template challengeField<F>("gkr.alpha");
                beta = transcript.template challengeField<F>("gkr.beta");
                u = std::move(rx);
                v = std::move(ry);
            }
        }

        // Bottom: check the claims against the public input layer.
        std::vector<F> padded = inputs;
        padded.resize(size_t{1} << circuit_.layerVars(0), F::zero());
        Multilinear<F> v0(padded);
        return v0.evaluate(last_rx) == claim_x &&
               v0.evaluate(last_ry) == claim_y;
    }

  private:
    /** Draw @p k point coordinates from the transcript. */
    static std::vector<F>
    drawPoint(Transcript &transcript, unsigned k)
    {
        std::vector<F> point(k);
        for (auto &p : point)
            p = transcript.template challengeField<F>("gkr.g");
        return point;
    }

    /**
     * Run k sum-check rounds of h(b) = V(b)*C(b) + D(b), folding all
     * three tables; appends round evaluations to @p rounds and returns
     * the challenges. D may be null (treated as zero).
     */
    static std::vector<F>
    sumcheckHalf(std::vector<F> &v_table, std::vector<F> &c_table,
                 std::vector<F> *d_table, unsigned k,
                 Transcript &transcript,
                 std::vector<std::vector<F>> &rounds)
    {
        const F two = F::fromUint(2);
        std::vector<F> challenges;
        challenges.reserve(k);
        for (unsigned round = 0; round < k; ++round) {
            size_t half = v_table.size() / 2;
            std::vector<F> g(3, F::zero());
            for (size_t b = 0; b < half; ++b) {
                F dv = v_table[b + half] - v_table[b];
                F dc = c_table[b + half] - c_table[b];
                g[0] += v_table[b] * c_table[b];
                g[1] += v_table[b + half] * c_table[b + half];
                g[2] += (v_table[b] + two * dv) *
                        (c_table[b] + two * dc);
                if (d_table) {
                    F dd = (*d_table)[b + half] - (*d_table)[b];
                    g[0] += (*d_table)[b];
                    g[1] += (*d_table)[b + half];
                    g[2] += (*d_table)[b] + two * dd;
                }
            }
            for (const F &gi : g)
                transcript.absorbField("gkr.h", gi);
            F r = transcript.template challengeField<F>("gkr.r");
            auto fold = [&](std::vector<F> &t) {
                for (size_t b = 0; b < half; ++b)
                    t[b] = t[b] + r * (t[b + half] - t[b]);
                t.resize(half);
            };
            fold(v_table);
            fold(c_table);
            if (d_table)
                fold(*d_table);
            challenges.push_back(r);
            rounds.push_back(std::move(g));
        }
        return challenges;
    }

    const LayeredCircuit<F> &circuit_;
};

} // namespace bzk

#endif // BZK_GKR_GKR_H_
