#ifndef BZK_GKR_LAYEREDCIRCUIT_H_
#define BZK_GKR_LAYEREDCIRCUIT_H_

/**
 * @file
 * Layered arithmetic circuits for the GKR protocol.
 *
 * Layer 0 holds the inputs; every gate in layer i reads two wires from
 * layer i-1. Layer widths are padded to powers of two; padding slots
 * carry zero and no gate writes them, so each layer's multilinear
 * extension is well defined.
 */

#include <cstdint>
#include <vector>

#include "util/Log.h"
#include "util/Rng.h"

namespace bzk {

/** One gate of a layered circuit. */
struct LayeredGate
{
    enum class Kind : uint8_t { Add, Mul };

    Kind kind = Kind::Add;
    /** Left input index into the previous layer. */
    uint32_t in0 = 0;
    /** Right input index into the previous layer. */
    uint32_t in1 = 0;
};

/** A layered circuit with power-of-two layer widths. */
template <typename F>
class LayeredCircuit
{
  public:
    /** Empty circuit (single-slot input layer); reassign before use. */
    LayeredCircuit() : layer_vars_{0} {}

    /** @param input_vars log2 of the (padded) input layer width. */
    explicit LayeredCircuit(unsigned input_vars)
        : layer_vars_{input_vars}
    {
    }

    /**
     * Append a computation layer; gate i writes slot i of the new
     * layer. The width pads to the next power of two.
     */
    void
    addLayer(std::vector<LayeredGate> gates)
    {
        if (gates.empty())
            panic("LayeredCircuit::addLayer: empty layer");
        size_t prev = size_t{1} << layer_vars_.back();
        for (const auto &g : gates)
            if (g.in0 >= prev || g.in1 >= prev)
                panic("LayeredCircuit::addLayer: input index out of "
                      "range");
        unsigned vars = 0;
        while ((size_t{1} << vars) < gates.size())
            ++vars;
        layer_vars_.push_back(vars);
        gates_.push_back(std::move(gates));
    }

    /** Number of computation layers (depth). */
    size_t depth() const { return gates_.size(); }

    /** log2 padded width of layer @p i (0 = inputs). */
    unsigned layerVars(size_t i) const { return layer_vars_[i]; }

    /** Gates of computation layer @p i (1-based: layer i reads i-1). */
    const std::vector<LayeredGate> &
    layerGates(size_t i) const
    {
        return gates_[i - 1];
    }

    /** Total gate count across layers. */
    size_t
    numGates() const
    {
        size_t n = 0;
        for (const auto &layer : gates_)
            n += layer.size();
        return n;
    }

    /**
     * Evaluate all layers; element [i] is layer i's padded value
     * vector (layer 0 = padded inputs).
     */
    std::vector<std::vector<F>>
    evaluate(std::vector<F> inputs) const
    {
        size_t in_width = size_t{1} << layer_vars_[0];
        if (inputs.size() > in_width)
            panic("LayeredCircuit::evaluate: %zu inputs exceed width "
                  "2^%u",
                  inputs.size(), layer_vars_[0]);
        inputs.resize(in_width, F::zero());
        std::vector<std::vector<F>> values;
        values.push_back(std::move(inputs));
        for (size_t l = 0; l < gates_.size(); ++l) {
            const auto &below = values.back();
            std::vector<F> out(size_t{1} << layer_vars_[l + 1],
                               F::zero());
            for (size_t g = 0; g < gates_[l].size(); ++g) {
                const LayeredGate &gate = gates_[l][g];
                out[g] = gate.kind == LayeredGate::Kind::Mul
                             ? below[gate.in0] * below[gate.in1]
                             : below[gate.in0] + below[gate.in1];
            }
            values.push_back(std::move(out));
        }
        return values;
    }

  private:
    /** log2 width per layer (index 0 = inputs). */
    std::vector<unsigned> layer_vars_;
    /** Gates per computation layer (index 0 = layer 1's gates). */
    std::vector<std::vector<LayeredGate>> gates_;
};

/**
 * A random layered circuit: @p depth layers of @p width gates each over
 * 2^input_vars inputs, with mixed add/mul gates.
 */
template <typename F>
LayeredCircuit<F>
randomLayeredCircuit(unsigned input_vars, size_t depth, size_t width,
                     Rng &rng)
{
    LayeredCircuit<F> c(input_vars);
    size_t below = size_t{1} << input_vars;
    for (size_t l = 0; l < depth; ++l) {
        std::vector<LayeredGate> gates(width);
        for (auto &g : gates) {
            g.kind = (rng.next() & 1) ? LayeredGate::Kind::Mul
                                      : LayeredGate::Kind::Add;
            g.in0 = static_cast<uint32_t>(rng.nextBounded(below));
            g.in1 = static_cast<uint32_t>(rng.nextBounded(below));
        }
        c.addLayer(std::move(gates));
        below = size_t{1} << c.layerVars(l + 1);
    }
    return c;
}

} // namespace bzk

#endif // BZK_GKR_LAYEREDCIRCUIT_H_
