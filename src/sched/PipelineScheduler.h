#ifndef BZK_SCHED_PIPELINESCHEDULER_H_
#define BZK_SCHED_PIPELINESCHEDULER_H_

/**
 * @file
 * The cycle-stepping pipeline engine of the paper's Figure 7, extracted
 * from PipelinedZkpSystem into a reusable layer. The scheduler owns the
 * policy the paper welds together:
 *
 *  - one task admitted per cycle, priority-first then FIFO;
 *  - static proportional lane partition across module groups, with the
 *    whole partition re-scaled onto the survivors on degraded cycles
 *    (LaneAllocator);
 *  - dynamic loading: one task's streamed input per cycle on a
 *    dedicated h2d stream, one task's staged layers back per
 *    completion on a d2h stream (or everything bulk-preloaded when the
 *    ablation disables it);
 *  - multi-stream transfer/compute overlap (or a single stream when
 *    the ablation disables it);
 *  - fault hooks against gpusim::Device: failed-lane degradation and a
 *    Merkle root re-check on every admission's staged layers, with
 *    detected corruption re-enqueuing the task.
 *
 * Tasks may have heterogeneous stage graphs (mixed n_vars): each
 * in-flight task holds its static 1/depth share of the device, the
 * cycle is paced by the costliest in-flight shape, and per-task
 * admission/completion cycles are reported in TaskStats. For uniform
 * batches the engine reproduces the pre-refactor PipelinedZkpSystem
 * loop operation for operation (pinned by test_sched goldens).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sched/ProofTask.h"

namespace bzk::gpusim {
class Device;
} // namespace bzk::gpusim

namespace bzk::obs {
class MetricsRegistry;
class TraceRecorder;
} // namespace bzk::obs

namespace bzk::sched {

/**
 * How the lane budget is partitioned across module groups.
 *
 * Proportional is the legacy per-class policy: each task class gets a
 * partition proportional to its own stage costs, which makes the cycle
 * pace exactly total_cycles / lanes (pinned bit-identical by the
 * test_sched goldens). The other two policies compute one global
 * kind->lanes partition for the whole batch, so the most-contended
 * module group paces each class — the setting where a hard-coded ratio
 * calibrated for one protocol loses to a measured split on a
 * heterogeneous-protocol batch.
 */
enum class LanePolicy
{
    /** Per-class proportional split (legacy, bit-identical goldens). */
    Proportional,
    /** The paper's hard-coded 35:12:113 module-group ratio. */
    FixedRatio,
    /** Global split from amortized per-stage costs over the batch. */
    MeasuredCost,
};

/** Stable display name ("proportional", "fixed-ratio", "measured-cost"). */
const char *lanePolicyName(LanePolicy policy);

/** Scheduler policy knobs (mirrors the system-level ablations). */
struct SchedulerOptions
{
    /** Seed for the Merkle root re-check's staged-layer sampling. */
    uint64_t seed = 2024;
    /** Overlap host transfers with compute via multi-stream. */
    bool overlap_transfers = true;
    /** Dynamic loading (one task's data resident per region). */
    bool dynamic_loading = true;
    /** Lane-partition policy across module groups. */
    LanePolicy lane_policy = LanePolicy::Proportional;
};

/** Aggregate outcome of one scheduler run. */
struct SchedulerResult
{
    /** Device time when the last cycle's output finished, ms. */
    double total_ms = 0.0;
    /** Device time when the first task completed, ms. */
    double first_latency_ms = 0.0;
    /** Pipeline cycles stepped. */
    size_t cycles_run = 0;
    /** Admissions, including re-runs after failed re-checks. */
    size_t admitted = 0;
    /** Host-to-device bytes attributed to admissions. */
    uint64_t h2d_bytes_streamed = 0;
    /** Peak device allocation over the run. */
    uint64_t peak_device_bytes = 0;
    /** Lane-milliseconds of busy compute. */
    double busy_lane_ms = 0.0;
    /** busy_lane_ms over makespan times the lane budget. */
    double utilization = 0.0;

    /// @name Fault outcomes (all zero without an injector)
    /// @{

    /** Cycles run with part of the lane budget failed. */
    size_t degraded_cycles = 0;
    /** Mean lane fraction re-allocated per degraded cycle. */
    double relocated_lane_fraction = 0.0;
    /** Corrupted staged Merkle layers caught by the root re-check. */
    size_t corrupt_detected = 0;
    /** Tasks re-run after their staged layers failed the re-check. */
    size_t retried_tasks = 0;

    /// @}

    /** Per-task accounting, in admission order. */
    std::vector<TaskStats> tasks;
};

/** Cycle-stepping pipeline engine against a simulated device. */
class PipelineScheduler
{
  public:
    PipelineScheduler(gpusim::Device &dev, SchedulerOptions opt = {});

    /**
     * Attach observability sinks (either may be nullptr, the default).
     * @p metrics receives the per-cycle bzk_cycle_ms histogram plus
     * per-task queue-wait and turnaround histograms; @p trace receives
     * per-cycle spans on the encoder / Merkle / sum-check lane tracks
     * and fault/retry instants. Pure observers; neither is owned.
     */
    void
    setObservability(obs::MetricsRegistry *metrics,
                     obs::TraceRecorder *trace)
    {
        metrics_ = metrics;
        trace_ = trace;
    }

    /**
     * Step the pipeline until every task (and every re-run forced by a
     * failed re-check) has drained. Admission order is priority-first,
     * ties in submission order.
     */
    SchedulerResult run(std::vector<ProofTask> tasks);

  private:
    gpusim::Device &dev_;
    SchedulerOptions opt_;
    obs::MetricsRegistry *metrics_ = nullptr;
    obs::TraceRecorder *trace_ = nullptr;
};

} // namespace bzk::sched

#endif // BZK_SCHED_PIPELINESCHEDULER_H_
