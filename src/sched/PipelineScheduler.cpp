#include "sched/PipelineScheduler.h"

#include <algorithm>
#include <deque>
#include <string>

#include "gpusim/Device.h"
#include "gpusim/FaultInjector.h"
#include "merkle/GpuMerkle.h"
#include "merkle/MerkleTree.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sched/LaneAllocator.h"
#include "util/Rng.h"

namespace bzk::sched {

using gpusim::KernelDesc;
using gpusim::OpId;
using gpusim::StreamId;

namespace {

/**
 * Root re-check on a staged Merkle layer: commit to a small real tree,
 * stage its leaf layer to host bytes (as dynamic loading does), let the
 * injector flip bytes in the staged copy, rebuild the root from the
 * reloaded layer and compare with the committed root. Returns true when
 * the corruption is detected (roots differ) — with SHA-256 this is
 * every time any byte actually flipped.
 */
bool
merkleRecheckDetects(gpusim::FaultInjector &inj, uint64_t seed,
                     size_t cycle)
{
    Rng rng(seed ^ (0xc0de1abULL + cycle));
    auto blocks = randomBlocks(8, rng);
    MerkleTree committed = MerkleTree::build(blocks);

    const auto &leaves = committed.layers().front();
    std::vector<uint8_t> staged;
    staged.reserve(leaves.size() * 32);
    for (const auto &d : leaves)
        staged.insert(staged.end(), d.bytes.begin(), d.bytes.end());
    if (!inj.corruptLayer(staged))
        return false;

    std::vector<Digest> reloaded(leaves.size());
    for (size_t i = 0; i < leaves.size(); ++i)
        std::copy_n(staged.begin() + static_cast<ptrdiff_t>(32 * i), 32,
                    reloaded[i].bytes.begin());
    MerkleTree rebuilt = MerkleTree::buildFromLeaves(std::move(reloaded));
    return rebuilt.root() != committed.root();
}

/**
 * Tasks sharing one shape (identical cost signature) form a class; the
 * per-cycle kernel is assembled from the classes with tasks in flight.
 */
struct TaskClass
{
    double total_cycles = 0.0;
    size_t depth = 0;
    uint64_t h2d_bytes = 0;
    uint64_t d2h_bytes = 0;
    uint64_t device_bytes = 0;
    ProtocolKind kind = ProtocolKind::TableCommit;
    /** Static share of the lane budget per in-flight task. */
    double per_stage_lanes = 0.0;
    /** Cycle duration contribution, lane-cycles per lane. */
    double cycle_cycles = 0.0;
    /** Approximate global-memory traffic per cycle, bytes. */
    uint64_t traffic_bytes = 0;
    /** Tasks of this class currently in the pipeline. */
    size_t in_flight = 0;
};

/** One admitted task instance transiting the pipeline. */
struct InFlight
{
    size_t task = 0;
    size_t cls = 0;
    size_t end_cycle = 0;
};

} // namespace

const char *
lanePolicyName(LanePolicy policy)
{
    switch (policy) {
      case LanePolicy::Proportional:
        return "proportional";
      case LanePolicy::FixedRatio:
        return "fixed-ratio";
      case LanePolicy::MeasuredCost:
        return "measured-cost";
    }
    return "unknown";
}

PipelineScheduler::PipelineScheduler(gpusim::Device &dev,
                                     SchedulerOptions opt)
    : dev_(dev), opt_(opt)
{
}

SchedulerResult
PipelineScheduler::run(std::vector<ProofTask> tasks)
{
    SchedulerResult result;
    if (tasks.empty())
        return result;

    // Admission order: priority-first, ties keep submission order.
    std::stable_sort(tasks.begin(), tasks.end(),
                     [](const ProofTask &a, const ProofTask &b) {
                         return a.priority > b.priority;
                     });

    double cores = dev_.spec().cuda_cores;

    // Non-proportional policies share one global kind->lanes partition
    // across every class: either the paper's hard-coded ratio or a
    // split re-derived from the batch's amortized per-stage costs.
    StageKindCosts kind_lanes{};
    if (opt_.lane_policy != LanePolicy::Proportional) {
        LaneAllocator alloc(cores);
        kind_lanes = alloc.kindSplit(
            opt_.lane_policy == LanePolicy::FixedRatio
                ? LaneAllocator::paperRatioWeights()
                : LaneAllocator::measuredKindCosts(tasks));
    }

    // Group tasks into shape classes so the per-cycle kernel costs are
    // assembled per class rather than per instance (and so a uniform
    // batch collapses to the single-shape arithmetic).
    std::vector<TaskClass> classes;
    std::vector<size_t> task_class(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) {
        const StageGraph &g = tasks[i].graph;
        double total = g.totalCycles();
        size_t depth = g.totalDepth();
        uint64_t h2d = g.h2dBytes();
        uint64_t d2h = g.d2hBytes();
        uint64_t dev_bytes = g.deviceBytes();
        size_t cls = classes.size();
        for (size_t k = 0; k < classes.size(); ++k) {
            if (classes[k].total_cycles == total &&
                classes[k].depth == depth &&
                classes[k].h2d_bytes == h2d &&
                classes[k].d2h_bytes == d2h &&
                classes[k].device_bytes == dev_bytes &&
                classes[k].kind == tasks[i].kind) {
                cls = k;
                break;
            }
        }
        if (cls == classes.size()) {
            TaskClass tc;
            tc.total_cycles = total;
            tc.depth = depth;
            tc.h2d_bytes = h2d;
            tc.d2h_bytes = d2h;
            tc.device_bytes = dev_bytes;
            tc.kind = tasks[i].kind;
            tc.per_stage_lanes = cores / static_cast<double>(depth);
            // Under the proportional policy each class's own split makes
            // the cycle pace exactly total / lanes; under a global
            // partition the most-contended module group paces the class.
            if (opt_.lane_policy == LanePolicy::Proportional)
                tc.cycle_cycles = total / cores;
            else
                tc.cycle_cycles =
                    LaneAllocator::pacedCycleCycles(g, kind_lanes);
            tc.traffic_bytes = static_cast<uint64_t>(total / 40.0);
            classes.push_back(tc);
        }
        task_class[i] = cls;
    }

    dev_.resetTimeline();
    dev_.resetMemoryPeak();
    // Dynamic loading keeps one task's data per pipeline region — the
    // costliest in-flight shape bounds the residency. The preloading
    // ablation stages every task's inputs on the device up front.
    uint64_t resident = 0;
    uint64_t all_inputs = 0;
    uint64_t max_input = 0;
    for (size_t i = 0; i < tasks.size(); ++i) {
        const TaskClass &tc = classes[task_class[i]];
        all_inputs += tc.h2d_bytes;
        if (tc.device_bytes > resident) {
            resident = tc.device_bytes;
            max_input = tc.h2d_bytes;
        }
    }
    if (!opt_.dynamic_loading)
        resident += all_inputs - max_input;
    int64_t device_mem = dev_.alloc(resident);

    StreamId compute = dev_.createStream();
    StreamId h2d = opt_.overlap_transfers ? dev_.createStream() : compute;
    StreamId d2h = opt_.overlap_transfers ? dev_.createStream() : compute;

    // Per-task bookkeeping, in admission order.
    result.tasks.resize(tasks.size());
    std::vector<size_t> arrival_cycle(tasks.size(), 0);
    for (size_t i = 0; i < tasks.size(); ++i) {
        result.tasks[i].id = tasks[i].id;
        result.tasks[i].n_vars = tasks[i].n_vars;
        result.tasks[i].kind = tasks[i].kind;
        result.tasks[i].work_cycles = classes[task_class[i]].total_cycles;
    }

    std::deque<size_t> pending;
    for (size_t i = 0; i < tasks.size(); ++i)
        pending.push_back(i);
    std::vector<InFlight> flight;

    double first_end = 0.0;
    bool first_done = false;
    OpId prev_load = gpusim::kNoOp;
    if (!opt_.dynamic_loading) {
        // Preloading ablation: one bulk transfer before the pipeline.
        prev_load = dev_.copyH2D(h2d, all_inputs);
    }
    gpusim::FaultInjector *inj = dev_.faultInjector();
    double relocated_sum = 0.0;

    for (size_t c = 0; !pending.empty() || !flight.empty(); ++c) {
        double surv = 1.0;
        if (inj) {
            inj->beginCycle(c);
            double failed_frac = inj->failedLaneFraction();
            if (failed_frac > 0.0) {
                surv = LaneAllocator::survivorFraction(failed_frac);
                ++result.degraded_cycles;
                relocated_sum += 1.0 - surv;
            }
        }

        // Admit at most one task per cycle; its streamed input rides
        // the h2d stream under dynamic loading.
        OpId load = gpusim::kNoOp;
        bool admitted_now = false;
        size_t admitted_task = 0;
        if (!pending.empty()) {
            size_t ti = pending.front();
            pending.pop_front();
            const TaskClass &tc = classes[task_class[ti]];
            if (opt_.dynamic_loading)
                load = dev_.copyH2D(h2d, tc.h2d_bytes);
            ++classes[task_class[ti]].in_flight;
            flight.push_back({ti, task_class[ti], c + tc.depth - 1});
            TaskStats &ts = result.tasks[ti];
            if (ts.queue_wait_cycles == 0 && ts.retries == 0)
                ts.admit_cycle = c;
            ts.queue_wait_cycles += c - arrival_cycle[ti];
            result.h2d_bytes_streamed += tc.h2d_bytes;
            ++result.admitted;
            admitted_now = true;
            admitted_task = ti;
        }

        // One cycle kernel: every in-flight task holds its static
        // 1/depth share of the lanes; the costliest in-flight shape
        // paces the cycle.
        double active = 0.0;
        const TaskClass *pace = nullptr;
        for (const TaskClass &tc : classes) {
            if (tc.in_flight == 0)
                continue;
            active += tc.per_stage_lanes *
                      static_cast<double>(tc.in_flight);
            // Pace by the policy-derived cycle length; for the
            // proportional policy this is total / cores, so the
            // comparison is unchanged from the legacy total-cycles one.
            if (!pace || tc.cycle_cycles > pace->cycle_cycles)
                pace = &tc;
        }
        KernelDesc k;
        k.name = "system_cycle";
        // Graceful degradation: on a cycle with failed lanes, the
        // static proportional split is re-scaled onto the survivors —
        // the same work runs on fewer lanes over a longer cycle.
        k.lanes = cores * surv;
        k.profile.push_back({pace->cycle_cycles / surv, active * surv});
        k.mem_bytes = pace->traffic_bytes;
        OpId op = dev_.launchKernel(compute, k, prev_load);
        prev_load = load;
        ++result.cycles_run;

        if (metrics_ || trace_) {
            double t0 = dev_.opStart(op);
            double t1 = dev_.opEnd(op);
            int64_t cyc = static_cast<int64_t>(c);
            if (metrics_)
                metrics_
                    ->histogram(
                        "bzk_cycle_ms",
                        {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500},
                        "per-cycle wall time, ms")
                    .observe(t1 - t0);
            if (trace_) {
                // The three module groups co-run on partitioned lanes
                // for the whole cycle; each gets its own track so
                // Perfetto shows the static split and any degraded
                // stretching.
                std::string tag = "[c" + std::to_string(c) + "]";
                trace_->span("lane:encoder", "encoder" + tag, "encoder",
                             t0, t1, cyc);
                trace_->span("lane:merkle", "merkle" + tag, "merkle",
                             t0, t1, cyc);
                trace_->span("lane:sumcheck", "sumcheck" + tag,
                             "sumcheck", t0, t1, cyc);
                if (surv < 1.0)
                    trace_->instant("faults", "lane-failure" + tag,
                                    "fault", t0, cyc);
            }
        }

        // Root re-check on the staged Merkle layers of the task
        // admitted this cycle: detected corruption re-enqueues the task
        // rather than letting an invalid proof leave the pipeline.
        if (inj && admitted_now && inj->corruptionBytes() > 0 &&
            merkleRecheckDetects(*inj, opt_.seed, c)) {
            ++result.corrupt_detected;
            ++result.retried_tasks;
            ++result.tasks[admitted_task].retries;
            arrival_cycle[admitted_task] = c;
            pending.push_back(admitted_task);
            if (trace_)
                trace_->instant("faults",
                                "merkle-retry[c" + std::to_string(c) +
                                    "]",
                                "retry", dev_.opEnd(op),
                                static_cast<int64_t>(c));
        }

        // Completions: each finishing task's staged layers ride back
        // on the d2h stream behind this cycle's kernel.
        for (auto it = flight.begin(); it != flight.end();) {
            if (it->end_cycle != c) {
                ++it;
                continue;
            }
            dev_.copyD2H(d2h, classes[it->cls].d2h_bytes, op);
            --classes[it->cls].in_flight;
            TaskStats &ts = result.tasks[it->task];
            ts.complete_cycle = c;
            ts.complete_ms = dev_.opEnd(op);
            if (!first_done) {
                first_done = true;
                first_end = dev_.opEnd(op);
            }
            it = flight.erase(it);
        }
    }
    if (result.degraded_cycles > 0)
        result.relocated_lane_fraction =
            relocated_sum / static_cast<double>(result.degraded_cycles);

    result.total_ms = dev_.now();
    result.first_latency_ms = first_end;
    result.peak_device_bytes = dev_.peakMemory();
    result.busy_lane_ms = dev_.busyLaneMs();
    result.utilization =
        result.busy_lane_ms / (result.total_ms * dev_.spec().cuda_cores);

    if (metrics_) {
        auto &wait_hist = metrics_->histogram(
            "bzk_task_queue_wait_cycles",
            {0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000},
            "cycles a task queued before admission");
        auto &turnaround_hist = metrics_->histogram(
            "bzk_task_turnaround_ms",
            {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000},
            "submission-to-completion time per task, ms");
        for (const TaskStats &ts : result.tasks) {
            wait_hist.observe(static_cast<double>(ts.queue_wait_cycles));
            turnaround_hist.observe(ts.complete_ms);
            metrics_
                ->counter("bzk_sched_tasks_" +
                              std::string(protocolKindMetricName(
                                  ts.kind)) +
                              "_total",
                          "tasks scheduled, by protocol kind")
                .add(1.0);
            metrics_
                ->counter("bzk_sched_work_cycles_" +
                              std::string(protocolKindMetricName(
                                  ts.kind)) +
                              "_total",
                          "lane-cycles scheduled, by protocol kind")
                .add(ts.work_cycles);
        }
    }

    dev_.free(device_mem);
    return result;
}

} // namespace bzk::sched
