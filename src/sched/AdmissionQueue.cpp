#include "sched/AdmissionQueue.h"

#include <cmath>

namespace bzk::sched {

void
AdmissionQueue::enqueue(const PendingRequest &p)
{
    if (opt_.queue_capacity > 0 && queue_.size() >= opt_.queue_capacity) {
        ++shed_;
        return;
    }
    queue_.push_back(p);
}

void
AdmissionQueue::pullResubmits(double now_ms)
{
    while (!resubmits_.empty() && resubmits_.top().submitted <= now_ms) {
        enqueue(resubmits_.top());
        resubmits_.pop();
    }
}

std::optional<PendingRequest>
AdmissionQueue::admitOne(double now_ms)
{
    while (!queue_.empty()) {
        PendingRequest p = queue_.front();
        queue_.pop_front();
        if (opt_.timeout_ms > 0.0 &&
            now_ms - p.submitted > opt_.timeout_ms) {
            // Timed out waiting for admission; the slot stays free for
            // the next queued request.
            ++timed_out_;
            if (p.attempt < opt_.max_retries) {
                ++retried_;
                double backoff =
                    opt_.backoff_base_ms *
                    std::ldexp(1.0, static_cast<int>(p.attempt));
                resubmits_.push(
                    {now_ms + backoff, p.first_arrival, p.attempt + 1});
            } else {
                ++dropped_;
            }
            continue;
        }
        return p;
    }
    return std::nullopt;
}

} // namespace bzk::sched
