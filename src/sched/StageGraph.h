#ifndef BZK_SCHED_STAGEGRAPH_H_
#define BZK_SCHED_STAGEGRAPH_H_

/**
 * @file
 * The per-task dataflow the scheduler executes: an ordered chain of
 * module-group stages (linear-time encoder -> Merkle forest ->
 * Fiat-Shamir -> sum-check, the paper's Figure 7) with per-stage
 * lane-cycle costs, pipeline depths, and host-transfer byte budgets.
 *
 * A StageGraph is a pure cost description — it holds no device state —
 * so front-ends can build one per task shape and hand many tasks that
 * share a graph to the PipelineScheduler.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bzk::sched {

/** The module group a pipeline stage belongs to (paper Fig. 7). */
enum class StageKind
{
    Encoder,
    Merkle,
    FiatShamir,
    Sumcheck,
};

/** Number of stage kinds (for per-kind cost tables). */
constexpr size_t kNumStageKinds = 4;

/** Human-readable stage name (stable, used in traces and tables). */
const char *stageKindName(StageKind kind);

/**
 * One module group of the per-task pipeline. Costs are amortized per
 * task: @c lane_cycles is the total lane-cycle budget the module spends
 * on one task, @c depth the number of pipeline cycles a task occupies
 * inside the module (its sub-stage count).
 */
struct Stage
{
    StageKind kind = StageKind::Encoder;
    /** Lane-cycles this module spends per task. */
    double lane_cycles = 0.0;
    /** Pipeline sub-stages (cycles a task spends inside the module). */
    size_t depth = 0;
    /** Host-to-device bytes streamed into the module per task. */
    uint64_t h2d_bytes = 0;
    /** Device-to-host bytes streamed out of the module per task. */
    uint64_t d2h_bytes = 0;
    /** Host-staging buffer bytes held while a task transits the stage. */
    uint64_t staging_bytes = 0;
};

/**
 * Ordered stage chain for one proof task, plus the device residency the
 * task needs while any of its stages is live (dynamic loading keeps one
 * task's slice resident per pipeline region).
 */
class StageGraph
{
  public:
    void
    addStage(const Stage &stage)
    {
        stages_.push_back(stage);
    }

    const std::vector<Stage> &
    stages() const
    {
        return stages_;
    }

    /** First stage of @p kind, or nullptr when the graph has none. */
    const Stage *
    findStage(StageKind kind) const
    {
        for (const Stage &s : stages_)
            if (s.kind == kind)
                return &s;
        return nullptr;
    }

    /** Lane-cycles of the first stage of @p kind (0 when absent). */
    double
    cyclesOf(StageKind kind) const
    {
        const Stage *s = findStage(kind);
        return s ? s->lane_cycles : 0.0;
    }

    /** Total lane-cycles per task, summed in stage order. */
    double
    totalCycles() const
    {
        double total = 0.0;
        for (const Stage &s : stages_)
            total += s.lane_cycles;
        return total;
    }

    /** Total pipeline depth in cycles (sum of stage depths). */
    size_t
    totalDepth() const
    {
        size_t depth = 0;
        for (const Stage &s : stages_)
            depth += s.depth;
        return depth;
    }

    /** Host-to-device bytes streamed per task. */
    uint64_t
    h2dBytes() const
    {
        uint64_t bytes = 0;
        for (const Stage &s : stages_)
            bytes += s.h2d_bytes;
        return bytes;
    }

    /** Device-to-host bytes streamed per task. */
    uint64_t
    d2hBytes() const
    {
        uint64_t bytes = 0;
        for (const Stage &s : stages_)
            bytes += s.d2h_bytes;
        return bytes;
    }

    /** Host-staging bytes held while the task is in flight. */
    uint64_t
    stagingBytes() const
    {
        uint64_t bytes = 0;
        for (const Stage &s : stages_)
            bytes += s.staging_bytes;
        return bytes;
    }

    void
    setDeviceBytes(uint64_t bytes)
    {
        device_bytes_ = bytes;
    }

    /** Device bytes resident while the task occupies the pipeline. */
    uint64_t
    deviceBytes() const
    {
        return device_bytes_;
    }

  private:
    std::vector<Stage> stages_;
    uint64_t device_bytes_ = 0;
};

} // namespace bzk::sched

#endif // BZK_SCHED_STAGEGRAPH_H_
