#ifndef BZK_SCHED_PROOFTASK_H_
#define BZK_SCHED_PROOFTASK_H_

/**
 * @file
 * One schedulable proof task and the per-task accounting the scheduler
 * returns. Tasks in one PipelineScheduler::run() may have different
 * shapes (mixed n_vars, the heterogeneous-batch unlock); the scheduler
 * admits them priority-first, then in submission order.
 */

#include <cstddef>
#include <cstdint>

#include "sched/ProtocolKind.h"
#include "sched/StageGraph.h"

namespace bzk::sched {

/** One proof request: a task shape plus scheduling attributes. */
struct ProofTask
{
    /** Caller-assigned identity, echoed back in TaskStats. */
    uint64_t id = 0;
    /** Constraint-table log-size this task proves. */
    unsigned n_vars = 0;
    /** Higher priority is admitted first; ties keep submission order. */
    int priority = 0;
    /** Which proving protocol the task runs (per-kind stage graph). */
    ProtocolKind kind = ProtocolKind::TableCommit;
    /** The task's pipeline dataflow and cost model. */
    StageGraph graph;
};

/** Per-task outcome of a scheduler run, in admission order. */
struct TaskStats
{
    /** ProofTask::id of this task. */
    uint64_t id = 0;
    /** ProofTask::n_vars of this task. */
    unsigned n_vars = 0;
    /** ProofTask::kind of this task. */
    ProtocolKind kind = ProtocolKind::TableCommit;
    /** Lane-cycles of work the task's graph carries. */
    double work_cycles = 0.0;
    /** Cycle index at which the task first entered the pipeline. */
    size_t admit_cycle = 0;
    /** Cycle index at which the task (last) left the pipeline. */
    size_t complete_cycle = 0;
    /** Cycles spent queued before admission, summed over admissions. */
    size_t queue_wait_cycles = 0;
    /** Re-runs forced by a failed Merkle root re-check. */
    size_t retries = 0;
    /** Device time at which the task's final cycle ended, ms. */
    double complete_ms = 0.0;
};

} // namespace bzk::sched

#endif // BZK_SCHED_PROOFTASK_H_
