#ifndef BZK_SCHED_CYCLEMODEL_H_
#define BZK_SCHED_CYCLEMODEL_H_

/**
 * @file
 * Closed-form steady-state pacing of the pipeline on a given device:
 * one task is admitted per cycle, and the cycle is bounded by the
 * slower of its computation and its (optionally overlapped) input
 * transfer. This is the analytic counterpart of one PipelineScheduler
 * cycle, used by front-ends that need the admission interval without
 * stepping the device timeline (the streaming service, the multi-GPU
 * dispatcher's makespan predictions).
 */

#include <cstddef>

#include "sched/StageGraph.h"

namespace bzk::gpusim {
class Device;
class FaultInjector;
} // namespace bzk::gpusim

namespace bzk::sched {

/** Steady-state cycle timing for one task shape on one device. */
class CycleModel
{
  public:
    CycleModel(const StageGraph &graph, const gpusim::Device &dev,
               bool overlap_transfers);

    /** Healthy per-cycle compute time, ms (incl. launch overhead). */
    double
    compMs() const
    {
        return comp_ms_;
    }

    /** Healthy per-cycle input-transfer time, ms. */
    double
    commMs() const
    {
        return comm_ms_;
    }

    /** Healthy admission interval, ms. */
    double
    cycleMs() const
    {
        return cycle_ms_;
    }

    /** Pipeline depth in cycles (graph total depth). */
    size_t
    depth() const
    {
        return depth_;
    }

    /**
     * Duration of pipeline cycle @p cycle under @p inj's faults:
     * failed lanes stretch the compute onto the survivors, transfer
     * stalls stretch the streamed input. Calls @c inj->beginCycle().
     */
    double stepMs(gpusim::FaultInjector &inj, size_t cycle) const;

  private:
    double comp_ms_ = 0.0;
    double comm_ms_ = 0.0;
    double cycle_ms_ = 0.0;
    size_t depth_ = 0;
    bool overlap_ = true;
};

} // namespace bzk::sched

#endif // BZK_SCHED_CYCLEMODEL_H_
