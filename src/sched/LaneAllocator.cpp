#include "sched/LaneAllocator.h"

namespace bzk::sched {

const char *
stageKindName(StageKind kind)
{
    switch (kind) {
      case StageKind::Encoder:
        return "encoder";
      case StageKind::Merkle:
        return "merkle";
      case StageKind::FiatShamir:
        return "fiat-shamir";
      case StageKind::Sumcheck:
        return "sumcheck";
    }
    return "unknown";
}

std::vector<double>
LaneAllocator::proportionalSplit(const StageGraph &graph) const
{
    std::vector<double> split;
    split.reserve(graph.stages().size());
    double total = graph.totalCycles();
    for (const Stage &s : graph.stages()) {
        if (total > 0.0)
            split.push_back(lanes_ * s.lane_cycles / total);
        else
            split.push_back(0.0);
    }
    return split;
}

StageKindCosts
LaneAllocator::kindSplit(const StageKindCosts &weights) const
{
    StageKindCosts split{};
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        return split;
    for (size_t k = 0; k < kNumStageKinds; ++k)
        split[k] = lanes_ * weights[k] / total;
    return split;
}

StageKindCosts
LaneAllocator::paperRatioWeights()
{
    StageKindCosts weights{};
    weights[static_cast<size_t>(StageKind::Encoder)] = 35.0;
    weights[static_cast<size_t>(StageKind::Merkle)] = 12.0;
    weights[static_cast<size_t>(StageKind::FiatShamir)] = 0.0;
    weights[static_cast<size_t>(StageKind::Sumcheck)] = 113.0;
    return weights;
}

StageKindCosts
LaneAllocator::measuredKindCosts(std::span<const ProofTask> tasks)
{
    StageKindCosts costs{};
    for (const ProofTask &task : tasks)
        for (const Stage &s : task.graph.stages())
            costs[static_cast<size_t>(s.kind)] += s.lane_cycles;
    return costs;
}

double
LaneAllocator::pacedCycleCycles(const StageGraph &graph,
                                const StageKindCosts &kind_lanes)
{
    double cycle = 0.0;
    for (const Stage &s : graph.stages()) {
        if (s.lane_cycles <= 0.0)
            continue;
        double lanes = std::max(1.0, kind_lanes[static_cast<size_t>(s.kind)]);
        cycle = std::max(cycle, s.lane_cycles / lanes);
    }
    return cycle;
}

std::vector<double>
LaneAllocator::halvingSplit(size_t rounds) const
{
    std::vector<double> split(rounds, 0.0);
    if (rounds == 0)
        return split;
    // Weights 2^-(i) normalized: sum of 2^-i for i in [0, rounds) is
    // 2 - 2^(1-rounds), so the head stage gets just over half the
    // budget and each later stage half of its predecessor.
    double weight_sum = 0.0;
    double w = 1.0;
    for (size_t i = 0; i < rounds; ++i, w *= 0.5)
        weight_sum += w;
    w = 1.0;
    for (size_t i = 0; i < rounds; ++i, w *= 0.5)
        split[i] = lanes_ * w / weight_sum;
    return split;
}

} // namespace bzk::sched
