#ifndef BZK_SCHED_ADMISSIONQUEUE_H_
#define BZK_SCHED_ADMISSIONQUEUE_H_

/**
 * @file
 * The scheduler's admission queue with service guard rails, lifted out
 * of the streaming service: FIFO admission (one request per pipeline
 * cycle), optional admission timeout, client retry with exponential
 * backoff, and load shedding at a bounded queue. Every submitted
 * request terminates exactly one way — admitted, shed, or dropped
 * after exhausting its retries.
 */

#include <cstddef>
#include <deque>
#include <optional>
#include <queue>
#include <vector>

namespace bzk::sched {

/** Guard-rail configuration (zeros disable each mechanism). */
struct AdmissionOptions
{
    /**
     * A request still queued this long after submission abandons the
     * queue (counted in timedOut()). 0 disables.
     */
    double timeout_ms = 0.0;
    /** Re-submissions a timed-out request may make before dropping. */
    size_t max_retries = 0;
    /** Base back-off before the first re-submission; doubles after. */
    double backoff_base_ms = 0.0;
    /** Queue capacity; excess submissions are shed. 0 = unbounded. */
    size_t queue_capacity = 0;
};

/** One request waiting for (re-)admission. */
struct PendingRequest
{
    /** Time of this submission (original arrival or re-submission). */
    double submitted = 0.0;
    /** Original arrival time; sojourns are measured from here. */
    double first_arrival = 0.0;
    /** Re-submissions already made. */
    size_t attempt = 0;
};

/** FIFO admission queue with timeout / retry / shed guard rails. */
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(AdmissionOptions opt) : opt_(opt) {}

    /** Submit a fresh arrival at time @p arrival_ms. */
    void
    submit(double arrival_ms)
    {
        enqueue({arrival_ms, arrival_ms, 0});
    }

    /** Move re-submissions due by @p now_ms into the queue. */
    void pullResubmits(double now_ms);

    /**
     * Admit one request at time @p now_ms. Requests whose admission
     * timeout expired are timed out (and re-submitted with backoff or
     * dropped) until an admissible one is found; returns nullopt when
     * the queue drains without an admission.
     */
    std::optional<PendingRequest> admitOne(double now_ms);

    /** Requests currently queued (excluding pending re-submissions). */
    size_t
    depth() const
    {
        return queue_.size();
    }

    /// @name Terminal and guard-rail counters
    /// @{

    /** Submissions rejected at a full queue. */
    size_t
    shed() const
    {
        return shed_;
    }

    /** Timeout events (a request gave up waiting for admission). */
    size_t
    timedOut() const
    {
        return timed_out_;
    }

    /** Re-submissions made after timeouts. */
    size_t
    retried() const
    {
        return retried_;
    }

    /** Requests dropped after exhausting their retries. */
    size_t
    dropped() const
    {
        return dropped_;
    }

    /// @}

  private:
    struct LaterSubmission
    {
        bool
        operator()(const PendingRequest &a, const PendingRequest &b) const
        {
            if (a.submitted != b.submitted)
                return a.submitted > b.submitted;
            return a.first_arrival > b.first_arrival; // deterministic
        }
    };

    void enqueue(const PendingRequest &p);

    AdmissionOptions opt_;
    std::deque<PendingRequest> queue_;
    std::priority_queue<PendingRequest, std::vector<PendingRequest>,
                        LaterSubmission>
        resubmits_;
    size_t shed_ = 0;
    size_t timed_out_ = 0;
    size_t retried_ = 0;
    size_t dropped_ = 0;
};

} // namespace bzk::sched

#endif // BZK_SCHED_ADMISSIONQUEUE_H_
