#ifndef BZK_SCHED_PROTOCOLKIND_H_
#define BZK_SCHED_PROTOCOLKIND_H_

/**
 * @file
 * The protocol-kind abstraction: which proving protocol a task runs.
 *
 * Every layer that carries tasks — the scheduler, the durable journal,
 * the wire protocol, the CLI — tags them with a ProtocolKind so one
 * batch can mix protocols with different module cost ratios. The enum
 * values are wire/journal-stable: they are serialized as a single byte
 * in journal task records (body version 2) and in Submit messages
 * (wire version 2), so existing values must never be renumbered.
 */

#include <cstdint>
#include <optional>

namespace bzk::sched {

/** Which proving protocol a task runs. Byte-stable on wire and disk. */
enum class ProtocolKind : uint8_t {
    /**
     * The legacy BatchZK workload: Brakedown-style table commitment
     * plus the cubic constraint sum-check (paper Fig. 7).
     */
    TableCommit = 0,
    /**
     * HyperPlonk-style high-degree custom gate: the same tensor-PCS
     * commitments, but the constraint sum-check proves the degree-5
     * gate identity a^4*b - c = 0, giving degree-6 round polynomials
     * and a sum-check-dominated module cost mix.
     */
    HighDegreeGate = 1,
};

/** Number of protocol kinds (for per-kind tables). */
constexpr size_t kNumProtocolKinds = 2;

/** Stable display name ("table-commit", "high-degree-gate"). */
inline const char *
protocolKindName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::TableCommit:
        return "table-commit";
      case ProtocolKind::HighDegreeGate:
        return "high-degree-gate";
    }
    return "?";
}

/** Metric-safe name ("table_commit", "high_degree_gate"). */
inline const char *
protocolKindMetricName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::TableCommit:
        return "table_commit";
      case ProtocolKind::HighDegreeGate:
        return "high_degree_gate";
    }
    return "unknown";
}

/** Decode a wire/journal byte; nullopt for unknown kinds. */
inline std::optional<ProtocolKind>
protocolKindFromByte(uint8_t byte)
{
    switch (byte) {
      case static_cast<uint8_t>(ProtocolKind::TableCommit):
        return ProtocolKind::TableCommit;
      case static_cast<uint8_t>(ProtocolKind::HighDegreeGate):
        return ProtocolKind::HighDegreeGate;
      default:
        return std::nullopt;
    }
}

} // namespace bzk::sched

#endif // BZK_SCHED_PROTOCOLKIND_H_
