#include "sched/CycleModel.h"

#include <algorithm>

#include "gpusim/Calibration.h"
#include "gpusim/Device.h"
#include "gpusim/FaultInjector.h"
#include "sched/LaneAllocator.h"

namespace bzk::sched {

CycleModel::CycleModel(const StageGraph &graph, const gpusim::Device &dev,
                       bool overlap_transfers)
    : overlap_(overlap_transfers)
{
    double cores = dev.spec().cuda_cores;
    comp_ms_ = graph.totalCycles() / (cores * dev.spec().cyclesPerMs()) +
               gpusim::kKernelLaunchMs;
    comm_ms_ = dev.copyDurationMs(graph.h2dBytes());
    cycle_ms_ = overlap_ ? std::max(comp_ms_, comm_ms_)
                         : comp_ms_ + comm_ms_;
    depth_ = graph.totalDepth();
}

double
CycleModel::stepMs(gpusim::FaultInjector &inj, size_t cycle) const
{
    inj.beginCycle(cycle);
    double comp = comp_ms_;
    double failed = inj.failedLaneFraction();
    if (failed > 0.0)
        comp /= LaneAllocator::survivorFraction(failed);
    double comm = comm_ms_ * inj.transferStallMultiplier();
    return overlap_ ? std::max(comp, comm) : comp + comm;
}

} // namespace bzk::sched
