#ifndef BZK_SCHED_LANEALLOCATOR_H_
#define BZK_SCHED_LANEALLOCATOR_H_

/**
 * @file
 * Lane-allocation policies of the paper's Section 4, lifted out of the
 * pipelined system so every front-end shares one implementation:
 *
 *  - proportionalSplit(): the static "35 : 12 : 113"-style partition of
 *    the device's lanes across module groups, proportional to each
 *    stage's amortized lane-cycle cost;
 *  - halvingSplit(): the per-stage 2:1 geometric allocation used inside
 *    a module whose successive sub-stages halve their work (sum-check
 *    rounds, Merkle layers);
 *  - survivorFraction(): graceful-degradation re-allocation — the lane
 *    fraction left after failures, floored so the pipeline keeps
 *    draining (the same work re-scaled onto the survivors).
 */

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sched/StageGraph.h"

namespace bzk::sched {

/** Static lane-partition policies over a fixed lane budget. */
class LaneAllocator
{
  public:
    explicit LaneAllocator(double lanes) : lanes_(lanes) {}

    /**
     * Lanes per stage of @p graph, proportional to each stage's
     * lane-cycle cost. Stages with zero cost (Fiat-Shamir) get zero
     * lanes; the split sums to the lane budget.
     */
    std::vector<double> proportionalSplit(const StageGraph &graph) const;

    /**
     * 2:1 geometric split across @p rounds sub-stages: stage i gets
     * twice the lanes of stage i+1, normalized to sum to the budget.
     */
    std::vector<double> halvingSplit(size_t rounds) const;

    /** The lane budget this allocator partitions. */
    double
    lanes() const
    {
        return lanes_;
    }

    /**
     * Fraction of the lane budget still alive when @p failed_frac of
     * the lanes failed this cycle, floored at 5% so a heavily degraded
     * pipeline still drains instead of dividing by zero.
     */
    static double
    survivorFraction(double failed_frac)
    {
        return std::max(0.05, 1.0 - failed_frac);
    }

  private:
    double lanes_;
};

} // namespace bzk::sched

#endif // BZK_SCHED_LANEALLOCATOR_H_
