#ifndef BZK_SCHED_LANEALLOCATOR_H_
#define BZK_SCHED_LANEALLOCATOR_H_

/**
 * @file
 * Lane-allocation policies of the paper's Section 4, lifted out of the
 * pipelined system so every front-end shares one implementation:
 *
 *  - proportionalSplit(): the static "35 : 12 : 113"-style partition of
 *    the device's lanes across module groups, proportional to each
 *    stage's amortized lane-cycle cost;
 *  - halvingSplit(): the per-stage 2:1 geometric allocation used inside
 *    a module whose successive sub-stages halve their work (sum-check
 *    rounds, Merkle layers);
 *  - survivorFraction(): graceful-degradation re-allocation — the lane
 *    fraction left after failures, floored so the pipeline keeps
 *    draining (the same work re-scaled onto the survivors);
 *  - kindSplit() / measuredKindCosts() / paperRatioWeights(): global
 *    per-module-group partitions for heterogeneous-protocol batches,
 *    derived either from the paper's hard-coded 35:12:113 ratio or
 *    from amortized per-stage costs measured over the whole batch.
 */

#include <algorithm>
#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "sched/ProofTask.h"
#include "sched/StageGraph.h"

namespace bzk::sched {

/** Lane-cycles (or lane weight) per StageKind, indexed by kind. */
using StageKindCosts = std::array<double, kNumStageKinds>;

/** Static lane-partition policies over a fixed lane budget. */
class LaneAllocator
{
  public:
    explicit LaneAllocator(double lanes) : lanes_(lanes) {}

    /**
     * Lanes per stage of @p graph, proportional to each stage's
     * lane-cycle cost. Stages with zero cost (Fiat-Shamir) get zero
     * lanes; the split sums to the lane budget.
     */
    std::vector<double> proportionalSplit(const StageGraph &graph) const;

    /**
     * 2:1 geometric split across @p rounds sub-stages: stage i gets
     * twice the lanes of stage i+1, normalized to sum to the budget.
     */
    std::vector<double> halvingSplit(size_t rounds) const;

    /**
     * Lanes per StageKind, proportional to @p weights and summing to
     * the budget. Kinds with zero weight get zero lanes. This is the
     * global (whole-batch) analogue of proportionalSplit: one lane
     * partition shared by every task class in a heterogeneous batch.
     */
    StageKindCosts kindSplit(const StageKindCosts &weights) const;

    /**
     * The paper's hard-coded module-group ratio (Section 4.3):
     * encoder : Merkle : sum-check = 35 : 12 : 113, with zero weight
     * on the Fiat-Shamir group. Calibrated for the table-commitment
     * workload only — the foil the measured-cost policy is pinned
     * against.
     */
    static StageKindCosts paperRatioWeights();

    /**
     * Amortized per-StageKind lane-cycle costs summed over the whole
     * batch — the measured-cost policy's input. Feeding the result to
     * kindSplit() re-derives a near-optimal partition for whatever
     * protocol mix the batch actually carries.
     */
    static StageKindCosts measuredKindCosts(std::span<const ProofTask> tasks);

    /**
     * Steady-state cycle length of one task of @p graph under a global
     * kind->lanes partition: the most-contended costed stage paces the
     * pipeline, max over stages of lane_cycles / kind_lanes. Stages
     * whose kind received (almost) no lanes are priced as if one lane
     * serviced them, so a mis-calibrated fixed ratio degrades instead
     * of dividing by zero.
     */
    static double pacedCycleCycles(const StageGraph &graph,
                                   const StageKindCosts &kind_lanes);

    /** The lane budget this allocator partitions. */
    double
    lanes() const
    {
        return lanes_;
    }

    /**
     * Fraction of the lane budget still alive when @p failed_frac of
     * the lanes failed this cycle, floored at 5% so a heavily degraded
     * pipeline still drains instead of dividing by zero.
     */
    static double
    survivorFraction(double failed_frac)
    {
        return std::max(0.05, 1.0 - failed_frac);
    }

  private:
    double lanes_;
};

} // namespace bzk::sched

#endif // BZK_SCHED_LANEALLOCATOR_H_
