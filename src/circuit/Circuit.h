#ifndef BZK_CIRCUIT_CIRCUIT_H_
#define BZK_CIRCUIT_CIRCUIT_H_

/**
 * @file
 * Arithmetic circuits and their constraint tables.
 *
 * A circuit is a DAG of input/constant/add/mul gates. For proving, each
 * gate i contributes one constraint row  a_i * b_i = c_i:
 *
 *   mul gate : a = w[l],  b = w[r],   c = w[out]
 *   add gate : a = w[l] + w[r], b = 1, c = w[out]
 *   input    : a = value, b = 1,      c = w[out]
 *   const    : a = value, b = 1,      c = w[out]
 *
 * The three columns, padded to a power of two, become the multilinear
 * tables the SNARK core commits to and sum-checks over. The paper's
 * scale parameter S ("number of multiplication gates") maps to
 * numGates() here.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "util/Log.h"
#include "util/Rng.h"

namespace bzk {

/** Wire identifier within a circuit. */
using WireId = uint32_t;

/** Gate kinds, exposed for the R1CS builder. */
enum class CircuitGateKind { Input, Witness, Const, Add, Mul };

/** One gate's constraint-table rows. */
template <typename F>
struct ConstraintTables
{
    std::vector<F> a;
    std::vector<F> b;
    std::vector<F> c;
    /** log2 of the padded table size. */
    unsigned n_vars = 0;
};

/** A wire-value assignment produced by evaluate(). */
template <typename F>
struct Assignment
{
    std::vector<F> wires;
};

/** An arithmetic circuit over field F. */
template <typename F>
class Circuit
{
  public:
    /** Declare a public-input wire. */
    WireId
    addInput()
    {
        gates_.push_back({Op::Input, 0, 0, F::zero()});
        ++num_inputs_;
        return lastWire();
    }

    /** Declare a private witness wire. */
    WireId
    addWitness()
    {
        gates_.push_back({Op::Witness, 0, 0, F::zero()});
        ++num_witnesses_;
        return lastWire();
    }

    /** Declare a constant wire. */
    WireId
    addConst(const F &value)
    {
        gates_.push_back({Op::Const, 0, 0, value});
        return lastWire();
    }

    /** w_out = w_l * w_r. */
    WireId
    mul(WireId l, WireId r)
    {
        checkWire(l);
        checkWire(r);
        gates_.push_back({Op::Mul, l, r, F::zero()});
        ++num_mul_;
        return lastWire();
    }

    /** w_out = w_l + w_r. */
    WireId
    add(WireId l, WireId r)
    {
        checkWire(l);
        checkWire(r);
        gates_.push_back({Op::Add, l, r, F::zero()});
        return lastWire();
    }

    /** Total gates (= constraint rows before padding). */
    size_t numGates() const { return gates_.size(); }

    /** Multiplication gates — the paper's scale S. */
    size_t numMulGates() const { return num_mul_; }

    /** Declared public inputs. */
    size_t numInputs() const { return num_inputs_; }

    /** Declared witness wires. */
    size_t numWitnesses() const { return num_witnesses_; }

    /**
     * Evaluate all wires given public @p inputs and private @p witness
     * values (consumed in declaration order).
     */
    Assignment<F>
    evaluate(std::span<const F> inputs, std::span<const F> witness) const
    {
        if (inputs.size() != num_inputs_)
            panic("Circuit::evaluate: %zu inputs, expected %zu",
                  inputs.size(), num_inputs_);
        if (witness.size() != num_witnesses_)
            panic("Circuit::evaluate: %zu witnesses, expected %zu",
                  witness.size(), num_witnesses_);
        Assignment<F> out;
        out.wires.resize(gates_.size());
        size_t in_pos = 0;
        size_t wit_pos = 0;
        for (size_t i = 0; i < gates_.size(); ++i) {
            const Gate &g = gates_[i];
            switch (g.op) {
              case Op::Input:
                out.wires[i] = inputs[in_pos++];
                break;
              case Op::Witness:
                out.wires[i] = witness[wit_pos++];
                break;
              case Op::Const:
                out.wires[i] = g.value;
                break;
              case Op::Add:
                out.wires[i] = out.wires[g.l] + out.wires[g.r];
                break;
              case Op::Mul:
                out.wires[i] = out.wires[g.l] * out.wires[g.r];
                break;
            }
        }
        return out;
    }

    /**
     * Build the padded (a, b, c) constraint tables for an assignment.
     * Padding rows are (0, 0, 0), trivially satisfying a*b = c.
     */
    ConstraintTables<F>
    buildTables(const Assignment<F> &assignment) const
    {
        if (assignment.wires.size() != gates_.size())
            panic("Circuit::buildTables: assignment size mismatch");
        size_t padded = 1;
        unsigned n_vars = 0;
        while (padded < gates_.size()) {
            padded <<= 1;
            ++n_vars;
        }
        ConstraintTables<F> t;
        t.n_vars = n_vars;
        t.a.assign(padded, F::zero());
        t.b.assign(padded, F::zero());
        t.c.assign(padded, F::zero());
        for (size_t i = 0; i < gates_.size(); ++i) {
            const Gate &g = gates_[i];
            switch (g.op) {
              case Op::Input:
              case Op::Witness:
              case Op::Const:
                t.a[i] = assignment.wires[i];
                t.b[i] = F::one();
                t.c[i] = assignment.wires[i];
                break;
              case Op::Add:
                t.a[i] = assignment.wires[g.l] + assignment.wires[g.r];
                t.b[i] = F::one();
                t.c[i] = assignment.wires[i];
                break;
              case Op::Mul:
                t.a[i] = assignment.wires[g.l];
                t.b[i] = assignment.wires[g.r];
                t.c[i] = assignment.wires[i];
                break;
            }
        }
        return t;
    }

    /** Check a*b == c on every row of an assignment's tables. */
    bool
    checkSatisfied(const Assignment<F> &assignment) const
    {
        auto t = buildTables(assignment);
        for (size_t i = 0; i < t.a.size(); ++i)
            if (t.a[i] * t.b[i] != t.c[i])
                return false;
        return true;
    }

    /** Kind of gate @p i (for the R1CS builder). */
    CircuitGateKind
    gateKind(WireId i) const
    {
        checkWire(i);
        switch (gates_[i].op) {
          case Op::Input: return CircuitGateKind::Input;
          case Op::Witness: return CircuitGateKind::Witness;
          case Op::Const: return CircuitGateKind::Const;
          case Op::Add: return CircuitGateKind::Add;
          default: return CircuitGateKind::Mul;
        }
    }

    /** Left operand wire of gate @p i (Add/Mul only). */
    WireId
    gateLeft(WireId i) const
    {
        checkWire(i);
        return gates_[i].l;
    }

    /** Right operand wire of gate @p i (Add/Mul only). */
    WireId
    gateRight(WireId i) const
    {
        checkWire(i);
        return gates_[i].r;
    }

    /** Constant value of gate @p i (Const only). */
    const F &
    gateConst(WireId i) const
    {
        checkWire(i);
        return gates_[i].value;
    }

    /**
     * Position of input gate @p i among the declared inputs (0-based);
     * panics when gate i is not an input gate.
     */
    size_t
    gateInputIndex(WireId i) const
    {
        checkWire(i);
        if (gates_[i].op != Op::Input)
            panic("gateInputIndex: gate %u is not an input", i);
        size_t idx = 0;
        for (WireId g = 0; g < i; ++g)
            if (gates_[g].op == Op::Input)
                ++idx;
        return idx;
    }

    /** The output wire (last gate), by convention. */
    WireId
    outputWire() const
    {
        if (gates_.empty())
            panic("Circuit::outputWire: empty circuit");
        return static_cast<WireId>(gates_.size() - 1);
    }

  private:
    enum class Op { Input, Witness, Const, Add, Mul };

    struct Gate
    {
        Op op;
        WireId l;
        WireId r;
        F value;
    };

    WireId
    lastWire() const
    {
        return static_cast<WireId>(gates_.size() - 1);
    }

    void
    checkWire(WireId w) const
    {
        if (w >= gates_.size())
            panic("Circuit: wire %u does not exist yet", w);
    }

    std::vector<Gate> gates_;
    size_t num_inputs_ = 0;
    size_t num_witnesses_ = 0;
    size_t num_mul_ = 0;
};

/**
 * Generate a random layered circuit with approximately @p target_gates
 * gates (roughly half mul), plus matching witness values. Used by the
 * benches as the paper's "circuit with S multiplication gates".
 */
template <typename F>
Circuit<F>
randomCircuit(size_t target_gates, size_t num_witness, Rng &rng)
{
    Circuit<F> c;
    std::vector<WireId> pool;
    pool.push_back(c.addConst(F::one()));
    for (size_t i = 0; i < num_witness; ++i)
        pool.push_back(c.addWitness());
    while (c.numGates() < target_gates) {
        WireId l = pool[rng.nextBounded(pool.size())];
        WireId r = pool[rng.nextBounded(pool.size())];
        WireId out = (rng.next() & 1) ? c.mul(l, r) : c.add(l, r);
        pool.push_back(out);
        if (pool.size() > 256)
            pool.erase(pool.begin() + 1); // keep the pool bounded
    }
    return c;
}

} // namespace bzk

#endif // BZK_CIRCUIT_CIRCUIT_H_
