#ifndef BZK_CIRCUIT_R1CS_H_
#define BZK_CIRCUIT_R1CS_H_

/**
 * @file
 * Sparse R1CS view of a circuit, Spartan-style.
 *
 * The extended witness z has 2^col_vars slots split by the top index
 * bit:
 *
 *   public half (top bit 0): slot 0 holds the constant 1, slots
 *     1..n_in hold the public inputs, rest zero — the verifier can
 *     evaluate this half's MLE itself;
 *   private half (top bit 1): slot half+i holds wire i's value — this
 *     half is what the prover commits to.
 *
 * An assignment satisfies the circuit iff (Az) o (Bz) = Cz row-wise,
 * with one row per gate:
 *
 *   input (k-th)  : A = {pub 1+k},          B = {pub 0}, C = {priv i}
 *   witness       : A = {priv i},           B = {pub 0}, C = {priv i}
 *   const v       : A = {(pub 0, coeff v)}, B = {pub 0}, C = {priv i}
 *   add           : A = {priv l, priv r},   B = {pub 0}, C = {priv i}
 *   mul           : A = {priv l},           B = {priv r}, C = {priv i}
 *
 * Because the *wiring* lives in the matrices, a SNARK that proves
 * (Az) o (Bz) = Cz against a committed private half proves full
 * circuit satisfiability, including that public inputs and constants
 * are what the verifier thinks they are — closing the gap of the
 * table-commitment Snark (DESIGN.md Sec. 6).
 */

#include <cstdint>
#include <vector>

#include "circuit/Circuit.h"
#include "poly/Multilinear.h"
#include "util/Log.h"

namespace bzk {

/** One non-zero entry of a sparse R1CS matrix. */
template <typename F>
struct R1csEntry
{
    /** Constraint row (gate index). */
    uint32_t row = 0;
    /** Column into z (see file comment for the layout). */
    uint32_t col = 0;
    /** Coefficient (one except for constant gates). */
    F coeff = F::one();
};

/** Sparse R1CS instance for one circuit. */
template <typename F>
struct R1cs
{
    /** log2 of the padded number of constraint rows. */
    unsigned row_vars = 0;
    /** log2 of the padded length of z (>= 1 + private-half vars). */
    unsigned col_vars = 0;
    /** Number of declared public inputs. */
    size_t num_inputs = 0;
    std::vector<R1csEntry<F>> a;
    std::vector<R1csEntry<F>> b;
    std::vector<R1csEntry<F>> c;

    size_t numRows() const { return size_t{1} << row_vars; }
    size_t numCols() const { return size_t{1} << col_vars; }
    size_t half() const { return numCols() / 2; }

    /** The public half of z for given input values. */
    std::vector<F>
    publicHalf(std::span<const F> inputs) const
    {
        if (inputs.size() != num_inputs)
            panic("R1cs::publicHalf: %zu inputs, expected %zu",
                  inputs.size(), num_inputs);
        std::vector<F> pub(half(), F::zero());
        pub[0] = F::one();
        for (size_t k = 0; k < inputs.size(); ++k)
            pub[1 + k] = inputs[k];
        return pub;
    }

    /** The private half: wire values, zero padded. */
    std::vector<F>
    privateHalf(const Assignment<F> &assignment) const
    {
        if (assignment.wires.size() > half())
            panic("R1cs::privateHalf: %zu wires exceed half size %zu",
                  assignment.wires.size(), half());
        std::vector<F> priv(half(), F::zero());
        for (size_t i = 0; i < assignment.wires.size(); ++i)
            priv[i] = assignment.wires[i];
        return priv;
    }

    /** Full z = [public | private]. */
    std::vector<F>
    extendWitness(std::span<const F> inputs,
                  const Assignment<F> &assignment) const
    {
        std::vector<F> z = publicHalf(inputs);
        auto priv = privateHalf(assignment);
        z.insert(z.end(), priv.begin(), priv.end());
        return z;
    }

    /** Dense M*z for one of the three matrices. */
    std::vector<F>
    apply(const std::vector<R1csEntry<F>> &m,
          const std::vector<F> &z) const
    {
        std::vector<F> out(numRows(), F::zero());
        for (const auto &e : m)
            out[e.row] += e.coeff * z[e.col];
        return out;
    }

    /** Row-wise (Az) o (Bz) == Cz check. */
    bool
    isSatisfied(const std::vector<F> &z) const
    {
        auto az = apply(a, z);
        auto bz = apply(b, z);
        auto cz = apply(c, z);
        for (size_t i = 0; i < numRows(); ++i)
            if (az[i] * bz[i] != cz[i])
                return false;
        return true;
    }

    /**
     * Evaluate the multilinear extension M~(rx, ry) of a matrix in
     * O(nnz + rows + cols): sum of coeff * eq(rx, row) * eq(ry, col).
     * Linear-time verifier preprocessing, amortized per circuit.
     */
    F
    evalMatrixMle(const std::vector<R1csEntry<F>> &m,
                  const std::vector<F> &rx,
                  const std::vector<F> &ry) const
    {
        if (rx.size() != row_vars || ry.size() != col_vars)
            panic("evalMatrixMle: point dims (%zu, %zu) vs (%u, %u)",
                  rx.size(), ry.size(), row_vars, col_vars);
        auto eq_row = eqTable(rx);
        auto eq_col = eqTable(ry);
        F acc = F::zero();
        for (const auto &e : m)
            acc += e.coeff * eq_row[e.row] * eq_col[e.col];
        return acc;
    }

    /**
     * MLE of the public half at the column point's tail, i.e.
     * pub~(ry[1:]): O(num_inputs * col_vars) for the verifier.
     */
    F
    evalPublicMle(std::span<const F> inputs,
                  const std::vector<F> &ry_tail) const
    {
        // eq(ry_tail, index) for index 0 and 1..num_inputs, where
        // ry_tail has col_vars-1 coordinates, top-first bit order.
        unsigned bits = col_vars - 1;
        auto eq_at = [&](size_t index) {
            F acc = F::one();
            for (unsigned v = 0; v < bits; ++v) {
                int bit = static_cast<int>(
                    (index >> (bits - 1 - v)) & 1);
                acc *= bit ? ry_tail[v] : F::one() - ry_tail[v];
            }
            return acc;
        };
        F acc = eq_at(0); // the constant-1 slot
        for (size_t k = 0; k < inputs.size(); ++k)
            acc += inputs[k] * eq_at(1 + k);
        return acc;
    }
};

/** Build the sparse R1CS of a circuit (see file comment for rows). */
template <typename F>
R1cs<F>
buildR1cs(const Circuit<F> &circuit)
{
    R1cs<F> r;
    r.num_inputs = circuit.numInputs();
    size_t rows = circuit.numGates();
    r.row_vars = 0;
    while ((size_t{1} << r.row_vars) < rows)
        ++r.row_vars;
    // Half of z must fit all wires, and the public half all inputs + 1.
    size_t half_needed =
        std::max(circuit.numGates(), circuit.numInputs() + 1);
    unsigned half_vars = 0;
    while ((size_t{1} << half_vars) < half_needed)
        ++half_vars;
    r.col_vars = half_vars + 1;

    uint32_t half = static_cast<uint32_t>(size_t{1} << half_vars);
    auto priv = [half](WireId w) { return half + w; };

    size_t input_idx = 0;
    for (uint32_t i = 0; i < rows; ++i) {
        switch (circuit.gateKind(i)) {
          case CircuitGateKind::Input:
            r.a.push_back({i, static_cast<uint32_t>(1 + input_idx++),
                           F::one()});
            r.b.push_back({i, 0, F::one()});
            r.c.push_back({i, priv(i), F::one()});
            break;
          case CircuitGateKind::Witness:
            r.a.push_back({i, priv(i), F::one()});
            r.b.push_back({i, 0, F::one()});
            r.c.push_back({i, priv(i), F::one()});
            break;
          case CircuitGateKind::Const:
            r.a.push_back({i, 0, circuit.gateConst(i)});
            r.b.push_back({i, 0, F::one()});
            r.c.push_back({i, priv(i), F::one()});
            break;
          case CircuitGateKind::Add:
            r.a.push_back({i, priv(circuit.gateLeft(i)), F::one()});
            r.a.push_back({i, priv(circuit.gateRight(i)), F::one()});
            r.b.push_back({i, 0, F::one()});
            r.c.push_back({i, priv(i), F::one()});
            break;
          case CircuitGateKind::Mul:
            r.a.push_back({i, priv(circuit.gateLeft(i)), F::one()});
            r.b.push_back({i, priv(circuit.gateRight(i)), F::one()});
            r.c.push_back({i, priv(i), F::one()});
            break;
        }
    }
    return r;
}

} // namespace bzk

#endif // BZK_CIRCUIT_R1CS_H_
