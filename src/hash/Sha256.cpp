#include "hash/Sha256.h"

#include <cstring>

#include "util/Hex.h"

namespace bzk {

namespace {

constexpr uint32_t kInit[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
};

constexpr uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t
rotr(uint32_t x, int n)
{
    return (x >> n) | (x << (32 - n));
}

static_assert(sizeof(Digest) == 32,
              "hashPairs reads adjacent digests as one 64-byte block");

/**
 * N independent compressions with interleaved message schedules: every
 * per-round value is an N-lane array with the lane index innermost, so
 * the rotate/add/select chains vectorize across the independent blocks
 * instead of serializing on one block's dependency chain.
 */
template <int N>
void
compressNBlocks(const uint8_t *blocks, Digest *out)
{
    uint32_t w[64][N];
    for (int i = 0; i < 16; ++i) {
        for (int lane = 0; lane < N; ++lane) {
            const uint8_t *b = blocks + 64 * lane + 4 * i;
            w[i][lane] = (static_cast<uint32_t>(b[0]) << 24) |
                         (static_cast<uint32_t>(b[1]) << 16) |
                         (static_cast<uint32_t>(b[2]) << 8) |
                         static_cast<uint32_t>(b[3]);
        }
    }
    for (int i = 16; i < 64; ++i) {
        for (int lane = 0; lane < N; ++lane) {
            uint32_t x = w[i - 15][lane];
            uint32_t y = w[i - 2][lane];
            uint32_t s0 = rotr(x, 7) ^ rotr(x, 18) ^ (x >> 3);
            uint32_t s1 = rotr(y, 17) ^ rotr(y, 19) ^ (y >> 10);
            w[i][lane] = w[i - 16][lane] + s0 + w[i - 7][lane] + s1;
        }
    }

    uint32_t v[8][N];
    for (int i = 0; i < 8; ++i)
        for (int lane = 0; lane < N; ++lane)
            v[i][lane] = kInit[i];
    for (int i = 0; i < 64; ++i) {
        for (int lane = 0; lane < N; ++lane) {
            uint32_t e = v[4][lane];
            uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
            uint32_t ch = (e & v[5][lane]) ^ (~e & v[6][lane]);
            uint32_t t1 =
                v[7][lane] + s1 + ch + kRound[i] + w[i][lane];
            uint32_t a = v[0][lane];
            uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
            uint32_t maj = (a & v[1][lane]) ^ (a & v[2][lane]) ^
                           (v[1][lane] & v[2][lane]);
            uint32_t t2 = s0 + maj;
            v[7][lane] = v[6][lane];
            v[6][lane] = v[5][lane];
            v[5][lane] = v[4][lane];
            v[4][lane] = v[3][lane] + t1;
            v[3][lane] = v[2][lane];
            v[2][lane] = v[1][lane];
            v[1][lane] = v[0][lane];
            v[0][lane] = t1 + t2;
        }
    }
    for (int lane = 0; lane < N; ++lane) {
        for (int i = 0; i < 8; ++i) {
            uint32_t s = kInit[i] + v[i][lane];
            for (int j = 0; j < 4; ++j)
                out[lane].bytes[i * 4 + j] =
                    static_cast<uint8_t>(s >> (24 - 8 * j));
        }
    }
}

} // namespace

std::string
Digest::toHex() const
{
    return bzk::toHex(bytes);
}

void
Sha256::reset()
{
    std::memcpy(state_, kInit, sizeof(state_));
    buffered_ = 0;
    total_bytes_ = 0;
}

void
Sha256::update(std::span<const uint8_t> data)
{
    total_bytes_ += data.size();
    size_t offset = 0;
    if (buffered_ > 0) {
        size_t take = std::min(data.size(), 64 - buffered_);
        std::memcpy(buffer_ + buffered_, data.data(), take);
        buffered_ += take;
        offset = take;
        if (buffered_ == 64) {
            compress(state_, buffer_);
            buffered_ = 0;
        }
    }
    while (offset + 64 <= data.size()) {
        compress(state_, data.data() + offset);
        offset += 64;
    }
    if (offset < data.size()) {
        std::memcpy(buffer_, data.data() + offset, data.size() - offset);
        buffered_ = data.size() - offset;
    }
}

Digest
Sha256::finalize()
{
    uint64_t bit_len = total_bytes_ * 8;
    uint8_t pad[72] = {0x80};
    // Pad to 56 mod 64, then append the 64-bit big-endian length.
    size_t pad_len = (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
    uint8_t len_be[8];
    for (int i = 0; i < 8; ++i)
        len_be[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
    std::memcpy(pad + pad_len, len_be, 8);
    update(std::span<const uint8_t>(pad, pad_len + 8));

    Digest out;
    for (int i = 0; i < 8; ++i)
        for (int j = 0; j < 4; ++j)
            out.bytes[i * 4 + j] =
                static_cast<uint8_t>(state_[i] >> (24 - 8 * j));
    reset();
    return out;
}

Digest
Sha256::digest(std::span<const uint8_t> data)
{
    Sha256 h;
    h.update(data);
    return h.finalize();
}

Digest
Sha256::compressBlock(std::span<const uint8_t, 64> block)
{
    uint32_t state[8];
    std::memcpy(state, kInit, sizeof(state));
    compress(state, block.data());
    Digest out;
    for (int i = 0; i < 8; ++i)
        for (int j = 0; j < 4; ++j)
            out.bytes[i * 4 + j] =
                static_cast<uint8_t>(state[i] >> (24 - 8 * j));
    return out;
}

Digest
Sha256::hashPair(const Digest &left, const Digest &right)
{
    uint8_t block[64];
    std::memcpy(block, left.bytes.data(), 32);
    std::memcpy(block + 32, right.bytes.data(), 32);
    return compressBlock(std::span<const uint8_t, 64>(block, 64));
}

void
Sha256::compressBlocks4(const uint8_t *blocks, Digest *out)
{
    compressNBlocks<4>(blocks, out);
}

void
Sha256::compressBlocks8(const uint8_t *blocks, Digest *out)
{
    compressNBlocks<8>(blocks, out);
}

void
Sha256::hashPairs(const Digest *children, size_t n_pairs, Digest *out)
{
    const uint8_t *blocks = reinterpret_cast<const uint8_t *>(children);
    size_t i = 0;
    for (; i + 8 <= n_pairs; i += 8)
        compressBlocks8(blocks + 64 * i, out + i);
    if (i + 4 <= n_pairs) {
        compressBlocks4(blocks + 64 * i, out + i);
        i += 4;
    }
    for (; i < n_pairs; ++i)
        out[i] = compressBlock(
            std::span<const uint8_t, 64>(blocks + 64 * i, 64));
}

void
Sha256::compress(uint32_t state[8], const uint8_t block[64])
{
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
               (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
               (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
               static_cast<uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
        uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                      (w[i - 15] >> 3);
        uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                      (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
        uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        uint32_t ch = (e & f) ^ (~e & g);
        uint32_t t1 = h + s1 + ch + kRound[i] + w[i];
        uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

} // namespace bzk
