#ifndef BZK_HASH_TRANSCRIPT_H_
#define BZK_HASH_TRANSCRIPT_H_

/**
 * @file
 * Fiat-Shamir transcript.
 *
 * The prover and verifier absorb the same public messages (Merkle roots,
 * sum-check round polynomials) and squeeze identical pseudo-random
 * challenges, making the interactive protocols of the paper
 * non-interactive. Challenges are derived by hash-chaining SHA-256, i.e.
 * the "pseudorandom generators using the final Merkle root as a seed" of
 * the paper's Section 4.
 */

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "hash/Sha256.h"

namespace bzk {

/** Deterministic hash-chained Fiat-Shamir transcript. */
class Transcript
{
  public:
    /** Domain-separate the transcript with a protocol label. */
    explicit Transcript(std::string_view domain);

    /** Absorb a labelled byte message. */
    void absorb(std::string_view label, std::span<const uint8_t> data);

    /** Absorb a digest (e.g. a Merkle root). */
    void absorbDigest(std::string_view label, const Digest &digest);

    /** Absorb a field element's canonical bytes. */
    template <typename F>
    void
    absorbField(std::string_view label, const F &value)
    {
        uint8_t buf[F::kNumBytes];
        value.toBytes(buf);
        absorb(label, std::span<const uint8_t>(buf, F::kNumBytes));
    }

    /** Squeeze 32 challenge bytes. */
    Digest challengeDigest(std::string_view label);

    /** Squeeze a field challenge. */
    template <typename F>
    F
    challengeField(std::string_view label)
    {
        Digest d = challengeDigest(label);
        return F::fromBytesReduce(d.bytes.data(), d.bytes.size());
    }

    /** Squeeze an index uniform in [0, bound). */
    uint64_t challengeIndex(std::string_view label, uint64_t bound);

    /** Squeeze @p count distinct indices in [0, bound). */
    std::vector<uint64_t> challengeDistinctIndices(std::string_view label,
                                                   size_t count,
                                                   uint64_t bound);

  private:
    void chain(std::span<const uint8_t> data);

    Digest state_;
    uint64_t counter_ = 0;
};

} // namespace bzk

#endif // BZK_HASH_TRANSCRIPT_H_
