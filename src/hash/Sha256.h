#ifndef BZK_HASH_SHA256_H_
#define BZK_HASH_SHA256_H_

/**
 * @file
 * SHA-256 implemented from scratch (FIPS 180-4).
 *
 * Exposes both the full padded digest and the raw 512-bit -> 256-bit
 * block compression. The Merkle-tree modules use the raw compression —
 * exactly the "hash a 512-bit block into a 256-bit value" primitive of the
 * paper's Figure 2 — so the cost model can charge precisely one compression
 * per tree node.
 */

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace bzk {

/** A 256-bit digest. */
struct Digest
{
    std::array<uint8_t, 32> bytes{};

    bool operator==(const Digest &o) const { return bytes == o.bytes; }
    bool operator!=(const Digest &o) const { return !(*this == o); }

    /** Lowercase hex rendering. */
    std::string toHex() const;
};

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Reset to the initial state. */
    void reset();

    /** Absorb @p data. */
    void update(std::span<const uint8_t> data);

    /** Finish padding and produce the digest. Hasher must be reset after. */
    Digest finalize();

    /** One-shot digest of @p data. */
    static Digest digest(std::span<const uint8_t> data);

    /**
     * Raw compression of one 512-bit block with the standard IV.
     * This is the Merkle node hash: two 256-bit children in, one 256-bit
     * parent out, exactly one compression of work.
     */
    static Digest compressBlock(std::span<const uint8_t, 64> block);

    /** compressBlock over the concatenation of two digests. */
    static Digest hashPair(const Digest &left, const Digest &right);

  private:
    static void compress(uint32_t state[8], const uint8_t block[64]);

    uint32_t state_[8];
    uint8_t buffer_[64];
    size_t buffered_;
    uint64_t total_bytes_;
};

} // namespace bzk

#endif // BZK_HASH_SHA256_H_
