#ifndef BZK_HASH_SHA256_H_
#define BZK_HASH_SHA256_H_

/**
 * @file
 * SHA-256 implemented from scratch (FIPS 180-4).
 *
 * Exposes both the full padded digest and the raw 512-bit -> 256-bit
 * block compression. The Merkle-tree modules use the raw compression —
 * exactly the "hash a 512-bit block into a 256-bit value" primitive of the
 * paper's Figure 2 — so the cost model can charge precisely one compression
 * per tree node.
 */

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace bzk {

/** A 256-bit digest. */
struct Digest
{
    std::array<uint8_t, 32> bytes{};

    bool operator==(const Digest &o) const { return bytes == o.bytes; }
    bool operator!=(const Digest &o) const { return !(*this == o); }

    /** Lowercase hex rendering. */
    std::string toHex() const;
};

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Reset to the initial state. */
    void reset();

    /** Absorb @p data. */
    void update(std::span<const uint8_t> data);

    /** Finish padding and produce the digest. Hasher must be reset after. */
    Digest finalize();

    /** One-shot digest of @p data. */
    static Digest digest(std::span<const uint8_t> data);

    /**
     * Raw compression of one 512-bit block with the standard IV.
     * This is the Merkle node hash: two 256-bit children in, one 256-bit
     * parent out, exactly one compression of work.
     */
    static Digest compressBlock(std::span<const uint8_t, 64> block);

    /** compressBlock over the concatenation of two digests. */
    static Digest hashPair(const Digest &left, const Digest &right);

    /**
     * Compress 4 independent 512-bit blocks with interleaved message
     * schedules — the scalar analogue of the paper's one-thread-per-
     * node Merkle kernel, laid out so the compiler can vectorize
     * across the lanes. Bit-identical to 4 compressBlock calls.
     * @p blocks holds 4 consecutive 64-byte blocks.
     */
    static void compressBlocks4(const uint8_t *blocks, Digest *out);

    /** compressBlocks4, 8 lanes wide. */
    static void compressBlocks8(const uint8_t *blocks, Digest *out);

    /**
     * Hash @p n_pairs sibling pairs: out[i] = hashPair(children[2i],
     * children[2i+1]). Adjacent digests are read in place as one
     * 64-byte block (no per-node staging copies) and compressed with
     * the widest multi-way kernel that fits — the Merkle layer hot
     * loop. @p out may not alias @p children.
     */
    static void hashPairs(const Digest *children, size_t n_pairs,
                          Digest *out);

  private:
    static void compress(uint32_t state[8], const uint8_t block[64]);

    uint32_t state_[8];
    uint8_t buffer_[64];
    size_t buffered_;
    uint64_t total_bytes_;
};

} // namespace bzk

#endif // BZK_HASH_SHA256_H_
