#include "hash/Transcript.h"

#include <algorithm>
#include <cstring>

#include "util/Log.h"

namespace bzk {

Transcript::Transcript(std::string_view domain)
{
    state_ = Sha256::digest(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(domain.data()), domain.size()));
}

void
Transcript::chain(std::span<const uint8_t> data)
{
    Sha256 h;
    h.update(state_.bytes);
    h.update(data);
    state_ = h.finalize();
}

void
Transcript::absorb(std::string_view label, std::span<const uint8_t> data)
{
    Sha256 h;
    h.update(state_.bytes);
    h.update(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(label.data()), label.size()));
    h.update(data);
    state_ = h.finalize();
}

void
Transcript::absorbDigest(std::string_view label, const Digest &digest)
{
    absorb(label, digest.bytes);
}

Digest
Transcript::challengeDigest(std::string_view label)
{
    Sha256 h;
    h.update(state_.bytes);
    h.update(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(label.data()), label.size()));
    uint8_t ctr[8];
    for (int i = 0; i < 8; ++i)
        ctr[i] = static_cast<uint8_t>(counter_ >> (8 * i));
    ++counter_;
    h.update(std::span<const uint8_t>(ctr, 8));
    Digest out = h.finalize();
    // Ratchet the state so later absorbs depend on issued challenges.
    chain(out.bytes);
    return out;
}

uint64_t
Transcript::challengeIndex(std::string_view label, uint64_t bound)
{
    if (bound == 0)
        panic("challengeIndex: zero bound");
    Digest d = challengeDigest(label);
    uint64_t v;
    std::memcpy(&v, d.bytes.data(), 8);
    // Multiply-shift keeps bias negligible for the bounds in use.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(v) * bound) >> 64);
}

std::vector<uint64_t>
Transcript::challengeDistinctIndices(std::string_view label, size_t count,
                                     uint64_t bound)
{
    if (count > bound)
        panic("challengeDistinctIndices: count %zu > bound %llu", count,
              static_cast<unsigned long long>(bound));
    std::vector<uint64_t> out;
    out.reserve(count);
    while (out.size() < count) {
        uint64_t idx = challengeIndex(label, bound);
        if (std::find(out.begin(), out.end(), idx) == out.end())
            out.push_back(idx);
    }
    return out;
}

} // namespace bzk
