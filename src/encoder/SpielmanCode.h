#ifndef BZK_ENCODER_SPIELMANCODE_H_
#define BZK_ENCODER_SPIELMANCODE_H_

/**
 * @file
 * Functional Spielman-style linear-time encoder (paper Sec. 2.4 / 3.3).
 *
 * encode() is implemented exactly as the paper's pipelined formulation
 * (Figure 6): a forward pass of first-multiplications (A matrices), the
 * dense base case, then a reverse pass of second-multiplications
 * (B matrices) — no recursion, so the same code path maps one-to-one
 * onto the stage kernels the GPU drivers charge for.
 */

#include <span>
#include <vector>

#include "encoder/SparseMatrix.h"
#include "encoder/Topology.h"
#include "ff/FieldBackend.h"
#include "util/Log.h"

namespace bzk {

/** A concrete instance of the rate-1/2 recursive code. */
template <typename F>
class SpielmanCode
{
  public:
    /** Build all level matrices for message length @p k from @p seed. */
    SpielmanCode(size_t k, uint64_t seed) : topo_(k, seed)
    {
        for (size_t lvl = 0; lvl < topo_.levels().size(); ++lvl) {
            const EncoderLevel &level = topo_.levels()[lvl];
            Rng rng_a(topo_.seedA(lvl));
            Rng rng_b(topo_.seedB(lvl));
            a_.emplace_back(level.a_degrees, level.k, rng_a);
            b_.emplace_back(level.b_degrees, level.k / 2, rng_b);
        }
        // Dense base matrix M (base_k x base_k).
        Rng rng(topo_.seedBase());
        size_t bk = topo_.baseSize();
        base_.resize(bk * bk);
        for (auto &c : base_)
            c = static_cast<uint32_t>(rng.nextBounded(0xffffffffULL)) + 1;
    }

    /** Message length k. */
    size_t messageLength() const { return topo_.messageLength(); }

    /** Codeword length 2k. */
    size_t codewordLength() const { return topo_.codewordLength(); }

    /** The shared topology (degree sequences, seeds). */
    const EncoderTopology &topology() const { return topo_; }

    /**
     * Encode @p message (length k) into a codeword of length 2k.
     * Linear in the message by construction. With a non-null @p exec
     * every sparse stage (and the dense base case) splits its rows
     * across host threads; codewords are bit-identical either way.
     */
    std::vector<F>
    encode(std::span<const F> message,
           const exec::ExecContext *exec = nullptr) const
    {
        if (message.size() != messageLength())
            panic("SpielmanCode::encode: message length %zu != %zu",
                  message.size(), messageLength());
        if (exec)
            exec->setRegion("encoder");

        size_t depth = a_.size();
        // Forward pass: x_{l+1} = A_l x_l (first multiplications).
        std::vector<std::vector<F>> xs(depth + 1);
        xs[0].assign(message.begin(), message.end());
        for (size_t l = 0; l < depth; ++l) {
            xs[l + 1].resize(a_[l].rows());
            a_[l].mulVec(xs[l], xs[l + 1], exec);
        }

        // Base case: z = [x | M x].
        size_t bk = topo_.baseSize();
        std::vector<F> z(2 * bk);
        for (size_t i = 0; i < bk; ++i)
            z[i] = xs[depth][i];
        auto base_rows = [&](size_t begin, size_t end) {
            // Lift one dense row at a time into field scratch so the
            // packed dot kernel runs over full lanes; the row sum is
            // exact-field associative, so the result is unchanged.
            std::vector<F> coeffs(bk);
            for (size_t r = begin; r < end; ++r) {
                for (size_t c = 0; c < bk; ++c)
                    coeffs[c] = F::fromUint(base_[r * bk + c]);
                z[bk + r] =
                    ff::dotLanes(xs[depth].data(), coeffs.data(), bk);
            }
        };
        if (exec)
            exec->parallelFor(bk, /*serial_cutoff=*/64, base_rows);
        else
            base_rows(0, bk);

        // Reverse pass: z_l = [x_l | z_{l+1} | B_l z_{l+1}] (second
        // multiplications, smallest stage first — Figure 6).
        for (size_t l = depth; l-- > 0;) {
            size_t k_l = topo_.levels()[l].k;
            std::vector<F> out(2 * k_l);
            std::copy(xs[l].begin(), xs[l].end(), out.begin());
            std::copy(z.begin(), z.end(), out.begin() + k_l);
            std::span<F> v(out.data() + k_l + z.size(), k_l / 2);
            b_[l].mulVec(z, v, exec);
            z = std::move(out);
        }
        return z;
    }

  private:
    EncoderTopology topo_;
    std::vector<SparseMatrix<F>> a_;
    std::vector<SparseMatrix<F>> b_;
    std::vector<uint32_t> base_;
};

} // namespace bzk

#endif // BZK_ENCODER_SPIELMANCODE_H_
