#ifndef BZK_ENCODER_SPARSEMATRIX_H_
#define BZK_ENCODER_SPARSEMATRIX_H_

/**
 * @file
 * Row-major (CSR) sparse matrix over a finite field, representing the
 * bipartite expander graphs of the Spielman encoder (Figure 3). Right
 * vertices are rows, left vertices are columns, and an edge carries a
 * non-zero field coefficient.
 *
 * Coefficients are stored as 32-bit integers and lifted into the field
 * on use; this keeps a 2^22-size encoder's matrices in hundreds of
 * megabytes instead of gigabytes while preserving exact linearity.
 */

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "exec/ExecContext.h"
#include "ff/FieldBackend.h"
#include "util/Log.h"
#include "util/Rng.h"

namespace bzk {

/** CSR sparse matrix with per-row degree taken from a degree sequence. */
template <typename F>
class SparseMatrix
{
  public:
    SparseMatrix() = default;

    /**
     * Sample a matrix with the given @p degrees (one per row) over
     * @p cols columns; column indices and coefficients come from @p rng.
     */
    SparseMatrix(std::span<const uint8_t> degrees, size_t cols, Rng &rng)
        : cols_(cols)
    {
        offsets_.reserve(degrees.size() + 1);
        offsets_.push_back(0);
        size_t nnz = 0;
        for (uint8_t d : degrees)
            nnz += d;
        entries_.reserve(nnz);
        for (uint8_t d : degrees) {
            for (uint8_t e = 0; e < d; ++e) {
                Entry entry;
                entry.col = static_cast<uint32_t>(rng.nextBounded(cols));
                // Coefficient in [1, 2^32): never zero, so every edge is
                // a real edge.
                entry.coeff =
                    static_cast<uint32_t>(rng.nextBounded(0xffffffffULL)) + 1;
                entries_.push_back(entry);
            }
            offsets_.push_back(entries_.size());
        }
    }

    /** Number of rows. */
    size_t rows() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

    /** Number of columns. */
    size_t cols() const { return cols_; }

    /** Non-zero count. */
    size_t nnz() const { return entries_.size(); }

    /** out[r] = sum_e coeff_e * x[col_e] over row r's entries. */
    void
    mulVec(std::span<const F> x, std::span<F> out) const
    {
        mulVec(x, out, nullptr);
    }

    /**
     * mulVec with optional host parallelism: rows are partitioned into
     * groups of roughly equal non-zero count (the host analogue of the
     * GPU's bucket-sorted warps — workers finish together instead of
     * straggling on a run of long rows) and the groups run across the
     * pool. Rows write disjoint outputs, so the result is bit-identical
     * to the serial pass.
     */
    void
    mulVec(std::span<const F> x, std::span<F> out,
           const exec::ExecContext *exec) const
    {
        if (x.size() != cols_ || out.size() != rows())
            panic("SparseMatrix::mulVec: shape mismatch "
                  "(%zu x %zu vs in %zu out %zu)",
                  rows(), cols_, x.size(), out.size());
        auto run_rows = [&](size_t begin, size_t end) {
            // Gather each row's operands into contiguous scratch so
            // the packed field kernels can run over full lanes; the
            // row sum is exact-field associative, so the lane
            // reordering leaves the result (and proof bytes)
            // unchanged.
            constexpr size_t kGather = 64;
            F xs[kGather], cs[kGather];
            for (size_t r = begin; r < end; ++r) {
                F acc = F::zero();
                size_t e = offsets_[r];
                const size_t row_end = offsets_[r + 1];
                while (e < row_end) {
                    size_t m = std::min(row_end - e, kGather);
                    for (size_t k = 0; k < m; ++k) {
                        xs[k] = x[entries_[e + k].col];
                        cs[k] = F::fromUint(entries_[e + k].coeff);
                    }
                    acc += ff::dotLanes(xs, cs, m);
                    e += m;
                }
                out[r] = acc;
            }
        };
        if (!exec || exec->threads() <= 1 ||
            nnz() < exec->serialCutoff()) {
            run_rows(0, rows());
            return;
        }
        // Group boundaries balanced on nnz via the CSR offsets, then
        // one pool item per group.
        size_t groups = std::min(rows(), exec->threads() * 4);
        std::vector<size_t> bounds(groups + 1, rows());
        bounds[0] = 0;
        for (size_t g = 1; g < groups; ++g) {
            size_t target = g * nnz() / groups;
            bounds[g] = static_cast<size_t>(
                std::lower_bound(offsets_.begin(), offsets_.end(),
                                 target) -
                offsets_.begin());
        }
        exec->parallelFor(groups, /*serial_cutoff=*/2,
                          [&](size_t g_begin, size_t g_end) {
                              for (size_t g = g_begin; g < g_end; ++g)
                                  run_rows(bounds[g], bounds[g + 1]);
                          });
    }

  private:
    struct Entry
    {
        uint32_t col = 0;
        uint32_t coeff = 0;
    };

    std::vector<size_t> offsets_;
    std::vector<Entry> entries_;
    size_t cols_ = 0;
};

} // namespace bzk

#endif // BZK_ENCODER_SPARSEMATRIX_H_
