#ifndef BZK_ENCODER_TOPOLOGY_H_
#define BZK_ENCODER_TOPOLOGY_H_

/**
 * @file
 * Deterministic structure of a Spielman-style recursive code.
 *
 * The recursion of the paper's Figure 3, instantiated concretely:
 * a message of length k encodes to a codeword of length 2k (rate 1/2) as
 *
 *     E(x) = [ x | z | v ],   y = A x,  z = E(y),  v = B z,
 *
 * with |y| = k/4, |z| = k/2 and |v| = k/2. Below kBaseSize the code
 * bottoms out in a dense square matrix: E(x) = [x | M x].
 *
 * Row degrees are sampled per row (expander-style bipartite graphs), so
 * warps see genuinely imbalanced rows — the thing the paper's bucket
 * sort fixes. The topology (row counts and degree sequences) is derived
 * deterministically from a seed, independent of the coefficients, so the
 * GPU cost model can reason about warp schedules without materializing
 * the matrices.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/Log.h"
#include "util/Rng.h"

namespace bzk {

/** Smallest message length that still recurses. */
constexpr size_t kEncoderBaseSize = 32;

/** Mean row degree of the A (shrinking) graphs. */
constexpr size_t kEncoderDegreeA = 8;

/** Mean row degree of the B (expanding) graphs. */
constexpr size_t kEncoderDegreeB = 16;

/** Degree sequences for one recursion level. */
struct EncoderLevel
{
    /** Message length entering this level. */
    size_t k = 0;
    /** Row degrees of A (k/4 rows over k columns). */
    std::vector<uint8_t> a_degrees;
    /** Row degrees of B (k/2 rows over k/2 columns). */
    std::vector<uint8_t> b_degrees;
};

/** Full recursion structure for a message length. */
class EncoderTopology
{
  public:
    /**
     * Derive the topology for message length @p k (power of two,
     * >= kBaseSize) from @p seed.
     */
    EncoderTopology(size_t k, uint64_t seed);

    /** Message length. */
    size_t messageLength() const { return k_; }

    /** Codeword length (2k at rate 1/2). */
    size_t codewordLength() const { return 2 * k_; }

    /** Recursion levels, outermost first. */
    const std::vector<EncoderLevel> &levels() const { return levels_; }

    /** Message length at the dense base case. */
    size_t baseSize() const { return base_k_; }

    /** Seed for the coefficients of level @p lvl matrix A. */
    uint64_t seedA(size_t lvl) const;

    /** Seed for the coefficients of level @p lvl matrix B. */
    uint64_t seedB(size_t lvl) const;

    /** Seed for the dense base matrix. */
    uint64_t seedBase() const;

    /** Total non-zeros across all sparse matrices plus the base. */
    size_t totalNnz() const;

  private:
    size_t k_ = 0;
    size_t base_k_ = 0;
    uint64_t seed_ = 0;
    std::vector<EncoderLevel> levels_;
};

/**
 * Sample @p rows row degrees uniformly in [mean/2 + 1, 3*mean/2] — all
 * below 256 so a length fits one byte, as the paper's bucket sort
 * exploits.
 */
std::vector<uint8_t> sampleRowDegrees(size_t rows, size_t mean, Rng &rng);

} // namespace bzk

#endif // BZK_ENCODER_TOPOLOGY_H_
