#include "encoder/Topology.h"

namespace bzk {

std::vector<uint8_t>
sampleRowDegrees(size_t rows, size_t mean, Rng &rng)
{
    size_t lo = mean / 2 + 1;
    size_t hi = 3 * mean / 2;
    if (hi > 255)
        panic("sampleRowDegrees: mean %zu too large for byte lengths",
              mean);
    std::vector<uint8_t> degrees(rows);
    for (auto &d : degrees)
        d = static_cast<uint8_t>(lo + rng.nextBounded(hi - lo + 1));
    return degrees;
}

EncoderTopology::EncoderTopology(size_t k, uint64_t seed)
    : k_(k), seed_(seed)
{
    if (k < kEncoderBaseSize || (k & (k - 1)))
        fatal("EncoderTopology: message length %zu must be a power of two "
              ">= %zu",
              k, kEncoderBaseSize);

    size_t cur = k;
    size_t lvl = 0;
    while (cur > kEncoderBaseSize) {
        uint64_t s = seed_;
        // Distinct deterministic stream per level for the degrees.
        for (size_t i = 0; i <= lvl; ++i)
            splitmix64(s);
        Rng rng(s ^ 0xde90000u ^ lvl);
        EncoderLevel level;
        level.k = cur;
        level.a_degrees = sampleRowDegrees(cur / 4, kEncoderDegreeA, rng);
        level.b_degrees = sampleRowDegrees(cur / 2, kEncoderDegreeB, rng);
        levels_.push_back(std::move(level));
        cur /= 4;
        ++lvl;
    }
    base_k_ = cur;
}

uint64_t
EncoderTopology::seedA(size_t lvl) const
{
    uint64_t s = seed_ + 0x1000 + lvl * 2;
    return splitmix64(s);
}

uint64_t
EncoderTopology::seedB(size_t lvl) const
{
    uint64_t s = seed_ + 0x2000 + lvl * 2 + 1;
    return splitmix64(s);
}

uint64_t
EncoderTopology::seedBase() const
{
    uint64_t s = seed_ + 0x3000;
    return splitmix64(s);
}

size_t
EncoderTopology::totalNnz() const
{
    size_t nnz = base_k_ * base_k_;
    for (const auto &level : levels_) {
        for (uint8_t d : level.a_degrees)
            nnz += d;
        for (uint8_t d : level.b_degrees)
            nnz += d;
    }
    return nnz;
}

} // namespace bzk
