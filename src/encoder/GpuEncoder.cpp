#include "encoder/GpuEncoder.h"

#include <algorithm>
#include <cmath>

#include "encoder/SpielmanCode.h"
#include "exec/ExecContext.h"
#include "gpusim/Calibration.h"
#include "util/Timer.h"

namespace bzk {

using gpusim::BatchStats;
using gpusim::KernelDesc;
using gpusim::OpId;
using gpusim::StreamId;

namespace {

/**
 * Lane-cycles to process one sparse-row non-zero: the MAC itself plus
 * the random-gather stall (sparse column indices defeat coalescing, so
 * the fetch costs a near-full DRAM transaction — see Calibration.h).
 */
double
nnzCycles()
{
    return gpusim::kFieldMulCycles + gpusim::kFieldAddCycles +
           gpusim::kGatherStallCycles;
}

/**
 * Warp-schedule cost of a degree sequence: each warp of 32 rows costs
 * 32 * (longest row in the warp), because SIMD lanes wait for the
 * straggler (Sec. 3.3).
 */
double
warpScheduleCost(std::span<const uint8_t> degrees, bool sorted)
{
    std::vector<uint8_t> order(degrees.begin(), degrees.end());
    if (sorted) {
        // Bucket sort on the 1-byte lengths — the paper's choice.
        size_t buckets[256] = {0};
        for (uint8_t d : order)
            ++buckets[d];
        size_t pos = 0;
        for (size_t d = 0; d < 256; ++d)
            for (size_t c = 0; c < buckets[d]; ++c)
                order[pos++] = static_cast<uint8_t>(d);
    }
    double total = 0.0;
    for (size_t g = 0; g < order.size(); g += gpusim::kWarpSize) {
        uint8_t max_deg = 0;
        size_t end = std::min(order.size(), g + gpusim::kWarpSize);
        for (size_t i = g; i < end; ++i)
            max_deg = std::max(max_deg, order[i]);
        total += static_cast<double>(gpusim::kWarpSize) * max_deg;
    }
    return total;
}

std::vector<std::vector<Fr>>
encodeFunctional(size_t count, size_t k, Rng &rng)
{
    std::vector<std::vector<Fr>> out;
    if (count == 0)
        return out;
    SpielmanCode<Fr> code(k, /*seed=*/0xbadc0de5 + k);
    exec::ExecContext exec;
    for (size_t i = 0; i < count; ++i) {
        std::vector<Fr> message(k);
        for (auto &m : message)
            m = Fr::random(rng);
        out.push_back(code.encode(message, &exec));
    }
    return out;
}

} // namespace

std::vector<EncoderStageCost>
encoderStageCosts(const EncoderTopology &topo)
{
    std::vector<EncoderStageCost> stages;
    const double per_nnz = nnzCycles();

    // Forward pass: one stage per A matrix.
    for (const auto &level : topo.levels()) {
        EncoderStageCost s;
        s.rows = level.a_degrees.size();
        s.lane_cycles_unsorted =
            warpScheduleCost(level.a_degrees, false) * per_nnz;
        s.lane_cycles_sorted =
            warpScheduleCost(level.a_degrees, true) * per_nnz;
        uint64_t nnz = 0;
        for (uint8_t d : level.a_degrees)
            nnz += d;
        s.mem_bytes = nnz * 40 + s.rows * 32; // gathers + row writes
        stages.push_back(s);
    }

    // Dense base case: all rows have the same length, so sorting is a
    // no-op there.
    {
        EncoderStageCost s;
        s.rows = topo.baseSize();
        double cost = static_cast<double>(topo.baseSize()) *
                      static_cast<double>(topo.baseSize()) * per_nnz;
        s.lane_cycles_unsorted = cost;
        s.lane_cycles_sorted = cost;
        s.mem_bytes = static_cast<uint64_t>(topo.baseSize()) *
                      topo.baseSize() * 40;
        stages.push_back(s);
    }

    // Reverse pass: one stage per B matrix, smallest level first.
    for (size_t l = topo.levels().size(); l-- > 0;) {
        const auto &level = topo.levels()[l];
        EncoderStageCost s;
        s.rows = level.b_degrees.size();
        s.lane_cycles_unsorted =
            warpScheduleCost(level.b_degrees, false) * per_nnz;
        s.lane_cycles_sorted =
            warpScheduleCost(level.b_degrees, true) * per_nnz;
        uint64_t nnz = 0;
        for (uint8_t d : level.b_degrees)
            nnz += d;
        s.mem_bytes = nnz * 40 + s.rows * 32;
        stages.push_back(s);
    }
    return stages;
}

NonPipelinedEncoderGpu::NonPipelinedEncoderGpu(gpusim::Device &dev,
                                               GpuEncoderOptions opt)
    : dev_(dev), opt_(opt)
{
}

BatchStats
NonPipelinedEncoderGpu::run(size_t batch, size_t k, Rng &rng,
                            std::vector<std::vector<Fr>> *codewords)
{
    size_t functional =
        k <= opt_.max_functional_k ? std::min(batch, opt_.functional) : 0;
    auto codes = encodeFunctional(functional, k, rng);
    if (codewords)
        *codewords = std::move(codes);

    EncoderTopology topo(k, 0xbadc0de5 + k);
    auto stages = encoderStageCosts(topo);

    dev_.resetTimeline();
    dev_.resetMemoryPeak();

    double cores = opt_.lane_budget > 0
                       ? std::min<double>(opt_.lane_budget,
                                          dev_.spec().cuda_cores)
                       : dev_.spec().cuda_cores;

    // Non-pipelined: all message/codeword buffers staged at once, plus
    // the matrices.
    int64_t buffers = dev_.alloc(batch * 3 * k * Fr::kNumBytes);
    int64_t matrices = dev_.alloc(topo.totalNnz() * 8);

    StreamId stream = dev_.createStream();

    double sync_cycles = gpusim::kHostSyncMs * dev_.spec().cyclesPerMs();
    double first_end = 0.0;
    for (size_t c = 0; c < batch; ++c) {
        // Non-overlapped input transfer (no multi-stream here).
        if (opt_.stream_io)
            dev_.copyH2D(stream, k * Fr::kNumBytes);
        KernelDesc kd;
        kd.name = "encoder_code";
        kd.lanes = cores;
        uint64_t traffic = 0;
        for (const auto &s : stages) {
            double lanes =
                std::min(cores, static_cast<double>(
                                    std::max<size_t>(s.rows, 1)));
            // Unsorted warps (stragglers stretch every wave) plus the
            // recursion emulated with per-stage host round-trips.
            double waves_cost = s.lane_cycles_unsorted *
                                gpusim::kNpEncoderInefficiency / lanes;
            kd.profile.push_back({waves_cost + sync_cycles,
                                  std::min(lanes, cores)});
            traffic += s.mem_bytes;
        }
        kd.mem_bytes = traffic;
        OpId op = dev_.launchKernel(stream, kd);
        if (opt_.stream_io)
            dev_.copyD2H(stream, 2 * k * Fr::kNumBytes, op);
        if (c == 0)
            first_end = dev_.opEnd(op);
    }

    BatchStats stats;
    stats.batch = batch;
    stats.total_ms = dev_.now();
    stats.first_latency_ms = first_end;
    stats.item_latency_ms = first_end;
    stats.throughput_per_ms = batch / stats.total_ms;
    stats.peak_device_bytes = dev_.peakMemory();
    stats.busy_lane_ms = dev_.busyLaneMs();
    stats.utilization =
        stats.busy_lane_ms / (stats.total_ms * dev_.spec().cuda_cores);

    dev_.free(buffers);
    dev_.free(matrices);
    return stats;
}

PipelinedEncoderGpu::PipelinedEncoderGpu(gpusim::Device &dev,
                                         GpuEncoderOptions opt)
    : dev_(dev), opt_(opt)
{
}

BatchStats
PipelinedEncoderGpu::run(size_t batch, size_t k, Rng &rng,
                         std::vector<std::vector<Fr>> *codewords)
{
    size_t functional =
        k <= opt_.max_functional_k ? std::min(batch, opt_.functional) : 0;
    auto codes = encodeFunctional(functional, k, rng);
    if (codewords)
        *codewords = std::move(codes);

    EncoderTopology topo(k, 0xbadc0de5 + k);
    auto stages = encoderStageCosts(topo);
    size_t n_stages = stages.size();

    dev_.resetTimeline();
    dev_.resetMemoryPeak();

    double lanes_total = opt_.lane_budget > 0
                             ? std::min<double>(opt_.lane_budget,
                                                dev_.spec().cuda_cores)
                             : dev_.spec().cuda_cores;

    // Stage lanes proportional to stage cost, so the pipeline cycle is
    // balanced. The ablation flag switches the warp schedule between
    // bucket-sorted and natural row order.
    auto stage_cost = [this](const EncoderStageCost &s) {
        return opt_.sort_rows ? s.lane_cycles_sorted
                              : s.lane_cycles_unsorted;
    };
    double total_cost = 0.0;
    for (const auto &s : stages)
        total_cost += stage_cost(s);
    std::vector<double> stage_lanes(n_stages);
    for (size_t i = 0; i < n_stages; ++i) {
        stage_lanes[i] = std::max(
            1.0, lanes_total * stage_cost(stages[i]) / total_cost);
    }
    double cycle_cycles = 0.0;
    for (size_t i = 0; i < n_stages; ++i) {
        cycle_cycles = std::max(cycle_cycles,
                                stage_cost(stages[i]) / stage_lanes[i]);
    }
    // One-time bucket sort of the row lengths, amortized over the batch
    // (cheap: one byte per row).
    if (opt_.sort_rows) {
        double sort_cycles = 0.0;
        for (const auto &s : stages)
            sort_cycles += static_cast<double>(s.rows) * 4.0;
        cycle_cycles +=
            sort_cycles / static_cast<double>(std::max<size_t>(batch, 1));
    }

    // Live vectors across both pipelines (~4k elements) plus matrices.
    int64_t buffers = dev_.alloc(4 * k * Fr::kNumBytes);
    int64_t matrices = dev_.alloc(topo.totalNnz() * 8);

    StreamId compute = dev_.createStream();
    StreamId h2d = dev_.createStream();
    StreamId d2h = dev_.createStream();

    size_t cycles = batch + n_stages - 1;
    double first_end = 0.0;
    OpId prev_load = gpusim::kNoOp;
    for (size_t c = 0; c < cycles; ++c) {
        OpId load = gpusim::kNoOp;
        if (opt_.stream_io && c < batch)
            load = dev_.copyH2D(h2d, k * Fr::kNumBytes);

        double active = 0.0;
        uint64_t traffic = 0;
        for (size_t i = 0; i < n_stages; ++i) {
            if (c >= i && c - i < batch) {
                active += stage_lanes[i];
                traffic += stages[i].mem_bytes;
            }
        }
        KernelDesc kd;
        kd.name = "encoder_pipe_cycle";
        kd.lanes = lanes_total;
        kd.profile.push_back({cycle_cycles, active});
        kd.mem_bytes = traffic;
        OpId op = dev_.launchKernel(compute, kd, prev_load);
        prev_load = load;

        if (opt_.stream_io && c + 1 >= n_stages)
            dev_.copyD2H(d2h, 2 * k * Fr::kNumBytes, op);
        if (c == n_stages - 1)
            first_end = dev_.opEnd(op);
    }

    BatchStats stats;
    stats.batch = batch;
    stats.total_ms = dev_.now();
    stats.first_latency_ms = first_end;
    stats.item_latency_ms = static_cast<double>(n_stages) * cycle_cycles /
                            dev_.spec().cyclesPerMs();
    stats.throughput_per_ms = batch / stats.total_ms;
    stats.peak_device_bytes = dev_.peakMemory();
    stats.busy_lane_ms = dev_.busyLaneMs();
    stats.utilization =
        stats.busy_lane_ms / (stats.total_ms * dev_.spec().cuda_cores);

    dev_.free(buffers);
    dev_.free(matrices);
    return stats;
}

BatchStats
CpuEncoderBaseline::run(size_t batch, size_t k, Rng &rng,
                        std::vector<std::vector<Fr>> *codewords)
{
    size_t samples = std::max<size_t>(1, std::min(sample_codes_, batch));
    SpielmanCode<Fr> code(k, 0xbadc0de5 + k);
    std::vector<std::vector<Fr>> messages(samples);
    for (auto &m : messages) {
        m.resize(k);
        for (auto &x : m)
            x = Fr::random(rng);
    }

    // Multi-core host baseline, like the Orion encoder the paper
    // measures; thread count from --threads / BZK_THREADS.
    exec::ExecContext exec;
    Timer timer;
    for (size_t i = 0; i < samples; ++i) {
        auto cw = code.encode(messages[i], &exec);
        if (codewords)
            codewords->push_back(std::move(cw));
    }
    double per_code = timer.milliseconds() / static_cast<double>(samples);

    BatchStats stats;
    stats.batch = batch;
    stats.total_ms = per_code * static_cast<double>(batch);
    stats.first_latency_ms = per_code;
    stats.item_latency_ms = per_code;
    stats.throughput_per_ms = 1.0 / per_code;
    return stats;
}

} // namespace bzk
