#ifndef BZK_ENCODER_GPUENCODER_H_
#define BZK_ENCODER_GPUENCODER_H_

/**
 * @file
 * Batch linear-time encoders for the simulated GPU (Section 3.3).
 *
 * Table 5's three columns:
 *  - CpuEncoderBaseline  : Orion-style host encoder, measured.
 *  - NonPipelinedEncoderGpu ("Ours-np"): one kernel per codeword; the
 *    2*depth+1 stages serialize inside it with a grid sync each, rows
 *    are not length-sorted so warps straggle on their longest row.
 *  - PipelinedEncoderGpu : the two interconnected pipelines of Figure 6
 *    (forward Ax stages, then reverse Bz stages), one kernel per stage,
 *    rows bucket-sorted by length so warps stay balanced.
 *
 * The warp-imbalance factors are not constants: they are computed from
 * the actual degree sequences of the sampled expander graphs, grouping
 * 32 rows per warp in natural order (unsorted) or after bucket sort.
 */

#include <cstddef>
#include <vector>

#include "encoder/Topology.h"
#include "ff/Fields.h"
#include "gpusim/BatchStats.h"
#include "gpusim/Device.h"
#include "util/Rng.h"

namespace bzk {

/** Per-stage cost summary derived from a topology's degree sequences. */
struct EncoderStageCost
{
    /** Rows (output entries) the stage computes. */
    size_t rows = 0;
    /** Lane-cycles with warps grouped in natural row order. */
    double lane_cycles_unsorted = 0.0;
    /** Lane-cycles with rows bucket-sorted by length first. */
    double lane_cycles_sorted = 0.0;
    /** Global-memory bytes the stage touches. */
    uint64_t mem_bytes = 0;
};

/**
 * Compute the stage sequence (forward A stages, dense base, reverse B
 * stages) and the warp-schedule cost of each, from degree data alone.
 */
std::vector<EncoderStageCost> encoderStageCosts(const EncoderTopology &topo);

/** Options shared by the GPU encoder drivers. */
struct GpuEncoderOptions
{
    /** Lanes this module may use; 0 = whole device. */
    double lane_budget = 0.0;
    /** Stream messages in / codewords out through host memory. */
    bool stream_io = false;
    /** Number of codewords to encode functionally. */
    size_t functional = 1;
    /**
     * Skip functional encoding above this message length (matrices for
     * 2^22 would not fit host RAM here); timing still runs.
     */
    size_t max_functional_k = size_t{1} << 18;
    /**
     * Ablation: disable the bucket sort of row lengths in the
     * pipelined encoder; warps then straggle on their longest row
     * (Sec. 3.3).
     */
    bool sort_rows = true;
};

/** "Ours-np": the non-pipelined GPU encoder baseline of Table 5. */
class NonPipelinedEncoderGpu
{
  public:
    NonPipelinedEncoderGpu(gpusim::Device &dev, GpuEncoderOptions opt = {});

    /**
     * Encode @p batch messages of @p k field elements each.
     * @param codewords receives the functionally-encoded codewords.
     */
    gpusim::BatchStats run(size_t batch, size_t k, Rng &rng,
                           std::vector<std::vector<Fr>> *codewords = nullptr);

  private:
    gpusim::Device &dev_;
    GpuEncoderOptions opt_;
};

/** The paper's pipelined two-pass encoder. */
class PipelinedEncoderGpu
{
  public:
    PipelinedEncoderGpu(gpusim::Device &dev, GpuEncoderOptions opt = {});

    /** @copydoc NonPipelinedEncoderGpu::run */
    gpusim::BatchStats run(size_t batch, size_t k, Rng &rng,
                           std::vector<std::vector<Fr>> *codewords = nullptr);

  private:
    gpusim::Device &dev_;
    GpuEncoderOptions opt_;
};

/** Host (Orion-style) baseline, measured in wall-clock time. */
class CpuEncoderBaseline
{
  public:
    explicit CpuEncoderBaseline(size_t sample_codes = 1)
        : sample_codes_(sample_codes)
    {
    }

    /** @copydoc NonPipelinedEncoderGpu::run */
    gpusim::BatchStats run(size_t batch, size_t k, Rng &rng,
                           std::vector<std::vector<Fr>> *codewords = nullptr);

  private:
    size_t sample_codes_;
};

} // namespace bzk

#endif // BZK_ENCODER_GPUENCODER_H_
