#include "util/Stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/Log.h"

namespace bzk {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    // variance() is 0 below two samples and can dip epsilon-negative
    // from catastrophic cancellation; clamp so stddev is never NaN.
    return std::sqrt(std::max(0.0, variance()));
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() > headers_.size())
        warn("TablePrinter: row has %zu cells but the table has %zu "
             "columns; dropping the extras (first dropped: '%s')",
             cells.size(), headers_.size(),
             cells[headers_.size()].c_str());
    else if (cells.size() < headers_.size())
        warn("TablePrinter: row has %zu cells but the table has %zu "
             "columns; padding the missing cells blank",
             cells.size(), headers_.size());
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row,
                        std::ostringstream &os) {
        os << "|";
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            os << " " << cell << std::string(widths[c] - cell.size(), ' ')
               << " |";
        }
        os << "\n";
    };

    std::ostringstream os;
    emit_row(headers_, os);
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        emit_row(row, os);
    return os.str();
}

std::string
formatSig(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
    return buf;
}

} // namespace bzk
