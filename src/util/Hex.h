#ifndef BZK_UTIL_HEX_H_
#define BZK_UTIL_HEX_H_

/**
 * @file
 * Hex encoding helpers for digests and field elements.
 */

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bzk {

/** Encode @p bytes as a lowercase hex string. */
std::string toHex(std::span<const uint8_t> bytes);

/**
 * Decode a lowercase/uppercase hex string into bytes.
 * @return decoded bytes; empty when @p hex has odd length or bad digits.
 */
std::vector<uint8_t> fromHex(const std::string &hex);

} // namespace bzk

#endif // BZK_UTIL_HEX_H_
