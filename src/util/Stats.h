#ifndef BZK_UTIL_STATS_H_
#define BZK_UTIL_STATS_H_

/**
 * @file
 * Running statistics and fixed-width table printing used by the
 * benchmark harnesses to regenerate the paper's tables.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace bzk {

/** Online mean/min/max/variance accumulator (Welford). */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples folded in so far. */
    size_t count() const { return count_; }

    /**
     * True when no sample has been folded in yet. Check this before
     * trusting min()/max(): their 0.0 empty-state return value is
     * indistinguishable from a real 0.0 sample.
     */
    bool empty() const { return count_ == 0; }

    /** Mean of the samples; 0 when empty (see empty()). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Smallest sample; 0 when empty (see empty()). */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample; 0 when empty (see empty()). */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Fixed-width ASCII table builder. Benchmarks use it so every reproduced
 * table prints with the same rows/columns the paper reports.
 */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /**
     * Append one row. Any width mismatch against the headers warns (a
     * silent drop hid more than one malformed benchmark row): missing
     * cells are padded blank, cells beyond the header count are
     * dropped. Rows meant to render blank cells should pass explicit
     * "" entries.
     */
    void addRow(std::vector<std::string> cells);

    /** Render the table (headers, rule, rows) as a string. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p value with @p digits significant decimal digits. */
std::string formatSig(double value, int digits = 4);

} // namespace bzk

#endif // BZK_UTIL_STATS_H_
