#include "util/ThreadPool.h"

#include <algorithm>
#include <exception>

namespace bzk {

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobs_.push(std::move(job));
        ++in_flight_;
    }
    cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t, size_t)> &body)
{
    if (n == 0)
        return;
    size_t chunks = std::min(n, workers_.size() * 4);
    size_t chunk = (n + chunks - 1) / chunks;
    // An exception escaping workerLoop() would std::terminate the
    // process, so every chunk is fenced here and the first failure is
    // rethrown on the caller once all chunks have drained.
    std::exception_ptr first_error;
    std::mutex error_mutex;
    for (size_t begin = 0; begin < n; begin += chunk) {
        size_t end = std::min(n, begin + chunk);
        submit([&body, &first_error, &error_mutex, begin, end] {
            try {
                body(begin, end);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        });
    }
    wait();
    if (first_error)
        std::rethrow_exception(first_error);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
            if (jobs_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--in_flight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

} // namespace bzk
