#ifndef BZK_UTIL_RNG_H_
#define BZK_UTIL_RNG_H_

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomized structures in the library (expander graphs, synthetic
 * witnesses, workload generators) draw from this splitmix64/xoshiro256**
 * generator so runs are reproducible from a single seed.
 */

#include <cstdint>

namespace bzk {

/** splitmix64 step — also used standalone to derive seeds. */
inline uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** PRNG. Not cryptographically secure; used only for workload
 * and graph generation, never for protocol challenges (those come from the
 * Fiat-Shamir transcript).
 */
class Rng
{
  public:
    /** Seed the generator; every distinct seed gives a distinct stream. */
    explicit Rng(uint64_t seed = 0x243f6a8885a308d3ULL)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    /** Next uniformly distributed 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound) using Lemire's multiply-shift. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Rejection-free 128-bit multiply; bias is negligible for the
        // bounds used here (all far below 2^64).
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace bzk

#endif // BZK_UTIL_RNG_H_
