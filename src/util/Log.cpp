#include "util/Log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace bzk {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_io_mutex;

void
emit(const char *tag, const char *fmt, va_list ap)
{
    std::lock_guard<std::mutex> lock(g_io_mutex);
    std::fprintf(stderr, "%s", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info: ", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn: ", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug: ", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace bzk
