#include "util/Hex.h"

namespace bzk {

namespace {

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::string
toHex(std::span<const uint8_t> bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (uint8_t b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

std::vector<uint8_t>
fromHex(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        return {};
    std::vector<uint8_t> out;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = hexDigit(hex[i]);
        int lo = hexDigit(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return {};
        out.push_back(static_cast<uint8_t>((hi << 4) | lo));
    }
    return out;
}

} // namespace bzk
