#ifndef BZK_UTIL_TIMER_H_
#define BZK_UTIL_TIMER_H_

/**
 * @file
 * Simple wall-clock stopwatch used by the CPU-baseline measurements.
 */

#include <chrono>

namespace bzk {

/** Monotonic stopwatch measuring elapsed wall time. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Milliseconds elapsed since construction or the last reset(). */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace bzk

#endif // BZK_UTIL_TIMER_H_
