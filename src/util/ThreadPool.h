#ifndef BZK_UTIL_THREADPOOL_H_
#define BZK_UTIL_THREADPOOL_H_

/**
 * @file
 * A small work-stealing-free thread pool used by the CPU reference
 * implementations to exploit host cores, mirroring the multi-core CPU
 * baselines the paper measures (Orion, Arkworks, Libsnark).
 */

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bzk {

/** Fixed-size pool of worker threads executing queued jobs. */
class ThreadPool
{
  public:
    /**
     * Start @p num_threads workers; 0 means hardware concurrency.
     */
    explicit ThreadPool(size_t num_threads = 0);

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job for asynchronous execution. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has completed. */
    void wait();

    /**
     * Split [0, n) into contiguous chunks and run @p body(begin, end) on the
     * pool, blocking until all chunks finish. If any chunk throws, the
     * first exception (in completion order) is rethrown on the calling
     * thread after every chunk has finished; the pool stays usable.
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t, size_t)> &body);

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> jobs_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable idle_cv_;
    size_t in_flight_ = 0;
    bool stopping_ = false;
};

} // namespace bzk

#endif // BZK_UTIL_THREADPOOL_H_
