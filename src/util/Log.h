#ifndef BZK_UTIL_LOG_H_
#define BZK_UTIL_LOG_H_

/**
 * @file
 * Leveled logging and error-reporting helpers.
 *
 * Follows the gem5 convention: inform() for status, warn() for suspicious
 * but survivable conditions, fatal() for user errors (clean exit), and
 * panic() for internal invariant violations (abort).
 */

#include <cstdarg>
#include <string>

namespace bzk {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Quiet = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** Set the global log verbosity. Thread-safe. */
void setLogLevel(LogLevel level);

/** Get the current global log verbosity. */
LogLevel logLevel();

/** Status message users should see but not worry about. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Something looks off but the run can continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Developer-facing chatter, hidden unless LogLevel::Debug. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * The run cannot continue because of a user-facing condition (bad
 * configuration, invalid argument). Exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * An internal invariant was violated — a bug in this library. Aborts so a
 * debugger or core dump can capture the state.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace bzk

#endif // BZK_UTIL_LOG_H_
