#include "zkml/Vgg16.h"

#include <algorithm>

#include "util/Log.h"

namespace bzk {

namespace {

/** VGG-16 conv plan: channels per conv layer, 'P' = 2x2 max pool. */
struct PlanEntry
{
    char kind; // 'C' or 'P' or 'F'
    int out;
};

const PlanEntry kPlan[] = {
    {'C', 64},  {'C', 64},  {'P', 0},
    {'C', 128}, {'C', 128}, {'P', 0},
    {'C', 256}, {'C', 256}, {'C', 256}, {'P', 0},
    {'C', 512}, {'C', 512}, {'C', 512}, {'P', 0},
    {'C', 512}, {'C', 512}, {'C', 512}, {'P', 0},
    {'F', 512}, {'F', 512}, {'F', 10},
};

} // namespace

Vgg16::Vgg16(Rng &rng, int scale_bits) : scale_bits_(scale_bits)
{
    int ch = 3;
    int hw = 32;
    int conv_idx = 0;
    int fc_idx = 0;
    for (const auto &entry : kPlan) {
        Layer layer;
        VggLayerInfo li;
        if (entry.kind == 'C') {
            layer.kind = Layer::Kind::Conv;
            layer.in_ch = ch;
            layer.out_ch = entry.out;
            layer.in_hw = hw;
            layer.weights.resize(static_cast<size_t>(entry.out) * ch * 9);
            li.name = "conv" + std::to_string(++conv_idx);
            li.macs = static_cast<size_t>(entry.out) * ch * 9 * hw * hw;
            li.activations = static_cast<size_t>(entry.out) * hw * hw;
            li.weights = layer.weights.size();
            ch = entry.out;
        } else if (entry.kind == 'P') {
            layer.kind = Layer::Kind::Pool;
            layer.in_ch = ch;
            layer.out_ch = ch;
            layer.in_hw = hw;
            hw /= 2;
            li.name = "pool";
            li.activations = static_cast<size_t>(ch) * hw * hw;
        } else {
            layer.kind = Layer::Kind::Fc;
            layer.in_ch = ch * hw * hw;
            layer.out_ch = entry.out;
            layer.in_hw = 1;
            layer.weights.resize(
                static_cast<size_t>(layer.in_ch) * entry.out);
            li.name = "fc" + std::to_string(++fc_idx);
            li.macs = layer.weights.size();
            li.activations = entry.out;
            li.weights = layer.weights.size();
            ch = entry.out;
            hw = 1;
        }
        for (auto &w : layer.weights)
            w = static_cast<int8_t>(
                static_cast<int64_t>(rng.nextBounded(255)) - 127);
        layers_.push_back(std::move(layer));
        info_.push_back(std::move(li));
    }
}

size_t
Vgg16::macCount() const
{
    size_t macs = 0;
    for (const auto &li : info_)
        macs += li.macs;
    return macs;
}

size_t
Vgg16::weightCount() const
{
    size_t n = 0;
    for (const auto &li : info_)
        n += li.weights;
    return n;
}

size_t
Vgg16::proofGateCount() const
{
    size_t macs = macCount();
    size_t activations = 0;
    for (const auto &li : info_)
        activations += li.activations;
    return macs / 16 + activations * 8;
}

std::vector<int64_t>
Vgg16::forward(const Tensor &image) const
{
    Tensor cur = image;
    std::vector<int64_t> flat;
    for (const auto &layer : layers_) {
        switch (layer.kind) {
          case Layer::Kind::Conv: {
            Tensor out(layer.out_ch, cur.height, cur.width);
            for (int oc = 0; oc < layer.out_ch; ++oc)
                for (int y = 0; y < cur.height; ++y)
                    for (int x = 0; x < cur.width; ++x) {
                        int64_t acc = 0;
                        for (int ic = 0; ic < layer.in_ch; ++ic)
                            for (int ky = 0; ky < 3; ++ky)
                                for (int kx = 0; kx < 3; ++kx) {
                                    size_t wi =
                                        ((static_cast<size_t>(oc) *
                                              layer.in_ch +
                                          ic) *
                                             3 +
                                         ky) *
                                            3 +
                                        kx;
                                    acc += layer.weights[wi] *
                                           cur.atPadded(ic, y + ky - 1,
                                                        x + kx - 1);
                                }
                        // Fixed-point rescale + ReLU.
                        acc >>= scale_bits_;
                        out.at(oc, y, x) = std::max<int64_t>(0, acc);
                    }
            cur = std::move(out);
            break;
          }
          case Layer::Kind::Pool: {
            Tensor out(cur.channels, cur.height / 2, cur.width / 2);
            for (int c = 0; c < cur.channels; ++c)
                for (int y = 0; y < out.height; ++y)
                    for (int x = 0; x < out.width; ++x)
                        out.at(c, y, x) = std::max(
                            std::max(cur.at(c, 2 * y, 2 * x),
                                     cur.at(c, 2 * y, 2 * x + 1)),
                            std::max(cur.at(c, 2 * y + 1, 2 * x),
                                     cur.at(c, 2 * y + 1, 2 * x + 1)));
            cur = std::move(out);
            break;
          }
          case Layer::Kind::Fc: {
            std::vector<int64_t> out(layer.out_ch);
            for (int u = 0; u < layer.out_ch; ++u) {
                int64_t acc = 0;
                for (int i = 0; i < layer.in_ch; ++i)
                    acc += layer.weights[static_cast<size_t>(u) *
                                             layer.in_ch +
                                         i] *
                           cur.data[i];
                out[u] = std::max<int64_t>(0, acc >> scale_bits_);
            }
            // Last layer keeps raw logits (no ReLU).
            if (&layer == &layers_.back()) {
                for (int u = 0; u < layer.out_ch; ++u) {
                    int64_t acc = 0;
                    for (int i = 0; i < layer.in_ch; ++i)
                        acc += layer.weights[static_cast<size_t>(u) *
                                                 layer.in_ch +
                                             i] *
                               cur.data[i];
                    out[u] = acc >> scale_bits_;
                }
            }
            cur = Tensor(layer.out_ch, 1, 1);
            cur.data = out;
            break;
          }
        }
    }
    return cur.data;
}

int
Vgg16::predict(const Tensor &image) const
{
    auto logits = forward(image);
    return static_cast<int>(std::max_element(logits.begin(),
                                             logits.end()) -
                            logits.begin());
}

std::vector<uint8_t>
Vgg16::weightBytes() const
{
    std::vector<uint8_t> bytes;
    bytes.reserve(weightCount());
    for (const auto &layer : layers_)
        for (int8_t w : layer.weights)
            bytes.push_back(static_cast<uint8_t>(w));
    return bytes;
}

Tensor
Vgg16::randomImage(Rng &rng)
{
    Tensor img(3, 32, 32);
    for (auto &p : img.data)
        p = static_cast<int64_t>(rng.nextBounded(256));
    return img;
}

} // namespace bzk
