#include "zkml/Cnn.h"

#include "util/Log.h"

namespace bzk {

CnnConfig
CnnConfig::tiny()
{
    CnnConfig cfg;
    cfg.in_channels = 1;
    cfg.in_height = 8;
    cfg.in_width = 8;
    cfg.layers = {
        {CnnLayer::Kind::Conv3x3, 4},
        {CnnLayer::Kind::Square, 0},
        {CnnLayer::Kind::SumPool2x2, 0},
        {CnnLayer::Kind::Conv3x3, 8},
        {CnnLayer::Kind::Square, 0},
        {CnnLayer::Kind::SumPool2x2, 0},
        {CnnLayer::Kind::Dense, 10},
    };
    return cfg;
}

std::vector<CnnModel::Shape>
CnnModel::shapes() const
{
    std::vector<Shape> out;
    Shape cur{config_.in_channels, config_.in_height, config_.in_width};
    for (const auto &layer : config_.layers) {
        switch (layer.kind) {
          case CnnLayer::Kind::Conv3x3:
            cur = {layer.out, cur.h, cur.w}; // same padding
            break;
          case CnnLayer::Kind::Square:
            break;
          case CnnLayer::Kind::SumPool2x2:
            cur = {cur.c, cur.h / 2, cur.w / 2};
            break;
          case CnnLayer::Kind::Dense:
            cur = {layer.out, 1, 1};
            break;
        }
        out.push_back(cur);
    }
    return out;
}

CnnModel::CnnModel(CnnConfig config, Rng &rng) : config_(std::move(config))
{
    Shape cur{config_.in_channels, config_.in_height, config_.in_width};
    for (const auto &layer : config_.layers) {
        std::vector<int64_t> w;
        switch (layer.kind) {
          case CnnLayer::Kind::Conv3x3:
            w.resize(static_cast<size_t>(layer.out) * cur.c * 9);
            cur = {layer.out, cur.h, cur.w};
            break;
          case CnnLayer::Kind::Dense:
            w.resize(static_cast<size_t>(layer.out) * cur.c * cur.h *
                     cur.w);
            cur = {layer.out, 1, 1};
            break;
          case CnnLayer::Kind::Square:
            break;
          case CnnLayer::Kind::SumPool2x2:
            cur = {cur.c, cur.h / 2, cur.w / 2};
            break;
        }
        // Small signed weights keep exact integer growth modest.
        for (auto &v : w)
            v = static_cast<int64_t>(rng.nextBounded(7)) - 3;
        weights_.push_back(std::move(w));
    }
}

size_t
CnnModel::numWeights() const
{
    size_t n = 0;
    for (const auto &w : weights_)
        n += w.size();
    return n;
}

Tensor
CnnModel::forward(const Tensor &input) const
{
    Tensor cur = input;
    for (size_t li = 0; li < config_.layers.size(); ++li) {
        const auto &layer = config_.layers[li];
        const auto &w = weights_[li];
        switch (layer.kind) {
          case CnnLayer::Kind::Conv3x3: {
            Tensor out(layer.out, cur.height, cur.width);
            for (int oc = 0; oc < layer.out; ++oc)
                for (int y = 0; y < cur.height; ++y)
                    for (int x = 0; x < cur.width; ++x) {
                        int64_t acc = 0;
                        for (int ic = 0; ic < cur.channels; ++ic)
                            for (int ky = 0; ky < 3; ++ky)
                                for (int kx = 0; kx < 3; ++kx) {
                                    size_t wi =
                                        ((static_cast<size_t>(oc) *
                                              cur.channels +
                                          ic) *
                                             3 +
                                         ky) *
                                            3 +
                                        kx;
                                    acc += w[wi] *
                                           cur.atPadded(ic, y + ky - 1,
                                                        x + kx - 1);
                                }
                        out.at(oc, y, x) = acc;
                    }
            cur = std::move(out);
            break;
          }
          case CnnLayer::Kind::Square: {
            for (auto &v : cur.data)
                v = v * v;
            break;
          }
          case CnnLayer::Kind::SumPool2x2: {
            Tensor out(cur.channels, cur.height / 2, cur.width / 2);
            for (int c = 0; c < cur.channels; ++c)
                for (int y = 0; y < out.height; ++y)
                    for (int x = 0; x < out.width; ++x)
                        out.at(c, y, x) = cur.at(c, 2 * y, 2 * x) +
                                          cur.at(c, 2 * y, 2 * x + 1) +
                                          cur.at(c, 2 * y + 1, 2 * x) +
                                          cur.at(c, 2 * y + 1, 2 * x + 1);
            cur = std::move(out);
            break;
          }
          case CnnLayer::Kind::Dense: {
            size_t in_size = cur.size();
            Tensor out(layer.out, 1, 1);
            for (int u = 0; u < layer.out; ++u) {
                int64_t acc = 0;
                for (size_t i = 0; i < in_size; ++i)
                    acc += w[static_cast<size_t>(u) * in_size + i] *
                           cur.data[i];
                out.data[u] = acc;
            }
            cur = std::move(out);
            break;
          }
        }
    }
    return cur;
}

size_t
CnnModel::macCount() const
{
    size_t macs = 0;
    Shape cur{config_.in_channels, config_.in_height, config_.in_width};
    for (const auto &layer : config_.layers) {
        switch (layer.kind) {
          case CnnLayer::Kind::Conv3x3:
            macs += static_cast<size_t>(layer.out) * cur.c * 9 * cur.h *
                    cur.w;
            cur = {layer.out, cur.h, cur.w};
            break;
          case CnnLayer::Kind::Square:
            macs += static_cast<size_t>(cur.c) * cur.h * cur.w;
            break;
          case CnnLayer::Kind::SumPool2x2:
            cur = {cur.c, cur.h / 2, cur.w / 2};
            break;
          case CnnLayer::Kind::Dense:
            macs += static_cast<size_t>(layer.out) * cur.c * cur.h * cur.w;
            cur = {layer.out, 1, 1};
            break;
        }
    }
    return macs;
}

size_t
CnnModel::gateCount() const
{
    // The compiler emits one mul per MAC plus one add per accumulation
    // step; sum-pools add pure adds. ~2 gates per MAC is a faithful
    // upper bound for this direct (non-FFT) arithmetization.
    return 2 * macCount();
}

std::vector<uint8_t>
CnnModel::weightBytes() const
{
    std::vector<uint8_t> bytes;
    bytes.reserve(numWeights() * 8);
    for (const auto &w : weights_)
        for (int64_t v : w) {
            uint64_t u = static_cast<uint64_t>(v);
            for (int i = 0; i < 8; ++i)
                bytes.push_back(static_cast<uint8_t>(u >> (8 * i)));
        }
    return bytes;
}

} // namespace bzk
