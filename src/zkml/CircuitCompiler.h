#ifndef BZK_ZKML_CIRCUITCOMPILER_H_
#define BZK_ZKML_CIRCUITCOMPILER_H_

/**
 * @file
 * Compile a CnnModel inference into an arithmetic circuit (the paper's
 * Sec. 5 preprocessing step: "we compile the function for the model
 * inference into a circuit").
 *
 * The customer's image pixels are public inputs; the model weights are
 * private witness wires (the service provider's secret). The circuit's
 * final wires compute the logits, so a proof shows the committed model
 * produced the returned prediction.
 */

#include <vector>

#include "circuit/Circuit.h"
#include "zkml/Cnn.h"

namespace bzk {

/** A compiled inference circuit plus its wire bookkeeping. */
template <typename F>
struct CompiledCnn
{
    Circuit<F> circuit;
    /** Output (logit) wires in order. */
    std::vector<WireId> outputs;
};

/** Encode a signed integer as a field element. */
template <typename F>
F
fieldFromInt(int64_t v)
{
    return v >= 0 ? F::fromUint(static_cast<uint64_t>(v))
                  : -F::fromUint(static_cast<uint64_t>(-v));
}

/** Encode a whole integer vector. */
template <typename F>
std::vector<F>
fieldsFromInts(const std::vector<int64_t> &values)
{
    std::vector<F> out;
    out.reserve(values.size());
    for (int64_t v : values)
        out.push_back(fieldFromInt<F>(v));
    return out;
}

/**
 * Build the inference circuit for @p model. Wire layout: first all
 * input pixels (public), then all weights (witness), then the gates of
 * each layer in order.
 */
template <typename F>
CompiledCnn<F>
compileCnn(const CnnModel &model)
{
    const CnnConfig &cfg = model.config();
    CompiledCnn<F> out;
    Circuit<F> &c = out.circuit;

    struct WireTensor
    {
        int channels, height, width;
        std::vector<WireId> wires;

        WireId &
        at(int ch, int y, int x)
        {
            return wires[(static_cast<size_t>(ch) * height + y) * width +
                         x];
        }
    };

    WireTensor cur{cfg.in_channels, cfg.in_height, cfg.in_width, {}};
    cur.wires.resize(static_cast<size_t>(cfg.in_channels) *
                     cfg.in_height * cfg.in_width);
    for (auto &w : cur.wires)
        w = c.addInput();

    // Witness wires for every weight, layer by layer.
    std::vector<std::vector<WireId>> weight_wires;
    for (const auto &layer_weights : model.weights()) {
        std::vector<WireId> ws(layer_weights.size());
        for (auto &w : ws)
            w = c.addWitness();
        weight_wires.push_back(std::move(ws));
    }
    WireId zero = c.addConst(F::zero());

    for (size_t li = 0; li < cfg.layers.size(); ++li) {
        const auto &layer = cfg.layers[li];
        const auto &ws = weight_wires[li];
        switch (layer.kind) {
          case CnnLayer::Kind::Conv3x3: {
            WireTensor next{layer.out, cur.height, cur.width, {}};
            next.wires.resize(static_cast<size_t>(layer.out) *
                              cur.height * cur.width);
            for (int oc = 0; oc < layer.out; ++oc)
                for (int y = 0; y < cur.height; ++y)
                    for (int x = 0; x < cur.width; ++x) {
                        WireId acc = zero;
                        for (int ic = 0; ic < cur.channels; ++ic)
                            for (int ky = 0; ky < 3; ++ky)
                                for (int kx = 0; kx < 3; ++kx) {
                                    int yy = y + ky - 1;
                                    int xx = x + kx - 1;
                                    if (yy < 0 || yy >= cur.height ||
                                        xx < 0 || xx >= cur.width)
                                        continue; // zero padding
                                    size_t wi =
                                        ((static_cast<size_t>(oc) *
                                              cur.channels +
                                          ic) *
                                             3 +
                                         ky) *
                                            3 +
                                        kx;
                                    WireId prod = c.mul(
                                        ws[wi], cur.at(ic, yy, xx));
                                    acc = c.add(acc, prod);
                                }
                        next.at(oc, y, x) = acc;
                    }
            cur = std::move(next);
            break;
          }
          case CnnLayer::Kind::Square: {
            for (auto &w : cur.wires)
                w = c.mul(w, w);
            break;
          }
          case CnnLayer::Kind::SumPool2x2: {
            WireTensor next{cur.channels, cur.height / 2, cur.width / 2,
                            {}};
            next.wires.resize(static_cast<size_t>(cur.channels) *
                              (cur.height / 2) * (cur.width / 2));
            for (int ch = 0; ch < cur.channels; ++ch)
                for (int y = 0; y < next.height; ++y)
                    for (int x = 0; x < next.width; ++x) {
                        WireId s = c.add(cur.at(ch, 2 * y, 2 * x),
                                         cur.at(ch, 2 * y, 2 * x + 1));
                        s = c.add(s, cur.at(ch, 2 * y + 1, 2 * x));
                        s = c.add(s, cur.at(ch, 2 * y + 1, 2 * x + 1));
                        next.at(ch, y, x) = s;
                    }
            cur = std::move(next);
            break;
          }
          case CnnLayer::Kind::Dense: {
            size_t in_size = cur.wires.size();
            WireTensor next{layer.out, 1, 1, {}};
            next.wires.resize(layer.out);
            for (int u = 0; u < layer.out; ++u) {
                WireId acc = zero;
                for (size_t i = 0; i < in_size; ++i) {
                    WireId prod = c.mul(
                        ws[static_cast<size_t>(u) * in_size + i],
                        cur.wires[i]);
                    acc = c.add(acc, prod);
                }
                next.wires[u] = acc;
            }
            cur = std::move(next);
            break;
          }
        }
    }
    out.outputs = cur.wires;
    return out;
}

/** Flatten a model's weights into the circuit's witness order. */
template <typename F>
std::vector<F>
witnessFromModel(const CnnModel &model)
{
    std::vector<F> witness;
    witness.reserve(model.numWeights());
    for (const auto &layer_weights : model.weights())
        for (int64_t w : layer_weights)
            witness.push_back(fieldFromInt<F>(w));
    return witness;
}

/** Flatten an input tensor into the circuit's public-input order. */
template <typename F>
std::vector<F>
inputsFromTensor(const Tensor &t)
{
    return fieldsFromInts<F>(t.data);
}

} // namespace bzk

#endif // BZK_ZKML_CIRCUITCOMPILER_H_
