#ifndef BZK_ZKML_LAYEREDCNNCOMPILER_H_
#define BZK_ZKML_LAYEREDCNNCOMPILER_H_

/**
 * @file
 * Compile a CnnModel into a *layered* circuit and prove its inference
 * with the GKR protocol — the zkCNN architecture the paper builds on
 * for its verifiable-ML application.
 *
 * Layer 0 holds [image | all weights | (implicit zero padding)];
 * convolutions and dense layers become one multiplication layer plus a
 * binary add-reduction tree; squares and sum-pools map directly. Values
 * needed later (weights of deeper CNN layers, the running zero) are
 * relayed through intermediate layers with identity gates
 * (add(x, zero)), since GKR gates may only read the previous layer.
 *
 * In this verifiable-outsourcing demo both image and weights are public
 * GKR inputs; the SNARK paths (Snark/FullSnark with the compiled gate
 * circuit) cover the hidden-model MLaaS setting.
 */

#include <functional>
#include <vector>

#include "gkr/LayeredCircuit.h"
#include "zkml/CircuitCompiler.h"
#include "zkml/Cnn.h"

namespace bzk {

/** A CNN compiled to a layered circuit. */
template <typename F>
struct LayeredCnn
{
    LayeredCircuit<F> circuit;
    /** Number of image slots at the head of layer 0. */
    size_t image_inputs = 0;
    /** Total layer-0 inputs (image + weights). */
    size_t total_inputs = 0;
    /** Output slots holding the logits (prefix of the output layer). */
    size_t num_outputs = 0;
};

namespace detail {

/** Gate-emission helper for one layer under construction. */
class LayerSink
{
  public:
    explicit LayerSink(uint32_t zero_below) : zero_below_(zero_below) {}

    /** Emit a gate; returns its slot in the new layer. */
    uint32_t
    emit(LayeredGate::Kind kind, uint32_t a, uint32_t b)
    {
        gates.push_back({kind, a, b});
        return static_cast<uint32_t>(gates.size() - 1);
    }

    /** Relay a previous-layer value unchanged. */
    uint32_t
    relay(uint32_t below)
    {
        return emit(LayeredGate::Kind::Add, below, zero_below_);
    }

    std::vector<LayeredGate> gates;

  private:
    uint32_t zero_below_;
};

} // namespace detail

/** Compile @p model into a layered circuit for GKR proving. */
template <typename F>
LayeredCnn<F>
compileCnnLayered(const CnnModel &model)
{
    const CnnConfig &cfg = model.config();
    LayeredCnn<F> out;

    // ---- layer 0 layout: image, then each CNN layer's weights -------
    size_t image_size = static_cast<size_t>(cfg.in_channels) *
                        cfg.in_height * cfg.in_width;
    out.image_inputs = image_size;
    std::vector<std::vector<uint32_t>> weight_idx;
    uint32_t cursor = static_cast<uint32_t>(image_size);
    for (const auto &w : model.weights()) {
        std::vector<uint32_t> idx(w.size());
        for (auto &i : idx)
            i = cursor++;
        weight_idx.push_back(std::move(idx));
    }
    out.total_inputs = cursor;
    unsigned input_vars = 0;
    while ((size_t{1} << input_vars) < out.total_inputs + 1)
        ++input_vars;
    out.circuit = LayeredCircuit<F>(input_vars);
    uint32_t zero = cursor; // a padded (hence zero) layer-0 slot

    // Activation indices in the current topmost layer, in CHW order.
    struct Shape
    {
        int c, h, w;
    };
    Shape shape{cfg.in_channels, cfg.in_height, cfg.in_width};
    std::vector<uint32_t> act(image_size);
    for (size_t i = 0; i < image_size; ++i)
        act[i] = static_cast<uint32_t>(i);

    // Push one layer: body emits the new activations; weights of CNN
    // layers >= first_needed relay through, as does the zero.
    auto push_layer = [&](size_t first_needed,
                          const std::function<void(detail::LayerSink &)>
                              &body) {
        detail::LayerSink sink(zero);
        body(sink);
        for (size_t l = first_needed; l < weight_idx.size(); ++l)
            for (auto &i : weight_idx[l])
                i = sink.relay(i);
        zero = sink.relay(zero);
        out.circuit.addLayer(std::move(sink.gates));
    };

    // Binary add-reduction of per-output product groups.
    auto reduce_groups =
        [&](std::vector<std::vector<uint32_t>> groups,
            size_t first_needed) {
            bool more = true;
            while (more) {
                more = false;
                push_layer(first_needed, [&](detail::LayerSink &sink) {
                    for (auto &group : groups) {
                        std::vector<uint32_t> next;
                        for (size_t i = 0; i + 1 < group.size(); i += 2)
                            next.push_back(
                                sink.emit(LayeredGate::Kind::Add,
                                          group[i], group[i + 1]));
                        if (group.size() % 2)
                            next.push_back(sink.relay(group.back()));
                        if (next.size() > 1)
                            more = true;
                        group = std::move(next);
                    }
                });
            }
            std::vector<uint32_t> heads(groups.size());
            for (size_t i = 0; i < groups.size(); ++i)
                heads[i] = groups[i][0];
            return heads;
        };

    auto at = [&](const Shape &s, int c, int y, int x) {
        return act[(static_cast<size_t>(c) * s.h + y) * s.w + x];
    };

    for (size_t li = 0; li < cfg.layers.size(); ++li) {
        const CnnLayer &layer = cfg.layers[li];
        switch (layer.kind) {
          case CnnLayer::Kind::Conv3x3: {
            // One product layer, then an add-reduction tree.
            std::vector<std::vector<uint32_t>> groups;
            push_layer(li + 1, [&](detail::LayerSink &sink) {
                for (int oc = 0; oc < layer.out; ++oc)
                    for (int y = 0; y < shape.h; ++y)
                        for (int x = 0; x < shape.w; ++x) {
                            std::vector<uint32_t> group;
                            for (int ic = 0; ic < shape.c; ++ic)
                                for (int ky = 0; ky < 3; ++ky)
                                    for (int kx = 0; kx < 3; ++kx) {
                                        int yy = y + ky - 1;
                                        int xx = x + kx - 1;
                                        if (yy < 0 || yy >= shape.h ||
                                            xx < 0 || xx >= shape.w)
                                            continue;
                                        size_t wi =
                                            ((static_cast<size_t>(oc) *
                                                  shape.c +
                                              ic) *
                                                 3 +
                                             ky) *
                                                3 +
                                            kx;
                                        group.push_back(sink.emit(
                                            LayeredGate::Kind::Mul,
                                            weight_idx[li][wi],
                                            at(shape, ic, yy, xx)));
                                    }
                            groups.push_back(std::move(group));
                        }
            });
            act = reduce_groups(std::move(groups), li + 1);
            shape = {layer.out, shape.h, shape.w};
            break;
          }
          case CnnLayer::Kind::Square: {
            push_layer(li + 1, [&](detail::LayerSink &sink) {
                for (auto &a : act)
                    a = sink.emit(LayeredGate::Kind::Mul, a, a);
            });
            break;
          }
          case CnnLayer::Kind::SumPool2x2: {
            std::vector<std::vector<uint32_t>> groups;
            Shape next{shape.c, shape.h / 2, shape.w / 2};
            for (int c = 0; c < shape.c; ++c)
                for (int y = 0; y < next.h; ++y)
                    for (int x = 0; x < next.w; ++x)
                        groups.push_back(
                            {at(shape, c, 2 * y, 2 * x),
                             at(shape, c, 2 * y, 2 * x + 1),
                             at(shape, c, 2 * y + 1, 2 * x),
                             at(shape, c, 2 * y + 1, 2 * x + 1)});
            act = reduce_groups(std::move(groups), li + 1);
            shape = next;
            break;
          }
          case CnnLayer::Kind::Dense: {
            size_t in_size = act.size();
            std::vector<std::vector<uint32_t>> groups;
            auto acts_in = act;
            push_layer(li + 1, [&](detail::LayerSink &sink) {
                for (int u = 0; u < layer.out; ++u) {
                    std::vector<uint32_t> group;
                    for (size_t i = 0; i < in_size; ++i)
                        group.push_back(sink.emit(
                            LayeredGate::Kind::Mul,
                            weight_idx[li][static_cast<size_t>(u) *
                                               in_size +
                                           i],
                            acts_in[i]));
                    groups.push_back(std::move(group));
                }
            });
            act = reduce_groups(std::move(groups), li + 1);
            shape = {layer.out, 1, 1};
            break;
          }
        }
    }

    // Final relay layer so the logits sit at slots 0..n-1 unmixed with
    // relayed junk (the loop above leaves them first already, but a
    // defensive pass keeps the contract explicit).
    out.num_outputs = act.size();
    return out;
}

/** Layer-0 input vector for an image under @p model. */
template <typename F>
std::vector<F>
layeredCnnInputs(const CnnModel &model, const Tensor &image)
{
    std::vector<F> inputs = fieldsFromInts<F>(image.data);
    for (const auto &w : model.weights())
        for (int64_t v : w)
            inputs.push_back(fieldFromInt<F>(v));
    return inputs;
}

} // namespace bzk

#endif // BZK_ZKML_LAYEREDCNNCOMPILER_H_
