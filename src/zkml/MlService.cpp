#include "zkml/MlService.h"

#include "core/Snark.h"
#include "exec/ExecContext.h"
#include "obs/Metrics.h"
#include "util/Log.h"
#include "zkml/CircuitCompiler.h"

namespace bzk {

VerifiableMlService::VerifiableMlService(gpusim::Device &dev, Rng &rng,
                                         SystemOptions opt)
    : dev_(dev), opt_(opt), model_(rng)
{
    // Preprocessing (Sec. 5): Merkle-commit the model parameters. The
    // root binds the provider: every proof's circuit includes the
    // committed weights, so substituting a model changes the root.
    exec::ExecConfig exec_cfg;
    exec_cfg.threads = opt_.threads;
    exec::ExecContext exec(exec_cfg);
    MerkleTree tree = MerkleTree::build(model_.weightBytes(), &exec);
    model_root_ = tree.root();

    size_t gates = model_.proofGateCount();
    n_vars_ = 0;
    while ((size_t{1} << n_vars_) < gates)
        ++n_vars_;
    inform("VerifiableMlService: VGG-16 with %zu MACs compiles to "
           "%zu proof gates (2^%u table)",
           model_.macCount(), gates, n_vars_);
}

MlServiceBatchResult
VerifiableMlService::serveBatch(size_t batch, Rng &rng,
                                size_t functional_proofs)
{
    MlServiceBatchResult result;
    // Prediction phase: the ML engine answers every request (real
    // fixed-point inference; one per batch element would dominate the
    // host here, so we serve a handful and reuse the engine's output
    // pattern for sizing — the proving cost does not depend on pixel
    // values).
    size_t engine_runs = std::min<size_t>(batch, 2);
    for (size_t i = 0; i < engine_runs; ++i) {
        Tensor image = Vgg16::randomImage(rng);
        result.predictions.push_back(model_.predict(image));
    }

    // Proving phase: one scheduler task per prediction at the compiled
    // circuit scale, submitted through the heterogeneous-batch API.
    // Functional proving at VGG scale is out of reach on this host; the
    // tiny-CNN end-to-end path is exercised in tests/examples instead
    // (see DESIGN.md).
    SystemOptions opt = opt_;
    opt.functional = 0;
    PipelinedZkpSystem system(dev_, opt);
    system.setObservability(metrics_, trace_);
    std::vector<sched::ProofTask> tasks;
    tasks.reserve(batch);
    for (size_t i = 0; i < batch; ++i)
        tasks.push_back(makeProofTask(n_vars_, opt.seed, i));
    result.proving = system.runTasks(std::move(tasks));

    if (metrics_) {
        auto &reg = *metrics_;
        reg.counter("bzk_ml_predictions_total",
                    "customer predictions served")
            .add(static_cast<double>(batch));
        reg.counter("bzk_ml_functional_proofs_total",
                    "real reduced-CNN proofs generated")
            .add(static_cast<double>(functional_proofs));
    }

    // Optionally exercise the full Figure 8 loop cryptographically on
    // a reduced CNN: real circuit, real proof, real verification.
    if (functional_proofs > 0) {
        CnnModel tiny(CnnConfig::tiny(), rng);
        auto compiled = compileCnn<Fr>(tiny);
        auto witness = witnessFromModel<Fr>(tiny);
        exec::ExecConfig exec_cfg;
        exec_cfg.threads = opt_.threads;
        exec::ExecContext exec(exec_cfg);
        for (size_t i = 0; i < functional_proofs; ++i) {
            Tensor image(tiny.config().in_channels,
                         tiny.config().in_height, tiny.config().in_width);
            for (auto &p : image.data)
                p = static_cast<int64_t>(rng.nextBounded(8));
            auto inputs = inputsFromTensor<Fr>(image);
            auto assignment = compiled.circuit.evaluate(inputs, witness);
            auto tables = compiled.circuit.buildTables(assignment);
            Snark<Fr> snark(tables.n_vars, opt_.seed,
                            opt_.column_openings);
            snark.setExec(&exec);
            auto proof = snark.prove(tables, inputs);
            result.functional_verified =
                result.functional_verified &&
                snark.verify(proof, inputs);
            ++result.functional_proofs;
        }
    }
    return result;
}

} // namespace bzk
