#ifndef BZK_ZKML_TENSOR_H_
#define BZK_ZKML_TENSOR_H_

/**
 * @file
 * Minimal CHW integer tensor for the fixed-point ML engine.
 *
 * The verifiable-ML pipeline works over quantized integers so that the
 * inference the service performs and the arithmetic circuit the prover
 * commits to agree exactly (field elements encode the same integers).
 */

#include <cstdint>
#include <vector>

#include "util/Log.h"

namespace bzk {

/** Channel-major 3-D integer tensor. */
struct Tensor
{
    int channels = 0;
    int height = 0;
    int width = 0;
    std::vector<int64_t> data;

    Tensor() = default;

    Tensor(int c, int h, int w)
        : channels(c), height(h), width(w),
          data(static_cast<size_t>(c) * h * w, 0)
    {
    }

    /** Element count. */
    size_t size() const { return data.size(); }

    /** Mutable element accessor. */
    int64_t &
    at(int c, int y, int x)
    {
        return data[(static_cast<size_t>(c) * height + y) * width + x];
    }

    /** Const element accessor. */
    int64_t
    at(int c, int y, int x) const
    {
        return data[(static_cast<size_t>(c) * height + y) * width + x];
    }

    /** Bounds-checked accessor returning 0 outside (zero padding). */
    int64_t
    atPadded(int c, int y, int x) const
    {
        if (y < 0 || y >= height || x < 0 || x >= width)
            return 0;
        return at(c, y, x);
    }
};

} // namespace bzk

#endif // BZK_ZKML_TENSOR_H_
