#ifndef BZK_ZKML_MLSERVICE_H_
#define BZK_ZKML_MLSERVICE_H_

/**
 * @file
 * The verifiable machine-learning service of the paper's Figure 8:
 * a Merkle commitment to the model, a prediction engine, and the
 * pipelined ZKP system generating one proof per prediction.
 */

#include <cstddef>

#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"
#include "hash/Sha256.h"
#include "merkle/MerkleTree.h"
#include "util/Rng.h"
#include "zkml/Vgg16.h"

namespace bzk {

/** One served prediction plus its proving statistics. */
struct MlServiceBatchResult
{
    /** Predictions for the batch, in request order. */
    std::vector<int> predictions;
    /** Batch proving run (throughput/latency for Table 11). */
    SystemRunResult proving;
    /**
     * Real proofs of tiny-CNN inferences produced alongside the
     * VGG-scale timing run (when functional_proofs > 0), all verified.
     */
    size_t functional_proofs = 0;
    bool functional_verified = true;
};

/** MLaaS provider with verifiable predictions (Figure 8). */
class VerifiableMlService
{
  public:
    /**
     * Preprocessing stage: trains-in a synthetic VGG-16, commits to its
     * weights (the Merkle root customers pin), and compiles the
     * inference circuit scale.
     */
    VerifiableMlService(gpusim::Device &dev, Rng &rng,
                        SystemOptions opt = {});

    /** The model commitment sent to customers once. */
    const Digest &modelCommitment() const { return model_root_; }

    /** The underlying model (the provider's secret). */
    const Vgg16 &model() const { return model_; }

    /** log2 of the compiled circuit's padded constraint-table size. */
    unsigned circuitVars() const { return n_vars_; }

    /**
     * Attach observability sinks, forwarded to the pipelined system
     * each serveBatch() constructs (either may be nullptr, the
     * default). Pure observers; not owned.
     */
    void setObservability(obs::MetricsRegistry *metrics,
                          obs::TraceRecorder *trace)
    {
        metrics_ = metrics;
        trace_ = trace;
    }

    /**
     * Prediction + proving phase: serve @p batch customer images and
     * batch-generate their proofs through the pipelined system.
     * @param functional_proofs additionally generate (and verify) this
     *        many *real* inference proofs on a reduced CNN, exercising
     *        the full Figure 8 loop cryptographically.
     */
    MlServiceBatchResult serveBatch(size_t batch, Rng &rng,
                                    size_t functional_proofs = 0);

  private:
    gpusim::Device &dev_;
    SystemOptions opt_;
    Vgg16 model_;
    Digest model_root_;
    unsigned n_vars_;
    obs::MetricsRegistry *metrics_ = nullptr;
    obs::TraceRecorder *trace_ = nullptr;
};

} // namespace bzk

#endif // BZK_ZKML_MLSERVICE_H_
