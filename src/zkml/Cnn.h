#ifndef BZK_ZKML_CNN_H_
#define BZK_ZKML_CNN_H_

/**
 * @file
 * A small circuit-friendly CNN: configuration, quantized inference
 * engine, and gate accounting.
 *
 * Layer kinds are restricted to operations with exact arithmetic-circuit
 * analogues: convolutions, square activations (the standard
 * circuit-friendly substitute for ReLU in e.g. zkCNN-style systems),
 * sum pooling, and dense layers. The engine computes in plain int64 with
 * no rescaling, so CircuitCompiler can reproduce every wire value
 * exactly over the field.
 */

#include <cstdint>
#include <vector>

#include "util/Rng.h"
#include "zkml/Tensor.h"

namespace bzk {

/** One layer of a CnnConfig. */
struct CnnLayer
{
    enum class Kind { Conv3x3, Square, SumPool2x2, Dense };

    Kind kind = Kind::Conv3x3;
    /** Output channels (Conv) or output units (Dense). */
    int out = 0;
};

/** Network shape description. */
struct CnnConfig
{
    int in_channels = 1;
    int in_height = 8;
    int in_width = 8;
    std::vector<CnnLayer> layers;

    /** A tiny conv-square-pool-dense network for tests/examples. */
    static CnnConfig tiny();
};

/** A concrete network: config plus quantized weights. */
class CnnModel
{
  public:
    /** Initialize with small pseudo-random weights from @p rng. */
    CnnModel(CnnConfig config, Rng &rng);

    const CnnConfig &config() const { return config_; }

    /** Flat weight vector per layer (conv: [out][in][3][3]). */
    const std::vector<std::vector<int64_t>> &weights() const
    {
        return weights_;
    }

    /** Total weight count. */
    size_t numWeights() const;

    /** Exact integer inference (no rescaling). */
    Tensor forward(const Tensor &input) const;

    /** Multiply-accumulate count of one inference. */
    size_t macCount() const;

    /** Gates the circuit compiler will emit for one inference. */
    size_t gateCount() const;

    /** Serialize all weights to bytes (for the Merkle commitment). */
    std::vector<uint8_t> weightBytes() const;

  private:
    /** Shape of each layer's output given the config. */
    struct Shape
    {
        int c, h, w;
    };
    std::vector<Shape> shapes() const;

    CnnConfig config_;
    std::vector<std::vector<int64_t>> weights_;
};

} // namespace bzk

#endif // BZK_ZKML_CNN_H_
