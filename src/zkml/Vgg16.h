#ifndef BZK_ZKML_VGG16_H_
#define BZK_ZKML_VGG16_H_

/**
 * @file
 * VGG-16 for CIFAR-10 scale inference (paper Sec. 5 / Table 11).
 *
 * We cannot reproduce the paper's 93.93% accuracy without training data
 * and a training stack (documented substitution in DESIGN.md); what
 * matters for proof generation is the circuit *structure*, which depends
 * only on the layer shapes. This module provides the standard VGG-16
 * configuration on 32x32x3 inputs with synthetically initialized
 * weights, a rescaling fixed-point forward pass, and the gate accounting
 * that sizes the proof workload.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "util/Rng.h"
#include "zkml/Tensor.h"

namespace bzk {

/** One VGG layer's shape info and cost. */
struct VggLayerInfo
{
    std::string name;
    size_t macs = 0;
    size_t activations = 0;
    size_t weights = 0;
};

/** VGG-16 adapted to CIFAR-10 (13 conv + 3 FC). */
class Vgg16
{
  public:
    /** Build with synthetic (pseudo-random) quantized weights. */
    explicit Vgg16(Rng &rng, int scale_bits = 8);

    /** Per-layer structure (13 conv, 5 pools, 3 fc). */
    const std::vector<VggLayerInfo> &layerInfo() const { return info_; }

    /** Total multiply-accumulates of one inference (~313M). */
    size_t macCount() const;

    /** Total weights (~15M for the CIFAR variant). */
    size_t weightCount() const;

    /**
     * Multiplication gates of the compiled proof circuit. Uses the
     * zkCNN-style arithmetization the paper cites for Sec. 5: the
     * sum-check-friendly FFT convolution brings the per-MAC proof cost
     * down ~16x, while quantized activations add ~8 range-check gates
     * each. See EXPERIMENTS.md (Table 11) for the derivation.
     */
    size_t proofGateCount() const;

    /** Rescaling fixed-point inference; returns the 10 logits. */
    std::vector<int64_t> forward(const Tensor &image) const;

    /** Predicted class of an image. */
    int predict(const Tensor &image) const;

    /** Serialize all weights (for the model commitment). */
    std::vector<uint8_t> weightBytes() const;

    /** Generate a synthetic 32x32x3 "CIFAR" image. */
    static Tensor randomImage(Rng &rng);

  private:
    struct Layer
    {
        enum class Kind { Conv, Pool, Fc } kind;
        int in_ch = 0;
        int out_ch = 0;
        int in_hw = 0; // spatial size at layer input
        std::vector<int8_t> weights;
    };

    std::vector<Layer> layers_;
    std::vector<VggLayerInfo> info_;
    int scale_bits_;
};

} // namespace bzk

#endif // BZK_ZKML_VGG16_H_
