#ifndef BZK_GPUSIM_BATCHSTATS_H_
#define BZK_GPUSIM_BATCHSTATS_H_

/**
 * @file
 * Common result record for batch executions of the ZKP modules, on the
 * simulated GPU or on the host CPU. Carries exactly the quantities the
 * paper's evaluation tables report: throughput, per-item latency, device
 * memory and core utilization.
 */

#include <cstddef>
#include <cstdint>

namespace bzk::gpusim {

/** Timing/resource summary of one batch run. */
struct BatchStats
{
    /** Number of items (trees / proofs / codes) in the batch. */
    size_t batch = 0;
    /** Makespan: time until the last item completed, ms. */
    double total_ms = 0.0;
    /** Completion time of the first item, ms (Table 6's latency). */
    double first_latency_ms = 0.0;
    /** Time one item spends in flight once steady, ms. */
    double item_latency_ms = 0.0;
    /** Items completed per millisecond (Tables 3-5). */
    double throughput_per_ms = 0.0;
    /** Peak device memory during the run, bytes (Table 10). */
    uint64_t peak_device_bytes = 0;
    /** Useful lane-milliseconds spent. */
    double busy_lane_ms = 0.0;
    /** Mean fraction of device lanes doing useful work (Figure 9). */
    double utilization = 0.0;
};

} // namespace bzk::gpusim

#endif // BZK_GPUSIM_BATCHSTATS_H_
