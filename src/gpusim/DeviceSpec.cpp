#include "gpusim/DeviceSpec.h"

namespace bzk::gpusim {

DeviceSpec
DeviceSpec::v100()
{
    return DeviceSpec{
        .name = "V100",
        .cuda_cores = 5120,
        .clock_ghz = 1.53,
        .mem_bw_gbps = 900.0,
        .link_gbps = 15.75,
        .link_name = "PCIe 3.0 x16",
        .device_mem_bytes = 32ULL << 30,
    };
}

DeviceSpec
DeviceSpec::a100()
{
    return DeviceSpec{
        .name = "A100",
        .cuda_cores = 6912,
        .clock_ghz = 1.41,
        .mem_bw_gbps = 1555.0,
        .link_gbps = 31.5,
        .link_name = "PCIe 4.0 x16",
        .device_mem_bytes = 40ULL << 30,
    };
}

DeviceSpec
DeviceSpec::rtx3090ti()
{
    return DeviceSpec{
        .name = "3090Ti",
        .cuda_cores = 10752,
        .clock_ghz = 1.86,
        .mem_bw_gbps = 1008.0,
        .link_gbps = 31.5,
        .link_name = "PCIe 4.0 x16",
        .device_mem_bytes = 24ULL << 30,
    };
}

DeviceSpec
DeviceSpec::h100()
{
    return DeviceSpec{
        .name = "H100",
        .cuda_cores = 16896,
        .clock_ghz = 1.83,
        .mem_bw_gbps = 3350.0,
        .link_gbps = 63.0,
        .link_name = "PCIe 5.0 x16",
        .device_mem_bytes = 80ULL << 30,
    };
}

DeviceSpec
DeviceSpec::gh200()
{
    return DeviceSpec{
        .name = "GH200",
        .cuda_cores = 16896,
        .clock_ghz = 1.98,
        .mem_bw_gbps = 4000.0,
        .link_gbps = 220.0,
        .link_name = "NVLink-C2C",
        .device_mem_bytes = 96ULL << 30,
    };
}

std::vector<DeviceSpec>
DeviceSpec::allPresets()
{
    return {v100(), a100(), rtx3090ti(), h100(), gh200()};
}

} // namespace bzk::gpusim
