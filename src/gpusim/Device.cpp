#include "gpusim/Device.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "gpusim/Calibration.h"
#include "gpusim/FaultInjector.h"
#include "obs/Trace.h"
#include "util/Log.h"

namespace bzk::gpusim {

namespace {

constexpr double kEps = 1e-12;

/** Bytes moved per millisecond on a link of @p gbps GB/s. */
double
bytesPerMs(double gbps)
{
    return gbps * 1e6;
}

} // namespace

Device::Device(DeviceSpec spec) : spec_(std::move(spec))
{
    if (spec_.cuda_cores == 0 || spec_.clock_ghz <= 0)
        fatal("Device: spec '%s' has no compute", spec_.name.c_str());
}

StreamId
Device::createStream()
{
    stream_tail_.push_back(0.0);
    return static_cast<StreamId>(stream_tail_.size() - 1);
}

double
Device::kernelDurationMs(const KernelDesc &kernel) const
{
    double cores = static_cast<double>(spec_.cuda_cores);
    double lanes = kernel.lanes <= 0 ? cores : std::min(kernel.lanes, cores);

    double wall_cycles = 0.0;
    if (!kernel.profile.empty()) {
        for (const auto &seg : kernel.profile)
            wall_cycles += seg.cycles;
    } else {
        double threads = static_cast<double>(kernel.threads);
        double lanes_used = std::min(threads, lanes);
        if (lanes_used < 1.0)
            lanes_used = 1.0;
        double waves = std::ceil(threads / lanes_used);
        wall_cycles = waves * kernel.cycles_per_thread;
    }

    double compute_ms = wall_cycles / spec_.cyclesPerMs();
    // A kernel holding a fraction of the lanes gets (roughly) that
    // fraction of device bandwidth when co-running with others.
    double bw_share = spec_.mem_bw_gbps * std::min(1.0, lanes / cores);
    double mem_ms = kernel.mem_bytes == 0
                        ? 0.0
                        : static_cast<double>(kernel.mem_bytes) /
                              bytesPerMs(bw_share);
    return kKernelLaunchMs + std::max(compute_ms, mem_ms);
}

double
Device::copyDurationMs(uint64_t bytes) const
{
    double effective = spec_.link_gbps * kPcieEfficiency;
    return static_cast<double>(bytes) / bytesPerMs(effective);
}

double
Device::earliestComputeStart(double t0, double lanes, double dur) const
{
    double cap = static_cast<double>(spec_.cuda_cores) + kEps;
    const auto &ev = lane_events_;
    size_t n = ev.size();

    // Usage just after t0 and index of the first event strictly later.
    double usage = 0.0;
    size_t i = 0;
    while (i < n && ev[i].first <= t0 + kEps) {
        usage += ev[i].second;
        ++i;
    }

    double cand = t0;
    for (;;) {
        if (usage + lanes <= cap) {
            // Check the whole window [cand, cand + dur).
            double window_end = cand + dur - kEps;
            double u = usage;
            size_t j = i;
            bool ok = true;
            while (j < n && ev[j].first < window_end) {
                u += ev[j].second;
                if (u + lanes > cap) {
                    ok = false;
                    break;
                }
                ++j;
            }
            if (ok)
                return cand;
            // Violation at ev[j]; resume the search just after it.
            while (i <= j && i < n) {
                usage += ev[i].second;
                ++i;
            }
            cand = ev[j].first;
        } else {
            if (i >= n)
                panic("earliestComputeStart: lane ledger inconsistent");
            usage += ev[i].second;
            cand = ev[i].first;
            ++i;
        }
    }
}

void
Device::reserveLanes(double start, double dur, double lanes)
{
    auto insert_event = [this](double t, double delta) {
        auto it = std::upper_bound(
            lane_events_.begin(), lane_events_.end(), t,
            [](double v, const std::pair<double, double> &e) {
                return v < e.first;
            });
        lane_events_.insert(it, {t, delta});
    };
    insert_event(start, lanes);
    insert_event(start + dur, -lanes);
}

OpId
Device::finishOp(OpRecord record, StreamId stream)
{
    record.stream = stream;
    now_ms_ = std::max(now_ms_, record.end_ms);
    stream_tail_[stream] = record.end_ms;
    if (recorder_) {
        std::string track;
        const char *cat;
        switch (record.kind) {
          case OpRecord::Kind::Kernel:
            track = "stream:" + std::to_string(stream);
            cat = "kernel";
            break;
          case OpRecord::Kind::CopyH2D:
            track = "copy:h2d";
            cat = "h2d";
            break;
          default:
            track = "copy:d2h";
            cat = "d2h";
        }
        recorder_->span(track, record.name, cat, record.start_ms,
                        record.end_ms);
    }
    ops_.push_back(std::move(record));
    return static_cast<OpId>(ops_.size() - 1);
}

OpId
Device::launchKernel(StreamId stream, const KernelDesc &kernel,
                     OpId depends_on)
{
    if (stream >= stream_tail_.size())
        panic("launchKernel: bad stream %u", stream);

    double cores = static_cast<double>(spec_.cuda_cores);
    double lanes = kernel.lanes <= 0 ? cores : std::min(kernel.lanes, cores);
    if (kernel.profile.empty()) {
        double threads = static_cast<double>(kernel.threads);
        lanes = std::min(lanes, std::max(1.0, threads));
        // Warp-granular reservation.
        lanes = std::ceil(lanes / kWarpSize) * kWarpSize;
        lanes = std::min(lanes, cores);
    }

    double dur = kernelDurationMs(kernel);
    double ready = stream_tail_[stream];
    if (depends_on != kNoOp)
        ready = std::max(ready, opEnd(depends_on));
    double start = earliestComputeStart(ready, lanes, dur);
    reserveLanes(start, dur, lanes);

    // Convert the cycle-denominated profile into an ms-denominated one
    // covering the whole (possibly memory-stretched) duration.
    OpRecord record;
    record.kind = OpRecord::Kind::Kernel;
    record.name = kernel.name;
    record.start_ms = start;
    record.end_ms = start + dur;
    record.lanes = lanes;
    double total_cycles = 0.0;
    if (!kernel.profile.empty()) {
        for (const auto &seg : kernel.profile)
            total_cycles += seg.cycles;
        for (const auto &seg : kernel.profile) {
            double frac = total_cycles > 0 ? seg.cycles / total_cycles : 0.0;
            record.profile_ms.push_back(
                {frac * dur, std::min(seg.active_lanes, lanes)});
        }
    } else {
        record.profile_ms.push_back({dur, lanes});
    }
    for (const auto &seg : record.profile_ms)
        busy_lane_ms_ += seg.cycles * seg.active_lanes;

    return finishOp(std::move(record), stream);
}

OpId
Device::copyH2D(StreamId stream, uint64_t bytes, OpId depends_on)
{
    if (stream >= stream_tail_.size())
        panic("copyH2D: bad stream %u", stream);
    double ready = std::max(stream_tail_[stream], copy_h2d_ready_);
    if (depends_on != kNoOp)
        ready = std::max(ready, opEnd(depends_on));
    double dur = copyDurationMs(bytes);
    if (injector_ && injector_->transferStallMultiplier() > 1.0) {
        dur *= injector_->transferStallMultiplier();
        injector_->noteStalledTransfer();
    }
    OpRecord record;
    record.kind = OpRecord::Kind::CopyH2D;
    record.name = "h2d";
    record.start_ms = ready;
    record.end_ms = ready + dur;
    record.bytes = bytes;
    copy_h2d_ready_ = record.end_ms;
    return finishOp(std::move(record), stream);
}

OpId
Device::copyD2H(StreamId stream, uint64_t bytes, OpId depends_on)
{
    if (stream >= stream_tail_.size())
        panic("copyD2H: bad stream %u", stream);
    double ready = std::max(stream_tail_[stream], copy_d2h_ready_);
    if (depends_on != kNoOp)
        ready = std::max(ready, opEnd(depends_on));
    double dur = copyDurationMs(bytes);
    if (injector_ && injector_->transferStallMultiplier() > 1.0) {
        dur *= injector_->transferStallMultiplier();
        injector_->noteStalledTransfer();
    }
    OpRecord record;
    record.kind = OpRecord::Kind::CopyD2H;
    record.name = "d2h";
    record.start_ms = ready;
    record.end_ms = ready + dur;
    record.bytes = bytes;
    copy_d2h_ready_ = record.end_ms;
    return finishOp(std::move(record), stream);
}

double
Device::opStart(OpId op) const
{
    if (op >= ops_.size())
        panic("opStart: bad op %u", op);
    return ops_[op].start_ms;
}

double
Device::opEnd(OpId op) const
{
    if (op >= ops_.size())
        panic("opEnd: bad op %u", op);
    return ops_[op].end_ms;
}

double
Device::streamTime(StreamId stream) const
{
    if (stream >= stream_tail_.size())
        panic("streamTime: bad stream %u", stream);
    return stream_tail_[stream];
}

int64_t
Device::alloc(uint64_t bytes)
{
    live_bytes_ += bytes;
    if (live_bytes_ > spec_.device_mem_bytes) {
        warn("device %s: allocation exceeds %llu-byte capacity (live %llu)",
             spec_.name.c_str(),
             static_cast<unsigned long long>(spec_.device_mem_bytes),
             static_cast<unsigned long long>(live_bytes_));
    }
    peak_bytes_ = std::max(peak_bytes_, live_bytes_);
    allocations_.push_back(bytes);
    return static_cast<int64_t>(allocations_.size() - 1);
}

void
Device::free(int64_t handle)
{
    auto idx = static_cast<size_t>(handle);
    if (idx >= allocations_.size() || allocations_[idx] == 0)
        panic("free: bad or double-freed handle %lld",
              static_cast<long long>(handle));
    live_bytes_ -= allocations_[idx];
    allocations_[idx] = 0;
}

std::vector<UtilSample>
Device::utilizationTrace(double bin_ms, double t_end) const
{
    if (t_end < 0)
        t_end = now_ms_;
    if (bin_ms <= 0 || t_end <= 0)
        return {};
    size_t bins = static_cast<size_t>(std::ceil(t_end / bin_ms));
    std::vector<double> busy(bins, 0.0);

    for (const auto &op : ops_) {
        if (op.kind != OpRecord::Kind::Kernel)
            continue;
        double t = op.start_ms;
        for (const auto &seg : op.profile_ms) {
            double seg_start = t;
            double seg_end = t + seg.cycles; // cycles field holds ms here
            t = seg_end;
            size_t b0 = static_cast<size_t>(seg_start / bin_ms);
            size_t b1 = static_cast<size_t>(seg_end / bin_ms);
            for (size_t b = b0; b <= b1 && b < bins; ++b) {
                double lo = std::max(seg_start, b * bin_ms);
                double hi = std::min(seg_end, (b + 1) * bin_ms);
                if (hi > lo)
                    busy[b] += (hi - lo) * seg.active_lanes;
            }
        }
    }

    std::vector<UtilSample> trace(bins);
    double cores = static_cast<double>(spec_.cuda_cores);
    for (size_t b = 0; b < bins; ++b) {
        trace[b].t_ms = (b + 0.5) * bin_ms;
        trace[b].utilization = busy[b] / (bin_ms * cores);
    }
    return trace;
}

std::string
Device::chromeTraceJson() const
{
    // Chrome trace-event format: complete events ("ph":"X") with
    // microsecond timestamps. Kernels go on their stream's track; the
    // copy engines get dedicated tracks so overlap is visible.
    std::string out = "[";
    bool first = true;
    for (const auto &op : ops_) {
        long long tid;
        const char *cat;
        switch (op.kind) {
          case OpRecord::Kind::Kernel:
            tid = static_cast<long long>(op.stream);
            cat = "kernel";
            break;
          case OpRecord::Kind::CopyH2D:
            tid = 1000;
            cat = "h2d";
            break;
          default:
            tid = 1001;
            cat = "d2h";
        }
        char buf[384];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%lld,"
            "\"args\":{\"lanes\":%.0f,\"bytes\":%llu}}",
            first ? "" : ",", op.name.c_str(), cat, op.start_ms * 1e3,
            (op.end_ms - op.start_ms) * 1e3, tid, op.lanes,
            static_cast<unsigned long long>(op.bytes));
        out += buf;
        first = false;
    }
    out += "]";
    return out;
}

void
Device::resetTimeline()
{
    for (auto &tail : stream_tail_)
        tail = 0.0;
    ops_.clear();
    lane_events_.clear();
    copy_h2d_ready_ = 0.0;
    copy_d2h_ready_ = 0.0;
    now_ms_ = 0.0;
    busy_lane_ms_ = 0.0;
}

} // namespace bzk::gpusim
