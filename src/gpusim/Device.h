#ifndef BZK_GPUSIM_DEVICE_H_
#define BZK_GPUSIM_DEVICE_H_

/**
 * @file
 * Discrete-event simulator of one GPU: lanes (CUDA cores), streams, copy
 * engines, and device memory.
 *
 * This is the hardware substitution for the paper's CUDA runtime (see
 * DESIGN.md Sec. 2). Module drivers execute their cryptography natively
 * on the host and *charge* the simulated device with kernels and copies;
 * the device resolves start/end times under CUDA-like semantics:
 *
 *  - ops issued to one stream serialize in issue order;
 *  - ops on different streams overlap freely, subject to resources;
 *  - compute ops reserve lanes; concurrent kernels co-run while the lane
 *    budget allows, otherwise they queue (concurrent-kernel model);
 *  - H2D and D2H copies each use a dedicated copy engine (one transfer
 *    at a time per direction), so copies overlap compute — the paper's
 *    multi-stream technique;
 *  - explicit cross-stream dependencies mimic cudaStreamWaitEvent.
 *
 * Every compute op may carry an active-lane profile, from which the
 * device reconstructs the utilization traces of the paper's Figure 9 and
 * the busy/idle breakdown of Figure 4.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/DeviceSpec.h"

namespace bzk::obs {
class TraceRecorder;
}

namespace bzk::gpusim {

class FaultInjector;

using StreamId = uint32_t;
using OpId = uint32_t;

/** Sentinel for "no dependency". */
constexpr OpId kNoOp = static_cast<OpId>(-1);

/** One piece of a kernel's active-lane profile. */
struct ProfileSegment
{
    /** Wall lane-cycles this segment lasts. */
    double cycles = 0.0;
    /** Lanes doing useful work during the segment. */
    double active_lanes = 0.0;
};

/** Description of one kernel launch. */
struct KernelDesc
{
    std::string name;
    /**
     * Lanes to reserve; 0 reserves the whole device. Requests above the
     * device size are clamped (threads beyond it run in waves).
     */
    double lanes = 0.0;
    /** Logical thread count (used when @ref profile is empty). */
    uint64_t threads = 0;
    /** Lane-cycles of work per logical thread. */
    double cycles_per_thread = 0.0;
    /** Device-memory traffic in bytes (bandwidth lower-bounds runtime). */
    uint64_t mem_bytes = 0;
    /**
     * Optional explicit utilization profile. When non-empty it defines
     * both the kernel duration (sum of cycles) and the active-lane trace;
     * threads/cycles_per_thread are then ignored.
     */
    std::vector<ProfileSegment> profile;
};

/** Immutable record of a scheduled operation. */
struct OpRecord
{
    enum class Kind { Kernel, CopyH2D, CopyD2H };

    Kind kind;
    std::string name;
    /** Stream the op was issued to. */
    StreamId stream = 0;
    double start_ms = 0.0;
    double end_ms = 0.0;
    /** Lanes reserved (kernels only). */
    double lanes = 0.0;
    /** Active-lane profile in ms-scaled segments (kernels only). */
    std::vector<ProfileSegment> profile_ms;
    /** Bytes moved (copies only). */
    uint64_t bytes = 0;
};

/** One point of a utilization trace. */
struct UtilSample
{
    double t_ms = 0.0;
    /** Fraction of device lanes doing useful work in the bin, 0..1. */
    double utilization = 0.0;
};

/** A simulated GPU. */
class Device
{
  public:
    explicit Device(DeviceSpec spec);

    /** The hardware description this device simulates. */
    const DeviceSpec &spec() const { return spec_; }

    /** Create a new asynchronous stream. */
    StreamId createStream();

    /**
     * Launch a kernel on @p stream.
     * @param depends_on optional op that must finish first
     *        (cross-stream event dependency).
     * @return id usable for dependencies and time queries.
     */
    OpId launchKernel(StreamId stream, const KernelDesc &kernel,
                      OpId depends_on = kNoOp);

    /** Enqueue a host-to-device copy of @p bytes on @p stream. */
    OpId copyH2D(StreamId stream, uint64_t bytes, OpId depends_on = kNoOp);

    /** Enqueue a device-to-host copy of @p bytes on @p stream. */
    OpId copyD2H(StreamId stream, uint64_t bytes, OpId depends_on = kNoOp);

    /** Simulated start time of an op in ms. */
    double opStart(OpId op) const;

    /** Simulated end time of an op in ms. */
    double opEnd(OpId op) const;

    /** Completion time of the last op issued to @p stream. */
    double streamTime(StreamId stream) const;

    /** Simulated time when every issued op has completed. */
    double now() const { return now_ms_; }

    /** Pure duration model for a kernel (no queueing), in ms. */
    double kernelDurationMs(const KernelDesc &kernel) const;

    /** Duration model for a host-device copy, in ms. */
    double copyDurationMs(uint64_t bytes) const;

    /// @name Device memory accounting
    /// @{

    /** Allocate @p bytes of device memory; returns a handle. */
    int64_t alloc(uint64_t bytes);

    /** Release a previous allocation. */
    void free(int64_t handle);

    /** Bytes currently allocated. */
    uint64_t liveMemory() const { return live_bytes_; }

    /** High-water mark of allocated bytes. */
    uint64_t peakMemory() const { return peak_bytes_; }

    /** Reset the high-water mark to the current live size. */
    void resetMemoryPeak() { peak_bytes_ = live_bytes_; }

    /// @}

    /**
     * Reconstruct the utilization trace (Figure 9) with @p bin_ms bins
     * from time 0 to @p t_end (defaults to now()).
     */
    std::vector<UtilSample> utilizationTrace(double bin_ms,
                                             double t_end = -1.0) const;

    /** Total useful lane-milliseconds across all kernels. */
    double busyLaneMs() const { return busy_lane_ms_; }

    /** All scheduled operations, for inspection and plotting. */
    const std::vector<OpRecord> &ops() const { return ops_; }

    /**
     * Export the timeline as a Chrome trace-event JSON string (load in
     * chrome://tracing or Perfetto): one track per stream plus the two
     * copy engines.
     */
    std::string chromeTraceJson() const;

    /** Forget all scheduled work and reset the clock (memory kept). */
    void resetTimeline();

    /// @name Fault injection
    /// @{

    /**
     * Attach (or detach with nullptr) a fault injector. While attached,
     * host<->device copies are stretched by the injector's active
     * transfer-stall multiplier; systems driving the device consult the
     * same injector for lane failures and data corruption. The device
     * does not own the injector. With no injector attached the device
     * behaves exactly as before this hook existed.
     */
    void setFaultInjector(FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** The attached injector, or nullptr. */
    FaultInjector *faultInjector() const { return injector_; }

    /// @}

    /// @name Observability
    /// @{

    /**
     * Attach (or detach with nullptr) a trace recorder. While attached,
     * every resolved op is mirrored as a span on a per-stream (or
     * copy-engine) track. The recorder is a pure observer: simulated
     * times, op records and memory accounting are bit-identical with
     * and without one (pinned by test_obs). Not owned.
     */
    void setTraceRecorder(obs::TraceRecorder *recorder)
    {
        recorder_ = recorder;
    }

    /** The attached recorder, or nullptr. */
    obs::TraceRecorder *traceRecorder() const { return recorder_; }

    /// @}

  private:
    /** Earliest time >= t0 at which @p lanes are free for @p dur ms. */
    double earliestComputeStart(double t0, double lanes, double dur) const;

    /** Record a lane reservation in the usage event list. */
    void reserveLanes(double start, double dur, double lanes);

    OpId finishOp(OpRecord record, StreamId stream);

    DeviceSpec spec_;
    std::vector<double> stream_tail_;
    std::vector<OpRecord> ops_;
    /** Sorted (time, lane-delta) events describing lane usage. */
    std::vector<std::pair<double, double>> lane_events_;
    double copy_h2d_ready_ = 0.0;
    double copy_d2h_ready_ = 0.0;
    double now_ms_ = 0.0;
    double busy_lane_ms_ = 0.0;

    std::vector<uint64_t> allocations_;
    uint64_t live_bytes_ = 0;
    uint64_t peak_bytes_ = 0;

    FaultInjector *injector_ = nullptr;
    obs::TraceRecorder *recorder_ = nullptr;
};

} // namespace bzk::gpusim

#endif // BZK_GPUSIM_DEVICE_H_
