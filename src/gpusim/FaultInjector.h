#ifndef BZK_GPUSIM_FAULTINJECTOR_H_
#define BZK_GPUSIM_FAULTINJECTOR_H_

/**
 * @file
 * Deterministic fault injection for the simulated GPU and the systems
 * built on it.
 *
 * Real proof farms see stalled PCIe transfers, degraded SMs and corrupt
 * staged data; the simulator's happy path hides all of that. This module
 * makes those failure modes *schedulable*: a FaultPlan is an explicit
 * list of fault windows (or is derived from a single RNG seed), and a
 * FaultInjector walks the plan cycle by cycle, answering three
 * questions for the current pipeline cycle:
 *
 *  - by what factor are host<->device transfers stalled?
 *  - what fraction of the device's lanes is failed (work must relocate
 *    onto the survivors)?
 *  - how many bytes of the staged Merkle layer are flipped?
 *
 * Everything is a pure function of (plan, seed, cycle), so a run under
 * faults is exactly as reproducible as a run without them. A Device
 * with no injector attached behaves bit-identically to one that never
 * heard of this header.
 */

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bzk::gpusim {

/** The classes of fault the injector can schedule. */
enum class FaultKind : uint8_t {
    /** Host<->device transfers take `magnitude`x longer. */
    TransferStall,
    /** Fraction `magnitude` of the device's lanes is failed. */
    LaneFailure,
    /** `magnitude` bytes of the staged Merkle layer are flipped. */
    MerkleCorruption,
};

/** One scheduled fault, active over a half-open cycle window. */
struct FaultEvent
{
    FaultKind kind = FaultKind::TransferStall;
    /** First pipeline cycle the fault is active in. */
    size_t begin_cycle = 0;
    /** First cycle the fault is no longer active in (exclusive). */
    size_t end_cycle = 0;
    /**
     * Meaning depends on kind: stall multiplier (> 1), failed-lane
     * fraction (0..1), or bytes to flip (>= 1).
     */
    double magnitude = 0.0;

    bool operator==(const FaultEvent &o) const = default;
};

/** A complete, explicit fault schedule. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** One past the last cycle any event touches. */
    size_t horizon() const;

    /**
     * Derive a plan from a single seed: `intensity` in (0, 1] scales how
     * much of the horizon is covered by each fault class. The same
     * (seed, horizon, intensity) always yields the same plan.
     */
    static FaultPlan random(uint64_t seed, size_t horizon_cycles,
                            double intensity);

    /**
     * Parse a comma-separated plan spec:
     *   stall:B-E:M     transfers in cycles [B, E) stalled by M x
     *   lanes:B-E:F     lane fraction F in [B, E) failed
     *   corrupt:C[:N]   flip N (default 1) bytes of cycle C's layer
     * fatal()s with a diagnostic on malformed input.
     */
    static FaultPlan parse(const std::string &spec);

    /** Human-readable one-line-per-event rendering of the plan. */
    std::string describe() const;
};

/** Counters the injector accumulates over a run. */
struct FaultStats
{
    /** Transfers whose duration was stretched by an active stall. */
    size_t stalled_transfers = 0;
    /** Cycles observed with a nonzero failed-lane fraction. */
    size_t degraded_cycles = 0;
    /** Layers actually corrupted via corruptLayer(). */
    size_t corrupted_layers = 0;
};

/**
 * Walks a FaultPlan cycle by cycle. The owning system calls
 * beginCycle() once per pipeline cycle; the Device (and the system
 * itself) then query the active fault state.
 */
class FaultInjector
{
  public:
    /** @param seed drives the deterministic byte-flip positions. */
    explicit FaultInjector(FaultPlan plan, uint64_t seed = 0);

    /** Enter pipeline cycle @p cycle and resolve the active faults. */
    void beginCycle(size_t cycle);

    /** The cycle most recently passed to beginCycle(). */
    size_t cycle() const { return cycle_; }

    /** Active transfer stall multiplier; 1.0 when unstalled. */
    double transferStallMultiplier() const { return stall_; }

    /** Active failed-lane fraction in [0, 0.95]; 0.0 when healthy. */
    double failedLaneFraction() const { return failed_; }

    /** Bytes to flip in this cycle's staged layer; 0 = no corruption. */
    uint32_t corruptionBytes() const { return corrupt_bytes_; }

    /**
     * Flip corruptionBytes() bytes of @p data at positions derived
     * deterministically from (seed, cycle). Returns true if any byte
     * changed. No-op (returns false) when no corruption is scheduled or
     * @p data is empty.
     */
    bool corruptLayer(std::span<uint8_t> data);

    /** Called by the Device when a transfer hits an active stall. */
    void noteStalledTransfer() { ++stats_.stalled_transfers; }

    const FaultStats &stats() const { return stats_; }

    const FaultPlan &plan() const { return plan_; }

  private:
    FaultPlan plan_;
    uint64_t seed_;
    size_t cycle_ = 0;
    double stall_ = 1.0;
    double failed_ = 0.0;
    uint32_t corrupt_bytes_ = 0;
    FaultStats stats_;
};

} // namespace bzk::gpusim

#endif // BZK_GPUSIM_FAULTINJECTOR_H_
