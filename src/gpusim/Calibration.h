#ifndef BZK_GPUSIM_CALIBRATION_H_
#define BZK_GPUSIM_CALIBRATION_H_

/**
 * @file
 * Cost-model calibration constants for the GPU simulator.
 *
 * Each constant is the amortized lane-cycle cost of one primitive
 * operation as executed by one CUDA-core lane. They were fit ONCE against
 * the paper's single-module GH200 absolute numbers (Table 3 row 2^22 for
 * SHA-256, Table 4 row 2^22 for field ops, Table 5 row 2^22 for sparse
 * rows) and are then held fixed for every other experiment, so the
 * cross-experiment shapes reported in EXPERIMENTS.md are predictions of
 * the model, not per-table fits.
 */

#include <cstdint>

namespace bzk::gpusim {

/**
 * Lane-cycles for one SHA-256 block compression (64 rounds, message
 * schedule, state add). The paper keeps all 16 message chunks in
 * registers (Sec. 3.1), which this figure assumes.
 */
constexpr double kSha256CompressCycles = 2200.0;

/**
 * Lane-cycles for one 256-bit Montgomery multiplication: 8x8 32-bit limb
 * products plus reduction on a 32-bit datapath.
 */
constexpr double kFieldMulCycles = 300.0;

/** Lane-cycles for one 256-bit modular addition/subtraction. */
constexpr double kFieldAddCycles = 24.0;

/**
 * Lane-cycles charged per 32-byte global-memory transaction issued by a
 * lane on top of bandwidth limits (latency partially hidden by
 * occupancy).
 */
constexpr double kGlobalAccessCycles = 12.0;

/**
 * Fixed per-kernel-launch overhead in milliseconds. Dominates tiny
 * kernels; the intuitive (one-kernel-per-task) baselines pay it per task
 * while the pipelined modules pay it once per cycle.
 */
constexpr double kKernelLaunchMs = 0.004;

/**
 * Lane-cycles charged for one grid-wide synchronization inside an
 * intuitive (one-kernel-per-task) implementation: every layer/round of
 * the task must barrier before the next starts. Pipelined kernels never
 * pay this — each stage kernel only ever runs one fixed layer.
 */
constexpr double kGridSyncCycles = 2500.0;

/**
 * Warp width: SIMD group size; a warp's cost is the maximum over its 32
 * lanes (Sec. 3.3's motivation for bucket-sorted row grouping).
 */
constexpr uint32_t kWarpSize = 32;

/**
 * Efficiency factor (<1) applied to host<->device bandwidth to account
 * for protocol overhead on real PCIe links.
 */
constexpr double kPcieEfficiency = 0.88;

/**
 * Extra lane-cycles a sparse-row gather stalls for: random 32-byte
 * element reads fetch full DRAM lines, so useful bandwidth is a small
 * fraction of peak. Expressed in lane-cycles so the figure transfers
 * across devices (compute/bandwidth ratios of the paper's five cards
 * are within ~15% of each other). Fit to Table 5's pipelined column.
 */
constexpr double kGatherStallCycles = 1900.0;

/**
 * Hash-cost multiplier for implementations that keep the SHA-256
 * message schedule in global/shared memory instead of registers — the
 * paper's Sec. 3.1 optimization, which the Simon baseline lacks.
 */
constexpr double kUnoptimizedHashFactor = 1.8;

/**
 * Host-synchronized kernel launch: the intuitive implementations
 * relaunch a kernel per layer/round/stage from the host and wait for
 * completion. Fit to the Simon per-tree overhead implied by Table 3.
 */
constexpr double kHostSyncMs = 0.0087;

/**
 * Field-op slowdown of the Icicle-style sum-check kernels (generic
 * big-int templates, operands round-tripping through global memory).
 */
constexpr double kIcicleFieldFactor = 1.2;

/**
 * Slowdown of the non-pipelined recursive encoder ("Ours-np"): stack
 * emulation and per-stage host round-trips on top of unsorted warps.
 * Fit to Table 5's Ours-np column.
 */
constexpr double kNpEncoderInefficiency = 3.5;

/**
 * Slowdown of the Bellperson-style baseline's GPU kernels relative to
 * the roofline of our cost model: OpenCL code paths, uncoalesced bucket
 * access, per-window relaunches and the larger BLS12-381 field. Fit once
 * against the Bellperson latencies the paper reports on V100/H100
 * (Table 8) and held fixed elsewhere.
 */
constexpr double kBellpersonEfficiency = 80.0;

/**
 * Host-side constraint synthesis / witness assignment cost of the
 * Groth16-family provers, per gate. Synthesis is single-threaded in
 * bellman/bellperson and dominates small-circuit latency.
 */
constexpr double kSynthesisNsPerGate = 1500.0;

/**
 * Device bytes the Bellperson-style prover stages per gate (CRS points,
 * witness, evaluation-domain buffers) plus a size-independent floor
 * (bucket arrays, window tables, runtime pools). Fit to the paper's
 * Table 10 Bellperson row, which scales as fixed + linear.
 */
constexpr double kBellpersonBytesPerGate = 756.0;
constexpr double kBellpersonFixedBytes = 0.70 * 1024 * 1024 * 1024;

} // namespace bzk::gpusim

#endif // BZK_GPUSIM_CALIBRATION_H_
