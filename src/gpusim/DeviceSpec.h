#ifndef BZK_GPUSIM_DEVICESPEC_H_
#define BZK_GPUSIM_DEVICESPEC_H_

/**
 * @file
 * Static hardware description of a simulated GPU.
 *
 * Presets carry public spec-sheet numbers for the cards the paper
 * evaluates (Tables 8 and 9): CUDA core counts, boost clocks, device
 * memory bandwidth and host-link bandwidth.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace bzk::gpusim {

/** Immutable description of one simulated GPU card. */
struct DeviceSpec
{
    std::string name;
    /** Total FP32/INT CUDA-core lanes. */
    uint32_t cuda_cores = 0;
    /** Core boost clock in GHz (cycles per nanosecond per lane). */
    double clock_ghz = 0.0;
    /** Device (HBM/GDDR) bandwidth in GB/s. */
    double mem_bw_gbps = 0.0;
    /** Host<->device link bandwidth per direction in GB/s (raw). */
    double link_gbps = 0.0;
    /** Human-readable link name, e.g. "PCIe 3.0 x16". */
    std::string link_name;
    /** Device memory capacity in bytes. */
    uint64_t device_mem_bytes = 0;

    /** Cycles available per millisecond on one lane. */
    double cyclesPerMs() const { return clock_ghz * 1e6; }

    /** Nvidia V100 (Volta, 5120 cores) — the paper's Table 8 row 1. */
    static DeviceSpec v100();
    /** Nvidia A100 (Ampere, 6912 cores). */
    static DeviceSpec a100();
    /** Nvidia RTX 3090 Ti (Ada^H^H Ampere, 10752 cores) — Fig. 9 card. */
    static DeviceSpec rtx3090ti();
    /** Nvidia H100 SXM (Hopper, 16896 cores). */
    static DeviceSpec h100();
    /** Nvidia GH200 Grace Hopper superchip — the paper's main platform. */
    static DeviceSpec gh200();

    /** All presets in the paper's Table 8 order plus GH200. */
    static std::vector<DeviceSpec> allPresets();
};

} // namespace bzk::gpusim

#endif // BZK_GPUSIM_DEVICESPEC_H_
