#include "gpusim/FaultInjector.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/Log.h"
#include "util/Rng.h"

namespace bzk::gpusim {

namespace {

const char *
kindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TransferStall:
        return "stall";
      case FaultKind::LaneFailure:
        return "lanes";
      case FaultKind::MerkleCorruption:
        return "corrupt";
    }
    return "?";
}

/** Parse an unsigned decimal field or fatal() with context. */
size_t
parseCount(const std::string &field, const std::string &item)
{
    size_t pos = 0;
    unsigned long long v = 0;
    try {
        v = std::stoull(field, &pos);
    } catch (...) {
        fatal("fault plan: bad number '%s' in '%s'", field.c_str(),
              item.c_str());
    }
    if (pos != field.size())
        fatal("fault plan: bad number '%s' in '%s'", field.c_str(),
              item.c_str());
    return static_cast<size_t>(v);
}

double
parseMagnitude(const std::string &field, const std::string &item)
{
    size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(field, &pos);
    } catch (...) {
        fatal("fault plan: bad magnitude '%s' in '%s'", field.c_str(),
              item.c_str());
    }
    if (pos != field.size())
        fatal("fault plan: bad magnitude '%s' in '%s'", field.c_str(),
              item.c_str());
    return v;
}

/** Split "B-E" into a half-open window or fatal(). */
void
parseWindow(const std::string &field, const std::string &item,
            size_t &begin, size_t &end)
{
    size_t dash = field.find('-');
    if (dash == std::string::npos)
        fatal("fault plan: window '%s' in '%s' must be BEGIN-END",
              field.c_str(), item.c_str());
    begin = parseCount(field.substr(0, dash), item);
    end = parseCount(field.substr(dash + 1), item);
    if (end <= begin)
        fatal("fault plan: empty window '%s' in '%s' (END must exceed "
              "BEGIN)",
              field.c_str(), item.c_str());
}

} // namespace

size_t
FaultPlan::horizon() const
{
    size_t h = 0;
    for (const auto &e : events)
        h = std::max(h, e.end_cycle);
    return h;
}

FaultPlan
FaultPlan::random(uint64_t seed, size_t horizon_cycles, double intensity)
{
    if (horizon_cycles == 0 || intensity <= 0.0)
        return {};
    intensity = std::min(intensity, 1.0);
    FaultPlan plan;
    Rng rng(seed ^ 0x0fa7157a11ULL);

    // Stall and lane-failure windows each cover ~intensity/2 of the
    // horizon, in windows of at most an eighth of it.
    auto windows = [&](FaultKind kind, double lo, double hi) {
        size_t budget =
            static_cast<size_t>(0.5 * intensity * horizon_cycles);
        size_t max_len = std::max<size_t>(1, horizon_cycles / 8);
        while (budget > 0) {
            size_t len = 1 + rng.nextBounded(std::min(budget, max_len));
            size_t begin = rng.nextBounded(horizon_cycles);
            FaultEvent e;
            e.kind = kind;
            e.begin_cycle = begin;
            e.end_cycle = std::min(horizon_cycles, begin + len);
            e.magnitude = lo + rng.nextDouble() * (hi - lo);
            plan.events.push_back(e);
            budget -= std::min(budget, e.end_cycle - e.begin_cycle);
        }
    };
    windows(FaultKind::TransferStall, 1.5, 4.0);
    windows(FaultKind::LaneFailure, 0.05, 0.30);

    // Corruption strikes ~intensity/16 of the cycles, one byte each.
    size_t strikes = std::max<size_t>(
        1, static_cast<size_t>(intensity * horizon_cycles / 16.0));
    for (size_t i = 0; i < strikes; ++i) {
        FaultEvent e;
        e.kind = FaultKind::MerkleCorruption;
        e.begin_cycle = rng.nextBounded(horizon_cycles);
        e.end_cycle = e.begin_cycle + 1;
        e.magnitude = 1.0 + static_cast<double>(rng.nextBounded(3));
        plan.events.push_back(e);
    }
    return plan;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        std::vector<std::string> fields;
        std::stringstream is(item);
        std::string f;
        while (std::getline(is, f, ':'))
            fields.push_back(f);
        if (fields.empty())
            fatal("fault plan: empty item in '%s'", spec.c_str());

        FaultEvent e;
        if (fields[0] == "stall" || fields[0] == "lanes") {
            if (fields.size() != 3)
                fatal("fault plan: '%s' needs KIND:BEGIN-END:MAGNITUDE",
                      item.c_str());
            parseWindow(fields[1], item, e.begin_cycle, e.end_cycle);
            e.magnitude = parseMagnitude(fields[2], item);
            if (fields[0] == "stall") {
                e.kind = FaultKind::TransferStall;
                if (e.magnitude <= 1.0)
                    fatal("fault plan: stall multiplier %.3f in '%s' "
                          "must exceed 1",
                          e.magnitude, item.c_str());
            } else {
                e.kind = FaultKind::LaneFailure;
                if (e.magnitude <= 0.0 || e.magnitude >= 1.0)
                    fatal("fault plan: lane fraction %.3f in '%s' must "
                          "be in (0, 1)",
                          e.magnitude, item.c_str());
            }
        } else if (fields[0] == "corrupt") {
            if (fields.size() != 2 && fields.size() != 3)
                fatal("fault plan: '%s' needs corrupt:CYCLE[:BYTES]",
                      item.c_str());
            e.kind = FaultKind::MerkleCorruption;
            e.begin_cycle = parseCount(fields[1], item);
            e.end_cycle = e.begin_cycle + 1;
            e.magnitude =
                fields.size() == 3
                    ? static_cast<double>(parseCount(fields[2], item))
                    : 1.0;
            if (e.magnitude < 1.0)
                fatal("fault plan: corrupt byte count in '%s' must be "
                      ">= 1",
                      item.c_str());
        } else {
            fatal("fault plan: unknown fault kind '%s' (want stall, "
                  "lanes or corrupt)",
                  fields[0].c_str());
        }
        plan.events.push_back(e);
    }
    if (plan.events.empty())
        fatal("fault plan: no events in '%s'", spec.c_str());
    return plan;
}

std::string
FaultPlan::describe() const
{
    std::string out;
    char buf[128];
    for (const auto &e : events) {
        if (e.kind == FaultKind::MerkleCorruption)
            std::snprintf(buf, sizeof(buf),
                          "  corrupt cycle %zu: flip %.0f byte(s)\n",
                          e.begin_cycle, e.magnitude);
        else
            std::snprintf(buf, sizeof(buf),
                          "  %s cycles [%zu, %zu): %s %.3g\n",
                          kindName(e.kind), e.begin_cycle, e.end_cycle,
                          e.kind == FaultKind::TransferStall
                              ? "multiplier"
                              : "fraction",
                          e.magnitude);
        out += buf;
    }
    return out;
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed)
    : plan_(std::move(plan)), seed_(seed)
{
}

void
FaultInjector::beginCycle(size_t cycle)
{
    cycle_ = cycle;
    stall_ = 1.0;
    failed_ = 0.0;
    corrupt_bytes_ = 0;
    for (const auto &e : plan_.events) {
        if (cycle < e.begin_cycle || cycle >= e.end_cycle)
            continue;
        switch (e.kind) {
          case FaultKind::TransferStall:
            stall_ = std::max(stall_, e.magnitude);
            break;
          case FaultKind::LaneFailure:
            failed_ = std::min(0.95, failed_ + e.magnitude);
            break;
          case FaultKind::MerkleCorruption:
            corrupt_bytes_ += static_cast<uint32_t>(e.magnitude);
            break;
        }
    }
    if (failed_ > 0.0)
        ++stats_.degraded_cycles;
}

bool
FaultInjector::corruptLayer(std::span<uint8_t> data)
{
    if (corrupt_bytes_ == 0 || data.empty())
        return false;
    // Positions and flip masks derive from (seed, cycle) alone so the
    // corruption is reproducible regardless of call order.
    uint64_t state = seed_ ^ (0x9e3779b97f4a7c15ULL * (cycle_ + 1));
    bool changed = false;
    for (uint32_t i = 0; i < corrupt_bytes_; ++i) {
        uint64_t word = splitmix64(state);
        size_t pos = static_cast<size_t>(word % data.size());
        uint8_t mask = static_cast<uint8_t>((word >> 32) & 0xff);
        if (mask == 0)
            mask = 0x01; // guarantee the byte actually flips
        data[pos] ^= mask;
        changed = true;
    }
    if (changed)
        ++stats_.corrupted_layers;
    return changed;
}

} // namespace bzk::gpusim
