#include "core/StreamingService.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <vector>

#include "gpusim/Calibration.h"
#include "gpusim/FaultInjector.h"
#include "obs/Metrics.h"
#include "util/Log.h"

namespace bzk {

namespace {

/** One request waiting for (re-)admission. */
struct Pending
{
    /** Time of this submission (original arrival or re-submission). */
    double submitted = 0.0;
    /** Original arrival time; sojourns are measured from here. */
    double first_arrival = 0.0;
    /** Re-submissions already made. */
    size_t attempt = 0;
};

struct LaterSubmission
{
    bool
    operator()(const Pending &a, const Pending &b) const
    {
        if (a.submitted != b.submitted)
            return a.submitted > b.submitted;
        return a.first_arrival > b.first_arrival; // deterministic ties
    }
};

} // namespace

StreamingResult
StreamingZkpService::run(const StreamingOptions &workload, Rng &rng) const
{
    if (workload.arrival_rate_per_ms <= 0 || workload.num_requests == 0)
        fatal("StreamingZkpService: empty workload");

    // Steady-state admission interval from the same work model the
    // batch system uses: one task enters per cycle, bounded by the
    // slower of compute and (overlapped) transfer.
    SystemWorkModel model =
        systemWorkModel(workload.n_vars, workload.seed);
    double cores = dev_.spec().cuda_cores;
    double comp_ms = model.totalCycles() / (cores * dev_.spec().cyclesPerMs()) +
                     gpusim::kKernelLaunchMs;
    double comm_ms = dev_.copyDurationMs(model.h2d_bytes);
    double cycle_ms = system_opt_.overlap_transfers
                          ? std::max(comp_ms, comm_ms)
                          : comp_ms + comm_ms;
    size_t depth = model.totalStages();

    StreamingResult result;
    result.cycle_ms = cycle_ms;
    result.depth = depth;
    result.offered_load = workload.arrival_rate_per_ms * cycle_ms;

    // Poisson arrivals.
    std::vector<double> arrivals(workload.num_requests);
    double t = 0.0;
    for (auto &a : arrivals) {
        // Exponential inter-arrival via inverse CDF.
        double u = rng.nextDouble();
        t += -std::log(1.0 - u) / workload.arrival_rate_per_ms;
        a = t;
    }

    gpusim::FaultInjector *inj = dev_.faultInjector();
    double backoff_base =
        workload.backoff_ms > 0.0 ? workload.backoff_ms : cycle_ms;

    // Admission: one request per cycle boundary, FIFO. Requests ending
    // any other way (shed at a full queue, dropped after exhausting
    // retries) also terminate, so every original request is accounted
    // for exactly once.
    std::vector<double> sojourns;
    sojourns.reserve(workload.num_requests);
    std::deque<Pending> queue;
    std::priority_queue<Pending, std::vector<Pending>, LaterSubmission>
        resubmits;
    size_t next_arrival = 0;
    size_t dropped = 0;
    size_t cycle_index = 0;
    double queue_area = 0.0;
    double now = 0.0;
    double last_completion = 0.0;

    auto enqueue = [&](const Pending &p) {
        if (workload.queue_capacity > 0 &&
            queue.size() >= workload.queue_capacity) {
            ++result.shed;
            return;
        }
        queue.push_back(p);
    };

    while (result.completed + result.shed + dropped <
           workload.num_requests) {
        // Injected faults stretch this cycle: transfer stalls slow the
        // streamed input, failed lanes slow the compute.
        double step = cycle_ms;
        if (inj) {
            inj->beginCycle(cycle_index);
            double comp = comp_ms;
            double failed = inj->failedLaneFraction();
            if (failed > 0.0)
                comp /= std::max(0.05, 1.0 - failed);
            double comm = comm_ms * inj->transferStallMultiplier();
            step = system_opt_.overlap_transfers ? std::max(comp, comm)
                                                 : comp + comm;
        }
        ++cycle_index;

        double next_cycle = now + step;
        while (next_arrival < arrivals.size() &&
               arrivals[next_arrival] <= next_cycle) {
            enqueue({arrivals[next_arrival], arrivals[next_arrival], 0});
            ++next_arrival;
        }
        while (!resubmits.empty() &&
               resubmits.top().submitted <= next_cycle) {
            enqueue(resubmits.top());
            resubmits.pop();
        }
        queue_area += static_cast<double>(queue.size()) * step;
        result.max_queue = std::max(result.max_queue, queue.size());
        now = next_cycle;
        while (!queue.empty()) {
            Pending p = queue.front();
            queue.pop_front();
            if (workload.timeout_ms > 0.0 &&
                now - p.submitted > workload.timeout_ms) {
                // Timed out waiting for admission; the slot stays free
                // for the next queued request.
                ++result.timed_out;
                if (p.attempt < workload.max_retries) {
                    ++result.retried;
                    double backoff =
                        backoff_base *
                        std::ldexp(1.0, static_cast<int>(p.attempt));
                    resubmits.push(
                        {now + backoff, p.first_arrival, p.attempt + 1});
                } else {
                    ++dropped;
                }
                continue;
            }
            // Admitted this cycle; completes after the pipeline depth.
            double completion =
                now + static_cast<double>(depth) * cycle_ms;
            sojourns.push_back(completion - p.first_arrival);
            ++result.completed;
            last_completion = std::max(last_completion, completion);
            break;
        }
    }

    if (!sojourns.empty()) {
        std::sort(sojourns.begin(), sojourns.end());
        auto pct = [&](double p) {
            size_t idx = static_cast<size_t>(p * (sojourns.size() - 1));
            return sojourns[idx];
        };
        result.p50_ms = pct(0.50);
        result.p90_ms = pct(0.90);
        result.p99_ms = pct(0.99);
        result.max_ms = sojourns.back();
    }
    result.mean_queue = now > 0.0 ? queue_area / now : 0.0;
    result.throughput_per_ms =
        last_completion > 0.0
            ? static_cast<double>(sojourns.size()) / last_completion
            : 0.0;

    if (metrics_) {
        metrics_
            ->counter("bzk_stream_arrivals_total", "requests submitted")
            .add(static_cast<double>(workload.num_requests));
        metrics_
            ->counter("bzk_stream_completed_total",
                      "requests whose proof completed")
            .add(static_cast<double>(result.completed));
        metrics_
            ->counter("bzk_stream_timed_out_total",
                      "admission-timeout events")
            .add(static_cast<double>(result.timed_out));
        metrics_
            ->counter("bzk_stream_retried_total",
                      "re-submissions after timeouts")
            .add(static_cast<double>(result.retried));
        metrics_
            ->counter("bzk_stream_shed_total",
                      "arrivals rejected at a full queue")
            .add(static_cast<double>(result.shed));
        metrics_
            ->gauge("bzk_stream_offered_load",
                    "arrival rate over pipeline capacity")
            .set(result.offered_load);
        metrics_
            ->gauge("bzk_stream_mean_queue",
                    "time-averaged admission queue length")
            .set(result.mean_queue);
        auto &sojourn_hist = metrics_->histogram(
            "bzk_stream_sojourn_ms",
            {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000},
            "arrival-to-completion time, ms");
        for (double s : sojourns)
            sojourn_hist.observe(s);
    }
    return result;
}

} // namespace bzk
