#include "core/StreamingService.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gpusim/FaultInjector.h"
#include "journal/Journal.h"
#include "obs/Metrics.h"
#include "sched/AdmissionQueue.h"
#include "sched/CycleModel.h"
#include "util/Log.h"

namespace bzk {

StreamingResult
StreamingZkpService::run(const StreamingOptions &workload, Rng &rng) const
{
    if (workload.arrival_rate_per_ms <= 0 || workload.num_requests == 0)
        fatal("StreamingZkpService: empty workload");

    // Steady-state admission interval from the scheduler's cycle model
    // over the same stage graph the batch system runs: one task enters
    // per cycle, bounded by the slower of compute and (overlapped)
    // transfer.
    sched::StageGraph graph = systemStageGraph(protocolWorkModel(
        workload.kind, workload.n_vars, workload.seed));
    sched::CycleModel cycle_model(graph, dev_,
                                  system_opt_.overlap_transfers);
    double cycle_ms = cycle_model.cycleMs();
    size_t depth = cycle_model.depth();

    StreamingResult result;
    result.cycle_ms = cycle_ms;
    result.depth = depth;
    result.offered_load = workload.arrival_rate_per_ms * cycle_ms;

    // Poisson arrivals.
    std::vector<double> arrivals(workload.num_requests);
    double t = 0.0;
    for (auto &a : arrivals) {
        // Exponential inter-arrival via inverse CDF.
        double u = rng.nextDouble();
        t += -std::log(1.0 - u) / workload.arrival_rate_per_ms;
        a = t;
    }

    gpusim::FaultInjector *inj = dev_.faultInjector();
    double backoff_base =
        workload.backoff_ms > 0.0 ? workload.backoff_ms : cycle_ms;

    // Admission: one request per cycle boundary, FIFO, through the
    // scheduler's guarded admission queue. Requests ending any other
    // way (shed at a full queue, dropped after exhausting retries)
    // also terminate, so every original request is accounted for
    // exactly once.
    std::vector<double> sojourns;
    sojourns.reserve(workload.num_requests);
    sched::AdmissionQueue queue({workload.timeout_ms,
                                 workload.max_retries, backoff_base,
                                 workload.queue_capacity});
    size_t next_arrival = 0;
    size_t cycle_index = 0;
    double queue_area = 0.0;
    double now = 0.0;
    double last_completion = 0.0;

    while (result.completed + queue.shed() + queue.dropped() <
           workload.num_requests) {
        // Injected faults stretch this cycle: transfer stalls slow the
        // streamed input, failed lanes slow the compute.
        double step = inj ? cycle_model.stepMs(*inj, cycle_index)
                          : cycle_ms;
        ++cycle_index;

        double next_cycle = now + step;
        while (next_arrival < arrivals.size() &&
               arrivals[next_arrival] <= next_cycle) {
            queue.submit(arrivals[next_arrival]);
            ++next_arrival;
        }
        queue.pullResubmits(next_cycle);
        queue_area += static_cast<double>(queue.depth()) * step;
        result.max_queue = std::max(result.max_queue, queue.depth());
        now = next_cycle;
        if (auto p = queue.admitOne(now)) {
            // Admitted this cycle; completes after the pipeline depth.
            // An attached journal records the admission (WAL: the task
            // is durable before the pipeline owns it) and the ack once
            // its proof completes, keyed by the admission index so a
            // replayed run re-derives the same idempotent IDs.
            if (journal_) {
                journal::TaskRecord task;
                task.task_id = result.completed;
                task.n_vars = workload.n_vars;
                task.seed = workload.seed;
                task.kind = workload.kind;
                journal_->append(task);
            }
            double completion =
                now + static_cast<double>(depth) * cycle_ms;
            sojourns.push_back(completion - p->first_arrival);
            if (journal_) {
                journal::CompletionRecord ack;
                ack.task_id = result.completed;
                ack.n_vars = workload.n_vars;
                ack.seed = workload.seed;
                journal_->append(ack);
            }
            ++result.completed;
            last_completion = std::max(last_completion, completion);
        }
    }
    result.timed_out = queue.timedOut();
    result.retried = queue.retried();
    result.shed = queue.shed();

    if (!sojourns.empty()) {
        std::sort(sojourns.begin(), sojourns.end());
        auto pct = [&](double p) {
            size_t idx = static_cast<size_t>(p * (sojourns.size() - 1));
            return sojourns[idx];
        };
        result.p50_ms = pct(0.50);
        result.p90_ms = pct(0.90);
        result.p99_ms = pct(0.99);
        result.max_ms = sojourns.back();
    }
    result.mean_queue = now > 0.0 ? queue_area / now : 0.0;
    result.throughput_per_ms =
        last_completion > 0.0
            ? static_cast<double>(sojourns.size()) / last_completion
            : 0.0;

    if (metrics_) {
        metrics_
            ->counter("bzk_stream_arrivals_total", "requests submitted")
            .add(static_cast<double>(workload.num_requests));
        metrics_
            ->counter("bzk_stream_completed_total",
                      "requests whose proof completed")
            .add(static_cast<double>(result.completed));
        metrics_
            ->counter("bzk_stream_timed_out_total",
                      "admission-timeout events")
            .add(static_cast<double>(result.timed_out));
        metrics_
            ->counter("bzk_stream_retried_total",
                      "re-submissions after timeouts")
            .add(static_cast<double>(result.retried));
        metrics_
            ->counter("bzk_stream_shed_total",
                      "arrivals rejected at a full queue")
            .add(static_cast<double>(result.shed));
        metrics_
            ->gauge("bzk_stream_offered_load",
                    "arrival rate over pipeline capacity")
            .set(result.offered_load);
        metrics_
            ->gauge("bzk_stream_mean_queue",
                    "time-averaged admission queue length")
            .set(result.mean_queue);
        auto &sojourn_hist = metrics_->histogram(
            "bzk_stream_sojourn_ms",
            {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000},
            "arrival-to-completion time, ms");
        for (double s : sojourns)
            sojourn_hist.observe(s);
    }
    return result;
}

} // namespace bzk
