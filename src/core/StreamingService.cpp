#include "core/StreamingService.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "gpusim/Calibration.h"
#include "util/Log.h"

namespace bzk {

StreamingResult
StreamingZkpService::run(const StreamingOptions &workload, Rng &rng) const
{
    if (workload.arrival_rate_per_ms <= 0 || workload.num_requests == 0)
        fatal("StreamingZkpService: empty workload");

    // Steady-state admission interval from the same work model the
    // batch system uses: one task enters per cycle, bounded by the
    // slower of compute and (overlapped) transfer.
    SystemWorkModel model =
        systemWorkModel(workload.n_vars, workload.seed);
    double cores = dev_.spec().cuda_cores;
    double comp_ms = model.totalCycles() / (cores * dev_.spec().cyclesPerMs()) +
                     gpusim::kKernelLaunchMs;
    double comm_ms = dev_.copyDurationMs(model.h2d_bytes);
    double cycle_ms = system_opt_.overlap_transfers
                          ? std::max(comp_ms, comm_ms)
                          : comp_ms + comm_ms;
    size_t depth = model.totalStages();

    StreamingResult result;
    result.cycle_ms = cycle_ms;
    result.depth = depth;
    result.offered_load = workload.arrival_rate_per_ms * cycle_ms;

    // Poisson arrivals.
    std::vector<double> arrivals(workload.num_requests);
    double t = 0.0;
    for (auto &a : arrivals) {
        // Exponential inter-arrival via inverse CDF.
        double u = rng.nextDouble();
        t += -std::log(1.0 - u) / workload.arrival_rate_per_ms;
        a = t;
    }

    // Admission: one request per cycle boundary, FIFO.
    std::vector<double> sojourns;
    sojourns.reserve(workload.num_requests);
    std::deque<double> queue;
    size_t next_arrival = 0;
    double queue_area = 0.0;
    double now = 0.0;
    double last_completion = 0.0;
    while (sojourns.size() < workload.num_requests) {
        double next_cycle = now + cycle_ms;
        while (next_arrival < arrivals.size() &&
               arrivals[next_arrival] <= next_cycle) {
            queue.push_back(arrivals[next_arrival]);
            ++next_arrival;
        }
        queue_area += static_cast<double>(queue.size()) * cycle_ms;
        now = next_cycle;
        if (!queue.empty()) {
            double arrival = queue.front();
            queue.pop_front();
            // Admitted this cycle; completes after the pipeline depth.
            double completion =
                now + static_cast<double>(depth) * cycle_ms;
            sojourns.push_back(completion - arrival);
            last_completion = std::max(last_completion, completion);
        }
    }

    std::sort(sojourns.begin(), sojourns.end());
    auto pct = [&](double p) {
        size_t idx = static_cast<size_t>(p * (sojourns.size() - 1));
        return sojourns[idx];
    };
    result.p50_ms = pct(0.50);
    result.p90_ms = pct(0.90);
    result.p99_ms = pct(0.99);
    result.max_ms = sojourns.back();
    result.mean_queue = queue_area / now;
    result.throughput_per_ms =
        static_cast<double>(sojourns.size()) / last_completion;
    return result;
}

} // namespace bzk
