#ifndef BZK_CORE_HIGHDEGREESNARK_H_
#define BZK_CORE_HIGHDEGREESNARK_H_

/**
 * @file
 * The HighDegreeGate proof system: the pipeline's second protocol
 * kind (sched::ProtocolKind::HighDegreeGate).
 *
 * Structurally it is the BatchZK SNARK with the constraint sum-check
 * swapped for a HyperPlonk-style high-degree custom gate:
 *
 *   1. commit the gate tables a, b, c with the same tensor PCS;
 *   2. derive the gate challenge tau from the roots (Fiat-Shamir);
 *   3. run the degree-6 sum-check
 *        sum_x eq(tau,x) * (a(x)^4 * b(x) - c(x)) = 0;
 *   4. open a, b, c at the sum-check's final point through the PCS;
 *   5. the verifier replays the transcript and checks
 *        eq(tau,r) * (va^4 * vb - vc) == final sum-check claim.
 *
 * The stage boundaries (ProveStage hooks) are identical to Snark's, so
 * the durable service's crash matrix kills both protocols at the same
 * pipeline seams. The transcript domain label differs ("batchzk.hdg.v1"
 * vs "batchzk.snark.v1"): a proof of one protocol can never replay as
 * the other.
 */

#include <optional>
#include <span>
#include <vector>

#include "circuit/Circuit.h"
#include "core/Snark.h"
#include "core/TensorPcs.h"
#include "hash/Transcript.h"
#include "sumcheck/HighDegreeGate.h"
#include "util/Rng.h"

namespace bzk {

/** A complete HighDegreeGate proof (same wire shape as SnarkProof). */
template <typename F>
struct HighDegreeProof
{
    PcsCommitment commit_a;
    PcsCommitment commit_b;
    PcsCommitment commit_c;
    /** Degree-6 gate sum-check: 7 evaluations per round. */
    ProductSumcheckProof<F> gate_sc;
    /** Claimed openings of the three tables at the sum-check point. */
    F va{};
    F vb{};
    F vc{};
    PcsEvalProof<F> open_a;
    PcsEvalProof<F> open_b;
    PcsEvalProof<F> open_c;
};

/**
 * Build a satisfiable high-degree gate instance: a and b are random,
 * c = a^4 * b pointwise. Deterministic in @p rng — the durable service
 * and the network executor derive identical instances from
 * taskInstanceRng, which is what keeps crash+replay bit-identical.
 */
template <typename F>
ConstraintTables<F>
highDegreeInstance(unsigned n_vars, Rng &rng)
{
    size_t size = size_t{1} << n_vars;
    ConstraintTables<F> tables;
    tables.n_vars = n_vars;
    tables.a.resize(size);
    tables.b.resize(size);
    tables.c.resize(size);
    for (size_t i = 0; i < size; ++i) {
        tables.a[i] = F::random(rng);
        tables.b[i] = F::random(rng);
        tables.c[i] = pow4(tables.a[i]) * tables.b[i];
    }
    return tables;
}

/** Prover + verifier for the high-degree gate protocol. */
template <typename F>
class HighDegreeSnark
{
  public:
    HighDegreeSnark(unsigned n_vars, uint64_t seed,
                    size_t column_openings = 8)
        : n_vars_(n_vars), pcs_(n_vars, seed, column_openings)
    {
    }

    /** The PCS instance (exposed for cost accounting). */
    const TensorPcs<F> &pcs() const { return pcs_; }

    /** Attach a host execution context (see Snark::setExec). */
    void setExec(const exec::ExecContext *exec) { exec_ = exec; }

    /** Prove that the tables satisfy a^4 * b = c row-wise. */
    HighDegreeProof<F>
    prove(const ConstraintTables<F> &tables,
          std::span<const F> public_inputs) const
    {
        return *proveInterruptible(tables, public_inputs, {});
    }

    /**
     * prove() with the same stage-boundary hook contract as
     * Snark::proveInterruptible: completed proofs are bit-identical
     * with or without a hook.
     */
    std::optional<HighDegreeProof<F>>
    proveInterruptible(const ConstraintTables<F> &tables,
                       std::span<const F> public_inputs,
                       const ProveStageHook &keep_going) const
    {
        if (tables.n_vars != n_vars_)
            panic("HighDegreeSnark::prove: tables have %u vars, system "
                  "built for %u",
                  tables.n_vars, n_vars_);

        Transcript transcript("batchzk.hdg.v1");
        absorbStatement(transcript, public_inputs);

        // 1. Commit (encoder + Merkle modules).
        auto st_a = pcs_.commit(tables.a, exec_);
        if (keep_going && !keep_going(ProveStage::Encode))
            return std::nullopt;
        auto st_b = pcs_.commit(tables.b, exec_);
        auto st_c = pcs_.commit(tables.c, exec_);
        if (keep_going && !keep_going(ProveStage::Merkle))
            return std::nullopt;
        transcript.absorbDigest("com.a", st_a.commitment.root);
        transcript.absorbDigest("com.b", st_b.commitment.root);
        transcript.absorbDigest("com.c", st_c.commitment.root);

        // 2. Gate challenge.
        std::vector<F> tau(n_vars_);
        for (auto &t : tau)
            t = transcript.template challengeField<F>("tau");
        if (keep_going && !keep_going(ProveStage::FiatShamir))
            return std::nullopt;

        // 3. Degree-6 sum-check over eq * (a^4 b - c).
        HighDegreeProof<F> proof;
        std::vector<F> point;
        {
            std::vector<F> eq = eqTable(tau);
            std::vector<F> a = tables.a;
            std::vector<F> b = tables.b;
            std::vector<F> c = tables.c;
            proof.gate_sc = proveHighDegreeGateFs(
                eq, a, b, c, transcript, &point, exec_);
        }
        if (keep_going && !keep_going(ProveStage::Sumcheck))
            return std::nullopt;

        // 4. Open the tables at the final point.
        proof.va = pcs_.evaluate(st_a, point);
        proof.vb = pcs_.evaluate(st_b, point);
        proof.vc = pcs_.evaluate(st_c, point);
        transcript.absorbField("open.va", proof.va);
        transcript.absorbField("open.vb", proof.vb);
        transcript.absorbField("open.vc", proof.vc);

        proof.open_a = pcs_.open(st_a, point, transcript, exec_);
        proof.open_b = pcs_.open(st_b, point, transcript, exec_);
        proof.open_c = pcs_.open(st_c, point, transcript, exec_);

        proof.commit_a = st_a.commitment;
        proof.commit_b = st_b.commitment;
        proof.commit_c = st_c.commitment;
        return proof;
    }

    /** Verify a proof against the public inputs. */
    bool
    verify(const HighDegreeProof<F> &proof,
           std::span<const F> public_inputs) const
    {
        Transcript transcript("batchzk.hdg.v1");
        absorbStatement(transcript, public_inputs);
        transcript.absorbDigest("com.a", proof.commit_a.root);
        transcript.absorbDigest("com.b", proof.commit_b.root);
        transcript.absorbDigest("com.c", proof.commit_c.root);

        std::vector<F> tau(n_vars_);
        for (auto &t : tau)
            t = transcript.template challengeField<F>("tau");

        auto verdict =
            verifyHighDegreeGateFs(F::zero(), proof.gate_sc, transcript);
        if (!verdict.ok || verdict.point.size() != n_vars_)
            return false;
        const std::vector<F> &point = verdict.point;

        // Final algebraic check against the claimed openings:
        // eq(tau, point) = prod_i ((1-tau_i)(1-r_i) + tau_i r_i).
        F eq_at_point = F::one();
        for (unsigned i = 0; i < n_vars_; ++i) {
            eq_at_point *= (F::one() - tau[i]) * (F::one() - point[i]) +
                           tau[i] * point[i];
        }
        if (eq_at_point * (pow4(proof.va) * proof.vb - proof.vc) !=
            verdict.final_claim)
            return false;

        transcript.absorbField("open.va", proof.va);
        transcript.absorbField("open.vb", proof.vb);
        transcript.absorbField("open.vc", proof.vc);

        if (!pcs_.verify(proof.commit_a, point, proof.va, proof.open_a,
                         transcript))
            return false;
        if (!pcs_.verify(proof.commit_b, point, proof.vb, proof.open_b,
                         transcript))
            return false;
        if (!pcs_.verify(proof.commit_c, point, proof.vc, proof.open_c,
                         transcript))
            return false;
        return true;
    }

  private:
    void
    absorbStatement(Transcript &transcript,
                    std::span<const F> public_inputs) const
    {
        uint8_t n = static_cast<uint8_t>(n_vars_);
        transcript.absorb("n_vars", std::span<const uint8_t>(&n, 1));
        for (const F &x : public_inputs)
            transcript.absorbField("public", x);
    }

    unsigned n_vars_;
    TensorPcs<F> pcs_;
    const exec::ExecContext *exec_ = nullptr;
};

} // namespace bzk

#endif // BZK_CORE_HIGHDEGREESNARK_H_
