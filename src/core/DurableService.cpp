#include "core/DurableService.h"

#include <algorithm>

#include "core/Serialize.h"
#include "exec/ExecContext.h"
#include "obs/Metrics.h"
#include "util/Log.h"
#include "util/Timer.h"

namespace bzk {

Rng
taskInstanceRng(uint64_t task_id, uint64_t seed, uint32_t n_vars)
{
    uint64_t mix = seed ^ (task_id * 0x9e3779b97f4a7c15ULL);
    return Rng(mix ^ (uint64_t{n_vars} << 56));
}

namespace {

/** Instance derivation: the idempotency key and the public seed pin
 *  the witness stream, so a re-proved task is bit-identical. */
Rng
taskRng(const journal::TaskRecord &task)
{
    return taskInstanceRng(task.task_id, task.seed, task.n_vars);
}

} // namespace

DurableProofService::DurableProofService(
    gpusim::Device &dev, journal::JournalOptions journal_opt,
    SystemOptions opt, obs::MetricsRegistry *metrics)
    : dev_(dev), opt_(opt), metrics_(metrics)
{
    Timer timer;
    auto replayed = journal::replayJournal(journal_opt.dir, metrics_);
    journal_ = std::make_unique<journal::Journal>(
        std::move(journal_opt), metrics_);
    journal_->adoptReplayed(replayed);

    for (auto &[id, completion] : replayed.completions)
        proofs_.emplace(id, std::move(completion));
    pending_ = std::move(replayed.pending);

    recovery_.records_replayed = replayed.records_replayed;
    recovery_.proofs_restored = proofs_.size();
    recovery_.tasks_resubmitted = pending_.size();
    recovery_.torn_records = replayed.torn_records;
    recovery_.torn = replayed.torn;
    recovery_.duplicates = replayed.duplicate_tasks;

    // Re-submit unfinished work into the pipeline scheduler now so the
    // admission accounting reflects the recovered queue.
    if (!pending_.empty())
        scheduleAccounting();
    recovery_.recovery_wall_ms = timer.milliseconds();

    if (metrics_) {
        metrics_
            ->gauge("bzk_journal_recovery_ms",
                    "replay + re-submission wall time of the last "
                    "recovery")
            .set(recovery_.recovery_wall_ms);
        metrics_
            ->counter("bzk_journal_resubmitted_total",
                      "unfinished tasks re-submitted by recovery")
            .add(static_cast<double>(recovery_.tasks_resubmitted));
    }
}

bool
DurableProofService::submit(const DurableTaskSpec &spec)
{
    bool known = proofs_.count(spec.id) ||
                 std::any_of(pending_.begin(), pending_.end(),
                             [&](const journal::TaskRecord &t) {
                                 return t.task_id == spec.id;
                             });
    if (known) {
        if (metrics_)
            metrics_
                ->counter("bzk_journal_duplicates_total",
                          "duplicate task submissions absorbed")
                .add(1.0);
        return false;
    }
    journal::TaskRecord record;
    record.task_id = spec.id;
    record.n_vars = spec.n_vars;
    record.priority = spec.priority;
    record.seed = spec.seed;
    record.kind = spec.kind;
    // Journal first, admit second: once append() returns the task is
    // on disk and can no longer be lost.
    journal_->append(record);
    pending_.push_back(record);
    return true;
}

std::vector<uint8_t>
DurableProofService::proveTask(const journal::TaskRecord &task,
                               const CrashHook &crash, bool &crashed)
{
    Rng rng = taskRng(task);
    exec::ExecContext exec(
        exec::ExecConfig{.threads = opt_.threads});
    ProveStageHook hook;
    if (crash)
        hook = [&](ProveStage stage) {
            return crash(task.task_id, stage);
        };
    crashed = false;
    if (task.kind == sched::ProtocolKind::HighDegreeGate) {
        auto tables = highDegreeInstance<Fr>(task.n_vars, rng);
        HighDegreeSnark<Fr> snark(task.n_vars, task.seed,
                                  opt_.column_openings);
        snark.setExec(&exec);
        auto proof = snark.proveInterruptible(tables, {}, hook);
        crashed = !proof.has_value();
        if (crashed)
            return {};
        HighDegreeSnark<Fr> verifier(task.n_vars, task.seed,
                                     opt_.column_openings);
        if (!verifier.verify(*proof, {}))
            panic("DurableProofService: task %llu produced an invalid "
                  "high-degree proof",
                  static_cast<unsigned long long>(task.task_id));
        return serializeHighDegreeProof(*proof);
    }
    auto tables = randomInstance(task.n_vars, rng);
    Snark<Fr> snark(task.n_vars, task.seed, opt_.column_openings);
    snark.setExec(&exec);
    auto proof = snark.proveInterruptible(tables, {}, hook);
    crashed = !proof.has_value();
    if (crashed)
        return {};
    Snark<Fr> verifier(task.n_vars, task.seed, opt_.column_openings);
    if (!verifier.verify(*proof, {}))
        panic("DurableProofService: task %llu produced an invalid "
              "proof",
              static_cast<unsigned long long>(task.task_id));
    return serializeProof(*proof);
}

size_t
DurableProofService::processAll(const CrashHook &crash)
{
    // Priority-first, ties in admission order — the AdmissionQueue's
    // policy, applied to the durable queue.
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const journal::TaskRecord &a,
                        const journal::TaskRecord &b) {
                         return a.priority > b.priority;
                     });

    size_t completed = 0;
    std::vector<uint64_t> done;
    for (const auto &task : pending_) {
        bool crashed = false;
        std::vector<uint8_t> proof_bytes =
            proveTask(task, crash, crashed);
        if (crashed)
            break; // power cut: nothing below is journaled

        journal::CompletionRecord completion;
        completion.task_id = task.task_id;
        completion.n_vars = task.n_vars;
        completion.seed = task.seed;
        completion.proof = std::move(proof_bytes);
        // Completion is durable before the proof counts as done.
        journal_->append(completion);
        proofs_[task.task_id] = std::move(completion);
        done.push_back(task.task_id);
        ++completed;
        if (metrics_) {
            metrics_
                ->counter("bzk_journal_proofs_completed_total",
                          "proofs completed and journaled")
                .add(1.0);
            metrics_
                ->counter(
                    "bzk_journal_proofs_completed_" +
                        std::string(
                            sched::protocolKindMetricName(task.kind)) +
                        "_total",
                    "proofs completed and journaled, by protocol kind")
                .add(1.0);
        }
    }

    pending_.erase(
        std::remove_if(pending_.begin(), pending_.end(),
                       [&](const journal::TaskRecord &t) {
                           return std::find(done.begin(), done.end(),
                                            t.task_id) != done.end();
                       }),
        pending_.end());
    return completed;
}

sched::SchedulerResult
DurableProofService::scheduleAccounting()
{
    if (pending_.empty())
        return {};
    std::vector<sched::ProofTask> tasks;
    tasks.reserve(pending_.size());
    for (const auto &t : pending_)
        tasks.push_back(makeProofTask(t.kind, t.n_vars, t.seed,
                                      t.task_id, t.priority));
    sched::SchedulerOptions sched_opt;
    sched_opt.seed = opt_.seed;
    sched_opt.overlap_transfers = opt_.overlap_transfers;
    sched_opt.dynamic_loading = opt_.dynamic_loading;
    sched_opt.lane_policy = opt_.lane_policy;
    sched::PipelineScheduler scheduler(dev_, sched_opt);
    scheduler.setObservability(metrics_, nullptr);
    return scheduler.run(std::move(tasks));
}

bool
DurableProofService::verifyAll() const
{
    for (const auto &[id, completion] : proofs_) {
        // Ack-only completions (empty proof) record that the task
        // finished but store the artifact elsewhere — the streaming
        // service and the CLI journal this way. Nothing to re-check.
        if (completion.proof.empty())
            continue;
        // Completion records predate protocol kinds; the proof's own
        // leading tag byte says which verifier replays it.
        if (completion.proof[0] == detail::kHighDegreeProofTag) {
            auto proof =
                deserializeHighDegreeProof<Fr>(completion.proof);
            if (!proof)
                return false;
            HighDegreeSnark<Fr> verifier(completion.n_vars,
                                         completion.seed,
                                         opt_.column_openings);
            if (!verifier.verify(*proof, {}))
                return false;
            continue;
        }
        auto proof = deserializeProof<Fr>(completion.proof);
        if (!proof)
            return false;
        Snark<Fr> verifier(completion.n_vars, completion.seed,
                           opt_.column_openings);
        if (!verifier.verify(*proof, {}))
            return false;
    }
    return true;
}

} // namespace bzk
