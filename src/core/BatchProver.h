#ifndef BZK_CORE_BATCHPROVER_H_
#define BZK_CORE_BATCHPROVER_H_

/**
 * @file
 * Host-side batch prover: generates many *real* proofs in parallel on
 * the CPU thread pool. This is the functional counterpart of the
 * simulated PipelinedZkpSystem — deployments without a GPU (or tests
 * that need every proof materialized) use this path; the GPU system
 * reproduces its timing behaviour at scale.
 */

#include <atomic>
#include <vector>

#include "circuit/Circuit.h"
#include "core/Snark.h"
#include "util/Log.h"
#include "util/ThreadPool.h"

namespace bzk {

/** Result of a host batch run. */
template <typename F>
struct BatchProofs
{
    std::vector<SnarkProof<F>> proofs;
    /** True iff every produced proof verified. */
    bool all_verified = true;
};

/**
 * Prove a batch of instances of one circuit-size class in parallel.
 *
 * @tparam F field type.
 */
template <typename F>
class BatchProver
{
  public:
    /**
     * @param n_vars constraint-table log-size all instances share.
     * @param seed   public encoder seed.
     * @param threads worker threads (0 = hardware concurrency).
     */
    BatchProver(unsigned n_vars, uint64_t seed, size_t threads = 0,
                size_t column_openings = 8)
        : snark_(n_vars, seed, column_openings), pool_(threads)
    {
    }

    const Snark<F> &snark() const { return snark_; }

    /**
     * Prove every instance; optionally self-verify each proof (the
     * service-side sanity check before shipping).
     */
    BatchProofs<F>
    proveAll(const std::vector<ConstraintTables<F>> &instances,
             bool self_verify = true)
    {
        BatchProofs<F> out;
        out.proofs.resize(instances.size());
        std::atomic<bool> ok{true};
        for (size_t i = 0; i < instances.size(); ++i) {
            pool_.submit([this, &instances, &out, &ok, i, self_verify] {
                out.proofs[i] = snark_.prove(instances[i], {});
                if (self_verify && !snark_.verify(out.proofs[i], {}))
                    ok.store(false, std::memory_order_relaxed);
            });
        }
        pool_.wait();
        out.all_verified = ok.load();
        return out;
    }

  private:
    Snark<F> snark_;
    ThreadPool pool_;
};

} // namespace bzk

#endif // BZK_CORE_BATCHPROVER_H_
