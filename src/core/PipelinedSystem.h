#ifndef BZK_CORE_PIPELINEDSYSTEM_H_
#define BZK_CORE_PIPELINEDSYSTEM_H_

/**
 * @file
 * The fully pipelined ZKP system of the paper's Section 4 (Figure 7),
 * plus the Orion&Arkworks-style CPU baseline it is compared against in
 * Table 7.
 *
 * One proof task enters the pipeline per cycle. Inside a cycle the three
 * module groups (linear-time encoders, Merkle trees, sum-check) all run
 * concurrently on statically partitioned lanes — partitioned
 * proportionally to each module's amortized cost, the paper's
 * "35 : 12 : 113"-style allocation — while the next task's inputs stream
 * from host memory and finished intermediate layers stream back
 * (dynamic loading, multi-stream overlap).
 */

#include <cstddef>
#include <vector>

#include "circuit/Circuit.h"
#include "core/Snark.h"
#include "ff/Fields.h"
#include "gpusim/BatchStats.h"
#include "gpusim/Device.h"
#include "sched/PipelineScheduler.h"
#include "util/Rng.h"

namespace bzk::obs {
class MetricsRegistry;
class TraceRecorder;
} // namespace bzk::obs

namespace bzk {

/** Configuration of the batch system. */
struct SystemOptions
{
    /** Number of proofs to generate functionally (and verify). */
    size_t functional = 1;
    /** Skip functional proving above this table log-size. */
    unsigned max_functional_vars = 14;
    /** PCS spot-check count. */
    size_t column_openings = 8;
    /** Public encoder seed. */
    uint64_t seed = 2024;
    /**
     * Host threads for the functional provers (0 = resolve from the
     * --threads override, BZK_THREADS, then hardware concurrency; see
     * exec::resolveThreads). Proofs are bit-identical for any value.
     */
    size_t threads = 0;
    /**
     * Ablation: overlap host transfers with compute via multi-stream
     * (the paper's technique). When false, each cycle's input transfer
     * serializes with its computation.
     */
    bool overlap_transfers = true;
    /**
     * Ablation: dynamic loading (one task's data resident per pipeline
     * region). When false, the whole batch's inputs are staged on the
     * device up front, as the intuitive designs do.
     */
    bool dynamic_loading = true;
    /**
     * Lane-partition policy across module groups (see
     * sched::LanePolicy). Proportional is the legacy default and
     * keeps simulated schedules bit-identical with older builds.
     */
    sched::LanePolicy lane_policy = sched::LanePolicy::Proportional;
};

/** Result of a batch system run. */
struct SystemRunResult
{
    gpusim::BatchStats stats;
    /** Amortized per-proof module times, ms (Table 7 columns). */
    double encoder_ms = 0.0;
    double merkle_ms = 0.0;
    double sumcheck_ms = 0.0;
    /** Per-cycle communication / computation, ms (Table 9). */
    double comm_ms_per_cycle = 0.0;
    double comp_ms_per_cycle = 0.0;
    double cycle_ms = 0.0;
    /** Host->device bytes streamed per cycle (Table 9's "Comm. Size"). */
    uint64_t h2d_bytes_per_cycle = 0;
    /** Lane split across the three module groups (Sec. 4 example). */
    double lanes_encoder = 0.0;
    double lanes_merkle = 0.0;
    double lanes_sumcheck = 0.0;
    /** Functional proofs produced (if any). */
    std::vector<SnarkProof<Fr>> proofs;
    /** All functional proofs passed verification. */
    bool verified = true;

    /// @name Fault-injection outcomes (all zero without an injector)
    /// @{

    /** Cycles run with part of the lane budget failed. */
    size_t degraded_cycles = 0;
    /**
     * Mean fraction of the static lane split re-allocated onto the
     * surviving lanes per degraded cycle (0 when never degraded).
     */
    double relocated_lane_fraction = 0.0;
    /** Corrupted staged Merkle layers caught by the root re-check. */
    size_t corrupt_detected = 0;
    /** Tasks re-run after their staged layers failed the re-check. */
    size_t retried_tasks = 0;

    /// @}

    /** Per-task scheduler accounting, in admission order. */
    std::vector<sched::TaskStats> task_stats;
};

/** Per-proof module work in lane-cycles (the system's cost inventory). */
struct SystemWorkModel
{
    double encoder_cycles = 0.0;
    double merkle_cycles = 0.0;
    double sumcheck_cycles = 0.0;
    size_t encoder_stages = 0;
    size_t merkle_stages = 0;
    size_t sumcheck_stages = 0;
    uint64_t h2d_bytes = 0;
    uint64_t d2h_bytes = 0;
    uint64_t device_bytes = 0;

    double
    totalCycles() const
    {
        return encoder_cycles + merkle_cycles + sumcheck_cycles;
    }

    size_t
    totalStages() const
    {
        return encoder_stages + merkle_stages + sumcheck_stages;
    }
};

/** Derive the per-proof work model for tables of 2^n_vars rows. */
SystemWorkModel systemWorkModel(unsigned n_vars, uint64_t seed);

/**
 * Work model for the HighDegreeGate protocol: the commitments (encoder
 * and Merkle modules) and transfer budgets match systemWorkModel, but
 * the degree-6 gate sum-check's 7-point round evaluations make the
 * sum-check module ~4x costlier — the HyperPlonk-style cost mix the
 * measured-cost lane policy is built for.
 */
SystemWorkModel highDegreeWorkModel(unsigned n_vars, uint64_t seed);

/** Work model for @p kind (dispatches to the two models above). */
SystemWorkModel protocolWorkModel(sched::ProtocolKind kind,
                                  unsigned n_vars, uint64_t seed);

/**
 * Lower @p model into the scheduler's stage graph: encoder, Merkle,
 * Fiat-Shamir and sum-check as first-class stages with lane-cycle
 * costs, transfer byte budgets, and the Merkle host-staging buffer.
 * The Fiat-Shamir stage carries no lane-cycles and no pipeline depth
 * (its transcript hashing is amortized into the module costs).
 */
sched::StageGraph systemStageGraph(const SystemWorkModel &model);

/** Build one schedulable proof task for tables of 2^n_vars rows. */
sched::ProofTask makeProofTask(unsigned n_vars, uint64_t seed,
                               uint64_t id = 0, int priority = 0);

/** Build one schedulable proof task of the given protocol kind. */
sched::ProofTask makeProofTask(sched::ProtocolKind kind, unsigned n_vars,
                               uint64_t seed, uint64_t id = 0,
                               int priority = 0);

/** The paper's system: batch proof generation on the simulated GPU. */
class PipelinedZkpSystem
{
  public:
    PipelinedZkpSystem(gpusim::Device &dev, SystemOptions opt = {});

    /**
     * Attach observability sinks (either may be nullptr, the default):
     * @p metrics receives counters/gauges/histograms per run, @p trace
     * receives per-cycle spans on the encoder / Merkle / sum-check lane
     * tracks plus fault and retry instants. Both are pure observers —
     * proofs and simulated times are bit-identical with and without
     * them (pinned by test_obs, same discipline as the FaultInjector).
     * Neither is owned.
     */
    void setObservability(obs::MetricsRegistry *metrics,
                          obs::TraceRecorder *trace)
    {
        metrics_ = metrics;
        trace_ = trace;
    }

    /**
     * Generate proofs for @p batch instances of a random circuit whose
     * constraint tables have 2^n_vars rows.
     */
    SystemRunResult run(size_t batch, unsigned n_vars, Rng &rng);

    /**
     * Run a heterogeneous batch — tasks may mix n_vars (and priority)
     * freely — through the pipeline scheduler. Simulation only: no
     * functional proofs are produced (use run() for those). Per-task
     * admission/completion accounting lands in
     * SystemRunResult::task_stats; aggregate per-cycle columns report
     * the costliest task shape, which paces the pipeline.
     */
    SystemRunResult runTasks(std::vector<sched::ProofTask> tasks);

  private:
    /** Simulate @p tasks on the scheduler and fill @p result. */
    void simulate(std::vector<sched::ProofTask> tasks,
                  SystemRunResult &result);

    gpusim::Device &dev_;
    SystemOptions opt_;
    obs::MetricsRegistry *metrics_ = nullptr;
    obs::TraceRecorder *trace_ = nullptr;
};

/**
 * CPU baseline with the same computational modules (Orion's encoder and
 * Merkle trees + Arkworks' sum-check): the real prover measured on the
 * host, with per-module timing breakdowns. Large sizes are sampled at
 * @p measure_cap_vars and extrapolated linearly (documented in
 * DESIGN.md).
 */
class SameModulesCpuBaseline
{
  public:
    explicit SameModulesCpuBaseline(SystemOptions opt = {},
                                    unsigned measure_cap_vars = 16)
        : opt_(opt), cap_vars_(measure_cap_vars)
    {
    }

    /** @copydoc PipelinedZkpSystem::run */
    SystemRunResult run(size_t batch, unsigned n_vars, Rng &rng);

  private:
    SystemOptions opt_;
    unsigned cap_vars_;
};

/** Build a random satisfied instance sized for 2^n_vars rows. */
ConstraintTables<Fr> randomInstance(unsigned n_vars, Rng &rng);

} // namespace bzk

#endif // BZK_CORE_PIPELINEDSYSTEM_H_
