#ifndef BZK_CORE_STREAMINGSERVICE_H_
#define BZK_CORE_STREAMINGSERVICE_H_

/**
 * @file
 * Open-loop streaming service model: the paper motivates batch
 * throughput with providers whose "customer inputs come in like a
 * flowing stream" (Sec. 1, Sec. 5). This module closes the loop from
 * the pipeline's cycle rate to request-level latency: Poisson arrivals
 * queue for admission (one task enters the pipeline per cycle) and each
 * admitted task completes after the pipeline depth.
 *
 * It exposes the queueing quantities a service operator cares about —
 * sojourn percentiles, queue length, saturation — which the paper's
 * tables imply but do not report.
 */

#include <cstddef>
#include <cstdint>

#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"
#include "util/Rng.h"

namespace bzk::journal {
class Journal;
} // namespace bzk::journal

namespace bzk {

/** Workload description for a streaming run. */
struct StreamingOptions
{
    /** Mean request arrival rate (requests per millisecond). */
    double arrival_rate_per_ms = 1.0;
    /** Requests to simulate. */
    size_t num_requests = 10000;
    /** Circuit-size class (constraint-table log-size). */
    unsigned n_vars = 18;
    /** Public encoder seed. */
    uint64_t seed = 2024;
    /** Proving protocol the stream's requests run. */
    sched::ProtocolKind kind = sched::ProtocolKind::TableCommit;

    /// @name Admission-queue robustness (defaults preserve the
    /// unguarded open-loop behavior bit for bit)
    /// @{

    /**
     * A request still queued this long after submission abandons the
     * queue (counted in StreamingResult::timed_out). 0 disables.
     */
    double timeout_ms = 0.0;
    /**
     * Re-submissions a timed-out request may make before it is dropped
     * for good. 0 disables retry.
     */
    size_t max_retries = 0;
    /**
     * Base client back-off before the first re-submission; doubles on
     * every further attempt (exponential backoff). When 0 with retries
     * enabled, one pipeline cycle is used.
     */
    double backoff_ms = 0.0;
    /**
     * Admission-queue capacity; arrivals (and re-submissions) beyond it
     * are shed instead of queued, so an overloaded service rejects work
     * rather than growing the queue without bound. 0 = unbounded.
     */
    size_t queue_capacity = 0;

    /// @}
};

/** Request-level results of a streaming run. */
struct StreamingResult
{
    /** Pipeline admission interval, ms. */
    double cycle_ms = 0.0;
    /** Pipeline depth in cycles. */
    size_t depth = 0;
    /** Offered load as a fraction of pipeline capacity. */
    double offered_load = 0.0;
    /** Sojourn time (arrival to proof completion) percentiles, ms. */
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
    /** Time-averaged queue length at admission. */
    double mean_queue = 0.0;
    /** Largest queue length observed at any cycle boundary. */
    size_t max_queue = 0;
    /** Completed requests per ms over the run. */
    double throughput_per_ms = 0.0;

    /// @name Robustness counters (all zero with the default options and
    /// no fault injector)
    /// @{

    /** Requests whose proof actually completed. */
    size_t completed = 0;
    /** Timeout events (a request gave up waiting for admission). */
    size_t timed_out = 0;
    /** Re-submissions made after timeouts (with backoff). */
    size_t retried = 0;
    /** Arrivals rejected because the admission queue was full. */
    size_t shed = 0;

    /// @}
};

/** Streaming front-end over the pipelined ZKP system. */
class StreamingZkpService
{
  public:
    StreamingZkpService(gpusim::Device &dev, SystemOptions system_opt = {})
        : dev_(dev), system_opt_(system_opt)
    {
    }

    /**
     * Attach a metrics registry (nullptr detaches, the default). Each
     * run() adds request counters (arrivals/completions/timeouts/
     * retries/shed) and a sojourn-time histogram. Pure observer: the
     * simulated results are identical with and without it. Not owned.
     */
    void setMetrics(obs::MetricsRegistry *metrics) { metrics_ = metrics; }

    /**
     * Attach a durable task journal (nullptr detaches, the default).
     * Each admitted request is journaled as a task record the moment it
     * enters the pipeline and acked with a completion record when its
     * proof completes, so a crashed service can re-submit every
     * admitted-but-unfinished request on restart. Pure observer of the
     * simulation: results are identical with and without it. Not owned.
     */
    void setJournal(journal::Journal *journal) { journal_ = journal; }

    /**
     * Simulate @p workload against the pipeline's steady-state cycle.
     * Deterministic given @p rng's seed.
     */
    StreamingResult run(const StreamingOptions &workload, Rng &rng) const;

  private:
    gpusim::Device &dev_;
    SystemOptions system_opt_;
    obs::MetricsRegistry *metrics_ = nullptr;
    journal::Journal *journal_ = nullptr;
};

} // namespace bzk

#endif // BZK_CORE_STREAMINGSERVICE_H_
