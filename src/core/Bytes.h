#ifndef BZK_CORE_BYTES_H_
#define BZK_CORE_BYTES_H_

/**
 * @file
 * Deterministic little-endian byte encoding primitives, shared by the
 * proof wire format (core/Serialize.h) and the durable task journal
 * (src/journal). ByteWriter is an append-only sink; ByteReader is a
 * bounds-checked source where every read fails soft via ok(), so a
 * truncated or hostile buffer can never read out of bounds.
 */

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "hash/Sha256.h"

namespace bzk {

/** Append-only byte sink. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    raw(std::span<const uint8_t> data)
    {
        bytes_.insert(bytes_.end(), data.begin(), data.end());
    }

    template <typename F>
    void
    field(const F &v)
    {
        uint8_t buf[F::kNumBytes];
        v.toBytes(buf);
        raw(std::span<const uint8_t>(buf, F::kNumBytes));
    }

    void
    digest(const Digest &d)
    {
        raw(d.bytes);
    }

    /** Take the accumulated bytes. */
    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/** Bounds-checked byte source; all reads fail-soft via ok(). */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

    bool ok() const { return ok_; }

    /** Bytes not yet consumed. */
    size_t remaining() const { return data_.size() - pos_; }

    uint8_t
    u8()
    {
        uint8_t v = 0;
        if (take(1))
            v = data_[pos_ - 1];
        return v;
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        if (take(4))
            for (int i = 0; i < 4; ++i)
                v |= static_cast<uint32_t>(data_[pos_ - 4 + i]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        if (take(8))
            for (int i = 0; i < 8; ++i)
                v |= static_cast<uint64_t>(data_[pos_ - 8 + i]) << (8 * i);
        return v;
    }

    template <typename F>
    F
    field()
    {
        if (!take(F::kNumBytes))
            return F::zero();
        return F::fromBytes(data_.data() + pos_ - F::kNumBytes);
    }

    Digest
    digest()
    {
        Digest d;
        if (take(32))
            std::memcpy(d.bytes.data(), data_.data() + pos_ - 32, 32);
        return d;
    }

    /**
     * Read a length prefix, failing when it exceeds @p cap (protects
     * against hostile lengths before any allocation).
     */
    size_t
    length(size_t cap)
    {
        uint32_t v = u32();
        if (v > cap)
            ok_ = false;
        return ok_ ? v : 0;
    }

  private:
    bool
    take(size_t n)
    {
        if (!ok_ || pos_ + n > data_.size()) {
            ok_ = false;
            return false;
        }
        pos_ += n;
        return true;
    }

    std::span<const uint8_t> data_;
    size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace bzk

#endif // BZK_CORE_BYTES_H_
