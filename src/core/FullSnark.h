#ifndef BZK_CORE_FULLSNARK_H_
#define BZK_CORE_FULLSNARK_H_

/**
 * @file
 * The wiring-sound BatchZK proof system: a Spartan-shaped SNARK over
 * the sparse R1CS of a circuit, with the witness committed through the
 * same tensor-code PCS (encoder + Merkle modules).
 *
 * Protocol (two sum-check phases, as in Spartan/Brakedown):
 *
 *   1. commit the private half of z (the wire values) -> root;
 *   2. tau <- transcript; phase-1 cubic sum-check over rows:
 *        sum_x eq(tau,x) * (Az~(x) Bz~(x) - Cz~(x)) = 0
 *      ending at rx with claims vA, vB, vC;
 *   3. alpha <- transcript; phase-2 quadratic sum-check over columns:
 *        vA + a vB + a^2 vC = sum_y M(y) z~(y),
 *        M(y) = A~(rx,y) + a B~(rx,y) + a^2 C~(rx,y)
 *      ending at ry with claims for M(ry) (the verifier evaluates the
 *      sparse matrix MLEs itself) and z~(ry);
 *   4. z~(ry) splits into the public half (verifier-computed from the
 *      claimed inputs) and the committed private half, opened via the
 *      PCS at ry's tail.
 *
 * Unlike the table-commitment Snark, tampering with *any* wiring
 * relation — including the values of public inputs and constants —
 * breaks one of the two sum-checks or the opening.
 */

#include <span>
#include <vector>

#include "circuit/Circuit.h"
#include "circuit/R1cs.h"
#include "core/TensorPcs.h"
#include "hash/Transcript.h"
#include "sumcheck/Sumcheck.h"

namespace bzk {

/** A complete wiring-sound proof. */
template <typename F>
struct FullSnarkProof
{
    PcsCommitment commit_w;
    /** Phase 1 (rows), cubic: 4 evaluations per round. */
    ProductSumcheckProof<F> phase1;
    F va{};
    F vb{};
    F vc{};
    /** Phase 2 (columns), quadratic: 3 evaluations per round. */
    ProductSumcheckProof<F> phase2;
    /** Claimed private-half evaluation w~(ry tail). */
    F vw{};
    PcsEvalProof<F> open_w;

    /** Rough wire size in bytes. */
    size_t
    sizeBytes() const
    {
        size_t bytes = 32 + 4 * F::kNumBytes;
        for (const auto &g : phase1.rounds)
            bytes += g.size() * F::kNumBytes;
        for (const auto &g : phase2.rounds)
            bytes += g.size() * F::kNumBytes;
        bytes += (open_w.eval_row.size() + open_w.proximity_row.size()) *
                 F::kNumBytes;
        for (const auto &column : open_w.columns)
            bytes += column.size() * F::kNumBytes;
        for (const auto &path : open_w.paths)
            bytes += path.siblings.size() * 32 + 8;
        return bytes;
    }
};

/** Prover + verifier for one circuit's R1CS. */
template <typename F>
class FullSnark
{
  public:
    /**
     * @param r1cs the circuit's constraint system (public parameters).
     * @param seed shared encoder seed.
     * @param column_openings PCS spot-check count.
     */
    FullSnark(R1cs<F> r1cs, uint64_t seed, size_t column_openings = 8)
        : r1cs_(std::move(r1cs)),
          pcs_(r1cs_.col_vars - 1, seed, column_openings)
    {
    }

    const R1cs<F> &r1cs() const { return r1cs_; }

    /** Prove the circuit is satisfied by @p assignment on @p inputs. */
    FullSnarkProof<F>
    prove(std::span<const F> inputs,
          const Assignment<F> &assignment) const
    {
        Transcript transcript("batchzk.fullsnark.v1");
        absorbStatement(transcript, inputs);

        std::vector<F> z = r1cs_.extendWitness(inputs, assignment);

        FullSnarkProof<F> proof;
        auto st_w = pcs_.commit(r1cs_.privateHalf(assignment));
        proof.commit_w = st_w.commitment;
        transcript.absorbDigest("com.w", proof.commit_w.root);

        std::vector<F> tau(r1cs_.row_vars);
        for (auto &t : tau)
            t = transcript.template challengeField<F>("tau");

        // Phase 1 over the rows.
        std::vector<F> az = r1cs_.apply(r1cs_.a, z);
        std::vector<F> bz = r1cs_.apply(r1cs_.b, z);
        std::vector<F> cz = r1cs_.apply(r1cs_.c, z);
        std::vector<F> rx;
        proof.phase1 =
            provePhase1(az, bz, cz, tau, transcript, rx);
        proof.va = az[0];
        proof.vb = bz[0];
        proof.vc = cz[0];
        transcript.absorbField("p1.va", proof.va);
        transcript.absorbField("p1.vb", proof.vb);
        transcript.absorbField("p1.vc", proof.vc);

        // Phase 2 over the columns.
        F alpha = transcript.template challengeField<F>("alpha");
        std::vector<F> m(r1cs_.numCols(), F::zero());
        auto eq_rx = eqTable(rx);
        F a2 = alpha * alpha;
        for (const auto &e : r1cs_.a)
            m[e.col] += e.coeff * eq_rx[e.row];
        for (const auto &e : r1cs_.b)
            m[e.col] += alpha * e.coeff * eq_rx[e.row];
        for (const auto &e : r1cs_.c)
            m[e.col] += a2 * e.coeff * eq_rx[e.row];

        std::vector<Multilinear<F>> factors;
        factors.emplace_back(std::move(m));
        factors.emplace_back(z);
        std::vector<F> ry;
        proof.phase2 =
            proveProductSumcheckFs(factors, transcript, &ry);

        // Open the private half at ry's tail.
        std::vector<F> ry_tail(ry.begin() + 1, ry.end());
        proof.vw = pcs_.evaluate(st_w, ry_tail);
        transcript.absorbField("p2.vw", proof.vw);
        proof.open_w = pcs_.open(st_w, ry_tail, transcript);
        return proof;
    }

    /** Verify a proof against claimed public inputs. */
    bool
    verify(const FullSnarkProof<F> &proof,
           std::span<const F> inputs) const
    {
        if (inputs.size() != r1cs_.num_inputs)
            return false;
        Transcript transcript("batchzk.fullsnark.v1");
        absorbStatement(transcript, inputs);
        transcript.absorbDigest("com.w", proof.commit_w.root);

        std::vector<F> tau(r1cs_.row_vars);
        for (auto &t : tau)
            t = transcript.template challengeField<F>("tau");

        // Phase 1 checks.
        if (proof.phase1.rounds.size() != r1cs_.row_vars)
            return false;
        F claim = F::zero();
        std::vector<F> rx;
        for (const auto &g : proof.phase1.rounds) {
            if (g.size() != 4 || g[0] + g[1] != claim)
                return false;
            for (const F &gi : g)
                transcript.absorbField("p1.g", gi);
            F r = transcript.template challengeField<F>("p1.r");
            std::vector<F> xs{F::fromUint(0), F::fromUint(1),
                              F::fromUint(2), F::fromUint(3)};
            claim = lagrangeEval(xs, g, r);
            rx.push_back(r);
        }
        F eq_at_rx = F::one();
        for (unsigned i = 0; i < r1cs_.row_vars; ++i) {
            eq_at_rx *= (F::one() - tau[i]) * (F::one() - rx[i]) +
                        tau[i] * rx[i];
        }
        if (eq_at_rx * (proof.va * proof.vb - proof.vc) != claim)
            return false;
        transcript.absorbField("p1.va", proof.va);
        transcript.absorbField("p1.vb", proof.vb);
        transcript.absorbField("p1.vc", proof.vc);

        // Phase 2 checks.
        F alpha = transcript.template challengeField<F>("alpha");
        F target = proof.va + alpha * proof.vb +
                   alpha * alpha * proof.vc;
        auto verdict =
            verifyProductSumcheckFs(target, proof.phase2, transcript);
        if (!verdict.ok || verdict.point.size() != r1cs_.col_vars)
            return false;
        const std::vector<F> &ry = verdict.point;

        // The verifier evaluates the sparse matrix MLEs itself.
        F vm = r1cs_.evalMatrixMle(r1cs_.a, rx, ry) +
               alpha * r1cs_.evalMatrixMle(r1cs_.b, rx, ry) +
               alpha * alpha * r1cs_.evalMatrixMle(r1cs_.c, rx, ry);
        std::vector<F> ry_tail(ry.begin() + 1, ry.end());
        F vz = (F::one() - ry[0]) *
                   r1cs_.evalPublicMle(inputs, ry_tail) +
               ry[0] * proof.vw;
        if (vm * vz != verdict.final_claim)
            return false;

        transcript.absorbField("p2.vw", proof.vw);
        return pcs_.verify(proof.commit_w, ry_tail, proof.vw,
                           proof.open_w, transcript);
    }

  private:
    void
    absorbStatement(Transcript &transcript,
                    std::span<const F> inputs) const
    {
        uint8_t dims[2] = {static_cast<uint8_t>(r1cs_.row_vars),
                           static_cast<uint8_t>(r1cs_.col_vars)};
        transcript.absorb("r1cs.dims", dims);
        for (const F &x : inputs)
            transcript.absorbField("public", x);
    }

    /**
     * Phase-1 prover: cubic sum-check over
     * eq(tau,x) (az(x) bz(x) - cz(x)); folds the dense tables in place
     * so az[0] etc. end up as the claims at rx.
     */
    ProductSumcheckProof<F>
    provePhase1(std::vector<F> &az, std::vector<F> &bz,
                std::vector<F> &cz, const std::vector<F> &tau,
                Transcript &transcript, std::vector<F> &rx) const
    {
        std::vector<F> eq = eqTable(tau);
        ProductSumcheckProof<F> proof;
        const F two = F::fromUint(2);
        const F three = F::fromUint(3);
        for (unsigned round = 0; round < r1cs_.row_vars; ++round) {
            size_t half = az.size() / 2;
            std::vector<F> g(4, F::zero());
            for (size_t x = 0; x < half; ++x) {
                F d_eq = eq[x + half] - eq[x];
                F d_a = az[x + half] - az[x];
                F d_b = bz[x + half] - bz[x];
                F d_c = cz[x + half] - cz[x];
                auto term = [&](const F &t) {
                    return (eq[x] + t * d_eq) *
                           ((az[x] + t * d_a) * (bz[x] + t * d_b) -
                            (cz[x] + t * d_c));
                };
                g[0] += eq[x] * (az[x] * bz[x] - cz[x]);
                g[1] += eq[x + half] *
                        (az[x + half] * bz[x + half] - cz[x + half]);
                g[2] += term(two);
                g[3] += term(three);
            }
            for (const F &gi : g)
                transcript.absorbField("p1.g", gi);
            F r = transcript.template challengeField<F>("p1.r");
            for (size_t x = 0; x < half; ++x) {
                eq[x] = eq[x] + r * (eq[x + half] - eq[x]);
                az[x] = az[x] + r * (az[x + half] - az[x]);
                bz[x] = bz[x] + r * (bz[x + half] - bz[x]);
                cz[x] = cz[x] + r * (cz[x + half] - cz[x]);
            }
            eq.resize(half);
            az.resize(half);
            bz.resize(half);
            cz.resize(half);
            rx.push_back(r);
            proof.rounds.push_back(std::move(g));
        }
        return proof;
    }

    R1cs<F> r1cs_;
    TensorPcs<F> pcs_;
};

} // namespace bzk

#endif // BZK_CORE_FULLSNARK_H_
