#include "core/PipelinedSystem.h"

#include <algorithm>
#include <cmath>

#include "encoder/GpuEncoder.h"
#include "gpusim/Calibration.h"
#include "gpusim/FaultInjector.h"
#include "merkle/GpuMerkle.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "util/Log.h"
#include "util/Timer.h"

namespace bzk {

using gpusim::BatchStats;
using gpusim::KernelDesc;
using gpusim::OpId;
using gpusim::StreamId;

namespace {

/** PCS shape used by Snark/TensorPcs for n variables. */
void
pcsShape(unsigned n_vars, size_t &k_rows, size_t &m_cols)
{
    unsigned col = (n_vars + 1) / 2;
    if (col < 5)
        col = 5;
    m_cols = size_t{1} << col;
    k_rows = size_t{1} << (n_vars - col);
}

/**
 * Root re-check on a staged Merkle layer: commit to a small real tree,
 * stage its leaf layer to host bytes (as dynamic loading does), let the
 * injector flip bytes in the staged copy, rebuild the root from the
 * reloaded layer and compare with the committed root. Returns true when
 * the corruption is detected (roots differ) — with SHA-256 this is
 * every time any byte actually flipped.
 */
bool
merkleRecheckDetects(gpusim::FaultInjector &inj, uint64_t seed,
                     size_t cycle)
{
    Rng rng(seed ^ (0xc0de1abULL + cycle));
    auto blocks = randomBlocks(8, rng);
    MerkleTree committed = MerkleTree::build(blocks);

    const auto &leaves = committed.layers().front();
    std::vector<uint8_t> staged;
    staged.reserve(leaves.size() * 32);
    for (const auto &d : leaves)
        staged.insert(staged.end(), d.bytes.begin(), d.bytes.end());
    if (!inj.corruptLayer(staged))
        return false;

    std::vector<Digest> reloaded(leaves.size());
    for (size_t i = 0; i < leaves.size(); ++i)
        std::copy_n(staged.begin() + static_cast<ptrdiff_t>(32 * i), 32,
                    reloaded[i].bytes.begin());
    MerkleTree rebuilt = MerkleTree::buildFromLeaves(std::move(reloaded));
    return rebuilt.root() != committed.root();
}

} // namespace

ConstraintTables<Fr>
randomInstance(unsigned n_vars, Rng &rng)
{
    size_t target = (size_t{1} << n_vars) - (size_t{1} << (n_vars - 2));
    auto circuit = randomCircuit<Fr>(target, 8, rng);
    std::vector<Fr> witness(circuit.numWitnesses());
    for (auto &w : witness)
        w = Fr::random(rng);
    auto assignment = circuit.evaluate({}, witness);
    return circuit.buildTables(assignment);
}

SystemWorkModel
systemWorkModel(unsigned n_vars, uint64_t seed)
{
    size_t k, m;
    pcsShape(n_vars, k, m);
    double n_entries = static_cast<double>(size_t{1} << n_vars);

    SystemWorkModel model;

    // Encoder: 3 tables, each k row-messages of length m.
    EncoderTopology topo(m, seed);
    auto stages = encoderStageCosts(topo);
    double per_code = 0.0;
    for (const auto &s : stages)
        per_code += s.lane_cycles_sorted;
    model.encoder_cycles = 3.0 * static_cast<double>(k) * per_code;
    model.encoder_stages = stages.size();

    // Merkle: 3 trees; hashing 2m codeword columns of k elements each
    // (k*32/64 compressions per column) plus the tree over 2m leaves.
    double col_compress = static_cast<double>(k) / 2.0;
    double per_tree = 2.0 * m * col_compress + (2.0 * m - 1.0);
    model.merkle_cycles = 3.0 * per_tree * gpusim::kSha256CompressCycles;
    size_t merkle_layers = 1;
    for (size_t v = 2 * m; v > 1; v >>= 1)
        ++merkle_layers;
    model.merkle_stages = merkle_layers;

    // Sum-check: the cubic constraint sum-check over 2^n rows (folds of
    // four tables plus the degree-3 round evaluations), and the PCS
    // row-combination passes (2 combos x 3 tables).
    double per_pair = 12.0 * gpusim::kFieldMulCycles +
                      30.0 * gpusim::kFieldAddCycles +
                      3.0 * gpusim::kGlobalAccessCycles;
    double combos = 6.0 * n_entries *
                    (gpusim::kFieldMulCycles + gpusim::kFieldAddCycles);
    model.sumcheck_cycles = n_entries * per_pair + combos;
    model.sumcheck_stages = n_vars + 2;

    // Dynamic loading per cycle: the three constraint tables plus the
    // Lagrange-encoded intermediate results of the proving function
    // (Sec. 4) — sized to match the paper's reported 320 MB per cycle
    // at S = 2^20 (Table 9).
    model.h2d_bytes = static_cast<uint64_t>(10.0 * n_entries * 32.0);
    model.d2h_bytes =
        static_cast<uint64_t>(n_entries * 16.0) + (uint64_t{1} << 20);

    // Device residency (Table 10): the streamed per-cycle data is
    // consumed stage by stage, so only the live stage slices stay
    // resident — ~3 table-equivalents — plus a fixed floor for the
    // encoder graphs, Merkle staging and runtime buffers.
    model.device_bytes =
        static_cast<uint64_t>(96.0 * n_entries) + (64ULL << 20);
    return model;
}

PipelinedZkpSystem::PipelinedZkpSystem(gpusim::Device &dev,
                                       SystemOptions opt)
    : dev_(dev), opt_(opt)
{
}

SystemRunResult
PipelinedZkpSystem::run(size_t batch, unsigned n_vars, Rng &rng)
{
    SystemRunResult result;

    // Functional proofs on the real prover, then verified.
    if (n_vars <= opt_.max_functional_vars) {
        size_t count = std::min(batch, opt_.functional);
        Snark<Fr> snark(n_vars, opt_.seed, opt_.column_openings);
        for (size_t i = 0; i < count; ++i) {
            auto tables = randomInstance(n_vars, rng);
            auto proof = snark.prove(tables, {});
            result.verified =
                result.verified && snark.verify(proof, {});
            result.proofs.push_back(std::move(proof));
        }
    }

    SystemWorkModel model = systemWorkModel(n_vars, opt_.seed);
    double cores = dev_.spec().cuda_cores;
    double total = model.totalCycles();

    // Static lane partition proportional to module cost (Sec. 4's
    // "35 : 12 : 113" method, derived here from the model itself).
    result.lanes_encoder = cores * model.encoder_cycles / total;
    result.lanes_merkle = cores * model.merkle_cycles / total;
    result.lanes_sumcheck = cores * model.sumcheck_cycles / total;

    double cycle_cycles = total / cores;
    double cycle_ms =
        cycle_cycles / dev_.spec().cyclesPerMs() + gpusim::kKernelLaunchMs;

    dev_.resetTimeline();
    dev_.resetMemoryPeak();
    // Dynamic loading keeps one task's data per pipeline region; the
    // preloading ablation stages the whole batch's inputs up front.
    uint64_t resident = opt_.dynamic_loading
                            ? model.device_bytes
                            : model.device_bytes +
                                  model.h2d_bytes * (batch - 1);
    int64_t device_mem = dev_.alloc(resident);

    StreamId compute = dev_.createStream();
    StreamId h2d = opt_.overlap_transfers ? dev_.createStream() : compute;
    StreamId d2h = opt_.overlap_transfers ? dev_.createStream() : compute;

    size_t depth = model.totalStages();
    double per_stage_lanes = cores / static_cast<double>(depth);
    double first_end = 0.0;
    OpId prev_load = gpusim::kNoOp;
    uint64_t traffic_per_cycle =
        static_cast<uint64_t>(model.totalCycles() / 40.0); // approx bytes
    if (!opt_.dynamic_loading) {
        // Preloading ablation: one bulk transfer before the pipeline.
        prev_load = dev_.copyH2D(h2d, model.h2d_bytes * batch);
    }
    gpusim::FaultInjector *inj = dev_.faultInjector();
    size_t extra = 0; // retried tasks, appended to the batch
    double relocated_sum = 0.0;
    size_t cycles_run = 0;
    for (size_t c = 0;; ++c) {
        size_t batch_eff = batch + extra;
        size_t cycles_eff = batch_eff + depth - 1;
        if (c >= cycles_eff)
            break;

        double surv = 1.0;
        if (inj) {
            inj->beginCycle(c);
            double failed_frac = inj->failedLaneFraction();
            if (failed_frac > 0.0) {
                surv = std::max(0.05, 1.0 - failed_frac);
                ++result.degraded_cycles;
                relocated_sum += 1.0 - surv;
            }
        }

        OpId load = gpusim::kNoOp;
        if (opt_.dynamic_loading && c < batch_eff)
            load = dev_.copyH2D(h2d, model.h2d_bytes);

        // Ramp: lanes of stages holding live tasks.
        size_t live =
            std::min({c + 1, depth, batch_eff, cycles_eff - c});
        double active = per_stage_lanes * static_cast<double>(live);
        KernelDesc k;
        k.name = "system_cycle";
        // Graceful degradation: on a cycle with failed lanes, the
        // static 35:12:113 split is re-scaled onto the survivors — the
        // same work runs on fewer lanes over a longer cycle.
        k.lanes = cores * surv;
        k.profile.push_back({cycle_cycles / surv, active * surv});
        k.mem_bytes = traffic_per_cycle;
        OpId op = dev_.launchKernel(compute, k, prev_load);
        prev_load = load;
        ++cycles_run;

        if (metrics_ || trace_) {
            double t0 = dev_.opStart(op);
            double t1 = dev_.opEnd(op);
            int64_t cyc = static_cast<int64_t>(c);
            if (metrics_)
                metrics_
                    ->histogram(
                        "bzk_cycle_ms",
                        {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500},
                        "per-cycle wall time, ms")
                    .observe(t1 - t0);
            if (trace_) {
                // The three module groups co-run on partitioned lanes
                // for the whole cycle; each gets its own track so
                // Perfetto shows the static split and any degraded
                // stretching.
                std::string tag = "[c" + std::to_string(c) + "]";
                trace_->span("lane:encoder", "encoder" + tag, "encoder",
                             t0, t1, cyc);
                trace_->span("lane:merkle", "merkle" + tag, "merkle",
                             t0, t1, cyc);
                trace_->span("lane:sumcheck", "sumcheck" + tag,
                             "sumcheck", t0, t1, cyc);
                if (surv < 1.0)
                    trace_->instant("faults", "lane-failure" + tag,
                                    "fault", t0, cyc);
            }
        }

        // Root re-check on the staged Merkle layers of the task
        // admitted this cycle: detected corruption re-enqueues the task
        // rather than letting an invalid proof leave the pipeline.
        if (inj && c < batch_eff && inj->corruptionBytes() > 0 &&
            merkleRecheckDetects(*inj, opt_.seed, c)) {
            ++result.corrupt_detected;
            ++result.retried_tasks;
            ++extra;
            if (trace_)
                trace_->instant("faults",
                                "merkle-retry[c" + std::to_string(c) +
                                    "]",
                                "retry", dev_.opEnd(op),
                                static_cast<int64_t>(c));
        }

        if (c + 1 >= depth)
            dev_.copyD2H(d2h, model.d2h_bytes, op);
        if (c == depth - 1)
            first_end = dev_.opEnd(op);
    }
    if (result.degraded_cycles > 0)
        result.relocated_lane_fraction =
            relocated_sum / static_cast<double>(result.degraded_cycles);

    result.stats.batch = batch;
    result.stats.total_ms = dev_.now();
    result.stats.first_latency_ms = first_end;
    result.stats.item_latency_ms = static_cast<double>(depth) * cycle_ms;
    result.stats.throughput_per_ms = batch / result.stats.total_ms;
    result.stats.peak_device_bytes = dev_.peakMemory();
    result.stats.busy_lane_ms = dev_.busyLaneMs();
    result.stats.utilization =
        result.stats.busy_lane_ms /
        (result.stats.total_ms * dev_.spec().cuda_cores);

    double per_ms = dev_.spec().cyclesPerMs() * cores;
    result.encoder_ms = model.encoder_cycles / per_ms;
    result.merkle_ms = model.merkle_cycles / per_ms;
    result.sumcheck_ms = model.sumcheck_cycles / per_ms;
    result.comm_ms_per_cycle = dev_.copyDurationMs(model.h2d_bytes) +
                               dev_.copyDurationMs(model.d2h_bytes);
    result.comp_ms_per_cycle = cycle_ms;
    result.cycle_ms = std::max(result.comp_ms_per_cycle,
                               dev_.copyDurationMs(model.h2d_bytes));
    result.h2d_bytes_per_cycle = model.h2d_bytes;

    if (metrics_) {
        metrics_->counter("bzk_cycles_total", "pipeline cycles run")
            .add(static_cast<double>(cycles_run));
        metrics_->counter("bzk_tasks_total", "proof tasks admitted")
            .add(static_cast<double>(batch + extra));
        metrics_
            ->counter("bzk_degraded_cycles_total",
                      "cycles run with failed lanes")
            .add(static_cast<double>(result.degraded_cycles));
        metrics_
            ->counter("bzk_retried_tasks_total",
                      "tasks re-proved after a failed root re-check")
            .add(static_cast<double>(result.retried_tasks));
        metrics_
            ->counter("bzk_corrupt_detected_total",
                      "corrupted staged layers caught")
            .add(static_cast<double>(result.corrupt_detected));
        metrics_
            ->counter("bzk_h2d_bytes_total",
                      "host-to-device bytes streamed")
            .add(static_cast<double>(model.h2d_bytes) *
                 static_cast<double>(batch + extra));
        metrics_->gauge("bzk_utilization", "busy-lane fraction of makespan")
            .set(result.stats.utilization);
        metrics_
            ->gauge("bzk_throughput_proofs_per_ms",
                    "proofs per millisecond over the run")
            .set(result.stats.throughput_per_ms);
        metrics_
            ->gauge("bzk_lane_split_encoder", "lanes held by the encoders")
            .set(result.lanes_encoder);
        metrics_
            ->gauge("bzk_lane_split_merkle",
                    "lanes held by the Merkle modules")
            .set(result.lanes_merkle);
        metrics_
            ->gauge("bzk_lane_split_sumcheck",
                    "lanes held by the sum-check modules")
            .set(result.lanes_sumcheck);
    }

    dev_.free(device_mem);
    return result;
}

SystemRunResult
SameModulesCpuBaseline::run(size_t batch, unsigned n_vars, Rng &rng)
{
    SystemRunResult result;
    unsigned nm = std::min(n_vars, cap_vars_);
    double scale = std::pow(2.0, static_cast<double>(n_vars) -
                                     static_cast<double>(nm));

    auto tables = randomInstance(nm, rng);
    size_t k, m;
    pcsShape(nm, k, m);

    // Encoder phase, measured: 3k real row encodings.
    SpielmanCode<Fr> code(m, opt_.seed);
    std::vector<std::vector<Fr>> encoded;
    encoded.reserve(3 * k);
    Timer enc_timer;
    for (const std::vector<Fr> *table : {&tables.a, &tables.b, &tables.c}) {
        for (size_t row = 0; row < k; ++row) {
            std::span<const Fr> msg(table->data() + row * m, m);
            encoded.push_back(code.encode(msg));
        }
    }
    double enc_ms = enc_timer.milliseconds();

    // Merkle phase, measured: column hashing + trees for the 3 tables.
    Timer merkle_timer;
    std::vector<uint8_t> buf(k * Fr::kNumBytes);
    for (size_t t = 0; t < 3; ++t) {
        std::vector<Digest> leaves(2 * m);
        for (size_t col = 0; col < 2 * m; ++col) {
            for (size_t row = 0; row < k; ++row)
                encoded[t * k + row][col].toBytes(buf.data() +
                                                  row * Fr::kNumBytes);
            leaves[col] = Sha256::digest(buf);
        }
        MerkleTree::buildFromLeaves(std::move(leaves));
    }
    double merkle_ms = merkle_timer.milliseconds();

    // Full prover, measured; sum-check time = total - enc - merkle.
    Snark<Fr> snark(nm, opt_.seed, opt_.column_openings);
    Timer total_timer;
    auto proof = snark.prove(tables, {});
    double total_ms = total_timer.milliseconds();
    result.verified = snark.verify(proof, {});
    result.proofs.push_back(std::move(proof));

    double sc_ms = std::max(0.0, total_ms - enc_ms - merkle_ms);

    result.encoder_ms = enc_ms * scale;
    result.merkle_ms = merkle_ms * scale;
    result.sumcheck_ms = sc_ms * scale;
    result.stats.batch = batch;
    result.stats.total_ms = total_ms * scale * static_cast<double>(batch);
    result.stats.first_latency_ms = total_ms * scale;
    result.stats.item_latency_ms = total_ms * scale;
    result.stats.throughput_per_ms = 1.0 / (total_ms * scale);
    return result;
}

} // namespace bzk
