#include "core/PipelinedSystem.h"

#include <algorithm>
#include <cmath>

#include "encoder/GpuEncoder.h"
#include "exec/ExecContext.h"
#include "ff/FieldBackend.h"
#include "gpusim/Calibration.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sched/LaneAllocator.h"
#include "util/Log.h"
#include "util/Timer.h"

namespace bzk {

using gpusim::BatchStats;

namespace {

/** PCS shape used by Snark/TensorPcs for n variables. */
void
pcsShape(unsigned n_vars, size_t &k_rows, size_t &m_cols)
{
    unsigned col = (n_vars + 1) / 2;
    if (col < 5)
        col = 5;
    m_cols = size_t{1} << col;
    k_rows = size_t{1} << (n_vars - col);
}

} // namespace

ConstraintTables<Fr>
randomInstance(unsigned n_vars, Rng &rng)
{
    size_t target = (size_t{1} << n_vars) - (size_t{1} << (n_vars - 2));
    auto circuit = randomCircuit<Fr>(target, 8, rng);
    std::vector<Fr> witness(circuit.numWitnesses());
    for (auto &w : witness)
        w = Fr::random(rng);
    auto assignment = circuit.evaluate({}, witness);
    return circuit.buildTables(assignment);
}

SystemWorkModel
systemWorkModel(unsigned n_vars, uint64_t seed)
{
    size_t k, m;
    pcsShape(n_vars, k, m);
    double n_entries = static_cast<double>(size_t{1} << n_vars);

    SystemWorkModel model;

    // Encoder: 3 tables, each k row-messages of length m.
    EncoderTopology topo(m, seed);
    auto stages = encoderStageCosts(topo);
    double per_code = 0.0;
    for (const auto &s : stages)
        per_code += s.lane_cycles_sorted;
    model.encoder_cycles = 3.0 * static_cast<double>(k) * per_code;
    model.encoder_stages = stages.size();

    // Merkle: 3 trees; hashing 2m codeword columns of k elements each
    // (k*32/64 compressions per column) plus the tree over 2m leaves.
    double col_compress = static_cast<double>(k) / 2.0;
    double per_tree = 2.0 * m * col_compress + (2.0 * m - 1.0);
    model.merkle_cycles = 3.0 * per_tree * gpusim::kSha256CompressCycles;
    size_t merkle_layers = 1;
    for (size_t v = 2 * m; v > 1; v >>= 1)
        ++merkle_layers;
    model.merkle_stages = merkle_layers;

    // Sum-check: the cubic constraint sum-check over 2^n rows (folds of
    // four tables plus the degree-3 round evaluations), and the PCS
    // row-combination passes (2 combos x 3 tables).
    double per_pair = 12.0 * gpusim::kFieldMulCycles +
                      30.0 * gpusim::kFieldAddCycles +
                      3.0 * gpusim::kGlobalAccessCycles;
    double combos = 6.0 * n_entries *
                    (gpusim::kFieldMulCycles + gpusim::kFieldAddCycles);
    model.sumcheck_cycles = n_entries * per_pair + combos;
    model.sumcheck_stages = n_vars + 2;

    // Dynamic loading per cycle: the three constraint tables plus the
    // Lagrange-encoded intermediate results of the proving function
    // (Sec. 4) — sized to match the paper's reported 320 MB per cycle
    // at S = 2^20 (Table 9).
    model.h2d_bytes = static_cast<uint64_t>(10.0 * n_entries * 32.0);
    model.d2h_bytes =
        static_cast<uint64_t>(n_entries * 16.0) + (uint64_t{1} << 20);

    // Device residency (Table 10): the streamed per-cycle data is
    // consumed stage by stage, so only the live stage slices stay
    // resident — ~3 table-equivalents — plus a fixed floor for the
    // encoder graphs, Merkle staging and runtime buffers.
    model.device_bytes =
        static_cast<uint64_t>(96.0 * n_entries) + (64ULL << 20);
    return model;
}

SystemWorkModel
highDegreeWorkModel(unsigned n_vars, uint64_t seed)
{
    // Same commitments and transfer budgets as the table-commit
    // protocol: three tables through the same encoder and Merkle
    // modules, same streamed bytes and device residency.
    SystemWorkModel model = systemWorkModel(n_vars, seed);
    double n_entries = static_cast<double>(size_t{1} << n_vars);

    // Degree-6 gate sum-check: each pair evaluates eq * (a^4 b - c) at
    // 7 points per round (t=0,1 from the half-tables, 5 interior points
    // via affine folds, a^4 via two squarings) plus the end-of-round
    // folds of four tables — ~56 muls and ~70 adds per pair against
    // the cubic prover's 12 and 30. PCS row combinations are unchanged.
    double per_pair = 56.0 * gpusim::kFieldMulCycles +
                      70.0 * gpusim::kFieldAddCycles +
                      3.0 * gpusim::kGlobalAccessCycles;
    double combos = 6.0 * n_entries *
                    (gpusim::kFieldMulCycles + gpusim::kFieldAddCycles);
    model.sumcheck_cycles = n_entries * per_pair + combos;
    model.sumcheck_stages = n_vars + 2;
    return model;
}

SystemWorkModel
protocolWorkModel(sched::ProtocolKind kind, unsigned n_vars,
                  uint64_t seed)
{
    if (kind == sched::ProtocolKind::HighDegreeGate)
        return highDegreeWorkModel(n_vars, seed);
    return systemWorkModel(n_vars, seed);
}

sched::StageGraph
systemStageGraph(const SystemWorkModel &model)
{
    sched::StageGraph graph;
    // All streamed input (the three constraint tables plus Lagrange
    // intermediates) enters at the encoder; the finished Merkle layers
    // stream back to a host-staging buffer (dynamic loading, Sec. 4).
    graph.addStage({sched::StageKind::Encoder, model.encoder_cycles,
                    model.encoder_stages, model.h2d_bytes, 0, 0});
    graph.addStage({sched::StageKind::Merkle, model.merkle_cycles,
                    model.merkle_stages, 0, model.d2h_bytes,
                    model.d2h_bytes});
    // Fiat-Shamir is a first-class node but contributes no lane-cycles
    // and no pipeline depth: transcript hashing is amortized into the
    // module costs on either side.
    graph.addStage({sched::StageKind::FiatShamir, 0.0, 0, 0, 0, 0});
    graph.addStage({sched::StageKind::Sumcheck, model.sumcheck_cycles,
                    model.sumcheck_stages, 0, 0, 0});
    graph.setDeviceBytes(model.device_bytes);
    return graph;
}

sched::ProofTask
makeProofTask(unsigned n_vars, uint64_t seed, uint64_t id, int priority)
{
    return makeProofTask(sched::ProtocolKind::TableCommit, n_vars, seed,
                         id, priority);
}

sched::ProofTask
makeProofTask(sched::ProtocolKind kind, unsigned n_vars, uint64_t seed,
              uint64_t id, int priority)
{
    sched::ProofTask task;
    task.id = id;
    task.n_vars = n_vars;
    task.priority = priority;
    task.kind = kind;
    task.graph = systemStageGraph(protocolWorkModel(kind, n_vars, seed));
    return task;
}

PipelinedZkpSystem::PipelinedZkpSystem(gpusim::Device &dev,
                                       SystemOptions opt)
    : dev_(dev), opt_(opt)
{
}

SystemRunResult
PipelinedZkpSystem::run(size_t batch, unsigned n_vars, Rng &rng)
{
    SystemRunResult result;

    // Functional proofs on the real prover (multi-core host), then
    // verified.
    if (n_vars <= opt_.max_functional_vars) {
        size_t count = std::min(batch, opt_.functional);
        exec::ExecConfig exec_cfg;
        exec_cfg.threads = opt_.threads;
        exec::ExecContext exec(exec_cfg);
        Snark<Fr> snark(n_vars, opt_.seed, opt_.column_openings);
        snark.setExec(&exec);
        for (size_t i = 0; i < count; ++i) {
            auto tables = randomInstance(n_vars, rng);
            auto proof = snark.prove(tables, {});
            result.verified =
                result.verified && snark.verify(proof, {});
            result.proofs.push_back(std::move(proof));
        }
        if (metrics_ && count > 0) {
            metrics_
                ->gauge("bzk_host_threads",
                        "host threads used by the functional prover")
                .set(static_cast<double>(exec.threads()));
            metrics_
                ->gauge("bzk_host_parallel_efficiency",
                        "busy / (wall * threads) over host regions")
                .set(exec.parallelEfficiency());
            metrics_
                ->gauge("bzk_host_encoder_ms",
                        "host wall ms in encoder regions")
                .set(exec.stats("encoder").wall_ms);
            metrics_
                ->gauge("bzk_host_merkle_ms",
                        "host wall ms in Merkle regions")
                .set(exec.stats("merkle").wall_ms);
            metrics_
                ->gauge("bzk_host_sumcheck_ms",
                        "host wall ms in sum-check regions")
                .set(exec.stats("sumcheck").wall_ms);
            ff::KernelCounters fc = ff::kernelCounters();
            metrics_
                ->gauge("bzk_field_backend",
                        "active packed field backend "
                        "(0=scalar 1=avx2 2=avx512 3=neon)")
                .set(static_cast<double>(
                    static_cast<int>(ff::activeBackend())));
            metrics_
                ->gauge("bzk_field_lanes",
                        "field elements per packed op on the active "
                        "backend")
                .set(static_cast<double>(
                    ff::backendLanes(ff::activeBackend())));
            metrics_
                ->gauge("bzk_field_add_calls",
                        "packed field addLanes kernel calls")
                .set(static_cast<double>(fc.add_lanes));
            metrics_
                ->gauge("bzk_field_sub_calls",
                        "packed field subLanes kernel calls")
                .set(static_cast<double>(fc.sub_lanes));
            metrics_
                ->gauge("bzk_field_mul_calls",
                        "packed field mulLanes kernel calls")
                .set(static_cast<double>(fc.mul_lanes));
            metrics_
                ->gauge("bzk_field_fold_calls",
                        "packed field foldLanes kernel calls")
                .set(static_cast<double>(fc.fold_lanes));
            metrics_
                ->gauge("bzk_field_axpy_calls",
                        "packed field axpyLanes kernel calls")
                .set(static_cast<double>(fc.axpy_lanes));
            metrics_
                ->gauge("bzk_field_sum_calls",
                        "packed field sumLanes kernel calls")
                .set(static_cast<double>(fc.sum_lanes));
            metrics_
                ->gauge("bzk_field_dot_calls",
                        "packed field dotLanes kernel calls")
                .set(static_cast<double>(fc.dot_lanes));
            metrics_
                ->gauge("bzk_field_batch_inverse_calls",
                        "field batchInverse calls")
                .set(static_cast<double>(fc.batch_inverse));
            metrics_
                ->gauge("bzk_field_wide_backend",
                        "active wide 4x64-limb field backend "
                        "(0=scalar 1=avx2 2=ifma)")
                .set(static_cast<double>(
                    static_cast<int>(ff::activeWideBackend())));
            metrics_
                ->gauge("bzk_field_wide_lanes",
                        "field elements per packed op on the active "
                        "wide backend")
                .set(static_cast<double>(
                    ff::wideBackendLanes(ff::activeWideBackend())));
            metrics_
                ->gauge("bzk_field_wide_ifma_available",
                        "1 if the host CPU supports AVX-512 IFMA")
                .set(ff::wideIfmaAvailable() ? 1.0 : 0.0);
            metrics_
                ->gauge("bzk_field_wide_add_calls",
                        "wide field addLanes kernel calls")
                .set(static_cast<double>(fc.wide_add_lanes));
            metrics_
                ->gauge("bzk_field_wide_sub_calls",
                        "wide field subLanes kernel calls")
                .set(static_cast<double>(fc.wide_sub_lanes));
            metrics_
                ->gauge("bzk_field_wide_mul_calls",
                        "wide field mulLanes kernel calls")
                .set(static_cast<double>(fc.wide_mul_lanes));
            metrics_
                ->gauge("bzk_field_wide_fold_calls",
                        "wide field foldLanes kernel calls")
                .set(static_cast<double>(fc.wide_fold_lanes));
            metrics_
                ->gauge("bzk_field_wide_axpy_calls",
                        "wide field axpyLanes kernel calls")
                .set(static_cast<double>(fc.wide_axpy_lanes));
            metrics_
                ->gauge("bzk_field_wide_sum_calls",
                        "wide field sumLanes kernel calls")
                .set(static_cast<double>(fc.wide_sum_lanes));
            metrics_
                ->gauge("bzk_field_wide_dot_calls",
                        "wide field dotLanes kernel calls")
                .set(static_cast<double>(fc.wide_dot_lanes));
            metrics_
                ->gauge("bzk_field_wide_batch_inverse_calls",
                        "wide field batchInverse calls")
                .set(static_cast<double>(fc.wide_batch_inverse));
        }
    }

    SystemWorkModel model = systemWorkModel(n_vars, opt_.seed);
    sched::StageGraph graph = systemStageGraph(model);
    std::vector<sched::ProofTask> tasks;
    tasks.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
        sched::ProofTask task;
        task.id = i;
        task.n_vars = n_vars;
        task.graph = graph;
        tasks.push_back(std::move(task));
    }
    simulate(std::move(tasks), result);
    return result;
}

SystemRunResult
PipelinedZkpSystem::runTasks(std::vector<sched::ProofTask> tasks)
{
    SystemRunResult result;
    simulate(std::move(tasks), result);
    return result;
}

void
PipelinedZkpSystem::simulate(std::vector<sched::ProofTask> tasks,
                             SystemRunResult &result)
{
    size_t batch = tasks.size();
    if (batch == 0)
        return;

    // Reference shape for the aggregate columns: the costliest task
    // paces the pipeline (for uniform batches it is the batch's
    // shape). Copied out because the tasks move into the scheduler.
    const sched::StageGraph *pace = &tasks.front().graph;
    for (const sched::ProofTask &t : tasks)
        if (t.graph.totalCycles() > pace->totalCycles())
            pace = &t.graph;
    sched::StageGraph ref_graph = *pace;
    const sched::StageGraph *ref = &ref_graph;

    double cores = dev_.spec().cuda_cores;
    double total = ref->totalCycles();

    // Static lane partition proportional to module cost (Sec. 4's
    // "35 : 12 : 113" method, derived from the stage graph itself).
    // Non-proportional policies report their global kind partition
    // instead, so the lanes_* columns show the split actually applied.
    sched::LaneAllocator allocator(cores);
    if (opt_.lane_policy == sched::LanePolicy::Proportional) {
        std::vector<double> split = allocator.proportionalSplit(*ref);
        const auto &stages = ref->stages();
        for (size_t i = 0; i < stages.size(); ++i) {
            switch (stages[i].kind) {
              case sched::StageKind::Encoder:
                result.lanes_encoder = split[i];
                break;
              case sched::StageKind::Merkle:
                result.lanes_merkle = split[i];
                break;
              case sched::StageKind::Sumcheck:
                result.lanes_sumcheck = split[i];
                break;
              case sched::StageKind::FiatShamir:
                break;
            }
        }
    } else {
        sched::StageKindCosts kind_lanes = allocator.kindSplit(
            opt_.lane_policy == sched::LanePolicy::FixedRatio
                ? sched::LaneAllocator::paperRatioWeights()
                : sched::LaneAllocator::measuredKindCosts(tasks));
        result.lanes_encoder =
            kind_lanes[static_cast<size_t>(sched::StageKind::Encoder)];
        result.lanes_merkle =
            kind_lanes[static_cast<size_t>(sched::StageKind::Merkle)];
        result.lanes_sumcheck =
            kind_lanes[static_cast<size_t>(sched::StageKind::Sumcheck)];
    }

    double cycle_cycles = total / cores;
    double cycle_ms =
        cycle_cycles / dev_.spec().cyclesPerMs() + gpusim::kKernelLaunchMs;
    size_t depth = ref->totalDepth();
    uint64_t h2d_bytes = ref->h2dBytes();
    uint64_t d2h_bytes = ref->d2hBytes();

    sched::SchedulerOptions sched_opt;
    sched_opt.seed = opt_.seed;
    sched_opt.overlap_transfers = opt_.overlap_transfers;
    sched_opt.dynamic_loading = opt_.dynamic_loading;
    sched_opt.lane_policy = opt_.lane_policy;
    sched::PipelineScheduler scheduler(dev_, sched_opt);
    scheduler.setObservability(metrics_, trace_);
    sched::SchedulerResult sr = scheduler.run(std::move(tasks));

    result.degraded_cycles = sr.degraded_cycles;
    result.relocated_lane_fraction = sr.relocated_lane_fraction;
    result.corrupt_detected = sr.corrupt_detected;
    result.retried_tasks = sr.retried_tasks;
    result.task_stats = std::move(sr.tasks);

    result.stats.batch = batch;
    result.stats.total_ms = sr.total_ms;
    result.stats.first_latency_ms = sr.first_latency_ms;
    result.stats.item_latency_ms = static_cast<double>(depth) * cycle_ms;
    result.stats.throughput_per_ms = batch / result.stats.total_ms;
    result.stats.peak_device_bytes = sr.peak_device_bytes;
    result.stats.busy_lane_ms = sr.busy_lane_ms;
    result.stats.utilization = sr.utilization;

    double per_ms = dev_.spec().cyclesPerMs() * cores;
    result.encoder_ms = ref->cyclesOf(sched::StageKind::Encoder) / per_ms;
    result.merkle_ms = ref->cyclesOf(sched::StageKind::Merkle) / per_ms;
    result.sumcheck_ms =
        ref->cyclesOf(sched::StageKind::Sumcheck) / per_ms;
    result.comm_ms_per_cycle = dev_.copyDurationMs(h2d_bytes) +
                               dev_.copyDurationMs(d2h_bytes);
    result.comp_ms_per_cycle = cycle_ms;
    result.cycle_ms = std::max(result.comp_ms_per_cycle,
                               dev_.copyDurationMs(h2d_bytes));
    result.h2d_bytes_per_cycle = h2d_bytes;

    if (metrics_) {
        metrics_->counter("bzk_cycles_total", "pipeline cycles run")
            .add(static_cast<double>(sr.cycles_run));
        metrics_->counter("bzk_tasks_total", "proof tasks admitted")
            .add(static_cast<double>(sr.admitted));
        metrics_
            ->counter("bzk_degraded_cycles_total",
                      "cycles run with failed lanes")
            .add(static_cast<double>(result.degraded_cycles));
        metrics_
            ->counter("bzk_retried_tasks_total",
                      "tasks re-proved after a failed root re-check")
            .add(static_cast<double>(result.retried_tasks));
        metrics_
            ->counter("bzk_corrupt_detected_total",
                      "corrupted staged layers caught")
            .add(static_cast<double>(result.corrupt_detected));
        metrics_
            ->counter("bzk_h2d_bytes_total",
                      "host-to-device bytes streamed")
            .add(static_cast<double>(sr.h2d_bytes_streamed));
        metrics_->gauge("bzk_utilization", "busy-lane fraction of makespan")
            .set(result.stats.utilization);
        metrics_
            ->gauge("bzk_throughput_proofs_per_ms",
                    "proofs per millisecond over the run")
            .set(result.stats.throughput_per_ms);
        metrics_
            ->gauge("bzk_lane_split_encoder", "lanes held by the encoders")
            .set(result.lanes_encoder);
        metrics_
            ->gauge("bzk_lane_split_merkle",
                    "lanes held by the Merkle modules")
            .set(result.lanes_merkle);
        metrics_
            ->gauge("bzk_lane_split_sumcheck",
                    "lanes held by the sum-check modules")
            .set(result.lanes_sumcheck);
    }
}

SystemRunResult
SameModulesCpuBaseline::run(size_t batch, unsigned n_vars, Rng &rng)
{
    SystemRunResult result;
    unsigned nm = std::min(n_vars, cap_vars_);
    double scale = std::pow(2.0, static_cast<double>(n_vars) -
                                     static_cast<double>(nm));

    auto tables = randomInstance(nm, rng);
    size_t k, m;
    pcsShape(nm, k, m);

    // Multi-core host baseline, like the Orion/Arkworks provers the
    // paper measures; thread count from opt_.threads / BZK_THREADS.
    exec::ExecConfig exec_cfg;
    exec_cfg.threads = opt_.threads;
    exec::ExecContext exec(exec_cfg);

    // Encoder phase, measured: 3k real row encodings split across rows.
    SpielmanCode<Fr> code(m, opt_.seed);
    std::vector<std::vector<Fr>> encoded(3 * k);
    Timer enc_timer;
    {
        const std::vector<Fr> *table_of[3] = {&tables.a, &tables.b,
                                              &tables.c};
        auto encode_rows = [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                const std::vector<Fr> &table = *table_of[i / k];
                std::span<const Fr> msg(table.data() + (i % k) * m, m);
                encoded[i] = code.encode(msg);
            }
        };
        exec.parallelFor(3 * k, /*serial_cutoff=*/2, encode_rows);
    }
    double enc_ms = enc_timer.milliseconds();

    // Merkle phase, measured: column hashing + trees for the 3 tables.
    Timer merkle_timer;
    for (size_t t = 0; t < 3; ++t) {
        std::vector<Digest> leaves(2 * m);
        auto hash_cols = [&](size_t begin, size_t end) {
            std::vector<uint8_t> buf(k * Fr::kNumBytes);
            for (size_t col = begin; col < end; ++col) {
                for (size_t row = 0; row < k; ++row)
                    encoded[t * k + row][col].toBytes(
                        buf.data() + row * Fr::kNumBytes);
                leaves[col] = Sha256::digest(buf);
            }
        };
        exec.parallelFor(2 * m, /*serial_cutoff=*/2, hash_cols);
        MerkleTree::buildFromLeaves(std::move(leaves), &exec);
    }
    double merkle_ms = merkle_timer.milliseconds();

    // Full prover, measured; sum-check time = total - enc - merkle.
    Snark<Fr> snark(nm, opt_.seed, opt_.column_openings);
    snark.setExec(&exec);
    Timer total_timer;
    auto proof = snark.prove(tables, {});
    double total_ms = total_timer.milliseconds();
    result.verified = snark.verify(proof, {});
    result.proofs.push_back(std::move(proof));

    double sc_ms = std::max(0.0, total_ms - enc_ms - merkle_ms);

    result.encoder_ms = enc_ms * scale;
    result.merkle_ms = merkle_ms * scale;
    result.sumcheck_ms = sc_ms * scale;
    result.stats.batch = batch;
    result.stats.total_ms = total_ms * scale * static_cast<double>(batch);
    result.stats.first_latency_ms = total_ms * scale;
    result.stats.item_latency_ms = total_ms * scale;
    result.stats.throughput_per_ms = 1.0 / (total_ms * scale);
    return result;
}

} // namespace bzk
