#ifndef BZK_CORE_SERIALIZE_H_
#define BZK_CORE_SERIALIZE_H_

/**
 * @file
 * Wire format for proofs.
 *
 * The paper's deployment scenarios (MLaaS, zkBridge) ship proofs over
 * the network, so the library provides a deterministic, bounds-checked
 * byte encoding for both proof types. Layout is little-endian with
 * u32 length prefixes; a version byte leads each proof so the format
 * can evolve.
 */

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "core/Bytes.h"
#include "core/FullSnark.h"
#include "core/HighDegreeSnark.h"
#include "core/Snark.h"
#include "gkr/Gkr.h"

namespace bzk {

namespace detail {

constexpr uint8_t kSnarkProofTag = 0x01;
constexpr uint8_t kFullSnarkProofTag = 0x02;
constexpr uint8_t kGkrProofTag = 0x03;
constexpr uint8_t kHighDegreeProofTag = 0x04;
/** Caps for hostile length prefixes. */
constexpr size_t kMaxRounds = 64;
constexpr size_t kMaxRowLen = size_t{1} << 24;
constexpr size_t kMaxColumns = 4096;
constexpr size_t kMaxPathLen = 64;

template <typename F>
void
writeEvalProof(ByteWriter &w, const PcsEvalProof<F> &open)
{
    w.u32(static_cast<uint32_t>(open.eval_row.size()));
    for (const F &v : open.eval_row)
        w.field(v);
    w.u32(static_cast<uint32_t>(open.proximity_row.size()));
    for (const F &v : open.proximity_row)
        w.field(v);
    w.u32(static_cast<uint32_t>(open.columns.size()));
    for (const auto &column : open.columns) {
        w.u32(static_cast<uint32_t>(column.size()));
        for (const F &v : column)
            w.field(v);
    }
    for (const auto &path : open.paths) {
        w.u64(path.leaf_index);
        w.u32(static_cast<uint32_t>(path.siblings.size()));
        for (const Digest &d : path.siblings)
            w.digest(d);
    }
}

template <typename F>
PcsEvalProof<F>
readEvalProof(ByteReader &r)
{
    PcsEvalProof<F> open;
    size_t n = r.length(kMaxRowLen);
    open.eval_row.resize(n);
    for (auto &v : open.eval_row)
        v = r.template field<F>();
    n = r.length(kMaxRowLen);
    open.proximity_row.resize(n);
    for (auto &v : open.proximity_row)
        v = r.template field<F>();
    size_t cols = r.length(kMaxColumns);
    open.columns.resize(cols);
    for (auto &column : open.columns) {
        size_t k = r.length(kMaxRowLen);
        column.resize(k);
        for (auto &v : column)
            v = r.template field<F>();
    }
    open.paths.resize(cols);
    for (auto &path : open.paths) {
        path.leaf_index = r.u64();
        size_t depth = r.length(kMaxPathLen);
        path.siblings.resize(depth);
        for (auto &d : path.siblings)
            d = r.digest();
    }
    return open;
}

template <typename F>
void
writeRounds(ByteWriter &w, const ProductSumcheckProof<F> &sc)
{
    w.u32(static_cast<uint32_t>(sc.rounds.size()));
    for (const auto &g : sc.rounds) {
        w.u32(static_cast<uint32_t>(g.size()));
        for (const F &v : g)
            w.field(v);
    }
}

template <typename F>
ProductSumcheckProof<F>
readRounds(ByteReader &r)
{
    ProductSumcheckProof<F> sc;
    size_t rounds = r.length(kMaxRounds);
    sc.rounds.resize(rounds);
    for (auto &g : sc.rounds) {
        size_t evals = r.length(8);
        g.resize(evals);
        for (auto &v : g)
            v = r.template field<F>();
    }
    return sc;
}

} // namespace detail

/** Encode a table-commitment proof. */
template <typename F>
std::vector<uint8_t>
serializeProof(const SnarkProof<F> &proof)
{
    ByteWriter w;
    w.u8(detail::kSnarkProofTag);
    w.digest(proof.commit_a.root);
    w.u8(static_cast<uint8_t>(proof.commit_a.n_vars));
    w.digest(proof.commit_b.root);
    w.u8(static_cast<uint8_t>(proof.commit_b.n_vars));
    w.digest(proof.commit_c.root);
    w.u8(static_cast<uint8_t>(proof.commit_c.n_vars));
    detail::writeRounds(w, proof.constraint_sc);
    w.field(proof.va);
    w.field(proof.vb);
    w.field(proof.vc);
    detail::writeEvalProof(w, proof.open_a);
    detail::writeEvalProof(w, proof.open_b);
    detail::writeEvalProof(w, proof.open_c);
    return w.take();
}

/** Decode a table-commitment proof; nullopt when malformed. */
template <typename F>
std::optional<SnarkProof<F>>
deserializeProof(std::span<const uint8_t> bytes)
{
    ByteReader r(bytes);
    if (r.u8() != detail::kSnarkProofTag)
        return std::nullopt;
    SnarkProof<F> proof;
    proof.commit_a.root = r.digest();
    proof.commit_a.n_vars = r.u8();
    proof.commit_b.root = r.digest();
    proof.commit_b.n_vars = r.u8();
    proof.commit_c.root = r.digest();
    proof.commit_c.n_vars = r.u8();
    proof.constraint_sc = detail::readRounds<F>(r);
    proof.va = r.field<F>();
    proof.vb = r.field<F>();
    proof.vc = r.field<F>();
    proof.open_a = detail::readEvalProof<F>(r);
    proof.open_b = detail::readEvalProof<F>(r);
    proof.open_c = detail::readEvalProof<F>(r);
    if (!r.ok() || r.remaining() != 0)
        return std::nullopt;
    return proof;
}

/** Encode a high-degree gate proof (SnarkProof layout, own tag). */
template <typename F>
std::vector<uint8_t>
serializeHighDegreeProof(const HighDegreeProof<F> &proof)
{
    ByteWriter w;
    w.u8(detail::kHighDegreeProofTag);
    w.digest(proof.commit_a.root);
    w.u8(static_cast<uint8_t>(proof.commit_a.n_vars));
    w.digest(proof.commit_b.root);
    w.u8(static_cast<uint8_t>(proof.commit_b.n_vars));
    w.digest(proof.commit_c.root);
    w.u8(static_cast<uint8_t>(proof.commit_c.n_vars));
    detail::writeRounds(w, proof.gate_sc);
    w.field(proof.va);
    w.field(proof.vb);
    w.field(proof.vc);
    detail::writeEvalProof(w, proof.open_a);
    detail::writeEvalProof(w, proof.open_b);
    detail::writeEvalProof(w, proof.open_c);
    return w.take();
}

/** Decode a high-degree gate proof; nullopt when malformed. */
template <typename F>
std::optional<HighDegreeProof<F>>
deserializeHighDegreeProof(std::span<const uint8_t> bytes)
{
    ByteReader r(bytes);
    if (r.u8() != detail::kHighDegreeProofTag)
        return std::nullopt;
    HighDegreeProof<F> proof;
    proof.commit_a.root = r.digest();
    proof.commit_a.n_vars = r.u8();
    proof.commit_b.root = r.digest();
    proof.commit_b.n_vars = r.u8();
    proof.commit_c.root = r.digest();
    proof.commit_c.n_vars = r.u8();
    proof.gate_sc = detail::readRounds<F>(r);
    proof.va = r.field<F>();
    proof.vb = r.field<F>();
    proof.vc = r.field<F>();
    proof.open_a = detail::readEvalProof<F>(r);
    proof.open_b = detail::readEvalProof<F>(r);
    proof.open_c = detail::readEvalProof<F>(r);
    if (!r.ok() || r.remaining() != 0)
        return std::nullopt;
    return proof;
}

/** Encode a wiring-sound proof. */
template <typename F>
std::vector<uint8_t>
serializeFullProof(const FullSnarkProof<F> &proof)
{
    ByteWriter w;
    w.u8(detail::kFullSnarkProofTag);
    w.digest(proof.commit_w.root);
    w.u8(static_cast<uint8_t>(proof.commit_w.n_vars));
    detail::writeRounds(w, proof.phase1);
    w.field(proof.va);
    w.field(proof.vb);
    w.field(proof.vc);
    detail::writeRounds(w, proof.phase2);
    w.field(proof.vw);
    detail::writeEvalProof(w, proof.open_w);
    return w.take();
}

/** Decode a wiring-sound proof; nullopt when malformed. */
template <typename F>
std::optional<FullSnarkProof<F>>
deserializeFullProof(std::span<const uint8_t> bytes)
{
    ByteReader r(bytes);
    if (r.u8() != detail::kFullSnarkProofTag)
        return std::nullopt;
    FullSnarkProof<F> proof;
    proof.commit_w.root = r.digest();
    proof.commit_w.n_vars = r.u8();
    proof.phase1 = detail::readRounds<F>(r);
    proof.va = r.field<F>();
    proof.vb = r.field<F>();
    proof.vc = r.field<F>();
    proof.phase2 = detail::readRounds<F>(r);
    proof.vw = r.field<F>();
    proof.open_w = detail::readEvalProof<F>(r);
    if (!r.ok() || r.remaining() != 0)
        return std::nullopt;
    return proof;
}

/** Encode a GKR proof. */
template <typename F>
std::vector<uint8_t>
serializeGkrProof(const GkrProof<F> &proof)
{
    ByteWriter w;
    w.u8(detail::kGkrProofTag);
    w.u32(static_cast<uint32_t>(proof.outputs.size()));
    for (const F &o : proof.outputs)
        w.field(o);
    w.u32(static_cast<uint32_t>(proof.layers.size()));
    for (const auto &layer : proof.layers) {
        w.u32(static_cast<uint32_t>(layer.rounds.size()));
        for (const auto &g : layer.rounds) {
            w.u32(static_cast<uint32_t>(g.size()));
            for (const F &v : g)
                w.field(v);
        }
        w.field(layer.vx);
        w.field(layer.vy);
    }
    return w.take();
}

/** Decode a GKR proof; nullopt when malformed. */
template <typename F>
std::optional<GkrProof<F>>
deserializeGkrProof(std::span<const uint8_t> bytes)
{
    ByteReader r(bytes);
    if (r.u8() != detail::kGkrProofTag)
        return std::nullopt;
    GkrProof<F> proof;
    size_t outs = r.length(detail::kMaxRowLen);
    proof.outputs.resize(outs);
    for (auto &o : proof.outputs)
        o = r.field<F>();
    size_t layers = r.length(256);
    proof.layers.resize(layers);
    for (auto &layer : proof.layers) {
        size_t rounds = r.length(2 * detail::kMaxRounds);
        layer.rounds.resize(rounds);
        for (auto &g : layer.rounds) {
            size_t evals = r.length(8);
            g.resize(evals);
            for (auto &v : g)
                v = r.field<F>();
        }
        layer.vx = r.field<F>();
        layer.vy = r.field<F>();
    }
    if (!r.ok() || r.remaining() != 0)
        return std::nullopt;
    return proof;
}

} // namespace bzk

#endif // BZK_CORE_SERIALIZE_H_
