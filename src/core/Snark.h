#ifndef BZK_CORE_SNARK_H_
#define BZK_CORE_SNARK_H_

/**
 * @file
 * The BatchZK proof system: an Orion/Brakedown-shaped SNARK for circuit
 * satisfiability, composed exactly from the paper's three modules
 * (Figure 7 data flow):
 *
 *   1. commit the constraint tables a, b, c with the tensor PCS
 *      (linear-time encoder -> column Merkle trees -> roots);
 *   2. derive the constraint challenge tau from the roots (Fiat-Shamir);
 *   3. run the cubic sum-check  sum_x eq(tau,x) * (a(x)b(x) - c(x)) = 0;
 *   4. open a, b, c at the sum-check's final point through the PCS;
 *   5. the verifier replays the transcript, checks the sum-check,
 *      checks the three openings, and checks
 *      eq(tau,r) * (va*vb - vc) == final sum-check claim.
 *
 * Simplifications relative to a production system are documented in
 * DESIGN.md Sec. 6 (notably: wiring consistency between gates is not
 * proven — the committed tables are only shown to be gate-consistent —
 * and soundness parameters are test-sized by default).
 */

#include <array>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "circuit/Circuit.h"
#include "core/TensorPcs.h"
#include "hash/Transcript.h"
#include "sumcheck/Sumcheck.h"

namespace bzk {

/**
 * Stage boundaries the interruptible prover reports, matching the
 * pipeline's module groups. The encoder and Merkle modules are fused
 * inside TensorPcs::commit, so their boundary is observed at commit
 * granularity: Encode fires once the first table is committed, Merkle
 * once all three are.
 */
enum class ProveStage : uint8_t {
    /** First table committed (encoder module has run). */
    Encode,
    /** All tables committed (Merkle module has run). */
    Merkle,
    /** Constraint challenge derived from the transcript. */
    FiatShamir,
    /** Constraint sum-check finished (openings still outstanding). */
    Sumcheck,
};

/**
 * Called at each ProveStage boundary of an interruptible prove. Return
 * false to abandon the proof there — the crash/recovery harness uses
 * this to model a process dying between pipeline stages.
 */
using ProveStageHook = std::function<bool(ProveStage)>;

/** A complete BatchZK proof. */
template <typename F>
struct SnarkProof
{
    PcsCommitment commit_a;
    PcsCommitment commit_b;
    PcsCommitment commit_c;
    /** Cubic constraint sum-check: 4 evaluations per round. */
    ProductSumcheckProof<F> constraint_sc;
    /** Claimed openings of the three tables at the sum-check point. */
    F va{};
    F vb{};
    F vc{};
    PcsEvalProof<F> open_a;
    PcsEvalProof<F> open_b;
    PcsEvalProof<F> open_c;

    /** Rough wire size of the proof in bytes (paper: "several MB"). */
    size_t
    sizeBytes() const
    {
        size_t bytes = 3 * 32; // roots
        for (const auto &round : constraint_sc.rounds)
            bytes += round.size() * F::kNumBytes;
        bytes += 3 * F::kNumBytes;
        for (const PcsEvalProof<F> *open : {&open_a, &open_b, &open_c}) {
            bytes += (open->eval_row.size() + open->proximity_row.size()) *
                     F::kNumBytes;
            for (const auto &column : open->columns)
                bytes += column.size() * F::kNumBytes;
            for (const auto &path : open->paths)
                bytes += path.siblings.size() * 32 + 8;
        }
        return bytes;
    }
};

/** Prover + verifier for a fixed circuit-size class. */
template <typename F>
class Snark
{
  public:
    /**
     * @param n_vars constraint tables have 2^n_vars rows.
     * @param seed   shared encoder seed (part of the public parameters).
     * @param column_openings PCS spot-check count.
     */
    Snark(unsigned n_vars, uint64_t seed, size_t column_openings = 8)
        : n_vars_(n_vars), pcs_(n_vars, seed, column_openings)
    {
    }

    /** The PCS instance (exposed for cost accounting). */
    const TensorPcs<F> &pcs() const { return pcs_; }

    /**
     * Attach a host execution context: commits, sum-check rounds, and
     * openings run across its thread pool. The context must outlive the
     * prover calls; proofs are bit-identical for any thread count.
     */
    void setExec(const exec::ExecContext *exec) { exec_ = exec; }

    /** Prove that the tables satisfy a*b = c row-wise. */
    SnarkProof<F>
    prove(const ConstraintTables<F> &tables,
          std::span<const F> public_inputs) const
    {
        return *proveInterruptible(tables, public_inputs, {});
    }

    /**
     * prove() with a stage-boundary hook: @p keep_going is called at
     * each ProveStage boundary and may return false to abandon the
     * proof there (nullopt). With an empty hook this IS prove() — the
     * same statements in the same order — so completed proofs are
     * bit-identical either way.
     */
    std::optional<SnarkProof<F>>
    proveInterruptible(const ConstraintTables<F> &tables,
                       std::span<const F> public_inputs,
                       const ProveStageHook &keep_going) const
    {
        if (tables.n_vars != n_vars_)
            panic("Snark::prove: tables have %u vars, system built for %u",
                  tables.n_vars, n_vars_);

        Transcript transcript("batchzk.snark.v1");
        absorbStatement(transcript, public_inputs);

        // 1. Commit (encoder + Merkle modules).
        auto st_a = pcs_.commit(tables.a, exec_);
        if (keep_going && !keep_going(ProveStage::Encode))
            return std::nullopt;
        auto st_b = pcs_.commit(tables.b, exec_);
        auto st_c = pcs_.commit(tables.c, exec_);
        if (keep_going && !keep_going(ProveStage::Merkle))
            return std::nullopt;
        transcript.absorbDigest("com.a", st_a.commitment.root);
        transcript.absorbDigest("com.b", st_b.commitment.root);
        transcript.absorbDigest("com.c", st_c.commitment.root);

        // 2. Constraint challenge.
        std::vector<F> tau(n_vars_);
        for (auto &t : tau)
            t = transcript.template challengeField<F>("tau");
        if (keep_going && !keep_going(ProveStage::FiatShamir))
            return std::nullopt;

        // 3. Cubic sum-check over eq*(a*b - c).
        SnarkProof<F> proof;
        std::vector<F> point;
        proof.constraint_sc = proveConstraintSumcheck(
            tables, tau, transcript, point);
        if (keep_going && !keep_going(ProveStage::Sumcheck))
            return std::nullopt;

        // 4. Open the tables at the final point.
        proof.va = pcs_.evaluate(st_a, point);
        proof.vb = pcs_.evaluate(st_b, point);
        proof.vc = pcs_.evaluate(st_c, point);
        transcript.absorbField("open.va", proof.va);
        transcript.absorbField("open.vb", proof.vb);
        transcript.absorbField("open.vc", proof.vc);

        proof.open_a = pcs_.open(st_a, point, transcript, exec_);
        proof.open_b = pcs_.open(st_b, point, transcript, exec_);
        proof.open_c = pcs_.open(st_c, point, transcript, exec_);

        proof.commit_a = st_a.commitment;
        proof.commit_b = st_b.commitment;
        proof.commit_c = st_c.commitment;
        return proof;
    }

    /** Verify a proof against the public inputs. */
    bool
    verify(const SnarkProof<F> &proof,
           std::span<const F> public_inputs) const
    {
        Transcript transcript("batchzk.snark.v1");
        absorbStatement(transcript, public_inputs);
        transcript.absorbDigest("com.a", proof.commit_a.root);
        transcript.absorbDigest("com.b", proof.commit_b.root);
        transcript.absorbDigest("com.c", proof.commit_c.root);

        std::vector<F> tau(n_vars_);
        for (auto &t : tau)
            t = transcript.template challengeField<F>("tau");

        // Sum-check verification: the claimed total is zero.
        F claim = F::zero();
        std::vector<F> point;
        for (const auto &g : proof.constraint_sc.rounds) {
            if (g.size() != 4)
                return false;
            if (g[0] + g[1] != claim)
                return false;
            for (const F &gi : g)
                transcript.absorbField("csc.g", gi);
            F r = transcript.template challengeField<F>("csc.r");
            std::vector<F> xs{F::fromUint(0), F::fromUint(1),
                              F::fromUint(2), F::fromUint(3)};
            claim = lagrangeEval(xs, g, r);
            point.push_back(r);
        }
        if (point.size() != n_vars_)
            return false;

        // Final algebraic check against the claimed openings.
        auto eq = eqTable(tau);
        // eq(tau, point) without materializing the table at the point:
        // prod_i ((1-tau_i)(1-r_i) + tau_i r_i).
        F eq_at_point = F::one();
        for (unsigned i = 0; i < n_vars_; ++i) {
            eq_at_point *= (F::one() - tau[i]) * (F::one() - point[i]) +
                           tau[i] * point[i];
        }
        (void)eq;
        if (eq_at_point * (proof.va * proof.vb - proof.vc) != claim)
            return false;

        transcript.absorbField("open.va", proof.va);
        transcript.absorbField("open.vb", proof.vb);
        transcript.absorbField("open.vc", proof.vc);

        if (!pcs_.verify(proof.commit_a, point, proof.va, proof.open_a,
                         transcript))
            return false;
        if (!pcs_.verify(proof.commit_b, point, proof.vb, proof.open_b,
                         transcript))
            return false;
        if (!pcs_.verify(proof.commit_c, point, proof.vc, proof.open_c,
                         transcript))
            return false;
        return true;
    }

  private:
    void
    absorbStatement(Transcript &transcript,
                    std::span<const F> public_inputs) const
    {
        uint8_t n = static_cast<uint8_t>(n_vars_);
        transcript.absorb("n_vars", std::span<const uint8_t>(&n, 1));
        for (const F &x : public_inputs)
            transcript.absorbField("public", x);
    }

    /**
     * Prover for sum_x eq(tau,x)(a(x)b(x) - c(x)) = 0; round polynomials
     * are cubic, transmitted as evaluations at 0..3. Round sums use the
     * fixed-shape chunked reduction, so the transcript (and hence the
     * whole proof) is bit-identical for any thread count.
     */
    ProductSumcheckProof<F>
    proveConstraintSumcheck(const ConstraintTables<F> &tables,
                            const std::vector<F> &tau,
                            Transcript &transcript,
                            std::vector<F> &point) const
    {
        std::vector<F> eq = eqTable(tau);
        std::vector<F> a = tables.a;
        std::vector<F> b = tables.b;
        std::vector<F> c = tables.c;
        if (exec_)
            exec_->setRegion("sumcheck");

        ProductSumcheckProof<F> proof;
        proof.rounds.reserve(n_vars_);
        const F two = F::fromUint(2);
        const F three = F::fromUint(3);
        using Sums = std::array<F, 4>;
        for (unsigned round = 0; round < n_vars_; ++round) {
            size_t half = a.size() / 2;
            auto chunk_sums = [&](size_t begin, size_t end) {
                Sums s{F::zero(), F::zero(), F::zero(), F::zero()};
                for (size_t x = begin; x < end; ++x) {
                    // Evaluate each factor's restriction at t = 0,1,2,3
                    // via the affine form lo + t*(hi - lo).
                    F d_eq = eq[x + half] - eq[x];
                    F d_a = a[x + half] - a[x];
                    F d_b = b[x + half] - b[x];
                    F d_c = c[x + half] - c[x];
                    auto term = [&](const F &t) {
                        F eq_t = eq[x] + t * d_eq;
                        F a_t = a[x] + t * d_a;
                        F b_t = b[x] + t * d_b;
                        F c_t = c[x] + t * d_c;
                        return eq_t * (a_t * b_t - c_t);
                    };
                    s[0] += eq[x] * (a[x] * b[x] - c[x]);
                    s[1] += eq[x + half] *
                            (a[x + half] * b[x + half] - c[x + half]);
                    s[2] += term(two);
                    s[3] += term(three);
                }
                return s;
            };
            Sums sums = exec::reduceChunked<Sums>(
                exec_, half,
                Sums{F::zero(), F::zero(), F::zero(), F::zero()},
                chunk_sums, [](const Sums &l, const Sums &r) {
                    return Sums{l[0] + r[0], l[1] + r[1], l[2] + r[2],
                                l[3] + r[3]};
                });
            std::vector<F> g(sums.begin(), sums.end());
            for (const F &gi : g)
                transcript.absorbField("csc.g", gi);
            F r = transcript.template challengeField<F>("csc.r");
            auto fold = [&](size_t begin, size_t end) {
                for (size_t x = begin; x < end; ++x) {
                    eq[x] = eq[x] + r * (eq[x + half] - eq[x]);
                    a[x] = a[x] + r * (a[x + half] - a[x]);
                    b[x] = b[x] + r * (b[x + half] - b[x]);
                    c[x] = c[x] + r * (c[x + half] - c[x]);
                }
            };
            if (exec_)
                exec_->parallelFor(half, fold);
            else
                fold(0, half);
            eq.resize(half);
            a.resize(half);
            b.resize(half);
            c.resize(half);
            point.push_back(r);
            proof.rounds.push_back(std::move(g));
        }
        return proof;
    }

    unsigned n_vars_;
    TensorPcs<F> pcs_;
    const exec::ExecContext *exec_ = nullptr;
};

} // namespace bzk

#endif // BZK_CORE_SNARK_H_
