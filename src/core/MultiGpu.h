#ifndef BZK_CORE_MULTIGPU_H_
#define BZK_CORE_MULTIGPU_H_

/**
 * @file
 * Multi-GPU batch generation (extension beyond the paper's single-card
 * evaluation). Proof tasks are independent, so a fleet of cards runs
 * disjoint slices of the batch; each card hosts its own full pipeline
 * scheduler and its own host link (the deployment the paper's
 * zkBridge/MLaaS economics imply). A shared dispatcher splits the
 * batch by largest remainder proportional to each card's lane
 * throughput, then rebalances slices onto under-committed (or idle)
 * cards using the scheduler's predicted per-card makespan. Scaling is
 * near-linear until the host-side witness producer saturates, which is
 * outside this model.
 */

#include <algorithm>
#include <vector>

#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"
#include "sched/CycleModel.h"

namespace bzk {

/** Aggregate result of a fleet run. */
struct MultiGpuResult
{
    /** Sum of per-device steady throughputs. */
    double total_throughput_per_ms = 0.0;
    /** Time until the slowest device finished its slice. */
    double makespan_ms = 0.0;
    /** Sum of per-device peak memory. */
    uint64_t total_device_bytes = 0;
    /** One entry per device; idle cards keep a zero-batch entry. */
    std::vector<SystemRunResult> per_device;
    /** Batch slice each device ran (zero for idle cards). */
    std::vector<size_t> slices;
};

/**
 * Derive the independent per-device seed for device @p index of a
 * fleet seeded with @p seed (splitmix64 over the pair), so each card's
 * results are reproducible regardless of device iteration order.
 */
inline uint64_t
deviceSeed(uint64_t seed, size_t index)
{
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                            (static_cast<uint64_t>(index) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** A fleet of simulated GPUs running the pipelined system. */
class MultiGpuZkpSystem
{
  public:
    MultiGpuZkpSystem(std::vector<gpusim::DeviceSpec> specs,
                      SystemOptions opt = {})
        : specs_(std::move(specs)), opt_(opt)
    {
        if (specs_.empty())
            fatal("MultiGpuZkpSystem: no devices");
    }

    /**
     * Split @p batch across the fleet: largest-remainder quotas
     * proportional to each card's lanes * clock (slices sum exactly to
     * the batch; with more devices than tasks the surplus cards stay
     * idle), refined by moving tasks from the card with the largest
     * predicted makespan onto the card that can absorb them cheapest.
     */
    std::vector<size_t>
    planSlices(size_t batch, unsigned n_vars) const
    {
        size_t n = specs_.size();
        double total_rate = 0.0;
        for (const auto &spec : specs_)
            total_rate += spec.cuda_cores * spec.clock_ghz;

        // Largest-remainder apportionment: floors first, then the
        // leftover tasks to the largest fractional parts (ties to the
        // lower device index, deterministically).
        std::vector<size_t> slices(n, 0);
        std::vector<std::pair<double, size_t>> remainders;
        remainders.reserve(n);
        size_t given = 0;
        for (size_t d = 0; d < n; ++d) {
            double quota = specs_[d].cuda_cores * specs_[d].clock_ghz /
                           total_rate * static_cast<double>(batch);
            slices[d] = static_cast<size_t>(quota);
            given += slices[d];
            remainders.emplace_back(
                quota - static_cast<double>(slices[d]), d);
        }
        std::sort(remainders.begin(), remainders.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first > b.first;
                      return a.second < b.second;
                  });
        size_t leftover = batch > given ? batch - given : 0;
        for (size_t i = 0; i < leftover; ++i)
            ++slices[remainders[i % n].second];

        // Rebalance: predicted makespan of a slice is its fill + drain
        // time at the card's steady cycle. Move single tasks off the
        // critical card while doing so strictly shrinks the fleet
        // makespan (also pulls work onto idle cards when that helps).
        std::vector<double> cycle_ms(n), depth(n);
        sched::StageGraph graph =
            systemStageGraph(systemWorkModel(n_vars, opt_.seed));
        for (size_t d = 0; d < n; ++d) {
            gpusim::Device dev(specs_[d]);
            sched::CycleModel model(graph, dev, opt_.overlap_transfers);
            cycle_ms[d] = model.cycleMs();
            depth[d] = static_cast<double>(model.depth());
        }
        auto predicted = [&](size_t d, size_t slice) {
            if (slice == 0)
                return 0.0;
            return (static_cast<double>(slice) + depth[d] - 1.0) *
                   cycle_ms[d];
        };
        for (;;) {
            size_t src = 0;
            double makespan = 0.0;
            for (size_t d = 0; d < n; ++d) {
                if (predicted(d, slices[d]) > makespan) {
                    makespan = predicted(d, slices[d]);
                    src = d;
                }
            }
            if (slices[src] == 0)
                break;
            size_t dst = src;
            double best_cost = makespan;
            for (size_t d = 0; d < n; ++d) {
                if (d == src)
                    continue;
                double cost = predicted(d, slices[d] + 1);
                if (cost < best_cost) {
                    best_cost = cost;
                    dst = d;
                }
            }
            if (dst == src)
                break;
            // The move only helps when the source's shrunken slice and
            // the destination's grown slice both stay under the old
            // makespan; otherwise the plan is already balanced.
            double after = std::max(predicted(src, slices[src] - 1),
                                    predicted(dst, slices[dst] + 1));
            for (size_t d = 0; d < n; ++d)
                if (d != src && d != dst)
                    after = std::max(after, predicted(d, slices[d]));
            if (after >= makespan)
                break;
            --slices[src];
            ++slices[dst];
        }
        return slices;
    }

    /**
     * Run @p batch proofs for 2^n_vars-row circuits across the fleet.
     * Each device draws from its own Rng seeded by deviceSeed(), so
     * the shared @p rng is never consumed and per-device results do
     * not depend on fleet composition or iteration order.
     */
    MultiGpuResult
    run(size_t batch, unsigned n_vars, Rng &rng)
    {
        (void)rng; // kept for API stability; see deviceSeed()
        MultiGpuResult result;
        result.slices = planSlices(batch, n_vars);
        for (size_t d = 0; d < specs_.size(); ++d) {
            size_t slice = result.slices[d];
            if (slice == 0) {
                // Surplus card: stays idle, keeps its fleet position.
                result.per_device.emplace_back();
                continue;
            }
            gpusim::Device dev(specs_[d]);
            PipelinedZkpSystem system(dev, opt_);
            Rng dev_rng(deviceSeed(opt_.seed, d));
            auto r = system.run(slice, n_vars, dev_rng);
            result.total_throughput_per_ms += r.stats.throughput_per_ms;
            result.makespan_ms =
                std::max(result.makespan_ms, r.stats.total_ms);
            result.total_device_bytes += r.stats.peak_device_bytes;
            result.per_device.push_back(std::move(r));
        }
        return result;
    }

  private:
    std::vector<gpusim::DeviceSpec> specs_;
    SystemOptions opt_;
};

} // namespace bzk

#endif // BZK_CORE_MULTIGPU_H_
