#ifndef BZK_CORE_MULTIGPU_H_
#define BZK_CORE_MULTIGPU_H_

/**
 * @file
 * Multi-GPU batch generation (extension beyond the paper's single-card
 * evaluation). Proof tasks are independent, so a fleet of cards runs
 * disjoint slices of the batch; each card hosts its own full pipeline
 * and its own host link (the deployment the paper's zkBridge/MLaaS
 * economics imply). Scaling is near-linear until the host-side witness
 * producer saturates, which is outside this model.
 */

#include <memory>
#include <vector>

#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"

namespace bzk {

/** Aggregate result of a fleet run. */
struct MultiGpuResult
{
    /** Sum of per-device steady throughputs. */
    double total_throughput_per_ms = 0.0;
    /** Time until the slowest device finished its slice. */
    double makespan_ms = 0.0;
    /** Sum of per-device peak memory. */
    uint64_t total_device_bytes = 0;
    std::vector<SystemRunResult> per_device;
};

/** A fleet of simulated GPUs running the pipelined system. */
class MultiGpuZkpSystem
{
  public:
    MultiGpuZkpSystem(std::vector<gpusim::DeviceSpec> specs,
                      SystemOptions opt = {})
        : specs_(std::move(specs)), opt_(opt)
    {
        if (specs_.empty())
            fatal("MultiGpuZkpSystem: no devices");
    }

    /**
     * Run @p batch proofs for 2^n_vars-row circuits across the fleet.
     * The batch splits proportionally to each card's lane throughput.
     */
    MultiGpuResult
    run(size_t batch, unsigned n_vars, Rng &rng)
    {
        // Split proportional to lanes * clock.
        double total_rate = 0.0;
        for (const auto &spec : specs_)
            total_rate += spec.cuda_cores * spec.clock_ghz;

        MultiGpuResult result;
        size_t assigned = 0;
        SystemOptions opt = opt_;
        opt.functional = 0; // functional proving is host-side anyway
        for (size_t d = 0; d < specs_.size(); ++d) {
            double share =
                specs_[d].cuda_cores * specs_[d].clock_ghz / total_rate;
            size_t slice =
                d + 1 == specs_.size()
                    ? batch - assigned
                    : static_cast<size_t>(share * batch);
            slice = std::max<size_t>(slice, 1);
            assigned += slice;

            gpusim::Device dev(specs_[d]);
            PipelinedZkpSystem system(dev, opt);
            auto r = system.run(slice, n_vars, rng);
            result.total_throughput_per_ms += r.stats.throughput_per_ms;
            result.makespan_ms =
                std::max(result.makespan_ms, r.stats.total_ms);
            result.total_device_bytes += r.stats.peak_device_bytes;
            result.per_device.push_back(std::move(r));
        }
        return result;
    }

  private:
    std::vector<gpusim::DeviceSpec> specs_;
    SystemOptions opt_;
};

} // namespace bzk

#endif // BZK_CORE_MULTIGPU_H_
