#ifndef BZK_CORE_TENSORPCS_H_
#define BZK_CORE_TENSORPCS_H_

/**
 * @file
 * Tensor-code polynomial commitment (Brakedown/Orion style) — the
 * composition of the paper's modules in Figure 7: the polynomial's
 * evaluation table is arranged as a k x m matrix, every row is encoded
 * with the Spielman linear-time encoder, and the codeword columns are
 * hashed into a Merkle tree whose root is the commitment.
 *
 * Opening at a point r = (r_row, r_col) sends
 *  - the eq(r_row)-combination of the rows (the "evaluation row"),
 *  - a gamma-powers combination of the rows (the "proximity row"),
 *  - a few spot-checked codeword columns with Merkle paths.
 * The verifier re-encodes both combined rows and checks them against the
 * opened columns, then reads the evaluation off the evaluation row.
 *
 * Simplifications vs. production Orion are listed in DESIGN.md Sec. 6
 * (fixed soundness parameters, no zero-knowledge masking row).
 */

#include <cstddef>
#include <vector>

#include "encoder/SpielmanCode.h"
#include "exec/ExecContext.h"
#include "ff/FieldBackend.h"
#include "hash/Sha256.h"
#include "hash/Transcript.h"
#include "merkle/MerkleTree.h"
#include "poly/Multilinear.h"
#include "util/Log.h"

namespace bzk {

/** Verifier-side commitment: just the Merkle root. */
struct PcsCommitment
{
    Digest root;
    unsigned n_vars = 0;
};

/** Prover-side state retained between commit and open. */
template <typename F>
struct PcsProverState
{
    PcsCommitment commitment;
    /** The committed evaluation table (k*m entries). */
    std::vector<F> poly;
    /** Row codewords, k rows of length 2m. */
    std::vector<std::vector<F>> encoded_rows;
    /** Merkle tree over the 2m column hashes. */
    MerkleTree tree = MerkleTree::buildFromLeaves({Digest{}});
};

/** Opening proof for one evaluation. */
template <typename F>
struct PcsEvalProof
{
    /** eq(r_row)-weighted row combination, length m. */
    std::vector<F> eval_row;
    /** gamma-powers row combination, length m. */
    std::vector<F> proximity_row;
    /** Spot-checked codeword columns (each k entries). */
    std::vector<std::vector<F>> columns;
    /** Merkle paths for the opened columns. */
    std::vector<MerklePath> paths;
};

/** The tensor-code PCS for 2^n-entry multilinear polynomials. */
template <typename F>
class TensorPcs
{
  public:
    /**
     * @param n_vars polynomial size is 2^n_vars; must be >= 6 so the
     *        column dimension reaches the encoder's base size.
     * @param seed   deterministic encoder graphs (shared with verifier).
     * @param column_openings spot-check count (soundness parameter).
     */
    TensorPcs(unsigned n_vars, uint64_t seed, size_t column_openings = 8)
        : n_vars_(n_vars),
          col_vars_(colVarsFor(n_vars)),
          row_vars_(n_vars - colVarsFor(n_vars)),
          column_openings_(column_openings),
          code_(size_t{1} << col_vars_, seed)
    {
    }

    /** log2 of the row count k. */
    unsigned rowVars() const { return row_vars_; }

    /** log2 of the row length m (the encoder's message length). */
    unsigned colVars() const { return col_vars_; }

    /** Spot-check count. */
    size_t columnOpenings() const { return column_openings_; }

    /** The underlying code (exposed for cost accounting). */
    const SpielmanCode<F> &code() const { return code_; }

    /**
     * Commit to a 2^n_vars evaluation table. With a non-null @p exec
     * the k row encodings, the 2m column hashes, and every Merkle
     * layer run across host threads; the commitment is bit-identical
     * for any thread count.
     */
    PcsProverState<F>
    commit(std::vector<F> poly, const exec::ExecContext *exec = nullptr)
        const
    {
        size_t k = size_t{1} << row_vars_;
        size_t m = size_t{1} << col_vars_;
        if (poly.size() != k * m)
            panic("TensorPcs::commit: table size %zu != 2^%u", poly.size(),
                  n_vars_);

        // Rows are independent messages: parallelize across rows with
        // serial per-row encodes (the outer loop has enough slots; a
        // nested parallel encode would only add scheduling overhead).
        PcsProverState<F> state;
        state.encoded_rows.resize(k);
        if (exec)
            exec->setRegion("encoder");
        auto encode_rows = [&](size_t begin, size_t end) {
            for (size_t row = begin; row < end; ++row) {
                std::span<const F> message(poly.data() + row * m, m);
                state.encoded_rows[row] = code_.encode(message);
            }
        };
        if (exec)
            exec->parallelFor(k, /*serial_cutoff=*/2, encode_rows);
        else
            encode_rows(0, k);

        // Hash each of the 2m codeword columns into a leaf; one
        // serialization scratch buffer per worker chunk.
        std::vector<Digest> leaves(2 * m);
        if (exec)
            exec->setRegion("merkle");
        auto hash_cols = [&](size_t begin, size_t end) {
            std::vector<uint8_t> buf(k * F::kNumBytes);
            for (size_t col = begin; col < end; ++col) {
                for (size_t row = 0; row < k; ++row)
                    state.encoded_rows[row][col].toBytes(
                        buf.data() + row * F::kNumBytes);
                leaves[col] = Sha256::digest(buf);
            }
        };
        if (exec)
            exec->parallelFor(2 * m, /*serial_cutoff=*/2, hash_cols);
        else
            hash_cols(0, 2 * m);
        state.tree = MerkleTree::buildFromLeaves(std::move(leaves), exec);
        state.commitment.root = state.tree.root();
        state.commitment.n_vars = n_vars_;
        state.poly = std::move(poly);
        return state;
    }

    /**
     * Evaluate the committed polynomial at @p point (n_vars entries,
     * first row_vars select the row, the rest the column).
     */
    F
    evaluate(const PcsProverState<F> &state,
             const std::vector<F> &point) const
    {
        Multilinear<F> ml(state.poly);
        return ml.evaluate(point);
    }

    /**
     * Produce an opening proof for @p point. @p exec parallelizes the
     * two row-combination passes across columns; each output column
     * accumulates its rows in the same ascending order as the serial
     * pass, so the proof is bit-identical.
     */
    PcsEvalProof<F>
    open(const PcsProverState<F> &state, const std::vector<F> &point,
         Transcript &transcript,
         const exec::ExecContext *exec = nullptr) const
    {
        if (point.size() != n_vars_)
            panic("TensorPcs::open: point size %zu != %u", point.size(),
                  n_vars_);
        size_t k = size_t{1} << row_vars_;
        size_t m = size_t{1} << col_vars_;

        std::vector<F> r_row(point.begin(), point.begin() + row_vars_);
        auto eq_row = eqTable(r_row);
        if (exec)
            exec->setRegion("sumcheck");

        PcsEvalProof<F> proof;
        proof.eval_row.assign(m, F::zero());
        // Row-outer axpy over each column chunk: the contiguous poly
        // rows feed the packed kernels, and every column still
        // accumulates its rows in the same ascending order as the
        // serial column-major pass, so the proof is bit-identical.
        auto eval_cols = [&](size_t begin, size_t end) {
            for (size_t row = 0; row < k; ++row)
                ff::axpyLanes(proof.eval_row.data() + begin,
                              state.poly.data() + row * m + begin,
                              eq_row[row], end - begin);
        };
        if (exec)
            exec->parallelFor(m, /*serial_cutoff=*/8, eval_cols);
        else
            eval_cols(0, m);

        // Proximity combination with gamma powers, gamma derived after
        // the commitment was absorbed by the caller.
        F gamma = transcript.template challengeField<F>("pcs.gamma");
        std::vector<F> gamma_pow(k);
        F g = F::one();
        for (size_t row = 0; row < k; ++row) {
            gamma_pow[row] = g;
            g *= gamma;
        }
        proof.proximity_row.assign(m, F::zero());
        auto prox_cols = [&](size_t begin, size_t end) {
            for (size_t row = 0; row < k; ++row)
                ff::axpyLanes(proof.proximity_row.data() + begin,
                              state.poly.data() + row * m + begin,
                              gamma_pow[row], end - begin);
        };
        if (exec)
            exec->parallelFor(m, /*serial_cutoff=*/8, prox_cols);
        else
            prox_cols(0, m);

        for (const F &v : proof.eval_row)
            transcript.absorbField("pcs.eval_row", v);
        for (const F &v : proof.proximity_row)
            transcript.absorbField("pcs.prox_row", v);

        auto cols = transcript.challengeDistinctIndices(
            "pcs.cols", column_openings_, 2 * m);
        for (uint64_t col : cols) {
            std::vector<F> column(k);
            for (size_t row = 0; row < k; ++row)
                column[row] = state.encoded_rows[row][col];
            proof.columns.push_back(std::move(column));
            proof.paths.push_back(state.tree.path(col));
        }
        return proof;
    }

    /**
     * Verify an opening: Merkle membership of each opened column,
     * consistency of both combined rows with the columns under the
     * code's linearity, and the claimed @p value against the evaluation
     * row. The @p transcript must be in the same state as the prover's
     * was at open().
     */
    bool
    verify(const PcsCommitment &commitment, const std::vector<F> &point,
           const F &value, const PcsEvalProof<F> &proof,
           Transcript &transcript) const
    {
        if (commitment.n_vars != n_vars_ || point.size() != n_vars_)
            return false;
        size_t k = size_t{1} << row_vars_;
        size_t m = size_t{1} << col_vars_;
        if (proof.eval_row.size() != m || proof.proximity_row.size() != m)
            return false;
        if (proof.columns.size() != column_openings_ ||
            proof.paths.size() != column_openings_)
            return false;

        F gamma = transcript.template challengeField<F>("pcs.gamma");
        for (const F &v : proof.eval_row)
            transcript.absorbField("pcs.eval_row", v);
        for (const F &v : proof.proximity_row)
            transcript.absorbField("pcs.prox_row", v);
        auto cols = transcript.challengeDistinctIndices(
            "pcs.cols", column_openings_, 2 * m);

        // Re-encode both rows once; linearity makes the codeword of the
        // combination equal the combination of the row codewords.
        auto eval_code = code_.encode(proof.eval_row);
        auto prox_code = code_.encode(proof.proximity_row);

        std::vector<F> r_row(point.begin(), point.begin() + row_vars_);
        auto eq_row = eqTable(r_row);

        std::vector<F> gamma_pow(k);
        F g = F::one();
        for (size_t row = 0; row < k; ++row) {
            gamma_pow[row] = g;
            g *= gamma;
        }

        std::vector<uint8_t> buf(k * F::kNumBytes);
        for (size_t i = 0; i < cols.size(); ++i) {
            uint64_t col = cols[i];
            const auto &column = proof.columns[i];
            if (column.size() != k)
                return false;
            // Merkle membership.
            for (size_t row = 0; row < k; ++row)
                column[row].toBytes(buf.data() + row * F::kNumBytes);
            Digest leaf = Sha256::digest(buf);
            if (proof.paths[i].leaf_index != col)
                return false;
            if (!MerkleTree::verifyPath(commitment.root, leaf,
                                        proof.paths[i]))
                return false;

            // Consistency with the evaluation row.
            if (ff::dotLanes(eq_row.data(), column.data(), k) !=
                eval_code[col])
                return false;

            // Consistency with the proximity row.
            if (ff::dotLanes(gamma_pow.data(), column.data(), k) !=
                prox_code[col])
                return false;
        }

        // The evaluation itself: <eval_row, eq(r_col)>.
        std::vector<F> r_col(point.begin() + row_vars_, point.end());
        auto eq_col = eqTable(r_col);
        return ff::dotLanes(proof.eval_row.data(), eq_col.data(), m) ==
               value;
    }

  private:
    static unsigned
    colVarsFor(unsigned n_vars)
    {
        if (n_vars < 6)
            fatal("TensorPcs: need >= 6 variables, got %u", n_vars);
        unsigned col = (n_vars + 1) / 2;
        return col < 5 ? 5 : col;
    }

    unsigned n_vars_;
    unsigned col_vars_;
    unsigned row_vars_;
    size_t column_openings_;
    SpielmanCode<F> code_;
};

} // namespace bzk

#endif // BZK_CORE_TENSORPCS_H_
