#ifndef BZK_CORE_DURABLESERVICE_H_
#define BZK_CORE_DURABLESERVICE_H_

/**
 * @file
 * Durable proof service: the journal-backed front end that makes "no
 * admitted task is ever lost" an enforced invariant.
 *
 * Every submitted task is journaled (fsync'd) before it is accepted;
 * every produced proof is journaled before it counts as complete. On
 * construction the service replays the journal directory: completed
 * proofs are restored from their completion records, and tasks that
 * were admitted but never completed are re-submitted into the pipeline
 * scheduler. Task IDs are idempotency keys — duplicate submissions and
 * double replay are absorbed (bzk_journal_duplicates_total), so
 * at-least-once replay still yields exactly-one proof per task.
 *
 * Because instances are derived deterministically from (task_id, seed,
 * n_vars) and the prover is transcript-deterministic, a proof produced
 * after a crash and replay is bit-identical to the proof an
 * uninterrupted run would have produced. The crash-matrix test harness
 * (tests/test_crash_matrix.cpp) kills processing at every ProveStage
 * boundary via the CrashHook and asserts exactly that.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/PipelinedSystem.h"
#include "journal/Journal.h"
#include "journal/Replay.h"

namespace bzk {

/**
 * Instance derivation shared by every service front end: the
 * idempotency key, the public seed, and the table log-size pin the
 * witness stream, so the same task re-proved anywhere (durable
 * replay, the network server) is bit-identical.
 */
Rng taskInstanceRng(uint64_t task_id, uint64_t seed, uint32_t n_vars);

/** One durable proof request (the caller assigns the idempotent id). */
struct DurableTaskSpec
{
    /** Idempotency key: resubmitting an id is a no-op. */
    uint64_t id = 0;
    /** Constraint-table log-size. */
    unsigned n_vars = 10;
    /** Public encoder seed (with id, pins the instance). */
    uint64_t seed = 2024;
    /** Scheduling priority (higher admits first). */
    int priority = 0;
    /** Proving protocol to run (journaled with the task). */
    sched::ProtocolKind kind = sched::ProtocolKind::TableCommit;
};

/** What construction-time recovery found and did. */
struct RecoveryInfo
{
    /** Valid records replayed from the journal. */
    size_t records_replayed = 0;
    /** Completed proofs restored from completion records. */
    size_t proofs_restored = 0;
    /** Unfinished tasks re-submitted into the scheduler. */
    size_t tasks_resubmitted = 0;
    /** Invalid records/headers the scan stopped at. */
    size_t torn_records = 0;
    /** Where/why the scan stopped (valid when torn_records > 0). */
    journal::TornInfo torn;
    /** Duplicate task records absorbed during replay. */
    size_t duplicates = 0;
    /** Wall time of replay + re-submission, ms. */
    double recovery_wall_ms = 0.0;
};

/** Journal-backed proving service over the pipelined system. */
class DurableProofService
{
  public:
    /**
     * Crash hook for the kill/restart harness: invoked at every
     * ProveStage boundary of every task; return false to "kill" the
     * service there (processing stops, nothing further is journaled,
     * exactly like a power cut between stages).
     */
    using CrashHook =
        std::function<bool(uint64_t task_id, ProveStage stage)>;

    /**
     * Open (and if needed recover) the journal at @p journal_opt.dir.
     * @p dev drives the pipeline-scheduler accounting of re-submitted
     * and new tasks. @p metrics (not owned, may be nullptr) receives
     * the bzk_journal_* series.
     */
    DurableProofService(gpusim::Device &dev,
                        journal::JournalOptions journal_opt,
                        SystemOptions opt = {},
                        obs::MetricsRegistry *metrics = nullptr);

    /** What recovery replayed, restored, and re-submitted. */
    const RecoveryInfo &recovery() const { return recovery_; }

    /**
     * Durably admit a task. Returns true when the task was journaled,
     * false when @p spec.id is already known (pending or completed) —
     * the duplicate is absorbed and counted, never proved twice.
     */
    bool submit(const DurableTaskSpec &spec);

    /** Tasks admitted (journaled) but not yet completed. */
    size_t pendingCount() const { return pending_.size(); }

    /** Pending tasks in admission order (priority-first at process). */
    const std::vector<journal::TaskRecord> &pending() const
    {
        return pending_;
    }

    /**
     * Prove every pending task, journaling each completion. Tasks run
     * priority-first, ties in admission order — the scheduler's
     * admission policy. Returns the number of proofs completed this
     * call; with a @p crash hook returning false the count stops short
     * and the unfinished tasks stay pending (and journaled).
     */
    size_t processAll(const CrashHook &crash = {});

    /**
     * Pipeline-scheduler accounting for the current pending set (the
     * re-submission path recovery uses). Simulation only; returns an
     * empty result when nothing is pending.
     */
    sched::SchedulerResult scheduleAccounting();

    /** Completed proofs: task id -> self-contained completion record. */
    const std::map<uint64_t, journal::CompletionRecord> &proofs() const
    {
        return proofs_;
    }

    /** Deserialize and verify every completed proof. */
    bool verifyAll() const;

    /** The underlying journal (for stats and explicit sync). */
    journal::Journal &journal() { return *journal_; }

  private:
    /**
     * Prove one journaled task with its protocol's prover and return
     * the serialized proof bytes (empty with @p crashed set when the
     * crash hook cut processing short). Dispatch is on the record's
     * kind; both provers share the ProveStage hook seams.
     */
    std::vector<uint8_t> proveTask(const journal::TaskRecord &task,
                                   const CrashHook &crash, bool &crashed);

    gpusim::Device &dev_;
    SystemOptions opt_;
    obs::MetricsRegistry *metrics_ = nullptr;
    std::unique_ptr<journal::Journal> journal_;
    RecoveryInfo recovery_;
    std::vector<journal::TaskRecord> pending_;
    std::map<uint64_t, journal::CompletionRecord> proofs_;
};

} // namespace bzk

#endif // BZK_CORE_DURABLESERVICE_H_
