#ifndef BZK_FF_FP_H_
#define BZK_FF_FP_H_

/**
 * @file
 * Montgomery-form prime field Fp templated on a parameter pack.
 *
 * Elements are stored in Montgomery form (x * R mod p with R = 2^256).
 * Multiplication uses the CIOS algorithm with 128-bit accumulation; the
 * implementation requires the modulus to fit in 255 bits, which both
 * BN254 fields satisfy.
 */

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "ff/U256.h"
#include "util/Rng.h"

namespace bzk {

/**
 * Prime field element in Montgomery form.
 *
 * @tparam Params parameter pack exposing kModulus, kGenerator,
 *         kTwoAdicity and kName (see FieldParams.h).
 */
template <typename Params>
class Fp
{
  public:
    static constexpr U256 kModulus = Params::kModulus;
    static constexpr uint64_t kInv = negInv64(Params::kModulus.limb[0]);
    static constexpr unsigned kTwoAdicity = Params::kTwoAdicity;
    static constexpr size_t kNumBytes = 32;
    static constexpr size_t kBits = 254;

    static_assert(Params::kModulus.limb[0] & 1, "modulus must be odd");

    constexpr Fp() : mont_{} {}

    /** Additive identity. */
    static constexpr Fp zero() { return Fp{}; }

    /** Multiplicative identity. */
    static constexpr Fp
    one()
    {
        return fromU256Raw(montR());
    }

    /** Embed a small integer. */
    static constexpr Fp
    fromUint(uint64_t v)
    {
        return fromU256(U256{v});
    }

    /**
     * Embed a 256-bit standard-form integer, reducing mod p.
     * Accepts any value in [0, 2^256).
     */
    static constexpr Fp
    fromU256(U256 v)
    {
        // v < 2^256 < 8p for our 254-bit moduli; a short subtract loop
        // canonicalizes before entering Montgomery form.
        while (cmp(v, kModulus) >= 0) {
            uint64_t borrow = 0;
            v = subBorrow(v, kModulus, borrow);
        }
        Fp r;
        r.mont_ = montMul(v, montR2());
        return r;
    }

    /** Standard-form value in [0, p). */
    constexpr U256
    toU256() const
    {
        return montMul(mont_, U256{1});
    }

    /** Serialize the canonical value as 32 little-endian bytes. */
    void
    toBytes(uint8_t *out) const
    {
        U256 v = toU256();
        u256ToBytes(v, std::span<uint8_t, 32>(out, 32));
    }

    /** Parse 32 little-endian bytes, reducing mod p. */
    static Fp
    fromBytes(const uint8_t *in)
    {
        return fromU256(u256FromBytes(std::span<const uint8_t, 32>(in, 32)));
    }

    /**
     * Derive a field element from arbitrary bytes (transcript output),
     * interpreting up to the first 32 bytes little-endian and reducing.
     */
    static Fp
    fromBytesReduce(const uint8_t *in, size_t len)
    {
        uint8_t buf[32] = {0};
        std::memcpy(buf, in, len < 32 ? len : 32);
        return fromBytes(buf);
    }

    /** Uniform random element (for workloads; not protocol challenges). */
    static Fp
    random(Rng &rng)
    {
        U256 v{rng.next(), rng.next(), rng.next(), rng.next()};
        return fromU256(v);
    }

    constexpr bool
    operator==(const Fp &other) const
    {
        return mont_ == other.mont_;
    }

    constexpr bool
    operator!=(const Fp &other) const
    {
        return !(*this == other);
    }

    /** True iff this is the additive identity. */
    constexpr bool isZero() const { return mont_.isZero(); }

    constexpr Fp
    operator+(const Fp &other) const
    {
        Fp r;
        r.mont_ = addMod(mont_, other.mont_, kModulus);
        return r;
    }

    constexpr Fp
    operator-(const Fp &other) const
    {
        Fp r;
        r.mont_ = subMod(mont_, other.mont_, kModulus);
        return r;
    }

    constexpr Fp
    operator-() const
    {
        Fp r;
        r.mont_ = subMod(U256{}, mont_, kModulus);
        return r;
    }

    constexpr Fp
    operator*(const Fp &other) const
    {
        Fp r;
        r.mont_ = montMul(mont_, other.mont_);
        return r;
    }

    constexpr Fp &
    operator+=(const Fp &other)
    {
        return *this = *this + other;
    }

    constexpr Fp &
    operator-=(const Fp &other)
    {
        return *this = *this - other;
    }

    constexpr Fp &
    operator*=(const Fp &other)
    {
        return *this = *this * other;
    }

    /** this * this */
    constexpr Fp
    square() const
    {
        return *this * *this;
    }

    /** 2 * this */
    constexpr Fp
    dbl() const
    {
        Fp r;
        r.mont_ = addMod(mont_, mont_, kModulus);
        return r;
    }

    /** this^e for a 256-bit exponent (square-and-multiply). */
    constexpr Fp
    pow(const U256 &e) const
    {
        Fp acc = one();
        unsigned bits = e.bitLength();
        for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
            acc = acc.square();
            if (e.bit(static_cast<unsigned>(i)))
                acc = acc * *this;
        }
        return acc;
    }

    /** this^e for a 64-bit exponent. */
    constexpr Fp
    pow(uint64_t e) const
    {
        return pow(U256{e});
    }

    /**
     * Multiplicative inverse via Fermat's little theorem (this^(p-2)).
     * @pre not zero. Zero has no inverse; the Fermat power maps it to
     * zero, which silently poisons downstream arithmetic, so debug
     * builds assert. Callers that may legitimately see zeros use
     * ff::batchInverse, whose skip-zero semantics are explicit.
     */
    constexpr Fp
    inverse() const
    {
        assert(!isZero() && "Fp::inverse of zero");
        uint64_t borrow = 0;
        U256 pm2 = subBorrow(kModulus, U256{2}, borrow);
        return pow(pm2);
    }

    /**
     * Primitive 2^k-th root of unity; requires k <= kTwoAdicity.
     * Derived as g^((p-1)/2^k) from the field generator.
     */
    static Fp
    rootOfUnity(unsigned k)
    {
        uint64_t borrow = 0;
        U256 e = subBorrow(kModulus, U256{1}, borrow);
        // e /= 2^k via limb shifts
        for (unsigned i = 0; i < k; ++i) {
            for (int j = 0; j < 4; ++j) {
                e.limb[j] >>= 1;
                if (j < 3)
                    e.limb[j] |= e.limb[j + 1] << 63;
            }
        }
        return fromUint(Params::kGenerator).pow(e);
    }

    /** Debug hex of the canonical value. */
    std::string
    toHexString() const
    {
        return u256ToHex(toU256());
    }

    /** Raw Montgomery limbs (for hashing into transcripts cheaply). */
    constexpr const U256 &montRaw() const { return mont_; }

  private:
    static constexpr Fp
    fromU256Raw(const U256 &mont)
    {
        Fp r;
        r.mont_ = mont;
        return r;
    }

    /** R = 2^256 mod p. */
    static constexpr U256
    montR()
    {
        return shiftLeftMod(U256{1}, 256, kModulus);
    }

    /** R^2 = 2^512 mod p. */
    static constexpr U256
    montR2()
    {
        return shiftLeftMod(U256{1}, 512, kModulus);
    }

    /**
     * Montgomery product (a * b * R^{-1} mod p) via CIOS.
     * Requires p < 2^255 so the running sum fits in 6 limbs.
     */
    static constexpr U256
    montMul(const U256 &a, const U256 &b)
    {
        uint64_t t[6] = {0, 0, 0, 0, 0, 0};
        for (int i = 0; i < 4; ++i) {
            // t += a * b[i]
            uint64_t carry = 0;
            for (int j = 0; j < 4; ++j) {
                __uint128_t cur = static_cast<__uint128_t>(a.limb[j]) *
                                      b.limb[i] +
                                  t[j] + carry;
                t[j] = static_cast<uint64_t>(cur);
                carry = static_cast<uint64_t>(cur >> 64);
            }
            __uint128_t cur = static_cast<__uint128_t>(t[4]) + carry;
            t[4] = static_cast<uint64_t>(cur);
            t[5] = static_cast<uint64_t>(cur >> 64);

            // Fold out the low limb: t = (t + m*p) / 2^64
            uint64_t m = t[0] * kInv;
            __uint128_t acc = static_cast<__uint128_t>(m) *
                                  kModulus.limb[0] +
                              t[0];
            carry = static_cast<uint64_t>(acc >> 64);
            for (int j = 1; j < 4; ++j) {
                acc = static_cast<__uint128_t>(m) * kModulus.limb[j] +
                      t[j] + carry;
                t[j - 1] = static_cast<uint64_t>(acc);
                carry = static_cast<uint64_t>(acc >> 64);
            }
            acc = static_cast<__uint128_t>(t[4]) + carry;
            t[3] = static_cast<uint64_t>(acc);
            t[4] = t[5] + static_cast<uint64_t>(acc >> 64);
            t[5] = 0;
        }
        U256 r{t[0], t[1], t[2], t[3]};
        if (t[4] != 0 || cmp(r, kModulus) >= 0) {
            uint64_t borrow = 0;
            r = subBorrow(r, kModulus, borrow);
        }
        return r;
    }

    U256 mont_;
};

} // namespace bzk

#endif // BZK_FF_FP_H_
