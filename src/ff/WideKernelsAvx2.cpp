/**
 * @file
 * 4-way AVX2 wide-field kernels (BN254 Fr/Fq class moduli). Compiled
 * with -mavx2 in its own translation unit; only reached after
 * __builtin_cpu_supports("avx2") (see FieldBackend.cpp).
 *
 * Layout: each block of 4 elements is transposed in-register from AoS
 * (four 64-bit limbs per element) to limb-major vectors, then the
 * radix-64 CIOS Montgomery loop from wideMulRef runs verbatim with
 * the 128-bit accumulator split across (lo, carry) lane vectors. AVX2
 * has no 64x64->128 multiply or unsigned 64-bit compare, so products
 * go through four 32x32->64 partial products (mul64Wide) and carries
 * are detected with sign-flip compares — the same tricks as the
 * Goldilocks AVX2 TU, just chained across four limbs.
 *
 * This table is also the wide-field path on AVX-512F hosts without
 * IFMA: AVX-512F implies AVX2, and without vpmadd52 the carry-chain
 * structure gains nothing from 512-bit lanes.
 *
 * Results are bit-identical to the scalar reference: same algorithm,
 * same conditional subtracts, full canonicalization per element.
 */

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "ff/WideKernels.h"

namespace bzk::ff::detail {
namespace {

using V = __m256i;

// Broadcast constants come from per-call setup, not file-scope
// globals (a global __m256i initializer would execute AVX2
// instructions during static init on pre-AVX2 hosts).

struct ConstsV
{
    V p[4];   // modulus limbs
    V inv;    // -p^{-1} mod 2^64
    V sign;   // 0x8000...0000 for unsigned compares
    V low32;  // 0x00000000ffffffff
    V zero;
};

inline ConstsV
makeConstsV(const WideFieldConstants &c)
{
    ConstsV k;
    for (int j = 0; j < 4; ++j)
        k.p[j] = _mm256_set1_epi64x(
            static_cast<long long>(c.modulus[j]));
    k.inv = _mm256_set1_epi64x(static_cast<long long>(c.inv));
    k.sign = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    k.low32 = _mm256_set1_epi64x(0xffffffffLL);
    k.zero = _mm256_setzero_si256();
    return k;
}

/** Lane-wise a < b as all-ones masks, unsigned (sign-flip compare). */
inline V
cmpltU64(const ConstsV &k, V a, V b)
{
    return _mm256_cmpgt_epi64(_mm256_xor_si256(b, k.sign),
                              _mm256_xor_si256(a, k.sign));
}

/** Mask (all-ones/all-zeros) -> 0/1 per lane. */
inline V
maskToBit(V m)
{
    return _mm256_srli_epi64(m, 63);
}

/** AoS block of 4 elements (16 limbs) -> limb-major L[0..3]. */
inline void
loadSoA(const uint64_t *p, V L[4])
{
    V r0 = _mm256_loadu_si256(reinterpret_cast<const V *>(p));
    V r1 = _mm256_loadu_si256(reinterpret_cast<const V *>(p + 4));
    V r2 = _mm256_loadu_si256(reinterpret_cast<const V *>(p + 8));
    V r3 = _mm256_loadu_si256(reinterpret_cast<const V *>(p + 12));
    V t0 = _mm256_unpacklo_epi64(r0, r1); // e0l0 e1l0 e0l2 e1l2
    V t1 = _mm256_unpackhi_epi64(r0, r1); // e0l1 e1l1 e0l3 e1l3
    V t2 = _mm256_unpacklo_epi64(r2, r3);
    V t3 = _mm256_unpackhi_epi64(r2, r3);
    L[0] = _mm256_permute2x128_si256(t0, t2, 0x20);
    L[1] = _mm256_permute2x128_si256(t1, t3, 0x20);
    L[2] = _mm256_permute2x128_si256(t0, t2, 0x31);
    L[3] = _mm256_permute2x128_si256(t1, t3, 0x31);
}

/** Limb-major L[0..3] -> AoS block of 4 elements at @p p. */
inline void
storeAoS(uint64_t *p, const V L[4])
{
    // The unpack/permute network is its own inverse.
    V t0 = _mm256_unpacklo_epi64(L[0], L[1]); // e0l0 e0l1 e2l0 e2l1
    V t1 = _mm256_unpackhi_epi64(L[0], L[1]); // e1l0 e1l1 e3l0 e3l1
    V t2 = _mm256_unpacklo_epi64(L[2], L[3]);
    V t3 = _mm256_unpackhi_epi64(L[2], L[3]);
    _mm256_storeu_si256(reinterpret_cast<V *>(p),
                        _mm256_permute2x128_si256(t0, t2, 0x20));
    _mm256_storeu_si256(reinterpret_cast<V *>(p + 4),
                        _mm256_permute2x128_si256(t1, t3, 0x20));
    _mm256_storeu_si256(reinterpret_cast<V *>(p + 8),
                        _mm256_permute2x128_si256(t0, t2, 0x31));
    _mm256_storeu_si256(reinterpret_cast<V *>(p + 12),
                        _mm256_permute2x128_si256(t1, t3, 0x31));
}

/** Full 64x64 -> 128 product per lane, as (hi, lo) vectors. */
inline void
mul64Wide(const ConstsV &k, V a, V b, V &hi, V &lo)
{
    V a_hi = _mm256_srli_epi64(a, 32);
    V b_hi = _mm256_srli_epi64(b, 32);
    V ll = _mm256_mul_epu32(a, b);
    V lh = _mm256_mul_epu32(a, b_hi);
    V hl = _mm256_mul_epu32(a_hi, b);
    V hh = _mm256_mul_epu32(a_hi, b_hi);

    // cross = lh + hl + (ll >> 32); lh + (ll >> 32) cannot wrap
    // ((2^32-1)^2 + (2^32-1) < 2^64), the second add can.
    V t = _mm256_add_epi64(lh, _mm256_srli_epi64(ll, 32));
    V cross = _mm256_add_epi64(t, hl);
    V carry = maskToBit(cmpltU64(k, cross, t));

    lo = _mm256_or_si256(_mm256_slli_epi64(cross, 32),
                         _mm256_and_si256(ll, k.low32));
    hi = _mm256_add_epi64(
        hh, _mm256_add_epi64(_mm256_srli_epi64(cross, 32),
                             _mm256_slli_epi64(carry, 32)));
}

/** Low 64 bits of a * b per lane (three 32x32 partial products). */
inline V
mullo64(V a, V b)
{
    V a_hi = _mm256_srli_epi64(a, 32);
    V b_hi = _mm256_srli_epi64(b, 32);
    V ll = _mm256_mul_epu32(a, b);
    V lh = _mm256_mul_epu32(a, b_hi);
    V hl = _mm256_mul_epu32(a_hi, b);
    return _mm256_add_epi64(
        ll, _mm256_slli_epi64(_mm256_add_epi64(lh, hl), 32));
}

/**
 * 4-way CIOS Montgomery product: out = x * y * 2^-256 mod p,
 * canonical. Mirrors wideMulRef step for step; the 128-bit scalar
 * accumulator becomes a (sum, carry) pair where carry absorbs the
 * mul64Wide high halves plus the chain's wrap bits (hi <= 2^64 -
 * 2^33 + 1, so adding two wrap bits cannot overflow).
 */
inline void
montMulV(const ConstsV &k, const V x[4], const V y[4], V out[4])
{
    V t[6] = {k.zero, k.zero, k.zero, k.zero, k.zero, k.zero};
    for (int i = 0; i < 4; ++i) {
        V carry = k.zero;
        for (int j = 0; j < 4; ++j) {
            V hi, lo;
            mul64Wide(k, x[j], y[i], hi, lo);
            V s1 = _mm256_add_epi64(t[j], lo);
            V c1 = maskToBit(cmpltU64(k, s1, lo));
            V s2 = _mm256_add_epi64(s1, carry);
            V c2 = maskToBit(cmpltU64(k, s2, carry));
            t[j] = s2;
            carry = _mm256_add_epi64(hi, _mm256_add_epi64(c1, c2));
        }
        V s = _mm256_add_epi64(t[4], carry);
        V c = maskToBit(cmpltU64(k, s, carry));
        t[4] = s;
        t[5] = _mm256_add_epi64(t[5], c);

        V m = mullo64(t[0], k.inv);
        V hi, lo;
        mul64Wide(k, m, k.p[0], hi, lo);
        V s1 = _mm256_add_epi64(t[0], lo); // low 64 bits become zero
        V c1 = maskToBit(cmpltU64(k, s1, lo));
        carry = _mm256_add_epi64(hi, c1);
        for (int j = 1; j < 4; ++j) {
            mul64Wide(k, m, k.p[j], hi, lo);
            s1 = _mm256_add_epi64(t[j], lo);
            c1 = maskToBit(cmpltU64(k, s1, lo));
            V s2 = _mm256_add_epi64(s1, carry);
            V c2 = maskToBit(cmpltU64(k, s2, carry));
            t[j - 1] = s2;
            carry = _mm256_add_epi64(hi, _mm256_add_epi64(c1, c2));
        }
        s = _mm256_add_epi64(t[4], carry);
        c = maskToBit(cmpltU64(k, s, carry));
        t[3] = s;
        t[4] = _mm256_add_epi64(t[5], c);
        t[5] = k.zero;
    }
    // Conditional subtract: needed when the overflow limb is set or
    // t >= p (borrow-chain compare).
    V d[4];
    V bw = k.zero;
    for (int j = 0; j < 4; ++j) {
        V d1 = _mm256_sub_epi64(t[j], k.p[j]);
        V b1 = cmpltU64(k, t[j], k.p[j]);
        V d2 = _mm256_sub_epi64(d1, bw);
        V b2 = cmpltU64(k, d1, bw);
        d[j] = d2;
        bw = maskToBit(_mm256_or_si256(b1, b2));
    }
    V ge = _mm256_cmpeq_epi64(bw, k.zero);
    V ovf = _mm256_cmpeq_epi64(t[4], k.zero); // all-ones when clean
    V need = _mm256_or_si256(ge, _mm256_xor_si256(
                                     ovf, _mm256_cmpeq_epi64(
                                              k.zero, k.zero)));
    for (int j = 0; j < 4; ++j)
        out[j] = _mm256_blendv_epi8(t[j], d[j], need);
}

/** (a + b) mod p on limb-major blocks, canonical in/out. */
inline void
addModSoA(const ConstsV &k, const V a[4], const V b[4], V out[4])
{
    // Canonical inputs sum below 2^256: no carry out of limb 3.
    V sum[4];
    V carry = k.zero;
    for (int j = 0; j < 4; ++j) {
        V s1 = _mm256_add_epi64(a[j], b[j]);
        V c1 = cmpltU64(k, s1, a[j]);
        V s2 = _mm256_add_epi64(s1, carry);
        V c2 = cmpltU64(k, s2, carry);
        sum[j] = s2;
        carry = maskToBit(_mm256_or_si256(c1, c2));
    }
    V d[4];
    V bw = k.zero;
    for (int j = 0; j < 4; ++j) {
        V d1 = _mm256_sub_epi64(sum[j], k.p[j]);
        V b1 = cmpltU64(k, sum[j], k.p[j]);
        V d2 = _mm256_sub_epi64(d1, bw);
        V b2 = cmpltU64(k, d1, bw);
        d[j] = d2;
        bw = maskToBit(_mm256_or_si256(b1, b2));
    }
    V ge = _mm256_cmpeq_epi64(bw, k.zero);
    for (int j = 0; j < 4; ++j)
        out[j] = _mm256_blendv_epi8(sum[j], d[j], ge);
}

/** (a - b) mod p on limb-major blocks, canonical in/out. */
inline void
subModSoA(const ConstsV &k, const V a[4], const V b[4], V out[4])
{
    V d[4];
    V bw = k.zero;
    for (int j = 0; j < 4; ++j) {
        V d1 = _mm256_sub_epi64(a[j], b[j]);
        V b1 = cmpltU64(k, a[j], b[j]);
        V d2 = _mm256_sub_epi64(d1, bw);
        V b2 = cmpltU64(k, d1, bw);
        d[j] = d2;
        bw = maskToBit(_mm256_or_si256(b1, b2));
    }
    V neg = _mm256_cmpeq_epi64(bw, k.zero); // all-ones when no borrow
    V carry = k.zero;
    for (int j = 0; j < 4; ++j) {
        // Add p only in borrowed lanes.
        V addend = _mm256_andnot_si256(neg, k.p[j]);
        V s1 = _mm256_add_epi64(d[j], addend);
        V c1 = cmpltU64(k, s1, d[j]);
        V s2 = _mm256_add_epi64(s1, carry);
        V c2 = cmpltU64(k, s2, carry);
        out[j] = s2;
        carry = maskToBit(_mm256_or_si256(c1, c2));
    }
}

/** Broadcast one element's limbs to a limb-major block. */
inline void
broadcastSoA(const uint64_t *one, V L[4])
{
    for (int j = 0; j < 4; ++j)
        L[j] = _mm256_set1_epi64x(static_cast<long long>(one[j]));
}

/** Fold 4 lanes of a limb-major accumulator into one element. */
inline void
reduceLanes(const WideFieldConstants &c, const V acc[4],
            uint64_t *out_one)
{
    alignas(32) uint64_t lanes[4][4];
    for (int j = 0; j < 4; ++j)
        _mm256_store_si256(reinterpret_cast<V *>(lanes[j]), acc[j]);
    uint64_t total[4] = {0, 0, 0, 0};
    uint64_t elem[4];
    for (int lane = 0; lane < 4; ++lane) {
        for (int j = 0; j < 4; ++j)
            elem[j] = lanes[j][lane];
        wideAddRef(c, total, elem, total);
    }
    for (int j = 0; j < 4; ++j)
        out_one[j] = total[j];
}

void
avx2Add(const WideFieldConstants &c, const uint64_t *a,
        const uint64_t *b, uint64_t *out, size_t n)
{
    ConstsV k = makeConstsV(c);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        V av[4], bv[4], ov[4];
        loadSoA(a + 4 * i, av);
        loadSoA(b + 4 * i, bv);
        addModSoA(k, av, bv, ov);
        storeAoS(out + 4 * i, ov);
    }
    for (; i < n; ++i)
        wideAddRef(c, a + 4 * i, b + 4 * i, out + 4 * i);
}

void
avx2Sub(const WideFieldConstants &c, const uint64_t *a,
        const uint64_t *b, uint64_t *out, size_t n)
{
    ConstsV k = makeConstsV(c);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        V av[4], bv[4], ov[4];
        loadSoA(a + 4 * i, av);
        loadSoA(b + 4 * i, bv);
        subModSoA(k, av, bv, ov);
        storeAoS(out + 4 * i, ov);
    }
    for (; i < n; ++i)
        wideSubRef(c, a + 4 * i, b + 4 * i, out + 4 * i);
}

void
avx2Mul(const WideFieldConstants &c, const uint64_t *a,
        const uint64_t *b, uint64_t *out, size_t n)
{
    ConstsV k = makeConstsV(c);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        V av[4], bv[4], ov[4];
        loadSoA(a + 4 * i, av);
        loadSoA(b + 4 * i, bv);
        montMulV(k, av, bv, ov);
        storeAoS(out + 4 * i, ov);
    }
    for (; i < n; ++i)
        wideMulRef(c, a + 4 * i, b + 4 * i, out + 4 * i);
}

void
avx2Fold(const WideFieldConstants &c, uint64_t *lo, const uint64_t *hi,
         const uint64_t *r, size_t n)
{
    ConstsV k = makeConstsV(c);
    V rv[4];
    broadcastSoA(r, rv);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        V lov[4], hiv[4], dv[4], pv[4];
        loadSoA(lo + 4 * i, lov);
        loadSoA(hi + 4 * i, hiv);
        subModSoA(k, hiv, lov, dv);
        montMulV(k, rv, dv, pv);
        addModSoA(k, lov, pv, lov);
        storeAoS(lo + 4 * i, lov);
    }
    uint64_t d[4], t[4];
    for (; i < n; ++i) {
        wideSubRef(c, hi + 4 * i, lo + 4 * i, d);
        wideMulRef(c, r, d, t);
        wideAddRef(c, lo + 4 * i, t, lo + 4 * i);
    }
}

void
avx2Axpy(const WideFieldConstants &c, uint64_t *acc, const uint64_t *x,
         const uint64_t *s, size_t n)
{
    ConstsV k = makeConstsV(c);
    V sv[4];
    broadcastSoA(s, sv);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        V av[4], xv[4], pv[4];
        loadSoA(acc + 4 * i, av);
        loadSoA(x + 4 * i, xv);
        montMulV(k, sv, xv, pv);
        addModSoA(k, av, pv, av);
        storeAoS(acc + 4 * i, av);
    }
    uint64_t t[4];
    for (; i < n; ++i) {
        wideMulRef(c, s, x + 4 * i, t);
        wideAddRef(c, acc + 4 * i, t, acc + 4 * i);
    }
}

void
avx2Sum(const WideFieldConstants &c, const uint64_t *a, size_t n,
        uint64_t *out_one)
{
    ConstsV k = makeConstsV(c);
    V acc[4] = {k.zero, k.zero, k.zero, k.zero};
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        V av[4];
        loadSoA(a + 4 * i, av);
        addModSoA(k, acc, av, acc);
    }
    reduceLanes(c, acc, out_one);
    for (; i < n; ++i)
        wideAddRef(c, out_one, a + 4 * i, out_one);
}

void
avx2Dot(const WideFieldConstants &c, const uint64_t *a,
        const uint64_t *b, size_t n, uint64_t *out_one)
{
    ConstsV k = makeConstsV(c);
    V acc[4] = {k.zero, k.zero, k.zero, k.zero};
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        V av[4], bv[4], pv[4];
        loadSoA(a + 4 * i, av);
        loadSoA(b + 4 * i, bv);
        montMulV(k, av, bv, pv);
        addModSoA(k, acc, pv, acc);
    }
    reduceLanes(c, acc, out_one);
    uint64_t t[4];
    for (; i < n; ++i) {
        wideMulRef(c, a + 4 * i, b + 4 * i, t);
        wideAddRef(c, out_one, t, out_one);
    }
}

} // namespace

const WideKernelTable &
wideAvx2Kernels()
{
    static const WideKernelTable table{avx2Add,  avx2Sub,  avx2Mul,
                                       avx2Fold, avx2Axpy, avx2Sum,
                                       avx2Dot};
    return table;
}

} // namespace bzk::ff::detail

#endif // __x86_64__
