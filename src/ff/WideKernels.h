#ifndef BZK_FF_WIDEKERNELS_H_
#define BZK_FF_WIDEKERNELS_H_

/**
 * @file
 * Internal contract between the FieldBackend dispatcher and the
 * per-ISA *wide-field* kernel translation units: packed Montgomery
 * arithmetic for 4x64-limb prime fields (BN254 Fr and Fq).
 *
 * Kernels operate on contiguous arrays of Montgomery-form elements in
 * the same memory layout as Fp<> (four little-endian 64-bit limbs per
 * element, canonical `< p`). FieldBackend.cpp is the only caller and
 * handles the Fp <-> limb view. Field constants travel by reference in
 * a WideFieldConstants so one kernel table serves every 4x64 field.
 *
 * Every kernel must produce bit-for-bit the scalar reference results
 * below. That holds even across radically different mul algorithms
 * (radix-52 IFMA vs. the scalar radix-64 CIOS) because each element
 * result is fully canonicalized: the Montgomery product
 * a*b*2^-256 mod p is a unique value < p, so any correct algorithm
 * stores identical limbs. Where a kernel folds lanes into one value
 * (sum, dot) the lane-major order is invisible because field addition
 * is exactly associative. test_ff_kat holds each backend to this and
 * the proof goldens depend on it.
 */

#include <cstddef>
#include <cstdint>

namespace bzk::ff::detail {

inline constexpr uint64_t kMask52 = (uint64_t{1} << 52) - 1;

/**
 * Runtime view of one 4x64-limb field's constants. Derived once per
 * field in FieldBackend.cpp from the Fp<> parameter pack; the radix-52
 * redundant form feeds the AVX-512 IFMA kernels.
 */
struct WideFieldConstants
{
    /** Little-endian modulus limbs, p < 2^255, p odd. */
    uint64_t modulus[4];
    /** -p^{-1} mod 2^64 (the CIOS folding constant). */
    uint64_t inv;
    /** p re-sliced into five 52-bit limbs (radix-52 kernels). */
    uint64_t modulus52[5];
    /** -p^{-1} mod 2^52 (== inv masked to 52 bits). */
    uint64_t inv52;
};

/** Build the constants (including the radix-52 form) from p. */
constexpr WideFieldConstants
makeWideConstants(uint64_t p0, uint64_t p1, uint64_t p2, uint64_t p3,
                  uint64_t inv)
{
    WideFieldConstants c{};
    c.modulus[0] = p0;
    c.modulus[1] = p1;
    c.modulus[2] = p2;
    c.modulus[3] = p3;
    c.inv = inv;
    c.inv52 = inv & kMask52;
    c.modulus52[0] = p0 & kMask52;
    c.modulus52[1] = ((p0 >> 52) | (p1 << 12)) & kMask52;
    c.modulus52[2] = ((p1 >> 40) | (p2 << 24)) & kMask52;
    c.modulus52[3] = ((p2 >> 28) | (p3 << 36)) & kMask52;
    c.modulus52[4] = p3 >> 16;
    return c;
}

// ---- Scalar references (shared by the scalar table, SIMD tails and
// ---- the KAT cross-checks). One element = limbs[4].

/** out = (a + b) mod p for canonical a, b. */
inline void
wideAddRef(const WideFieldConstants &c, const uint64_t *a,
           const uint64_t *b, uint64_t *out)
{
    uint64_t sum[4];
    uint64_t carry = 0;
    for (int i = 0; i < 4; ++i) {
        __uint128_t s = static_cast<__uint128_t>(a[i]) + b[i] + carry;
        sum[i] = static_cast<uint64_t>(s);
        carry = static_cast<uint64_t>(s >> 64);
    }
    // Subtract p when the sum wrapped or reached it.
    uint64_t ge = carry;
    if (!ge) {
        ge = 1;
        for (int i = 3; i >= 0; --i) {
            if (sum[i] != c.modulus[i]) {
                ge = sum[i] > c.modulus[i] ? 1 : 0;
                break;
            }
        }
    }
    if (ge) {
        uint64_t borrow = 0;
        for (int i = 0; i < 4; ++i) {
            __uint128_t d = static_cast<__uint128_t>(sum[i]) -
                            c.modulus[i] - borrow;
            sum[i] = static_cast<uint64_t>(d);
            borrow = (d >> 64) != 0 ? 1 : 0;
        }
    }
    for (int i = 0; i < 4; ++i)
        out[i] = sum[i];
}

/** out = (a - b) mod p for canonical a, b. */
inline void
wideSubRef(const WideFieldConstants &c, const uint64_t *a,
           const uint64_t *b, uint64_t *out)
{
    uint64_t diff[4];
    uint64_t borrow = 0;
    for (int i = 0; i < 4; ++i) {
        __uint128_t d = static_cast<__uint128_t>(a[i]) - b[i] - borrow;
        diff[i] = static_cast<uint64_t>(d);
        borrow = (d >> 64) != 0 ? 1 : 0;
    }
    if (borrow) {
        uint64_t carry = 0;
        for (int i = 0; i < 4; ++i) {
            __uint128_t s = static_cast<__uint128_t>(diff[i]) +
                            c.modulus[i] + carry;
            diff[i] = static_cast<uint64_t>(s);
            carry = static_cast<uint64_t>(s >> 64);
        }
    }
    for (int i = 0; i < 4; ++i)
        out[i] = diff[i];
}

/**
 * out = a * b * 2^-256 mod p (Montgomery CIOS, the same algorithm as
 * Fp<>::montMul but over runtime constants). Fully canonical.
 */
inline void
wideMulRef(const WideFieldConstants &c, const uint64_t *a,
           const uint64_t *b, uint64_t *out)
{
    uint64_t t[6] = {0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
        uint64_t carry = 0;
        for (int j = 0; j < 4; ++j) {
            __uint128_t cur = static_cast<__uint128_t>(a[j]) * b[i] +
                              t[j] + carry;
            t[j] = static_cast<uint64_t>(cur);
            carry = static_cast<uint64_t>(cur >> 64);
        }
        __uint128_t cur = static_cast<__uint128_t>(t[4]) + carry;
        t[4] = static_cast<uint64_t>(cur);
        t[5] = static_cast<uint64_t>(cur >> 64);

        uint64_t m = t[0] * c.inv;
        __uint128_t acc = static_cast<__uint128_t>(m) * c.modulus[0] +
                          t[0];
        carry = static_cast<uint64_t>(acc >> 64);
        for (int j = 1; j < 4; ++j) {
            acc = static_cast<__uint128_t>(m) * c.modulus[j] + t[j] +
                  carry;
            t[j - 1] = static_cast<uint64_t>(acc);
            carry = static_cast<uint64_t>(acc >> 64);
        }
        acc = static_cast<__uint128_t>(t[4]) + carry;
        t[3] = static_cast<uint64_t>(acc);
        t[4] = t[5] + static_cast<uint64_t>(acc >> 64);
        t[5] = 0;
    }
    uint64_t ge = t[4];
    if (!ge) {
        ge = 1;
        for (int i = 3; i >= 0; --i) {
            if (t[i] != c.modulus[i]) {
                ge = t[i] > c.modulus[i] ? 1 : 0;
                break;
            }
        }
    }
    if (ge) {
        uint64_t borrow = 0;
        for (int i = 0; i < 4; ++i) {
            __uint128_t d = static_cast<__uint128_t>(t[i]) -
                            c.modulus[i] - borrow;
            t[i] = static_cast<uint64_t>(d);
            borrow = (d >> 64) != 0 ? 1 : 0;
        }
    }
    for (int i = 0; i < 4; ++i)
        out[i] = t[i];
}

/**
 * One backend's packed kernels over contiguous 4-limb Montgomery
 * elements (array pointers hold 4*n limbs; `r` and `out_one` are a
 * single element). Pointers need only natural (8-byte) alignment.
 */
struct WideKernelTable
{
    void (*add)(const WideFieldConstants &c, const uint64_t *a,
                const uint64_t *b, uint64_t *out, size_t n);
    void (*sub)(const WideFieldConstants &c, const uint64_t *a,
                const uint64_t *b, uint64_t *out, size_t n);
    void (*mul)(const WideFieldConstants &c, const uint64_t *a,
                const uint64_t *b, uint64_t *out, size_t n);
    /** lo[i] = lo[i] + r * (hi[i] - lo[i]); ranges must not overlap. */
    void (*fold)(const WideFieldConstants &c, uint64_t *lo,
                 const uint64_t *hi, const uint64_t *r, size_t n);
    /** acc[i] += s * x[i]. */
    void (*axpy)(const WideFieldConstants &c, uint64_t *acc,
                 const uint64_t *x, const uint64_t *s, size_t n);
    /** out_one = sum_i a[i]. */
    void (*sum)(const WideFieldConstants &c, const uint64_t *a,
                size_t n, uint64_t *out_one);
    /** out_one = sum_i a[i] * b[i]. */
    void (*dot)(const WideFieldConstants &c, const uint64_t *a,
                const uint64_t *b, size_t n, uint64_t *out_one);
};

/** Portable table built from the references above. Always available. */
const WideKernelTable &wideScalarKernels();

#if defined(__x86_64__) || defined(_M_X64)
/**
 * 4-way AVX2 table (WideKernelsAvx2.cpp, -mavx2): limb-transposed
 * radix-64 CIOS with 64x64 widening multiplies and the 128-bit
 * accumulator split across (lo, carry) lane vectors. Also serves as
 * the non-IFMA fallback on AVX-512F hosts — without vpmadd52 the
 * carry-chain code gains nothing from 512-bit lanes.
 */
const WideKernelTable &wideAvx2Kernels();
/**
 * 8-way AVX-512 IFMA table (WideKernelsIfma.cpp, -mavx512ifma): the
 * radix-52 vpmadd52 lane layout. Only reached after
 * __builtin_cpu_supports("avx512ifma").
 */
const WideKernelTable &wideIfmaKernels();
#endif

} // namespace bzk::ff::detail

#endif // BZK_FF_WIDEKERNELS_H_
