/**
 * @file
 * 8-way AVX-512F Goldilocks kernels. Compiled with -mavx512f in its
 * own translation unit; only reached after
 * __builtin_cpu_supports("avx512f") (see FieldBackend.cpp).
 *
 * Same operation-for-operation mirror of the scalar reference as the
 * AVX2 backend, but 512-bit lanes, native unsigned 64-bit compares
 * (k-mask registers) and masked add/sub instead of the sign-flip and
 * and-with-mask dance. The 64x64->128 product still decomposes into
 * 32x32->64 partials — vpmullq (AVX512DQ) only yields the low half.
 */

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "ff/GoldilocksKernels.h"

namespace bzk::ff::detail {
namespace {

// Inline helpers, not file-scope globals: a global __m512i
// initializer would execute AVX-512 instructions during static init
// on hosts that must never reach this TU's code.
inline __m512i
kModulusV()
{
    return _mm512_set1_epi64(static_cast<long long>(kGlModulus));
}

inline __m512i
kLow32V()
{
    return _mm512_set1_epi64(0xffffffffLL);
}

/** (a + b) mod p, canonical in, canonical out. */
inline __m512i
addModV(__m512i a, __m512i b)
{
    __m512i sum = _mm512_add_epi64(a, b);
    // Correct when the 64-bit add wrapped (sum < a) or sum >= p.
    __mmask8 wrap = _mm512_cmplt_epu64_mask(sum, a);
    __mmask8 ge = _mm512_cmpge_epu64_mask(sum, kModulusV());
    return _mm512_mask_sub_epi64(sum, wrap | ge, sum, kModulusV());
}

/** (a - b) mod p, canonical in, canonical out. */
inline __m512i
subModV(__m512i a, __m512i b)
{
    __m512i diff = _mm512_sub_epi64(a, b);
    __mmask8 borrow = _mm512_cmplt_epu64_mask(a, b);
    return _mm512_mask_add_epi64(diff, borrow, diff, kModulusV());
}

/** Full 64x64 -> 128 product per lane, as (hi, lo) vectors. */
inline void
mul64Wide(__m512i a, __m512i b, __m512i &hi, __m512i &lo)
{
    __m512i a_hi = _mm512_srli_epi64(a, 32);
    __m512i b_hi = _mm512_srli_epi64(b, 32);
    __m512i ll = _mm512_mul_epu32(a, b);
    __m512i lh = _mm512_mul_epu32(a, b_hi);
    __m512i hl = _mm512_mul_epu32(a_hi, b);
    __m512i hh = _mm512_mul_epu32(a_hi, b_hi);

    // cross = lh + hl + (ll >> 32); only the second add can wrap.
    __m512i t = _mm512_add_epi64(lh, _mm512_srli_epi64(ll, 32));
    __m512i cross = _mm512_add_epi64(t, hl);
    __mmask8 carry = _mm512_cmplt_epu64_mask(cross, t);

    lo = _mm512_or_si512(_mm512_slli_epi64(cross, 32),
                         _mm512_and_si512(ll, kLow32V()));
    hi = _mm512_add_epi64(hh, _mm512_srli_epi64(cross, 32));
    hi = _mm512_mask_add_epi64(hi, carry, hi,
                               _mm512_set1_epi64(1LL << 32));
}

/** Goldilocks reduction of (hi, lo); mirrors scalar glReduce128. */
inline __m512i
reduce128V(__m512i hi, __m512i lo)
{
    __m512i hi_hi = _mm512_srli_epi64(hi, 32);
    __m512i hi_lo = _mm512_and_si512(hi, kLow32V());

    // t0 = lo - hi_hi, borrowing 2^64 ≡ 2^32 - 1 (mod p).
    __m512i t0 = _mm512_sub_epi64(lo, hi_hi);
    __mmask8 borrow = _mm512_cmplt_epu64_mask(lo, hi_hi);
    t0 = _mm512_mask_sub_epi64(t0, borrow, t0, kLow32V());

    // t1 = hi_lo * (2^32 - 1) = (hi_lo << 32) - hi_lo.
    __m512i t1 = _mm512_sub_epi64(_mm512_slli_epi64(hi_lo, 32), hi_lo);

    // t2 = t0 + t1, carrying 2^64 ≡ 2^32 - 1 (mod p) back in.
    __m512i t2 = _mm512_add_epi64(t0, t1);
    __mmask8 carry = _mm512_cmplt_epu64_mask(t2, t1);
    t2 = _mm512_mask_add_epi64(t2, carry, t2, kLow32V());

    __mmask8 ge = _mm512_cmpge_epu64_mask(t2, kModulusV());
    return _mm512_mask_sub_epi64(t2, ge, t2, kModulusV());
}

/** (a * b) mod p, canonical in, canonical out. */
inline __m512i
mulModV(__m512i a, __m512i b)
{
    __m512i hi, lo;
    mul64Wide(a, b, hi, lo);
    return reduce128V(hi, lo);
}

inline __m512i
loadV(const uint64_t *p)
{
    return _mm512_loadu_si512(p);
}

inline void
storeV(uint64_t *p, __m512i v)
{
    _mm512_storeu_si512(p, v);
}

void
avx512Add(const uint64_t *a, const uint64_t *b, uint64_t *out, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        storeV(out + i, addModV(loadV(a + i), loadV(b + i)));
    for (; i < n; ++i)
        out[i] = glAdd(a[i], b[i]);
}

void
avx512Sub(const uint64_t *a, const uint64_t *b, uint64_t *out, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        storeV(out + i, subModV(loadV(a + i), loadV(b + i)));
    for (; i < n; ++i)
        out[i] = glSub(a[i], b[i]);
}

void
avx512Mul(const uint64_t *a, const uint64_t *b, uint64_t *out, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        storeV(out + i, mulModV(loadV(a + i), loadV(b + i)));
    for (; i < n; ++i)
        out[i] = glMul(a[i], b[i]);
}

void
avx512Fold(uint64_t *lo, const uint64_t *hi, uint64_t r, size_t n)
{
    __m512i r_v = _mm512_set1_epi64(static_cast<long long>(r));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i lo_v = loadV(lo + i);
        __m512i d = subModV(loadV(hi + i), lo_v);
        storeV(lo + i, addModV(lo_v, mulModV(r_v, d)));
    }
    for (; i < n; ++i)
        lo[i] = glAdd(lo[i], glMul(r, glSub(hi[i], lo[i])));
}

void
avx512Axpy(uint64_t *acc, const uint64_t *x, uint64_t s, size_t n)
{
    __m512i s_v = _mm512_set1_epi64(static_cast<long long>(s));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i sum =
            addModV(loadV(acc + i), mulModV(s_v, loadV(x + i)));
        storeV(acc + i, sum);
    }
    for (; i < n; ++i)
        acc[i] = glAdd(acc[i], glMul(s, x[i]));
}

uint64_t
avx512Sum(const uint64_t *a, size_t n)
{
    __m512i acc_v = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc_v = addModV(acc_v, loadV(a + i));
    alignas(64) uint64_t lanes[8];
    _mm512_store_si512(lanes, acc_v);
    uint64_t acc = 0;
    for (uint64_t lane : lanes)
        acc = glAdd(acc, lane);
    for (; i < n; ++i)
        acc = glAdd(acc, a[i]);
    return acc;
}

uint64_t
avx512Dot(const uint64_t *a, const uint64_t *b, size_t n)
{
    __m512i acc_v = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc_v = addModV(acc_v, mulModV(loadV(a + i), loadV(b + i)));
    alignas(64) uint64_t lanes[8];
    _mm512_store_si512(lanes, acc_v);
    uint64_t acc = 0;
    for (uint64_t lane : lanes)
        acc = glAdd(acc, lane);
    for (; i < n; ++i)
        acc = glAdd(acc, glMul(a[i], b[i]));
    return acc;
}

} // namespace

const GlKernelTable &
glAvx512Kernels()
{
    static const GlKernelTable table{avx512Add,  avx512Sub,  avx512Mul,
                                     avx512Fold, avx512Axpy, avx512Sum,
                                     avx512Dot};
    return table;
}

} // namespace bzk::ff::detail

#endif // __x86_64__
