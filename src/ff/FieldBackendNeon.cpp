/**
 * @file
 * 2-way NEON Goldilocks kernels for AArch64. NEON is baseline on
 * AArch64, so no per-file ISA flags or CPUID gating are needed — the
 * dispatcher still prefers it over scalar only via detectBackend().
 *
 * NEON has no 64x64->128 multiply either; products decompose into
 * vmull_u32 32x32->64 partials exactly like the AVX2 backend, and the
 * kernels mirror the scalar reference operation for operation so the
 * outputs stay bit-identical across backends.
 */

#if defined(__aarch64__)

#include <arm_neon.h>

#include "ff/GoldilocksKernels.h"

namespace bzk::ff::detail {
namespace {

inline uint64x2_t
kModulusV()
{
    return vdupq_n_u64(kGlModulus);
}

inline uint64x2_t
kLow32V()
{
    return vdupq_n_u64(0xffffffffULL);
}

/** (a + b) mod p, canonical in, canonical out. */
inline uint64x2_t
addModV(uint64x2_t a, uint64x2_t b)
{
    uint64x2_t sum = vaddq_u64(a, b);
    // Correct when the 64-bit add wrapped (sum < a) or sum >= p.
    uint64x2_t wrap = vcltq_u64(sum, a);
    uint64x2_t ge = vcgeq_u64(sum, kModulusV());
    uint64x2_t fix = vandq_u64(vorrq_u64(wrap, ge), kModulusV());
    return vsubq_u64(sum, fix);
}

/** (a - b) mod p, canonical in, canonical out. */
inline uint64x2_t
subModV(uint64x2_t a, uint64x2_t b)
{
    uint64x2_t diff = vsubq_u64(a, b);
    uint64x2_t borrow = vcltq_u64(a, b);
    return vaddq_u64(diff, vandq_u64(borrow, kModulusV()));
}

/** Full 64x64 -> 128 product per lane, as (hi, lo) vectors. */
inline void
mul64Wide(uint64x2_t a, uint64x2_t b, uint64x2_t &hi, uint64x2_t &lo)
{
    uint32x2_t a_lo = vmovn_u64(a);
    uint32x2_t b_lo = vmovn_u64(b);
    uint32x2_t a_hi = vshrn_n_u64(a, 32);
    uint32x2_t b_hi = vshrn_n_u64(b, 32);
    uint64x2_t ll = vmull_u32(a_lo, b_lo);
    uint64x2_t lh = vmull_u32(a_lo, b_hi);
    uint64x2_t hl = vmull_u32(a_hi, b_lo);
    uint64x2_t hh = vmull_u32(a_hi, b_hi);

    // cross = lh + hl + (ll >> 32); only the second add can wrap.
    uint64x2_t t = vaddq_u64(lh, vshrq_n_u64(ll, 32));
    uint64x2_t cross = vaddq_u64(t, hl);
    uint64x2_t carry = vshrq_n_u64(vcltq_u64(cross, t), 63);

    lo = vorrq_u64(vshlq_n_u64(cross, 32), vandq_u64(ll, kLow32V()));
    hi = vaddq_u64(hh, vaddq_u64(vshrq_n_u64(cross, 32),
                                 vshlq_n_u64(carry, 32)));
}

/** Goldilocks reduction of (hi, lo); mirrors scalar glReduce128. */
inline uint64x2_t
reduce128V(uint64x2_t hi, uint64x2_t lo)
{
    uint64x2_t hi_hi = vshrq_n_u64(hi, 32);
    uint64x2_t hi_lo = vandq_u64(hi, kLow32V());

    // t0 = lo - hi_hi, borrowing 2^64 ≡ 2^32 - 1 (mod p).
    uint64x2_t t0 = vsubq_u64(lo, hi_hi);
    uint64x2_t borrow = vcltq_u64(lo, hi_hi);
    t0 = vsubq_u64(t0, vandq_u64(borrow, kLow32V()));

    // t1 = hi_lo * (2^32 - 1) = (hi_lo << 32) - hi_lo.
    uint64x2_t t1 = vsubq_u64(vshlq_n_u64(hi_lo, 32), hi_lo);

    // t2 = t0 + t1, carrying 2^64 ≡ 2^32 - 1 (mod p) back in.
    uint64x2_t t2 = vaddq_u64(t0, t1);
    uint64x2_t carry = vcltq_u64(t2, t1);
    t2 = vaddq_u64(t2, vandq_u64(carry, kLow32V()));

    uint64x2_t ge = vcgeq_u64(t2, kModulusV());
    return vsubq_u64(t2, vandq_u64(ge, kModulusV()));
}

/** (a * b) mod p, canonical in, canonical out. */
inline uint64x2_t
mulModV(uint64x2_t a, uint64x2_t b)
{
    uint64x2_t hi, lo;
    mul64Wide(a, b, hi, lo);
    return reduce128V(hi, lo);
}

void
neonAdd(const uint64_t *a, const uint64_t *b, uint64_t *out, size_t n)
{
    size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(out + i, addModV(vld1q_u64(a + i), vld1q_u64(b + i)));
    for (; i < n; ++i)
        out[i] = glAdd(a[i], b[i]);
}

void
neonSub(const uint64_t *a, const uint64_t *b, uint64_t *out, size_t n)
{
    size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(out + i, subModV(vld1q_u64(a + i), vld1q_u64(b + i)));
    for (; i < n; ++i)
        out[i] = glSub(a[i], b[i]);
}

void
neonMul(const uint64_t *a, const uint64_t *b, uint64_t *out, size_t n)
{
    size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(out + i, mulModV(vld1q_u64(a + i), vld1q_u64(b + i)));
    for (; i < n; ++i)
        out[i] = glMul(a[i], b[i]);
}

void
neonFold(uint64_t *lo, const uint64_t *hi, uint64_t r, size_t n)
{
    uint64x2_t r_v = vdupq_n_u64(r);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        uint64x2_t lo_v = vld1q_u64(lo + i);
        uint64x2_t d = subModV(vld1q_u64(hi + i), lo_v);
        vst1q_u64(lo + i, addModV(lo_v, mulModV(r_v, d)));
    }
    for (; i < n; ++i)
        lo[i] = glAdd(lo[i], glMul(r, glSub(hi[i], lo[i])));
}

void
neonAxpy(uint64_t *acc, const uint64_t *x, uint64_t s, size_t n)
{
    uint64x2_t s_v = vdupq_n_u64(s);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        uint64x2_t sum =
            addModV(vld1q_u64(acc + i), mulModV(s_v, vld1q_u64(x + i)));
        vst1q_u64(acc + i, sum);
    }
    for (; i < n; ++i)
        acc[i] = glAdd(acc[i], glMul(s, x[i]));
}

uint64_t
neonSum(const uint64_t *a, size_t n)
{
    uint64x2_t acc_v = vdupq_n_u64(0);
    size_t i = 0;
    for (; i + 2 <= n; i += 2)
        acc_v = addModV(acc_v, vld1q_u64(a + i));
    uint64_t acc =
        glAdd(vgetq_lane_u64(acc_v, 0), vgetq_lane_u64(acc_v, 1));
    for (; i < n; ++i)
        acc = glAdd(acc, a[i]);
    return acc;
}

uint64_t
neonDot(const uint64_t *a, const uint64_t *b, size_t n)
{
    uint64x2_t acc_v = vdupq_n_u64(0);
    size_t i = 0;
    for (; i + 2 <= n; i += 2)
        acc_v = addModV(acc_v, mulModV(vld1q_u64(a + i), vld1q_u64(b + i)));
    uint64_t acc =
        glAdd(vgetq_lane_u64(acc_v, 0), vgetq_lane_u64(acc_v, 1));
    for (; i < n; ++i)
        acc = glAdd(acc, glMul(a[i], b[i]));
    return acc;
}

} // namespace

const GlKernelTable &
glNeonKernels()
{
    static const GlKernelTable table{neonAdd,  neonSub,  neonMul,
                                     neonFold, neonAxpy, neonSum,
                                     neonDot};
    return table;
}

} // namespace bzk::ff::detail

#endif // __aarch64__
