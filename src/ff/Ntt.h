#ifndef BZK_FF_NTT_H_
#define BZK_FF_NTT_H_

/**
 * @file
 * In-place radix-2 number-theoretic transform.
 *
 * This is a *baseline substrate*: the old-protocol provers (Libsnark /
 * Bellperson analogues in src/baseline) spend most of their time here and
 * in MSM; BatchZK's whole point is to avoid it.
 */

#include <cstddef>
#include <vector>

#include "util/Log.h"

namespace bzk {

/** Bit-reverse permutation of @p data (size must be a power of two). */
template <typename F>
void
bitReversePermute(std::vector<F> &data)
{
    size_t n = data.size();
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }
}

/**
 * Forward NTT: evaluates the polynomial with coefficients @p data at all
 * 2^k-th roots of unity, in place. Size must be a power of two and
 * within the field's 2-adicity.
 */
template <typename F>
void
ntt(std::vector<F> &data)
{
    size_t n = data.size();
    if (n <= 1)
        return;
    if (n & (n - 1))
        panic("ntt: size %zu is not a power of two", n);

    unsigned log_n = 0;
    while ((size_t{1} << log_n) < n)
        ++log_n;
    if (log_n > F::kTwoAdicity)
        panic("ntt: size 2^%u exceeds field 2-adicity %u", log_n,
              F::kTwoAdicity);

    bitReversePermute(data);
    for (unsigned s = 1; s <= log_n; ++s) {
        size_t m = size_t{1} << s;
        F w_m = F::rootOfUnity(s);
        for (size_t k = 0; k < n; k += m) {
            F w = F::one();
            for (size_t j = 0; j < m / 2; ++j) {
                F t = w * data[k + j + m / 2];
                F u = data[k + j];
                data[k + j] = u + t;
                data[k + j + m / 2] = u - t;
                w *= w_m;
            }
        }
    }
}

/** Inverse NTT: interpolates evaluations back to coefficients, in place. */
template <typename F>
void
intt(std::vector<F> &data)
{
    size_t n = data.size();
    if (n <= 1)
        return;
    ntt(data);
    // Reversing all but the first entry turns the forward transform into
    // the inverse up to the 1/n factor.
    for (size_t i = 1, j = n - 1; i < j; ++i, --j)
        std::swap(data[i], data[j]);
    F n_inv = F::fromUint(n).inverse();
    for (auto &x : data)
        x *= n_inv;
}

} // namespace bzk

#endif // BZK_FF_NTT_H_
