/**
 * @file
 * 4-way AVX2 Goldilocks kernels. Compiled with -mavx2 in its own
 * translation unit; only reached after __builtin_cpu_supports("avx2")
 * (see FieldBackend.cpp), so no illegal instruction can leak onto
 * pre-AVX2 hosts.
 *
 * Every vector op mirrors the scalar reference in GoldilocksKernels.h
 * operation for operation (same wraps, same conditional corrections),
 * so outputs are bit-identical to the scalar backend — the property
 * the dispatch layer promises. AVX2 has no unsigned 64-bit compare or
 * 64x64->128 multiply, so compares go through the sign-flip trick and
 * products through four 32x32->64 partial products.
 */

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "ff/GoldilocksKernels.h"

namespace bzk::ff::detail {
namespace {

// Broadcast constants come from inline helpers, not file-scope
// globals: a global __m256i initializer would execute AVX2
// instructions during static init in every process, including ones on
// pre-AVX2 hosts that must never reach this TU's code.
inline __m256i
kModulusV()
{
    return _mm256_set1_epi64x(static_cast<long long>(kGlModulus));
}

inline __m256i
kModulusM1V()
{
    return _mm256_set1_epi64x(static_cast<long long>(kGlModulus - 1));
}

inline __m256i
kSignV()
{
    return _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
}

inline __m256i
kLow32V()
{
    return _mm256_set1_epi64x(0xffffffffLL);
}

/** Lane-wise a > b as all-ones masks, unsigned (sign-flip compare). */
inline __m256i
cmpgtU64(__m256i a, __m256i b)
{
    return _mm256_cmpgt_epi64(_mm256_xor_si256(a, kSignV()),
                              _mm256_xor_si256(b, kSignV()));
}

/** (a + b) mod p, canonical in, canonical out. */
inline __m256i
addModV(__m256i a, __m256i b)
{
    __m256i sum = _mm256_add_epi64(a, b);
    // Correct when the 64-bit add wrapped (sum < a) or sum >= p.
    __m256i wrap = cmpgtU64(a, sum);
    __m256i ge = cmpgtU64(sum, kModulusM1V());
    __m256i fix = _mm256_and_si256(_mm256_or_si256(wrap, ge), kModulusV());
    return _mm256_sub_epi64(sum, fix);
}

/** (a - b) mod p, canonical in, canonical out. */
inline __m256i
subModV(__m256i a, __m256i b)
{
    __m256i diff = _mm256_sub_epi64(a, b);
    __m256i borrow = cmpgtU64(b, a);
    return _mm256_add_epi64(diff,
                            _mm256_and_si256(borrow, kModulusV()));
}

/** Full 64x64 -> 128 product per lane, as (hi, lo) vectors. */
inline void
mul64Wide(__m256i a, __m256i b, __m256i &hi, __m256i &lo)
{
    __m256i a_hi = _mm256_srli_epi64(a, 32);
    __m256i b_hi = _mm256_srli_epi64(b, 32);
    __m256i ll = _mm256_mul_epu32(a, b);       // aL * bL
    __m256i lh = _mm256_mul_epu32(a, b_hi);    // aL * bH
    __m256i hl = _mm256_mul_epu32(a_hi, b);    // aH * bL
    __m256i hh = _mm256_mul_epu32(a_hi, b_hi); // aH * bH

    // cross = lh + hl + (ll >> 32); lh + (ll >> 32) cannot wrap
    // ((2^32-1)^2 + (2^32-1) < 2^64), the second add can.
    __m256i t = _mm256_add_epi64(lh, _mm256_srli_epi64(ll, 32));
    __m256i cross = _mm256_add_epi64(t, hl);
    __m256i carry = _mm256_srli_epi64(cmpgtU64(t, cross), 63);

    lo = _mm256_or_si256(_mm256_slli_epi64(cross, 32),
                         _mm256_and_si256(ll, kLow32V()));
    hi = _mm256_add_epi64(
        hh, _mm256_add_epi64(_mm256_srli_epi64(cross, 32),
                             _mm256_slli_epi64(carry, 32)));
}

/** Goldilocks reduction of (hi, lo); mirrors scalar glReduce128. */
inline __m256i
reduce128V(__m256i hi, __m256i lo)
{
    __m256i hi_hi = _mm256_srli_epi64(hi, 32);
    __m256i hi_lo = _mm256_and_si256(hi, kLow32V());

    // t0 = lo - hi_hi, borrowing 2^64 ≡ 2^32 - 1 (mod p).
    __m256i t0 = _mm256_sub_epi64(lo, hi_hi);
    __m256i borrow = cmpgtU64(hi_hi, lo);
    t0 = _mm256_sub_epi64(t0, _mm256_and_si256(borrow, kLow32V()));

    // t1 = hi_lo * (2^32 - 1) = (hi_lo << 32) - hi_lo.
    __m256i t1 = _mm256_sub_epi64(_mm256_slli_epi64(hi_lo, 32), hi_lo);

    // t2 = t0 + t1, carrying 2^64 ≡ 2^32 - 1 (mod p) back in.
    __m256i t2 = _mm256_add_epi64(t0, t1);
    __m256i carry = cmpgtU64(t1, t2);
    t2 = _mm256_add_epi64(t2, _mm256_and_si256(carry, kLow32V()));

    __m256i ge = cmpgtU64(t2, kModulusM1V());
    return _mm256_sub_epi64(t2, _mm256_and_si256(ge, kModulusV()));
}

/** (a * b) mod p, canonical in, canonical out. */
inline __m256i
mulModV(__m256i a, __m256i b)
{
    __m256i hi, lo;
    mul64Wide(a, b, hi, lo);
    return reduce128V(hi, lo);
}

inline __m256i
loadV(const uint64_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
storeV(uint64_t *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

void
avx2Add(const uint64_t *a, const uint64_t *b, uint64_t *out, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        storeV(out + i, addModV(loadV(a + i), loadV(b + i)));
    for (; i < n; ++i)
        out[i] = glAdd(a[i], b[i]);
}

void
avx2Sub(const uint64_t *a, const uint64_t *b, uint64_t *out, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        storeV(out + i, subModV(loadV(a + i), loadV(b + i)));
    for (; i < n; ++i)
        out[i] = glSub(a[i], b[i]);
}

void
avx2Mul(const uint64_t *a, const uint64_t *b, uint64_t *out, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        storeV(out + i, mulModV(loadV(a + i), loadV(b + i)));
    for (; i < n; ++i)
        out[i] = glMul(a[i], b[i]);
}

void
avx2Fold(uint64_t *lo, const uint64_t *hi, uint64_t r, size_t n)
{
    __m256i r_v = _mm256_set1_epi64x(static_cast<long long>(r));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i lo_v = loadV(lo + i);
        __m256i d = subModV(loadV(hi + i), lo_v);
        storeV(lo + i, addModV(lo_v, mulModV(r_v, d)));
    }
    for (; i < n; ++i)
        lo[i] = glAdd(lo[i], glMul(r, glSub(hi[i], lo[i])));
}

void
avx2Axpy(uint64_t *acc, const uint64_t *x, uint64_t s, size_t n)
{
    __m256i s_v = _mm256_set1_epi64x(static_cast<long long>(s));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i sum =
            addModV(loadV(acc + i), mulModV(s_v, loadV(x + i)));
        storeV(acc + i, sum);
    }
    for (; i < n; ++i)
        acc[i] = glAdd(acc[i], glMul(s, x[i]));
}

uint64_t
avx2Sum(const uint64_t *a, size_t n)
{
    __m256i acc_v = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        acc_v = addModV(acc_v, loadV(a + i));
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc_v);
    uint64_t acc = glAdd(glAdd(lanes[0], lanes[1]),
                         glAdd(lanes[2], lanes[3]));
    for (; i < n; ++i)
        acc = glAdd(acc, a[i]);
    return acc;
}

uint64_t
avx2Dot(const uint64_t *a, const uint64_t *b, size_t n)
{
    __m256i acc_v = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        acc_v = addModV(acc_v, mulModV(loadV(a + i), loadV(b + i)));
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc_v);
    uint64_t acc = glAdd(glAdd(lanes[0], lanes[1]),
                         glAdd(lanes[2], lanes[3]));
    for (; i < n; ++i)
        acc = glAdd(acc, glMul(a[i], b[i]));
    return acc;
}

} // namespace

const GlKernelTable &
glAvx2Kernels()
{
    static const GlKernelTable table{avx2Add,  avx2Sub,  avx2Mul,
                                     avx2Fold, avx2Axpy, avx2Sum,
                                     avx2Dot};
    return table;
}

} // namespace bzk::ff::detail

#endif // __x86_64__
