#ifndef BZK_FF_GOLDILOCKS_H_
#define BZK_FF_GOLDILOCKS_H_

/**
 * @file
 * The 64-bit Goldilocks prime field, p = 2^64 - 2^32 + 1.
 *
 * Provides a fast field with the same static interface as Fp<> so the
 * templated modules (sum-check, encoder, commitment) can be instantiated
 * for both 256-bit (paper setting) and 64-bit fields. Tests use it to
 * run larger instances quickly; the 2-adicity of 32 also supports NTTs.
 */

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>

#include "util/Log.h"
#include "util/Rng.h"

namespace bzk {

/** Goldilocks prime field element (canonical form, value < p). */
class Goldilocks
{
  public:
    static constexpr uint64_t kModulus = 0xffffffff00000001ULL;
    static constexpr unsigned kTwoAdicity = 32;
    static constexpr size_t kNumBytes = 8;
    static constexpr size_t kBits = 64;
    static constexpr uint64_t kGenerator = 7;

    constexpr Goldilocks() : v_(0) {}

    /** Additive identity. */
    static constexpr Goldilocks zero() { return Goldilocks{}; }

    /** Multiplicative identity. */
    static constexpr Goldilocks
    one()
    {
        return fromUint(1);
    }

    /** Embed an integer, reducing mod p. */
    static constexpr Goldilocks
    fromUint(uint64_t v)
    {
        Goldilocks r;
        r.v_ = v >= kModulus ? v - kModulus : v;
        return r;
    }

    /** Canonical value in [0, p). */
    constexpr uint64_t toUint() const { return v_; }

    /**
     * Adopt an already-canonical limb without reduction. Trusted
     * constructor for the packed kernels (their outputs are canonical
     * by construction); a non-canonical argument is a kernel bug and
     * is caught by the toBytes() canonicality check.
     */
    static constexpr Goldilocks
    fromRaw(uint64_t v)
    {
        Goldilocks r;
        r.v_ = v;
        return r;
    }

    /** Serialize as 8 little-endian bytes. */
    void
    toBytes(uint8_t *out) const
    {
        // Serialized bytes feed Merkle hashing; a non-canonical limb
        // would make equal field elements hash differently, so it can
        // never be allowed to escape (only fromRaw can produce one).
        if (v_ >= kModulus)
            panic("Goldilocks::toBytes: non-canonical limb %016llx",
                  static_cast<unsigned long long>(v_));
        std::memcpy(out, &v_, 8);
    }

    /** Parse 8 little-endian bytes, reducing mod p. */
    static Goldilocks
    fromBytes(const uint8_t *in)
    {
        uint64_t v;
        std::memcpy(&v, in, 8);
        return fromUint(v);
    }

    /**
     * Derive an element from arbitrary transcript bytes (up to 16 are
     * consumed, little-endian) via a full 128-bit reduction. Earlier
     * revisions truncated to the low 8 bytes and reduced with `v % p`,
     * which both discarded half of a 32-byte challenge digest and kept
     * the ~2^-32 modulo bias of a single-limb reduction; the two-limb
     * path matches how Fp<> consumes wide digests. For len <= 8 the
     * mapping is unchanged.
     */
    static Goldilocks
    fromBytesReduce(const uint8_t *in, size_t len)
    {
        uint8_t buf[16] = {0};
        std::memcpy(buf, in, len < 16 ? len : 16);
        uint64_t lo, hi;
        std::memcpy(&lo, buf, 8);
        std::memcpy(&hi, buf + 8, 8);
        Goldilocks r;
        r.v_ = reduce128((static_cast<__uint128_t>(hi) << 64) | lo);
        return r;
    }

    /** Uniform random element for workload generation. */
    static Goldilocks
    random(Rng &rng)
    {
        // Rejection sampling keeps the distribution exactly uniform.
        uint64_t v;
        do {
            v = rng.next();
        } while (v >= kModulus);
        Goldilocks r;
        r.v_ = v;
        return r;
    }

    constexpr bool
    operator==(const Goldilocks &o) const
    {
        return v_ == o.v_;
    }

    constexpr bool
    operator!=(const Goldilocks &o) const
    {
        return v_ != o.v_;
    }

    /** True iff this is the additive identity. */
    constexpr bool isZero() const { return v_ == 0; }

    constexpr Goldilocks
    operator+(const Goldilocks &o) const
    {
        uint64_t sum = v_ + o.v_;
        // Overflow past 2^64 means the true sum exceeds p by at least
        // 2^64 - p; both cases fold back with one subtraction.
        if (sum < v_ || sum >= kModulus)
            sum -= kModulus;
        Goldilocks r;
        r.v_ = sum;
        return r;
    }

    constexpr Goldilocks
    operator-(const Goldilocks &o) const
    {
        uint64_t diff = v_ - o.v_;
        if (v_ < o.v_)
            diff += kModulus;
        Goldilocks r;
        r.v_ = diff;
        return r;
    }

    constexpr Goldilocks
    operator-() const
    {
        Goldilocks r;
        r.v_ = v_ == 0 ? 0 : kModulus - v_;
        return r;
    }

    constexpr Goldilocks
    operator*(const Goldilocks &o) const
    {
        Goldilocks r;
        r.v_ = reduce128(static_cast<__uint128_t>(v_) * o.v_);
        return r;
    }

    constexpr Goldilocks &
    operator+=(const Goldilocks &o)
    {
        return *this = *this + o;
    }

    constexpr Goldilocks &
    operator-=(const Goldilocks &o)
    {
        return *this = *this - o;
    }

    constexpr Goldilocks &
    operator*=(const Goldilocks &o)
    {
        return *this = *this * o;
    }

    /** this * this */
    constexpr Goldilocks square() const { return *this * *this; }

    /** 2 * this */
    constexpr Goldilocks dbl() const { return *this + *this; }

    /** this^e (square-and-multiply). */
    constexpr Goldilocks
    pow(uint64_t e) const
    {
        Goldilocks acc = one();
        Goldilocks base = *this;
        while (e != 0) {
            if (e & 1)
                acc *= base;
            base = base.square();
            e >>= 1;
        }
        return acc;
    }

    /**
     * Multiplicative inverse via Fermat. Zero has no inverse; the
     * Fermat power maps it to zero, which silently poisons downstream
     * arithmetic, so debug builds assert. Callers that may legitimately
     * see zeros use ff::batchInverse, whose skip-zero semantics are
     * explicit.
     */
    constexpr Goldilocks
    inverse() const
    {
        assert(!isZero() && "Goldilocks::inverse of zero");
        return pow(kModulus - 2);
    }

    /** Primitive 2^k-th root of unity, k <= 32. */
    static Goldilocks
    rootOfUnity(unsigned k)
    {
        uint64_t e = (kModulus - 1) >> k;
        return fromUint(kGenerator).pow(e);
    }

    /** Debug hex string of the canonical value. */
    std::string
    toHexString() const
    {
        char buf[17];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(v_));
        return buf;
    }

  private:
    /** Reduce a 128-bit product using 2^64 = 2^32 - 1 (mod p). */
    static constexpr uint64_t
    reduce128(__uint128_t x)
    {
        uint64_t lo = static_cast<uint64_t>(x);
        uint64_t hi = static_cast<uint64_t>(x >> 64);
        uint64_t hi_hi = hi >> 32;
        uint64_t hi_lo = hi & 0xffffffffULL;

        uint64_t t0 = lo - hi_hi;
        if (lo < hi_hi)
            t0 -= 0xffffffffULL; // borrow of 2^64 ≡ 2^32 - 1 (mod p)
        uint64_t t1 = hi_lo * 0xffffffffULL;
        uint64_t t2 = t0 + t1;
        if (t2 < t1)
            t2 += 0xffffffffULL; // carry of 2^64 ≡ 2^32 - 1 (mod p)
        if (t2 >= kModulus)
            t2 -= kModulus;
        return t2;
    }

    uint64_t v_;
};

} // namespace bzk

#endif // BZK_FF_GOLDILOCKS_H_
