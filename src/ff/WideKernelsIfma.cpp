/**
 * @file
 * 8-way AVX-512 IFMA wide-field kernels (BN254 Fr/Fq class moduli).
 * Compiled with -mavx512ifma in its own translation unit; only
 * reached after __builtin_cpu_supports("avx512ifma") (see
 * FieldBackend.cpp), so no illegal instruction can leak onto
 * non-IFMA hosts.
 *
 * Lane layout: elements are stored AoS (4 little-endian 64-bit limbs
 * each, Montgomery form with R = 2^256); each block of 8 elements is
 * transposed in-register to a limb-major (struct-of-arrays) form, so
 * one __m512i holds the same limb of 8 elements. Montgomery
 * multiplication then runs in a redundant radix-2^52 representation
 * (five 52-bit limbs per element) where vpmadd52luq/vpmadd52huq do
 * 8x 52x52->104-bit multiply-accumulates per instruction.
 *
 * Domain fix-up: a 5-round radix-52 Montgomery reduction divides by
 * 2^260, not the 2^256 the scalar CIOS uses. Instead of leaving the
 * packed domain, one operand is pre-shifted left by 4 bits during the
 * 64->52-bit re-slicing, so the kernel computes
 * (a*2^4) * b * 2^-260 = a * b * 2^-256 mod p — the exact scalar
 * Montgomery product. The result is fully canonicalized (< p), and
 * since a*b*2^-256 mod p is a unique value, outputs are bit-identical
 * to the scalar reference despite the different radix.
 *
 * Bounds: p < 2^255 (static-asserted via the 255-bit requirement in
 * Fp<>), so a*16 < 2^259 < 2^260 fits five 52-bit limbs and the
 * Montgomery result is < 2^252 + p < 2p — one conditional subtract
 * canonicalizes. Accumulator slots absorb at most ~25 products of
 * 52-bit values (< 2^57) before any carry is propagated, far inside
 * the 64-bit lane.
 */

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "ff/WideKernels.h"

namespace bzk::ff::detail {
namespace {

using V = __m512i;

// Broadcast constants come from per-call setup, not file-scope
// globals: a global __m512i initializer would execute AVX-512
// instructions during static init on hosts that must never reach this
// TU's code.

/** Per-call vector view of one field's constants. */
struct ConstsV
{
    V p64[4];  // modulus, radix-64 limbs
    V p52[5];  // modulus, radix-52 limbs
    V inv52;   // -p^{-1} mod 2^52
    V mask52;
    V zero;
    V one;
};

inline ConstsV
makeConstsV(const WideFieldConstants &c)
{
    ConstsV k;
    for (int j = 0; j < 4; ++j)
        k.p64[j] = _mm512_set1_epi64(
            static_cast<long long>(c.modulus[j]));
    for (int j = 0; j < 5; ++j)
        k.p52[j] = _mm512_set1_epi64(
            static_cast<long long>(c.modulus52[j]));
    k.inv52 = _mm512_set1_epi64(static_cast<long long>(c.inv52));
    k.mask52 = _mm512_set1_epi64(static_cast<long long>(kMask52));
    k.zero = _mm512_setzero_si512();
    k.one = _mm512_set1_epi64(1);
    return k;
}

/** AoS block of 8 elements (32 limbs) -> limb-major L[0..3]. */
inline void
loadSoA(const uint64_t *p, V L[4])
{
    V a = _mm512_loadu_si512(p);      // e0, e1
    V b = _mm512_loadu_si512(p + 8);  // e2, e3
    V c = _mm512_loadu_si512(p + 16); // e4, e5
    V d = _mm512_loadu_si512(p + 24); // e6, e7
    const V idx01 = _mm512_setr_epi64(0, 4, 8, 12, 1, 5, 9, 13);
    const V idx23 = _mm512_setr_epi64(2, 6, 10, 14, 3, 7, 11, 15);
    V ab01 = _mm512_permutex2var_epi64(a, idx01, b);
    V cd01 = _mm512_permutex2var_epi64(c, idx01, d);
    V ab23 = _mm512_permutex2var_epi64(a, idx23, b);
    V cd23 = _mm512_permutex2var_epi64(c, idx23, d);
    const V lo_half = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
    const V hi_half = _mm512_setr_epi64(4, 5, 6, 7, 12, 13, 14, 15);
    L[0] = _mm512_permutex2var_epi64(ab01, lo_half, cd01);
    L[1] = _mm512_permutex2var_epi64(ab01, hi_half, cd01);
    L[2] = _mm512_permutex2var_epi64(ab23, lo_half, cd23);
    L[3] = _mm512_permutex2var_epi64(ab23, hi_half, cd23);
}

/** Limb-major L[0..3] -> AoS block of 8 elements at @p p. */
inline void
storeAoS(uint64_t *p, const V L[4])
{
    const V pair_lo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
    const V pair_hi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
    V l01_lo = _mm512_permutex2var_epi64(L[0], pair_lo, L[1]);
    V l01_hi = _mm512_permutex2var_epi64(L[0], pair_hi, L[1]);
    V l23_lo = _mm512_permutex2var_epi64(L[2], pair_lo, L[3]);
    V l23_hi = _mm512_permutex2var_epi64(L[2], pair_hi, L[3]);
    const V quad_lo = _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
    const V quad_hi = _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
    _mm512_storeu_si512(p,
                        _mm512_permutex2var_epi64(l01_lo, quad_lo,
                                                  l23_lo));
    _mm512_storeu_si512(p + 8,
                        _mm512_permutex2var_epi64(l01_lo, quad_hi,
                                                  l23_lo));
    _mm512_storeu_si512(p + 16,
                        _mm512_permutex2var_epi64(l01_hi, quad_lo,
                                                  l23_hi));
    _mm512_storeu_si512(p + 24,
                        _mm512_permutex2var_epi64(l01_hi, quad_hi,
                                                  l23_hi));
}

/**
 * Re-slice radix-64 limbs into radix-52, multiplying by 2^Shift
 * (Shift = 0, or 4 for the Montgomery-domain fix-up operand).
 * Requires the value < 2^(256-Shift) + headroom; canonical inputs are
 * < p < 2^255 so both variants fit five 52-bit limbs.
 */
template <int Shift>
inline void
to52(const ConstsV &k, const V L[4], V t[5])
{
    static_assert(Shift == 0 || Shift == 4, "supported pre-shifts");
    if constexpr (Shift == 0) {
        t[0] = _mm512_and_si512(L[0], k.mask52);
        t[1] = _mm512_and_si512(
            _mm512_or_si512(_mm512_srli_epi64(L[0], 52),
                            _mm512_slli_epi64(L[1], 12)),
            k.mask52);
        t[2] = _mm512_and_si512(
            _mm512_or_si512(_mm512_srli_epi64(L[1], 40),
                            _mm512_slli_epi64(L[2], 24)),
            k.mask52);
        t[3] = _mm512_and_si512(
            _mm512_or_si512(_mm512_srli_epi64(L[2], 28),
                            _mm512_slli_epi64(L[3], 36)),
            k.mask52);
        t[4] = _mm512_srli_epi64(L[3], 16);
    } else {
        t[0] = _mm512_and_si512(_mm512_slli_epi64(L[0], 4), k.mask52);
        t[1] = _mm512_and_si512(
            _mm512_or_si512(_mm512_srli_epi64(L[0], 48),
                            _mm512_slli_epi64(L[1], 16)),
            k.mask52);
        t[2] = _mm512_and_si512(
            _mm512_or_si512(_mm512_srli_epi64(L[1], 36),
                            _mm512_slli_epi64(L[2], 28)),
            k.mask52);
        t[3] = _mm512_and_si512(
            _mm512_or_si512(_mm512_srli_epi64(L[2], 24),
                            _mm512_slli_epi64(L[3], 40)),
            k.mask52);
        t[4] = _mm512_srli_epi64(L[3], 12);
    }
}

/** Canonical radix-52 limbs (< 2^52 each) back to radix-64. */
inline void
from52(const V t[5], V L[4])
{
    L[0] = _mm512_or_si512(t[0], _mm512_slli_epi64(t[1], 52));
    L[1] = _mm512_or_si512(_mm512_srli_epi64(t[1], 12),
                           _mm512_slli_epi64(t[2], 40));
    L[2] = _mm512_or_si512(_mm512_srli_epi64(t[2], 24),
                           _mm512_slli_epi64(t[3], 28));
    L[3] = _mm512_or_si512(_mm512_srli_epi64(t[3], 36),
                           _mm512_slli_epi64(t[4], 16));
}

/**
 * 8-way radix-52 Montgomery product: t = x * y * 2^-260 mod p,
 * canonical. x may be up to 2^259 (a pre-shifted operand); y must be
 * canonical.
 */
inline void
montMul52(const ConstsV &k, const V x[5], const V y[5], V t[5])
{
    V a0 = k.zero, a1 = k.zero, a2 = k.zero, a3 = k.zero, a4 = k.zero,
      a5 = k.zero;
    for (int i = 0; i < 5; ++i) {
        V yi = y[i];
        a0 = _mm512_madd52lo_epu64(a0, x[0], yi);
        a1 = _mm512_madd52lo_epu64(a1, x[1], yi);
        a2 = _mm512_madd52lo_epu64(a2, x[2], yi);
        a3 = _mm512_madd52lo_epu64(a3, x[3], yi);
        a4 = _mm512_madd52lo_epu64(a4, x[4], yi);
        a1 = _mm512_madd52hi_epu64(a1, x[0], yi);
        a2 = _mm512_madd52hi_epu64(a2, x[1], yi);
        a3 = _mm512_madd52hi_epu64(a3, x[2], yi);
        a4 = _mm512_madd52hi_epu64(a4, x[3], yi);
        a5 = _mm512_madd52hi_epu64(a5, x[4], yi);

        // m = -t0 * p^{-1} mod 2^52; folding in m*p zeroes the low
        // 52 bits of slot 0, whose exact carry then shifts the whole
        // accumulator down one limb.
        V m = _mm512_madd52lo_epu64(k.zero, a0, k.inv52);
        a0 = _mm512_madd52lo_epu64(a0, m, k.p52[0]);
        V carry = _mm512_srli_epi64(a0, 52);
        a1 = _mm512_add_epi64(a1, carry);
        a1 = _mm512_madd52lo_epu64(a1, m, k.p52[1]);
        a2 = _mm512_madd52lo_epu64(a2, m, k.p52[2]);
        a3 = _mm512_madd52lo_epu64(a3, m, k.p52[3]);
        a4 = _mm512_madd52lo_epu64(a4, m, k.p52[4]);
        a1 = _mm512_madd52hi_epu64(a1, m, k.p52[0]);
        a2 = _mm512_madd52hi_epu64(a2, m, k.p52[1]);
        a3 = _mm512_madd52hi_epu64(a3, m, k.p52[2]);
        a4 = _mm512_madd52hi_epu64(a4, m, k.p52[3]);
        a5 = _mm512_madd52hi_epu64(a5, m, k.p52[4]);
        a0 = a1;
        a1 = a2;
        a2 = a3;
        a3 = a4;
        a4 = a5;
        a5 = k.zero;
    }
    V acc[5] = {a0, a1, a2, a3, a4};
    for (int j = 0; j < 4; ++j) {
        V c = _mm512_srli_epi64(acc[j], 52);
        acc[j] = _mm512_and_si512(acc[j], k.mask52);
        acc[j + 1] = _mm512_add_epi64(acc[j + 1], c);
    }
    // Conditional subtract p (value < 2p). Limbs are < 2^52, so the
    // sign bit of the 64-bit difference is the borrow.
    V d[5];
    V bw = k.zero;
    for (int j = 0; j < 5; ++j) {
        V s = _mm512_sub_epi64(_mm512_sub_epi64(acc[j], k.p52[j]), bw);
        bw = _mm512_srli_epi64(s, 63);
        d[j] = _mm512_and_si512(s, k.mask52);
    }
    __mmask8 ge = _mm512_cmpeq_epi64_mask(bw, k.zero);
    for (int j = 0; j < 5; ++j)
        t[j] = _mm512_mask_blend_epi64(ge, acc[j], d[j]);
}

/** (a + b) mod p on limb-major radix-64 blocks, canonical in/out. */
inline void
addModSoA(const ConstsV &k, const V a[4], const V b[4], V out[4])
{
    // Canonical inputs sum below 2^256: no carry out of limb 3.
    V sum[4];
    V carry = k.zero;
    for (int j = 0; j < 4; ++j) {
        V s1 = _mm512_add_epi64(a[j], b[j]);
        __mmask8 c1 = _mm512_cmplt_epu64_mask(s1, a[j]);
        V s2 = _mm512_add_epi64(s1, carry);
        __mmask8 c2 = _mm512_cmplt_epu64_mask(s2, carry);
        sum[j] = s2;
        carry = _mm512_maskz_set1_epi64(c1 | c2, 1);
    }
    V d[4];
    V bw = k.zero;
    for (int j = 0; j < 4; ++j) {
        V d1 = _mm512_sub_epi64(sum[j], k.p64[j]);
        __mmask8 b1 = _mm512_cmplt_epu64_mask(sum[j], k.p64[j]);
        V d2 = _mm512_sub_epi64(d1, bw);
        __mmask8 b2 = _mm512_cmplt_epu64_mask(d1, bw);
        d[j] = d2;
        bw = _mm512_maskz_set1_epi64(b1 | b2, 1);
    }
    __mmask8 ge = _mm512_cmpeq_epi64_mask(bw, k.zero);
    for (int j = 0; j < 4; ++j)
        out[j] = _mm512_mask_blend_epi64(ge, sum[j], d[j]);
}

/** (a - b) mod p on limb-major radix-64 blocks, canonical in/out. */
inline void
subModSoA(const ConstsV &k, const V a[4], const V b[4], V out[4])
{
    V d[4];
    V bw = k.zero;
    for (int j = 0; j < 4; ++j) {
        V d1 = _mm512_sub_epi64(a[j], b[j]);
        __mmask8 b1 = _mm512_cmplt_epu64_mask(a[j], b[j]);
        V d2 = _mm512_sub_epi64(d1, bw);
        __mmask8 b2 = _mm512_cmplt_epu64_mask(d1, bw);
        d[j] = d2;
        bw = _mm512_maskz_set1_epi64(b1 | b2, 1);
    }
    __mmask8 neg = _mm512_cmpneq_epi64_mask(bw, k.zero);
    V carry = k.zero;
    for (int j = 0; j < 4; ++j) {
        V s1 = _mm512_mask_add_epi64(d[j], neg, d[j], k.p64[j]);
        __mmask8 c1 = _mm512_cmplt_epu64_mask(s1, d[j]);
        V s2 = _mm512_add_epi64(s1, carry);
        __mmask8 c2 = _mm512_cmplt_epu64_mask(s2, carry);
        out[j] = s2;
        carry = _mm512_maskz_set1_epi64(c1 | c2, 1);
    }
}

/** Montgomery product of two limb-major blocks (a gets the 2^4). */
inline void
mulModSoA(const ConstsV &k, const V a[4], const V b[4], V out[4])
{
    V x[5], y[5], t[5];
    to52<4>(k, a, x);
    to52<0>(k, b, y);
    montMul52(k, x, y, t);
    from52(t, out);
}

/** Broadcast one element's limbs to a limb-major block. */
inline void
broadcastSoA(const uint64_t *one, V L[4])
{
    for (int j = 0; j < 4; ++j)
        L[j] = _mm512_set1_epi64(static_cast<long long>(one[j]));
}

/** Fold 8 lanes of a limb-major accumulator into one element. */
inline void
reduceLanes(const WideFieldConstants &c, const V acc[4],
            uint64_t *out_one)
{
    alignas(64) uint64_t lanes[4][8];
    for (int j = 0; j < 4; ++j)
        _mm512_store_si512(lanes[j], acc[j]);
    uint64_t total[4] = {0, 0, 0, 0};
    uint64_t elem[4];
    for (int lane = 0; lane < 8; ++lane) {
        for (int j = 0; j < 4; ++j)
            elem[j] = lanes[j][lane];
        wideAddRef(c, total, elem, total);
    }
    for (int j = 0; j < 4; ++j)
        out_one[j] = total[j];
}

void
ifmaAdd(const WideFieldConstants &c, const uint64_t *a,
        const uint64_t *b, uint64_t *out, size_t n)
{
    ConstsV k = makeConstsV(c);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        V av[4], bv[4], ov[4];
        loadSoA(a + 4 * i, av);
        loadSoA(b + 4 * i, bv);
        addModSoA(k, av, bv, ov);
        storeAoS(out + 4 * i, ov);
    }
    for (; i < n; ++i)
        wideAddRef(c, a + 4 * i, b + 4 * i, out + 4 * i);
}

void
ifmaSub(const WideFieldConstants &c, const uint64_t *a,
        const uint64_t *b, uint64_t *out, size_t n)
{
    ConstsV k = makeConstsV(c);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        V av[4], bv[4], ov[4];
        loadSoA(a + 4 * i, av);
        loadSoA(b + 4 * i, bv);
        subModSoA(k, av, bv, ov);
        storeAoS(out + 4 * i, ov);
    }
    for (; i < n; ++i)
        wideSubRef(c, a + 4 * i, b + 4 * i, out + 4 * i);
}

void
ifmaMul(const WideFieldConstants &c, const uint64_t *a,
        const uint64_t *b, uint64_t *out, size_t n)
{
    ConstsV k = makeConstsV(c);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        V av[4], bv[4], ov[4];
        loadSoA(a + 4 * i, av);
        loadSoA(b + 4 * i, bv);
        mulModSoA(k, av, bv, ov);
        storeAoS(out + 4 * i, ov);
    }
    for (; i < n; ++i)
        wideMulRef(c, a + 4 * i, b + 4 * i, out + 4 * i);
}

void
ifmaFold(const WideFieldConstants &c, uint64_t *lo, const uint64_t *hi,
         const uint64_t *r, size_t n)
{
    ConstsV k = makeConstsV(c);
    V rv[4], r52[5];
    broadcastSoA(r, rv);
    to52<4>(k, rv, r52);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        V lov[4], hiv[4], dv[4], y[5], t[5], pv[4];
        loadSoA(lo + 4 * i, lov);
        loadSoA(hi + 4 * i, hiv);
        subModSoA(k, hiv, lov, dv);
        to52<0>(k, dv, y);
        montMul52(k, r52, y, t);
        from52(t, pv);
        addModSoA(k, lov, pv, lov);
        storeAoS(lo + 4 * i, lov);
    }
    uint64_t d[4], t[4];
    for (; i < n; ++i) {
        wideSubRef(c, hi + 4 * i, lo + 4 * i, d);
        wideMulRef(c, r, d, t);
        wideAddRef(c, lo + 4 * i, t, lo + 4 * i);
    }
}

void
ifmaAxpy(const WideFieldConstants &c, uint64_t *acc, const uint64_t *x,
         const uint64_t *s, size_t n)
{
    ConstsV k = makeConstsV(c);
    V sv[4], s52[5];
    broadcastSoA(s, sv);
    to52<4>(k, sv, s52);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        V av[4], xv[4], y[5], t[5], pv[4];
        loadSoA(acc + 4 * i, av);
        loadSoA(x + 4 * i, xv);
        to52<0>(k, xv, y);
        montMul52(k, s52, y, t);
        from52(t, pv);
        addModSoA(k, av, pv, av);
        storeAoS(acc + 4 * i, av);
    }
    uint64_t t[4];
    for (; i < n; ++i) {
        wideMulRef(c, s, x + 4 * i, t);
        wideAddRef(c, acc + 4 * i, t, acc + 4 * i);
    }
}

void
ifmaSum(const WideFieldConstants &c, const uint64_t *a, size_t n,
        uint64_t *out_one)
{
    ConstsV k = makeConstsV(c);
    V acc[4] = {k.zero, k.zero, k.zero, k.zero};
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        V av[4];
        loadSoA(a + 4 * i, av);
        addModSoA(k, acc, av, acc);
    }
    reduceLanes(c, acc, out_one);
    for (; i < n; ++i)
        wideAddRef(c, out_one, a + 4 * i, out_one);
}

void
ifmaDot(const WideFieldConstants &c, const uint64_t *a,
        const uint64_t *b, size_t n, uint64_t *out_one)
{
    ConstsV k = makeConstsV(c);
    V acc[4] = {k.zero, k.zero, k.zero, k.zero};
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        V av[4], bv[4], pv[4];
        loadSoA(a + 4 * i, av);
        loadSoA(b + 4 * i, bv);
        mulModSoA(k, av, bv, pv);
        addModSoA(k, acc, pv, acc);
    }
    reduceLanes(c, acc, out_one);
    uint64_t t[4];
    for (; i < n; ++i) {
        wideMulRef(c, a + 4 * i, b + 4 * i, t);
        wideAddRef(c, out_one, t, out_one);
    }
}

} // namespace

const WideKernelTable &
wideIfmaKernels()
{
    static const WideKernelTable table{ifmaAdd,  ifmaSub,  ifmaMul,
                                       ifmaFold, ifmaAxpy, ifmaSum,
                                       ifmaDot};
    return table;
}

} // namespace bzk::ff::detail

#endif // __x86_64__
