#ifndef BZK_FF_FIELDPARAMS_H_
#define BZK_FF_FIELDPARAMS_H_

/**
 * @file
 * Compile-time parameter packs for the Montgomery prime fields used in
 * this library. All derived constants (R, R^2, -p^{-1} mod 2^64) are
 * computed constexpr from the modulus, so only the modulus itself is
 * hand-entered.
 */

#include "ff/U256.h"

namespace bzk {

/**
 * BN254 (alt_bn128) scalar field.
 * r = 21888242871839275222246405745257275088548364400416034343698204186575808495617
 * This is the field proofs and witnesses live in; its 2-adicity of 28
 * supports the radix-2 NTT used by the old-protocol baseline.
 */
struct Bn254FrParams
{
    static constexpr U256 kModulus{
        0x43e1f593f0000001ULL, 0x2833e84879b97091ULL,
        0xb85045b68181585dULL, 0x30644e72e131a029ULL};
    static constexpr uint64_t kGenerator = 5;
    static constexpr unsigned kTwoAdicity = 28;
    static constexpr const char *kName = "bn254-fr";
};

/**
 * BN254 (alt_bn128) base field.
 * q = 21888242871839275222246405745257275088696311157297823662689037894645226208583
 * Coordinates of G1 points for the MSM baseline live here.
 */
struct Bn254FqParams
{
    static constexpr U256 kModulus{
        0x3c208c16d87cfd47ULL, 0x97816a916871ca8dULL,
        0xb85045b68181585dULL, 0x30644e72e131a029ULL};
    static constexpr uint64_t kGenerator = 3;
    static constexpr unsigned kTwoAdicity = 1;
    static constexpr const char *kName = "bn254-fq";
};

} // namespace bzk

#endif // BZK_FF_FIELDPARAMS_H_
