#ifndef BZK_FF_GOLDILOCKSKERNELS_H_
#define BZK_FF_GOLDILOCKSKERNELS_H_

/**
 * @file
 * Internal contract between the FieldBackend dispatcher and the
 * per-ISA Goldilocks kernel translation units. Kernels operate on raw
 * canonical limbs (uint64_t < p); FieldBackend.cpp is the only caller
 * and handles the Goldilocks <-> limb view.
 *
 * Every kernel must compute bit-for-bit the same canonical values as
 * the scalar reference (glAdd/glSub/glMul below): the property sweep
 * in test_ff_kat holds each backend to that across lane-boundary
 * sizes, and the proof goldens depend on it.
 */

#include <cstddef>
#include <cstdint>

namespace bzk::ff::detail {

inline constexpr uint64_t kGlModulus = 0xffffffff00000001ULL;

/** Scalar reference: (a + b) mod p for canonical a, b. */
constexpr uint64_t
glAdd(uint64_t a, uint64_t b)
{
    uint64_t sum = a + b;
    if (sum < a || sum >= kGlModulus)
        sum -= kGlModulus;
    return sum;
}

/** Scalar reference: (a - b) mod p for canonical a, b. */
constexpr uint64_t
glSub(uint64_t a, uint64_t b)
{
    uint64_t diff = a - b;
    if (a < b)
        diff += kGlModulus;
    return diff;
}

/** Scalar reference: reduce a 128-bit value using 2^64 = 2^32 - 1. */
constexpr uint64_t
glReduce128(__uint128_t x)
{
    uint64_t lo = static_cast<uint64_t>(x);
    uint64_t hi = static_cast<uint64_t>(x >> 64);
    uint64_t hi_hi = hi >> 32;
    uint64_t hi_lo = hi & 0xffffffffULL;

    uint64_t t0 = lo - hi_hi;
    if (lo < hi_hi)
        t0 -= 0xffffffffULL;
    uint64_t t1 = hi_lo * 0xffffffffULL;
    uint64_t t2 = t0 + t1;
    if (t2 < t1)
        t2 += 0xffffffffULL;
    if (t2 >= kGlModulus)
        t2 -= kGlModulus;
    return t2;
}

/** Scalar reference: (a * b) mod p for canonical a, b. */
constexpr uint64_t
glMul(uint64_t a, uint64_t b)
{
    return glReduce128(static_cast<__uint128_t>(a) * b);
}

/**
 * One backend's packed kernels over contiguous canonical limbs. All
 * pointers are only required to be naturally (8-byte) aligned —
 * implementations use unaligned SIMD loads.
 */
struct GlKernelTable
{
    void (*add)(const uint64_t *a, const uint64_t *b, uint64_t *out,
                size_t n);
    void (*sub)(const uint64_t *a, const uint64_t *b, uint64_t *out,
                size_t n);
    void (*mul)(const uint64_t *a, const uint64_t *b, uint64_t *out,
                size_t n);
    /** lo[i] = lo[i] + r * (hi[i] - lo[i]); ranges must not overlap. */
    void (*fold)(uint64_t *lo, const uint64_t *hi, uint64_t r, size_t n);
    /** acc[i] += s * x[i]. */
    void (*axpy)(uint64_t *acc, const uint64_t *x, uint64_t s, size_t n);
    uint64_t (*sum)(const uint64_t *a, size_t n);
    uint64_t (*dot)(const uint64_t *a, const uint64_t *b, size_t n);
};

/** The portable table (glAdd/glSub/glMul loops). Always available. */
const GlKernelTable &glScalarKernels();

#if defined(__x86_64__) || defined(_M_X64)
/** 4-way AVX2 table (FieldBackendAvx2.cpp, compiled with -mavx2). */
const GlKernelTable &glAvx2Kernels();
/** 8-way AVX-512F table (FieldBackendAvx512.cpp, -mavx512f). */
const GlKernelTable &glAvx512Kernels();
#endif

#if defined(__aarch64__)
/** 2-way NEON table (FieldBackendNeon.cpp). */
const GlKernelTable &glNeonKernels();
#endif

} // namespace bzk::ff::detail

#endif // BZK_FF_GOLDILOCKSKERNELS_H_
