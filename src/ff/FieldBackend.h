#ifndef BZK_FF_FIELDBACKEND_H_
#define BZK_FF_FIELDBACKEND_H_

/**
 * @file
 * Runtime-dispatched packed field kernels.
 *
 * The module hot loops (sum-check round sums and folds, Spielman
 * encoder SpMV, tensor-PCS row combines) all reduce to long chains of
 * field mul/add over contiguous element arrays. This header is the one
 * place those loops go for N-way packed versions of that work: add,
 * sub, mul, fold and dot/sum/axpy kernels over lanes, plus Montgomery
 * batch inversion.
 *
 * A portable scalar backend is always available. On x86-64, AVX2
 * (4-way) and AVX-512 (8-way) Goldilocks backends are compiled in and
 * selected via CPUID at startup; on AArch64 a NEON (2-way) backend
 * takes their place. The choice can be forced with the
 * BZK_FIELD_BACKEND=scalar|avx2|avx512|neon environment variable (CI
 * pins `scalar` for a dispatch-off determinism leg) or, in tests, with
 * forceBackend().
 *
 * Every kernel computes exactly the same field elements as the obvious
 * scalar loop: lane packing only reorders independent lane work, and
 * where a kernel folds lanes into one value (sumLanes, dotLanes) the
 * reordering is invisible because field addition is exactly
 * associative and commutative — unlike floats there is no rounding.
 * Proof bytes therefore do not depend on the selected backend (pinned
 * by test_ff_kat and the system goldens).
 *
 * The generic templates below run the portable loop for any field
 * type; Goldilocks (the only field whose element fits a SIMD lane) has
 * specializations that route through the dispatched backend. The
 * 256-bit Montgomery fields stay on the scalar path — CIOS carry
 * chains do not map onto 64-bit lanes without IFMA-class hardware (see
 * docs/PERFORMANCE.md).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ff/Goldilocks.h"

namespace bzk::ff {

/** Packed-kernel implementations, in preference order. */
enum class Backend {
    kScalar = 0,
    kAvx2 = 1,
    kAvx512 = 2,
    kNeon = 3,
};

/** Stable lower-case name ("scalar", "avx2", "avx512", "neon"). */
const char *backendName(Backend backend);

/** True when @p backend can run on this host (kScalar always can). */
bool backendAvailable(Backend backend);

/** Best backend this host supports, ignoring any override. */
Backend detectBackend();

/**
 * The backend packed kernels dispatch to: a forceBackend() override
 * wins, then BZK_FIELD_BACKEND (fatal on unknown or unavailable
 * names), then detectBackend(). Resolved once and cached.
 */
Backend activeBackend();

/**
 * Pin the dispatched backend (tests sweep every available backend
 * through the same call sites). Fatal when @p backend is unavailable
 * on this host; clearForcedBackend() restores env/CPUID resolution.
 */
void forceBackend(Backend backend);

/** Undo forceBackend(); the next call re-resolves env then CPUID. */
void clearForcedBackend();

/** Lanes processed per packed op by @p backend (1 for scalar). */
size_t backendLanes(Backend backend);

/** Cumulative packed-kernel invocation counts (exported as metrics). */
struct KernelCounters
{
    uint64_t add_lanes = 0;
    uint64_t sub_lanes = 0;
    uint64_t mul_lanes = 0;
    uint64_t fold_lanes = 0;
    uint64_t axpy_lanes = 0;
    uint64_t sum_lanes = 0;
    uint64_t dot_lanes = 0;
    uint64_t batch_inverse = 0;
};

/** Snapshot of the process-wide counters (relaxed; monotonic). */
KernelCounters kernelCounters();

/** Zero the process-wide counters (tests and bench setup). */
void resetKernelCounters();

namespace detail {

/** Counter slots, one per public kernel. */
enum class Kernel {
    kAdd = 0,
    kSub,
    kMul,
    kFold,
    kAxpy,
    kSum,
    kDot,
    kBatchInverse,
    kCount_,
};

/** Bump one kernel's call counter (relaxed atomic). */
void countKernel(Kernel kernel);

} // namespace detail

/** out[i] = a[i] + b[i] for i in [0, n). */
template <typename F>
void
addLanes(const F *a, const F *b, F *out, size_t n)
{
    detail::countKernel(detail::Kernel::kAdd);
    for (size_t i = 0; i < n; ++i)
        out[i] = a[i] + b[i];
}

/** out[i] = a[i] - b[i] for i in [0, n). */
template <typename F>
void
subLanes(const F *a, const F *b, F *out, size_t n)
{
    detail::countKernel(detail::Kernel::kSub);
    for (size_t i = 0; i < n; ++i)
        out[i] = a[i] - b[i];
}

/** out[i] = a[i] * b[i] for i in [0, n). */
template <typename F>
void
mulLanes(const F *a, const F *b, F *out, size_t n)
{
    detail::countKernel(detail::Kernel::kMul);
    for (size_t i = 0; i < n; ++i)
        out[i] = a[i] * b[i];
}

/**
 * The sum-check fold: lo[i] = lo[i] + r * (hi[i] - lo[i]). The lo and
 * hi ranges must not overlap.
 */
template <typename F>
void
foldLanes(F *lo, const F *hi, const F &r, size_t n)
{
    detail::countKernel(detail::Kernel::kFold);
    for (size_t i = 0; i < n; ++i)
        lo[i] = lo[i] + r * (hi[i] - lo[i]);
}

/** acc[i] += s * x[i] (the row-combine primitive of the tensor PCS). */
template <typename F>
void
axpyLanes(F *acc, const F *x, const F &s, size_t n)
{
    detail::countKernel(detail::Kernel::kAxpy);
    for (size_t i = 0; i < n; ++i)
        acc[i] += s * x[i];
}

/** sum_i a[i]; any summation order (field addition is associative). */
template <typename F>
F
sumLanes(const F *a, size_t n)
{
    detail::countKernel(detail::Kernel::kSum);
    F acc = F::zero();
    for (size_t i = 0; i < n; ++i)
        acc += a[i];
    return acc;
}

/** sum_i a[i] * b[i]; any summation order. */
template <typename F>
F
dotLanes(const F *a, const F *b, size_t n)
{
    detail::countKernel(detail::Kernel::kDot);
    F acc = F::zero();
    for (size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

/**
 * Montgomery batch inversion: replace every non-zero x[i] with its
 * multiplicative inverse using one field inversion plus 3n
 * multiplications. Zero entries are skipped and left as zero — they
 * never corrupt the prefix products of the other entries (the
 * documented skip-zero semantics; a debug assert in scalar inverse()
 * still flags accidental single-element zero inversions). Returns the
 * number of elements inverted.
 */
template <typename F>
size_t
batchInverse(F *x, size_t n)
{
    detail::countKernel(detail::Kernel::kBatchInverse);
    std::vector<F> prefix(n);
    F run = F::one();
    size_t inverted = 0;
    for (size_t i = 0; i < n; ++i) {
        if (x[i].isZero())
            continue;
        prefix[i] = run;
        run *= x[i];
        ++inverted;
    }
    if (inverted == 0)
        return 0;
    F inv = run.inverse();
    for (size_t i = n; i-- > 0;) {
        if (x[i].isZero())
            continue;
        F xi = x[i];
        x[i] = inv * prefix[i];
        inv *= xi;
    }
    return inverted;
}

// Goldilocks is the packed field: its 64-bit canonical elements map
// one-to-one onto SIMD lanes, so these route through the dispatched
// backend instead of the portable loop above.
template <>
void addLanes<Goldilocks>(const Goldilocks *a, const Goldilocks *b,
                          Goldilocks *out, size_t n);
template <>
void subLanes<Goldilocks>(const Goldilocks *a, const Goldilocks *b,
                          Goldilocks *out, size_t n);
template <>
void mulLanes<Goldilocks>(const Goldilocks *a, const Goldilocks *b,
                          Goldilocks *out, size_t n);
template <>
void foldLanes<Goldilocks>(Goldilocks *lo, const Goldilocks *hi,
                           const Goldilocks &r, size_t n);
template <>
void axpyLanes<Goldilocks>(Goldilocks *acc, const Goldilocks *x,
                           const Goldilocks &s, size_t n);
template <> Goldilocks sumLanes<Goldilocks>(const Goldilocks *a, size_t n);
template <>
Goldilocks dotLanes<Goldilocks>(const Goldilocks *a, const Goldilocks *b,
                                size_t n);

} // namespace bzk::ff

#endif // BZK_FF_FIELDBACKEND_H_
