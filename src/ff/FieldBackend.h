#ifndef BZK_FF_FIELDBACKEND_H_
#define BZK_FF_FIELDBACKEND_H_

/**
 * @file
 * Runtime-dispatched packed field kernels.
 *
 * The module hot loops (sum-check round sums and folds, Spielman
 * encoder SpMV, tensor-PCS row combines) all reduce to long chains of
 * field mul/add over contiguous element arrays. This header is the one
 * place those loops go for N-way packed versions of that work: add,
 * sub, mul, fold and dot/sum/axpy kernels over lanes, plus Montgomery
 * batch inversion.
 *
 * A portable scalar backend is always available. On x86-64, AVX2
 * (4-way) and AVX-512 (8-way) Goldilocks backends are compiled in and
 * selected via CPUID at startup; on AArch64 a NEON (2-way) backend
 * takes their place. The choice can be forced with the
 * BZK_FIELD_BACKEND=scalar|avx2|avx512|neon environment variable (CI
 * pins `scalar` for a dispatch-off determinism leg) or, in tests, with
 * forceBackend().
 *
 * Every kernel computes exactly the same field elements as the obvious
 * scalar loop: lane packing only reorders independent lane work, and
 * where a kernel folds lanes into one value (sumLanes, dotLanes) the
 * reordering is invisible because field addition is exactly
 * associative and commutative — unlike floats there is no rounding.
 * Proof bytes therefore do not depend on the selected backend (pinned
 * by test_ff_kat and the system goldens).
 *
 * The generic templates below run the portable loop for any field
 * type. Two families have specializations that route through the
 * dispatched backends instead:
 *
 *  - Goldilocks (one 64-bit canonical limb per SIMD lane) uses the
 *    kernels declared in GoldilocksKernels.h.
 *  - The 4x64-limb Montgomery fields BN254 Fr and Fq use the *wide*
 *    kernels of WideKernels.h: blocks of elements are transposed to a
 *    limb-major (struct-of-arrays) layout and multiplied 8-way with
 *    AVX-512 IFMA vpmadd52 (radix-52), 4-way with AVX2 widening
 *    64x64 multiplies (radix-64 CIOS), or element-wise on the scalar
 *    reference. On AVX-512F hosts without IFMA — and whenever
 *    BZK_FIELD_IFMA=0 or forceWideIfma(0) disables it — the AVX2
 *    4-way table serves as the fallback. See docs/PERFORMANCE.md.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ff/FieldParams.h"
#include "ff/Fp.h"
#include "ff/Goldilocks.h"

namespace bzk::ff {

/** Packed-kernel implementations, in preference order. */
enum class Backend {
    kScalar = 0,
    kAvx2 = 1,
    kAvx512 = 2,
    kNeon = 3,
};

/** Stable lower-case name ("scalar", "avx2", "avx512", "neon"). */
const char *backendName(Backend backend);

/** True when @p backend can run on this host (kScalar always can). */
bool backendAvailable(Backend backend);

/** Best backend this host supports, ignoring any override. */
Backend detectBackend();

/**
 * The backend packed kernels dispatch to: a forceBackend() override
 * wins, then BZK_FIELD_BACKEND (fatal on unknown or unavailable
 * names), then detectBackend(). Resolved once and cached.
 */
Backend activeBackend();

/**
 * Pin the dispatched backend (tests sweep every available backend
 * through the same call sites). Fatal when @p backend is unavailable
 * on this host; clearForcedBackend() restores env/CPUID resolution.
 */
void forceBackend(Backend backend);

/** Undo forceBackend(); the next call re-resolves env then CPUID. */
void clearForcedBackend();

/** Lanes processed per packed op by @p backend (1 for scalar). */
size_t backendLanes(Backend backend);

/**
 * The wide-field (4x64-limb Montgomery) kernel families. Which one
 * runs is derived from activeBackend() plus IFMA availability:
 * kAvx512 + IFMA -> kIfma (8-way radix-52); kAvx512 without IFMA or
 * kAvx2 -> kAvx2 (4-way radix-64 CIOS); anything else -> kScalar.
 */
enum class WideBackend {
    kScalar = 0,
    kAvx2 = 1,
    kIfma = 2,
};

/** Stable lower-case name ("scalar", "avx2", "ifma"). */
const char *wideBackendName(WideBackend backend);

/** Elements per packed wide-field block (1, 4 or 8). */
size_t wideBackendLanes(WideBackend backend);

/** The wide-field table Fr/Fq lane kernels dispatch to right now. */
WideBackend activeWideBackend();

/** True when this host has AVX-512 IFMA (vpmadd52). */
bool wideIfmaAvailable();

/**
 * True when wide-field dispatch may use the IFMA table: the host has
 * it and neither BZK_FIELD_IFMA=0 nor forceWideIfma(0) disabled it.
 * (The table actually runs only when activeBackend() is kAvx512.)
 */
bool wideIfmaEnabled();

/**
 * Test hook: 0 disables the IFMA table (exercises the AVX2 fallback
 * on IFMA hosts), 1 re-enables it (fatal when the host lacks IFMA),
 * -1 restores env/CPUID resolution.
 */
void forceWideIfma(int mode);

/** Cumulative packed-kernel invocation counts (exported as metrics). */
struct KernelCounters
{
    uint64_t add_lanes = 0;
    uint64_t sub_lanes = 0;
    uint64_t mul_lanes = 0;
    uint64_t fold_lanes = 0;
    uint64_t axpy_lanes = 0;
    uint64_t sum_lanes = 0;
    uint64_t dot_lanes = 0;
    uint64_t batch_inverse = 0;
    // Wide-field (Fr/Fq) kernel invocations, counted separately so
    // the metrics can tell 64-bit Goldilocks traffic from 256-bit
    // Montgomery traffic.
    uint64_t wide_add_lanes = 0;
    uint64_t wide_sub_lanes = 0;
    uint64_t wide_mul_lanes = 0;
    uint64_t wide_fold_lanes = 0;
    uint64_t wide_axpy_lanes = 0;
    uint64_t wide_sum_lanes = 0;
    uint64_t wide_dot_lanes = 0;
    uint64_t wide_batch_inverse = 0;
};

/** Snapshot of the process-wide counters (relaxed; monotonic). */
KernelCounters kernelCounters();

/** Zero the process-wide counters (tests and bench setup). */
void resetKernelCounters();

namespace detail {

/** Counter slots, one per public kernel. */
enum class Kernel {
    kAdd = 0,
    kSub,
    kMul,
    kFold,
    kAxpy,
    kSum,
    kDot,
    kBatchInverse,
    kWideAdd,
    kWideSub,
    kWideMul,
    kWideFold,
    kWideAxpy,
    kWideSum,
    kWideDot,
    kWideBatchInverse,
    kCount_,
};

/** Bump one kernel's call counter (relaxed atomic). */
void countKernel(Kernel kernel);

/**
 * The Montgomery-trick body shared by the generic batchInverse and
 * the wide-field specializations (only the counter slot differs).
 */
template <typename F>
size_t
batchInverseImpl(F *x, size_t n)
{
    std::vector<F> prefix(n);
    F run = F::one();
    size_t inverted = 0;
    for (size_t i = 0; i < n; ++i) {
        if (x[i].isZero())
            continue;
        prefix[i] = run;
        run *= x[i];
        ++inverted;
    }
    if (inverted == 0)
        return 0;
    F inv = run.inverse();
    for (size_t i = n; i-- > 0;) {
        if (x[i].isZero())
            continue;
        F xi = x[i];
        x[i] = inv * prefix[i];
        inv *= xi;
    }
    return inverted;
}

} // namespace detail

/** out[i] = a[i] + b[i] for i in [0, n). */
template <typename F>
void
addLanes(const F *a, const F *b, F *out, size_t n)
{
    detail::countKernel(detail::Kernel::kAdd);
    for (size_t i = 0; i < n; ++i)
        out[i] = a[i] + b[i];
}

/** out[i] = a[i] - b[i] for i in [0, n). */
template <typename F>
void
subLanes(const F *a, const F *b, F *out, size_t n)
{
    detail::countKernel(detail::Kernel::kSub);
    for (size_t i = 0; i < n; ++i)
        out[i] = a[i] - b[i];
}

/** out[i] = a[i] * b[i] for i in [0, n). */
template <typename F>
void
mulLanes(const F *a, const F *b, F *out, size_t n)
{
    detail::countKernel(detail::Kernel::kMul);
    for (size_t i = 0; i < n; ++i)
        out[i] = a[i] * b[i];
}

/**
 * The sum-check fold: lo[i] = lo[i] + r * (hi[i] - lo[i]). The lo and
 * hi ranges must not overlap.
 */
template <typename F>
void
foldLanes(F *lo, const F *hi, const F &r, size_t n)
{
    detail::countKernel(detail::Kernel::kFold);
    for (size_t i = 0; i < n; ++i)
        lo[i] = lo[i] + r * (hi[i] - lo[i]);
}

/** acc[i] += s * x[i] (the row-combine primitive of the tensor PCS). */
template <typename F>
void
axpyLanes(F *acc, const F *x, const F &s, size_t n)
{
    detail::countKernel(detail::Kernel::kAxpy);
    for (size_t i = 0; i < n; ++i)
        acc[i] += s * x[i];
}

/** sum_i a[i]; any summation order (field addition is associative). */
template <typename F>
F
sumLanes(const F *a, size_t n)
{
    detail::countKernel(detail::Kernel::kSum);
    F acc = F::zero();
    for (size_t i = 0; i < n; ++i)
        acc += a[i];
    return acc;
}

/** sum_i a[i] * b[i]; any summation order. */
template <typename F>
F
dotLanes(const F *a, const F *b, size_t n)
{
    detail::countKernel(detail::Kernel::kDot);
    F acc = F::zero();
    for (size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

/**
 * Montgomery batch inversion: replace every non-zero x[i] with its
 * multiplicative inverse using one field inversion plus 3n
 * multiplications. Zero entries are skipped and left as zero — they
 * never corrupt the prefix products of the other entries (the
 * documented skip-zero semantics; a debug assert in scalar inverse()
 * still flags accidental single-element zero inversions). Returns the
 * number of elements inverted.
 */
template <typename F>
size_t
batchInverse(F *x, size_t n)
{
    detail::countKernel(detail::Kernel::kBatchInverse);
    return detail::batchInverseImpl(x, n);
}

// Goldilocks is the packed field: its 64-bit canonical elements map
// one-to-one onto SIMD lanes, so these route through the dispatched
// backend instead of the portable loop above.
template <>
void addLanes<Goldilocks>(const Goldilocks *a, const Goldilocks *b,
                          Goldilocks *out, size_t n);
template <>
void subLanes<Goldilocks>(const Goldilocks *a, const Goldilocks *b,
                          Goldilocks *out, size_t n);
template <>
void mulLanes<Goldilocks>(const Goldilocks *a, const Goldilocks *b,
                          Goldilocks *out, size_t n);
template <>
void foldLanes<Goldilocks>(Goldilocks *lo, const Goldilocks *hi,
                           const Goldilocks &r, size_t n);
template <>
void axpyLanes<Goldilocks>(Goldilocks *acc, const Goldilocks *x,
                           const Goldilocks &s, size_t n);
template <> Goldilocks sumLanes<Goldilocks>(const Goldilocks *a, size_t n);
template <>
Goldilocks dotLanes<Goldilocks>(const Goldilocks *a, const Goldilocks *b,
                                size_t n);

// BN254 Fr and Fq route through the wide-field (4x64-limb Montgomery)
// kernel tables: limb-transposed SoA blocks, 8-way under AVX-512 IFMA,
// 4-way under AVX2, scalar otherwise. Bit-identical to the portable
// loop for every backend (each element result is fully canonical).
using Bn254Fr = Fp<Bn254FrParams>;
using Bn254Fq = Fp<Bn254FqParams>;

template <>
void addLanes<Bn254Fr>(const Bn254Fr *a, const Bn254Fr *b, Bn254Fr *out,
                       size_t n);
template <>
void subLanes<Bn254Fr>(const Bn254Fr *a, const Bn254Fr *b, Bn254Fr *out,
                       size_t n);
template <>
void mulLanes<Bn254Fr>(const Bn254Fr *a, const Bn254Fr *b, Bn254Fr *out,
                       size_t n);
template <>
void foldLanes<Bn254Fr>(Bn254Fr *lo, const Bn254Fr *hi, const Bn254Fr &r,
                        size_t n);
template <>
void axpyLanes<Bn254Fr>(Bn254Fr *acc, const Bn254Fr *x, const Bn254Fr &s,
                        size_t n);
template <> Bn254Fr sumLanes<Bn254Fr>(const Bn254Fr *a, size_t n);
template <>
Bn254Fr dotLanes<Bn254Fr>(const Bn254Fr *a, const Bn254Fr *b, size_t n);

template <>
void addLanes<Bn254Fq>(const Bn254Fq *a, const Bn254Fq *b, Bn254Fq *out,
                       size_t n);
template <>
void subLanes<Bn254Fq>(const Bn254Fq *a, const Bn254Fq *b, Bn254Fq *out,
                       size_t n);
template <>
void mulLanes<Bn254Fq>(const Bn254Fq *a, const Bn254Fq *b, Bn254Fq *out,
                       size_t n);
template <>
void foldLanes<Bn254Fq>(Bn254Fq *lo, const Bn254Fq *hi, const Bn254Fq &r,
                        size_t n);
template <>
void axpyLanes<Bn254Fq>(Bn254Fq *acc, const Bn254Fq *x, const Bn254Fq &s,
                        size_t n);
template <> Bn254Fq sumLanes<Bn254Fq>(const Bn254Fq *a, size_t n);
template <>
Bn254Fq dotLanes<Bn254Fq>(const Bn254Fq *a, const Bn254Fq *b, size_t n);

// The wide batch inversion shares the generic Montgomery-trick body
// (its multiplies are already single-element chains) but is counted
// on the wide_batch_inverse slot so metrics and the bench can see it.
template <>
inline size_t
batchInverse<Bn254Fr>(Bn254Fr *x, size_t n)
{
    detail::countKernel(detail::Kernel::kWideBatchInverse);
    return detail::batchInverseImpl(x, n);
}

template <>
inline size_t
batchInverse<Bn254Fq>(Bn254Fq *x, size_t n)
{
    detail::countKernel(detail::Kernel::kWideBatchInverse);
    return detail::batchInverseImpl(x, n);
}

} // namespace bzk::ff

#endif // BZK_FF_FIELDBACKEND_H_
