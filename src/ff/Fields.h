#ifndef BZK_FF_FIELDS_H_
#define BZK_FF_FIELDS_H_

/**
 * @file
 * Canonical field aliases used throughout the library.
 */

#include "ff/FieldParams.h"
#include "ff/Fp.h"
#include "ff/Goldilocks.h"

namespace bzk {

/** The 256-bit scalar field proofs are generated over (paper setting). */
using Fr = Fp<Bn254FrParams>;

/** The 256-bit base field of BN254 G1 (MSM baseline substrate). */
using Fq = Fp<Bn254FqParams>;

/** Fast 64-bit field for tests and fast instantiation sweeps. */
using Gl64 = Goldilocks;

} // namespace bzk

#endif // BZK_FF_FIELDS_H_
