/**
 * @file
 * Portable wide-field kernel table: the scalar references applied
 * element by element. Always available; also the dispatch target when
 * BZK_FIELD_BACKEND=scalar pins the determinism leg, and the tail
 * path the SIMD tables reuse for trailing elements.
 */

#include "ff/WideKernels.h"

namespace bzk::ff::detail {
namespace {

void
scalarWideAdd(const WideFieldConstants &c, const uint64_t *a,
              const uint64_t *b, uint64_t *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        wideAddRef(c, a + 4 * i, b + 4 * i, out + 4 * i);
}

void
scalarWideSub(const WideFieldConstants &c, const uint64_t *a,
              const uint64_t *b, uint64_t *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        wideSubRef(c, a + 4 * i, b + 4 * i, out + 4 * i);
}

void
scalarWideMul(const WideFieldConstants &c, const uint64_t *a,
              const uint64_t *b, uint64_t *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        wideMulRef(c, a + 4 * i, b + 4 * i, out + 4 * i);
}

void
scalarWideFold(const WideFieldConstants &c, uint64_t *lo,
               const uint64_t *hi, const uint64_t *r, size_t n)
{
    uint64_t d[4], t[4];
    for (size_t i = 0; i < n; ++i) {
        wideSubRef(c, hi + 4 * i, lo + 4 * i, d);
        wideMulRef(c, r, d, t);
        wideAddRef(c, lo + 4 * i, t, lo + 4 * i);
    }
}

void
scalarWideAxpy(const WideFieldConstants &c, uint64_t *acc,
               const uint64_t *x, const uint64_t *s, size_t n)
{
    uint64_t t[4];
    for (size_t i = 0; i < n; ++i) {
        wideMulRef(c, s, x + 4 * i, t);
        wideAddRef(c, acc + 4 * i, t, acc + 4 * i);
    }
}

void
scalarWideSum(const WideFieldConstants &c, const uint64_t *a, size_t n,
              uint64_t *out_one)
{
    uint64_t acc[4] = {0, 0, 0, 0};
    for (size_t i = 0; i < n; ++i)
        wideAddRef(c, acc, a + 4 * i, acc);
    for (int j = 0; j < 4; ++j)
        out_one[j] = acc[j];
}

void
scalarWideDot(const WideFieldConstants &c, const uint64_t *a,
              const uint64_t *b, size_t n, uint64_t *out_one)
{
    uint64_t acc[4] = {0, 0, 0, 0};
    uint64_t t[4];
    for (size_t i = 0; i < n; ++i) {
        wideMulRef(c, a + 4 * i, b + 4 * i, t);
        wideAddRef(c, acc, t, acc);
    }
    for (int j = 0; j < 4; ++j)
        out_one[j] = acc[j];
}

} // namespace

const WideKernelTable &
wideScalarKernels()
{
    static const WideKernelTable table{
        scalarWideAdd, scalarWideSub, scalarWideMul, scalarWideFold,
        scalarWideAxpy, scalarWideSum, scalarWideDot};
    return table;
}

} // namespace bzk::ff::detail
