#ifndef BZK_FF_U256_H_
#define BZK_FF_U256_H_

/**
 * @file
 * Fixed-width 256-bit unsigned integer with constexpr arithmetic.
 *
 * Kept deliberately minimal: just what Montgomery field arithmetic and
 * constant derivation need. Limbs are little-endian 64-bit words.
 */

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace bzk {

/** 256-bit little-endian unsigned integer. */
struct U256
{
    std::array<uint64_t, 4> limb{0, 0, 0, 0};

    constexpr U256() = default;

    /** Construct from a single 64-bit value. */
    constexpr explicit U256(uint64_t lo) : limb{lo, 0, 0, 0} {}

    /** Construct from four little-endian limbs. */
    constexpr U256(uint64_t l0, uint64_t l1, uint64_t l2, uint64_t l3)
        : limb{l0, l1, l2, l3}
    {
    }

    constexpr bool
    operator==(const U256 &other) const
    {
        return limb == other.limb;
    }

    /** True iff the value is zero. */
    constexpr bool
    isZero() const
    {
        return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
    }

    /** Value of bit @p i (0 = least significant). */
    constexpr int
    bit(unsigned i) const
    {
        return static_cast<int>((limb[i / 64] >> (i % 64)) & 1);
    }

    /** True iff the value is odd. */
    constexpr bool isOdd() const { return limb[0] & 1; }

    /** Index of the highest set bit plus one; 0 for zero. */
    constexpr unsigned
    bitLength() const
    {
        for (int i = 3; i >= 0; --i) {
            if (limb[i] != 0) {
                unsigned hi = 63;
                while (!((limb[i] >> hi) & 1))
                    --hi;
                return static_cast<unsigned>(i) * 64 + hi + 1;
            }
        }
        return 0;
    }
};

/** Three-way compare: -1, 0 or 1. */
constexpr int
cmp(const U256 &a, const U256 &b)
{
    for (int i = 3; i >= 0; --i) {
        if (a.limb[i] < b.limb[i])
            return -1;
        if (a.limb[i] > b.limb[i])
            return 1;
    }
    return 0;
}

/** a < b */
constexpr bool
lt(const U256 &a, const U256 &b)
{
    return cmp(a, b) < 0;
}

/** a + b, returning the carry-out in @p carry. */
constexpr U256
addCarry(const U256 &a, const U256 &b, uint64_t &carry)
{
    U256 r;
    uint64_t c = 0;
    for (int i = 0; i < 4; ++i) {
        __uint128_t sum = static_cast<__uint128_t>(a.limb[i]) + b.limb[i] + c;
        r.limb[i] = static_cast<uint64_t>(sum);
        c = static_cast<uint64_t>(sum >> 64);
    }
    carry = c;
    return r;
}

/** a - b, returning the borrow-out in @p borrow. */
constexpr U256
subBorrow(const U256 &a, const U256 &b, uint64_t &borrow)
{
    U256 r;
    uint64_t bw = 0;
    for (int i = 0; i < 4; ++i) {
        __uint128_t diff = static_cast<__uint128_t>(a.limb[i]) - b.limb[i] - bw;
        r.limb[i] = static_cast<uint64_t>(diff);
        bw = static_cast<uint64_t>((diff >> 64) != 0 ? 1 : 0);
    }
    borrow = bw;
    return r;
}

/** (a + b) mod m, requiring a, b < m. */
constexpr U256
addMod(const U256 &a, const U256 &b, const U256 &m)
{
    uint64_t carry = 0;
    U256 sum = addCarry(a, b, carry);
    if (carry || cmp(sum, m) >= 0) {
        uint64_t borrow = 0;
        sum = subBorrow(sum, m, borrow);
    }
    return sum;
}

/** (a - b) mod m, requiring a, b < m. */
constexpr U256
subMod(const U256 &a, const U256 &b, const U256 &m)
{
    uint64_t borrow = 0;
    U256 diff = subBorrow(a, b, borrow);
    if (borrow) {
        uint64_t carry = 0;
        diff = addCarry(diff, m, carry);
    }
    return diff;
}

/**
 * (2^shift_bits * a) mod m computed by repeated modular doubling.
 * Used only for compile-time constant derivation (R, R^2).
 */
constexpr U256
shiftLeftMod(U256 a, unsigned shift_bits, const U256 &m)
{
    for (unsigned i = 0; i < shift_bits; ++i)
        a = addMod(a, a, m);
    return a;
}

/** -m^{-1} mod 2^64 via Newton iteration; @p m0 must be odd. */
constexpr uint64_t
negInv64(uint64_t m0)
{
    // x_{k+1} = x_k * (2 - m0 * x_k) doubles correct bits each step.
    uint64_t inv = 1;
    for (int i = 0; i < 6; ++i)
        inv *= 2 - m0 * inv;
    return ~inv + 1; // negate mod 2^64
}

/** Serialize as 32 little-endian bytes into @p out. */
void u256ToBytes(const U256 &v, std::span<uint8_t, 32> out);

/** Parse 32 little-endian bytes. */
U256 u256FromBytes(std::span<const uint8_t, 32> in);

/** Hex string (most-significant nibble first, 64 digits). */
std::string u256ToHex(const U256 &v);

} // namespace bzk

#endif // BZK_FF_U256_H_
