/**
 * @file
 * Backend resolution (CPUID, env override, test forcing), kernel call
 * counters, the portable scalar kernel table, and the Goldilocks
 * specializations that route the public packed API through whichever
 * table is active.
 */

#include "ff/FieldBackend.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "ff/GoldilocksKernels.h"
#include "ff/WideKernels.h"
#include "util/Log.h"

namespace bzk::ff {

namespace detail {
namespace {

std::atomic<uint64_t>
    g_counters[static_cast<size_t>(Kernel::kCount_)] = {};

} // namespace

void
countKernel(Kernel kernel)
{
    g_counters[static_cast<size_t>(kernel)].fetch_add(
        1, std::memory_order_relaxed);
}

namespace {

void
scalarAdd(const uint64_t *a, const uint64_t *b, uint64_t *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = glAdd(a[i], b[i]);
}

void
scalarSub(const uint64_t *a, const uint64_t *b, uint64_t *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = glSub(a[i], b[i]);
}

void
scalarMul(const uint64_t *a, const uint64_t *b, uint64_t *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = glMul(a[i], b[i]);
}

void
scalarFold(uint64_t *lo, const uint64_t *hi, uint64_t r, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        lo[i] = glAdd(lo[i], glMul(r, glSub(hi[i], lo[i])));
}

void
scalarAxpy(uint64_t *acc, const uint64_t *x, uint64_t s, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        acc[i] = glAdd(acc[i], glMul(s, x[i]));
}

uint64_t
scalarSum(const uint64_t *a, size_t n)
{
    uint64_t acc = 0;
    for (size_t i = 0; i < n; ++i)
        acc = glAdd(acc, a[i]);
    return acc;
}

uint64_t
scalarDot(const uint64_t *a, const uint64_t *b, size_t n)
{
    uint64_t acc = 0;
    for (size_t i = 0; i < n; ++i)
        acc = glAdd(acc, glMul(a[i], b[i]));
    return acc;
}

} // namespace

const GlKernelTable &
glScalarKernels()
{
    static const GlKernelTable table{scalarAdd, scalarSub, scalarMul,
                                     scalarFold, scalarAxpy, scalarSum,
                                     scalarDot};
    return table;
}

} // namespace detail

namespace {

// -1 = unresolved; otherwise a Backend value. forceBackend stores
// directly; the first activeBackend() call resolves env then CPUID.
std::atomic<int> g_active{-1};

Backend
parseBackendName(const char *name)
{
    if (std::strcmp(name, "scalar") == 0)
        return Backend::kScalar;
    if (std::strcmp(name, "avx2") == 0)
        return Backend::kAvx2;
    if (std::strcmp(name, "avx512") == 0)
        return Backend::kAvx512;
    if (std::strcmp(name, "neon") == 0)
        return Backend::kNeon;
    fatal("BZK_FIELD_BACKEND: unknown backend '%s' "
          "(want scalar|avx2|avx512|neon)",
          name);
}

Backend
resolveBackend()
{
    if (const char *env = std::getenv("BZK_FIELD_BACKEND");
        env && *env) {
        Backend requested = parseBackendName(env);
        if (!backendAvailable(requested))
            fatal("BZK_FIELD_BACKEND=%s requested but this host does "
                  "not support it",
                  env);
        return requested;
    }
    return detectBackend();
}

const detail::GlKernelTable &
tableFor(Backend backend)
{
    switch (backend) {
#if defined(__x86_64__) || defined(_M_X64)
      case Backend::kAvx2:
        return detail::glAvx2Kernels();
      case Backend::kAvx512:
        return detail::glAvx512Kernels();
#endif
#if defined(__aarch64__)
      case Backend::kNeon:
        return detail::glNeonKernels();
#endif
      default:
        return detail::glScalarKernels();
    }
}

/** The active table; resolves and caches the backend on first use. */
const detail::GlKernelTable &
activeTable()
{
    return tableFor(activeBackend());
}

static_assert(sizeof(Goldilocks) == sizeof(uint64_t),
              "packed kernels view Goldilocks arrays as limb arrays");

const uint64_t *
limbs(const Goldilocks *p)
{
    return reinterpret_cast<const uint64_t *>(p);
}

uint64_t *
limbs(Goldilocks *p)
{
    return reinterpret_cast<uint64_t *>(p);
}

// Wide-field (4x64-limb Montgomery) dispatch state. -1 = unresolved;
// 0/1 = IFMA disabled/enabled. forceWideIfma stores directly; the
// first wideIfmaEnabled() call resolves BZK_FIELD_IFMA then CPUID.
std::atomic<int> g_ifma{-1};

int
resolveIfma()
{
    if (const char *env = std::getenv("BZK_FIELD_IFMA"); env && *env) {
        if (std::strcmp(env, "0") == 0)
            return 0;
        if (std::strcmp(env, "1") == 0) {
            if (!wideIfmaAvailable())
                fatal("BZK_FIELD_IFMA=1 requested but this host has "
                      "no AVX-512 IFMA");
            return 1;
        }
        fatal("BZK_FIELD_IFMA: unknown value '%s' (want 0|1)", env);
    }
    return wideIfmaAvailable() ? 1 : 0;
}

static_assert(sizeof(Fp<Bn254FrParams>) == 4 * sizeof(uint64_t) &&
                  sizeof(Fp<Bn254FqParams>) == 4 * sizeof(uint64_t),
              "wide kernels view Fp arrays as 4-limb arrays");

template <typename P>
const uint64_t *
limbs(const Fp<P> *p)
{
    return reinterpret_cast<const uint64_t *>(p);
}

template <typename P>
uint64_t *
limbs(Fp<P> *p)
{
    return reinterpret_cast<uint64_t *>(p);
}

/** The per-field runtime constants the wide kernel tables consume. */
template <typename P>
const detail::WideFieldConstants &
wideConstants()
{
    using F = Fp<P>;
    static constexpr detail::WideFieldConstants c =
        detail::makeWideConstants(
            F::kModulus.limb[0], F::kModulus.limb[1],
            F::kModulus.limb[2], F::kModulus.limb[3], F::kInv);
    return c;
}

/** The wide table matching the active backend and IFMA state. */
const detail::WideKernelTable &
activeWideTable()
{
#if defined(__x86_64__) || defined(_M_X64)
    switch (activeWideBackend()) {
      case WideBackend::kIfma:
        return detail::wideIfmaKernels();
      case WideBackend::kAvx2:
        return detail::wideAvx2Kernels();
      default:
        break;
    }
#endif
    return detail::wideScalarKernels();
}

} // namespace

const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::kScalar:
        return "scalar";
      case Backend::kAvx2:
        return "avx2";
      case Backend::kAvx512:
        return "avx512";
      case Backend::kNeon:
        return "neon";
    }
    return "unknown";
}

bool
backendAvailable(Backend backend)
{
    switch (backend) {
      case Backend::kScalar:
        return true;
#if defined(__x86_64__) || defined(_M_X64)
      case Backend::kAvx2:
        return __builtin_cpu_supports("avx2");
      case Backend::kAvx512:
        return __builtin_cpu_supports("avx512f");
#endif
#if defined(__aarch64__)
      case Backend::kNeon:
        return true;
#endif
      default:
        return false;
    }
}

Backend
detectBackend()
{
    if (backendAvailable(Backend::kAvx512))
        return Backend::kAvx512;
    if (backendAvailable(Backend::kAvx2))
        return Backend::kAvx2;
    if (backendAvailable(Backend::kNeon))
        return Backend::kNeon;
    return Backend::kScalar;
}

Backend
activeBackend()
{
    int cached = g_active.load(std::memory_order_acquire);
    if (cached >= 0)
        return static_cast<Backend>(cached);
    Backend resolved = resolveBackend();
    int expected = -1;
    g_active.compare_exchange_strong(expected,
                                     static_cast<int>(resolved),
                                     std::memory_order_acq_rel);
    // On a lost race another thread resolved the same way (resolution
    // is deterministic), so either value is correct.
    return resolved;
}

void
forceBackend(Backend backend)
{
    if (!backendAvailable(backend))
        fatal("forceBackend: %s unavailable on this host",
              backendName(backend));
    g_active.store(static_cast<int>(backend),
                   std::memory_order_release);
}

void
clearForcedBackend()
{
    g_active.store(-1, std::memory_order_release);
}

size_t
backendLanes(Backend backend)
{
    switch (backend) {
      case Backend::kAvx2:
        return 4;
      case Backend::kAvx512:
        return 8;
      case Backend::kNeon:
        return 2;
      default:
        return 1;
    }
}

const char *
wideBackendName(WideBackend backend)
{
    switch (backend) {
      case WideBackend::kScalar:
        return "scalar";
      case WideBackend::kAvx2:
        return "avx2";
      case WideBackend::kIfma:
        return "ifma";
    }
    return "unknown";
}

size_t
wideBackendLanes(WideBackend backend)
{
    switch (backend) {
      case WideBackend::kAvx2:
        return 4;
      case WideBackend::kIfma:
        return 8;
      default:
        return 1;
    }
}

bool
wideIfmaAvailable()
{
#if defined(__x86_64__) || defined(_M_X64)
    return __builtin_cpu_supports("avx512ifma");
#else
    return false;
#endif
}

bool
wideIfmaEnabled()
{
    int cached = g_ifma.load(std::memory_order_acquire);
    if (cached >= 0)
        return cached != 0;
    int resolved = resolveIfma();
    int expected = -1;
    g_ifma.compare_exchange_strong(expected, resolved,
                                   std::memory_order_acq_rel);
    // On a lost race another thread resolved the same way (resolution
    // is deterministic), so either value is correct.
    return resolved != 0;
}

void
forceWideIfma(int mode)
{
    if (mode > 0 && !wideIfmaAvailable())
        fatal("forceWideIfma: AVX-512 IFMA unavailable on this host");
    g_ifma.store(mode < 0 ? -1 : (mode > 0 ? 1 : 0),
                 std::memory_order_release);
}

WideBackend
activeWideBackend()
{
    switch (activeBackend()) {
      case Backend::kAvx512:
        // Without vpmadd52 the 4-way radix-64 CIOS table is the best
        // available: AVX-512F implies AVX2, and the carry-chain code
        // gains nothing from 512-bit lanes (docs/PERFORMANCE.md).
        return wideIfmaEnabled() ? WideBackend::kIfma
                                 : WideBackend::kAvx2;
      case Backend::kAvx2:
        return WideBackend::kAvx2;
      default:
        // NEON has no wide table yet: a 2-way 4x64 carry chain was
        // measured no better than scalar and there is no aarch64
        // toolchain in CI to keep it honest. Scalar is exact.
        return WideBackend::kScalar;
    }
}

KernelCounters
kernelCounters()
{
    using detail::Kernel;
    auto load = [](Kernel k) {
        return detail::g_counters[static_cast<size_t>(k)].load(
            std::memory_order_relaxed);
    };
    KernelCounters c;
    c.add_lanes = load(Kernel::kAdd);
    c.sub_lanes = load(Kernel::kSub);
    c.mul_lanes = load(Kernel::kMul);
    c.fold_lanes = load(Kernel::kFold);
    c.axpy_lanes = load(Kernel::kAxpy);
    c.sum_lanes = load(Kernel::kSum);
    c.dot_lanes = load(Kernel::kDot);
    c.batch_inverse = load(Kernel::kBatchInverse);
    c.wide_add_lanes = load(Kernel::kWideAdd);
    c.wide_sub_lanes = load(Kernel::kWideSub);
    c.wide_mul_lanes = load(Kernel::kWideMul);
    c.wide_fold_lanes = load(Kernel::kWideFold);
    c.wide_axpy_lanes = load(Kernel::kWideAxpy);
    c.wide_sum_lanes = load(Kernel::kWideSum);
    c.wide_dot_lanes = load(Kernel::kWideDot);
    c.wide_batch_inverse = load(Kernel::kWideBatchInverse);
    return c;
}

void
resetKernelCounters()
{
    for (auto &counter : detail::g_counters)
        counter.store(0, std::memory_order_relaxed);
}

template <>
void
addLanes<Goldilocks>(const Goldilocks *a, const Goldilocks *b,
                     Goldilocks *out, size_t n)
{
    detail::countKernel(detail::Kernel::kAdd);
    activeTable().add(limbs(a), limbs(b), limbs(out), n);
}

template <>
void
subLanes<Goldilocks>(const Goldilocks *a, const Goldilocks *b,
                     Goldilocks *out, size_t n)
{
    detail::countKernel(detail::Kernel::kSub);
    activeTable().sub(limbs(a), limbs(b), limbs(out), n);
}

template <>
void
mulLanes<Goldilocks>(const Goldilocks *a, const Goldilocks *b,
                     Goldilocks *out, size_t n)
{
    detail::countKernel(detail::Kernel::kMul);
    activeTable().mul(limbs(a), limbs(b), limbs(out), n);
}

template <>
void
foldLanes<Goldilocks>(Goldilocks *lo, const Goldilocks *hi,
                      const Goldilocks &r, size_t n)
{
    detail::countKernel(detail::Kernel::kFold);
    activeTable().fold(limbs(lo), limbs(hi), r.toUint(), n);
}

template <>
void
axpyLanes<Goldilocks>(Goldilocks *acc, const Goldilocks *x,
                      const Goldilocks &s, size_t n)
{
    detail::countKernel(detail::Kernel::kAxpy);
    activeTable().axpy(limbs(acc), limbs(x), s.toUint(), n);
}

template <>
Goldilocks
sumLanes<Goldilocks>(const Goldilocks *a, size_t n)
{
    detail::countKernel(detail::Kernel::kSum);
    return Goldilocks::fromRaw(activeTable().sum(limbs(a), n));
}

template <>
Goldilocks
dotLanes<Goldilocks>(const Goldilocks *a, const Goldilocks *b, size_t n)
{
    detail::countKernel(detail::Kernel::kDot);
    return Goldilocks::fromRaw(activeTable().dot(limbs(a), limbs(b), n));
}

// ---- Wide-field (BN254 Fr/Fq) specializations. The kernels operate
// ---- on the raw Montgomery limb view; reading the result back
// ---- through Fp is safe because every kernel output is canonical.

namespace {

template <typename P>
void
wideAddLanes(const Fp<P> *a, const Fp<P> *b, Fp<P> *out, size_t n)
{
    detail::countKernel(detail::Kernel::kWideAdd);
    activeWideTable().add(wideConstants<P>(), limbs(a), limbs(b),
                          limbs(out), n);
}

template <typename P>
void
wideSubLanes(const Fp<P> *a, const Fp<P> *b, Fp<P> *out, size_t n)
{
    detail::countKernel(detail::Kernel::kWideSub);
    activeWideTable().sub(wideConstants<P>(), limbs(a), limbs(b),
                          limbs(out), n);
}

template <typename P>
void
wideMulLanes(const Fp<P> *a, const Fp<P> *b, Fp<P> *out, size_t n)
{
    detail::countKernel(detail::Kernel::kWideMul);
    activeWideTable().mul(wideConstants<P>(), limbs(a), limbs(b),
                          limbs(out), n);
}

template <typename P>
void
wideFoldLanes(Fp<P> *lo, const Fp<P> *hi, const Fp<P> &r, size_t n)
{
    detail::countKernel(detail::Kernel::kWideFold);
    activeWideTable().fold(wideConstants<P>(), limbs(lo), limbs(hi),
                           limbs(&r), n);
}

template <typename P>
void
wideAxpyLanes(Fp<P> *acc, const Fp<P> *x, const Fp<P> &s, size_t n)
{
    detail::countKernel(detail::Kernel::kWideAxpy);
    activeWideTable().axpy(wideConstants<P>(), limbs(acc), limbs(x),
                           limbs(&s), n);
}

template <typename P>
Fp<P>
wideSumLanes(const Fp<P> *a, size_t n)
{
    detail::countKernel(detail::Kernel::kWideSum);
    Fp<P> out;
    activeWideTable().sum(wideConstants<P>(), limbs(a), n,
                          limbs(&out));
    return out;
}

template <typename P>
Fp<P>
wideDotLanes(const Fp<P> *a, const Fp<P> *b, size_t n)
{
    detail::countKernel(detail::Kernel::kWideDot);
    Fp<P> out;
    activeWideTable().dot(wideConstants<P>(), limbs(a), limbs(b), n,
                          limbs(&out));
    return out;
}

} // namespace

template <>
void
addLanes<Bn254Fr>(const Bn254Fr *a, const Bn254Fr *b, Bn254Fr *out,
                  size_t n)
{
    wideAddLanes(a, b, out, n);
}

template <>
void
subLanes<Bn254Fr>(const Bn254Fr *a, const Bn254Fr *b, Bn254Fr *out,
                  size_t n)
{
    wideSubLanes(a, b, out, n);
}

template <>
void
mulLanes<Bn254Fr>(const Bn254Fr *a, const Bn254Fr *b, Bn254Fr *out,
                  size_t n)
{
    wideMulLanes(a, b, out, n);
}

template <>
void
foldLanes<Bn254Fr>(Bn254Fr *lo, const Bn254Fr *hi, const Bn254Fr &r,
                   size_t n)
{
    wideFoldLanes(lo, hi, r, n);
}

template <>
void
axpyLanes<Bn254Fr>(Bn254Fr *acc, const Bn254Fr *x, const Bn254Fr &s,
                   size_t n)
{
    wideAxpyLanes(acc, x, s, n);
}

template <>
Bn254Fr
sumLanes<Bn254Fr>(const Bn254Fr *a, size_t n)
{
    return wideSumLanes(a, n);
}

template <>
Bn254Fr
dotLanes<Bn254Fr>(const Bn254Fr *a, const Bn254Fr *b, size_t n)
{
    return wideDotLanes(a, b, n);
}

template <>
void
addLanes<Bn254Fq>(const Bn254Fq *a, const Bn254Fq *b, Bn254Fq *out,
                  size_t n)
{
    wideAddLanes(a, b, out, n);
}

template <>
void
subLanes<Bn254Fq>(const Bn254Fq *a, const Bn254Fq *b, Bn254Fq *out,
                  size_t n)
{
    wideSubLanes(a, b, out, n);
}

template <>
void
mulLanes<Bn254Fq>(const Bn254Fq *a, const Bn254Fq *b, Bn254Fq *out,
                  size_t n)
{
    wideMulLanes(a, b, out, n);
}

template <>
void
foldLanes<Bn254Fq>(Bn254Fq *lo, const Bn254Fq *hi, const Bn254Fq &r,
                   size_t n)
{
    wideFoldLanes(lo, hi, r, n);
}

template <>
void
axpyLanes<Bn254Fq>(Bn254Fq *acc, const Bn254Fq *x, const Bn254Fq &s,
                   size_t n)
{
    wideAxpyLanes(acc, x, s, n);
}

template <>
Bn254Fq
sumLanes<Bn254Fq>(const Bn254Fq *a, size_t n)
{
    return wideSumLanes(a, n);
}

template <>
Bn254Fq
dotLanes<Bn254Fq>(const Bn254Fq *a, const Bn254Fq *b, size_t n)
{
    return wideDotLanes(a, b, n);
}

} // namespace bzk::ff
