#include "ff/U256.h"

namespace bzk {

void
u256ToBytes(const U256 &v, std::span<uint8_t, 32> out)
{
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 8; ++j)
            out[i * 8 + j] = static_cast<uint8_t>(v.limb[i] >> (8 * j));
}

U256
u256FromBytes(std::span<const uint8_t, 32> in)
{
    U256 v;
    for (int i = 0; i < 4; ++i) {
        uint64_t word = 0;
        for (int j = 7; j >= 0; --j)
            word = (word << 8) | in[i * 8 + j];
        v.limb[i] = word;
    }
    return v;
}

std::string
u256ToHex(const U256 &v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(64);
    for (int i = 3; i >= 0; --i)
        for (int nib = 15; nib >= 0; --nib)
            out.push_back(digits[(v.limb[i] >> (4 * nib)) & 0xf]);
    return out;
}

} // namespace bzk
