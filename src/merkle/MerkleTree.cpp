#include "merkle/MerkleTree.h"

#include <cstring>

#include "util/Log.h"

namespace bzk {

namespace {

size_t
nextPow2(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

MerkleTree::MerkleTree(std::vector<Digest> leaves, size_t data_compressions,
                       const exec::ExecContext *exec)
{
    if (leaves.empty())
        panic("MerkleTree: no leaves");
    size_t padded = nextPow2(leaves.size());
    leaves.resize(padded); // zero digests pad the tail
    compressions_ = data_compressions;

    if (exec)
        exec->setRegion("merkle");
    layers_.push_back(std::move(leaves));
    while (layers_.back().size() > 1) {
        const auto &below = layers_.back();
        std::vector<Digest> above(below.size() / 2);
        // The layer hot loop: sibling pairs are read in place and
        // compressed with the multi-way kernel; layers split across
        // host threads when an ExecContext is supplied.
        auto hash_range = [&](size_t begin, size_t end) {
            Sha256::hashPairs(below.data() + 2 * begin, end - begin,
                              above.data() + begin);
        };
        if (exec)
            exec->parallelFor(above.size(), hash_range);
        else
            hash_range(0, above.size());
        compressions_ += above.size();
        layers_.push_back(std::move(above));
    }
}

MerkleTree
MerkleTree::build(std::span<const uint8_t> data,
                  const exec::ExecContext *exec)
{
    size_t blocks = (data.size() + 63) / 64;
    if (blocks == 0)
        blocks = 1;
    if (exec)
        exec->setRegion("merkle");
    std::vector<Digest> leaves(blocks);
    auto leaf_range = [&](size_t begin, size_t end) {
        size_t i = begin;
        // Whole blocks compress straight out of the input buffer,
        // 8 interleaved schedules at a time.
        size_t full = std::min(end, data.size() / 64);
        for (; i + 8 <= full; i += 8)
            Sha256::compressBlocks8(data.data() + 64 * i,
                                    leaves.data() + i);
        for (; i < full; ++i)
            leaves[i] = Sha256::compressBlock(
                std::span<const uint8_t, 64>(data.data() + 64 * i, 64));
        // A ragged tail block is zero-padded into a stack staging
        // buffer (at most one per build).
        for (; i < end; ++i) {
            uint8_t block[64] = {0};
            size_t offset = i * 64;
            size_t len = offset < data.size()
                             ? std::min<size_t>(64, data.size() - offset)
                             : 0;
            if (len > 0)
                std::memcpy(block, data.data() + offset, len);
            leaves[i] =
                Sha256::compressBlock(std::span<const uint8_t, 64>(block));
        }
    };
    if (exec)
        exec->parallelFor(blocks, leaf_range);
    else
        leaf_range(0, blocks);
    return MerkleTree(std::move(leaves), blocks, exec);
}

MerkleTree
MerkleTree::buildFromLeaves(std::vector<Digest> leaves,
                            const exec::ExecContext *exec)
{
    return MerkleTree(std::move(leaves), 0, exec);
}

const Digest &
MerkleTree::leaf(size_t leaf_index) const
{
    if (leaf_index >= numLeaves())
        panic("MerkleTree::leaf: index %zu out of %zu", leaf_index,
              numLeaves());
    return layers_.front()[leaf_index];
}

MerklePath
MerkleTree::path(size_t leaf_index) const
{
    if (leaf_index >= numLeaves())
        panic("MerkleTree::path: index %zu out of %zu", leaf_index,
              numLeaves());
    MerklePath p;
    p.leaf_index = leaf_index;
    size_t idx = leaf_index;
    for (size_t layer = 0; layer + 1 < layers_.size(); ++layer) {
        p.siblings.push_back(layers_[layer][idx ^ 1]);
        idx >>= 1;
    }
    return p;
}

bool
MerkleTree::verifyPath(const Digest &root, const Digest &leaf,
                       const MerklePath &path)
{
    Digest node = leaf;
    size_t idx = path.leaf_index;
    for (const Digest &sibling : path.siblings) {
        node = (idx & 1) ? Sha256::hashPair(sibling, node)
                         : Sha256::hashPair(node, sibling);
        idx >>= 1;
    }
    return node == root;
}

} // namespace bzk
