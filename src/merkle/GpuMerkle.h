#ifndef BZK_MERKLE_GPUMERKLE_H_
#define BZK_MERKLE_GPUMERKLE_H_

/**
 * @file
 * Batch Merkle-tree builders for the simulated GPU (Section 3.1).
 *
 * Three strategies, matching the paper's Table 3 columns:
 *  - CpuMerkleBaseline  : Orion-style host implementation, measured.
 *  - IntuitiveMerkleGpu : Simon-style, one kernel per tree; threads idle
 *                         as layers shrink (Figure 4a).
 *  - PipelinedMerkleGpu : one persistent kernel per layer; trees stream
 *                         through so lanes never idle (Figure 4b), with
 *                         dynamic loading/storing and multi-stream
 *                         overlap.
 *
 * Every driver also performs the real hashing for a configurable number
 * of trees, so cryptographic correctness is tested on the same code path
 * that the cost model charges.
 */

#include <cstddef>
#include <vector>

#include "gpusim/BatchStats.h"
#include "gpusim/Device.h"
#include "hash/Sha256.h"
#include "merkle/MerkleTree.h"
#include "util/Rng.h"

namespace bzk {

/** Options shared by the GPU Merkle drivers. */
struct GpuMerkleOptions
{
    /** Lanes this module may use; 0 = whole device (module benches). */
    double lane_budget = 0.0;
    /**
     * When true, tree inputs stream from host memory each cycle and
     * finished layers stream back (the full system's dynamic loading).
     * Module benches keep data device-resident, like the baselines.
     */
    bool stream_io = false;
    /** Number of trees to actually hash (functional validation). */
    size_t functional = 2;
    /**
     * Ablation: split lanes equally across layer kernels instead of
     * proportionally to layer work (the paper's halving allocation).
     * The bottleneck stage then dominates the cycle.
     */
    bool equal_lane_split = false;
};

/** Simon-style one-kernel-per-tree batch builder (Table 3 baseline). */
class IntuitiveMerkleGpu
{
  public:
    IntuitiveMerkleGpu(gpusim::Device &dev, GpuMerkleOptions opt = {});

    /**
     * Build @p batch trees of @p n_blocks 64-byte blocks each.
     * @param roots receives the roots of the functionally-built trees.
     */
    gpusim::BatchStats run(size_t batch, size_t n_blocks, Rng &rng,
                           std::vector<Digest> *roots = nullptr);

  private:
    gpusim::Device &dev_;
    GpuMerkleOptions opt_;
};

/** The paper's pipelined layer-per-kernel batch builder. */
class PipelinedMerkleGpu
{
  public:
    PipelinedMerkleGpu(gpusim::Device &dev, GpuMerkleOptions opt = {});

    /** @copydoc IntuitiveMerkleGpu::run */
    gpusim::BatchStats run(size_t batch, size_t n_blocks, Rng &rng,
                           std::vector<Digest> *roots = nullptr);

  private:
    gpusim::Device &dev_;
    GpuMerkleOptions opt_;
};

/** Host (Orion-style) baseline, measured in real wall-clock time. */
class CpuMerkleBaseline
{
  public:
    /**
     * @param sample_trees how many trees to actually build and time;
     *        the batch figure is extrapolated (documented in DESIGN.md).
     */
    explicit CpuMerkleBaseline(size_t sample_trees = 1)
        : sample_trees_(sample_trees)
    {
    }

    /** @copydoc IntuitiveMerkleGpu::run */
    gpusim::BatchStats run(size_t batch, size_t n_blocks, Rng &rng,
                           std::vector<Digest> *roots = nullptr);

  private:
    size_t sample_trees_;
};

/** Generate @p n_blocks pseudo-random 64-byte blocks. */
std::vector<uint8_t> randomBlocks(size_t n_blocks, Rng &rng);

} // namespace bzk

#endif // BZK_MERKLE_GPUMERKLE_H_
