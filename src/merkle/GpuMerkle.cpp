#include "merkle/GpuMerkle.h"

#include <algorithm>
#include <cmath>

#include "gpusim/Calibration.h"
#include "util/Log.h"
#include "util/Timer.h"

namespace bzk {

using gpusim::BatchStats;
using gpusim::KernelDesc;
using gpusim::OpId;
using gpusim::ProfileSegment;
using gpusim::StreamId;

namespace {

/** Hashes in layer l of a tree over n_blocks leaves (layer 0 = leaves). */
size_t
layerWork(size_t n_blocks, size_t l)
{
    return std::max<size_t>(1, n_blocks >> l);
}

/** Number of hashing layers for a tree over n_blocks blocks. */
size_t
numLayers(size_t n_blocks)
{
    size_t layers = 1; // leaf hashing
    while (n_blocks > 1) {
        n_blocks >>= 1;
        ++layers;
    }
    return layers;
}

void
checkPow2(size_t n_blocks)
{
    if (n_blocks == 0 || (n_blocks & (n_blocks - 1)))
        fatal("GPU Merkle drivers require a power-of-two block count, "
              "got %zu",
              n_blocks);
}

/** Build @p count real trees for functional validation. */
void
buildFunctionalTrees(size_t count, size_t n_blocks, Rng &rng,
                     std::vector<Digest> *roots)
{
    exec::ExecContext exec;
    for (size_t i = 0; i < count; ++i) {
        auto blocks = randomBlocks(n_blocks, rng);
        MerkleTree tree = MerkleTree::build(blocks, &exec);
        if (roots)
            roots->push_back(tree.root());
    }
}

} // namespace

std::vector<uint8_t>
randomBlocks(size_t n_blocks, Rng &rng)
{
    std::vector<uint8_t> data(n_blocks * 64);
    for (size_t i = 0; i < data.size(); i += 8) {
        uint64_t word = rng.next();
        for (int b = 0; b < 8; ++b)
            data[i + b] = static_cast<uint8_t>(word >> (8 * b));
    }
    return data;
}

IntuitiveMerkleGpu::IntuitiveMerkleGpu(gpusim::Device &dev,
                                       GpuMerkleOptions opt)
    : dev_(dev), opt_(opt)
{
}

BatchStats
IntuitiveMerkleGpu::run(size_t batch, size_t n_blocks, Rng &rng,
                        std::vector<Digest> *roots)
{
    checkPow2(n_blocks);
    buildFunctionalTrees(std::min(batch, opt_.functional), n_blocks, rng,
                         roots);

    dev_.resetTimeline();
    dev_.resetMemoryPeak();

    double cores = opt_.lane_budget > 0
                       ? std::min<double>(opt_.lane_budget,
                                          dev_.spec().cuda_cores)
                       : dev_.spec().cuda_cores;
    size_t layers = numLayers(n_blocks);

    // Simon's strategy preloads every tree's blocks at once ("mN blocks"
    // in Sec. 3.1's memory analysis).
    int64_t blocks_mem = dev_.alloc(batch * n_blocks * 64);
    int64_t nodes_mem = dev_.alloc(batch * n_blocks * 2 * 32);

    StreamId stream = dev_.createStream();
    StreamId copy_stream = dev_.createStream();
    if (opt_.stream_io)
        dev_.copyH2D(copy_stream, batch * n_blocks * 64);

    double first_end = 0.0;
    for (size_t t = 0; t < batch; ++t) {
        // One kernel builds the whole tree: it reserves lanes for its
        // widest layer and keeps them through every (shrinking) layer,
        // paying a grid-wide sync per layer — Figure 4a.
        KernelDesc k;
        k.name = "merkle_tree";
        k.lanes = std::min<double>(cores, static_cast<double>(n_blocks));
        double lanes = std::min(k.lanes, cores);
        // Host-synchronized per-layer launches, and the message schedule
        // lives in global memory (no register optimization): both
        // penalties the paper attributes to the intuitive scheme.
        double sync_cycles =
            gpusim::kHostSyncMs * dev_.spec().cyclesPerMs();
        for (size_t l = 0; l < layers; ++l) {
            double work = static_cast<double>(layerWork(n_blocks, l));
            double waves = std::ceil(work / lanes);
            k.profile.push_back(
                {waves * gpusim::kSha256CompressCycles *
                         gpusim::kUnoptimizedHashFactor +
                     sync_cycles,
                 std::min(work, lanes)});
        }
        k.mem_bytes = n_blocks * 64 + (2 * n_blocks - 1) * 32;
        OpId op = dev_.launchKernel(stream, k);
        if (t == 0)
            first_end = dev_.opEnd(op);
    }
    if (opt_.stream_io)
        dev_.copyD2H(copy_stream, batch * 32); // the roots

    BatchStats stats;
    stats.batch = batch;
    stats.total_ms = dev_.now();
    stats.first_latency_ms = first_end;
    stats.item_latency_ms = first_end;
    stats.throughput_per_ms = batch / stats.total_ms;
    stats.peak_device_bytes = dev_.peakMemory();
    stats.busy_lane_ms = dev_.busyLaneMs();
    stats.utilization =
        stats.busy_lane_ms / (stats.total_ms * dev_.spec().cuda_cores);

    dev_.free(blocks_mem);
    dev_.free(nodes_mem);
    return stats;
}

PipelinedMerkleGpu::PipelinedMerkleGpu(gpusim::Device &dev,
                                       GpuMerkleOptions opt)
    : dev_(dev), opt_(opt)
{
}

BatchStats
PipelinedMerkleGpu::run(size_t batch, size_t n_blocks, Rng &rng,
                        std::vector<Digest> *roots)
{
    checkPow2(n_blocks);
    buildFunctionalTrees(std::min(batch, opt_.functional), n_blocks, rng,
                         roots);

    dev_.resetTimeline();
    dev_.resetMemoryPeak();

    double lanes_total = opt_.lane_budget > 0
                             ? std::min<double>(opt_.lane_budget,
                                                dev_.spec().cuda_cores)
                             : dev_.spec().cuda_cores;
    size_t layers = numLayers(n_blocks);
    double total_work = static_cast<double>(2 * n_blocks - 1);

    // The paper's allocation: layer l gets lanes halving with its work
    // (M/2, M/4, ...), so every stage finishes its cycle-quota in the
    // same (2N/M) waves.
    std::vector<double> layer_lanes(layers);
    for (size_t l = 0; l < layers; ++l) {
        if (opt_.equal_lane_split) {
            layer_lanes[l] = std::max(
                1.0, lanes_total / static_cast<double>(layers));
        } else {
            layer_lanes[l] = std::max(
                1.0, lanes_total *
                         static_cast<double>(layerWork(n_blocks, l)) /
                         total_work);
        }
    }

    double cycle_cycles = 0.0;
    for (size_t l = 0; l < layers; ++l) {
        double waves =
            std::ceil(layerWork(n_blocks, l) / layer_lanes[l]);
        cycle_cycles =
            std::max(cycle_cycles, waves * gpusim::kSha256CompressCycles);
    }

    // Dynamic loading: only ~2N blocks of device memory, ever
    // (Sec. 3.1's "2N ≈ N + N/2 + ... + 1" analysis).
    int64_t pipe_mem = dev_.alloc(2 * n_blocks * 64);

    StreamId compute = dev_.createStream();
    StreamId h2d = dev_.createStream();
    StreamId d2h = dev_.createStream();

    size_t cycles = batch + layers - 1;
    double first_end = 0.0;
    OpId prev_load = gpusim::kNoOp;
    for (size_t c = 0; c < cycles; ++c) {
        // Multi-stream dynamic loading: the (c+1)-th tree's blocks load
        // while cycle c computes; finished layers stream back.
        OpId load = gpusim::kNoOp;
        if (opt_.stream_io && c < batch)
            load = dev_.copyH2D(h2d, n_blocks * 64);

        // Lanes busy this cycle: stages holding a live tree.
        double active = 0.0;
        double work_hashes = 0.0;
        for (size_t l = 0; l < layers; ++l) {
            if (c >= l && c - l < batch) {
                active += layer_lanes[l];
                work_hashes += static_cast<double>(layerWork(n_blocks, l));
            }
        }
        KernelDesc k;
        k.name = "merkle_pipe_cycle";
        k.lanes = lanes_total;
        k.profile.push_back({cycle_cycles, active});
        k.mem_bytes = static_cast<uint64_t>(work_hashes * 96.0);
        // Cycle c's leaf stage consumes the blocks loaded in cycle c-1.
        OpId op = dev_.launchKernel(compute, k, prev_load);
        prev_load = load;

        if (opt_.stream_io && c + 1 >= layers)
            dev_.copyD2H(d2h, (2 * n_blocks - 1) * 32, op);

        if (c == layers - 1)
            first_end = dev_.opEnd(op);
    }

    BatchStats stats;
    stats.batch = batch;
    stats.total_ms = dev_.now();
    stats.first_latency_ms = first_end;
    stats.item_latency_ms =
        static_cast<double>(layers) * cycle_cycles /
        dev_.spec().cyclesPerMs();
    stats.throughput_per_ms = batch / stats.total_ms;
    stats.peak_device_bytes = dev_.peakMemory();
    stats.busy_lane_ms = dev_.busyLaneMs();
    stats.utilization =
        stats.busy_lane_ms / (stats.total_ms * dev_.spec().cuda_cores);

    dev_.free(pipe_mem);
    return stats;
}

BatchStats
CpuMerkleBaseline::run(size_t batch, size_t n_blocks, Rng &rng,
                       std::vector<Digest> *roots)
{
    checkPow2(n_blocks);
    size_t samples = std::max<size_t>(1, std::min(sample_trees_, batch));

    // Generate inputs outside the timed region, like the GPU drivers.
    std::vector<std::vector<uint8_t>> inputs;
    inputs.reserve(samples);
    for (size_t i = 0; i < samples; ++i)
        inputs.push_back(randomBlocks(n_blocks, rng));

    // Multi-core host baseline, like the Orion hasher the paper
    // measures; thread count from --threads / BZK_THREADS.
    exec::ExecContext exec;
    Timer timer;
    for (size_t i = 0; i < samples; ++i) {
        MerkleTree tree = MerkleTree::build(inputs[i], &exec);
        if (roots)
            roots->push_back(tree.root());
    }
    double elapsed = timer.milliseconds();
    double per_tree = elapsed / static_cast<double>(samples);

    BatchStats stats;
    stats.batch = batch;
    stats.total_ms = per_tree * static_cast<double>(batch);
    stats.first_latency_ms = per_tree;
    stats.item_latency_ms = per_tree;
    stats.throughput_per_ms = 1.0 / per_tree;
    stats.peak_device_bytes = 0;
    return stats;
}

} // namespace bzk
