#ifndef BZK_MERKLE_MERKLETREE_H_
#define BZK_MERKLE_MERKLETREE_H_

/**
 * @file
 * Reference Merkle tree (Figure 2 of the paper).
 *
 * Input data is split into 512-bit blocks; each block is compressed to a
 * 256-bit leaf with one SHA-256 block compression, and parent nodes hash
 * the concatenation of their two children with another single
 * compression. A tree over N blocks therefore costs exactly 2N - 1
 * compressions, the unit the GPU cost model charges.
 */

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "exec/ExecContext.h"
#include "hash/Sha256.h"

namespace bzk {

/** An authentication path from a leaf to the root. */
struct MerklePath
{
    /** Index of the proven leaf. */
    size_t leaf_index = 0;
    /** Sibling digests from the leaf layer up to just below the root. */
    std::vector<Digest> siblings;
};

/** In-memory Merkle tree with all layers retained. */
class MerkleTree
{
  public:
    /**
     * Build a tree over @p data interpreted as 64-byte blocks. The block
     * count is padded with zero blocks up to the next power of two.
     * With a non-null @p exec, leaf compression and each tree layer are
     * hashed in parallel across host threads; the root is bit-identical
     * for any thread count (pinned by test_merkle).
     */
    static MerkleTree build(std::span<const uint8_t> data,
                            const exec::ExecContext *exec = nullptr);

    /**
     * Build a tree whose leaves are the given digests (e.g. column
     * hashes from the polynomial commitment). Padded with zero digests
     * to a power of two. @p exec as in build().
     */
    static MerkleTree buildFromLeaves(std::vector<Digest> leaves,
                                      const exec::ExecContext *exec =
                                          nullptr);

    /** The Merkle root. */
    const Digest &root() const { return layers_.back()[0]; }

    /** Number of leaves (after padding). */
    size_t numLeaves() const { return layers_.front().size(); }

    /** Total SHA-256 compressions spent building this tree. */
    size_t compressions() const { return compressions_; }

    /** All layers, leaves first. */
    const std::vector<std::vector<Digest>> &layers() const { return layers_; }

    /** Authentication path for @p leaf_index. */
    MerklePath path(size_t leaf_index) const;

    /** The digest of leaf @p leaf_index. */
    const Digest &leaf(size_t leaf_index) const;

    /**
     * Verify that @p leaf sits at @p path.leaf_index under @p root.
     * Pure function: needs no tree instance.
     */
    static bool verifyPath(const Digest &root, const Digest &leaf,
                           const MerklePath &path);

  private:
    MerkleTree(std::vector<Digest> leaves, size_t data_compressions,
               const exec::ExecContext *exec);

    std::vector<std::vector<Digest>> layers_;
    size_t compressions_ = 0;
};

} // namespace bzk

#endif // BZK_MERKLE_MERKLETREE_H_
