#ifndef BZK_EXEC_EXECCONTEXT_H_
#define BZK_EXEC_EXECCONTEXT_H_

/**
 * @file
 * Shared host-execution layer: the one place the library decides how
 * many host cores a cryptographic hot loop may use, and how a loop is
 * split across them.
 *
 * An ExecContext resolves a thread count (explicit config >
 * setDefaultThreads() override > BZK_THREADS env > hardware
 * concurrency), borrows a process-wide ThreadPool of that size, and
 * offers a chunked parallelFor with a serial cutoff plus deterministic
 * per-chunk reduction helpers (reduceChunked). The chunk shape of a
 * reduction depends only on the item count, never on the thread count,
 * so reduced field sums — and therefore proof bytes and Merkle roots —
 * are bit-identical for 1, 2, or N threads (pinned by test_exec and
 * test_system).
 *
 * The modules re-hosted on this layer are the paper's three: Merkle
 * layer hashing (Sec. 3.1), sum-check round evaluation (Sec. 3.2), and
 * the Spielman encoder's sparse-matrix stages (Sec. 3.3) — the host
 * analogue of the paper's one-thread-per-node GPU kernels, and of the
 * multi-core CPU baselines it measures (Orion, Arkworks).
 */

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bzk {
class ThreadPool;
} // namespace bzk

namespace bzk::exec {

/** Host-parallelism knobs, plumbed through every front-end config. */
struct ExecConfig
{
    /**
     * Worker threads; 0 resolves via setDefaultThreads(), then the
     * BZK_THREADS environment variable, then hardware concurrency.
     */
    size_t threads = 0;
    /**
     * parallelFor runs inline on the caller below this many items —
     * fine-grained loops are not worth a pool round-trip.
     */
    size_t serial_cutoff = 1024;
};

/**
 * Set the process-wide default thread count used when
 * ExecConfig::threads == 0 (the `--threads` CLI flag lands here).
 * 0 clears the override.
 */
void setDefaultThreads(size_t threads);

/**
 * Resolve @p requested to a concrete worker count: a non-zero request
 * wins, then the setDefaultThreads() override, then BZK_THREADS, then
 * hardware concurrency (at least 1).
 */
size_t resolveThreads(size_t requested);

/** Wall/busy accounting for one tagged region (or the totals). */
struct RegionStats
{
    /** Caller-side wall time spent inside parallelFor, ms. */
    double wall_ms = 0.0;
    /** Summed per-chunk worker time, ms (== wall_ms when serial). */
    double busy_ms = 0.0;
    /** parallelFor invocations accounted. */
    size_t calls = 0;
};

/**
 * A resolved execution context: thread count, shared pool, accounting.
 * Cheap to construct (pools are cached process-wide per thread count)
 * and safe to share by const reference across a proving pipeline.
 */
class ExecContext
{
  public:
    explicit ExecContext(ExecConfig cfg = {});

    /** Resolved worker count (>= 1). */
    size_t threads() const { return threads_; }

    /** The configured serial cutoff. */
    size_t serialCutoff() const { return cfg_.serial_cutoff; }

    /**
     * Split [0, n) into contiguous chunks and run @p body(begin, end)
     * across the pool, blocking until all chunks finish. Runs inline
     * when the context is single-threaded, when n is below the serial
     * cutoff, or when called from inside another parallelFor body
     * (nested parallelism degrades to serial instead of deadlocking
     * the shared pool). Exceptions from chunks propagate to the
     * caller (first one wins).
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t, size_t)> &body) const;

    /**
     * Same, with an explicit @p serial_cutoff for coarse loops whose
     * per-item work dwarfs the default cutoff's assumptions (e.g. one
     * item = one row encoding).
     */
    void parallelFor(size_t n, size_t serial_cutoff,
                     const std::function<void(size_t, size_t)> &body) const;

    /**
     * Tag subsequent parallelFor calls for per-module accounting
     * ("encoder", "merkle", "sumcheck"). Caller-thread state; set it
     * outside parallel regions.
     */
    void setRegion(const char *name) const;

    /** Accounting for one region ("" unknown regions read as zeros). */
    RegionStats stats(const std::string &region) const;

    /** Accounting summed over all regions. */
    RegionStats totals() const;

    /**
     * busy / (wall * threads) over everything accounted so far: 1.0 is
     * perfect scaling, 1/threads is no scaling. Returns 1.0 before any
     * parallel region has run.
     */
    double parallelEfficiency() const;

    /** Drop all accumulated accounting. */
    void resetStats() const;

  private:
    void runChunks(size_t n,
                   const std::function<void(size_t, size_t)> &body) const;
    void account(double wall_ms, double busy_ms) const;

    ExecConfig cfg_;
    size_t threads_ = 1;
    std::shared_ptr<ThreadPool> pool_;
    mutable std::mutex stats_mutex_;
    mutable std::string region_ = "untagged";
    mutable std::map<std::string, RegionStats> stats_;
};

/**
 * Fixed chunk width for reduceChunked: the reduction tree's shape is a
 * function of the item count alone, never of the thread count.
 */
inline constexpr size_t kReduceChunk = 2048;

/**
 * Deterministic chunked reduction over [0, n): @p chunk_fn maps each
 * fixed-width chunk [begin, end) to a partial of type T (chunks run in
 * parallel under @p exec, serially when exec is null), then the
 * partials are combined by a fixed-shape pairwise tree in index order.
 * Identical chunk boundaries and combine shape for every thread count
 * make the result bit-identical to the serial pass for any @p combine,
 * associative or not.
 */
template <typename T, typename ChunkFn, typename CombineFn>
T
reduceChunked(const ExecContext *exec, size_t n, const T &identity,
              ChunkFn &&chunk_fn, CombineFn &&combine,
              size_t chunk = kReduceChunk)
{
    if (n == 0)
        return identity;
    if (chunk == 0)
        chunk = kReduceChunk;
    size_t chunks = (n + chunk - 1) / chunk;
    std::vector<T> level(chunks, identity);
    auto run = [&](size_t c_begin, size_t c_end) {
        for (size_t c = c_begin; c < c_end; ++c) {
            size_t begin = c * chunk;
            size_t end = begin + chunk < n ? begin + chunk : n;
            level[c] = chunk_fn(begin, end);
        }
    };
    if (exec)
        exec->parallelFor(chunks, /*serial_cutoff=*/2, run);
    else
        run(0, chunks);
    // Fixed-shape pairwise tree: (0,1)(2,3)... per level, odd tail
    // carried up unchanged.
    while (level.size() > 1) {
        size_t pairs = level.size() / 2;
        std::vector<T> next;
        next.reserve(pairs + (level.size() & 1));
        for (size_t i = 0; i < pairs; ++i)
            next.push_back(combine(level[2 * i], level[2 * i + 1]));
        if (level.size() & 1)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level.front();
}

} // namespace bzk::exec

#endif // BZK_EXEC_EXECCONTEXT_H_
