#include "exec/ExecContext.h"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "util/ThreadPool.h"
#include "util/Timer.h"

namespace bzk::exec {

namespace {

/** CLI override (setDefaultThreads); 0 = unset. */
std::atomic<size_t> g_default_threads{0};

/**
 * True while the current thread is inside a parallelFor chunk: nested
 * parallel regions run inline instead of re-entering the shared pool
 * (a worker waiting on its own pool would deadlock).
 */
thread_local bool tl_in_parallel_region = false;

size_t
envThreads()
{
    const char *env = std::getenv("BZK_THREADS");
    if (!env || !*env)
        return 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || (end && *end != '\0'))
        return 0;
    return static_cast<size_t>(v);
}

/**
 * Process-wide pool cache, one pool per resolved thread count. Pools
 * live for the process so repeated ExecContext construction (one per
 * proving front-end run) costs a map lookup, not a thread spawn.
 */
std::shared_ptr<ThreadPool>
sharedPool(size_t threads)
{
    static std::mutex mutex;
    static std::map<size_t, std::shared_ptr<ThreadPool>> pools;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = pools.find(threads);
    if (it != pools.end())
        return it->second;
    auto pool = std::make_shared<ThreadPool>(threads);
    pools.emplace(threads, pool);
    return pool;
}

} // namespace

void
setDefaultThreads(size_t threads)
{
    g_default_threads.store(threads, std::memory_order_relaxed);
}

size_t
resolveThreads(size_t requested)
{
    if (requested > 0)
        return requested;
    size_t v = g_default_threads.load(std::memory_order_relaxed);
    if (v > 0)
        return v;
    v = envThreads();
    if (v > 0)
        return v;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ExecContext::ExecContext(ExecConfig cfg) : cfg_(cfg)
{
    threads_ = resolveThreads(cfg_.threads);
    if (threads_ > 1)
        pool_ = sharedPool(threads_);
}

void
ExecContext::parallelFor(
    size_t n, const std::function<void(size_t, size_t)> &body) const
{
    parallelFor(n, cfg_.serial_cutoff, body);
}

void
ExecContext::parallelFor(
    size_t n, size_t serial_cutoff,
    const std::function<void(size_t, size_t)> &body) const
{
    if (n == 0)
        return;
    Timer wall;
    if (!pool_ || n < serial_cutoff || tl_in_parallel_region) {
        body(0, n);
        double ms = wall.milliseconds();
        account(ms, ms);
        return;
    }
    std::atomic<int64_t> busy_us{0};
    pool_->parallelFor(n, [&body, &busy_us](size_t begin, size_t end) {
        // Exception-safe flag scope: the chunk may throw through
        // ThreadPool's fence and the worker must not stay marked.
        struct FlagScope
        {
            FlagScope() { tl_in_parallel_region = true; }
            ~FlagScope() { tl_in_parallel_region = false; }
        } scope;
        Timer chunk;
        body(begin, end);
        busy_us.fetch_add(static_cast<int64_t>(chunk.milliseconds() * 1e3),
                          std::memory_order_relaxed);
    });
    account(wall.milliseconds(),
            static_cast<double>(busy_us.load(std::memory_order_relaxed)) /
                1e3);
}

void
ExecContext::setRegion(const char *name) const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    region_ = name;
}

void
ExecContext::account(double wall_ms, double busy_ms) const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    RegionStats &s = stats_[region_];
    s.wall_ms += wall_ms;
    s.busy_ms += busy_ms;
    ++s.calls;
}

RegionStats
ExecContext::stats(const std::string &region) const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    auto it = stats_.find(region);
    return it == stats_.end() ? RegionStats{} : it->second;
}

RegionStats
ExecContext::totals() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    RegionStats total;
    for (const auto &kv : stats_) {
        total.wall_ms += kv.second.wall_ms;
        total.busy_ms += kv.second.busy_ms;
        total.calls += kv.second.calls;
    }
    return total;
}

double
ExecContext::parallelEfficiency() const
{
    RegionStats total = totals();
    if (total.wall_ms <= 0.0)
        return 1.0;
    double eff =
        total.busy_ms / (total.wall_ms * static_cast<double>(threads_));
    return eff > 1.0 ? 1.0 : eff;
}

void
ExecContext::resetStats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.clear();
}

} // namespace bzk::exec
