#include "journal/Crc32.h"

#include <array>

namespace bzk::journal {

namespace {

std::array<uint32_t, 256>
buildTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(std::span<const uint8_t> data, uint32_t seed)
{
    static const std::array<uint32_t, 256> table = buildTable();
    uint32_t c = seed ^ 0xffffffffu;
    for (uint8_t byte : data)
        c = table[(c ^ byte) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace bzk::journal
