#ifndef BZK_JOURNAL_CRC32_H_
#define BZK_JOURNAL_CRC32_H_

/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for journal
 * record checksums. A torn write — the tail of a record missing after a
 * crash — or a bit flip on disk must be detected before a record is
 * replayed, so every record carries the CRC of its body. The
 * implementation is the standard byte-at-a-time table walk; speed is
 * irrelevant next to the fsync the record is about to pay for.
 */

#include <cstdint>
#include <span>

namespace bzk::journal {

/**
 * CRC-32 of @p data, continuing from @p seed (pass the previous return
 * value to checksum a buffer in pieces; 0 starts a fresh checksum).
 */
uint32_t crc32(std::span<const uint8_t> data, uint32_t seed = 0);

} // namespace bzk::journal

#endif // BZK_JOURNAL_CRC32_H_
