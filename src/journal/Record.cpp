#include "journal/Record.h"

#include <cstring>

#include "core/Bytes.h"
#include "journal/Crc32.h"

namespace bzk::journal {

namespace {

constexpr char kMagic[4] = {'B', 'Z', 'K', 'J'};

/** Shared preamble check for the typed body decoders. */
bool
readBodyHeader(ByteReader &r, RecordType expected)
{
    uint8_t type = r.u8();
    uint8_t version = r.u8();
    return r.ok() && type == static_cast<uint8_t>(expected) &&
           version == kJournalVersion;
}

} // namespace

std::array<uint8_t, kSegmentHeaderBytes>
encodeSegmentHeader(const SegmentHeader &header)
{
    ByteWriter w;
    w.raw(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(kMagic), 4));
    w.u8(kJournalVersion);
    w.u64(header.index);
    std::vector<uint8_t> prefix = w.take();
    uint32_t crc = crc32(prefix);
    ByteWriter tail;
    tail.u32(crc);
    std::vector<uint8_t> crc_bytes = tail.take();

    std::array<uint8_t, kSegmentHeaderBytes> out{};
    std::memcpy(out.data(), prefix.data(), prefix.size());
    std::memcpy(out.data() + prefix.size(), crc_bytes.data(),
                crc_bytes.size());
    return out;
}

std::optional<SegmentHeader>
decodeSegmentHeader(std::span<const uint8_t> bytes)
{
    if (bytes.size() < kSegmentHeaderBytes)
        return std::nullopt;
    if (std::memcmp(bytes.data(), kMagic, 4) != 0)
        return std::nullopt;
    ByteReader r(bytes.subspan(4, kSegmentHeaderBytes - 4));
    uint8_t version = r.u8();
    uint64_t index = r.u64();
    uint32_t stored_crc = r.u32();
    if (!r.ok() || version != kJournalVersion)
        return std::nullopt;
    if (crc32(bytes.first(kSegmentHeaderBytes - 4)) != stored_crc)
        return std::nullopt;
    return SegmentHeader{index};
}

const char *
recordDecodeErrorName(RecordDecodeError error)
{
    switch (error) {
      case RecordDecodeError::Ok:
        return "ok";
      case RecordDecodeError::Malformed:
        return "malformed";
      case RecordDecodeError::BadType:
        return "bad-type";
      case RecordDecodeError::BadVersion:
        return "bad-version";
      case RecordDecodeError::UnknownKind:
        return "unknown-kind";
    }
    return "unknown";
}

std::vector<uint8_t>
encodeTaskRecord(const TaskRecord &record)
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(RecordType::Task));
    w.u8(kTaskRecordVersion);
    w.u64(record.task_id);
    w.u32(record.n_vars);
    w.u32(static_cast<uint32_t>(record.priority));
    w.u64(record.seed);
    w.u8(static_cast<uint8_t>(record.kind));
    return w.take();
}

RecordDecodeError
decodeTaskRecordChecked(std::span<const uint8_t> body, TaskRecord *out)
{
    ByteReader r(body);
    uint8_t type = r.u8();
    uint8_t version = r.u8();
    if (!r.ok())
        return RecordDecodeError::Malformed;
    if (type != static_cast<uint8_t>(RecordType::Task))
        return RecordDecodeError::BadType;
    if (version < 1 || version > kTaskRecordVersion)
        return RecordDecodeError::BadVersion;
    TaskRecord record;
    record.task_id = r.u64();
    record.n_vars = r.u32();
    record.priority = static_cast<int32_t>(r.u32());
    record.seed = r.u64();
    if (version >= 2) {
        uint8_t kind_byte = r.u8();
        if (!r.ok() || r.remaining() != 0)
            return RecordDecodeError::Malformed;
        auto kind = sched::protocolKindFromByte(kind_byte);
        if (!kind)
            return RecordDecodeError::UnknownKind;
        record.kind = *kind;
    } else {
        // v1 bodies predate protocol kinds: legacy workload.
        record.kind = sched::ProtocolKind::TableCommit;
    }
    if (!r.ok() || r.remaining() != 0)
        return RecordDecodeError::Malformed;
    *out = record;
    return RecordDecodeError::Ok;
}

std::optional<TaskRecord>
decodeTaskRecord(std::span<const uint8_t> body)
{
    TaskRecord record;
    if (decodeTaskRecordChecked(body, &record) != RecordDecodeError::Ok)
        return std::nullopt;
    return record;
}

std::vector<uint8_t>
encodeCompletionRecord(const CompletionRecord &record)
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(RecordType::Completion));
    w.u8(kJournalVersion);
    w.u64(record.task_id);
    w.u32(record.n_vars);
    w.u64(record.seed);
    w.u32(static_cast<uint32_t>(record.proof.size()));
    w.raw(record.proof);
    return w.take();
}

std::optional<CompletionRecord>
decodeCompletionRecord(std::span<const uint8_t> body)
{
    ByteReader r(body);
    if (!readBodyHeader(r, RecordType::Completion))
        return std::nullopt;
    CompletionRecord record;
    record.task_id = r.u64();
    record.n_vars = r.u32();
    record.seed = r.u64();
    size_t len = r.length(kMaxRecordBytes);
    if (!r.ok() || r.remaining() != len)
        return std::nullopt;
    record.proof.resize(len);
    for (auto &b : record.proof)
        b = r.u8();
    if (!r.ok())
        return std::nullopt;
    return record;
}

std::optional<RecordType>
recordType(std::span<const uint8_t> body)
{
    if (body.empty())
        return std::nullopt;
    switch (body[0]) {
      case static_cast<uint8_t>(RecordType::Task):
        return RecordType::Task;
      case static_cast<uint8_t>(RecordType::Completion):
        return RecordType::Completion;
      default:
        return std::nullopt;
    }
}

std::vector<uint8_t>
frameRecord(std::span<const uint8_t> body)
{
    ByteWriter w;
    w.u32(static_cast<uint32_t>(body.size()));
    w.u32(crc32(body));
    w.raw(body);
    return w.take();
}

} // namespace bzk::journal
