#ifndef BZK_JOURNAL_RECORD_H_
#define BZK_JOURNAL_RECORD_H_

/**
 * @file
 * On-disk record formats for the durable task journal.
 *
 * A journal segment is a fixed header followed by a sequence of framed
 * records:
 *
 *   segment header (17 bytes):
 *     magic "BZKJ" | version u8 | segment index u64 LE | crc32 u32
 *     (the CRC covers the preceding 13 bytes)
 *
 *   record frame:
 *     body length u32 LE | crc32(body) u32 LE | body
 *
 *   record body:
 *     type u8 | version u8 | payload
 *
 * Everything is little-endian via core/Bytes.h. The frame CRC is what
 * makes a torn tail write (crash mid-append) or a flipped payload bit
 * detectable: replay verifies the CRC before decoding a body, and a
 * decoder additionally rejects unknown types and versions, so a
 * corrupted record is never replayed as work.
 */

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace bzk::journal {

/** Format version written into every record body (and the header). */
constexpr uint8_t kJournalVersion = 1;

/** Segment header size on disk, bytes. */
constexpr size_t kSegmentHeaderBytes = 17;

/** Per-record frame overhead (length + CRC), bytes. */
constexpr size_t kRecordFrameBytes = 8;

/** Largest record body replay will accept (caps hostile lengths). */
constexpr size_t kMaxRecordBytes = size_t{1} << 26;

/** Kinds of journal record. */
enum class RecordType : uint8_t {
    /** A task was admitted and must eventually complete. */
    Task = 1,
    /** A task's proof was produced (and verified) — the ack. */
    Completion = 2,
};

/** Fixed per-segment preamble. */
struct SegmentHeader
{
    /** Monotonic segment index; replay scans in index order. */
    uint64_t index = 0;

    bool operator==(const SegmentHeader &o) const = default;
};

/** An admitted proof task: everything needed to re-prove it. */
struct TaskRecord
{
    /** Caller-assigned idempotency key. */
    uint64_t task_id = 0;
    /** Constraint-table log-size. */
    uint32_t n_vars = 0;
    /** Scheduling priority (sched::ProofTask::priority). */
    int32_t priority = 0;
    /** Public encoder seed; with task_id it pins the instance. */
    uint64_t seed = 0;

    bool operator==(const TaskRecord &o) const = default;
};

/** A completed proof for a journaled task. */
struct CompletionRecord
{
    /** TaskRecord::task_id this completes. */
    uint64_t task_id = 0;
    /** Constraint-table log-size (self-contained verification). */
    uint32_t n_vars = 0;
    /** Encoder seed the proof verifies under. */
    uint64_t seed = 0;
    /** Serialized proof (may be empty for simulation-only services). */
    std::vector<uint8_t> proof;

    bool operator==(const CompletionRecord &o) const = default;
};

/** Encode the segment preamble (kSegmentHeaderBytes bytes). */
std::array<uint8_t, kSegmentHeaderBytes>
encodeSegmentHeader(const SegmentHeader &header);

/**
 * Decode and validate a segment preamble; nullopt when the magic,
 * version, or CRC does not check out.
 */
std::optional<SegmentHeader>
decodeSegmentHeader(std::span<const uint8_t> bytes);

/** Encode a task record body (type + version + payload, no frame). */
std::vector<uint8_t> encodeTaskRecord(const TaskRecord &record);

/** Decode a task record body; nullopt on bad type/version/shape. */
std::optional<TaskRecord>
decodeTaskRecord(std::span<const uint8_t> body);

/** Encode a completion record body. */
std::vector<uint8_t>
encodeCompletionRecord(const CompletionRecord &record);

/** Decode a completion record body; nullopt on bad type/version/shape. */
std::optional<CompletionRecord>
decodeCompletionRecord(std::span<const uint8_t> body);

/** Peek a body's record type without decoding; nullopt if unknown. */
std::optional<RecordType> recordType(std::span<const uint8_t> body);

/** Frame a record body for disk: length, CRC, body. */
std::vector<uint8_t> frameRecord(std::span<const uint8_t> body);

} // namespace bzk::journal

#endif // BZK_JOURNAL_RECORD_H_
