#ifndef BZK_JOURNAL_RECORD_H_
#define BZK_JOURNAL_RECORD_H_

/**
 * @file
 * On-disk record formats for the durable task journal.
 *
 * A journal segment is a fixed header followed by a sequence of framed
 * records:
 *
 *   segment header (17 bytes):
 *     magic "BZKJ" | version u8 | segment index u64 LE | crc32 u32
 *     (the CRC covers the preceding 13 bytes)
 *
 *   record frame:
 *     body length u32 LE | crc32(body) u32 LE | body
 *
 *   record body:
 *     type u8 | version u8 | payload
 *
 * Everything is little-endian via core/Bytes.h. The frame CRC is what
 * makes a torn tail write (crash mid-append) or a flipped payload bit
 * detectable: replay verifies the CRC before decoding a body, and a
 * decoder additionally rejects unknown types and versions, so a
 * corrupted record is never replayed as work.
 */

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sched/ProtocolKind.h"

namespace bzk::journal {

/** Segment-header and completion-record format version. */
constexpr uint8_t kJournalVersion = 1;

/**
 * Task-record body version. Version 2 appends the protocol-kind byte;
 * version-1 bodies (written before protocol kinds existed) decode as
 * ProtocolKind::TableCommit, so pre-existing journals replay cleanly.
 */
constexpr uint8_t kTaskRecordVersion = 2;

/** Segment header size on disk, bytes. */
constexpr size_t kSegmentHeaderBytes = 17;

/** Per-record frame overhead (length + CRC), bytes. */
constexpr size_t kRecordFrameBytes = 8;

/** Largest record body replay will accept (caps hostile lengths). */
constexpr size_t kMaxRecordBytes = size_t{1} << 26;

/** Kinds of journal record. */
enum class RecordType : uint8_t {
    /** A task was admitted and must eventually complete. */
    Task = 1,
    /** A task's proof was produced (and verified) — the ack. */
    Completion = 2,
};

/** Fixed per-segment preamble. */
struct SegmentHeader
{
    /** Monotonic segment index; replay scans in index order. */
    uint64_t index = 0;

    bool operator==(const SegmentHeader &o) const = default;
};

/** An admitted proof task: everything needed to re-prove it. */
struct TaskRecord
{
    /** Caller-assigned idempotency key. */
    uint64_t task_id = 0;
    /** Constraint-table log-size. */
    uint32_t n_vars = 0;
    /** Scheduling priority (sched::ProofTask::priority). */
    int32_t priority = 0;
    /** Public encoder seed; with task_id it pins the instance. */
    uint64_t seed = 0;
    /** Proving protocol the task runs (v2 field; v1 = TableCommit). */
    sched::ProtocolKind kind = sched::ProtocolKind::TableCommit;

    bool operator==(const TaskRecord &o) const = default;
};

/** Why a task-record body failed to decode (Ok when it did not). */
enum class RecordDecodeError : uint8_t {
    Ok = 0,
    /** Truncated, oversized, or CRC-passing-but-misshapen body. */
    Malformed,
    /** The body's type byte is not RecordType::Task. */
    BadType,
    /** A task-record version this build does not understand. */
    BadVersion,
    /** A v2 record carrying a protocol kind this build lacks. */
    UnknownKind,
};

/** Stable display name for a decode error. */
const char *recordDecodeErrorName(RecordDecodeError error);

/** A completed proof for a journaled task. */
struct CompletionRecord
{
    /** TaskRecord::task_id this completes. */
    uint64_t task_id = 0;
    /** Constraint-table log-size (self-contained verification). */
    uint32_t n_vars = 0;
    /** Encoder seed the proof verifies under. */
    uint64_t seed = 0;
    /** Serialized proof (may be empty for simulation-only services). */
    std::vector<uint8_t> proof;

    bool operator==(const CompletionRecord &o) const = default;
};

/** Encode the segment preamble (kSegmentHeaderBytes bytes). */
std::array<uint8_t, kSegmentHeaderBytes>
encodeSegmentHeader(const SegmentHeader &header);

/**
 * Decode and validate a segment preamble; nullopt when the magic,
 * version, or CRC does not check out.
 */
std::optional<SegmentHeader>
decodeSegmentHeader(std::span<const uint8_t> bytes);

/** Encode a task record body (type + version + payload, no frame). */
std::vector<uint8_t> encodeTaskRecord(const TaskRecord &record);

/** Decode a task record body; nullopt on bad type/version/shape. */
std::optional<TaskRecord>
decodeTaskRecord(std::span<const uint8_t> body);

/**
 * Decode a task record body with a typed error. Accepts version-1
 * bodies (decoded with kind = TableCommit) and version-2 bodies (kind
 * byte validated against the kinds this build knows). On any error the
 * output record is untouched.
 */
RecordDecodeError
decodeTaskRecordChecked(std::span<const uint8_t> body, TaskRecord *out);

/** Encode a completion record body. */
std::vector<uint8_t>
encodeCompletionRecord(const CompletionRecord &record);

/** Decode a completion record body; nullopt on bad type/version/shape. */
std::optional<CompletionRecord>
decodeCompletionRecord(std::span<const uint8_t> body);

/** Peek a body's record type without decoding; nullopt if unknown. */
std::optional<RecordType> recordType(std::span<const uint8_t> body);

/** Frame a record body for disk: length, CRC, body. */
std::vector<uint8_t> frameRecord(std::span<const uint8_t> body);

} // namespace bzk::journal

#endif // BZK_JOURNAL_RECORD_H_
