#include "journal/Replay.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <set>

#include <dirent.h>
#include <sys/stat.h>

#include "core/Bytes.h"
#include "journal/Crc32.h"
#include "obs/Metrics.h"
#include "util/Log.h"
#include "util/Timer.h"

namespace bzk::journal {

namespace {

/** Parse `wal-<index>.bzkj`; returns false for other directory names. */
bool
parseSegmentName(const std::string &name, uint64_t &index)
{
    const std::string prefix = "wal-";
    const std::string suffix = ".bzkj";
    if (name.size() <= prefix.size() + suffix.size())
        return false;
    if (name.rfind(prefix, 0) != 0)
        return false;
    if (name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return false;
    std::string digits = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        return false;
    index = std::stoull(digits);
    return true;
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::vector<uint8_t> bytes;
    if (!in)
        return bytes;
    in.seekg(0, std::ios::end);
    std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    if (size <= 0)
        return bytes;
    bytes.resize(static_cast<size_t>(size));
    in.read(reinterpret_cast<char *>(bytes.data()), size);
    if (!in)
        bytes.clear();
    return bytes;
}

void
markTorn(ReplayResult &result, uint64_t segment, size_t offset,
         const char *reason)
{
    ++result.torn_records;
    result.torn.torn = true;
    result.torn.segment_index = segment;
    result.torn.offset = offset;
    result.torn.reason = reason;
    warn("journal replay: stopped at segment %llu offset %zu (%s)",
         static_cast<unsigned long long>(segment), offset, reason);
}

} // namespace

ReplayResult
replayJournal(const std::string &dir, obs::MetricsRegistry *metrics)
{
    Timer timer;
    ReplayResult result;

    // Collect segment files. A missing directory is an empty journal.
    std::vector<std::pair<uint64_t, std::string>> files;
    if (DIR *d = ::opendir(dir.c_str())) {
        while (const dirent *entry = ::readdir(d)) {
            uint64_t index = 0;
            if (parseSegmentName(entry->d_name, index))
                files.emplace_back(index,
                                   dir + "/" + entry->d_name);
        }
        ::closedir(d);
    }
    std::sort(files.begin(), files.end());

    std::set<uint64_t> admitted;
    std::vector<TaskRecord> tasks_in_order;

    for (const auto &[index, path] : files) {
        if (result.torn.torn)
            break;
        std::vector<uint8_t> bytes = readFile(path);
        std::span<const uint8_t> data(bytes);

        auto header = decodeSegmentHeader(data);
        if (!header || header->index != index) {
            markTorn(result, index, 0, "bad segment header");
            break;
        }
        ReplaySegment seg;
        seg.index = index;
        seg.path = path;

        size_t pos = kSegmentHeaderBytes;
        while (pos < data.size()) {
            if (data.size() - pos < kRecordFrameBytes) {
                markTorn(result, index, pos, "torn frame");
                break;
            }
            ByteReader frame(data.subspan(pos, kRecordFrameBytes));
            size_t body_len = frame.length(kMaxRecordBytes);
            uint32_t stored_crc = frame.u32();
            if (!frame.ok() ||
                body_len > data.size() - pos - kRecordFrameBytes) {
                markTorn(result, index, pos, "torn tail");
                break;
            }
            auto body = data.subspan(pos + kRecordFrameBytes, body_len);
            if (crc32(body) != stored_crc) {
                markTorn(result, index, pos, "bad crc");
                break;
            }
            auto type = recordType(body);
            if (!type) {
                markTorn(result, index, pos, "unknown record type");
                break;
            }
            if (*type == RecordType::Task) {
                auto task = decodeTaskRecord(body);
                if (!task) {
                    markTorn(result, index, pos, "bad task record");
                    break;
                }
                ++result.task_records;
                if (admitted.insert(task->task_id).second) {
                    tasks_in_order.push_back(*task);
                    seg.admitted.push_back(task->task_id);
                } else {
                    ++result.duplicate_tasks;
                }
            } else {
                auto completion = decodeCompletionRecord(body);
                if (!completion) {
                    markTorn(result, index, pos,
                             "bad completion record");
                    break;
                }
                ++result.completion_records;
                // Last write wins; duplicates carry identical proofs.
                result.completions[completion->task_id] =
                    std::move(*completion);
            }
            ++result.records_replayed;
            pos += kRecordFrameBytes + body_len;
        }
        result.segments.push_back(std::move(seg));
    }

    for (const auto &task : tasks_in_order)
        if (!result.completions.count(task.task_id))
            result.pending.push_back(task);

    result.scan_ms = timer.milliseconds();

    if (metrics) {
        metrics
            ->counter("bzk_journal_replayed_records_total",
                      "valid journal records folded in at replay")
            .add(static_cast<double>(result.records_replayed));
        metrics
            ->counter("bzk_journal_torn_records_total",
                      "invalid records/headers that stopped a replay")
            .add(static_cast<double>(result.torn_records));
        metrics
            ->counter("bzk_journal_duplicates_total",
                      "duplicate task submissions absorbed")
            .add(static_cast<double>(result.duplicate_tasks));
        metrics
            ->gauge("bzk_journal_replay_pending",
                    "tasks left pending by the last replay")
            .set(static_cast<double>(result.pending.size()));
        metrics
            ->gauge("bzk_journal_replay_scan_ms",
                    "wall time of the last journal scan")
            .set(result.scan_ms);
    }
    return result;
}

} // namespace bzk::journal
