#include "journal/Journal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "journal/Replay.h"
#include "obs/Metrics.h"
#include "util/Log.h"

namespace bzk::journal {

namespace {

/** Highest existing segment index in @p dir, or 0 when none. */
uint64_t
maxSegmentIndex(const std::string &dir)
{
    uint64_t max_index = 0;
    if (DIR *d = ::opendir(dir.c_str())) {
        while (const dirent *entry = ::readdir(d)) {
            const std::string name = entry->d_name;
            const std::string prefix = "wal-";
            const std::string suffix = ".bzkj";
            if (name.size() <= prefix.size() + suffix.size() ||
                name.rfind(prefix, 0) != 0 ||
                name.compare(name.size() - suffix.size(),
                             suffix.size(), suffix) != 0)
                continue;
            std::string digits = name.substr(
                prefix.size(),
                name.size() - prefix.size() - suffix.size());
            if (digits.empty() || digits.find_first_not_of(
                                      "0123456789") != std::string::npos)
                continue;
            max_index = std::max(
                max_index, static_cast<uint64_t>(std::stoull(digits)));
        }
        ::closedir(d);
    }
    return max_index;
}

} // namespace

std::string
Journal::segmentPath(const std::string &dir, uint64_t index)
{
    char name[32];
    std::snprintf(name, sizeof(name), "wal-%08llu.bzkj",
                  static_cast<unsigned long long>(index));
    return dir + "/" + name;
}

Journal::Journal(JournalOptions opt, obs::MetricsRegistry *metrics)
    : opt_(std::move(opt)), metrics_(metrics)
{
    if (opt_.dir.empty())
        fatal("journal: --journal-dir must not be empty");
    if (::mkdir(opt_.dir.c_str(), 0755) != 0 && errno != EEXIST)
        fatal("journal: cannot create directory '%s': %s",
              opt_.dir.c_str(), std::strerror(errno));
    // Never append to a segment a previous incarnation wrote — its
    // tail may be torn. Always start a fresh one.
    current_index_ = maxSegmentIndex(opt_.dir) + 1;
    openNextSegment();
}

Journal::~Journal()
{
    close();
}

void
Journal::openNextSegment()
{
    if (fd_ >= 0) {
        sync();
        ::close(fd_);
        fd_ = -1;
        ++current_index_;
    }
    std::string path = segmentPath(opt_.dir, current_index_);
    fd_ = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd_ < 0)
        fatal("journal: cannot create segment '%s': %s", path.c_str(),
              std::strerror(errno));
    auto header = encodeSegmentHeader(SegmentHeader{current_index_});
    if (::write(fd_, header.data(), header.size()) !=
        static_cast<ssize_t>(header.size()))
        fatal("journal: short write of segment header '%s'",
              path.c_str());
    current_segment_bytes_ = header.size();
    stats_.bytes_appended += header.size();
    ++stats_.segments_created;
    segments_.push_back(SegmentState{current_index_, {}});
    if (opt_.fsync_appends)
        sync();
    if (metrics_)
        metrics_
            ->counter("bzk_journal_segments_created_total",
                      "journal segments opened for appending")
            .add(1.0);
}

void
Journal::appendFramed(std::span<const uint8_t> body)
{
    if (fd_ < 0)
        panic("journal: append after close");
    std::vector<uint8_t> frame = frameRecord(body);
    if (::write(fd_, frame.data(), frame.size()) !=
        static_cast<ssize_t>(frame.size()))
        fatal("journal: short write appending %zu bytes to segment "
              "%llu",
              frame.size(),
              static_cast<unsigned long long>(current_index_));
    current_segment_bytes_ += frame.size();
    stats_.bytes_appended += frame.size();
    if (opt_.fsync_appends)
        sync();
    if (metrics_) {
        metrics_
            ->counter("bzk_journal_appended_total",
                      "records appended to the journal")
            .add(1.0);
        metrics_
            ->counter("bzk_journal_bytes_total",
                      "bytes appended to the journal")
            .add(static_cast<double>(frame.size()));
    }
}

void
Journal::append(const TaskRecord &record)
{
    appendFramed(encodeTaskRecord(record));
    ++stats_.task_appends;
    // The task belongs to the segment its bytes landed in, even if the
    // very next append rotates.
    segments_.back().open_tasks.insert(record.task_id);
    task_segment_[record.task_id] = current_index_;
    if (metrics_)
        metrics_
            ->counter("bzk_journal_task_appends_total",
                      "admitted tasks journaled")
            .add(1.0);
    if (current_segment_bytes_ >= opt_.segment_bytes)
        openNextSegment();
}

void
Journal::append(const CompletionRecord &record)
{
    appendFramed(encodeCompletionRecord(record));
    ++stats_.completion_appends;
    if (metrics_)
        metrics_
            ->counter("bzk_journal_completion_appends_total",
                      "task completions journaled")
            .add(1.0);
    auto it = task_segment_.find(record.task_id);
    if (it != task_segment_.end()) {
        for (auto &segment : segments_)
            if (segment.index == it->second) {
                segment.open_tasks.erase(record.task_id);
                break;
            }
        task_segment_.erase(it);
    }
    retireAckedPrefix();
    if (current_segment_bytes_ >= opt_.segment_bytes)
        openNextSegment();
}

void
Journal::adoptReplayed(const ReplayResult &replayed)
{
    // Rebuild the retirement bookkeeping for segments an earlier
    // incarnation wrote: a replayed task without a replayed completion
    // is still open in its segment.
    std::deque<SegmentState> old_segments;
    for (const auto &seg : replayed.segments) {
        if (seg.index >= current_index_)
            continue;
        SegmentState state;
        state.index = seg.index;
        for (uint64_t id : seg.admitted)
            if (!replayed.completions.count(id)) {
                state.open_tasks.insert(id);
                task_segment_[id] = seg.index;
            }
        old_segments.push_back(std::move(state));
    }
    segments_.insert(segments_.begin(), old_segments.begin(),
                     old_segments.end());
    retireAckedPrefix();
}

void
Journal::retireAckedPrefix()
{
    while (segments_.size() > 1 &&
           segments_.front().open_tasks.empty()) {
        std::string path =
            segmentPath(opt_.dir, segments_.front().index);
        if (::unlink(path.c_str()) != 0 && errno != ENOENT)
            warn("journal: cannot retire segment '%s': %s",
                 path.c_str(), std::strerror(errno));
        segments_.pop_front();
        ++stats_.segments_retired;
        if (metrics_)
            metrics_
                ->counter("bzk_journal_segments_retired_total",
                          "fully-acked journal segments unlinked")
                .add(1.0);
    }
}

void
Journal::sync()
{
    if (fd_ < 0)
        return;
    if (::fsync(fd_) != 0)
        fatal("journal: fsync failed on segment %llu: %s",
              static_cast<unsigned long long>(current_index_),
              std::strerror(errno));
    ++stats_.fsyncs;
    if (metrics_)
        metrics_
            ->counter("bzk_journal_fsyncs_total",
                      "fsync calls on journal segments")
            .add(1.0);
}

void
Journal::close()
{
    if (fd_ < 0)
        return;
    sync();
    ::close(fd_);
    fd_ = -1;
}

} // namespace bzk::journal
