#ifndef BZK_JOURNAL_JOURNAL_H_
#define BZK_JOURNAL_JOURNAL_H_

/**
 * @file
 * Append-only write-ahead journal of admitted tasks and completed
 * proofs, modeled on CredaCash's WAL discipline (dbconn-wal/dblog): a
 * record is framed, CRC'd, appended, and fsync'd *before* the work it
 * describes is acknowledged, so an admitted task survives any crash of
 * the process that accepted it.
 *
 * The journal is a directory of segments (`wal-<index>.bzkj`). The
 * writer appends to one segment at a time and rotates to a fresh one
 * when the current segment exceeds the configured size. A restart never
 * appends to an old segment — the tail of the last segment may be torn
 * from the crash — it always opens the next index.
 *
 * Retirement: a segment is fully acked once every task admitted in it
 * has a completion recorded. Fully-acked segments are unlinked
 * oldest-first (a completion is always journaled at or after its task's
 * segment, so a retired prefix can only drop completions for tasks that
 * are themselves retired). The journal is a recovery log, not a proof
 * archive: retiring a segment discards the proofs journaled in it, by
 * design — they were delivered when their completions were appended.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "journal/Record.h"

namespace bzk::obs {
class MetricsRegistry;
} // namespace bzk::obs

namespace bzk::journal {

struct ReplayResult;

/** Writer configuration. */
struct JournalOptions
{
    /** Directory holding the segments (created if absent). */
    std::string dir;
    /** Rotate to a fresh segment beyond this many bytes. */
    size_t segment_bytes = size_t{1} << 20;
    /**
     * fsync after every append (the WAL guarantee). Disabling trades
     * durability of the most recent records for throughput; recovery
     * still stops cleanly at the torn tail.
     */
    bool fsync_appends = true;
};

/** Monotonic writer-side counters (mirrored into bzk_journal_*). */
struct JournalStats
{
    size_t task_appends = 0;
    size_t completion_appends = 0;
    size_t fsyncs = 0;
    uint64_t bytes_appended = 0;
    size_t segments_created = 0;
    size_t segments_retired = 0;
};

/** The append side of the durable proof ledger. */
class Journal
{
  public:
    /**
     * Open @p opt.dir for appending. Existing segments are never
     * touched: the writer continues at the next free segment index.
     * @p metrics (not owned, may be nullptr) receives bzk_journal_*
     * counters as records are appended.
     */
    explicit Journal(JournalOptions opt,
                     obs::MetricsRegistry *metrics = nullptr);

    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Durably record an admitted task. On return the record is written
     * and (with fsync_appends) synced: the task can no longer be lost.
     */
    void append(const TaskRecord &record);

    /**
     * Durably record a task's completion (the ack). Retires any
     * fully-acked prefix segments afterwards.
     */
    void append(const CompletionRecord &record);

    /**
     * Adopt the segments an earlier incarnation left behind so that
     * retirement keeps working across restarts: replayed segments whose
     * tasks are all completed are retired immediately; the rest retire
     * as this writer appends their missing completions.
     */
    void adoptReplayed(const ReplayResult &replayed);

    /** Flush and fsync the current segment. */
    void sync();

    /** Close the current segment (the destructor also does this). */
    void close();

    const JournalStats &stats() const { return stats_; }

    const std::string &dir() const { return opt_.dir; }

    /** Index of the segment currently being appended to. */
    uint64_t currentSegmentIndex() const { return current_index_; }

    /** Segments on disk that this writer knows about (incl. current). */
    size_t liveSegments() const { return segments_.size(); }

    /** Path of segment @p index under @p dir (naming convention). */
    static std::string segmentPath(const std::string &dir,
                                   uint64_t index);

  private:
    struct SegmentState
    {
        uint64_t index = 0;
        /** Tasks admitted in this segment without a completion yet. */
        std::set<uint64_t> open_tasks;
    };

    void openNextSegment();
    void appendFramed(std::span<const uint8_t> body);
    void retireAckedPrefix();

    JournalOptions opt_;
    obs::MetricsRegistry *metrics_ = nullptr;
    int fd_ = -1;
    uint64_t current_index_ = 0;
    size_t current_segment_bytes_ = 0;
    std::deque<SegmentState> segments_;
    /** task_id -> index of the segment that admitted it. */
    std::map<uint64_t, uint64_t> task_segment_;
    JournalStats stats_;
};

} // namespace bzk::journal

#endif // BZK_JOURNAL_JOURNAL_H_
