#ifndef BZK_JOURNAL_REPLAY_H_
#define BZK_JOURNAL_REPLAY_H_

/**
 * @file
 * Startup scan of a journal directory.
 *
 * Replay walks the segments in index order, validates every header and
 * record frame (length bound, CRC, type, version), and folds the valid
 * prefix into task / completion sets. At the FIRST invalid byte — a
 * torn tail from a crash mid-append, a flipped bit, a zeroed header —
 * the scan stops cleanly and reports where and why; nothing at or past
 * the tear is replayed. Tasks without a completion in the valid prefix
 * are the pending set the service must re-submit (at-least-once
 * delivery; task IDs are idempotency keys, so re-proving a task that
 * actually completed just beyond the tear yields the same proof).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "journal/Record.h"

namespace bzk::obs {
class MetricsRegistry;
} // namespace bzk::obs

namespace bzk::journal {

/** Where and why a scan stopped early. */
struct TornInfo
{
    /** True when the scan hit an invalid header or record. */
    bool torn = false;
    /** Segment index of the tear. */
    uint64_t segment_index = 0;
    /** Byte offset of the first invalid byte within that segment. */
    size_t offset = 0;
    /** Human-readable cause ("bad crc", "torn tail", ...). */
    std::string reason;
};

/** One scanned segment (valid-prefix view). */
struct ReplaySegment
{
    uint64_t index = 0;
    std::string path;
    /** Task IDs admitted by this segment's valid records. */
    std::vector<uint64_t> admitted;
};

/** Everything recovery needs from a journal directory. */
struct ReplayResult
{
    /** Tasks admitted without a completion, in first-admission order. */
    std::vector<TaskRecord> pending;
    /** Completed task -> its journaled completion record. */
    std::map<uint64_t, CompletionRecord> completions;
    /** Segments scanned, in index order (the valid prefix only). */
    std::vector<ReplaySegment> segments;
    /** All valid records folded in. */
    size_t records_replayed = 0;
    size_t task_records = 0;
    size_t completion_records = 0;
    /** Task records whose ID was already admitted. */
    size_t duplicate_tasks = 0;
    /** Invalid headers/records encountered (scan stops at the first). */
    size_t torn_records = 0;
    TornInfo torn;
    /** Wall time of the scan, ms. */
    double scan_ms = 0.0;
};

/**
 * Scan @p dir (missing or empty directories replay to an empty
 * result). @p metrics (not owned, may be nullptr) receives the
 * bzk_journal_replayed/torn/duplicates counters and the replay gauges.
 */
ReplayResult replayJournal(const std::string &dir,
                           obs::MetricsRegistry *metrics = nullptr);

} // namespace bzk::journal

#endif // BZK_JOURNAL_REPLAY_H_
