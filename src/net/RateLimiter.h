#ifndef BZK_NET_RATELIMITER_H_
#define BZK_NET_RATELIMITER_H_

/**
 * @file
 * Token-bucket rate limiter, one per tenant. Tokens refill continuously
 * at the configured rate up to the burst size; a submit takes one token
 * or is told how long until one is available (the RETRY hint). All time
 * is caller-supplied milliseconds, so the limiter is deterministic
 * under test and shares the server loop's single clock read.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace bzk::net {

/** Continuous-refill token bucket. */
class TokenBucket
{
  public:
    /**
     * @param rate_per_s tokens per second; <= 0 disables limiting.
     * @param burst bucket size; <= 0 defaults to one second of tokens
     *        (and at least one token, so a positive rate never locks
     *        out the first submit).
     */
    TokenBucket(double rate_per_s = 0.0, double burst = 0.0)
        : rate_per_ms_(rate_per_s / 1e3),
          burst_(burst > 0.0 ? burst : std::max(rate_per_s, 1.0)),
          tokens_(burst_)
    {
    }

    /** True when limiting is disabled. */
    bool unlimited() const { return rate_per_ms_ <= 0.0; }

    /** Take one token at @p now_ms; false when the bucket is empty. */
    bool
    tryTake(double now_ms)
    {
        if (unlimited())
            return true;
        refill(now_ms);
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

    /** Whole ms until one token is available at @p now_ms (>= 1). */
    uint32_t
    retryAfterMs(double now_ms)
    {
        if (unlimited())
            return 0;
        refill(now_ms);
        if (tokens_ >= 1.0)
            return 1;
        double wait = (1.0 - tokens_) / rate_per_ms_;
        return static_cast<uint32_t>(
            std::min(std::ceil(wait), 60'000.0));
    }

    /** Tokens currently available (tests). */
    double
    available(double now_ms)
    {
        refill(now_ms);
        return tokens_;
    }

  private:
    void
    refill(double now_ms)
    {
        if (now_ms > last_ms_) {
            tokens_ = std::min(
                burst_, tokens_ + (now_ms - last_ms_) * rate_per_ms_);
            last_ms_ = now_ms;
        }
    }

    double rate_per_ms_;
    double burst_;
    double tokens_;
    double last_ms_ = 0.0;
};

} // namespace bzk::net

#endif // BZK_NET_RATELIMITER_H_
