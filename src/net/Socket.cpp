#include "net/Socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace bzk::net {

namespace {

sockaddr_in
loopbackAddr(uint16_t port)
{
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
}

} // namespace

void
Fd::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Fd
listenTcp(uint16_t port, int backlog)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return {};
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = loopbackAddr(port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd.get(), backlog) != 0 || !setNonBlocking(fd.get()))
        return {};
    return fd;
}

Fd
connectTcp(uint16_t port)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return {};
    sockaddr_in addr = loopbackAddr(port);
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return {};
    return fd;
}

Fd
connectTcpNonBlocking(uint16_t port)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid() || !setNonBlocking(fd.get()))
        return {};
    sockaddr_in addr = loopbackAddr(port);
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0 &&
        errno != EINPROGRESS)
        return {};
    return fd;
}

uint16_t
localPort(int fd)
{
    sockaddr_in addr = {};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) != 0)
        return 0;
    return ntohs(addr.sin_port);
}

ptrdiff_t
sendSome(int fd, std::span<const uint8_t> data)
{
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0)
        return n;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        return 0;
    return -1;
}

ptrdiff_t
recvSome(int fd, std::span<uint8_t> buf)
{
    ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n > 0)
        return n;
    if (n == 0)
        return -1; // orderly EOF: treat as closed
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        return 0;
    return -1;
}

} // namespace bzk::net
