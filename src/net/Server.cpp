#include "net/Server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"
#include "gpusim/DeviceSpec.h"
#include "net/RateLimiter.h"
#include "net/Socket.h"
#include "sched/AdmissionQueue.h"
#include "sched/CycleModel.h"
#include "util/Log.h"

namespace bzk::net {

namespace {

/** Epoll identities below this are not connections. */
constexpr uint64_t kListenerId = 0;
constexpr uint64_t kEventId = 1;
constexpr uint64_t kFirstConnId = 2;

/** Per-connection output backlog cap (slow-consumer guard), bytes. */
constexpr size_t kMaxConnBacklog = size_t{64} << 20;

/** Latency histogram bounds, ms. */
const std::vector<double> kLatencyBounds = {1,   2,   5,    10,   20,  50,
                                            100, 200, 500,  1000, 2000,
                                            5000};

gpusim::DeviceSpec
specByName(const std::string &name)
{
    for (const auto &spec : gpusim::DeviceSpec::allPresets())
        if (spec.name == name)
            return spec;
    warn("ProofServer: unknown device '%s', pacing with GH200",
         name.c_str());
    return gpusim::DeviceSpec::gh200();
}

/** One accepted connection's protocol state. */
struct Connection
{
    enum class State { AwaitHello, Open, Closing };

    Fd fd;
    State state = State::AwaitHello;
    uint64_t tenant = 0;
    /**
     * Wire version negotiated by the Hello handshake; every frame the
     * server sends on this connection is encoded at it. Until the
     * handshake completes it stays at the oldest version, so a
     * pre-handshake ProtoError is parseable by any peer.
     */
    uint8_t version = kMinWireVersion;
    FrameDecoder decoder;
    std::vector<uint8_t> out;
    size_t out_pos = 0;
    bool want_write = false;
    /** Tasks admitted from this connection, not yet answered. */
    size_t inflight = 0;
};

/** A submit waiting in the admission queue. */
struct NetTask
{
    uint64_t conn_id = 0;
    uint64_t tenant = 0;
    Submit submit;
    double submitted_ms = 0.0;
};

/** A task handed to a worker. */
struct WorkItem
{
    uint64_t conn_id = 0;
    uint64_t tenant = 0;
    Submit submit;
    double submitted_ms = 0.0;
};

/** A finished proof on its way back to the loop thread. */
struct Completion
{
    uint64_t conn_id = 0;
    uint64_t tenant = 0;
    Result result;
    double submitted_ms = 0.0;
};

} // namespace

struct ProofServer::Impl
{
    Impl(ServerOptions o, ProofExecutor &e, obs::MetricsRegistry *m)
        : opt(std::move(o)), executor(e), metrics(m),
          // The queue deadline is enforced here against the aligned
          // payload deque (sweepDeadline), not inside the
          // AdmissionQueue, so expiry fires even while the in-flight
          // window is full.
          admission(sched::AdmissionOptions{
              .timeout_ms = 0.0,
              .max_retries = 0,
              .backoff_base_ms = 0.0,
              .queue_capacity = opt.queue_capacity})
    {
    }

    ServerOptions opt;
    ProofExecutor &executor;
    obs::MetricsRegistry *metrics = nullptr;

    Fd listener;
    Fd epoll;
    Fd event;
    std::thread loop;
    std::vector<std::thread> workers;
    std::atomic<bool> running{false};
    std::atomic<bool> stopping{false};

    /// @name Worker handoff
    /// @{
    std::mutex work_mu;
    std::condition_variable work_cv;
    std::deque<WorkItem> work;
    std::mutex comp_mu;
    std::deque<Completion> completions;
    /// @}

    /// @name Loop-thread-only state
    /// @{
    std::unordered_map<uint64_t, Connection> conns;
    uint64_t next_conn_id = kFirstConnId;
    sched::AdmissionQueue admission;
    std::deque<NetTask> payloads;
    std::unordered_map<uint64_t, TokenBucket> buckets;
    size_t inflight = 0;
    size_t window = 1;
    double cycle_ms = 0.0;
    std::chrono::steady_clock::time_point t0;
    /// @}

    mutable std::mutex stats_mu;
    ServerStats stats;

    double
    nowMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }

    /** Mutate the stats snapshot under its lock. */
    template <typename F>
    void
    bump(F f)
    {
        std::lock_guard<std::mutex> lk(stats_mu);
        f(stats);
    }

    void
    count(const char *name, const char *help, double v = 1.0)
    {
        if (metrics)
            metrics->counter(name, help).add(v);
    }

    void runLoop();
    void runWorker();
    void acceptAll();
    void readConn(uint64_t cid, double now);
    void onMessage(uint64_t cid, Message &&msg, double now);
    void onSubmit(uint64_t cid, const Submit &submit, double now);
    void sendMsg(uint64_t cid, const Message &msg);
    void protoFail(uint64_t cid, ErrorCode code, const char *detail);
    /** False when the connection was closed by the flush. */
    bool flushConn(uint64_t cid);
    void armWrite(uint64_t cid, Connection &c, bool want);
    void closeConn(uint64_t cid);
    void handleCompletions(double now);
    void sweepDeadline(double now);
    void pump(double now);
    void updateGauges();
};

ProofServer::ProofServer(ServerOptions opt, ProofExecutor &executor,
                         obs::MetricsRegistry *metrics)
    : impl_(std::make_unique<Impl>(std::move(opt), executor, metrics))
{
}

ProofServer::~ProofServer()
{
    stop();
}

bool
ProofServer::start()
{
    Impl &s = *impl_;
    if (s.running.load())
        return true;
    s.listener = listenTcp(s.opt.port, 4096);
    if (!s.listener.valid())
        return false;
    port_ = localPort(s.listener.get());

    s.epoll = Fd(::epoll_create1(0));
    s.event = Fd(::eventfd(0, EFD_NONBLOCK));
    if (!s.epoll.valid() || !s.event.valid())
        return false;
    epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerId;
    ::epoll_ctl(s.epoll.get(), EPOLL_CTL_ADD, s.listener.get(), &ev);
    ev.data.u64 = kEventId;
    ::epoll_ctl(s.epoll.get(), EPOLL_CTL_ADD, s.event.get(), &ev);

    // The in-flight window defaults to the prover pipeline's depth on
    // the configured device: the server admits exactly as many tasks as
    // the pipeline it fronts can hold, and queues the rest.
    gpusim::Device dev(specByName(s.opt.device));
    sched::ProofTask shape = makeProofTask(s.opt.max_n_vars, s.opt.seed);
    sched::CycleModel model(shape.graph, dev, true);
    s.window = s.opt.window ? s.opt.window
                            : std::max<size_t>(1, model.depth());
    s.cycle_ms = model.cycleMs();
    s.bump([&](ServerStats &st) {
        st.window = s.window;
        st.cycle_ms = s.cycle_ms;
    });

    s.t0 = std::chrono::steady_clock::now();
    s.stopping.store(false);
    s.running.store(true);
    size_t workers = std::max<size_t>(1, s.opt.workers);
    for (size_t i = 0; i < workers; ++i)
        s.workers.emplace_back([&s] { s.runWorker(); });
    s.loop = std::thread([&s] { s.runLoop(); });
    return true;
}

void
ProofServer::stop()
{
    Impl &s = *impl_;
    if (!s.running.load())
        return;
    s.stopping.store(true);
    uint64_t one = 1;
    [[maybe_unused]] ssize_t w =
        ::write(s.event.get(), &one, sizeof(one));
    if (s.loop.joinable())
        s.loop.join();
    {
        std::lock_guard<std::mutex> lk(s.work_mu);
        s.work.clear();
    }
    s.work_cv.notify_all();
    for (auto &t : s.workers)
        if (t.joinable())
            t.join();
    s.workers.clear();
    s.running.store(false);
}

bool
ProofServer::running() const
{
    return impl_->running.load();
}

ServerStats
ProofServer::stats() const
{
    std::lock_guard<std::mutex> lk(impl_->stats_mu);
    return impl_->stats;
}

void
ProofServer::Impl::runWorker()
{
    while (true) {
        WorkItem item;
        {
            std::unique_lock<std::mutex> lk(work_mu);
            work_cv.wait(lk, [&] {
                return stopping.load() || !work.empty();
            });
            if (work.empty())
                return; // stopping with nothing left
            item = std::move(work.front());
            work.pop_front();
        }
        Completion done;
        done.conn_id = item.conn_id;
        done.tenant = item.tenant;
        done.submitted_ms = item.submitted_ms;
        done.result.task_id = item.submit.task_id;
        done.result.status = Status::Ok;
        done.result.proof = executor.execute(item.submit);
        {
            std::lock_guard<std::mutex> lk(comp_mu);
            completions.push_back(std::move(done));
        }
        uint64_t one = 1;
        [[maybe_unused]] ssize_t w =
            ::write(event.get(), &one, sizeof(one));
    }
}

void
ProofServer::Impl::runLoop()
{
    epoll_event evs[128];
    while (!stopping.load()) {
        // A queue deadline needs a periodic sweep even when the wire is
        // quiet; otherwise sleep until traffic or a completion.
        int timeout =
            (opt.queue_timeout_ms > 0.0 && !payloads.empty()) ? 10 : 100;
        int n = ::epoll_wait(epoll.get(), evs, 128, timeout);
        double now = nowMs();
        for (int i = 0; i < n; ++i) {
            uint64_t id = evs[i].data.u64;
            if (id == kListenerId) {
                acceptAll();
            } else if (id == kEventId) {
                uint64_t drain = 0;
                [[maybe_unused]] ssize_t r = ::read(
                    event.get(), &drain, sizeof(drain));
                handleCompletions(now);
            } else if (conns.count(id)) {
                if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
                    closeConn(id);
                    continue;
                }
                if (evs[i].events & EPOLLIN)
                    readConn(id, now);
                if (conns.count(id) && (evs[i].events & EPOLLOUT))
                    flushConn(id);
            }
        }
        handleCompletions(now);
        pump(now);
        updateGauges();
    }
    // Single-owner cleanup: every socket is closed on the loop thread.
    std::vector<uint64_t> open;
    open.reserve(conns.size());
    for (const auto &kv : conns)
        open.push_back(kv.first);
    for (uint64_t id : open)
        closeConn(id);
}

void
ProofServer::Impl::acceptAll()
{
    while (true) {
        int fd = ::accept4(listener.get(), nullptr, nullptr,
                           SOCK_NONBLOCK);
        if (fd < 0)
            return;
        if (conns.size() >= opt.max_connections) {
            ::close(fd);
            bump([](ServerStats &st) { ++st.connections_rejected; });
            count("bzk_net_connections_rejected_total",
                  "connections closed at the max_connections cap");
            continue;
        }
        uint64_t id = next_conn_id++;
        epoll_event ev = {};
        ev.events = EPOLLIN;
        ev.data.u64 = id;
        ::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, fd, &ev);
        Connection c;
        c.fd = Fd(fd);
        conns.emplace(id, std::move(c));
        count("bzk_net_connections_total", "connections accepted");
        bump([&](ServerStats &st) {
            ++st.connections_accepted;
            st.open_connections = conns.size();
            st.peak_connections =
                std::max(st.peak_connections, conns.size());
        });
    }
}

void
ProofServer::Impl::readConn(uint64_t cid, double now)
{
    auto it = conns.find(cid);
    if (it == conns.end())
        return;
    Connection &c = it->second;
    uint8_t buf[65536];
    size_t got = 0;
    while (true) {
        ptrdiff_t n = recvSome(c.fd.get(), buf);
        if (n < 0) {
            closeConn(cid);
            return;
        }
        if (n == 0)
            break;
        got += static_cast<size_t>(n);
        c.decoder.feed(
            std::span<const uint8_t>(buf, static_cast<size_t>(n)));
    }
    if (got > 0) {
        count("bzk_net_bytes_rx_total", "payload bytes received",
              static_cast<double>(got));
        bump([&](ServerStats &st) { st.bytes_rx += got; });
    }
    while (conns.count(cid)) {
        auto polled = conns.at(cid).decoder.poll();
        if (!polled)
            return;
        if (std::holds_alternative<WireError>(*polled)) {
            WireError e = std::get<WireError>(*polled);
            bump([](ServerStats &st) { ++st.protocol_errors; });
            count("bzk_net_protocol_errors_total",
                  "frames rejected by the decoder");
            protoFail(cid, ErrorCode::BadFrame, wireErrorName(e));
            return;
        }
        count("bzk_net_frames_rx_total", "frames decoded");
        bump([](ServerStats &st) { ++st.frames_rx; });
        onMessage(cid, std::move(std::get<Message>(*polled)), now);
    }
}

void
ProofServer::Impl::onMessage(uint64_t cid, Message &&msg, double now)
{
    auto it = conns.find(cid);
    if (it == conns.end())
        return;
    Connection &c = it->second;
    if (c.state != Connection::State::Open) {
        if (auto *hello = std::get_if<Hello>(&msg)) {
            // Speak the newest version both sides support.
            uint8_t negotiated =
                std::min(hello->max_version, kWireVersion);
            if (negotiated < hello->min_version ||
                negotiated < kMinWireVersion) {
                bump([](ServerStats &st) { ++st.protocol_errors; });
                protoFail(cid, ErrorCode::UnsupportedVersion,
                          "no wire version in common");
                return;
            }
            c.tenant = hello->tenant;
            c.state = Connection::State::Open;
            c.version = negotiated;
            HelloAck ack;
            ack.version = negotiated;
            ack.window = static_cast<uint32_t>(window);
            ack.max_frame = kMaxFrameBytes;
            sendMsg(cid, Message{ack});
            return;
        }
        bump([](ServerStats &st) { ++st.protocol_errors; });
        protoFail(cid, ErrorCode::HandshakeRequired,
                  "first message must be Hello");
        return;
    }
    if (auto *submit = std::get_if<Submit>(&msg)) {
        onSubmit(cid, *submit, now);
        return;
    }
    if (std::get_if<ProtoError>(&msg)) {
        // The peer reported a fatal error; nothing sane can follow.
        closeConn(cid);
        return;
    }
    bump([](ServerStats &st) { ++st.protocol_errors; });
    protoFail(cid, ErrorCode::UnexpectedMessage,
              "only Submit is valid after the handshake");
}

void
ProofServer::Impl::onSubmit(uint64_t cid, const Submit &submit,
                            double now)
{
    auto it = conns.find(cid);
    if (it == conns.end())
        return;
    Connection &c = it->second;
    count("bzk_net_submits_total", "tasks submitted");
    count(("bzk_net_submits_" +
           std::string(sched::protocolKindMetricName(submit.kind)) +
           "_total")
              .c_str(),
          "tasks submitted, by protocol kind");
    bump([&](ServerStats &st) {
        ++st.submits;
        ++st.submits_by_kind[static_cast<size_t>(submit.kind)];
        ++st.tenants[c.tenant].submits;
    });

    Result reply;
    reply.task_id = submit.task_id;

    if (submit.n_vars < 8 || submit.n_vars > opt.max_n_vars) {
        reply.status = Status::Invalid;
        count("bzk_net_invalid_total", "submits with rejected params");
        bump([](ServerStats &st) { ++st.invalid; });
        sendMsg(cid, Message{std::move(reply)});
        return;
    }

    auto bucket = buckets.find(c.tenant);
    if (bucket == buckets.end())
        bucket = buckets
                     .emplace(c.tenant,
                              TokenBucket(opt.tenant_rate_per_s,
                                          opt.tenant_burst))
                     .first;
    if (!bucket->second.tryTake(now)) {
        reply.status = Status::Retry;
        reply.retry_after_ms = bucket->second.retryAfterMs(now);
        count("bzk_net_retries_total", "submits rate-limited");
        bump([&](ServerStats &st) {
            ++st.retries;
            ++st.tenants[c.tenant].retries;
        });
        sendMsg(cid, Message{std::move(reply)});
        return;
    }

    size_t pre_shed = admission.shed();
    admission.submit(now);
    if (admission.shed() > pre_shed) {
        reply.status = Status::Shed;
        count("bzk_net_sheds_total", "submits shed at a full queue");
        bump([&](ServerStats &st) {
            ++st.sheds;
            ++st.tenants[c.tenant].sheds;
        });
        sendMsg(cid, Message{std::move(reply)});
        return;
    }
    NetTask task;
    task.conn_id = cid;
    task.tenant = c.tenant;
    task.submit = submit;
    task.submitted_ms = now;
    payloads.push_back(std::move(task));
    ++c.inflight;
    pump(now);
}

void
ProofServer::Impl::sweepDeadline(double now)
{
    if (opt.queue_timeout_ms <= 0.0)
        return;
    // The deque is FIFO by submit time, so only the front can have
    // expired; the admission queue pops in the same order, keeping the
    // two aligned.
    while (!payloads.empty() &&
           now - payloads.front().submitted_ms > opt.queue_timeout_ms) {
        admission.admitOne(now); // discard the aligned queue entry
        NetTask t = std::move(payloads.front());
        payloads.pop_front();
        count("bzk_net_queue_timeouts_total",
              "submits shed at the queue deadline");
        bump([&](ServerStats &st) {
            ++st.queue_timeouts;
            ++st.sheds;
            ++st.tenants[t.tenant].sheds;
        });
        auto it = conns.find(t.conn_id);
        if (it == conns.end())
            continue;
        --it->second.inflight;
        Result reply;
        reply.task_id = t.submit.task_id;
        reply.status = Status::Shed;
        sendMsg(t.conn_id, Message{std::move(reply)});
    }
}

void
ProofServer::Impl::pump(double now)
{
    sweepDeadline(now);
    while (inflight < window && !payloads.empty()) {
        if (!admission.admitOne(now))
            break;
        NetTask t = std::move(payloads.front());
        payloads.pop_front();
        if (!conns.count(t.conn_id)) {
            bump([](ServerStats &st) { ++st.orphaned; });
            count("bzk_net_orphaned_total",
                  "tasks whose connection vanished");
            continue;
        }
        ++inflight;
        {
            std::lock_guard<std::mutex> lk(work_mu);
            work.push_back({t.conn_id, t.tenant, t.submit,
                            t.submitted_ms});
        }
        work_cv.notify_one();
    }
}

void
ProofServer::Impl::handleCompletions(double now)
{
    std::deque<Completion> batch;
    {
        std::lock_guard<std::mutex> lk(comp_mu);
        batch.swap(completions);
    }
    for (auto &done : batch) {
        --inflight;
        auto it = conns.find(done.conn_id);
        if (it == conns.end()) {
            bump([](ServerStats &st) { ++st.orphaned; });
            count("bzk_net_orphaned_total",
                  "tasks whose connection vanished");
            continue;
        }
        --it->second.inflight;
        double latency = now - done.submitted_ms;
        if (metrics)
            metrics
                ->histogram("bzk_net_accept_to_result_ms",
                            kLatencyBounds,
                            "accept-to-result latency")
                .observe(latency);
        count("bzk_net_results_total", "proofs returned");
        bump([&](ServerStats &st) {
            ++st.results_ok;
            ++st.tenants[done.tenant].results_ok;
        });
        sendMsg(done.conn_id, Message{std::move(done.result)});
    }
    if (!batch.empty())
        pump(now);
}

void
ProofServer::Impl::sendMsg(uint64_t cid, const Message &msg)
{
    auto it = conns.find(cid);
    if (it == conns.end())
        return;
    Connection &c = it->second;
    std::vector<uint8_t> frame = encodeFrame(msg, c.version);
    if (c.out.size() - c.out_pos + frame.size() > kMaxConnBacklog) {
        // Slow consumer: closing is the only bounded-memory option.
        closeConn(cid);
        return;
    }
    c.out.insert(c.out.end(), frame.begin(), frame.end());
    count("bzk_net_frames_tx_total", "frames sent");
    count("bzk_net_bytes_tx_total", "payload bytes sent",
          static_cast<double>(frame.size()));
    bump([&](ServerStats &st) {
        ++st.frames_tx;
        st.bytes_tx += frame.size();
    });
    flushConn(cid);
}

void
ProofServer::Impl::protoFail(uint64_t cid, ErrorCode code,
                             const char *detail)
{
    auto it = conns.find(cid);
    if (it == conns.end())
        return;
    ProtoError err;
    err.code = code;
    err.detail = detail;
    it->second.state = Connection::State::Closing;
    sendMsg(cid, Message{std::move(err)});
}

bool
ProofServer::Impl::flushConn(uint64_t cid)
{
    auto it = conns.find(cid);
    if (it == conns.end())
        return false;
    Connection &c = it->second;
    while (c.out_pos < c.out.size()) {
        ptrdiff_t n = sendSome(
            c.fd.get(),
            std::span<const uint8_t>(c.out.data() + c.out_pos,
                                     c.out.size() - c.out_pos));
        if (n < 0) {
            closeConn(cid);
            return false;
        }
        if (n == 0) {
            armWrite(cid, c, true);
            return true;
        }
        c.out_pos += static_cast<size_t>(n);
    }
    c.out.clear();
    c.out_pos = 0;
    if (c.want_write)
        armWrite(cid, c, false);
    if (c.state == Connection::State::Closing) {
        closeConn(cid);
        return false;
    }
    return true;
}

void
ProofServer::Impl::armWrite(uint64_t cid, Connection &c, bool want)
{
    (void)cid;
    if (c.want_write == want)
        return;
    c.want_write = want;
    epoll_event ev = {};
    ev.events = EPOLLIN | (want ? uint32_t{EPOLLOUT} : 0u);
    ev.data.u64 = cid;
    ::epoll_ctl(epoll.get(), EPOLL_CTL_MOD, c.fd.get(), &ev);
}

void
ProofServer::Impl::closeConn(uint64_t cid)
{
    auto it = conns.find(cid);
    if (it == conns.end())
        return;
    ::epoll_ctl(epoll.get(), EPOLL_CTL_DEL, it->second.fd.get(),
                nullptr);
    conns.erase(it);
    count("bzk_net_disconnects_total", "connections closed");
    bump([&](ServerStats &st) {
        ++st.connections_closed;
        st.open_connections = conns.size();
    });
}

void
ProofServer::Impl::updateGauges()
{
    bump([&](ServerStats &st) {
        st.queue_depth = admission.depth();
        st.peak_queue_depth =
            std::max(st.peak_queue_depth, st.queue_depth);
        st.inflight = inflight;
        st.open_connections = conns.size();
    });
    if (!metrics)
        return;
    metrics->gauge("bzk_net_open_connections", "connections open now")
        .set(static_cast<double>(conns.size()));
    metrics->gauge("bzk_net_queue_depth", "submits awaiting admission")
        .set(static_cast<double>(admission.depth()));
    metrics->gauge("bzk_net_inflight", "tasks past admission")
        .set(static_cast<double>(inflight));
    metrics->gauge("bzk_net_window", "in-flight window")
        .set(static_cast<double>(window));
    metrics
        ->gauge("bzk_net_cycle_ms",
                "CycleModel admission interval of the pacing shape")
        .set(cycle_ms);
}

} // namespace bzk::net
