#ifndef BZK_NET_EXECUTOR_H_
#define BZK_NET_EXECUTOR_H_

/**
 * @file
 * Proof executors for the network server: the pluggable "what does a
 * task cost" seam between the connection manager and the provers.
 *
 * SnarkExecutor produces real table-commitment proofs with the same
 * (task_id, seed, n_vars) instance derivation as the durable service,
 * so a proof served over the wire verifies with Snark(n_vars,
 * seed).verify(proof, {}) and matches what `batchzk recover` would
 * re-prove. DigestExecutor is the soak-bench stand-in: a deterministic
 * 32-byte pseudo-proof (SHA-256 of the task identity) that keeps
 * bench_net's thousands of connections bounded by the network layer,
 * not the prover.
 *
 * execute() is called concurrently from the server's worker threads;
 * implementations must be thread-safe.
 */

#include <cstdint>
#include <vector>

#include "net/Wire.h"

namespace bzk::net {

/** Turns one admitted Submit into proof bytes. Thread-safe. */
class ProofExecutor
{
  public:
    virtual ~ProofExecutor() = default;

    /** Prove @p task; returns the serialized proof. */
    virtual std::vector<uint8_t> execute(const Submit &task) = 0;
};

/** Real prover: bit-identical to the durable service's re-prove path. */
class SnarkExecutor : public ProofExecutor
{
  public:
    /**
     * @param column_openings PCS spot-check count (the Snark default).
     * Each execute() proves serially (threads = 1); parallelism comes
     * from the server's worker pool running many tasks at once.
     */
    explicit SnarkExecutor(size_t column_openings = 8)
        : column_openings_(column_openings)
    {
    }

    std::vector<uint8_t> execute(const Submit &task) override;

  private:
    size_t column_openings_;
};

/**
 * Deterministic pseudo-prover for load tests: SHA-256 over the task
 * identity. verifyDigestProof() is the matching client-side check.
 */
class DigestExecutor : public ProofExecutor
{
  public:
    /** @param spin_iterations busy work per task (models prover cost). */
    explicit DigestExecutor(size_t spin_iterations = 0)
        : spin_iterations_(spin_iterations)
    {
    }

    std::vector<uint8_t> execute(const Submit &task) override;

  private:
    size_t spin_iterations_;
};

/** Recompute and compare a DigestExecutor proof. */
bool verifyDigestProof(const Submit &task,
                       const std::vector<uint8_t> &proof);

} // namespace bzk::net

#endif // BZK_NET_EXECUTOR_H_
