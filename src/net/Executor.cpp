#include "net/Executor.h"

#include <algorithm>

#include "core/Bytes.h"
#include "core/DurableService.h"
#include "core/HighDegreeSnark.h"
#include "core/Serialize.h"
#include "core/Snark.h"
#include "exec/ExecContext.h"
#include "hash/Sha256.h"

namespace bzk::net {

namespace {

std::vector<uint8_t>
taskIdentityBytes(const Submit &task)
{
    ByteWriter w;
    w.u64(task.task_id);
    w.u32(task.n_vars);
    w.u64(task.seed);
    return w.take();
}

} // namespace

std::vector<uint8_t>
SnarkExecutor::execute(const Submit &task)
{
    Rng rng = taskInstanceRng(task.task_id, task.seed, task.n_vars);
    // Serial per task: tasks parallelize across the server's workers,
    // so the shared host pool is never entered from two provers.
    exec::ExecContext exec(exec::ExecConfig{.threads = 1});
    if (task.kind == sched::ProtocolKind::HighDegreeGate) {
        auto tables = highDegreeInstance<Fr>(task.n_vars, rng);
        HighDegreeSnark<Fr> snark(task.n_vars, task.seed,
                                  column_openings_);
        snark.setExec(&exec);
        return serializeHighDegreeProof(snark.prove(tables, {}));
    }
    auto tables = randomInstance(task.n_vars, rng);
    Snark<Fr> snark(task.n_vars, task.seed, column_openings_);
    snark.setExec(&exec);
    return serializeProof(snark.prove(tables, {}));
}

std::vector<uint8_t>
DigestExecutor::execute(const Submit &task)
{
    Digest d = Sha256::digest(taskIdentityBytes(task));
    // Deterministic busy work so load tests can model a prover whose
    // cost dwarfs the digest (volatile keeps the loop un-elided).
    volatile uint64_t sink = 0;
    for (size_t i = 0; i < spin_iterations_; ++i)
        sink = sink + (sink ^ i) * 0x9e3779b97f4a7c15ULL;
    return {d.bytes.begin(), d.bytes.end()};
}

bool
verifyDigestProof(const Submit &task, const std::vector<uint8_t> &proof)
{
    Digest d = Sha256::digest(taskIdentityBytes(task));
    return proof.size() == d.bytes.size() &&
           std::equal(proof.begin(), proof.end(), d.bytes.begin());
}

} // namespace bzk::net
