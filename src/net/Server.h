#ifndef BZK_NET_SERVER_H_
#define BZK_NET_SERVER_H_

/**
 * @file
 * Async TCP proof server: the network front end that turns the
 * in-process proving library into a multi-tenant service.
 *
 * One epoll loop thread owns every socket and all protocol state; a
 * small worker pool runs the ProofExecutor. The loop accepts
 * connections, steps each connection's state machine (Hello handshake,
 * then Submit/Result traffic), and applies the service guard rails in
 * admission order:
 *
 *   1. parameter check        -> Result{Invalid}
 *   2. per-tenant token bucket -> Result{Retry, retry_after_ms}
 *   3. bounded admission queue -> Result{Shed} (sched::AdmissionQueue,
 *      the same guard-rail engine the streaming service admits through;
 *      a queue deadline expiry also sheds)
 *   4. bounded in-flight window -> tasks wait in the queue; the window
 *      defaults to the pipeline depth from sched::CycleModel, so the
 *      server admits exactly as deep as the prover pipeline it fronts
 *
 * Results flow back through a completion queue and an eventfd wakeup,
 * so worker threads never touch a socket. Every observable quantity is
 * exported twice: as bzk_net_* metrics (loop-thread-only updates) and
 * as a mutex-guarded ServerStats snapshot for tests and benches.
 */

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "net/Executor.h"
#include "obs/Metrics.h"
#include "sched/ProtocolKind.h"

namespace bzk::net {

/** Service configuration (zeros pick the documented defaults). */
struct ServerOptions
{
    /** Listen port on 127.0.0.1; 0 binds an ephemeral port. */
    uint16_t port = 0;
    /** Open connections beyond this are accepted and closed at once. */
    size_t max_connections = 4096;
    /** Admission-queue capacity; excess submits are shed. 0 = unbounded. */
    size_t queue_capacity = 4096;
    /** Queued longer than this is shed (0 disables the deadline), ms. */
    double queue_timeout_ms = 0.0;
    /** In-flight window; 0 derives the pipeline depth via CycleModel. */
    size_t window = 0;
    /** Per-tenant sustained submit rate, tokens/s; 0 = unlimited. */
    double tenant_rate_per_s = 0.0;
    /** Per-tenant burst size; 0 = one second of tokens. */
    double tenant_burst = 0.0;
    /** Executor worker threads. */
    size_t workers = 2;
    /** Largest task log-size a Submit may carry. */
    unsigned max_n_vars = 16;
    /** Device preset for CycleModel pacing ("GH200", "A100", ...). */
    std::string device = "GH200";
    /** Seed of the pacing-shape task (window derivation). */
    uint64_t seed = 2024;
};

/** Per-tenant accounting. */
struct TenantStats
{
    uint64_t submits = 0;
    uint64_t results_ok = 0;
    uint64_t retries = 0;
    uint64_t sheds = 0;
};

/** Snapshot of the server's counters (stats()). */
struct ServerStats
{
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;
    uint64_t connections_rejected = 0;
    uint64_t frames_rx = 0;
    uint64_t frames_tx = 0;
    uint64_t bytes_rx = 0;
    uint64_t bytes_tx = 0;
    uint64_t submits = 0;
    /** Submits broken down by proving protocol (ProtocolKind index). */
    std::array<uint64_t, sched::kNumProtocolKinds> submits_by_kind{};
    uint64_t results_ok = 0;
    uint64_t retries = 0;
    uint64_t sheds = 0;
    uint64_t invalid = 0;
    uint64_t queue_timeouts = 0;
    uint64_t protocol_errors = 0;
    /** Admissions/results whose connection had already gone away. */
    uint64_t orphaned = 0;
    size_t open_connections = 0;
    size_t peak_connections = 0;
    size_t queue_depth = 0;
    size_t peak_queue_depth = 0;
    size_t inflight = 0;
    /** Effective in-flight window (after CycleModel derivation). */
    size_t window = 0;
    /** CycleModel admission interval of the pacing shape, ms. */
    double cycle_ms = 0.0;
    std::map<uint64_t, TenantStats> tenants;
};

/** Epoll-based proof server. One instance per listen port. */
class ProofServer
{
  public:
    /**
     * @param executor proves admitted tasks; must be thread-safe and
     *        outlive the server. @p metrics (not owned, may be null)
     *        receives the bzk_net_* series, updated only from the loop
     *        thread.
     */
    ProofServer(ServerOptions opt, ProofExecutor &executor,
                obs::MetricsRegistry *metrics = nullptr);

    /** Stops and joins if still running. */
    ~ProofServer();

    ProofServer(const ProofServer &) = delete;
    ProofServer &operator=(const ProofServer &) = delete;

    /**
     * Bind the listener and start the loop + worker threads. False when
     * the port cannot be bound (nothing is started).
     */
    bool start();

    /** Request shutdown and join all threads. Idempotent. */
    void stop();

    /** Bound listen port (valid after start()). */
    uint16_t port() const { return port_; }

    /** True between a successful start() and stop(). */
    bool running() const;

    /** Consistent counter snapshot (callable from any thread). */
    ServerStats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    uint16_t port_ = 0;
};

} // namespace bzk::net

#endif // BZK_NET_SERVER_H_
