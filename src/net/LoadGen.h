#ifndef BZK_NET_LOADGEN_H_
#define BZK_NET_LOADGEN_H_

/**
 * @file
 * Epoll-based load generator for the proof service: one thread drives
 * thousands of concurrent client connections against a ProofServer,
 * pipelining submits, honoring Retry/Shed backpressure by resubmitting
 * with backoff, and accounting for every task id — a task is lost if it
 * never reaches a terminal outcome and duplicated if it reaches two.
 * bench_net's soak gate is exactly those two counters staying zero.
 *
 * Task ids are globally unique by construction
 * (connection_index << 20 | sequence), so the lost/duplicate accounting
 * is a plain per-id state machine, not a heuristic.
 */

#include <cstddef>
#include <cstdint>

namespace bzk::net {

/** Load-shape configuration. */
struct LoadGenOptions
{
    /** Server port on 127.0.0.1. */
    uint16_t port = 0;
    /** Concurrent connections to open. */
    size_t connections = 64;
    /** Tasks each connection must complete. */
    size_t tasks_per_conn = 16;
    /** Submits a connection keeps outstanding. */
    size_t pipeline = 4;
    /** Distinct tenants; connection i identifies as tenant i % tenants. */
    size_t tenants = 1;
    /**
     * Fraction of connections pinned to tenant 0 (the hot tenant) on
     * top of the round-robin spread; 0 disables the skew.
     */
    double hot_fraction = 0.0;
    /** Task log-size each Submit carries. */
    uint32_t n_vars = 10;
    /** Public seed each Submit carries. */
    uint64_t seed = 2024;
    /** Resubmissions allowed per task after Retry/Shed. */
    size_t max_retries = 64;
    /** Backoff floor used when the server gives no retry hint, ms. */
    double backoff_ms = 2.0;
    /** Verify each Ok proof as a DigestExecutor proof. */
    bool verify_digest = true;
    /** Abort the run after this long (0 = no deadline), ms. */
    double deadline_ms = 120000.0;
};

/** What happened, totalled across all connections. */
struct LoadGenReport
{
    size_t connections_opened = 0;
    size_t connections_failed = 0;
    uint64_t submits_sent = 0;
    uint64_t results_ok = 0;
    uint64_t retries = 0;
    uint64_t sheds = 0;
    uint64_t invalid = 0;
    /** Ok proofs that failed the digest check. */
    uint64_t bad_proofs = 0;
    /** Tasks dropped after exhausting max_retries. */
    uint64_t dropped = 0;
    /** Tasks with no terminal outcome when the run ended. */
    uint64_t lost = 0;
    /** Ok results for task ids that were already complete. */
    uint64_t duplicated = 0;
    uint64_t bytes_rx = 0;
    uint64_t bytes_tx = 0;
    double wall_ms = 0.0;
    /** Completed tasks per second of wall time. */
    double throughput_per_s = 0.0;
    /** Submit-to-result latency percentiles over Ok results, ms. */
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;

    /** The soak invariant: every task exactly once, nothing broke. */
    bool
    clean() const
    {
        return lost == 0 && duplicated == 0 && bad_proofs == 0 &&
               connections_failed == 0;
    }
};

/** Run the load shape to completion (blocking). */
LoadGenReport runLoadGen(const LoadGenOptions &opt);

/**
 * Raise RLIMIT_NOFILE to its hard limit; returns the resulting soft
 * limit. Thousands of loopback connections need ~2 fds each.
 */
size_t raiseFdLimit();

} // namespace bzk::net

#endif // BZK_NET_LOADGEN_H_
