#include "net/Wire.h"

#include <cstring>
#include <type_traits>

#include "core/Bytes.h"
#include "journal/Crc32.h"
#include "util/Log.h"

namespace bzk::net {

namespace {

/** Cap on ProtoError::detail (keeps error frames bounded). */
constexpr size_t kMaxErrorDetail = 256;

void
writeBody(ByteWriter &w, const Hello &m)
{
    w.u8(static_cast<uint8_t>(MsgType::Hello));
    w.u8(m.min_version);
    w.u8(m.max_version);
    w.u64(m.tenant);
}

void
writeBody(ByteWriter &w, const HelloAck &m)
{
    w.u8(static_cast<uint8_t>(MsgType::HelloAck));
    w.u8(m.version);
    w.u32(m.window);
    w.u32(m.max_frame);
}

void
writeBody(ByteWriter &w, const Submit &m, uint8_t version)
{
    w.u8(static_cast<uint8_t>(MsgType::Submit));
    w.u64(m.task_id);
    w.u32(m.n_vars);
    w.u64(m.seed);
    if (version >= 2) {
        w.u8(static_cast<uint8_t>(m.kind));
    } else if (m.kind != sched::ProtocolKind::TableCommit) {
        // A v1 frame has nowhere to carry the kind; silently encoding
        // it as the legacy protocol would prove the wrong statement.
        panic("encodeFrame: Submit kind %s needs wire version >= 2",
              sched::protocolKindName(m.kind));
    }
}

void
writeBody(ByteWriter &w, const Result &m)
{
    w.u8(static_cast<uint8_t>(MsgType::Result));
    w.u64(m.task_id);
    w.u8(static_cast<uint8_t>(m.status));
    w.u32(m.retry_after_ms);
    w.u32(static_cast<uint32_t>(m.proof.size()));
    w.raw(m.proof);
}

void
writeBody(ByteWriter &w, const ProtoError &m)
{
    w.u8(static_cast<uint8_t>(MsgType::ProtoError));
    w.u8(static_cast<uint8_t>(m.code));
    std::string detail = m.detail.substr(
        0, std::min(m.detail.size(), kMaxErrorDetail));
    w.u32(static_cast<uint32_t>(detail.size()));
    w.raw(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(detail.data()), detail.size()));
}

std::variant<Message, WireError>
readHello(ByteReader &r)
{
    Hello m;
    m.min_version = r.u8();
    m.max_version = r.u8();
    m.tenant = r.u64();
    if (!r.ok() || r.remaining() != 0 || m.min_version > m.max_version)
        return WireError::Malformed;
    return Message{m};
}

std::variant<Message, WireError>
readHelloAck(ByteReader &r)
{
    HelloAck m;
    m.version = r.u8();
    m.window = r.u32();
    m.max_frame = r.u32();
    if (!r.ok() || r.remaining() != 0)
        return WireError::Malformed;
    return Message{m};
}

std::variant<Message, WireError>
readSubmit(ByteReader &r, uint8_t version)
{
    Submit m;
    m.task_id = r.u64();
    m.n_vars = r.u32();
    m.seed = r.u64();
    if (version >= 2) {
        uint8_t kind_byte = r.u8();
        if (!r.ok())
            return WireError::Malformed;
        auto kind = sched::protocolKindFromByte(kind_byte);
        if (!kind)
            return WireError::Malformed;
        m.kind = *kind;
    } else {
        // v1 peers predate protocol kinds: legacy workload.
        m.kind = sched::ProtocolKind::TableCommit;
    }
    if (!r.ok() || r.remaining() != 0)
        return WireError::Malformed;
    return Message{m};
}

std::variant<Message, WireError>
readResult(ByteReader &r)
{
    Result m;
    m.task_id = r.u64();
    uint8_t status = r.u8();
    if (status > static_cast<uint8_t>(Status::Invalid))
        return WireError::Malformed;
    m.status = static_cast<Status>(status);
    m.retry_after_ms = r.u32();
    size_t n = r.length(kMaxFrameBytes);
    if (!r.ok() || n != r.remaining())
        return WireError::Malformed;
    m.proof.resize(n);
    for (auto &b : m.proof)
        b = r.u8();
    if (!r.ok() || r.remaining() != 0)
        return WireError::Malformed;
    return Message{std::move(m)};
}

std::variant<Message, WireError>
readProtoError(ByteReader &r)
{
    ProtoError m;
    uint8_t code = r.u8();
    if (code < static_cast<uint8_t>(ErrorCode::UnsupportedVersion) ||
        code > static_cast<uint8_t>(ErrorCode::UnexpectedMessage))
        return WireError::Malformed;
    m.code = static_cast<ErrorCode>(code);
    size_t n = r.length(kMaxErrorDetail);
    if (!r.ok() || n != r.remaining())
        return WireError::Malformed;
    m.detail.resize(n);
    for (auto &c : m.detail)
        c = static_cast<char>(r.u8());
    if (!r.ok() || r.remaining() != 0)
        return WireError::Malformed;
    return Message{std::move(m)};
}

} // namespace

const char *
wireErrorName(WireError error)
{
    switch (error) {
      case WireError::BadMagic:
        return "bad_magic";
      case WireError::Oversize:
        return "oversize";
      case WireError::BadCrc:
        return "bad_crc";
      case WireError::BadVersion:
        return "bad_version";
      case WireError::BadType:
        return "bad_type";
      case WireError::Malformed:
        return "malformed";
    }
    return "unknown";
}

std::vector<uint8_t>
encodeFrame(const Message &msg, uint8_t version)
{
    ByteWriter bw;
    bw.u8(version);
    std::visit(
        [&](const auto &m) {
            using T = std::decay_t<decltype(m)>;
            if constexpr (std::is_same_v<T, Submit>)
                writeBody(bw, m, version);
            else
                writeBody(bw, m);
        },
        msg);
    std::vector<uint8_t> body = bw.take();

    ByteWriter fw;
    fw.raw(std::span<const uint8_t>(kFrameMagic, 4));
    fw.u32(static_cast<uint32_t>(body.size()));
    fw.u32(journal::crc32(body));
    fw.raw(body);
    return fw.take();
}

std::variant<Message, WireError>
decodeBody(std::span<const uint8_t> body)
{
    ByteReader r(body);
    uint8_t version = r.u8();
    uint8_t type = r.u8();
    if (!r.ok())
        return WireError::Malformed;
    if (version < kMinWireVersion || version > kWireVersion)
        return WireError::BadVersion;
    switch (static_cast<MsgType>(type)) {
      case MsgType::Hello:
        return readHello(r);
      case MsgType::HelloAck:
        return readHelloAck(r);
      case MsgType::Submit:
        return readSubmit(r, version);
      case MsgType::Result:
        return readResult(r);
      case MsgType::ProtoError:
        return readProtoError(r);
    }
    return WireError::BadType;
}

void
FrameDecoder::feed(std::span<const uint8_t> bytes)
{
    if (poisoned_)
        return;
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<std::variant<Message, WireError>>
FrameDecoder::poll()
{
    if (poisoned_)
        return std::variant<Message, WireError>{*poisoned_};
    // Compact the consumed prefix before parsing so a long-lived
    // connection's buffer does not grow without bound.
    if (pos_ > 0) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<ptrdiff_t>(pos_));
        pos_ = 0;
    }
    if (buf_.size() < kFrameHeaderBytes)
        return std::nullopt;

    auto fail = [&](WireError e) {
        poisoned_ = e;
        return std::variant<Message, WireError>{e};
    };

    if (std::memcmp(buf_.data(), kFrameMagic, 4) != 0)
        return fail(WireError::BadMagic);
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) {
        len |= static_cast<uint32_t>(buf_[4 + i]) << (8 * i);
        crc |= static_cast<uint32_t>(buf_[8 + i]) << (8 * i);
    }
    // The length is validated before the body is awaited, so a hostile
    // prefix can never make the decoder buffer (or wait for) gigabytes.
    if (len > max_body_)
        return fail(WireError::Oversize);
    if (buf_.size() < kFrameHeaderBytes + len)
        return std::nullopt;

    std::span<const uint8_t> body(buf_.data() + kFrameHeaderBytes, len);
    if (journal::crc32(body) != crc)
        return fail(WireError::BadCrc);
    auto decoded = decodeBody(body);
    if (std::holds_alternative<WireError>(decoded))
        return fail(std::get<WireError>(decoded));
    pos_ = kFrameHeaderBytes + len;
    return decoded;
}

} // namespace bzk::net
