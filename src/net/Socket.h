#ifndef BZK_NET_SOCKET_H_
#define BZK_NET_SOCKET_H_

/**
 * @file
 * Thin RAII + error-code layer over BSD sockets for the proof service:
 * an owning file descriptor, loopback listeners/connectors, and
 * non-blocking mode. Nothing here throws; every failure is a bool or
 * an invalid Fd, and writes use MSG_NOSIGNAL so a peer that vanishes
 * mid-reply surfaces as an error return instead of SIGPIPE.
 */

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

namespace bzk::net {

/** Owning file descriptor (move-only; closes on destruction). */
class Fd
{
  public:
    Fd() = default;

    explicit Fd(int fd) : fd_(fd) {}

    Fd(Fd &&o) noexcept : fd_(std::exchange(o.fd_, -1)) {}

    Fd &
    operator=(Fd &&o) noexcept
    {
        if (this != &o) {
            close();
            fd_ = std::exchange(o.fd_, -1);
        }
        return *this;
    }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    ~Fd() { close(); }

    bool valid() const { return fd_ >= 0; }

    int get() const { return fd_; }

    /** Release ownership without closing. */
    int release() { return std::exchange(fd_, -1); }

    /** Close now (idempotent). */
    void close();

  private:
    int fd_ = -1;
};

/**
 * Bind + listen a TCP socket on 127.0.0.1:@p port (0 = ephemeral),
 * SO_REUSEADDR, non-blocking. Invalid Fd on failure.
 */
Fd listenTcp(uint16_t port, int backlog = 512);

/** Blocking loopback connect. Invalid Fd on failure. */
Fd connectTcp(uint16_t port);

/**
 * Non-blocking loopback connect: returns immediately with the connect
 * in flight (poll for writability to learn the outcome).
 */
Fd connectTcpNonBlocking(uint16_t port);

/** Switch @p fd to non-blocking mode. */
bool setNonBlocking(int fd);

/** Locally bound port of @p fd (0 on failure). */
uint16_t localPort(int fd);

/**
 * send() with MSG_NOSIGNAL. Returns bytes written, 0 when the socket
 * is write-blocked (EAGAIN), or -1 on a dead peer.
 */
ptrdiff_t sendSome(int fd, std::span<const uint8_t> data);

/**
 * recv(). Returns bytes read, 0 when no data is ready (EAGAIN), or -1
 * on EOF / a dead peer.
 */
ptrdiff_t recvSome(int fd, std::span<uint8_t> buf);

} // namespace bzk::net

#endif // BZK_NET_SOCKET_H_
