#ifndef BZK_NET_WIRE_H_
#define BZK_NET_WIRE_H_

/**
 * @file
 * Versioned, length-prefixed, CRC-framed wire protocol for the proof
 * service (docs/SERVICE.md documents the layout normatively).
 *
 * Every message travels in one frame:
 *
 *   frame header (12 bytes):
 *     magic "BZKN" | body length u32 LE | crc32(body) u32 LE
 *
 *   frame body:
 *     wire version u8 | message type u8 | payload
 *
 * Everything is little-endian via core/Bytes.h; the CRC is the
 * journal's CRC-32 (journal/Crc32.h), so a flipped bit or a torn tail
 * is detected before a byte of payload is decoded. Decoding is
 * fail-soft end to end: a hostile peer can produce a typed WireError
 * (and lose its connection), never a crash, a hang, or an oversized
 * allocation — the body length is capped before any buffering.
 *
 * FrameDecoder is the incremental half: feed() it bytes as they arrive
 * from a socket and poll() complete messages out, in order. The first
 * error poisons the decoder, mirroring the journal's replay rule that
 * nothing at or past a corrupt byte is ever interpreted.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "sched/ProtocolKind.h"

namespace bzk::net {

/**
 * Newest wire protocol version this build speaks. Version 2 adds the
 * protocol-kind byte to Submit; every other message is unchanged.
 */
constexpr uint8_t kWireVersion = 2;

/** Oldest wire version this build still accepts (v1 peers work). */
constexpr uint8_t kMinWireVersion = 1;

/** Frame magic, on the wire as the bytes 'B' 'Z' 'K' 'N'. */
constexpr uint8_t kFrameMagic[4] = {'B', 'Z', 'K', 'N'};

/** Frame header size on the wire, bytes. */
constexpr size_t kFrameHeaderBytes = 12;

/** Largest frame body either side will buffer (caps hostile lengths). */
constexpr size_t kMaxFrameBytes = size_t{1} << 22;

/** Message types (the body's second byte). */
enum class MsgType : uint8_t {
    /** Client -> server: version range + tenant identity. */
    Hello = 1,
    /** Server -> client: negotiated version + service limits. */
    HelloAck = 2,
    /** Client -> server: one proof task. */
    Submit = 3,
    /** Server -> client: terminal outcome for one task. */
    Result = 4,
    /** Either direction: fatal protocol diagnostic, then close. */
    ProtoError = 5,
};

/** Terminal status of a submitted task (Result::status). */
enum class Status : uint8_t {
    /** Proof attached. */
    Ok = 0,
    /** Rate limit: resubmit after Result::retry_after_ms. */
    Retry = 1,
    /** Queue full or queue deadline passed: load was shed. */
    Shed = 2,
    /** Task parameters rejected (e.g. n_vars above the cap). */
    Invalid = 3,
};

/** ProtoError::code values. */
enum class ErrorCode : uint8_t {
    /** Hello version range does not include a supported version. */
    UnsupportedVersion = 1,
    /** A non-Hello message arrived before the handshake. */
    HandshakeRequired = 2,
    /** The peer sent a frame that failed to decode. */
    BadFrame = 3,
    /** Message type valid but not acceptable in this direction/state. */
    UnexpectedMessage = 4,
};

/** Client handshake: supported version range + tenant identity. */
struct Hello
{
    uint8_t min_version = kMinWireVersion;
    uint8_t max_version = kWireVersion;
    /** Tenant the connection submits under (rate-limit key). */
    uint64_t tenant = 0;

    bool operator==(const Hello &o) const = default;
};

/** Server handshake reply: the negotiated version + service limits. */
struct HelloAck
{
    /** Version both sides will speak (within the Hello range). */
    uint8_t version = kWireVersion;
    /** Server-wide in-flight window (tasks past admission). */
    uint32_t window = 0;
    /** Largest frame body the server accepts, bytes. */
    uint32_t max_frame = kMaxFrameBytes;

    bool operator==(const HelloAck &o) const = default;
};

/** One proof task; (task_id, seed, n_vars) pins the instance. */
struct Submit
{
    /** Client-assigned id, echoed in the Result (idempotency key). */
    uint64_t task_id = 0;
    /** Constraint-table log-size. */
    uint32_t n_vars = 10;
    /** Public encoder seed. */
    uint64_t seed = 2024;
    /**
     * Proving protocol to run (wire v2 field). v1 frames cannot carry
     * it: a v1 Submit decodes as TableCommit, and encoding a
     * HighDegreeGate Submit at v1 is a caller error.
     */
    sched::ProtocolKind kind = sched::ProtocolKind::TableCommit;

    bool operator==(const Submit &o) const = default;
};

/** Terminal outcome for one Submit. */
struct Result
{
    uint64_t task_id = 0;
    Status status = Status::Ok;
    /** Client back-off hint when status == Retry, ms. */
    uint32_t retry_after_ms = 0;
    /** Serialized proof when status == Ok (may be empty). */
    std::vector<uint8_t> proof;

    bool operator==(const Result &o) const = default;
};

/** Fatal protocol diagnostic; the sender closes after writing it. */
struct ProtoError
{
    ErrorCode code = ErrorCode::BadFrame;
    /** Human-readable detail (bounded at 256 bytes on the wire). */
    std::string detail;

    bool operator==(const ProtoError &o) const = default;
};

/** Any decoded message. */
using Message = std::variant<Hello, HelloAck, Submit, Result, ProtoError>;

/** Typed decode failures (each maps to exactly one defense). */
enum class WireError : uint8_t {
    /** Frame did not start with "BZKN". */
    BadMagic = 1,
    /** Body length prefix exceeds the frame cap. */
    Oversize = 2,
    /** Body bytes do not match the header CRC. */
    BadCrc = 3,
    /** Body carries a wire version this build does not speak. */
    BadVersion = 4,
    /** Body carries an unknown message type. */
    BadType = 5,
    /** Payload truncated, over-long, or shape-invalid for its type. */
    Malformed = 6,
};

/** Stable name for logs and tests ("bad_crc", ...). */
const char *wireErrorName(WireError error);

/**
 * Encode @p msg as one complete frame (header + body) at @p version.
 * Handshake messages travel at the oldest version so any peer can
 * parse them; everything after the handshake travels at the
 * connection's negotiated version.
 */
std::vector<uint8_t> encodeFrame(const Message &msg,
                                 uint8_t version = kWireVersion);

/**
 * Decode one frame body (version byte onward). The frame layer must
 * already have verified length and CRC.
 */
std::variant<Message, WireError> decodeBody(std::span<const uint8_t> body);

/**
 * Incremental frame reassembler for one connection. Feed raw socket
 * bytes in; poll complete messages out. Returns nullopt from poll()
 * when more bytes are needed. The first WireError poisons the decoder:
 * every later poll() repeats the error and feed() discards input, so a
 * connection that produced garbage can only be closed.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(size_t max_body = kMaxFrameBytes)
        : max_body_(max_body)
    {
    }

    /** Append bytes received from the peer. */
    void feed(std::span<const uint8_t> bytes);

    /** Next message or error; nullopt when a frame is incomplete. */
    std::optional<std::variant<Message, WireError>> poll();

    /** True once any error has been returned. */
    bool poisoned() const { return poisoned_.has_value(); }

    /** Bytes buffered but not yet consumed (tests/backpressure). */
    size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
    size_t max_body_;
    std::optional<WireError> poisoned_;
};

} // namespace bzk::net

#endif // BZK_NET_WIRE_H_
