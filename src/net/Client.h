#ifndef BZK_NET_CLIENT_H_
#define BZK_NET_CLIENT_H_

/**
 * @file
 * Blocking proof-service client: connect (with retry, for racing a
 * server that is still binding), handshake, and round-trip submits.
 * This is the simple half of the client story — one request at a time,
 * timeouts on every receive — used by `batchzk submit` and the tests.
 * The pipelined, thousands-of-connections half is net/LoadGen.h.
 */

#include <cstdint>
#include <optional>

#include "net/Socket.h"
#include "net/Wire.h"

namespace bzk::net {

/** Blocking wire-protocol client for one connection. */
class SyncClient
{
  public:
    /**
     * Connect to 127.0.0.1:@p port and complete the Hello handshake as
     * @p tenant. Retries the connect every @p retry_delay_ms up to
     * @p attempts times (a just-started server may not be listening
     * yet). False on connect, handshake, or version failure.
     */
    bool connect(uint16_t port, uint64_t tenant = 0, int attempts = 50,
                 double retry_delay_ms = 20.0);

    /** True after a successful handshake (until close()). */
    bool connected() const { return fd_.valid(); }

    /** The server's handshake reply (valid while connected()). */
    const HelloAck &ack() const { return ack_; }

    /**
     * Wire version negotiated by the handshake. Before the handshake it
     * is the oldest supported version, so the Hello itself is readable
     * by any server.
     */
    uint8_t version() const { return version_; }

    /** Encode and send one message at the negotiated version. False on
     *  a dead socket. */
    bool send(const Message &msg);

    /**
     * Next message from the server, waiting up to @p timeout_ms.
     * nullopt on timeout, EOF, or a decode error (the connection is
     * closed on the latter two; lastError() tells which decode error).
     */
    std::optional<Message> receive(double timeout_ms = 5000.0);

    /**
     * Submit @p task and wait for its Result. Out-of-order Results for
     * other task ids are discarded. nullopt on timeout or a dead/
     * poisoned connection.
     */
    std::optional<Result> roundTrip(const Submit &task,
                                    double timeout_ms = 30000.0);

    /** Decode error that killed the connection, if one did. */
    std::optional<WireError> lastError() const { return last_error_; }

    void close() { fd_.close(); }

  private:
    Fd fd_;
    FrameDecoder decoder_;
    HelloAck ack_;
    uint8_t version_ = kMinWireVersion;
    std::optional<WireError> last_error_;
};

} // namespace bzk::net

#endif // BZK_NET_CLIENT_H_
