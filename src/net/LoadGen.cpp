#include "net/LoadGen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <vector>

#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>

#include "net/Executor.h"
#include "net/Socket.h"
#include "net/Wire.h"

namespace bzk::net {

namespace {

/** Task ids pack the owning connection above the sequence bits. */
constexpr unsigned kSeqBits = 20;

/** One driven connection. */
struct ClientConn
{
    enum class State { Connecting, AwaitAck, Run, Done, Failed };

    Fd fd;
    State state = State::Connecting;
    uint64_t tenant = 0;
    FrameDecoder decoder;
    std::vector<uint8_t> out;
    size_t out_pos = 0;
    bool want_write = false;
    /** Next sequence number to first-submit. */
    size_t next_seq = 0;
    /** Submits sent but not yet answered. */
    size_t outstanding = 0;
    /** Tasks that reached a terminal outcome. */
    size_t terminal = 0;
};

/** Per-task-id accounting. */
struct TaskState
{
    size_t attempts = 0;
    double last_submit_ms = 0.0;
    bool terminal = false;
    bool ok = false;
};

/** A resubmission waiting for its backoff to elapse. */
struct RetryEntry
{
    double due_ms;
    uint64_t task_id;

    bool
    operator>(const RetryEntry &o) const
    {
        return due_ms > o.due_ms;
    }
};

struct Driver
{
    explicit Driver(const LoadGenOptions &o) : opt(o) {}

    const LoadGenOptions &opt;
    LoadGenReport report;
    Fd epoll;
    std::vector<ClientConn> conns;
    std::unordered_map<uint64_t, TaskState> tasks;
    std::priority_queue<RetryEntry, std::vector<RetryEntry>,
                        std::greater<RetryEntry>>
        retries;
    std::vector<double> latencies;
    size_t live = 0;
    std::chrono::steady_clock::time_point t0;

    double
    nowMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }

    uint64_t
    taskId(size_t conn, size_t seq) const
    {
        return (static_cast<uint64_t>(conn) << kSeqBits) | seq;
    }

    uint64_t
    tenantOf(size_t conn) const
    {
        if (opt.hot_fraction > 0.0 &&
            conn < static_cast<size_t>(
                       opt.hot_fraction *
                       static_cast<double>(opt.connections)))
            return 0;
        return opt.tenants ? conn % opt.tenants : 0;
    }

    void
    arm(size_t idx, bool want_write)
    {
        ClientConn &c = conns[idx];
        if (c.want_write == want_write)
            return;
        c.want_write = want_write;
        epoll_event ev = {};
        ev.events = EPOLLIN | (want_write ? uint32_t{EPOLLOUT} : 0u);
        ev.data.u64 = idx;
        ::epoll_ctl(epoll.get(), EPOLL_CTL_MOD, c.fd.get(), &ev);
    }

    void
    fail(size_t idx)
    {
        ClientConn &c = conns[idx];
        if (c.state == ClientConn::State::Failed ||
            c.state == ClientConn::State::Done)
            return;
        ::epoll_ctl(epoll.get(), EPOLL_CTL_DEL, c.fd.get(), nullptr);
        c.fd.close();
        c.state = ClientConn::State::Failed;
        ++report.connections_failed;
        --live;
    }

    void
    finish(size_t idx)
    {
        ClientConn &c = conns[idx];
        ::epoll_ctl(epoll.get(), EPOLL_CTL_DEL, c.fd.get(), nullptr);
        c.fd.close();
        c.state = ClientConn::State::Done;
        --live;
    }

    void
    sendMsg(size_t idx, const Message &msg)
    {
        ClientConn &c = conns[idx];
        std::vector<uint8_t> frame = encodeFrame(msg);
        c.out.insert(c.out.end(), frame.begin(), frame.end());
        report.bytes_tx += frame.size();
        flush(idx);
    }

    /** False when the connection died under the flush. */
    bool
    flush(size_t idx)
    {
        ClientConn &c = conns[idx];
        while (c.out_pos < c.out.size()) {
            ptrdiff_t n = sendSome(
                c.fd.get(),
                std::span<const uint8_t>(c.out.data() + c.out_pos,
                                         c.out.size() - c.out_pos));
            if (n < 0) {
                fail(idx);
                return false;
            }
            if (n == 0) {
                arm(idx, true);
                return true;
            }
            c.out_pos += static_cast<size_t>(n);
        }
        c.out.clear();
        c.out_pos = 0;
        if (c.want_write)
            arm(idx, false);
        return true;
    }

    void
    submitTask(size_t idx, uint64_t task_id, double now)
    {
        ClientConn &c = conns[idx];
        Submit submit;
        submit.task_id = task_id;
        submit.n_vars = opt.n_vars;
        submit.seed = opt.seed;
        TaskState &t = tasks[task_id];
        ++t.attempts;
        t.last_submit_ms = now;
        ++c.outstanding;
        ++report.submits_sent;
        sendMsg(idx, Message{submit});
    }

    /** Keep the connection's submit pipeline full. */
    void
    pump(size_t idx, double now)
    {
        ClientConn &c = conns[idx];
        while (c.state == ClientConn::State::Run &&
               c.outstanding < opt.pipeline &&
               c.next_seq < opt.tasks_per_conn) {
            uint64_t id = taskId(idx, c.next_seq++);
            submitTask(idx, id, now);
        }
        if (c.state == ClientConn::State::Run &&
            c.terminal >= opt.tasks_per_conn)
            finish(idx);
    }

    void
    terminalize(size_t idx, double now)
    {
        ClientConn &c = conns[idx];
        ++c.terminal;
        pump(idx, now);
    }

    void
    scheduleRetry(size_t idx, uint64_t task_id, uint32_t hint_ms,
                  double now)
    {
        TaskState &t = tasks[task_id];
        if (t.attempts > opt.max_retries) {
            ++report.dropped;
            t.terminal = true;
            terminalize(idx, now);
            return;
        }
        double backoff =
            opt.backoff_ms *
            std::pow(2.0, static_cast<double>(t.attempts - 1));
        double wait = std::max(static_cast<double>(hint_ms),
                               std::min(backoff, 1000.0));
        retries.push({now + wait, task_id});
    }

    void
    onResult(size_t idx, const Result &result, double now)
    {
        ClientConn &c = conns[idx];
        if (c.outstanding > 0)
            --c.outstanding;
        auto it = tasks.find(result.task_id);
        if (it == tasks.end())
            return; // not a task we sent; ignore
        TaskState &t = it->second;
        if (t.terminal) {
            if (result.status == Status::Ok && t.ok)
                ++report.duplicated;
            return;
        }
        switch (result.status) {
          case Status::Ok: {
            t.terminal = true;
            t.ok = true;
            ++report.results_ok;
            latencies.push_back(now - t.last_submit_ms);
            Submit submit;
            submit.task_id = result.task_id;
            submit.n_vars = opt.n_vars;
            submit.seed = opt.seed;
            if (opt.verify_digest &&
                !verifyDigestProof(submit, result.proof))
                ++report.bad_proofs;
            terminalize(idx, now);
            break;
          }
          case Status::Retry:
            ++report.retries;
            scheduleRetry(idx, result.task_id, result.retry_after_ms,
                          now);
            break;
          case Status::Shed:
            ++report.sheds;
            scheduleRetry(idx, result.task_id, 0, now);
            break;
          case Status::Invalid:
            ++report.invalid;
            t.terminal = true;
            terminalize(idx, now);
            break;
        }
    }

    void
    onMessage(size_t idx, Message &&msg, double now)
    {
        ClientConn &c = conns[idx];
        if (c.state == ClientConn::State::AwaitAck) {
            if (auto *ack = std::get_if<HelloAck>(&msg);
                ack && ack->version == kWireVersion) {
                c.state = ClientConn::State::Run;
                pump(idx, now);
            } else {
                fail(idx);
            }
            return;
        }
        if (auto *result = std::get_if<Result>(&msg)) {
            onResult(idx, *result, now);
            return;
        }
        if (std::holds_alternative<ProtoError>(msg))
            fail(idx);
    }

    void
    readConn(size_t idx, double now)
    {
        ClientConn &c = conns[idx];
        uint8_t buf[65536];
        while (true) {
            ptrdiff_t n = recvSome(c.fd.get(), buf);
            if (n < 0) {
                fail(idx);
                return;
            }
            if (n == 0)
                break;
            report.bytes_rx += static_cast<size_t>(n);
            c.decoder.feed(std::span<const uint8_t>(
                buf, static_cast<size_t>(n)));
        }
        while (c.state != ClientConn::State::Failed &&
               c.state != ClientConn::State::Done) {
            auto polled = c.decoder.poll();
            if (!polled)
                return;
            if (std::holds_alternative<WireError>(*polled)) {
                fail(idx);
                return;
            }
            onMessage(idx, std::move(std::get<Message>(*polled)), now);
        }
    }

    void
    onConnected(size_t idx)
    {
        ClientConn &c = conns[idx];
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(c.fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
            fail(idx);
            return;
        }
        c.state = ClientConn::State::AwaitAck;
        ++report.connections_opened;
        arm(idx, false);
        Hello hello;
        hello.tenant = c.tenant;
        sendMsg(idx, Message{hello});
    }

    void
    drainRetries(double now)
    {
        while (!retries.empty() && retries.top().due_ms <= now) {
            uint64_t id = retries.top().task_id;
            retries.pop();
            size_t idx = static_cast<size_t>(id >> kSeqBits);
            ClientConn &c = conns[idx];
            if (c.state != ClientConn::State::Run)
                continue;
            if (tasks[id].terminal)
                continue;
            submitTask(idx, id, now);
        }
    }

    double
    percentile(double p)
    {
        if (latencies.empty())
            return 0.0;
        std::vector<double> sorted = latencies;
        std::sort(sorted.begin(), sorted.end());
        size_t i = static_cast<size_t>(
            p * static_cast<double>(sorted.size() - 1) + 0.5);
        return sorted[std::min(i, sorted.size() - 1)];
    }

    LoadGenReport run();
};

LoadGenReport
Driver::run()
{
    epoll = Fd(::epoll_create1(0));
    if (!epoll.valid())
        return report;
    t0 = std::chrono::steady_clock::now();
    conns.resize(opt.connections);
    for (size_t i = 0; i < opt.connections; ++i) {
        ClientConn &c = conns[i];
        c.tenant = tenantOf(i);
        c.fd = connectTcpNonBlocking(opt.port);
        if (!c.fd.valid()) {
            c.state = ClientConn::State::Failed;
            ++report.connections_failed;
            continue;
        }
        // EPOLLOUT signals connect completion; want_write mirrors it.
        c.want_write = true;
        epoll_event ev = {};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.u64 = i;
        ::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, c.fd.get(), &ev);
        ++live;
    }

    epoll_event evs[256];
    while (live > 0) {
        double now = nowMs();
        if (opt.deadline_ms > 0.0 && now > opt.deadline_ms)
            break;
        int n = ::epoll_wait(epoll.get(), evs, 256, 10);
        now = nowMs();
        for (int i = 0; i < n; ++i) {
            size_t idx = static_cast<size_t>(evs[i].data.u64);
            ClientConn &c = conns[idx];
            if (c.state == ClientConn::State::Failed ||
                c.state == ClientConn::State::Done)
                continue;
            if (c.state == ClientConn::State::Connecting) {
                if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
                    fail(idx);
                    continue;
                }
                if (evs[i].events & EPOLLOUT)
                    onConnected(idx);
                continue;
            }
            if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
                fail(idx);
                continue;
            }
            if (evs[i].events & EPOLLIN)
                readConn(idx, now);
            if ((c.state != ClientConn::State::Failed &&
                 c.state != ClientConn::State::Done) &&
                (evs[i].events & EPOLLOUT))
                flush(idx);
        }
        drainRetries(nowMs());
    }

    report.wall_ms = nowMs();
    for (const auto &kv : tasks)
        if (!kv.second.terminal)
            ++report.lost;
    // Connections that never ran leave their whole quota unsubmitted.
    size_t expected = opt.connections * opt.tasks_per_conn;
    size_t tracked = tasks.size();
    if (expected > tracked)
        report.lost += expected - tracked;
    if (report.wall_ms > 0.0)
        report.throughput_per_s =
            static_cast<double>(report.results_ok) * 1000.0 /
            report.wall_ms;
    report.p50_ms = percentile(0.50);
    report.p99_ms = percentile(0.99);
    report.max_ms =
        latencies.empty()
            ? 0.0
            : *std::max_element(latencies.begin(), latencies.end());
    return report;
}

} // namespace

LoadGenReport
runLoadGen(const LoadGenOptions &opt)
{
    Driver driver(opt);
    return driver.run();
}

size_t
raiseFdLimit()
{
    rlimit lim = {};
    if (::getrlimit(RLIMIT_NOFILE, &lim) != 0)
        return 0;
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
    ::getrlimit(RLIMIT_NOFILE, &lim);
    return static_cast<size_t>(lim.rlim_cur);
}

} // namespace bzk::net
