#include "net/Client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include <poll.h>

namespace bzk::net {

bool
SyncClient::connect(uint16_t port, uint64_t tenant, int attempts,
                    double retry_delay_ms)
{
    close();
    decoder_ = FrameDecoder();
    last_error_.reset();
    version_ = kMinWireVersion;
    for (int i = 0; i < attempts && !fd_.valid(); ++i) {
        fd_ = connectTcp(port);
        if (!fd_.valid())
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    retry_delay_ms));
    }
    if (!fd_.valid())
        return false;

    Hello hello;
    hello.tenant = tenant;
    if (!send(Message{hello}))
        return false;
    auto reply = receive();
    if (!reply) {
        close();
        return false;
    }
    if (auto *ack = std::get_if<HelloAck>(&*reply);
        ack && ack->version >= kMinWireVersion &&
        ack->version <= kWireVersion) {
        ack_ = *ack;
        version_ = ack->version;
        return true;
    }
    close();
    return false;
}

bool
SyncClient::send(const Message &msg)
{
    if (!fd_.valid())
        return false;
    std::vector<uint8_t> frame = encodeFrame(msg, version_);
    size_t sent = 0;
    while (sent < frame.size()) {
        ptrdiff_t n = sendSome(
            fd_.get(), std::span<const uint8_t>(frame.data() + sent,
                                                frame.size() - sent));
        if (n < 0) {
            close();
            return false;
        }
        if (n == 0) {
            // Blocking socket briefly write-blocked; wait for space.
            pollfd pfd = {fd_.get(), POLLOUT, 0};
            ::poll(&pfd, 1, 100);
            continue;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

std::optional<Message>
SyncClient::receive(double timeout_ms)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double, std::milli>(
                        timeout_ms);
    while (true) {
        if (auto polled = decoder_.poll()) {
            if (std::holds_alternative<WireError>(*polled)) {
                last_error_ = std::get<WireError>(*polled);
                close();
                return std::nullopt;
            }
            return std::move(std::get<Message>(*polled));
        }
        if (!fd_.valid())
            return std::nullopt;
        auto left = std::chrono::duration<double, std::milli>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
        if (left <= 0)
            return std::nullopt;
        pollfd pfd = {fd_.get(), POLLIN, 0};
        int ready = ::poll(&pfd, 1,
                           static_cast<int>(std::min(left, 100.0)) + 1);
        if (ready <= 0)
            continue;
        uint8_t buf[65536];
        ptrdiff_t n = recvSome(fd_.get(), buf);
        if (n < 0) {
            close();
            return std::nullopt;
        }
        if (n > 0)
            decoder_.feed(std::span<const uint8_t>(
                buf, static_cast<size_t>(n)));
    }
}

std::optional<Result>
SyncClient::roundTrip(const Submit &task, double timeout_ms)
{
    // A v1 connection cannot carry a protocol kind; refuse up front
    // rather than hitting the encoder's caller-error panic.
    if (task.kind != sched::ProtocolKind::TableCommit &&
        version_ < 2)
        return std::nullopt;
    if (!send(Message{task}))
        return std::nullopt;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double, std::milli>(
                        timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        auto left = std::chrono::duration<double, std::milli>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
        auto msg = receive(left);
        if (!msg)
            return std::nullopt;
        if (auto *result = std::get_if<Result>(&*msg);
            result && result->task_id == task.task_id)
            return std::move(*result);
        if (std::holds_alternative<ProtoError>(*msg)) {
            close();
            return std::nullopt;
        }
    }
    return std::nullopt;
}

} // namespace bzk::net
