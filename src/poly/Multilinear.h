#ifndef BZK_POLY_MULTILINEAR_H_
#define BZK_POLY_MULTILINEAR_H_

/**
 * @file
 * Multilinear polynomials over the Boolean hypercube.
 *
 * A multilinear polynomial in n variables is represented by its 2^n
 * evaluations over {0,1}^n — exactly the "table A" of the paper's
 * Algorithm 1. Index b encodes the point (b_1, ..., b_n) with
 * b = sum b_i 2^{i-1}, i.e. variable x_1 is the least-significant bit.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ff/FieldBackend.h"
#include "util/Log.h"
#include "util/Rng.h"

namespace bzk {

/**
 * Dense multilinear polynomial given by its hypercube evaluation table.
 *
 * @tparam F field type (Fr, Gl64, ...).
 */
template <typename F>
class Multilinear
{
  public:
    Multilinear() = default;

    /** Wrap an evaluation table; size must be a power of two. */
    explicit Multilinear(std::vector<F> evals) : evals_(std::move(evals))
    {
        if (evals_.empty() || (evals_.size() & (evals_.size() - 1)))
            panic("Multilinear: table size %zu not a power of two",
                  evals_.size());
    }

    /** Uniformly random polynomial with 2^n entries. */
    static Multilinear
    random(unsigned n, Rng &rng)
    {
        std::vector<F> evals(size_t{1} << n);
        for (auto &e : evals)
            e = F::random(rng);
        return Multilinear(std::move(evals));
    }

    /** Number of variables n. */
    unsigned
    numVars() const
    {
        unsigned n = 0;
        while ((size_t{1} << n) < evals_.size())
            ++n;
        return n;
    }

    /** The evaluation table (size 2^n). */
    const std::vector<F> &evals() const { return evals_; }

    /** Mutable access to the evaluation table. */
    std::vector<F> &evals() { return evals_; }

    /** Sum of the polynomial over the whole hypercube. */
    F
    sumOverHypercube() const
    {
        return ff::sumLanes(evals_.data(), evals_.size());
    }

    /**
     * Evaluate at an arbitrary point (r_1, ..., r_n) by n rounds of
     * table folding: A'[b] = (1 - r_i) A[b] + r_i A[b + half].
     */
    F
    evaluate(const std::vector<F> &point) const
    {
        if (point.size() != numVars())
            panic("Multilinear::evaluate: %zu coords for %u vars",
                  point.size(), numVars());
        std::vector<F> table = evals_;
        size_t half = table.size() / 2;
        for (const F &r : point) {
            ff::foldLanes(table.data(), table.data() + half, r, half);
            half /= 2;
        }
        return table[0];
    }

    /**
     * Fix the first variable x_1 := r, producing an (n-1)-variable
     * polynomial — one round of Algorithm 1's update.
     *
     * Note Algorithm 1 folds on the *most*-significant bit: entry b pairs
     * with b + 2^{n-i}. We follow that exact order so proofs match the
     * paper's round structure; evaluate() above mirrors it.
     */
    Multilinear
    fixVariable(const F &r) const
    {
        size_t half = evals_.size() / 2;
        std::vector<F> folded(evals_.begin(), evals_.begin() + half);
        ff::foldLanes(folded.data(), evals_.data() + half, r, half);
        return Multilinear(std::move(folded));
    }

  private:
    std::vector<F> evals_;
};

/**
 * eq(r, x): the multilinear extension of equality. Returns the table of
 * eq(r, b) for all b in {0,1}^n, with the same bit order as Multilinear
 * (variable i paired with bit 2^{n-i} to match Algorithm 1 folding).
 */
template <typename F>
std::vector<F>
eqTable(const std::vector<F> &r)
{
    std::vector<F> table{F::one()};
    table.reserve(size_t{1} << r.size());
    // Each doubling step makes the newly-processed variable control the
    // current top bit. Processing r back-to-front therefore leaves r[0]
    // on the most-significant bit, matching evaluate()'s fold order.
    for (auto it = r.rbegin(); it != r.rend(); ++it) {
        const F &ri = *it;
        size_t half = table.size();
        table.resize(half * 2);
        for (size_t b = 0; b < half; ++b) {
            F lo = table[b] * (F::one() - ri);
            F hi = table[b] * ri;
            table[b] = lo;
            table[b + half] = hi;
        }
    }
    return table;
}

/**
 * Lagrange interpolation of the unique degree-(k-1) univariate polynomial
 * through points (xs[i], ys[i]), evaluated at @p x. Used by the system to
 * encode host-side intermediate results into polynomials (Sec. 4).
 */
template <typename F>
F
lagrangeEval(const std::vector<F> &xs, const std::vector<F> &ys, const F &x)
{
    if (xs.size() != ys.size())
        panic("lagrangeEval: mismatched point count");
    // One batched inversion replaces k Fermat inversions. The xs are
    // required distinct (otherwise a denominator is zero and the
    // interpolant ill-defined), so every entry inverts.
    std::vector<F> dens(xs.size(), F::one());
    for (size_t i = 0; i < xs.size(); ++i)
        for (size_t j = 0; j < xs.size(); ++j)
            if (j != i)
                dens[i] *= xs[i] - xs[j];
    if (ff::batchInverse(dens.data(), dens.size()) != dens.size())
        panic("lagrangeEval: repeated interpolation node");
    F acc = F::zero();
    for (size_t i = 0; i < xs.size(); ++i) {
        F num = F::one();
        for (size_t j = 0; j < xs.size(); ++j)
            if (j != i)
                num *= x - xs[j];
        acc += ys[i] * num * dens[i];
    }
    return acc;
}

} // namespace bzk

#endif // BZK_POLY_MULTILINEAR_H_
