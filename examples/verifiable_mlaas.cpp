/**
 * @file
 * Verifiable machine learning as a service (the paper's Section 5,
 * Figure 8), end to end and fully functional at demo scale:
 *
 *  1. the provider commits to a CNN's weights (Merkle root);
 *  2. a customer sends an image; the engine returns the prediction;
 *  3. the provider proves, in zero knowledge, that the prediction came
 *     from the committed inference circuit;
 *  4. the customer verifies the proof against the public image.
 *
 * Then the same service is sized at VGG-16 scale on the simulated GH200
 * to show the sub-second batch-proving headline.
 *
 *   $ ./examples/verifiable_mlaas
 */

#include <cstdio>

#include "core/Snark.h"
#include "gpusim/Device.h"
#include "merkle/MerkleTree.h"
#include "zkml/CircuitCompiler.h"
#include "zkml/Cnn.h"
#include "zkml/MlService.h"

using namespace bzk;

int
main()
{
    Rng rng(42);

    // ---- Functional demo with a small CNN -------------------------
    std::printf("== functional verifiable inference (tiny CNN) ==\n");
    CnnModel model(CnnConfig::tiny(), rng);
    MerkleTree commitment = MerkleTree::build(model.weightBytes());
    std::printf("model committed: root %s\n",
                commitment.root().toHex().c_str());

    // Customer input.
    Tensor image(1, 8, 8);
    for (auto &p : image.data)
        p = static_cast<int64_t>(rng.nextBounded(8));

    // Prediction by the ML engine.
    Tensor logits = model.forward(image);
    int best = 0;
    for (int i = 1; i < logits.channels; ++i)
        if (logits.data[i] > logits.data[best])
            best = i;
    std::printf("prediction: class %d\n", best);

    // Compile the inference circuit and prove the prediction.
    auto compiled = compileCnn<Fr>(model);
    auto inputs = inputsFromTensor<Fr>(image);
    auto witness = witnessFromModel<Fr>(model);
    auto assignment = compiled.circuit.evaluate(inputs, witness);
    auto tables = compiled.circuit.buildTables(assignment);
    std::printf("inference circuit: %zu gates -> 2^%u rows\n",
                compiled.circuit.numGates(), tables.n_vars);

    Snark<Fr> snark(tables.n_vars, /*seed=*/2024);
    auto proof = snark.prove(tables, inputs);
    std::printf("proof: %zu bytes\n", proof.sizeBytes());
    std::printf("customer verification: %s\n",
                snark.verify(proof, inputs) ? "ACCEPT" : "REJECT");

    // ---- VGG-16 scale on the pipelined system ----------------------
    std::printf("\n== VGG-16 scale service (GH200 spec, simulated) ==\n");
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    VerifiableMlService service(dev, rng);
    auto result = service.serveBatch(64, rng);
    std::printf("served %zu requests\n", size_t{64});
    std::printf("amortized proving: %.1f ms/proof (%.2f proofs/s)\n",
                1.0 / result.proving.stats.throughput_per_ms,
                result.proving.stats.throughput_per_ms * 1e3);
    std::printf("sub-second proof generation: %s\n",
                1.0 / result.proving.stats.throughput_per_ms < 1000.0
                    ? "yes"
                    : "no");
    return 0;
}
