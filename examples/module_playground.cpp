/**
 * @file
 * The three pipelined modules used standalone — for integrators who
 * want a batch Merkle builder, a batch sum-check prover, or a batch
 * linear-time encoder without the full SNARK (the paper's "modules can
 * work individually" claim).
 *
 *   $ ./examples/module_playground
 */

#include <cstdio>

#include "encoder/GpuEncoder.h"
#include "encoder/SpielmanCode.h"
#include "gpusim/Device.h"
#include "merkle/GpuMerkle.h"
#include "sumcheck/GpuSumcheck.h"
#include "sumcheck/Sumcheck.h"

using namespace bzk;

int
main()
{
    gpusim::Device dev(gpusim::DeviceSpec::rtx3090ti());
    Rng rng(123);

    // --- Batch Merkle trees -----------------------------------------
    {
        std::printf("== pipelined Merkle module ==\n");
        GpuMerkleOptions opt;
        opt.functional = 2; // hash two trees for real
        std::vector<Digest> roots;
        auto stats =
            PipelinedMerkleGpu(dev, opt).run(128, 1 << 12, rng, &roots);
        std::printf("first real root: %s\n", roots[0].toHex().c_str());
        std::printf("batch of %zu trees of 2^12 blocks: %.2f trees/ms, "
                    "utilization %.0f%%\n\n",
                    stats.batch, stats.throughput_per_ms,
                    stats.utilization * 100);
    }

    // --- Batch sum-check proofs --------------------------------------
    {
        std::printf("== pipelined sum-check module ==\n");
        GpuSumcheckOptions opt;
        opt.functional = 1;
        std::vector<SumcheckProof<Fr>> proofs;
        auto stats =
            PipelinedSumcheckGpu(dev, opt).run(128, 14, rng, &proofs);
        std::printf("real proof rounds: %zu\n", proofs[0].rounds.size());
        std::printf("batch of %zu proofs over 2^14 tables: %.2f "
                    "proofs/ms, utilization %.0f%%\n\n",
                    stats.batch, stats.throughput_per_ms,
                    stats.utilization * 100);
    }

    // --- Batch linear-time codes -------------------------------------
    {
        std::printf("== pipelined linear-time encoder module ==\n");
        GpuEncoderOptions opt;
        opt.functional = 1;
        std::vector<std::vector<Fr>> codes;
        auto stats =
            PipelinedEncoderGpu(dev, opt).run(128, 1 << 12, rng, &codes);
        std::printf("real codeword length: %zu (rate 1/2)\n",
                    codes[0].size());
        std::printf("batch of %zu codes of 2^12 elements: %.2f codes/ms, "
                    "utilization %.0f%%\n\n",
                    stats.batch, stats.throughput_per_ms,
                    stats.utilization * 100);
    }

    // --- And the reference implementations, host-side ----------------
    {
        std::printf("== host reference path ==\n");
        auto poly = Multilinear<Fr>::random(10, rng);
        Transcript pt("playground");
        pt.absorbField("sum", poly.sumOverHypercube());
        auto fs = proveSumcheckFs(poly, pt);
        Transcript vt("playground");
        vt.absorbField("sum", poly.sumOverHypercube());
        auto verdict =
            verifySumcheckFs(poly.sumOverHypercube(), fs.proof, vt);
        std::printf("host sum-check verifies: %s\n",
                    verdict.ok && verdict.final_claim ==
                                      poly.evaluate(verdict.point)
                        ? "yes"
                        : "NO");

        SpielmanCode<Fr> code(1 << 10, 5);
        std::vector<Fr> msg(1 << 10);
        for (auto &m : msg)
            m = Fr::random(rng);
        auto cw = code.encode(msg);
        std::printf("host encoder: %zu -> %zu elements, systematic "
                    "prefix intact: %s\n",
                    msg.size(), cw.size(),
                    std::equal(msg.begin(), msg.end(), cw.begin())
                        ? "yes"
                        : "NO");
    }
    return 0;
}
