/**
 * @file
 * Streaming proof service: requests arrive like a flowing stream (the
 * paper's MLaaS/zkBridge motivation) and the pipelined system admits
 * one per cycle. Sweeps offered load and prints the latency/queueing
 * profile an operator would use for capacity planning.
 *
 *   $ ./examples/streaming_service [log2_gates]
 */

#include <cstdio>
#include <cstdlib>

#include "core/StreamingService.h"
#include "gpusim/Device.h"

using namespace bzk;

int
main(int argc, char **argv)
{
    unsigned n_vars = argc > 1
                          ? static_cast<unsigned>(std::atoi(argv[1]))
                          : 18;
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    StreamingZkpService service(dev);

    // Probe the pipeline's admission rate first.
    Rng probe(0);
    StreamingOptions tiny;
    tiny.n_vars = n_vars;
    tiny.num_requests = 10;
    tiny.arrival_rate_per_ms = 0.001;
    auto baseline = service.run(tiny, probe);
    std::printf("circuit class 2^%u, %s spec\n", n_vars,
                dev.spec().name.c_str());
    std::printf("pipeline: %.3f ms/cycle, depth %zu cycles -> capacity "
                "%.1f proofs/s, base latency %.1f ms\n\n",
                baseline.cycle_ms, baseline.depth,
                1e3 / baseline.cycle_ms,
                baseline.depth * baseline.cycle_ms);

    std::printf("%-8s %-10s %-10s %-10s %-10s %-10s\n", "load", "p50(ms)",
                "p90(ms)", "p99(ms)", "queue", "proofs/s");
    for (double load : {0.2, 0.5, 0.8, 0.95, 1.1}) {
        StreamingOptions w;
        w.n_vars = n_vars;
        w.num_requests = 20000;
        w.arrival_rate_per_ms = load / baseline.cycle_ms;
        Rng rng(42);
        auto r = service.run(w, rng);
        std::printf("%-8.2f %-10.1f %-10.1f %-10.1f %-10.1f %-10.1f\n",
                    load, r.p50_ms, r.p90_ms, r.p99_ms, r.mean_queue,
                    r.throughput_per_ms * 1e3);
    }
    std::printf("\nbelow saturation the pipeline adds only its depth "
                "(~%zu cycles) of latency;\nabove load 1.0 the queue "
                "grows and tail latency explodes while throughput "
                "pins at capacity.\n",
                baseline.depth);
    return 0;
}
