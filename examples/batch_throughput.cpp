/**
 * @file
 * Batch proof generation: the paper's core scenario. A stream of proof
 * tasks flows through the fully pipelined system on a simulated GH200,
 * while the same workload runs on the intuitive baselines for contrast.
 *
 *   $ ./examples/batch_throughput [log2_gates] [batch]
 */

#include <cstdio>
#include <cstdlib>

#include "baseline/OldProtocol.h"
#include "core/PipelinedSystem.h"
#include "gpusim/Device.h"
#include "util/Rng.h"

using namespace bzk;

int
main(int argc, char **argv)
{
    unsigned log_gates = argc > 1 ? static_cast<unsigned>(
                                        std::atoi(argv[1]))
                                  : 18;
    size_t batch = argc > 2 ? static_cast<size_t>(std::atoll(argv[2]))
                            : 256;
    if (log_gates < 8 || log_gates > 24) {
        std::fprintf(stderr, "log2_gates must be in [8, 24]\n");
        return 1;
    }

    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    Rng rng(7);

    std::printf("batch generation of %zu proofs for circuits with 2^%u "
                "gates on the %s spec\n\n",
                batch, log_gates, dev.spec().name.c_str());

    // Our pipelined system: one real proof generated and verified
    // functionally, the batch timed on the simulator.
    SystemOptions opt;
    opt.functional = log_gates <= 14 ? 1 : 0;
    PipelinedZkpSystem system(dev, opt);
    auto ours = system.run(batch, log_gates, rng);
    std::printf("BatchZK (pipelined):\n");
    if (!ours.proofs.empty())
        std::printf("  functional proof verified: %s\n",
                    ours.verified ? "yes" : "NO");
    std::printf("  throughput       : %.2f proofs/s\n",
                ours.stats.throughput_per_ms * 1e3);
    std::printf("  first-proof lat. : %.2f ms\n",
                ours.stats.first_latency_ms);
    std::printf("  device memory    : %.3f GB\n",
                static_cast<double>(ours.stats.peak_device_bytes) /
                    (1ULL << 30));
    std::printf("  lane split       : %.0f enc / %.0f merkle / %.0f "
                "sumcheck (of %u lanes)\n",
                ours.lanes_encoder, ours.lanes_merkle,
                ours.lanes_sumcheck, dev.spec().cuda_cores);
    std::printf("  comm/comp cycle  : %.3f / %.3f ms (overlapped)\n\n",
                ours.comm_ms_per_cycle, ours.comp_ms_per_cycle);

    // The old-protocol GPU baseline on the same device.
    BellpersonLikeGpu bell(dev);
    auto bp = bell.run(std::min<size_t>(batch, 4), log_gates, rng);
    std::printf("Bellperson-style baseline (latency-oriented):\n");
    std::printf("  throughput       : %.4f proofs/s\n",
                bp.stats.throughput_per_ms * 1e3);
    std::printf("  per-proof latency: %.2f ms\n\n",
                bp.stats.first_latency_ms);

    std::printf("throughput advantage: %.1fx\n",
                ours.stats.throughput_per_ms /
                    bp.stats.throughput_per_ms);
    return 0;
}
