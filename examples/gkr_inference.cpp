/**
 * @file
 * zkCNN-style verifiable inference with GKR: compile a CNN into a
 * layered circuit and prove the forward pass layer by layer — the
 * protocol family whose sum-check inner loop BatchZK's pipelined module
 * accelerates. Inputs and weights are public here (verifiable
 * outsourcing); see verifiable_mlaas for the hidden-model SNARK path.
 *
 *   $ ./examples/gkr_inference
 */

#include <cstdio>

#include "ff/Fields.h"
#include "gkr/Gkr.h"
#include "util/Timer.h"
#include "zkml/LayeredCnnCompiler.h"

using namespace bzk;

int
main()
{
    Rng rng(2024);
    CnnModel model(CnnConfig::tiny(), rng);
    std::printf("CNN: %zu weights, %zu MACs per inference\n",
                model.numWeights(), model.macCount());

    auto compiled = compileCnnLayered<Fr>(model);
    std::printf("layered circuit: %zu layers, %zu gates\n",
                compiled.circuit.depth(), compiled.circuit.numGates());

    // A customer's image.
    Tensor image(1, 8, 8);
    for (auto &p : image.data)
        p = static_cast<int64_t>(rng.nextBounded(8));
    auto inputs = layeredCnnInputs<Fr>(model, image);

    // Prove the inference.
    Gkr<Fr> gkr(compiled.circuit);
    Transcript pt("gkr-inference");
    Timer timer;
    auto proof = gkr.prove(inputs, pt);
    double prove_ms = timer.milliseconds();

    // The proven logits.
    Tensor expect = model.forward(image);
    int best = 0;
    for (size_t i = 1; i < compiled.num_outputs; ++i)
        if (expect.data[i] > expect.data[best])
            best = static_cast<int>(i);
    std::printf("prediction: class %d (proved in %.1f ms, %zu-byte "
                "proof for %zu gates)\n",
                best, prove_ms, proof.sizeBytes(),
                compiled.circuit.numGates());

    // Verify.
    Transcript vt("gkr-inference");
    timer.reset();
    bool ok = gkr.verify(proof, inputs, vt);
    std::printf("verification: %s (%.1f ms)\n", ok ? "ACCEPT" : "REJECT",
                timer.milliseconds());

    // Forged logits do not verify.
    auto forged = proof;
    forged.outputs[best] += Fr::one();
    Transcript vt2("gkr-inference");
    std::printf("forged-logit verification: %s\n",
                gkr.verify(forged, inputs, vt2) ? "ACCEPT (BUG!)"
                                                : "REJECT");
    return ok ? 0 : 1;
}
