/**
 * @file
 * Quickstart: build a circuit, generate a zero-knowledge proof with the
 * BatchZK SNARK, and verify it.
 *
 * This walks the whole public API once: Circuit -> ConstraintTables ->
 * Snark::prove -> Snark::verify, printing what happens at each step.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "circuit/Circuit.h"
#include "core/Snark.h"
#include "ff/Fields.h"

using namespace bzk;

int
main()
{
    // 1. Describe the computation as an arithmetic circuit. Here the
    //    prover shows it knows a secret w with  (w^2 + x) * w == y
    //    for public x, y — without revealing w.
    Circuit<Fr> circuit;
    WireId x = circuit.addInput();   // public
    WireId w = circuit.addWitness(); // secret
    WireId w2 = circuit.mul(w, w);
    WireId sum = circuit.add(w2, x);
    WireId y = circuit.mul(sum, w);
    std::printf("circuit: %zu gates (%zu multiplications), output wire "
                "%u\n",
                circuit.numGates(), circuit.numMulGates(), y);

    // 2. Evaluate with concrete values: w = 5, x = 3 -> y = 140.
    std::vector<Fr> inputs{Fr::fromUint(3)};
    std::vector<Fr> witness{Fr::fromUint(5)};
    auto assignment = circuit.evaluate(inputs, witness);
    std::printf("evaluated: y = %s... (hex, truncated)\n",
                assignment.wires[y].toHexString().substr(48).c_str());

    // 3. Build the constraint tables (one a*b=c row per gate, padded).
    auto tables = circuit.buildTables(assignment);
    std::printf("constraint tables: 2^%u rows\n", tables.n_vars);

    // 4. Prove. The SNARK commits to the tables through the
    //    linear-time-encoder + Merkle-tree commitment, then runs the
    //    constraint sum-check, exactly the module chain of the paper.
    //    Table sizes below 2^6 are not supported, so pad the statement
    //    into a 2^6 instance by re-declaring n_vars.
    if (tables.n_vars < 6) {
        size_t padded = size_t{1} << 6;
        tables.a.resize(padded, Fr::zero());
        tables.b.resize(padded, Fr::zero());
        tables.c.resize(padded, Fr::zero());
        tables.n_vars = 6;
    }
    Snark<Fr> snark(tables.n_vars, /*public seed=*/2024);
    auto proof = snark.prove(tables, inputs);
    std::printf("proof generated: %zu bytes\n", proof.sizeBytes());

    // 5. Verify.
    bool ok = snark.verify(proof, inputs);
    std::printf("verification: %s\n", ok ? "ACCEPT" : "REJECT");

    // 6. A cheating verifier claim (different public input) fails.
    std::vector<Fr> wrong{Fr::fromUint(4)};
    std::printf("verification with wrong public input: %s\n",
                snark.verify(proof, wrong) ? "ACCEPT (BUG!)" : "REJECT");
    return ok ? 0 : 1;
}
