/**
 * @file
 * Tests for the R1CS builder and the wiring-sound FullSnark, including
 * the attacks the table-commitment Snark cannot catch: assignments that
 * satisfy every gate-local row but violate wiring, public-input or
 * constant bindings.
 */

#include <gtest/gtest.h>

#include "circuit/Circuit.h"
#include "circuit/R1cs.h"
#include "core/FullSnark.h"
#include "ff/Fields.h"

namespace bzk {
namespace {

template <typename F>
class R1csT : public ::testing::Test
{
};

using Fields = ::testing::Types<Fr, Gl64>;
TYPED_TEST_SUITE(R1csT, Fields);

template <typename F>
Circuit<F>
sampleCircuit()
{
    // out = (x + w) * w + 7, x public, w private.
    Circuit<F> c;
    WireId x = c.addInput();
    WireId w = c.addWitness();
    WireId k = c.addConst(F::fromUint(7));
    WireId s = c.add(x, w);
    WireId p = c.mul(s, w);
    c.add(p, k);
    return c;
}

TYPED_TEST(R1csT, HonestAssignmentSatisfies)
{
    using F = TypeParam;
    auto c = sampleCircuit<F>();
    auto r = buildR1cs(c);
    std::vector<F> inputs{F::fromUint(3)};
    std::vector<F> witness{F::fromUint(5)};
    auto asg = c.evaluate(inputs, witness);
    auto z = r.extendWitness(inputs, asg);
    EXPECT_TRUE(r.isSatisfied(z));
}

TYPED_TEST(R1csT, TamperedWireViolates)
{
    using F = TypeParam;
    auto c = sampleCircuit<F>();
    auto r = buildR1cs(c);
    std::vector<F> inputs{F::fromUint(3)};
    std::vector<F> witness{F::fromUint(5)};
    auto asg = c.evaluate(inputs, witness);
    asg.wires.back() += F::one();
    auto z = r.extendWitness(inputs, asg);
    EXPECT_FALSE(r.isSatisfied(z));
}

TYPED_TEST(R1csT, WrongPublicInputViolates)
{
    using F = TypeParam;
    auto c = sampleCircuit<F>();
    auto r = buildR1cs(c);
    std::vector<F> inputs{F::fromUint(3)};
    std::vector<F> witness{F::fromUint(5)};
    auto asg = c.evaluate(inputs, witness);
    // Claim the computation used x = 4 while the wires used x = 3.
    std::vector<F> wrong{F::fromUint(4)};
    auto z = r.extendWitness(wrong, asg);
    EXPECT_FALSE(r.isSatisfied(z));
}

TYPED_TEST(R1csT, WrongConstantViolates)
{
    using F = TypeParam;
    auto c = sampleCircuit<F>();
    auto r = buildR1cs(c);
    std::vector<F> inputs{F::fromUint(3)};
    std::vector<F> witness{F::fromUint(5)};
    auto asg = c.evaluate(inputs, witness);
    // Gate 2 is the constant 7; pretend its wire carries 8.
    asg.wires[2] = F::fromUint(8);
    // Fix downstream wires so every *local* gate relation holds except
    // the constant binding.
    asg.wires[5] = asg.wires[4] + asg.wires[2];
    auto z = r.extendWitness(inputs, asg);
    EXPECT_FALSE(r.isSatisfied(z));
}

TYPED_TEST(R1csT, MatrixMleMatchesDenseEvaluation)
{
    using F = TypeParam;
    Rng rng(1);
    auto c = randomCircuit<F>(30, 4, rng);
    auto r = buildR1cs(c);
    // Dense A as a (rows x cols) table; its MLE at (rx, ry) must match
    // evalMatrixMle.
    std::vector<F> dense(r.numRows() * r.numCols(), F::zero());
    for (const auto &e : r.a)
        dense[e.row * r.numCols() + e.col] += e.coeff;
    Multilinear<F> dense_ml(std::move(dense));

    std::vector<F> rx(r.row_vars), ry(r.col_vars);
    for (auto &v : rx)
        v = F::random(rng);
    for (auto &v : ry)
        v = F::random(rng);
    std::vector<F> point = rx;
    point.insert(point.end(), ry.begin(), ry.end());
    EXPECT_EQ(r.evalMatrixMle(r.a, rx, ry), dense_ml.evaluate(point));
}

TYPED_TEST(R1csT, PublicMleMatchesDense)
{
    using F = TypeParam;
    Rng rng(2);
    auto c = sampleCircuit<F>();
    auto r = buildR1cs(c);
    std::vector<F> inputs{F::fromUint(9)};
    auto pub = r.publicHalf(inputs);
    Multilinear<F> pub_ml(pub);
    std::vector<F> tail(r.col_vars - 1);
    for (auto &v : tail)
        v = F::random(rng);
    EXPECT_EQ(r.evalPublicMle(inputs, tail), pub_ml.evaluate(tail));
}

template <typename F>
class FullSnarkT : public ::testing::Test
{
};

TYPED_TEST_SUITE(FullSnarkT, Fields);

template <typename F>
struct Instance
{
    Circuit<F> circuit;
    R1cs<F> r1cs;
    std::vector<F> inputs;
    Assignment<F> assignment;
};

template <typename F>
Instance<F>
randomInstanceWithInputs(size_t gates, Rng &rng)
{
    Instance<F> inst;
    // An input-bearing random circuit: start from an input, then grow.
    Circuit<F> &c = inst.circuit;
    std::vector<WireId> pool;
    pool.push_back(c.addInput());
    pool.push_back(c.addConst(F::fromUint(3)));
    for (int i = 0; i < 4; ++i)
        pool.push_back(c.addWitness());
    while (c.numGates() < gates) {
        WireId l = pool[rng.nextBounded(pool.size())];
        WireId r = pool[rng.nextBounded(pool.size())];
        pool.push_back((rng.next() & 1) ? c.mul(l, r) : c.add(l, r));
        if (pool.size() > 64)
            pool.erase(pool.begin() + 2);
    }
    inst.r1cs = buildR1cs(c);
    inst.inputs = {F::fromUint(11)};
    std::vector<F> witness(c.numWitnesses());
    for (auto &w : witness)
        w = F::random(rng);
    inst.assignment = c.evaluate(inst.inputs, witness);
    return inst;
}

TYPED_TEST(FullSnarkT, ProveVerifyRoundTrip)
{
    using F = TypeParam;
    Rng rng(3);
    for (size_t gates : {100u, 400u}) {
        auto inst = randomInstanceWithInputs<F>(gates, rng);
        // PCS needs >= 6 private-half vars -> pad via bigger circuits
        // only; skip too-small instances.
        if (inst.r1cs.col_vars - 1 < 6)
            continue;
        FullSnark<F> snark(inst.r1cs, 77);
        auto proof = snark.prove(inst.inputs, inst.assignment);
        EXPECT_TRUE(snark.verify(proof, inst.inputs)) << gates;
    }
}

TYPED_TEST(FullSnarkT, RejectsWrongPublicInput)
{
    using F = TypeParam;
    Rng rng(4);
    auto inst = randomInstanceWithInputs<F>(200, rng);
    FullSnark<F> snark(inst.r1cs, 77);
    auto proof = snark.prove(inst.inputs, inst.assignment);
    std::vector<F> wrong{inst.inputs[0] + F::one()};
    EXPECT_FALSE(snark.verify(proof, wrong));
}

TYPED_TEST(FullSnarkT, RejectsWiringViolation)
{
    // The attack the table-commitment Snark cannot catch: every gate
    // row is locally consistent, but a fan-out wire is lied about.
    using F = TypeParam;
    Rng rng(5);
    auto inst = randomInstanceWithInputs<F>(200, rng);
    // Corrupt one mid-circuit wire and patch only gates whose row
    // directly *outputs* it, leaving consumers reading the old value.
    auto tampered = inst.assignment;
    tampered.wires[100] += F::one();
    FullSnark<F> snark(inst.r1cs, 77);
    auto proof = snark.prove(inst.inputs, tampered);
    EXPECT_FALSE(snark.verify(proof, inst.inputs));
}

TYPED_TEST(FullSnarkT, RejectsTamperedPhase1)
{
    using F = TypeParam;
    Rng rng(6);
    auto inst = randomInstanceWithInputs<F>(200, rng);
    FullSnark<F> snark(inst.r1cs, 77);
    auto proof = snark.prove(inst.inputs, inst.assignment);
    proof.phase1.rounds[1][2] += F::one();
    EXPECT_FALSE(snark.verify(proof, inst.inputs));
}

TYPED_TEST(FullSnarkT, RejectsTamperedPhase2)
{
    using F = TypeParam;
    Rng rng(7);
    auto inst = randomInstanceWithInputs<F>(200, rng);
    FullSnark<F> snark(inst.r1cs, 77);
    auto proof = snark.prove(inst.inputs, inst.assignment);
    proof.phase2.rounds[0][0] += F::one();
    EXPECT_FALSE(snark.verify(proof, inst.inputs));
}

TYPED_TEST(FullSnarkT, RejectsTamperedOpening)
{
    using F = TypeParam;
    Rng rng(8);
    auto inst = randomInstanceWithInputs<F>(200, rng);
    FullSnark<F> snark(inst.r1cs, 77);
    auto proof = snark.prove(inst.inputs, inst.assignment);
    proof.vw += F::one();
    EXPECT_FALSE(snark.verify(proof, inst.inputs));
}

TYPED_TEST(FullSnarkT, RejectsTamperedCommitment)
{
    using F = TypeParam;
    Rng rng(9);
    auto inst = randomInstanceWithInputs<F>(200, rng);
    FullSnark<F> snark(inst.r1cs, 77);
    auto proof = snark.prove(inst.inputs, inst.assignment);
    proof.commit_w.root.bytes[5] ^= 2;
    EXPECT_FALSE(snark.verify(proof, inst.inputs));
}

TYPED_TEST(FullSnarkT, ProofSizeAccounted)
{
    using F = TypeParam;
    Rng rng(10);
    auto inst = randomInstanceWithInputs<F>(200, rng);
    FullSnark<F> snark(inst.r1cs, 77);
    auto proof = snark.prove(inst.inputs, inst.assignment);
    EXPECT_GT(proof.sizeBytes(), 2000u);
}

} // namespace
} // namespace bzk
