/**
 * @file
 * Tests for BN254 G1 group arithmetic and Pippenger MSM.
 */

#include <gtest/gtest.h>

#include "curve/Bn254.h"
#include "curve/Msm.h"

namespace bzk {
namespace {

TEST(G1, GeneratorOnCurve)
{
    EXPECT_TRUE(G1Point::generator().isOnCurve());
    EXPECT_FALSE(G1Point::generator().isInfinity());
}

TEST(G1, InfinityIdentity)
{
    G1Point inf;
    G1Point g = G1Point::generator();
    EXPECT_TRUE(inf.isInfinity());
    EXPECT_EQ(inf.add(g), g);
    EXPECT_EQ(g.add(inf), g);
    EXPECT_TRUE(inf.dbl().isInfinity());
}

TEST(G1, AddInverseGivesInfinity)
{
    G1Point g = G1Point::generator();
    EXPECT_TRUE(g.add(g.neg()).isInfinity());
}

TEST(G1, DoubleMatchesAdd)
{
    Rng rng(1);
    for (int i = 0; i < 10; ++i) {
        G1Point p = G1Point::random(rng);
        EXPECT_EQ(p.dbl(), p.add(p));
        EXPECT_TRUE(p.dbl().isOnCurve());
    }
}

TEST(G1, AddCommutativeAssociative)
{
    Rng rng(2);
    G1Point p = G1Point::random(rng);
    G1Point q = G1Point::random(rng);
    G1Point r = G1Point::random(rng);
    EXPECT_EQ(p.add(q), q.add(p));
    EXPECT_EQ(p.add(q).add(r), p.add(q.add(r)));
}

TEST(G1, MixedAddMatchesFullAdd)
{
    Rng rng(3);
    for (int i = 0; i < 10; ++i) {
        G1Point p = G1Point::random(rng);
        G1Point q = G1Point::random(rng);
        EXPECT_EQ(p.addMixed(q.toAffine()), p.add(q));
    }
    // Degenerate cases.
    G1Point p = G1Point::random(rng);
    EXPECT_EQ(p.addMixed(p.toAffine()), p.dbl());
    EXPECT_TRUE(p.addMixed(p.neg().toAffine()).isInfinity());
}

TEST(G1, ScalarMulSmall)
{
    G1Point g = G1Point::generator();
    EXPECT_TRUE(g.mul(Fr::zero()).isInfinity());
    EXPECT_EQ(g.mul(Fr::one()), g);
    EXPECT_EQ(g.mul(Fr::fromUint(2)), g.dbl());
    EXPECT_EQ(g.mul(Fr::fromUint(5)),
              g.dbl().dbl().add(g));
}

TEST(G1, ScalarMulDistributes)
{
    Rng rng(4);
    Fr a = Fr::random(rng);
    Fr b = Fr::random(rng);
    G1Point g = G1Point::generator();
    EXPECT_EQ(g.mul(a + b), g.mul(a).add(g.mul(b)));
    EXPECT_EQ(g.mul(a * b), g.mul(a).mul(b));
}

TEST(G1, GroupOrderAnnihilates)
{
    // (p - 1) * G + G = infinity, i.e. r*G = 0 for the group order r.
    G1Point g = G1Point::generator();
    G1Point pm1 = g.mul(Fr::zero() - Fr::one());
    EXPECT_TRUE(pm1.add(g).isInfinity());
}

TEST(G1, AffineRoundTrip)
{
    Rng rng(5);
    G1Point p = G1Point::random(rng);
    EXPECT_EQ(G1Point::fromAffine(p.toAffine()), p);
}

TEST(G1, KnownMultiplesOfGenerator)
{
    // Expected affine coordinates computed with an independent
    // CPython implementation of the curve law.
    struct Kat
    {
        uint64_t k;
        const char *x;
        const char *y;
    };
    const Kat kats[] = {
        {2,
         "030644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd3",
         "15ed738c0e0a7c92e7845f96b2ae9c0a68a6a449e3538fc7ff3ebf7a5a18a2c4"},
        {3,
         "0769bf9ac56bea3ff40232bcb1b6bd159315d84715b8e679f2d355961915abf0",
         "2ab799bee0489429554fdb7c8d086475319e63b40b9c5b57cdf1ff3dd9fe2261"},
        {5,
         "17c139df0efee0f766bc0204762b774362e4ded88953a39ce849a8a7fa163fa9",
         "01e0559bacb160664764a357af8a9fe70baa9258e0b959273ffc5718c6d4cc7c"},
    };
    for (const auto &kat : kats) {
        G1Affine p =
            G1Point::generator().mul(Fr::fromUint(kat.k)).toAffine();
        EXPECT_EQ(p.x.toHexString(), kat.x) << kat.k << "G x";
        EXPECT_EQ(p.y.toHexString(), kat.y) << kat.k << "G y";
    }
}

TEST(Msm, MatchesNaive)
{
    Rng rng(6);
    for (size_t n : {1u, 7u, 33u, 100u}) {
        auto points = randomPoints(n, rng);
        std::vector<Fr> scalars(n);
        for (auto &s : scalars)
            s = Fr::random(rng);
        EXPECT_EQ(msmPippenger(points, scalars), msmNaive(points, scalars))
            << "n=" << n;
    }
}

TEST(Msm, WindowSizeDoesNotChangeResult)
{
    Rng rng(7);
    auto points = randomPoints(50, rng);
    std::vector<Fr> scalars(50);
    for (auto &s : scalars)
        s = Fr::random(rng);
    G1Point expect = msmNaive(points, scalars);
    for (unsigned c : {2u, 4u, 8u, 13u})
        EXPECT_EQ(msmPippenger(points, scalars, c), expect) << "c=" << c;
}

TEST(Msm, ZeroScalarsGiveInfinity)
{
    Rng rng(8);
    auto points = randomPoints(10, rng);
    std::vector<Fr> scalars(10, Fr::zero());
    EXPECT_TRUE(msmPippenger(points, scalars).isInfinity());
}

TEST(Msm, EmptyInput)
{
    EXPECT_TRUE(
        msmPippenger(std::span<const G1Affine>{}, std::span<const Fr>{})
            .isInfinity());
}

TEST(Msm, RandomPointsAreOnCurve)
{
    Rng rng(9);
    for (const auto &p : randomPoints(20, rng))
        EXPECT_TRUE(G1Point::fromAffine(p).isOnCurve());
}

} // namespace
} // namespace bzk
