/**
 * @file
 * Tests for the verifiable-ML stack: the circuit-friendly CNN engine,
 * the circuit compiler (engine/circuit agreement and end-to-end proofs
 * of real inferences), VGG-16 accounting, and the MLaaS service.
 */

#include <gtest/gtest.h>

#include "core/FullSnark.h"
#include "core/Snark.h"
#include "gpusim/Device.h"
#include "zkml/CircuitCompiler.h"
#include "zkml/Cnn.h"
#include "zkml/MlService.h"
#include "zkml/Vgg16.h"

namespace bzk {
namespace {

TEST(Cnn, ForwardShapes)
{
    Rng rng(1);
    CnnModel model(CnnConfig::tiny(), rng);
    Tensor input(1, 8, 8);
    for (auto &p : input.data)
        p = static_cast<int64_t>(rng.nextBounded(16));
    Tensor out = model.forward(input);
    EXPECT_EQ(out.channels, 10);
    EXPECT_EQ(out.height, 1);
    EXPECT_EQ(out.width, 1);
}

TEST(Cnn, DeterministicFromSeed)
{
    Rng r1(2), r2(2);
    CnnModel m1(CnnConfig::tiny(), r1);
    CnnModel m2(CnnConfig::tiny(), r2);
    EXPECT_EQ(m1.weightBytes(), m2.weightBytes());
    Tensor input(1, 8, 8);
    for (size_t i = 0; i < input.data.size(); ++i)
        input.data[i] = static_cast<int64_t>(i % 5);
    EXPECT_EQ(m1.forward(input).data, m2.forward(input).data);
}

TEST(Cnn, GateCountTracksMacs)
{
    Rng rng(3);
    CnnModel model(CnnConfig::tiny(), rng);
    EXPECT_GT(model.macCount(), 1000u);
    EXPECT_EQ(model.gateCount(), 2 * model.macCount());
}

TEST(CircuitCompiler, CircuitMatchesEngine)
{
    // The compiled circuit must reproduce the integer engine exactly.
    Rng rng(4);
    CnnModel model(CnnConfig::tiny(), rng);
    auto compiled = compileCnn<Fr>(model);

    Tensor input(1, 8, 8);
    for (auto &p : input.data)
        p = static_cast<int64_t>(rng.nextBounded(8));
    Tensor expect = model.forward(input);

    auto inputs = inputsFromTensor<Fr>(input);
    auto witness = witnessFromModel<Fr>(model);
    auto assignment = compiled.circuit.evaluate(inputs, witness);
    ASSERT_EQ(compiled.outputs.size(), expect.data.size());
    for (size_t i = 0; i < compiled.outputs.size(); ++i) {
        EXPECT_EQ(assignment.wires[compiled.outputs[i]],
                  fieldFromInt<Fr>(expect.data[i]))
            << "logit " << i;
    }
    EXPECT_TRUE(compiled.circuit.checkSatisfied(assignment));
}

TEST(CircuitCompiler, EndToEndInferenceProof)
{
    // A real verifiable-ML proof: commit to the inference circuit's
    // tables and verify — the Figure 8 flow at test scale.
    Rng rng(5);
    CnnConfig cfg;
    cfg.in_channels = 1;
    cfg.in_height = 4;
    cfg.in_width = 4;
    cfg.layers = {
        {CnnLayer::Kind::Conv3x3, 2},
        {CnnLayer::Kind::Square, 0},
        {CnnLayer::Kind::Dense, 3},
    };
    CnnModel model(cfg, rng);
    auto compiled = compileCnn<Fr>(model);

    Tensor input(1, 4, 4);
    for (auto &p : input.data)
        p = static_cast<int64_t>(rng.nextBounded(4));
    auto inputs = inputsFromTensor<Fr>(input);
    auto witness = witnessFromModel<Fr>(model);
    auto assignment = compiled.circuit.evaluate(inputs, witness);
    auto tables = compiled.circuit.buildTables(assignment);

    Snark<Fr> snark(tables.n_vars, /*seed=*/7);
    auto proof = snark.prove(tables, inputs);
    EXPECT_TRUE(snark.verify(proof, inputs));

    // A different claimed input must not verify.
    auto other = inputs;
    other[0] += Fr::one();
    EXPECT_FALSE(snark.verify(proof, other));
}

TEST(CircuitCompiler, WiringSoundInferenceProof)
{
    // The FullSnark variant binds the *image* into the proof through
    // the R1CS public half: the same proof must not verify for a
    // different image, even though the circuit is identical.
    Rng rng(55);
    CnnConfig cfg;
    cfg.in_channels = 1;
    cfg.in_height = 4;
    cfg.in_width = 4;
    cfg.layers = {
        {CnnLayer::Kind::Conv3x3, 2},
        {CnnLayer::Kind::Square, 0},
        {CnnLayer::Kind::Dense, 3},
    };
    CnnModel model(cfg, rng);
    auto compiled = compileCnn<Fr>(model);

    Tensor image(1, 4, 4);
    for (auto &p : image.data)
        p = static_cast<int64_t>(rng.nextBounded(4));
    auto inputs = inputsFromTensor<Fr>(image);
    auto witness = witnessFromModel<Fr>(model);
    auto assignment = compiled.circuit.evaluate(inputs, witness);

    FullSnark<Fr> snark(buildR1cs(compiled.circuit), 7);
    auto proof = snark.prove(inputs, assignment);
    EXPECT_TRUE(snark.verify(proof, inputs));

    auto other = inputs;
    other[3] += Fr::one();
    EXPECT_FALSE(snark.verify(proof, other));
}

TEST(CircuitCompiler, WrongModelFailsEngineCheck)
{
    Rng rng(6);
    CnnModel model(CnnConfig::tiny(), rng);
    auto compiled = compileCnn<Fr>(model);
    Tensor input(1, 8, 8);
    for (auto &p : input.data)
        p = 1;
    auto inputs = inputsFromTensor<Fr>(input);
    auto witness = witnessFromModel<Fr>(model);
    witness[3] += Fr::one(); // a different model
    auto assignment = compiled.circuit.evaluate(inputs, witness);
    // The assignment is internally consistent (it satisfies the gates)
    // but computes different logits than the committed model.
    Tensor expect = model.forward(input);
    bool all_match = true;
    for (size_t i = 0; i < compiled.outputs.size(); ++i) {
        if (assignment.wires[compiled.outputs[i]] !=
            fieldFromInt<Fr>(expect.data[i]))
            all_match = false;
    }
    EXPECT_FALSE(all_match);
}

TEST(Vgg16, StructureMatchesPaperSetting)
{
    Rng rng(7);
    Vgg16 vgg(rng);
    // 13 conv + 5 pool + 3 fc layers.
    size_t convs = 0, pools = 0, fcs = 0;
    for (const auto &li : vgg.layerInfo()) {
        if (li.name.rfind("conv", 0) == 0)
            ++convs;
        else if (li.name == "pool")
            ++pools;
        else
            ++fcs;
    }
    EXPECT_EQ(convs, 13u);
    EXPECT_EQ(pools, 5u);
    EXPECT_EQ(fcs, 3u);
    // ~313M MACs for VGG-16 on 32x32 inputs.
    EXPECT_GT(vgg.macCount(), 250'000'000u);
    EXPECT_LT(vgg.macCount(), 350'000'000u);
    // ~15M weights for the CIFAR variant.
    EXPECT_GT(vgg.weightCount(), 14'000'000u);
    EXPECT_LT(vgg.weightCount(), 17'000'000u);
}

TEST(Vgg16, InferenceProducesTenLogits)
{
    Rng rng(8);
    Vgg16 vgg(rng);
    Tensor img = Vgg16::randomImage(rng);
    auto logits = vgg.forward(img);
    EXPECT_EQ(logits.size(), 10u);
    int cls = vgg.predict(img);
    EXPECT_GE(cls, 0);
    EXPECT_LT(cls, 10);
}

TEST(Vgg16, ProofGateCountInExpectedRange)
{
    Rng rng(9);
    Vgg16 vgg(rng);
    size_t gates = vgg.proofGateCount();
    // MACs/16 + 8*activations: roughly 2^24.2 for this shape.
    EXPECT_GT(gates, size_t{1} << 23);
    EXPECT_LT(gates, size_t{1} << 25);
}

TEST(MlService, CommitmentIsStable)
{
    gpusim::Device dev(gpusim::DeviceSpec::v100());
    Rng r1(10), r2(10);
    VerifiableMlService s1(dev, r1);
    VerifiableMlService s2(dev, r2);
    EXPECT_EQ(s1.modelCommitment(), s2.modelCommitment());
}

TEST(MlService, DifferentModelDifferentCommitment)
{
    gpusim::Device dev(gpusim::DeviceSpec::v100());
    Rng r1(11), r2(12);
    VerifiableMlService s1(dev, r1);
    VerifiableMlService s2(dev, r2);
    EXPECT_NE(s1.modelCommitment(), s2.modelCommitment());
}

TEST(MlService, FunctionalFigure8LoopVerifies)
{
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    Rng rng(14);
    VerifiableMlService service(dev, rng);
    auto result = service.serveBatch(4, rng, /*functional_proofs=*/2);
    EXPECT_EQ(result.functional_proofs, 2u);
    EXPECT_TRUE(result.functional_verified);
}

TEST(MlService, ServesBatchWithSubSecondAmortizedProofs)
{
    // Table 11's headline on the GH200 spec: sub-second per proof.
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    Rng rng(13);
    VerifiableMlService service(dev, rng);
    auto result = service.serveBatch(32, rng);
    EXPECT_FALSE(result.predictions.empty());
    double ms_per_proof = 1.0 / result.proving.stats.throughput_per_ms;
    EXPECT_LT(ms_per_proof, 1000.0);
}

} // namespace
} // namespace bzk
