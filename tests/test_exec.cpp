/**
 * @file
 * ExecContext: thread resolution, chunking/cutoff edge cases, the
 * fixed-shape deterministic reduction, nested-region safety, exception
 * propagation, and the region accounting the system metrics read.
 */

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/ExecContext.h"
#include "ff/Fields.h"
#include "util/Rng.h"

namespace bzk::exec {
namespace {

ExecContext
makeContext(size_t threads)
{
    ExecConfig cfg;
    cfg.threads = threads;
    return ExecContext(cfg);
}

TEST(ExecContextTest, ResolvesExplicitRequestFirst)
{
    EXPECT_EQ(makeContext(1).threads(), 1u);
    EXPECT_EQ(makeContext(3).threads(), 3u);
    // 0 falls through to the default/env/hardware chain; always >= 1.
    EXPECT_GE(makeContext(0).threads(), 1u);
}

TEST(ExecContextTest, DefaultOverrideBeatsEnvironment)
{
    setDefaultThreads(5);
    EXPECT_EQ(resolveThreads(0), 5u);
    EXPECT_EQ(resolveThreads(2), 2u); // explicit still wins
    setDefaultThreads(0);
    EXPECT_GE(resolveThreads(0), 1u);
}

TEST(ExecContextTest, ParallelForEmptyRangeRunsNothing)
{
    ExecContext exec = makeContext(4);
    std::atomic<size_t> calls{0};
    exec.parallelFor(0, /*serial_cutoff=*/1,
                     [&](size_t, size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0u);
}

TEST(ExecContextTest, ParallelForCoversEveryIndexExactlyOnce)
{
    ExecContext exec = makeContext(4);
    for (size_t n : {1ul, 2ul, 3ul, 7ul, 1000ul}) {
        std::vector<std::atomic<int>> hits(n);
        exec.parallelFor(n, /*serial_cutoff=*/1,
                         [&](size_t begin, size_t end) {
                             for (size_t i = begin; i < end; ++i)
                                 ++hits[i];
                         });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
}

TEST(ExecContextTest, FewerItemsThanWorkersStillCovered)
{
    // n < threads: chunks degenerate to single items, none dropped.
    ExecContext exec = makeContext(8);
    std::vector<std::atomic<int>> hits(3);
    exec.parallelFor(3, /*serial_cutoff=*/1,
                     [&](size_t begin, size_t end) {
                         for (size_t i = begin; i < end; ++i)
                             ++hits[i];
                     });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ExecContextTest, SerialCutoffRunsInline)
{
    ExecContext exec = makeContext(4);
    std::thread::id caller = std::this_thread::get_id();
    bool inline_run = true;
    exec.parallelFor(16, /*serial_cutoff=*/64,
                     [&](size_t, size_t) {
                         if (std::this_thread::get_id() != caller)
                             inline_run = false;
                     });
    EXPECT_TRUE(inline_run);
}

TEST(ExecContextTest, SingleThreadNeverSpawnsWorkers)
{
    ExecContext exec = makeContext(1);
    std::thread::id caller = std::this_thread::get_id();
    bool inline_run = true;
    exec.parallelFor(100000, /*serial_cutoff=*/1,
                     [&](size_t, size_t) {
                         if (std::this_thread::get_id() != caller)
                             inline_run = false;
                     });
    EXPECT_TRUE(inline_run);
}

TEST(ExecContextTest, NestedParallelForRunsInlineWithoutDeadlock)
{
    ExecContext exec = makeContext(4);
    std::atomic<size_t> inner_total{0};
    exec.parallelFor(8, /*serial_cutoff=*/1,
                     [&](size_t begin, size_t end) {
                         for (size_t i = begin; i < end; ++i) {
                             exec.parallelFor(
                                 4, /*serial_cutoff=*/1,
                                 [&](size_t b, size_t e) {
                                     inner_total += e - b;
                                 });
                         }
                     });
    EXPECT_EQ(inner_total.load(), 32u);
}

TEST(ExecContextTest, ExceptionPropagatesAndContextStaysUsable)
{
    ExecContext exec = makeContext(4);
    EXPECT_THROW(
        exec.parallelFor(100, /*serial_cutoff=*/1,
                         [](size_t begin, size_t) {
                             if (begin == 0)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool must survive for later regions.
    std::atomic<size_t> covered{0};
    exec.parallelFor(100, /*serial_cutoff=*/1,
                     [&](size_t begin, size_t end) {
                         covered += end - begin;
                     });
    EXPECT_EQ(covered.load(), 100u);
}

TEST(ReduceChunkedTest, HandlesEmptyAndTinyInputs)
{
    ExecContext exec = makeContext(4);
    auto chunk_sum = [](size_t begin, size_t end) {
        uint64_t s = 0;
        for (size_t i = begin; i < end; ++i)
            s += i + 1;
        return s;
    };
    auto add = [](uint64_t a, uint64_t b) { return a + b; };
    EXPECT_EQ(reduceChunked<uint64_t>(&exec, 0, 0, chunk_sum, add), 0u);
    EXPECT_EQ(reduceChunked<uint64_t>(&exec, 1, 0, chunk_sum, add), 1u);
    EXPECT_EQ(reduceChunked<uint64_t>(&exec, 3, 0, chunk_sum, add), 6u);
    // n smaller than one chunk, and a chunk size above n.
    EXPECT_EQ(reduceChunked<uint64_t>(&exec, 5, 0, chunk_sum, add, 64),
              15u);
    // Null context: pure serial path, same result.
    EXPECT_EQ(reduceChunked<uint64_t>(nullptr, 5, 0, chunk_sum, add),
              15u);
}

TEST(ReduceChunkedTest, FieldSumBitIdenticalAcrossThreadCounts)
{
    Rng rng(77);
    std::vector<Fr> xs(10000);
    for (auto &x : xs)
        x = Fr::random(rng);
    auto chunk_sum = [&](size_t begin, size_t end) {
        Fr s = Fr::zero();
        for (size_t i = begin; i < end; ++i)
            s += xs[i];
        return s;
    };
    auto add = [](const Fr &a, const Fr &b) { return a + b; };

    Fr serial = reduceChunked<Fr>(nullptr, xs.size(), Fr::zero(),
                                  chunk_sum, add, /*chunk=*/128);
    for (size_t threads : {1ul, 2ul, 8ul}) {
        ExecContext exec = makeContext(threads);
        Fr parallel = reduceChunked<Fr>(&exec, xs.size(), Fr::zero(),
                                        chunk_sum, add, /*chunk=*/128);
        EXPECT_EQ(parallel, serial) << "threads=" << threads;
    }
}

TEST(ExecContextTest, RegionAccountingTracksWork)
{
    ExecContext exec = makeContext(2);
    exec.setRegion("merkle");
    std::atomic<uint64_t> sink{0};
    exec.parallelFor(4096, /*serial_cutoff=*/1,
                     [&](size_t begin, size_t end) {
                         uint64_t s = 0;
                         for (size_t i = begin; i < end; ++i)
                             s += i * i;
                         sink += s;
                     });
    RegionStats merkle = exec.stats("merkle");
    EXPECT_EQ(merkle.calls, 1u);
    EXPECT_GE(merkle.wall_ms, 0.0);
    EXPECT_EQ(exec.stats("encoder").calls, 0u);
    EXPECT_EQ(exec.totals().calls, 1u);
    double eff = exec.parallelEfficiency();
    EXPECT_GE(eff, 0.0);
    EXPECT_LE(eff, 1.0);
    exec.resetStats();
    EXPECT_EQ(exec.totals().calls, 0u);
}

} // namespace
} // namespace bzk::exec
