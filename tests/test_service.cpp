/**
 * @file
 * Tests for the host batch prover (parallel real proofs) and the
 * streaming-service queueing model.
 */

#include <gtest/gtest.h>

#include "core/BatchProver.h"
#include "core/MultiGpu.h"
#include "core/PipelinedSystem.h"
#include "core/StreamingService.h"
#include "gpusim/Device.h"

namespace bzk {
namespace {

TEST(BatchProver, AllProofsVerify)
{
    Rng rng(1);
    std::vector<ConstraintTables<Fr>> instances;
    for (int i = 0; i < 6; ++i)
        instances.push_back(randomInstance(8, rng));
    BatchProver<Fr> prover(8, 99, /*threads=*/2);
    auto batch = prover.proveAll(instances);
    ASSERT_EQ(batch.proofs.size(), 6u);
    EXPECT_TRUE(batch.all_verified);
    for (const auto &proof : batch.proofs)
        EXPECT_TRUE(prover.snark().verify(proof, {}));
}

TEST(BatchProver, ProofsAreIndependent)
{
    // Different instances yield different commitments.
    Rng rng(2);
    std::vector<ConstraintTables<Fr>> instances;
    for (int i = 0; i < 3; ++i)
        instances.push_back(randomInstance(8, rng));
    BatchProver<Fr> prover(8, 99, 2);
    auto batch = prover.proveAll(instances, /*self_verify=*/false);
    EXPECT_NE(batch.proofs[0].commit_a.root,
              batch.proofs[1].commit_a.root);
    EXPECT_NE(batch.proofs[1].commit_a.root,
              batch.proofs[2].commit_a.root);
}

TEST(BatchProver, DetectsUnsatisfiableInstance)
{
    Rng rng(3);
    std::vector<ConstraintTables<Fr>> instances;
    instances.push_back(randomInstance(8, rng));
    instances.push_back(randomInstance(8, rng));
    instances[1].c[4] += Fr::one(); // break one constraint
    BatchProver<Fr> prover(8, 99, 2);
    auto batch = prover.proveAll(instances);
    EXPECT_FALSE(batch.all_verified);
}

class StreamingTest : public ::testing::Test
{
  protected:
    gpusim::Device dev_{gpusim::DeviceSpec::gh200()};
    SystemOptions opt_{};
};

TEST_F(StreamingTest, LightLoadLatencyIsPipelineDepth)
{
    StreamingZkpService service(dev_, opt_);
    StreamingOptions w;
    w.n_vars = 18;
    w.num_requests = 2000;
    Rng probe(0);
    auto probe_result = service.run(
        [&] {
            StreamingOptions tiny = w;
            tiny.num_requests = 10;
            return tiny;
        }(),
        probe);
    // 10% load.
    w.arrival_rate_per_ms = 0.1 / probe_result.cycle_ms;
    Rng rng(4);
    auto r = service.run(w, rng);
    double pipeline_ms = static_cast<double>(r.depth) * r.cycle_ms;
    EXPECT_LT(r.p50_ms, pipeline_ms * 1.2);
    EXPECT_LT(r.mean_queue, 1.0);
}

TEST_F(StreamingTest, HeavyLoadQueues)
{
    StreamingZkpService service(dev_, opt_);
    Rng probe(0);
    StreamingOptions tiny;
    tiny.n_vars = 18;
    tiny.num_requests = 10;
    auto probe_result = service.run(tiny, probe);

    StreamingOptions w;
    w.n_vars = 18;
    w.num_requests = 4000;
    w.arrival_rate_per_ms = 1.5 / probe_result.cycle_ms; // 150% load
    Rng rng(5);
    auto r = service.run(w, rng);
    EXPECT_GT(r.offered_load, 1.0);
    // Saturated: tail latency far above the pipeline depth, and the
    // service completes at (almost exactly) one proof per cycle.
    double pipeline_ms = static_cast<double>(r.depth) * r.cycle_ms;
    EXPECT_GT(r.p99_ms, pipeline_ms * 5.0);
    EXPECT_NEAR(r.throughput_per_ms * r.cycle_ms, 1.0, 0.05);
}

TEST_F(StreamingTest, LatencyMonotoneInLoad)
{
    StreamingZkpService service(dev_, opt_);
    Rng probe(0);
    StreamingOptions tiny;
    tiny.n_vars = 18;
    tiny.num_requests = 10;
    double cycle = service.run(tiny, probe).cycle_ms;

    double prev_p90 = 0.0;
    for (double load : {0.2, 0.6, 0.95}) {
        StreamingOptions w;
        w.n_vars = 18;
        w.num_requests = 3000;
        w.arrival_rate_per_ms = load / cycle;
        Rng rng(6);
        auto r = service.run(w, rng);
        EXPECT_GE(r.p90_ms, prev_p90) << "load " << load;
        prev_p90 = r.p90_ms;
    }
}

TEST_F(StreamingTest, OverlapAblationRaisesCycleTime)
{
    StreamingOptions w;
    w.n_vars = 20;
    w.num_requests = 100;
    w.arrival_rate_per_ms = 0.01;
    Rng r1(7), r2(7);
    StreamingZkpService with(dev_, opt_);
    SystemOptions no_overlap = opt_;
    no_overlap.overlap_transfers = false;
    StreamingZkpService without(dev_, no_overlap);
    EXPECT_LT(with.run(w, r1).cycle_ms, without.run(w, r2).cycle_ms);
}

TEST_F(StreamingTest, DeterministicGivenSeed)
{
    StreamingZkpService service(dev_, opt_);
    StreamingOptions w;
    w.n_vars = 16;
    w.num_requests = 500;
    w.arrival_rate_per_ms = 0.5;
    Rng r1(8), r2(8);
    auto a = service.run(w, r1);
    auto b = service.run(w, r2);
    EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
    EXPECT_DOUBLE_EQ(a.mean_queue, b.mean_queue);
}

TEST(MultiGpu, TwoIdenticalCardsNearlyDouble)
{
    SystemOptions opt;
    opt.functional = 0;
    Rng r1(10), r2(10);
    MultiGpuZkpSystem one({gpusim::DeviceSpec::h100()}, opt);
    MultiGpuZkpSystem two(
        {gpusim::DeviceSpec::h100(), gpusim::DeviceSpec::h100()}, opt);
    auto a = one.run(256, 18, r1);
    auto b = two.run(256, 18, r2);
    double scaling =
        b.total_throughput_per_ms / a.total_throughput_per_ms;
    EXPECT_GT(scaling, 1.8);
    EXPECT_LT(scaling, 2.1);
}

TEST(MultiGpu, HeterogeneousFleetSplitsByCapability)
{
    SystemOptions opt;
    opt.functional = 0;
    Rng rng(11);
    MultiGpuZkpSystem fleet(
        {gpusim::DeviceSpec::h100(), gpusim::DeviceSpec::v100()}, opt);
    auto r = fleet.run(300, 18, rng);
    ASSERT_EQ(r.per_device.size(), 2u);
    // The H100 gets the bigger slice and both finish near each other.
    EXPECT_GT(r.per_device[0].stats.batch, r.per_device[1].stats.batch);
    double t0 = r.per_device[0].stats.total_ms;
    double t1 = r.per_device[1].stats.total_ms;
    EXPECT_LT(std::max(t0, t1) / std::min(t0, t1), 1.6);
}

TEST(MultiGpu, MemoryScalesWithFleetNotBatch)
{
    SystemOptions opt;
    opt.functional = 0;
    Rng r1(12), r2(12);
    MultiGpuZkpSystem fleet(
        {gpusim::DeviceSpec::a100(), gpusim::DeviceSpec::a100()}, opt);
    auto small = fleet.run(64, 18, r1);
    auto large = fleet.run(512, 18, r2);
    EXPECT_EQ(small.total_device_bytes, large.total_device_bytes);
}

} // namespace
} // namespace bzk
