/**
 * @file
 * The pipeline scheduler layer: golden parity pins proving the
 * re-hosted PipelinedZkpSystem reproduces the pre-refactor loop bit
 * for bit (proof bytes and every stat), heterogeneous-batch work
 * conservation, lane-allocation policies, degraded-lane re-allocation,
 * the admission queue's guard rails, and the multi-GPU dispatcher's
 * slice accounting (largest remainder, idle surplus cards, per-device
 * seeded Rng).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <span>

#include "core/MultiGpu.h"
#include "core/PipelinedSystem.h"
#include "core/Serialize.h"
#include "gpusim/Device.h"
#include "gpusim/FaultInjector.h"
#include "hash/Sha256.h"
#include "obs/Metrics.h"
#include "sched/AdmissionQueue.h"
#include "sched/CycleModel.h"
#include "sched/LaneAllocator.h"
#include "sched/PipelineScheduler.h"
#include "util/Hex.h"
#include "util/Rng.h"

namespace bzk {
namespace {

/** SHA-256 over the concatenated serialized proofs, hex. */
std::string
proofsSha256(const std::vector<SnarkProof<Fr>> &proofs)
{
    std::vector<uint8_t> all;
    for (const auto &p : proofs) {
        auto bytes = serializeProof(p);
        all.insert(all.end(), bytes.begin(), bytes.end());
    }
    auto digest = Sha256::digest(all);
    return toHex(std::span<const uint8_t>(digest.bytes));
}

// The goldens below were captured from the pre-refactor
// PipelinedZkpSystem::run() (the welded-in cycle loop) at %.17g, which
// round-trips doubles exactly. The rebuilt system must reproduce every
// value bit for bit: EXPECT_DOUBLE_EQ is exact equality.

TEST(SchedGolden, FunctionalV100Batch24)
{
    gpusim::Device dev(gpusim::DeviceSpec::v100());
    SystemOptions opt;
    opt.functional = 2;
    opt.seed = 2024;
    Rng rng(2024);
    auto r = PipelinedZkpSystem(dev, opt).run(24, 10, rng);

    EXPECT_DOUBLE_EQ(r.stats.total_ms, 2.5170540433218758);
    EXPECT_DOUBLE_EQ(r.stats.first_latency_ms, 0.67296746323529433);
    EXPECT_DOUBLE_EQ(r.stats.item_latency_ms, 0.67296746323529422);
    EXPECT_DOUBLE_EQ(r.stats.throughput_per_ms, 9.5349561777092635);
    EXPECT_EQ(r.stats.peak_device_bytes, 67207168u);
    EXPECT_DOUBLE_EQ(r.stats.busy_lane_ms, 4134.7120941176472);
    EXPECT_DOUBLE_EQ(r.stats.utilization, 0.32083576354863497);
    EXPECT_DOUBLE_EQ(r.encoder_ms, 0.027909019607843137);
    EXPECT_DOUBLE_EQ(r.merkle_ms, 0.00091582414215686276);
    EXPECT_DOUBLE_EQ(r.sumcheck_ms, 0.00082352941176470592);
    EXPECT_DOUBLE_EQ(r.comm_ms_per_cycle, 0.10047907647907649);
    EXPECT_DOUBLE_EQ(r.comp_ms_per_cycle, 0.033648373161764708);
    EXPECT_DOUBLE_EQ(r.cycle_ms, 0.033648373161764708);
    EXPECT_EQ(r.h2d_bytes_per_cycle, 327680u);
    EXPECT_DOUBLE_EQ(r.lanes_encoder, 4819.6297183832276);
    EXPECT_DOUBLE_EQ(r.lanes_merkle, 158.15436422967773);
    EXPECT_DOUBLE_EQ(r.lanes_sumcheck, 142.215917387095);
    EXPECT_EQ(r.degraded_cycles, 0u);
    EXPECT_EQ(r.corrupt_detected, 0u);
    EXPECT_EQ(r.retried_tasks, 0u);
    EXPECT_TRUE(r.verified);
    ASSERT_EQ(r.proofs.size(), 2u);
    EXPECT_EQ(proofsSha256(r.proofs),
              "7afa49f7fc080fbb2f271490fe378a470711af662aa693d707ff4d"
              "cee32b6e6b");
}

TEST(SchedGolden, SimOnlyGh200Batch128)
{
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    SystemOptions opt;
    opt.functional = 0;
    opt.seed = 2024;
    Rng rng(7);
    auto r = PipelinedZkpSystem(dev, opt).run(128, 18, rng);

    EXPECT_DOUBLE_EQ(r.stats.total_ms, 156.73408134110974);
    EXPECT_DOUBLE_EQ(r.stats.first_latency_ms, 34.610135046487613);
    EXPECT_DOUBLE_EQ(r.stats.item_latency_ms, 34.610135046487606);
    EXPECT_DOUBLE_EQ(r.stats.throughput_per_ms, 0.81666985830239402);
    EXPECT_EQ(r.stats.peak_device_bytes, 92274688u);
    EXPECT_DOUBLE_EQ(r.stats.busy_lane_ms, 2079192.3262060597);
    EXPECT_DOUBLE_EQ(r.stats.utilization, 0.7851403912289372);
    EXPECT_DOUBLE_EQ(r.encoder_ms, 0.8561072543617998);
    EXPECT_DOUBLE_EQ(r.merkle_ms, 0.051918994633838381);
    EXPECT_DOUBLE_EQ(r.sumcheck_ms, 0.049366391184573005);
    EXPECT_DOUBLE_EQ(r.comm_ms_per_cycle, 0.46037685950413221);
    EXPECT_DOUBLE_EQ(r.comp_ms_per_cycle, 0.9613926401802112);
    EXPECT_DOUBLE_EQ(r.cycle_ms, 0.9613926401802112);
    EXPECT_EQ(r.h2d_bytes_per_cycle, 83886080u);
    EXPECT_DOUBLE_EQ(r.lanes_encoder, 15108.52242082647);
    EXPECT_DOUBLE_EQ(r.lanes_merkle, 916.26287535301344);
    EXPECT_DOUBLE_EQ(r.lanes_sumcheck, 871.214703820517);
    EXPECT_TRUE(r.proofs.empty());
}

TEST(SchedGolden, FaultedV100Batch48)
{
    gpusim::Device dev(gpusim::DeviceSpec::v100());
    auto plan = gpusim::FaultPlan::parse(
        "stall:1-4:2.5,lanes:5-25:0.1,corrupt:8,corrupt:30:2");
    gpusim::FaultInjector inj(plan, 7);
    dev.setFaultInjector(&inj);
    SystemOptions opt;
    opt.functional = 1;
    opt.seed = 7;
    Rng rng(7);
    auto r = PipelinedZkpSystem(dev, opt).run(48, 10, rng);

    EXPECT_DOUBLE_EQ(r.stats.total_ms, 4.6305931206630415);
    EXPECT_DOUBLE_EQ(r.stats.first_latency_ms, 0.78874607881599568);
    EXPECT_DOUBLE_EQ(r.stats.throughput_per_ms, 10.365842722352383);
    EXPECT_EQ(r.stats.peak_device_bytes, 67207168u);
    EXPECT_DOUBLE_EQ(r.stats.busy_lane_ms, 8583.7755294117687);
    EXPECT_DOUBLE_EQ(r.stats.utilization, 0.36205268189233175);
    EXPECT_EQ(r.degraded_cycles, 20u);
    EXPECT_DOUBLE_EQ(r.relocated_lane_fraction, 0.10000000000000002);
    EXPECT_EQ(r.corrupt_detected, 2u);
    EXPECT_EQ(r.retried_tasks, 2u);
    EXPECT_TRUE(r.verified);
    ASSERT_EQ(r.proofs.size(), 1u);
    EXPECT_EQ(proofsSha256(r.proofs),
              "3743432178de0cdbcc5a90b6a46950bffeececa84e977fffcbc30f"
              "bc66644757");
    // The two retried tasks show up in the per-task accounting.
    size_t retries = 0;
    for (const auto &ts : r.task_stats)
        retries += ts.retries;
    EXPECT_EQ(retries, 2u);
}

TEST(SchedGolden, PreloadNoOverlapA100Batch32)
{
    gpusim::Device dev(gpusim::DeviceSpec::a100());
    SystemOptions opt;
    opt.functional = 0;
    opt.seed = 2024;
    opt.dynamic_loading = false;
    opt.overlap_transfers = false;
    Rng rng(3);
    auto r = PipelinedZkpSystem(dev, opt).run(32, 16, rng);

    EXPECT_DOUBLE_EQ(r.stats.total_ms, 81.991940988404664);
    EXPECT_DOUBLE_EQ(r.stats.first_latency_ms, 52.755289088740795);
    EXPECT_DOUBLE_EQ(r.stats.item_latency_ms, 28.545742191193852);
    EXPECT_DOUBLE_EQ(r.stats.throughput_per_ms, 0.3902822596250704);
    EXPECT_EQ(r.stats.peak_device_bytes, 723517440u);
    EXPECT_DOUBLE_EQ(r.stats.busy_lane_ms, 191329.13457021277);
    EXPECT_DOUBLE_EQ(r.stats.utilization, 0.33760293227435895);
    EXPECT_DOUBLE_EQ(r.comm_ms_per_cycle, 0.83220317460317461);
    EXPECT_DOUBLE_EQ(r.comp_ms_per_cycle, 0.86502249064223791);
    EXPECT_DOUBLE_EQ(r.cycle_ms, 0.86502249064223791);
    EXPECT_EQ(r.h2d_bytes_per_cycle, 20971520u);
}

TEST(SchedTasks, RunTasksMatchesUniformRun)
{
    SystemOptions opt;
    opt.functional = 0;
    opt.seed = 2024;
    Rng rng(5);
    gpusim::Device d1(gpusim::DeviceSpec::v100());
    auto by_run = PipelinedZkpSystem(d1, opt).run(16, 12, rng);

    std::vector<sched::ProofTask> tasks;
    for (size_t i = 0; i < 16; ++i)
        tasks.push_back(makeProofTask(12, opt.seed, i));
    gpusim::Device d2(gpusim::DeviceSpec::v100());
    auto by_tasks =
        PipelinedZkpSystem(d2, opt).runTasks(std::move(tasks));

    EXPECT_EQ(by_run.stats.total_ms, by_tasks.stats.total_ms);
    EXPECT_EQ(by_run.stats.first_latency_ms,
              by_tasks.stats.first_latency_ms);
    EXPECT_EQ(by_run.stats.throughput_per_ms,
              by_tasks.stats.throughput_per_ms);
    EXPECT_EQ(by_run.stats.peak_device_bytes,
              by_tasks.stats.peak_device_bytes);
    EXPECT_EQ(by_run.stats.busy_lane_ms, by_tasks.stats.busy_lane_ms);
    EXPECT_EQ(by_run.cycle_ms, by_tasks.cycle_ms);
    EXPECT_EQ(by_run.lanes_encoder, by_tasks.lanes_encoder);
    EXPECT_EQ(by_run.h2d_bytes_per_cycle, by_tasks.h2d_bytes_per_cycle);
    ASSERT_EQ(by_tasks.task_stats.size(), 16u);
    // One admission per cycle, FIFO: task i waits i cycles.
    for (size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(by_tasks.task_stats[i].admit_cycle, i);
        EXPECT_EQ(by_tasks.task_stats[i].queue_wait_cycles, i);
    }
}

TEST(SchedTasks, MixedSizesConserveWork)
{
    SystemOptions opt;
    opt.functional = 0;
    std::vector<sched::ProofTask> tasks;
    std::map<unsigned, double> model_work;
    uint64_t id = 0;
    double expected_total = 0.0;
    for (unsigned n : {10u, 11u, 12u}) {
        model_work[n] = systemWorkModel(n, opt.seed).totalCycles();
        for (int i = 0; i < 4; ++i) {
            tasks.push_back(makeProofTask(n, opt.seed, id++));
            expected_total += model_work[n];
        }
    }

    gpusim::Device dev(gpusim::DeviceSpec::a100());
    auto r = PipelinedZkpSystem(dev, opt).runTasks(std::move(tasks));

    ASSERT_EQ(r.task_stats.size(), 12u);
    double total_work = 0.0;
    for (const auto &ts : r.task_stats) {
        // Every task completed and carries exactly its size's work.
        EXPECT_GT(ts.complete_ms, 0.0);
        EXPECT_GE(ts.complete_cycle, ts.admit_cycle);
        EXPECT_DOUBLE_EQ(ts.work_cycles, model_work[ts.n_vars]);
        total_work += ts.work_cycles;
    }
    EXPECT_DOUBLE_EQ(total_work, expected_total);
    // Aggregate per-cycle columns report the costliest (pacing) shape.
    EXPECT_EQ(r.h2d_bytes_per_cycle,
              systemWorkModel(12, opt.seed).h2d_bytes);
    EXPECT_EQ(r.stats.batch, 12u);
}

TEST(SchedTasks, PriorityAdmitsFirst)
{
    SystemOptions opt;
    opt.functional = 0;
    std::vector<sched::ProofTask> tasks;
    tasks.push_back(makeProofTask(10, opt.seed, /*id=*/0));
    tasks.push_back(makeProofTask(10, opt.seed, /*id=*/1,
                                  /*priority=*/5));
    gpusim::Device dev(gpusim::DeviceSpec::v100());
    auto r = PipelinedZkpSystem(dev, opt).runTasks(std::move(tasks));
    ASSERT_EQ(r.task_stats.size(), 2u);
    EXPECT_EQ(r.task_stats[0].id, 1u); // high priority admitted first
    EXPECT_EQ(r.task_stats[0].admit_cycle, 0u);
    EXPECT_EQ(r.task_stats[1].id, 0u);
    EXPECT_EQ(r.task_stats[1].admit_cycle, 1u);
}

/** Half table-commit, half high-degree-gate, alternating by id. */
std::vector<sched::ProofTask>
protoMixBatch(size_t count, unsigned n_vars, uint64_t seed)
{
    std::vector<sched::ProofTask> tasks;
    for (size_t i = 0; i < count; ++i) {
        sched::ProtocolKind kind =
            (i % 2) ? sched::ProtocolKind::HighDegreeGate
                    : sched::ProtocolKind::TableCommit;
        tasks.push_back(makeProofTask(kind, n_vars, seed, i));
    }
    return tasks;
}

SystemRunResult
runWithPolicy(std::vector<sched::ProofTask> tasks,
              sched::LanePolicy policy,
              obs::MetricsRegistry *metrics = nullptr)
{
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    SystemOptions opt;
    opt.functional = 0;
    opt.lane_policy = policy;
    PipelinedZkpSystem system(dev, opt);
    if (metrics)
        system.setObservability(metrics, nullptr);
    return system.runTasks(std::move(tasks));
}

TEST(SchedLanePolicy, MeasuredCostMatchesProportionalOnLegacyBatch)
{
    // On the homogeneous table-commitment workload the paper was
    // calibrated for, re-deriving the split from amortized costs must
    // reproduce the proportional policy's makespan: the encoder group
    // is a single costed stage, so the most-contended-stage pacing
    // collapses to total/lanes (up to fp rounding).
    std::vector<sched::ProofTask> a, b;
    for (size_t i = 0; i < 24; ++i) {
        a.push_back(makeProofTask(14, 2024, i));
        b.push_back(makeProofTask(14, 2024, i));
    }
    auto prop =
        runWithPolicy(std::move(a), sched::LanePolicy::Proportional);
    auto meas =
        runWithPolicy(std::move(b), sched::LanePolicy::MeasuredCost);
    EXPECT_NEAR(meas.stats.total_ms, prop.stats.total_ms,
                1e-9 * prop.stats.total_ms);
    EXPECT_NEAR(meas.stats.throughput_per_ms,
                prop.stats.throughput_per_ms,
                1e-9 * prop.stats.throughput_per_ms);
}

TEST(SchedLanePolicy, MeasuredCostBeatsFixedRatioOnProtocolMix)
{
    // The heterogeneous batch shifts ~4x more work into the sum-check
    // group; the hard-coded 35:12:113 ratio starves it while the
    // measured split re-balances, so the derived policy must win on
    // makespan (the bench_sched baseline pins the exact numbers).
    auto ratio = runWithPolicy(protoMixBatch(32, 12, 2024),
                               sched::LanePolicy::FixedRatio);
    auto meas = runWithPolicy(protoMixBatch(32, 12, 2024),
                              sched::LanePolicy::MeasuredCost);
    EXPECT_LT(meas.stats.total_ms, ratio.stats.total_ms);
    EXPECT_GT(meas.stats.throughput_per_ms,
              ratio.stats.throughput_per_ms);
}

TEST(SchedLanePolicy, TaskStatsEchoProtocolKind)
{
    uint64_t seed = 2024;
    auto r = runWithPolicy(protoMixBatch(8, 10, seed),
                           sched::LanePolicy::Proportional);
    ASSERT_EQ(r.task_stats.size(), 8u);
    for (const auto &ts : r.task_stats) {
        sched::ProtocolKind want =
            (ts.id % 2) ? sched::ProtocolKind::HighDegreeGate
                        : sched::ProtocolKind::TableCommit;
        EXPECT_EQ(ts.kind, want) << "task " << ts.id;
        // Each task carries exactly its own protocol's modeled work.
        EXPECT_DOUBLE_EQ(
            ts.work_cycles,
            protocolWorkModel(ts.kind, ts.n_vars, seed).totalCycles());
    }
}

TEST(SchedLanePolicy, PerKindMetricsCountTasksAndWork)
{
    uint64_t seed = 2024;
    obs::MetricsRegistry metrics;
    auto r = runWithPolicy(protoMixBatch(10, 10, seed),
                           sched::LanePolicy::MeasuredCost, &metrics);
    ASSERT_EQ(r.task_stats.size(), 10u);
    EXPECT_DOUBLE_EQ(
        metrics.counter("bzk_sched_tasks_table_commit_total").value(),
        5.0);
    EXPECT_DOUBLE_EQ(
        metrics.counter("bzk_sched_tasks_high_degree_gate_total")
            .value(),
        5.0);
    double tc = 5.0 * protocolWorkModel(sched::ProtocolKind::TableCommit,
                                        10, seed)
                          .totalCycles();
    double hdg =
        5.0 *
        protocolWorkModel(sched::ProtocolKind::HighDegreeGate, 10, seed)
            .totalCycles();
    EXPECT_DOUBLE_EQ(
        metrics.counter("bzk_sched_work_cycles_table_commit_total")
            .value(),
        tc);
    EXPECT_DOUBLE_EQ(
        metrics.counter("bzk_sched_work_cycles_high_degree_gate_total")
            .value(),
        hdg);
    // The gate protocol's degree-6 rounds really are the heavier mix.
    EXPECT_GT(hdg, tc);
}

TEST(LaneAllocatorTest, ProportionalSplitMatchesStageCosts)
{
    auto graph = systemStageGraph(systemWorkModel(12, 2024));
    sched::LaneAllocator alloc(5120.0);
    auto split = alloc.proportionalSplit(graph);
    ASSERT_EQ(split.size(), graph.stages().size());
    double sum = 0.0;
    for (size_t i = 0; i < split.size(); ++i) {
        sum += split[i];
        EXPECT_DOUBLE_EQ(split[i],
                         5120.0 * graph.stages()[i].lane_cycles /
                             graph.totalCycles());
    }
    EXPECT_NEAR(sum, 5120.0, 1e-9);
    // Fiat-Shamir is a real node but carries no lanes.
    const sched::Stage *fs =
        graph.findStage(sched::StageKind::FiatShamir);
    ASSERT_NE(fs, nullptr);
    EXPECT_EQ(fs->lane_cycles, 0.0);
}

TEST(LaneAllocatorTest, HalvingSplitIsGeometric)
{
    sched::LaneAllocator alloc(1024.0);
    auto split = alloc.halvingSplit(5);
    ASSERT_EQ(split.size(), 5u);
    double sum = 0.0;
    for (size_t i = 0; i < split.size(); ++i) {
        sum += split[i];
        if (i + 1 < split.size()) {
            EXPECT_DOUBLE_EQ(split[i], 2.0 * split[i + 1]);
        }
    }
    EXPECT_NEAR(sum, 1024.0, 1e-9);
    EXPECT_TRUE(alloc.halvingSplit(0).empty());
}

TEST(LaneAllocatorTest, KindSplitIsProportionalToWeights)
{
    sched::LaneAllocator alloc(160.0);
    sched::StageKindCosts w = sched::LaneAllocator::paperRatioWeights();
    EXPECT_DOUBLE_EQ(
        w[static_cast<size_t>(sched::StageKind::Encoder)], 35.0);
    EXPECT_DOUBLE_EQ(w[static_cast<size_t>(sched::StageKind::Merkle)],
                     12.0);
    EXPECT_DOUBLE_EQ(
        w[static_cast<size_t>(sched::StageKind::FiatShamir)], 0.0);
    EXPECT_DOUBLE_EQ(w[static_cast<size_t>(sched::StageKind::Sumcheck)],
                     113.0);
    auto lanes = alloc.kindSplit(w);
    double sum = 0.0;
    for (size_t k = 0; k < sched::kNumStageKinds; ++k) {
        sum += lanes[k];
        EXPECT_DOUBLE_EQ(lanes[k], 160.0 * w[k] / 160.0);
    }
    EXPECT_NEAR(sum, 160.0, 1e-9);
    // The zero-weight Fiat-Shamir group gets zero lanes, not NaN.
    EXPECT_DOUBLE_EQ(
        lanes[static_cast<size_t>(sched::StageKind::FiatShamir)], 0.0);
}

TEST(LaneAllocatorTest, MeasuredKindCostsSumOverTheBatch)
{
    uint64_t seed = 2024;
    auto tasks = protoMixBatch(4, 10, seed);
    auto costs = sched::LaneAllocator::measuredKindCosts(tasks);
    sched::StageKindCosts expect{};
    for (const auto &t : tasks)
        for (const auto &s : t.graph.stages())
            expect[static_cast<size_t>(s.kind)] += s.lane_cycles;
    for (size_t k = 0; k < sched::kNumStageKinds; ++k)
        EXPECT_DOUBLE_EQ(costs[k], expect[k]) << "kind " << k;
    // The gate protocol shifts the cost mix toward sum-check: its
    // share of the mixed batch exceeds its share of a pure legacy
    // batch — the signal the fixed 35:12:113 ratio cannot see.
    std::vector<sched::ProofTask> legacy;
    for (size_t i = 0; i < 4; ++i)
        legacy.push_back(makeProofTask(10, seed, i));
    auto legacy_costs = sched::LaneAllocator::measuredKindCosts(legacy);
    auto share = [](const sched::StageKindCosts &c) {
        double total = 0.0;
        for (double v : c)
            total += v;
        return c[static_cast<size_t>(sched::StageKind::Sumcheck)] /
               total;
    };
    EXPECT_GT(share(costs), share(legacy_costs));
}

TEST(LaneAllocatorTest, PacedCycleTracksMostContendedStage)
{
    auto graph = systemStageGraph(systemWorkModel(12, 2024));
    sched::LaneAllocator alloc(5120.0);
    sched::StageKindCosts costs =
        sched::LaneAllocator::measuredKindCosts(
            std::vector<sched::ProofTask>{makeProofTask(12, 2024, 0)});
    auto lanes = alloc.kindSplit(costs);
    double cycle = sched::LaneAllocator::pacedCycleCycles(graph, lanes);
    double expect = 0.0;
    for (const auto &s : graph.stages()) {
        double l = lanes[static_cast<size_t>(s.kind)];
        if (s.lane_cycles <= 0.0)
            continue;
        expect = std::max(expect, s.lane_cycles / std::max(l, 1.0));
    }
    EXPECT_DOUBLE_EQ(cycle, expect);
    // A split matched to the graph's own cost mix paces no slower than
    // the per-class proportional cycle.
    EXPECT_NEAR(cycle, graph.totalCycles() / 5120.0,
                1e-9 * cycle);
}

TEST(LaneAllocatorTest, SurvivorFractionFloorsAtFivePercent)
{
    EXPECT_DOUBLE_EQ(sched::LaneAllocator::survivorFraction(0.0), 1.0);
    EXPECT_DOUBLE_EQ(sched::LaneAllocator::survivorFraction(0.3), 0.7);
    EXPECT_DOUBLE_EQ(sched::LaneAllocator::survivorFraction(0.99),
                     0.05);
    EXPECT_DOUBLE_EQ(sched::LaneAllocator::survivorFraction(2.0), 0.05);
}

TEST(SchedDegradation, FailedLanesStretchOnlyTheFaultWindow)
{
    SystemOptions opt;
    opt.functional = 0;
    // Serialize transfers so the compute stretch cannot hide under an
    // overlapped (comm-dominated) cycle.
    opt.overlap_transfers = false;
    gpusim::Device healthy_dev(gpusim::DeviceSpec::v100());
    auto healthy = PipelinedZkpSystem(healthy_dev, opt).runTasks([&] {
        std::vector<sched::ProofTask> t;
        for (size_t i = 0; i < 32; ++i)
            t.push_back(makeProofTask(10, opt.seed, i));
        return t;
    }());

    gpusim::Device dev(gpusim::DeviceSpec::v100());
    auto plan = gpusim::FaultPlan::parse("lanes:3-10:0.5");
    gpusim::FaultInjector inj(plan, 9);
    dev.setFaultInjector(&inj);
    auto degraded = PipelinedZkpSystem(dev, opt).runTasks([&] {
        std::vector<sched::ProofTask> t;
        for (size_t i = 0; i < 32; ++i)
            t.push_back(makeProofTask(10, opt.seed, i));
        return t;
    }());

    // Cycles [3, 10) ran on half the lanes: the whole split is
    // re-scaled onto the survivors, so the run stretches but the task
    // count does not change.
    EXPECT_EQ(degraded.degraded_cycles, 7u);
    EXPECT_DOUBLE_EQ(degraded.relocated_lane_fraction, 0.5);
    EXPECT_GT(degraded.stats.total_ms, healthy.stats.total_ms);
    EXPECT_EQ(degraded.task_stats.size(), healthy.task_stats.size());
}

TEST(AdmissionQueueTest, ShedsAtCapacityAndCountsDrops)
{
    sched::AdmissionQueue q({/*timeout_ms=*/1.0, /*max_retries=*/0,
                             /*backoff=*/1.0, /*capacity=*/2});
    q.submit(0.0);
    q.submit(0.0);
    q.submit(0.0); // over capacity
    EXPECT_EQ(q.depth(), 2u);
    EXPECT_EQ(q.shed(), 1u);
    // Both queued requests are stale at t=5: timed out and (with no
    // retries) dropped; nothing is admitted.
    EXPECT_FALSE(q.admitOne(5.0).has_value());
    EXPECT_EQ(q.timedOut(), 2u);
    EXPECT_EQ(q.dropped(), 2u);
}

TEST(AdmissionQueueTest, RetryBacksOffExponentially)
{
    sched::AdmissionQueue q({/*timeout_ms=*/1.0, /*max_retries=*/2,
                             /*backoff=*/4.0, /*capacity=*/0});
    q.submit(0.0);
    EXPECT_FALSE(q.admitOne(2.0).has_value()); // stale -> resubmit @6
    EXPECT_EQ(q.retried(), 1u);
    q.pullResubmits(5.0);
    EXPECT_EQ(q.depth(), 0u); // not due yet
    q.pullResubmits(6.0);
    ASSERT_EQ(q.depth(), 1u);
    auto p = q.admitOne(6.5);
    ASSERT_TRUE(p.has_value());
    EXPECT_DOUBLE_EQ(p->first_arrival, 0.0);
    EXPECT_EQ(p->attempt, 1u);
    EXPECT_EQ(q.dropped(), 0u);
}

TEST(MultiGpuDispatch, SlicesSumExactlyToBatch)
{
    // Five identical cards, three tasks: the old rounded-then-clamped
    // slices forced one task per card and underflowed the last card's
    // share; largest remainder hands out exactly the batch.
    std::vector<gpusim::DeviceSpec> specs(5,
                                          gpusim::DeviceSpec::v100());
    SystemOptions opt;
    opt.functional = 0;
    MultiGpuZkpSystem fleet(specs, opt);
    auto slices = fleet.planSlices(3, 18);
    size_t sum = 0, idle = 0;
    for (size_t s : slices) {
        sum += s;
        EXPECT_LE(s, 1u);
        idle += s == 0;
    }
    EXPECT_EQ(sum, 3u);
    EXPECT_EQ(idle, 2u);
}

TEST(MultiGpuDispatch, DevicesExceedingTasksLeaveSurplusIdle)
{
    std::vector<gpusim::DeviceSpec> specs(4,
                                          gpusim::DeviceSpec::a100());
    SystemOptions opt;
    opt.functional = 0;
    MultiGpuZkpSystem fleet(specs, opt);
    Rng rng(1);
    auto r = fleet.run(2, 18, rng);
    ASSERT_EQ(r.per_device.size(), 4u);
    ASSERT_EQ(r.slices.size(), 4u);
    size_t busy = 0, total = 0;
    for (size_t d = 0; d < 4; ++d) {
        total += r.slices[d];
        if (r.slices[d] > 0) {
            ++busy;
            EXPECT_EQ(r.per_device[d].stats.batch, r.slices[d]);
            EXPECT_GT(r.per_device[d].stats.total_ms, 0.0);
        } else {
            // Idle surplus card: placeholder entry, no simulated time.
            EXPECT_EQ(r.per_device[d].stats.batch, 0u);
            EXPECT_EQ(r.per_device[d].stats.total_ms, 0.0);
        }
    }
    EXPECT_EQ(total, 2u);
    EXPECT_EQ(busy, 2u);
    EXPECT_GT(r.makespan_ms, 0.0);
}

TEST(MultiGpuDispatch, IdenticalCardsSplitEvenly)
{
    std::vector<gpusim::DeviceSpec> specs(2,
                                          gpusim::DeviceSpec::h100());
    SystemOptions opt;
    opt.functional = 0;
    MultiGpuZkpSystem fleet(specs, opt);
    auto slices = fleet.planSlices(256, 18);
    EXPECT_EQ(slices[0], 128u);
    EXPECT_EQ(slices[1], 128u);
}

TEST(MultiGpuDispatch, PerDeviceRngIndependentOfFleetOrder)
{
    // Each card's functional proofs are drawn from its own seeded Rng
    // (deviceSeed), so a card's result is reproducible in isolation —
    // it does not depend on which cards ran before it.
    SystemOptions opt;
    opt.functional = 1;
    opt.seed = 77;
    std::vector<gpusim::DeviceSpec> specs(2,
                                          gpusim::DeviceSpec::v100());
    MultiGpuZkpSystem fleet(specs, opt);
    Rng r1(0), r2(0);
    auto a = fleet.run(4, 8, r1);
    auto b = fleet.run(4, 8, r2);
    ASSERT_EQ(a.per_device.size(), 2u);

    for (size_t d = 0; d < 2; ++d) {
        // Fleet runs are deterministic...
        ASSERT_EQ(a.per_device[d].proofs.size(),
                  b.per_device[d].proofs.size());
        EXPECT_EQ(proofsSha256(a.per_device[d].proofs),
                  proofsSha256(b.per_device[d].proofs));
        // ...and each device reproduces standalone from its own seed.
        gpusim::Device dev(gpusim::DeviceSpec::v100());
        PipelinedZkpSystem solo(dev, opt);
        Rng dev_rng(deviceSeed(opt.seed, d));
        auto direct = solo.run(a.slices[d], 8, dev_rng);
        EXPECT_EQ(proofsSha256(direct.proofs),
                  proofsSha256(a.per_device[d].proofs));
        EXPECT_EQ(direct.stats.total_ms,
                  a.per_device[d].stats.total_ms);
    }
}

TEST(CycleModelTest, MatchesSystemSteadyState)
{
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    auto graph = systemStageGraph(systemWorkModel(18, 2024));
    sched::CycleModel overlap(graph, dev, /*overlap=*/true);
    sched::CycleModel serial(graph, dev, /*overlap=*/false);
    EXPECT_DOUBLE_EQ(overlap.cycleMs(),
                     std::max(overlap.compMs(), overlap.commMs()));
    EXPECT_DOUBLE_EQ(serial.cycleMs(),
                     serial.compMs() + serial.commMs());
    EXPECT_EQ(overlap.depth(), graph.totalDepth());
    EXPECT_GT(overlap.compMs(), 0.0);
    EXPECT_GT(overlap.commMs(), 0.0);
}

} // namespace
} // namespace bzk
