/**
 * @file
 * Tests for the circuit builder, evaluation and constraint tables.
 */

#include <gtest/gtest.h>

#include "circuit/Circuit.h"
#include "ff/Fields.h"

namespace bzk {
namespace {

template <typename F>
class CircuitT : public ::testing::Test
{
};

using Fields = ::testing::Types<Fr, Gl64>;
TYPED_TEST_SUITE(CircuitT, Fields);

TYPED_TEST(CircuitT, EvaluatesArithmetic)
{
    using F = TypeParam;
    Circuit<F> c;
    WireId x = c.addInput();
    WireId w = c.addWitness();
    WireId k = c.addConst(F::fromUint(7));
    WireId xw = c.mul(x, w);
    WireId out = c.add(xw, k);

    std::vector<F> inputs{F::fromUint(3)};
    std::vector<F> witness{F::fromUint(5)};
    auto asg = c.evaluate(inputs, witness);
    EXPECT_EQ(asg.wires[xw], F::fromUint(15));
    EXPECT_EQ(asg.wires[out], F::fromUint(22));
    EXPECT_EQ(c.outputWire(), out);
}

TYPED_TEST(CircuitT, CountsGateKinds)
{
    using F = TypeParam;
    Circuit<F> c;
    WireId a = c.addWitness();
    WireId b = c.addWitness();
    c.mul(a, b);
    c.mul(a, b);
    c.add(a, b);
    EXPECT_EQ(c.numGates(), 5u);
    EXPECT_EQ(c.numMulGates(), 2u);
    EXPECT_EQ(c.numWitnesses(), 2u);
    EXPECT_EQ(c.numInputs(), 0u);
}

TYPED_TEST(CircuitT, TablesSatisfiedByHonestAssignment)
{
    using F = TypeParam;
    Rng rng(1);
    auto c = randomCircuit<F>(200, 8, rng);
    std::vector<F> witness(c.numWitnesses());
    for (auto &w : witness)
        w = F::random(rng);
    auto asg = c.evaluate({}, witness);
    EXPECT_TRUE(c.checkSatisfied(asg));
}

TYPED_TEST(CircuitT, TablesViolatedByTamperedWire)
{
    using F = TypeParam;
    Circuit<F> c;
    WireId a = c.addWitness();
    WireId b = c.addWitness();
    c.mul(a, b);
    std::vector<F> witness{F::fromUint(2), F::fromUint(3)};
    auto asg = c.evaluate({}, witness);
    asg.wires.back() += F::one(); // claim 2*3 = 7
    EXPECT_FALSE(c.checkSatisfied(asg));
}

TYPED_TEST(CircuitT, TablesPaddedToPowerOfTwo)
{
    using F = TypeParam;
    Circuit<F> c;
    WireId a = c.addWitness();
    c.mul(a, a);
    c.mul(a, a); // 3 gates -> padded to 4
    auto asg = c.evaluate({}, std::vector<F>{F::fromUint(2)});
    auto t = c.buildTables(asg);
    EXPECT_EQ(t.a.size(), 4u);
    EXPECT_EQ(t.n_vars, 2u);
    // Padding rows satisfy 0*0 = 0.
    EXPECT_TRUE(t.a[3].isZero());
    EXPECT_TRUE(t.c[3].isZero());
}

TYPED_TEST(CircuitT, AddGateRowShape)
{
    using F = TypeParam;
    Circuit<F> c;
    WireId a = c.addWitness();
    WireId b = c.addWitness();
    WireId s = c.add(a, b);
    auto asg =
        c.evaluate({}, std::vector<F>{F::fromUint(4), F::fromUint(9)});
    auto t = c.buildTables(asg);
    EXPECT_EQ(t.a[s], F::fromUint(13));
    EXPECT_EQ(t.b[s], F::one());
    EXPECT_EQ(t.c[s], F::fromUint(13));
}

TYPED_TEST(CircuitT, RandomCircuitReproducible)
{
    using F = TypeParam;
    Rng r1(9), r2(9);
    auto c1 = randomCircuit<F>(100, 4, r1);
    auto c2 = randomCircuit<F>(100, 4, r2);
    EXPECT_EQ(c1.numGates(), c2.numGates());
    EXPECT_EQ(c1.numMulGates(), c2.numMulGates());
    std::vector<F> witness(c1.numWitnesses(), F::fromUint(3));
    auto a1 = c1.evaluate({}, witness);
    auto a2 = c2.evaluate({}, witness);
    EXPECT_EQ(a1.wires, a2.wires);
}

TYPED_TEST(CircuitT, RandomCircuitHitsTargetSize)
{
    using F = TypeParam;
    Rng rng(10);
    auto c = randomCircuit<F>(1000, 16, rng);
    EXPECT_GE(c.numGates(), 1000u);
    EXPECT_LT(c.numGates(), 1100u);
    EXPECT_GT(c.numMulGates(), 300u);
}

} // namespace
} // namespace bzk
