/**
 * @file
 * Tests for the tensor-code polynomial commitment: completeness, binding
 * behaviour under tampering, and transcript consistency.
 */

#include <gtest/gtest.h>

#include "core/TensorPcs.h"
#include "ff/Fields.h"

namespace bzk {
namespace {

template <typename F>
class PcsT : public ::testing::Test
{
};

using Fields = ::testing::Types<Fr, Gl64>;
TYPED_TEST_SUITE(PcsT, Fields);

template <typename F>
std::vector<F>
randomPoly(unsigned n, Rng &rng)
{
    std::vector<F> poly(size_t{1} << n);
    for (auto &p : poly)
        p = F::random(rng);
    return poly;
}

template <typename F>
std::vector<F>
randomPoint(unsigned n, Rng &rng)
{
    std::vector<F> point(n);
    for (auto &p : point)
        p = F::random(rng);
    return point;
}

TYPED_TEST(PcsT, OpenVerifyRoundTrip)
{
    using F = TypeParam;
    Rng rng(1);
    for (unsigned n : {6u, 8u, 11u}) {
        TensorPcs<F> pcs(n, 42);
        auto state = pcs.commit(randomPoly<F>(n, rng));
        auto point = randomPoint<F>(n, rng);
        F value = pcs.evaluate(state, point);

        Transcript pt("pcs-test");
        pt.absorbDigest("root", state.commitment.root);
        auto proof = pcs.open(state, point, pt);

        Transcript vt("pcs-test");
        vt.absorbDigest("root", state.commitment.root);
        EXPECT_TRUE(
            pcs.verify(state.commitment, point, value, proof, vt))
            << "n=" << n;
    }
}

TYPED_TEST(PcsT, ValueMatchesMultilinearEvaluate)
{
    using F = TypeParam;
    Rng rng(2);
    unsigned n = 8;
    TensorPcs<F> pcs(n, 7);
    auto poly = randomPoly<F>(n, rng);
    auto state = pcs.commit(poly);
    auto point = randomPoint<F>(n, rng);
    EXPECT_EQ(pcs.evaluate(state, point),
              Multilinear<F>(poly).evaluate(point));
}

TYPED_TEST(PcsT, RejectsWrongValue)
{
    using F = TypeParam;
    Rng rng(3);
    unsigned n = 8;
    TensorPcs<F> pcs(n, 7);
    auto state = pcs.commit(randomPoly<F>(n, rng));
    auto point = randomPoint<F>(n, rng);
    F value = pcs.evaluate(state, point);

    Transcript pt("pcs-test");
    pt.absorbDigest("root", state.commitment.root);
    auto proof = pcs.open(state, point, pt);

    Transcript vt("pcs-test");
    vt.absorbDigest("root", state.commitment.root);
    EXPECT_FALSE(pcs.verify(state.commitment, point, value + F::one(),
                            proof, vt));
}

TYPED_TEST(PcsT, RejectsTamperedEvalRow)
{
    using F = TypeParam;
    Rng rng(4);
    unsigned n = 8;
    TensorPcs<F> pcs(n, 7, /*column_openings=*/12);
    auto state = pcs.commit(randomPoly<F>(n, rng));
    auto point = randomPoint<F>(n, rng);
    F value = pcs.evaluate(state, point);

    Transcript pt("pcs-test");
    pt.absorbDigest("root", state.commitment.root);
    auto proof = pcs.open(state, point, pt);
    proof.eval_row[3] += F::one();

    Transcript vt("pcs-test");
    vt.absorbDigest("root", state.commitment.root);
    EXPECT_FALSE(pcs.verify(state.commitment, point, value, proof, vt));
}

TYPED_TEST(PcsT, RejectsTamperedColumn)
{
    using F = TypeParam;
    Rng rng(5);
    unsigned n = 8;
    TensorPcs<F> pcs(n, 7);
    auto state = pcs.commit(randomPoly<F>(n, rng));
    auto point = randomPoint<F>(n, rng);
    F value = pcs.evaluate(state, point);

    Transcript pt("pcs-test");
    pt.absorbDigest("root", state.commitment.root);
    auto proof = pcs.open(state, point, pt);
    proof.columns[0][0] += F::one();

    Transcript vt("pcs-test");
    vt.absorbDigest("root", state.commitment.root);
    EXPECT_FALSE(pcs.verify(state.commitment, point, value, proof, vt));
}

TYPED_TEST(PcsT, RejectsWrongRoot)
{
    using F = TypeParam;
    Rng rng(6);
    unsigned n = 8;
    TensorPcs<F> pcs(n, 7);
    auto state = pcs.commit(randomPoly<F>(n, rng));
    auto point = randomPoint<F>(n, rng);
    F value = pcs.evaluate(state, point);

    Transcript pt("pcs-test");
    pt.absorbDigest("root", state.commitment.root);
    auto proof = pcs.open(state, point, pt);

    PcsCommitment bad = state.commitment;
    bad.root.bytes[0] ^= 1;
    Transcript vt("pcs-test");
    vt.absorbDigest("root", state.commitment.root);
    EXPECT_FALSE(pcs.verify(bad, point, value, proof, vt));
}

TYPED_TEST(PcsT, RejectsProofForDifferentPolynomial)
{
    using F = TypeParam;
    Rng rng(7);
    unsigned n = 8;
    TensorPcs<F> pcs(n, 7, /*column_openings=*/12);
    auto state1 = pcs.commit(randomPoly<F>(n, rng));
    auto state2 = pcs.commit(randomPoly<F>(n, rng));
    auto point = randomPoint<F>(n, rng);
    F value1 = pcs.evaluate(state1, point);

    Transcript pt("pcs-test");
    pt.absorbDigest("root", state1.commitment.root);
    auto proof = pcs.open(state1, point, pt);

    // Same proof against the other commitment must fail.
    Transcript vt("pcs-test");
    vt.absorbDigest("root", state1.commitment.root);
    EXPECT_FALSE(
        pcs.verify(state2.commitment, point, value1, proof, vt));
}

TYPED_TEST(PcsT, CommitmentDeterministic)
{
    using F = TypeParam;
    Rng rng(8);
    unsigned n = 7;
    TensorPcs<F> pcs(n, 9);
    auto poly = randomPoly<F>(n, rng);
    auto s1 = pcs.commit(poly);
    auto s2 = pcs.commit(poly);
    EXPECT_EQ(s1.commitment.root, s2.commitment.root);
}

TYPED_TEST(PcsT, DistinctPolynomialsDistinctRoots)
{
    using F = TypeParam;
    Rng rng(9);
    unsigned n = 7;
    TensorPcs<F> pcs(n, 9);
    auto poly = randomPoly<F>(n, rng);
    auto s1 = pcs.commit(poly);
    poly[0] += F::one();
    auto s2 = pcs.commit(poly);
    EXPECT_NE(s1.commitment.root, s2.commitment.root);
}

TYPED_TEST(PcsT, ShapeSplitsVariables)
{
    using F = TypeParam;
    TensorPcs<F> pcs(10, 1);
    EXPECT_EQ(pcs.rowVars() + pcs.colVars(), 10u);
    EXPECT_GE(pcs.colVars(), 5u);
}

} // namespace
} // namespace bzk
