/**
 * @file
 * Unit tests for the utility substrate: hex codecs, running statistics,
 * deterministic RNG and the thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "util/Hex.h"
#include "util/Rng.h"
#include "util/Stats.h"
#include <stdexcept>

#include "util/ThreadPool.h"

namespace bzk {
namespace {

TEST(Hex, RoundTrip)
{
    std::vector<uint8_t> data{0x00, 0x01, 0xab, 0xff, 0x10};
    std::string hex = toHex(data);
    EXPECT_EQ(hex, "0001abff10");
    EXPECT_EQ(fromHex(hex), data);
}

TEST(Hex, RejectsOddLength)
{
    EXPECT_TRUE(fromHex("abc").empty());
}

TEST(Hex, RejectsBadDigits)
{
    EXPECT_TRUE(fromHex("zz").empty());
}

TEST(Hex, EmptyInput)
{
    EXPECT_EQ(toHex(std::vector<uint8_t>{}), "");
    EXPECT_TRUE(fromHex("").empty());
}

TEST(Hex, UppercaseAccepted)
{
    auto bytes = fromHex("AB");
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0xab);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedZero)
{
    Rng rng(7);
    EXPECT_EQ(rng.nextBounded(0), 0u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoundedRoughlyUniform)
{
    Rng rng(11);
    int counts[4] = {0, 0, 0, 0};
    for (int i = 0; i < 40000; ++i)
        counts[rng.nextBounded(4)]++;
    for (int c : counts) {
        EXPECT_GT(c, 9000);
        EXPECT_LT(c, 11000);
    }
}

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    // min()/max() of an empty accumulator return 0.0, which is
    // indistinguishable from a genuine 0.0 sample — callers must gate
    // on empty() first. This test pins both the sentinel and the gate.
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, EmptyFlagClearsOnFirstSample)
{
    RunningStats s;
    ASSERT_TRUE(s.empty());
    s.add(-3.0);
    EXPECT_FALSE(s.empty());
    // A negative sample shows why the 0.0 sentinel alone is ambiguous:
    // with empty() the caller can tell this real extremum apart.
    EXPECT_EQ(s.min(), -3.0);
    EXPECT_EQ(s.max(), -3.0);
}

TEST(RunningStats, Basic)
{
    RunningStats s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStats, SingleSampleVarianceZero)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.variance(), 0.0);
    // stddev() must be exactly 0 (not NaN) for a single sample: the
    // count-1 Bessel denominator would be 0 without the count guard.
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_FALSE(std::isnan(s.stddev()));
}

TEST(RunningStats, StddevNeverNan)
{
    // Identical large samples drive Welford's m2 through catastrophic
    // cancellation; stddev() clamps at 0 instead of sqrt(-epsilon).
    RunningStats s;
    for (int i = 0; i < 100; ++i)
        s.add(1e15 + 0.1);
    EXPECT_FALSE(std::isnan(s.stddev()));
    EXPECT_GE(s.stddev(), 0.0);
}

TEST(TablePrinter, RendersAligned)
{
    TablePrinter t({"a", "long-header"});
    t.addRow({"1", "2"});
    std::string out = t.render();
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("| 1"), std::string::npos);
}

TEST(TablePrinter, PadsMissingCellsAndWarns)
{
    TablePrinter t({"a", "b", "c"});
    ::testing::internal::CaptureStderr();
    t.addRow({"only"});
    std::string err = ::testing::internal::GetCapturedStderr();
    // A short row is as suspicious as a long one: it used to be
    // accepted silently, hiding dropped benchmark columns.
    EXPECT_NE(err.find("TablePrinter"), std::string::npos);
    EXPECT_NE(err.find("padding"), std::string::npos);
    std::string out = t.render();
    EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TablePrinter, ExplicitBlankCellsAreSilent)
{
    TablePrinter t({"a", "b", "c"});
    ::testing::internal::CaptureStderr();
    t.addRow({"1", "", ""});
    EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(TablePrinter, WarnsOnExtraCellsAndDropsThem)
{
    TablePrinter t({"a", "b"});
    ::testing::internal::CaptureStderr();
    t.addRow({"1", "2", "EXTRA", "MORE"});
    std::string err = ::testing::internal::GetCapturedStderr();
    // The mismatch is reported (default log level Info passes warn),
    // naming the first dropped cell...
    EXPECT_NE(err.find("TablePrinter"), std::string::npos);
    EXPECT_NE(err.find("EXTRA"), std::string::npos);
    // ...and the rendered table keeps only the declared columns.
    std::string out = t.render();
    EXPECT_NE(out.find("| 1"), std::string::npos);
    EXPECT_EQ(out.find("EXTRA"), std::string::npos);
    EXPECT_EQ(out.find("MORE"), std::string::npos);
}

TEST(TablePrinter, ExactWidthRowIsSilent)
{
    TablePrinter t({"a", "b"});
    ::testing::internal::CaptureStderr();
    t.addRow({"1", "2"});
    EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(FormatSig, Reasonable)
{
    EXPECT_EQ(formatSig(1234.5678, 4), "1235");
    EXPECT_EQ(formatSig(0.00012345, 3), "0.000123");
}

TEST(ThreadPool, RunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&hits](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            hits[i].fetch_add(1);
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&ran](size_t, size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, WaitWithNoJobsReturns)
{
    ThreadPool pool(2);
    pool.wait();
    SUCCEED();
}

TEST(ThreadPool, ParallelForPropagatesWorkerException)
{
    // Regression: a throwing body used to escape the worker loop and
    // std::terminate the process; now the first exception is rethrown
    // on the caller after all chunks finish.
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](size_t b, size_t) {
                                      if (b == 0)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, UsableAfterParallelForException)
{
    ThreadPool pool(3);
    try {
        pool.parallelFor(100, [](size_t, size_t) {
            throw std::runtime_error("x");
        });
    } catch (const std::runtime_error &) {
    }
    std::atomic<int> counter{0};
    pool.parallelFor(50, [&counter](size_t b, size_t e) {
        counter.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(counter.load(), 50);
}

} // namespace
} // namespace bzk
